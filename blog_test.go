package blog

import (
	"strings"
	"testing"

	"blog/internal/weights"
)

const fig1 = `
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).

?- gf(sam,G).
`

func loadFig1(t testing.TB) *Program {
	t.Helper()
	p, err := LoadString(fig1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadAndStats(t *testing.T) {
	p := loadFig1(t)
	clauses, facts, rules, preds, arcs := p.Stats()
	if clauses != 12 || facts != 10 || rules != 2 || preds != 3 {
		t.Errorf("stats = %d %d %d %d", clauses, facts, rules, preds)
	}
	if arcs == 0 {
		t.Error("arcs missing")
	}
	dq := p.DirectiveQueries()
	if len(dq) != 1 || dq[0] != "gf(sam,G)" {
		t.Errorf("directives = %v", dq)
	}
}

func TestLoadError(t *testing.T) {
	if _, err := LoadString("p(a"); err == nil {
		t.Error("bad source must fail")
	}
}

func TestQueryAllStrategies(t *testing.T) {
	p := loadFig1(t)
	for _, s := range []Strategy{DFS, BFS, BestFirst, Parallel} {
		res, err := p.Query("gf(sam,G)", s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Solutions) != 2 {
			t.Errorf("%v: %d solutions", s, len(res.Solutions))
		}
		if !res.Exhausted {
			t.Errorf("%v: not exhausted", s)
		}
	}
}

func TestSolutionString(t *testing.T) {
	p := loadFig1(t)
	res, err := p.Query("gf(sam,G)", DFS, MaxSolutions(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Solutions[0].String(); got != "G = den" {
		t.Errorf("solution = %q", got)
	}
	gres, err := p.Query("gf(sam,den)", DFS)
	if err != nil {
		t.Fatal(err)
	}
	if got := gres.Solutions[0].String(); got != "true" {
		t.Errorf("ground solution = %q", got)
	}
}

func TestQueryParseError(t *testing.T) {
	p := loadFig1(t)
	if _, err := p.Query("gf(sam", DFS); err == nil {
		t.Error("bad query must fail")
	}
}

func TestLearningAndReset(t *testing.T) {
	p := loadFig1(t)
	if _, err := p.Query("gf(sam,G)", BestFirst, Learn()); err != nil {
		t.Fatal(err)
	}
	if p.LearnedArcs() == 0 {
		t.Error("learning should record arcs")
	}
	p.ResetWeights()
	if p.LearnedArcs() != 0 {
		t.Error("reset should clear")
	}
}

func TestSessionFlow(t *testing.T) {
	p := loadFig1(t)
	s := p.NewSession(0.5)
	if _, err := p.Query("gf(sam,G)", BestFirst, Learn(), InSession(s)); err != nil {
		t.Fatal(err)
	}
	if s.LocalLearned() == 0 {
		t.Error("session should learn locally")
	}
	if p.LearnedArcs() != 0 {
		t.Error("global table must stay clean during session")
	}
	adopted, _, kept, _ := s.End()
	if adopted+kept == 0 {
		t.Error("End should publish something")
	}
	if p.LearnedArcs() == 0 {
		t.Error("global table should hold merged weights")
	}
}

func TestSessionWrongProgram(t *testing.T) {
	p1 := loadFig1(t)
	p2 := loadFig1(t)
	s := p1.NewSession(0)
	if _, err := p2.Query("gf(sam,G)", DFS, InSession(s)); err == nil {
		t.Error("cross-program session must be rejected")
	}
}

func TestRecordTreeAndTrace(t *testing.T) {
	p := loadFig1(t)
	res, err := p.Query("gf(sam,G)", DFS, RecordTree(), RecordTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Tree, "SOLUTION") || !strings.Contains(res.Tree, "FAIL") {
		t.Errorf("tree:\n%s", res.Tree)
	}
	if len(res.Trace) == 0 {
		t.Error("trace empty")
	}
}

func TestParallelOptions(t *testing.T) {
	p := loadFig1(t)
	res, err := p.Query("gf(sam,G)", Parallel, Workers(8), MigrationThreshold(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Errorf("solutions = %d", len(res.Solutions))
	}
	// Stable presentation order.
	if res.Solutions[0].String() > res.Solutions[1].String() {
		t.Error("parallel solutions must be sorted")
	}
}

func TestSimulate(t *testing.T) {
	p := loadFig1(t)
	rep, err := p.Simulate("gf(sam,G)", DefaultMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solutions) != 2 || rep.Cycles <= 0 {
		t.Errorf("simulate: %d solutions in %d cycles", len(rep.Solutions), rep.Cycles)
	}
}

func TestRenderings(t *testing.T) {
	p := loadFig1(t)
	if !strings.Contains(p.GraphText(), "(curt) --f--> (elain)") {
		t.Error("graph text missing fact arc")
	}
	if !strings.Contains(p.LinkedListText(), "block 0") {
		t.Error("linked list text missing blocks")
	}
}

func TestMaxDepthOption(t *testing.T) {
	p, err := LoadString("loop :- loop.")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query("loop", DFS, MaxDepth(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Error("cyclic program should not solve")
	}
}

func TestConfigOverride(t *testing.T) {
	p, err := LoadString(fig1, Config{N: 32, A: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Query("gf(sam,G)", BestFirst, Learn()); err != nil {
		t.Fatal(err)
	}
	if p.LearnedArcs() == 0 {
		t.Error("custom config should still learn")
	}
}

func TestSaveLoadWeights(t *testing.T) {
	p := loadFig1(t)
	if _, err := p.Query("gf(sam,G)", BestFirst, Learn()); err != nil {
		t.Fatal(err)
	}
	learned := p.LearnedArcs()
	if learned == 0 {
		t.Fatal("nothing learned")
	}
	var buf strings.Builder
	if err := p.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh program instance picks up where the old one left off.
	p2 := loadFig1(t)
	if err := p2.LoadWeights(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if p2.LearnedArcs() != learned {
		t.Errorf("restored %d arcs, want %d", p2.LearnedArcs(), learned)
	}
	res, err := p2.Query("gf(sam,G)", BestFirst, MaxSolutions(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Error("restored weights should avoid the failing branch")
	}
	if err := p2.LoadWeights(strings.NewReader("garbage")); err == nil {
		t.Error("bad input must fail")
	}
}

func TestNegationThroughFacade(t *testing.T) {
	p, err := LoadString("p(a).\nitem(a). item(b). item(c).")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query("item(X), \\+(p(X))", DFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Errorf("NAF filter found %d solutions, want 2", len(res.Solutions))
	}
}

func TestStrategyStrings(t *testing.T) {
	if DFS.String() != "dfs" || Parallel.String() != "parallel" {
		t.Error("strategy names")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy")
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	p := loadFig1(t)
	if _, err := p.Query("gf(sam,G)", Strategy(42)); err == nil {
		t.Error("unknown strategy must error")
	}
}

func TestPreludeConfig(t *testing.T) {
	p, err := LoadString("roster(R) :- permutation([a,b,c], R).", Config{Prelude: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query("roster(R)", BestFirst, MaxDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 6 {
		t.Errorf("rosters = %d, want 6", len(res.Solutions))
	}
	if PreludeSource == "" {
		t.Error("prelude source must be exposed")
	}
}

func TestIterFacade(t *testing.T) {
	p := loadFig1(t)
	it, err := p.Iter("gf(sam, G)", BestFirst, Learn())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		s, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, s.String())
	}
	if len(got) != 2 {
		t.Errorf("streamed %v", got)
	}
	if it.Expanded() == 0 {
		t.Error("no work recorded")
	}
	if p.LearnedArcs() == 0 {
		t.Error("streaming with Learn should update the table")
	}
	if _, err := p.Iter("gf(sam,G)", Parallel); err == nil {
		t.Error("parallel streaming unsupported")
	}
	if _, err := p.Iter("gf(sam", DFS); err == nil {
		t.Error("bad query must fail")
	}
}

func TestAndParallelOption(t *testing.T) {
	p, err := LoadString("p(1). p(2). p(3).\nq(a). q(b).")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query("p(X), q(Y)", DFS, AndParallel())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 6 {
		t.Errorf("cross product = %d, want 6", len(res.Solutions))
	}
	seen := map[string]bool{}
	for _, s := range res.Solutions {
		seen[s.String()] = true
		if s.Bindings["X"] == "" || s.Bindings["Y"] == "" {
			t.Errorf("incomplete solution %v", s.Bindings)
		}
	}
	if len(seen) != 6 {
		t.Errorf("distinct = %d", len(seen))
	}
	// Capped.
	capped, err := p.Query("p(X), q(Y)", DFS, AndParallel(), MaxSolutions(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Solutions) != 2 {
		t.Errorf("capped = %d", len(capped.Solutions))
	}
}

const leftRecSrc = `
:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(a, b). edge(b, c). edge(c, a). edge(c, d).
`

func TestTabledQueryAllStrategies(t *testing.T) {
	p, err := LoadString(leftRecSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TabledPreds(); len(got) != 1 || got[0] != "path/2" {
		t.Fatalf("TabledPreds = %v, want [path/2]", got)
	}
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	for _, strat := range []Strategy{DFS, BFS, BestFirst, Parallel} {
		res, err := p.Query("path(a, R)", strat, Tabled())
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !res.Exhausted {
			t.Fatalf("%v: not exhausted", strat)
		}
		if len(res.Solutions) != len(want) {
			t.Fatalf("%v: %d solutions, want %d", strat, len(res.Solutions), len(want))
		}
		for _, s := range res.Solutions {
			if !want[s.Bindings["R"]] {
				t.Fatalf("%v: unexpected answer %q", strat, s.Bindings["R"])
			}
		}
	}
	// Table counters surfaced on Result: later queries hit the table.
	res, err := p.Query("path(a, R)", DFS, Tabled())
	if err != nil {
		t.Fatal(err)
	}
	if res.TableHits == 0 || res.RederivationsAvoided != 4 {
		t.Fatalf("hits=%d avoided=%d, want a table hit replaying 4 answers", res.TableHits, res.RederivationsAvoided)
	}
	tables, tot := p.TableStats()
	if tables == 0 || tot.Created == 0 || tot.Answers == 0 || tot.Hits == 0 {
		t.Fatalf("TableStats = (%d,%+v), want all non-zero", tables, tot)
	}
}

func TestUntabledLeftRecursionIsIncomplete(t *testing.T) {
	p, err := LoadString(leftRecSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Without Tabled() the left recursion only stops at the depth cutoff:
	// the proof enumeration never exhausts and duplicates abound.
	res, err := p.Query("path(a, R)", DFS, MaxDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted && len(res.Solutions) == 4 {
		t.Fatal("untabled left recursion unexpectedly behaved like the tabled run")
	}
}

// TestTabledInvalidation pins the incremental-maintenance contract:
// weight maintenance — reset, session merges (learning or not), loading
// an identical weight file — leaves memoized tables standing (fixpoints
// derive on a uniform store, so learned weights cannot stale an answer
// set), while an assert on a dependency dirty-marks downstream tables
// and the next query re-derives with the new answers; a weight load that
// actually changes the depth coding A still rebuilds the space.
func TestTabledInvalidation(t *testing.T) {
	p, err := LoadString(leftRecSrc)
	if err != nil {
		t.Fatal(err)
	}
	mustTables := func(want int) {
		t.Helper()
		if got := len(p.Tables()); got != want {
			t.Fatalf("live tables = %d, want %d", got, want)
		}
	}
	if _, err := p.Query("path(a, R)", DFS, Tabled()); err != nil {
		t.Fatal(err)
	}
	mustTables(1)
	p.ResetWeights()
	mustTables(1) // weight reset no longer wipes the hot cache

	// A session that learned nothing merges as a no-op.
	noop := p.NewSession(0)
	if _, err := p.Query("path(a, R)", DFS, Tabled(), InSession(noop)); err != nil {
		t.Fatal(err)
	}
	noop.End()
	mustTables(1)
	// A merge that changed the weight database leaves them standing too:
	// learned weights steer untabled search, not table membership.
	sess := p.NewSession(0)
	if _, err := p.Query("path(b, R)", BestFirst, Learn(), InSession(sess), MaxDepth(6)); err != nil {
		t.Fatal(err)
	}
	if sess.LocalLearned() == 0 {
		t.Fatal("learning query recorded no arcs; survival test is vacuous")
	}
	sess.End()
	mustTables(1)

	// Reloading an identical weight file (same N and A) is the routine
	// deploy cycle and must not wipe.
	var buf strings.Builder
	if err := p.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadWeights(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	mustTables(1)

	// An assert on edge/2 — a recorded dependency of the path/2 table —
	// dirty-marks it; the re-query re-derives and sees the new edge.
	res, err := p.Query("path(a, R)", DFS, Tabled())
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Solutions)
	if err := p.Assert("edge(d, e)."); err != nil {
		t.Fatal(err)
	}
	if got := p.Tables()[0]; !got.Dirty {
		t.Fatalf("table after assert = %+v, want dirty", got)
	}
	res, err = p.Query("path(a, R)", DFS, Tabled())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != before+1 {
		t.Fatalf("post-assert solutions = %d, want %d (the new edge's target)", len(res.Solutions), before+1)
	}
	if got := p.Tables()[0]; got.Dirty || got.Revalidations != 1 {
		t.Fatalf("re-derived table = %+v, want clean with one revalidation", got)
	}

	// A weight file with a different depth coding A genuinely changes the
	// generator limits: the space rebuilds.
	other := weights.NewTable(weights.Config{N: 16, A: 32})
	var obuf strings.Builder
	if _, err := other.WriteTo(&obuf); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadWeights(strings.NewReader(obuf.String())); err != nil {
		t.Fatal(err)
	}
	mustTables(0)
}

func TestTabledStreaming(t *testing.T) {
	p, err := LoadString(leftRecSrc)
	if err != nil {
		t.Fatal(err)
	}
	it, err := p.Iter("path(a, R)", DFS, Tabled())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 4 || !it.Exhausted() {
		t.Fatalf("streamed %d answers (exhausted=%v), want 4 exhausted", n, it.Exhausted())
	}
}

// weightedCycleSrc is a small weighted cyclic graph under the min(3)
// subsumption directive: the direct a->b edge (cost 4) is dominated by
// the a->c->b chain (cost 2), so production both subsumes and improves.
const weightedCycleSrc = `
:- table shortest/3 min(3).
shortest(X,Z,C) :- shortest(X,Y,A), edge(Y,Z,B), C is A + B.
shortest(X,Y,C) :- edge(X,Y,C).
edge(a,b,4).
edge(a,c,1).
edge(c,b,1).
edge(b,a,1).
`

// TestSubsumedTabledQueryAllStrategies is the facade end of the
// acceptance criterion: left-recursive weighted shortest/3 over a cyclic
// graph returns the minimal cost per reachable pair under all four
// strategies, with the subsumption counters surfaced on Result.
func TestSubsumedTabledQueryAllStrategies(t *testing.T) {
	want := map[string]string{"a": "3", "b": "2", "c": "1"}
	for _, strat := range []Strategy{DFS, BFS, BestFirst, Parallel} {
		p, err := LoadString(weightedCycleSrc)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.TabledPreds(); len(got) != 1 || got[0] != "shortest/3 min(3)" {
			t.Fatalf("TabledPreds = %v, want the annotated min directive", got)
		}
		res, err := p.Query("shortest(a, Y, C)", strat, Tabled())
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !res.Exhausted {
			t.Fatalf("%v: not exhausted", strat)
		}
		if len(res.Solutions) != len(want) {
			t.Fatalf("%v: %d solutions, want one minimum per reachable node", strat, len(res.Solutions))
		}
		for _, s := range res.Solutions {
			if want[s.Bindings["Y"]] != s.Bindings["C"] {
				t.Fatalf("%v: %s, want cost %s for %s", strat, s, want[s.Bindings["Y"]], s.Bindings["Y"])
			}
		}
		if res.AnswersSubsumed == 0 || res.AnswersImproved == 0 {
			t.Fatalf("%v: subsumed=%d improved=%d, want both > 0 on the producing run",
				strat, res.AnswersSubsumed, res.AnswersImproved)
		}
		// The table listing carries the min slot, and the space totals the
		// lattice counters.
		if infos := p.Tables(); len(infos) == 0 || infos[0].Min != 3 {
			t.Fatalf("%v: Tables() = %+v, want a min(3) table", strat, infos)
		}
		if _, tot := p.TableStats(); tot.Subsumed == 0 || tot.Improved == 0 {
			t.Fatalf("%v: totals = %+v, want subsumption counted", strat, tot)
		}
	}
}

// TestSubsumedTabledStreaming: the streaming path serves the same minima
// and reports the subsumption counters on IterStats — what blogd's stream
// terminal line carries.
func TestSubsumedTabledStreaming(t *testing.T) {
	p, err := LoadString(weightedCycleSrc)
	if err != nil {
		t.Fatal(err)
	}
	it, err := p.Iter("shortest(a, Y, C)", DFS, Tabled())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 3 || !it.Exhausted() {
		t.Fatalf("streamed %d answers (exhausted=%v), want 3 exhausted", n, it.Exhausted())
	}
	st := it.Stats()
	if st.AnswersSubsumed == 0 || st.AnswersImproved == 0 {
		t.Fatalf("stream stats = %+v, want subsumption counters on the terminal stats", st)
	}
}
