// Package blog is the public API of this reproduction of "B-LOG: A Branch
// and Bound Methodology for the Parallel Execution of Logic Programs"
// (G. J. Lipovski and M. V. Hermenegildo, ICPP 1985).
//
// A Program wraps a logic database plus a global weight table. Queries run
// under a chosen search strategy — Prolog's depth-first baseline,
// breadth-first, B-LOG's weighted best-first branch and bound, or the
// parallel OR-engine — and can learn arc weights per the paper's
// section-5 rules. Sessions scope that learning: strong updates stay local
// until the session ends, when they merge conservatively into the global
// table.
//
// Every strategy dispatches through the unified solver runtime of
// internal/solve, so queries uniformly support context cancellation and
// deadlines (QueryContext, IterContext) and a Program is safe for
// concurrent Query calls.
//
// Loading compiles the program for cheap resolution: functor and atom
// names are interned to integer symbols, and every clause becomes a
// slot-numbered skeleton that is activated per resolution step with one
// fresh-variable frame instead of a deep copy (see internal/term and
// internal/kb). Loading is therefore the expensive step and querying the
// cheap one — load a Program once and share it across goroutines.
//
// Quickstart:
//
//	p, err := blog.LoadString(src)
//	res, err := p.Query("gf(sam, G)", blog.BestFirst, blog.Learn())
//	for _, s := range res.Solutions {
//	    fmt.Println(s.String())
//	}
//
// The hardware models of section 6 (semantic paging disks, scoreboard
// processors, the minimum-seeking network) live in internal packages and
// are exercised through the cycle-level machine simulation; see
// Program.Simulate and the cmd/blogbench experiment harness.
package blog

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/machine"
	"blog/internal/obs"
	"blog/internal/parse"
	"blog/internal/prelude"
	"blog/internal/search"
	"blog/internal/session"
	"blog/internal/solve"
	"blog/internal/table"
	"blog/internal/term"
	"blog/internal/vm"
	"blog/internal/weights"
)

// Strategy selects the search discipline for Query. It aliases the
// canonical enum of the solver runtime, so the facade adds no mapping of
// its own.
type Strategy = solve.Strategy

const (
	// DFS is Prolog's depth-first, source-order search.
	DFS = solve.DFS
	// BFS is breadth-first search.
	BFS = solve.BFS
	// BestFirst is B-LOG's weighted best-first branch and bound.
	BestFirst = solve.BestFirst
	// Parallel is the OR-parallel best-first engine (live goroutines).
	Parallel = solve.Parallel
)

// ParseStrategy resolves the textual strategy names used by the CLI and
// REPL: dfs, bfs, best (or best-first), parallel.
func ParseStrategy(name string) (Strategy, error) { return solve.ParseStrategy(name) }

// ErrBudget reports that a query hit its expansion budget before the tree
// was exhausted; callers such as the query server map it to a distinct
// failure class.
var ErrBudget = search.ErrBudget

// ValidateQuery parses a query string without running it, so servers can
// reject malformed goals before spending a worker slot.
func ValidateQuery(query string) error {
	_, err := parse.Query(query)
	return err
}

// Program is a loaded logic program with its global weight database. It is
// safe for concurrent use: queries may run in parallel with each other and
// with weight-table maintenance (ResetWeights, LoadWeights).
type Program struct {
	db      *kb.DB
	queries [][]term.Term // directive queries from the source text
	// tables is the program's answer-table space for tabled resolution
	// (predicates declared `:- table name/arity`, queried with Tabled()).
	// Shared by every query; weight maintenance invalidates it.
	tables *table.Space

	mu     sync.RWMutex // guards global and cfg
	global *weights.Table
	cfg    weights.Config

	// journal, once enabled, receives structured engine events (table
	// lifecycle, VM recompiles, ...); see EnableJournal.
	journal atomic.Pointer[obs.Journal]
}

// Config tunes the weight coding; see weights.Config in DESIGN.md.
type Config struct {
	// N is the target bound of successful chains (default 16).
	N float64
	// A is the longest accepted chain; A*N codes infinity and A bounds
	// search depth (default 64).
	A int
	// Prelude prepends the list/pair standard library (append/3,
	// member/2, select/3, permutation/2, ...) to the program.
	Prelude bool
}

// PreludeSource is the standard library source text prepended when
// Config.Prelude is set; it is plain Horn-clause code usable under every
// search strategy.
const PreludeSource = prelude.All

// LoadString parses a program and prepares an empty global weight table.
func LoadString(src string, cfg ...Config) (*Program, error) {
	wcfg := weights.DefaultConfig()
	if len(cfg) > 0 {
		if cfg[0].N > 0 {
			wcfg.N = cfg[0].N
		}
		if cfg[0].A > 0 {
			wcfg.A = cfg[0].A
		}
		if cfg[0].Prelude {
			src = prelude.All + "\n" + src
		}
	}
	db, qs, err := kb.LoadString(src)
	if err != nil {
		return nil, err
	}
	// Compile the bytecode program eagerly: loading is the expensive step
	// by contract, so the first query should not pay for compilation.
	if vm.Enabled {
		vm.For(db)
	}
	return &Program{
		db:      db,
		tables:  table.NewSpace(db, table.Config{MaxDepth: wcfg.A}),
		global:  weights.NewTable(wcfg),
		cfg:     wcfg,
		queries: qs,
	}, nil
}

// DirectiveQueries returns the `?- goal.` directives found in the source,
// rendered back to query strings.
func (p *Program) DirectiveQueries() []string {
	out := make([]string, 0, len(p.queries))
	for _, goals := range p.queries {
		parts := make([]string, len(goals))
		for i, g := range goals {
			parts[i] = g.String()
		}
		out = append(out, strings.Join(parts, ", "))
	}
	return out
}

// Stats describes the loaded database.
func (p *Program) Stats() (clauses, facts, rules, preds, arcs int) {
	s := p.db.ComputeStats()
	return s.Clauses, s.Facts, s.Rules, s.Preds, s.Arcs
}

// TabledPreds returns the sorted indicators of predicates declared
// `:- table name/arity` in the source.
func (p *Program) TabledPreds() []string { return p.db.TabledPreds() }

// TableInfo describes one memoized answer table; see Program.Tables.
type TableInfo = table.Info

// Tables lists the program's live answer tables (call-pattern variants
// materialized by Tabled() queries so far), sorted by predicate and call.
func (p *Program) Tables() []TableInfo { return p.tables.Tables() }

// TableTotals are the cumulative (monotonic, surviving invalidation)
// answer-table counters; see table.Totals.
type TableTotals = table.Totals

// TableStats reports the answer-table space: live table count and the
// cumulative counters of tables created, answers memoized, complete-table
// hits, answers replayed from complete tables (re-derivations avoided),
// and the answer-subsumption pair (answers subsumed / improved).
func (p *Program) TableStats() (tables int, totals TableTotals) {
	return p.tables.Len(), p.tables.Totals()
}

// TableAccounting aggregates the live resource gauges of the answer-table
// space: table counts by state and the total retained bytes and answers.
// Unlike TableTotals these drop to zero on invalidation.
type TableAccounting = table.Accounting

// TableAccounting returns the answer-table space's live resource gauges.
func (p *Program) TableAccounting() TableAccounting { return p.tables.Accounting() }

// TableInventory lists the live answer tables ranked by retained bytes,
// largest first — the operator's what-is-holding-memory view.
func (p *Program) TableInventory() []TableInfo { return p.tables.Inventory() }

// Journal is the program's structured engine-event journal: a lock-free
// bounded ring of typed events (table lifecycle with causes, VM
// recompiles, session churn, admission rejects, kills, slow queries).
// See internal/obs.
type Journal = obs.Journal

// Event is one journal entry.
type Event = obs.Event

// EnableJournal attaches an event journal retaining at least capacity
// events and returns it. Idempotent: the first call wins and later calls
// return the existing journal. A program without a journal pays one nil
// check per lifecycle transition and nothing on the resolution hot path.
func (p *Program) EnableJournal(capacity int) *Journal {
	if j := p.journal.Load(); j != nil {
		return j
	}
	j := obs.NewJournal(capacity)
	if !p.journal.CompareAndSwap(nil, j) {
		return p.journal.Load()
	}
	p.tables.SetJournal(j)
	p.db.SetEventJournal(j)
	return j
}

// Journal returns the enabled event journal, or nil.
func (p *Program) Journal() *Journal { return p.journal.Load() }

// PoolHighWater reports the process-wide trail-run pool high-water marks:
// the peak simultaneous activation-frame and pooled-compound counts any
// single sequential run reached since process start.
func PoolHighWater() (frames, compounds int64) { return term.PoolHighWater() }

// ResetWeights discards all learned global weights. Memoized answer
// tables survive: table fixpoints derive on a uniform store bounded only
// by the depth coding A, so learned-weight state never reaches a
// memoized answer set and discarding it cannot stale one.
func (p *Program) ResetWeights() {
	p.mu.Lock()
	p.global = weights.NewTable(p.cfg)
	p.mu.Unlock()
}

// LearnedArcs returns the number of arcs with learned global state.
func (p *Program) LearnedArcs() int { return p.globalStore().Len() }

// globalStore snapshots the current global table under the read lock, so
// in-flight queries keep a consistent store across ResetWeights/LoadWeights.
func (p *Program) globalStore() *weights.Table {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.global
}

// Option configures one Query call.
type Option func(*queryOpts)

type queryOpts struct {
	maxSolutions  int
	maxExpansions uint64
	maxDepth      int
	learn         bool
	prune         bool
	pruneSlack    float64
	occursCheck   bool
	workers       int
	d             float64
	twoLevel      bool
	session       *Session
	recordTree    bool
	recordTrace   bool
	andParallel   bool
	tabled        bool
	noVM          bool
	noTrail       bool
	traced        bool
	prof          *obs.Profiler
	live          *obs.Live
}

// newTrace starts the query's span trace when Traced() was given.
func (o *queryOpts) newTrace() *obs.Trace {
	if !o.traced {
		return nil
	}
	return obs.NewTrace("query")
}

// MaxSolutions stops the search after n solutions (0 = all).
func MaxSolutions(n int) Option { return func(o *queryOpts) { o.maxSolutions = n } }

// MaxExpansions bounds search work.
func MaxExpansions(n uint64) Option { return func(o *queryOpts) { o.maxExpansions = n } }

// MaxDepth bounds chain length in arcs (default: the program's A).
func MaxDepth(n int) Option { return func(o *queryOpts) { o.maxDepth = n } }

// Learn applies the section-5 weight update rules during the search, to
// the session store if one is active, else to the global table.
func Learn() Option { return func(o *queryOpts) { o.learn = true } }

// Prune enables strict branch-and-bound pruning against the best solution
// bound found. Sound only with section-4-consistent weights.
func Prune() Option { return func(o *queryOpts) { o.prune = true } }

// PruneSlack widens the pruning threshold: a chain survives while its
// bound is at most best+slack. Implies Prune.
func PruneSlack(slack float64) Option {
	return func(o *queryOpts) { o.prune = true; o.pruneSlack = slack }
}

// OccursCheck enables sound unification.
func OccursCheck() Option { return func(o *queryOpts) { o.occursCheck = true } }

// Workers sets the processor count for the Parallel strategy (default 4).
func Workers(n int) Option { return func(o *queryOpts) { o.workers = n } }

// MigrationThreshold sets D and switches the Parallel strategy to the
// paper's two-level scheduling: a freed worker takes the network chain
// only when it is at least d cheaper than its local minimum.
func MigrationThreshold(d float64) Option {
	return func(o *queryOpts) { o.d = d; o.twoLevel = true }
}

// InSession directs learning into the given session's local store.
func InSession(s *Session) Option { return func(o *queryOpts) { o.session = s } }

// Tabled resolves predicates declared `:- table name/arity` through the
// program's answer-table space: each tabled subgoal variant is derived
// once to its complete, duplicate-free answer set (a bottom-up fixpoint
// for recursive definitions), and every later call — in this query or a
// later one — replays the memoized answers. This makes left-recursive
// programs terminate with complete answers under every strategy, where
// the plain OR-tree search only stops at the depth cutoff. Programs with
// no table declarations run unchanged. Tabled evaluation uses standard
// (non-occurs-check) unification inside the tables.
//
// Predicates declared `:- table name/arity min(N)` additionally apply
// answer subsumption: argument N is a cost position, and each table keeps
// only the least-cost answer per binding of the remaining arguments,
// replacing it whenever a strictly cheaper derivation arrives. Weighted
// left-recursive definitions (shortest/3 over a cyclic graph) then
// terminate with the true minimal cost per reachable pair; the
// Result.AnswersSubsumed / AnswersImproved counters report the lattice
// work done.
func Tabled() Option { return func(o *queryOpts) { o.tabled = true } }

// AndParallel evaluates the query's independent (non-variable-sharing)
// goal groups concurrently and combines them by cross product — the
// section-7 AND-parallel scheme. Groups use the sequential strategy
// given to Query; incompatible with Parallel, sessions are fine.
func AndParallel() Option { return func(o *queryOpts) { o.andParallel = true } }

// Compiled selects the resolution engine: on (the default) runs clause
// resolution on the compiled bytecode VM with switch-on-term dispatch
// (internal/vm); Compiled(false) forces the tree-walking engine, kept as
// the differential oracle and the -compiled=off escape hatch.
func Compiled(on bool) Option { return func(o *queryOpts) { o.noVM = !on } }

// TrailStore selects the sequential-DFS binding representation: on (the
// default) runs one destructive trail-disciplined store with undo on
// backtrack; TrailStore(false) forces the persistent immutable Env
// chains, kept as the differential oracle. Strategies other than DFS
// always use Env — their frontiers need persistence — so the option only
// affects DFS runs; Result.Representation reports which one ran.
func TrailStore(on bool) Option { return func(o *queryOpts) { o.noTrail = !on } }

// RecordTree records the search tree (Result.Tree); sequential only.
func RecordTree() Option { return func(o *queryOpts) { o.recordTree = true } }

// RecordTrace records figure-1 style resolution lines; sequential only.
func RecordTrace() Option { return func(o *queryOpts) { o.recordTrace = true } }

// Profiler accumulates per-predicate work counters and attributed wall
// time across the queries that carry it (Profiled option). All counters
// are atomic, so one Profiler may be shared by concurrent queries; see
// internal/obs.
type Profiler = obs.Profiler

// NewProfiler returns an empty per-predicate profiler.
func NewProfiler() *Profiler { return obs.NewProfiler() }

// PredProfile is one predicate's row in a profiler snapshot.
type PredProfile = obs.PredProfile

// Span is one timed node of a traced query's span tree (Result.Spans).
type Span = obs.Span

// Live is an in-flight query's inspector entry; see the blogd
// /debug/queries endpoint and internal/obs.
type Live = obs.Live

// Traced collects a span tree for the query — parse, compile, search,
// and table-fixpoint rounds — returned as Result.Spans (or
// SolutionIter.Spans for streams). Works under every strategy and both
// binding representations.
func Traced() Option { return func(o *queryOpts) { o.traced = true } }

// Profiled attributes the query's per-predicate work (expansions, VM
// dispatches, trail binds/undos, table hits/misses, wall nanos) into p.
// The same p may be given to many queries, including concurrent ones.
func Profiled(p *Profiler) Option { return func(o *queryOpts) { o.prof = p } }

// Monitor registers the query's live inspector entry: the engines sync
// their expansion counter into l as the search runs. Servers use this to
// power their in-flight query listing.
func Monitor(l *Live) Option { return func(o *queryOpts) { o.live = l } }

// Solution is one answer to a query.
type Solution struct {
	// Bindings maps query variable names to rendered value terms.
	Bindings map[string]string
	// Bound is the B-LOG chain bound at the solution.
	Bound float64
	// Depth is the chain length in arcs.
	Depth int

	varOrder []string
}

// String renders "X = v, Y = w" in variable order, or "true".
func (s Solution) String() string {
	if len(s.varOrder) == 0 {
		return "true"
	}
	parts := make([]string, 0, len(s.varOrder))
	for _, v := range s.varOrder {
		parts = append(parts, v+" = "+s.Bindings[v])
	}
	return strings.Join(parts, ", ")
}

// Result is the outcome of one Query.
type Result struct {
	Solutions []Solution
	// Expanded, Generated and Failures count search work.
	Expanded  uint64
	Generated uint64
	Failures  uint64
	// Exhausted reports that the whole tree was searched. It is reported
	// by the engine that ran the query, for every strategy.
	Exhausted bool
	// Tree is the rendered search tree when RecordTree was set.
	Tree string
	// Trace holds figure-1 style lines when RecordTrace was set.
	Trace []string
	// Spans is the query's span tree when Traced was set: parse, compile
	// and search phases with table fixpoints and rounds beneath.
	Spans *Span
	// Migrations counts network chain acquisitions (Parallel two-level).
	Migrations uint64
	// VMDispatched counts goals resolved on the compiled bytecode engine
	// (zero under Compiled(false) or BLOG_COMPILED=off).
	VMDispatched uint64
	// Representation names the binding representation that ran:
	// "trail-store" (destructive store with undo; the sequential DFS
	// default) or "persistent-env" (immutable environment chains; every
	// other strategy, and DFS under TrailStore(false)).
	Representation string
	// Groups is the independent-group count of an AndParallel run.
	Groups int
	// Tabled-resolution counters (Tabled() runs only): tables this query
	// materialized, distinct answers it derived, calls served from an
	// already-complete table, and answers replayed from complete tables
	// (each one a subgoal re-derivation the untabled engine would redo).
	TablesCreated        uint64
	TableAnswers         uint64
	TableHits            uint64
	RederivationsAvoided uint64
	// TablesTruncated counts consumptions of depth-truncated tables: the
	// answer sets served were cut by the depth bound, so Exhausted=true
	// carries the same caveat it does for untabled depth cutoffs.
	TablesTruncated uint64
	// AnswersSubsumed and AnswersImproved are the answer-subsumption
	// counters of min(N) tables: derivations dropped because a cheaper
	// answer was already memoized, and memoized answers replaced by a
	// strictly cheaper derivation.
	AnswersSubsumed uint64
	AnswersImproved uint64
}

// Query parses and runs a query under the given strategy.
func (p *Program) Query(query string, strat Strategy, opts ...Option) (*Result, error) {
	return p.QueryContext(context.Background(), query, strat, opts...)
}

// QueryContext is Query with cancellation: a cancelled or deadlined ctx
// aborts the search promptly — under every strategy — and returns the
// context's error.
func (p *Program) QueryContext(ctx context.Context, query string, strat Strategy, opts ...Option) (*Result, error) {
	o, store, err := p.applyOpts(opts)
	if err != nil {
		return nil, err
	}
	tr := o.newTrace()
	psp := tr.Phase("parse")
	goals, err := parse.Query(query)
	psp.End()
	if err != nil {
		return nil, err
	}
	return p.runGoals(ctx, goals, strat, o, store, tr)
}

// QueryGoals runs pre-parsed goals (shared-variable structure preserved).
func (p *Program) QueryGoals(goals []term.Term, strat Strategy, opts ...Option) (*Result, error) {
	return p.QueryGoalsContext(context.Background(), goals, strat, opts...)
}

// QueryGoalsContext runs pre-parsed goals under ctx. All strategies go
// through the same solver runtime: the facade only assembles the Request
// and converts the unified Response. A Traced run's span tree has no
// parse phase here — the goals arrived parsed.
func (p *Program) QueryGoalsContext(ctx context.Context, goals []term.Term, strat Strategy, opts ...Option) (*Result, error) {
	o, store, err := p.applyOpts(opts)
	if err != nil {
		return nil, err
	}
	return p.runGoals(ctx, goals, strat, o, store, o.newTrace())
}

// runGoals is the shared back half of every batch query: assemble the
// solver request, run it, convert the response, finish the trace.
func (p *Program) runGoals(ctx context.Context, goals []term.Term, strat Strategy, o queryOpts, store weights.Store, tr *obs.Trace) (*Result, error) {
	req := p.request(goals, strat, o, store)
	req.Trace = tr
	resp, err := solve.Do(ctx, req)
	if err != nil {
		return nil, err
	}
	res := resultFrom(resp)
	res.Spans = tr.Finish()
	return res, nil
}

// applyOpts folds the options and resolves the weight store (session-local
// when InSession is active, else the global table).
func (p *Program) applyOpts(opts []Option) (queryOpts, weights.Store, error) {
	var o queryOpts
	for _, f := range opts {
		f(&o)
	}
	if o.session != nil {
		if o.session.program != p {
			return o, nil, errors.New("blog: session belongs to a different program")
		}
		return o, o.session.inner, nil
	}
	return o, p.globalStore(), nil
}

// request assembles the solver-runtime request for one query run.
func (p *Program) request(goals []term.Term, strat Strategy, o queryOpts, store weights.Store) *solve.Request {
	// Programs with no `:- table` declarations run with the hook absent
	// entirely — Tabled() costs nothing on the per-goal path then.
	var tables *table.Space
	if o.tabled && p.db.HasTabled() {
		tables = p.tables
	}
	return &solve.Request{
		Tables:        tables,
		DB:            p.db,
		Store:         store,
		Goals:         goals,
		Strategy:      strat,
		AndParallel:   o.andParallel,
		MaxSolutions:  o.maxSolutions,
		MaxExpansions: o.maxExpansions,
		MaxDepth:      o.maxDepth,
		Learn:         o.learn,
		Prune:         o.prune,
		PruneSlack:    o.pruneSlack,
		OccursCheck:   o.occursCheck,
		NoVM:          o.noVM,
		NoTrail:       o.noTrail,
		Workers:       o.workers,
		TwoLevel:      o.twoLevel,
		D:             o.d,
		RecordTree:    o.recordTree,
		RecordTrace:   o.recordTrace,
		Prof:          o.prof,
		Live:          o.live,
	}
}

// resultFrom converts the unified solver Response — the same way for every
// strategy.
func resultFrom(resp *solve.Response) *Result {
	res := &Result{
		Expanded:             resp.Stats.Expanded,
		Generated:            resp.Stats.Generated,
		Failures:             resp.Stats.Failures,
		Exhausted:            resp.Exhausted,
		Trace:                resp.Trace,
		Migrations:           resp.Stats.Migrations,
		VMDispatched:         resp.Stats.VMDispatched,
		Representation:       resp.Stats.Representation,
		Groups:               resp.Stats.Groups,
		TablesCreated:        resp.Stats.TablesCreated,
		TableAnswers:         resp.Stats.TableAnswers,
		TableHits:            resp.Stats.TableHits,
		RederivationsAvoided: resp.Stats.RederivationsAvoided,
		TablesTruncated:      resp.Stats.TablesTruncated,
		AnswersSubsumed:      resp.Stats.AnswersSubsumed,
		AnswersImproved:      resp.Stats.AnswersImproved,
	}
	if resp.Tree != nil {
		res.Tree = resp.Tree.Render()
	}
	res.Solutions = convertSolutions(resp.Solutions, resp.QueryVars)
	return res
}

func convertSolutions(sols []engine.Solution, qvars []*term.Var) []Solution {
	names := make([]string, len(qvars))
	for i, v := range qvars {
		names[i] = v.String()
	}
	out := make([]Solution, 0, len(sols))
	for _, s := range sols {
		b := make(map[string]string, len(s.Bindings))
		for k, v := range s.Bindings {
			b[k] = v.String()
		}
		out = append(out, Solution{Bindings: b, Bound: s.Bound, Depth: s.Depth, varOrder: names})
	}
	return out
}

// SolutionIter streams solutions one at a time, the interactive top-level
// style of querying ("; for more"). Learning, when enabled, applies to
// every chain the iterator completes even if the caller abandons it early.
type SolutionIter struct {
	inner  *search.Iter
	tables *table.Handle // nil for untabled streams
	names  []string
	trace  *obs.Trace // nil for untraced streams
}

// Iter prepares a lazy query under a sequential strategy (DFS, BFS or
// BestFirst); the Parallel strategy is not supported in streaming mode.
// Tree/trace recording (RecordTree, RecordTrace) and span tracing
// (Traced) stream too: the recorded tree, lines and spans grow as
// solutions are pulled, readable through Tree, Trace and Spans.
func (p *Program) Iter(query string, strat Strategy, opts ...Option) (*SolutionIter, error) {
	return p.IterContext(context.Background(), query, strat, opts...)
}

// IterContext is Iter with cancellation: once ctx is done, Next returns
// the context's error.
func (p *Program) IterContext(ctx context.Context, query string, strat Strategy, opts ...Option) (*SolutionIter, error) {
	o, store, err := p.applyOpts(opts)
	if err != nil {
		return nil, err
	}
	tr := o.newTrace()
	psp := tr.Phase("parse")
	goals, err := parse.Query(query)
	psp.End()
	if err != nil {
		return nil, err
	}
	req := p.request(goals, strat, o, store)
	req.Trace = tr
	it, th, err := solve.NewIter(ctx, req)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0)
	for _, v := range it.QueryVars() {
		names = append(names, v.String())
	}
	return &SolutionIter{inner: it, tables: th, names: names, trace: tr}, nil
}

// Next returns the next solution; ok is false when the stream ends
// (err reports aborts such as the expansion budget or a done context).
func (s *SolutionIter) Next() (Solution, bool, error) {
	sol, ok, err := s.inner.Next()
	if !ok {
		// The stream is over one way or another; close any open spans so
		// the trace is complete whenever the caller reads it.
		s.trace.Finish()
		return Solution{}, false, err
	}
	b := make(map[string]string, len(sol.Bindings))
	for k, v := range sol.Bindings {
		b[k] = v.String()
	}
	return Solution{Bindings: b, Bound: sol.Bound, Depth: sol.Depth, varOrder: s.names}, true, nil
}

// Expanded returns the nodes expanded so far.
func (s *SolutionIter) Expanded() uint64 { return s.inner.Stats().Expanded }

// IterStats are the work counters of a streaming query so far.
type IterStats struct {
	Expanded  uint64
	Generated uint64
	Failures  uint64
	Pruned    uint64
	// VMDispatched counts goals resolved on the compiled bytecode engine.
	VMDispatched uint64
	// Representation names the binding representation running the stream;
	// see Result.Representation.
	Representation string
	// Tabled-resolution counters (Tabled() streams only); see Result.
	TablesCreated        uint64
	TableAnswers         uint64
	TableHits            uint64
	RederivationsAvoided uint64
	TablesTruncated      uint64
	AnswersSubsumed      uint64
	AnswersImproved      uint64
}

// Stats returns the counters accumulated by the iterator so far.
func (s *SolutionIter) Stats() IterStats {
	st := s.inner.Stats()
	out := IterStats{Expanded: st.Expanded, Generated: st.Generated, Failures: st.Failures, Pruned: st.Pruned, VMDispatched: st.VMDispatched, Representation: st.Representation}
	if s.tables != nil {
		ts := s.tables.Stats()
		out.TablesCreated = ts.Created
		out.TableAnswers = ts.Answers
		out.TableHits = ts.Hits
		out.RederivationsAvoided = ts.RederivationsAvoided
		out.TablesTruncated = ts.TablesTruncated
		out.AnswersSubsumed = ts.AnswersSubsumed
		out.AnswersImproved = ts.AnswersImproved
	}
	return out
}

// Exhausted reports whether the stream ended because the whole tree was
// searched (meaningful after Next returned ok=false with a nil error).
func (s *SolutionIter) Exhausted() bool { return s.inner.Exhausted() }

// Spans returns the stream's span tree when Traced was set, nil
// otherwise. It finishes the trace — closing the still-open search phase
// — so it is meant to be read once the caller is done pulling.
func (s *SolutionIter) Spans() *Span { return s.trace.Finish() }

// Tree returns the search tree rendered so far when RecordTree was set
// ("" otherwise); it grows as solutions are pulled.
func (s *SolutionIter) Tree() string {
	t := s.inner.Tree()
	if t == nil {
		return ""
	}
	return t.Render()
}

// Trace returns the figure-1 style lines recorded so far when
// RecordTrace was set.
func (s *SolutionIter) Trace() []string { return s.inner.Trace() }

// Session scopes weight learning per section 5: strong updates go to a
// local store; End merges them conservatively into the program's global
// table (infinities never override known global weights; known weights
// move a damped step toward the session's values).
type Session struct {
	program *Program
	inner   *session.Session
}

// NewSession begins a session. alpha in (0,1] is the end-of-session
// averaging factor; pass 0 for the default 0.5.
func (p *Program) NewSession(alpha float64) *Session {
	var opts []session.Option
	if alpha > 0 {
		opts = append(opts, session.WithAlpha(alpha))
	}
	return &Session{program: p, inner: session.New(p.globalStore(), opts...)}
}

// End closes the session and merges into the global table, returning
// counts of (adopted, averaged, infinitiesKept, infinitiesVetoed).
// Memoized answer tables survive the merge — even one that changed the
// global weight database — because table fixpoints derive on a uniform
// store bounded only by the depth coding A: learned weights steer search
// order and pruning of untabled queries, never the membership of a
// memoized answer set. (Earlier versions wiped the whole table space
// here, which made routine session churn a re-derivation stampede.)
func (s *Session) End() (adopted, averaged, kept, vetoed int) {
	st := s.inner.End()
	return st.Adopted, st.Averaged, st.InfinitiesKept, st.InfinitiesVetoed
}

// LocalLearned returns the number of locally learned arcs so far.
func (s *Session) LocalLearned() int { return s.inner.LocalLen() }

// NoteQuery records one query outcome for session reporting.
func (s *Session) NoteQuery(succeeded bool) { s.inner.NoteQuery(succeeded) }

// Counts returns (queries, successes, failures) recorded with NoteQuery.
func (s *Session) Counts() (queries, successes, failures int) { return s.inner.Counts() }

// Ended reports whether End has been called.
func (s *Session) Ended() bool { return s.inner.Ended() }

// MachineConfig configures the cycle-level machine simulation. The zero
// value uses machine.DefaultConfig; set fields to override.
type MachineConfig = machine.Config

// MachineReport is the simulation outcome; see internal/machine.
type MachineReport = machine.Report

// DefaultMachineConfig returns the small figure-5 machine.
func DefaultMachineConfig() MachineConfig { return machine.DefaultConfig() }

// Simulate runs the query on the cycle-level parallel machine model
// (processors x tasks, semantic paging disks, min-seeking network).
func (p *Program) Simulate(query string, cfg MachineConfig) (*MachineReport, error) {
	goals, err := parse.Query(query)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg, p.db, p.globalStore())
	if err != nil {
		return nil, err
	}
	return m.Run(goals)
}

// SaveWeights serializes the global weight table in a line-oriented text
// format, so a learned database survives across processes (the global
// database "in secondary storage" of section 5).
func (p *Program) SaveWeights(w io.Writer) error {
	_, err := p.globalStore().WriteTo(w)
	return err
}

// LoadWeights replaces the global weight table with one previously saved
// by SaveWeights. The table's N/A coding becomes the program's coding.
func (p *Program) LoadWeights(r io.Reader) error {
	t, err := weights.ReadTable(r)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.global = t
	p.cfg = t.Config()
	p.mu.Unlock()
	// The loaded table's A becomes the program's depth coding, so the
	// answer-table space must rebuild under the same bound. Reconfigure
	// compares limits first: loading a weight file with the same A (the
	// common deploy cycle — save on shutdown, load at boot) keeps every
	// memoized table standing.
	p.tables.ReconfigureCause(table.Config{MaxDepth: t.Config().A}, "load_weights")
	return nil
}

// Assert parses src as clauses (facts or rules, no directives or
// queries) and appends them to the program's database. The incremental
// table maintenance reacts through kb's assert hook: memoized tables
// whose fixpoints were derived from an asserted predicate are
// dirty-marked and re-derive on next touch, while unrelated tables keep
// serving; the compiled-dispatch cache recompiles via the database
// generation counter as before. Asserts serialize against each other and
// against weight maintenance on the program mutex.
func (p *Program) Assert(src string) error {
	prog, err := parse.Source(src)
	if err != nil {
		return err
	}
	if len(prog.Tabled) > 0 || len(prog.Queries) > 0 {
		return fmt.Errorf("blog: Assert accepts only clauses; directives and queries must load with the program")
	}
	if len(prog.Clauses) == 0 {
		return fmt.Errorf("blog: no clause to assert in %q", src)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range prog.Clauses {
		p.db.Assert(c.Head, c.Body)
	}
	return nil
}

// SaveTables serializes the complete, untruncated answer tables to w
// (the persistent table snapshot blogd writes on shutdown and on its
// periodic timer) and returns how many were written. Safe to call
// concurrently with queries.
func (p *Program) SaveTables(w io.Writer) (int, error) {
	return p.tables.WriteSnapshot(w)
}

// LoadTables restores a snapshot written by SaveTables, validating every
// table against the current program: a table whose predicate is no
// longer tabled in the same mode, or whose recorded dependency
// fingerprints no longer match the clause store, is skipped and simply
// re-derives on first touch. Returns (loaded, skipped).
func (p *Program) LoadTables(r io.Reader) (loaded, skipped int, err error) {
	return p.tables.ReadSnapshot(r)
}

// GraphText renders the database in the figure-2 network style.
func (p *Program) GraphText() string { return p.db.GraphText() }

// GraphDOT renders the figure-2 fact network in Graphviz DOT syntax.
func (p *Program) GraphDOT() string { return p.db.GraphDOT() }

// LinkedListText renders the figure-4 weighted linked-list structure with
// current global weights.
func (p *Program) LinkedListText() string {
	g := p.globalStore()
	return p.db.LinkedListText(func(a kb.Arc) float64 { return g.Weight(a) })
}
