// Package blog_test (external, so experiments → server → blog forms no
// test import cycle) carries one testing.B benchmark per exhibit of the
// reproduction (figures F1-F6, experiments E1-E8 of DESIGN.md), each
// exercising the computation that regenerates that exhibit. `go test
// -bench=. -benchmem` at the module root runs them all; cmd/blogbench
// prints the full tables.
package blog_test

import (
	"context"
	"io"
	"testing"

	"blog/internal/experiments"
	"blog/internal/kb"
	"blog/internal/machine"
	"blog/internal/par"
	"blog/internal/parse"
	"blog/internal/scoreboard"
	"blog/internal/search"
	"blog/internal/session"
	"blog/internal/spd"
	"blog/internal/term"
	"blog/internal/weights"
	"blog/internal/workload"
)

func mustLoad(b *testing.B, src string) *kb.DB {
	b.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func mustGoals(b *testing.B, q string) []term.Term {
	b.Helper()
	goals, err := parse.Query(q)
	if err != nil {
		b.Fatal(err)
	}
	return goals
}

// BenchmarkExhibits runs the shared resolution-heavy exhibit cases
// (experiments.BenchCases) — the same list `blogbench -bench-json`
// measures into BENCH.json, so the two can never drift apart.
func BenchmarkExhibits(b *testing.B) {
	for _, c := range experiments.BenchCases() {
		b.Run(c.Name, c.Fn)
	}
}

// BenchmarkF2DatabaseGraph renders the figure-2 database graph.
func BenchmarkF2DatabaseGraph(b *testing.B) {
	db := mustLoad(b, experiments.Fig1Program)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(db.GraphText()) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkF5Machine simulates the figure-5 machine on the gf query.
func BenchmarkF5Machine(b *testing.B) {
	db := mustLoad(b, experiments.Fig1Program)
	goals := mustGoals(b, "gf(sam,G)")
	cfg := machine.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := machine.New(cfg, db, weights.NewUniform(weights.DefaultConfig()))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := m.Run(goals)
		if err != nil || len(rep.Solutions) != 2 {
			b.Fatal("machine run failed")
		}
	}
}

// BenchmarkF6SPD pages the figure-1 subgraph off the semantic paging disk.
func BenchmarkF6SPD(b *testing.B) {
	db := mustLoad(b, experiments.Fig1Program)
	ws := weights.NewTable(weights.DefaultConfig())
	blocks := spd.BuildBlocks(db, ws)
	goals := mustGoals(b, "gf(sam,G)")
	seeds := spd.SeedsForGoals(db, goals)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disk := spd.New(spd.DefaultGeometry(), spd.MIMD, 4)
		if err := disk.Store(blocks); err != nil {
			b.Fatal(err)
		}
		if paged, _ := disk.PageSubgraph(seeds, 2); len(paged) == 0 {
			b.Fatal("nothing paged")
		}
	}
}

// BenchmarkE2SessionLearning runs one learning session over similar
// queries on the family tree.
func BenchmarkE2SessionLearning(b *testing.B) {
	db := mustLoad(b, workload.FamilyTree(5, 3))
	queries := workload.SessionQueries(8, 40, 77)
	parsed := make([][]term.Term, len(queries))
	for i, q := range queries {
		parsed[i] = mustGoals(b, q)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		global := weights.NewTable(weights.Config{N: 16, A: 64})
		s := session.New(global, session.WithAlpha(0.7))
		for _, goals := range parsed {
			if _, err := search.Run(context.Background(), db, s, goals, search.Options{
				Strategy: search.BestFirst, Learn: true, MaxDepth: 48,
			}); err != nil {
				b.Fatal(err)
			}
		}
		s.End()
	}
}

// BenchmarkE3Convergence enumerates outcomes and solves the section-4
// linear system for the figure-3 tree.
func BenchmarkE3Convergence(b *testing.B) {
	db := mustLoad(b, experiments.Fig1Program)
	goals := mustGoals(b, "gf(sam,G)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outcomes, err := search.EnumerateOutcomes(context.Background(), db, goals, 16)
		if err != nil {
			b.Fatal(err)
		}
		sol, err := weights.Solve(outcomes)
		if err != nil {
			b.Fatal(err)
		}
		if err := sol.Check(outcomes, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Speedup measures the live parallel engine at 1 and 8 workers
// on all solutions of queens(6).
func BenchmarkE4Speedup(b *testing.B) {
	db := mustLoad(b, workload.NQueens)
	goals := mustGoals(b, "queens(6, Qs)")
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "w1", 8: "w8"}[workers], func(b *testing.B) {
			ws := weights.NewUniform(weights.DefaultConfig())
			for i := 0; i < b.N; i++ {
				res, err := par.Run(context.Background(), db, ws, goals, par.Options{
					Workers: workers, Mode: par.TwoLevel, D: 4, LocalCap: 256, MaxDepth: 512,
				})
				if err != nil || len(res.Solutions) != 4 {
					b.Fatal("queens run failed")
				}
			}
		})
	}
}

// BenchmarkE5DSweep simulates the machine at the extreme D settings on
// the unbalanced tree.
func BenchmarkE5DSweep(b *testing.B) {
	db := mustLoad(b, workload.Unbalanced(24, 16))
	goals := mustGoals(b, "job(X)")
	for _, d := range []float64{0, 1e9} {
		name := "d0"
		if d > 0 {
			name = "dinf"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig()
				cfg.D = d
				cfg.MaxDepth = 64
				m, err := machine.New(cfg, db, weights.NewUniform(weights.DefaultConfig()))
				if err != nil {
					b.Fatal(err)
				}
				rep, err := m.Run(goals)
				if err != nil || len(rep.Solutions) != 25 {
					b.Fatalf("machine run failed: %d solutions", len(rep.Solutions))
				}
			}
		})
	}
}

// BenchmarkE6SPDCache pages a deep subgraph at small and large caches.
func BenchmarkE6SPDCache(b *testing.B) {
	db := mustLoad(b, workload.FamilyTree(6, 3))
	ws := weights.NewTable(weights.DefaultConfig())
	blocks := spd.BuildBlocks(db, ws)
	goals := mustGoals(b, "gf(p0,G)")
	seeds := spd.SeedsForGoals(db, goals)
	for _, cache := range []int{1, 8} {
		name := "c1"
		if cache > 1 {
			name = "c8"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				disk := spd.New(spd.DefaultGeometry(), spd.MIMD, cache)
				if err := disk.Store(blocks); err != nil {
					b.Fatal(err)
				}
				disk.PageSubgraph(seeds, 3)
			}
		})
	}
}

// BenchmarkE7Scoreboard runs the multitasking processor at M=1 and M=8.
func BenchmarkE7Scoreboard(b *testing.B) {
	cfg := scoreboard.DefaultConfig()
	jobs := make([]scoreboard.Job, 64)
	for i := range jobs {
		jobs[i] = scoreboard.Job{Candidates: 2 + i%3, EnvWords: 16 + (i%5)*8, DiskBlocks: i % 2}
	}
	for _, m := range []int{1, 8} {
		name := "m1"
		if m > 1 {
			name = "m8"
		}
		b.Run(name, func(b *testing.B) {
			p := scoreboard.New(cfg, m)
			for i := 0; i < b.N; i++ {
				if rep := p.Run(jobs); rep.Jobs != 64 {
					b.Fatal("bad run")
				}
			}
		})
	}
}

// BenchmarkE9Conditional compares marginal vs conditional weight tables
// on the context-sensitive workload (section-5 extension).
func BenchmarkE9Conditional(b *testing.B) {
	db := mustLoad(b, workload.ContextSensitive(16))
	goals := mustGoals(b, "plan(M,P)")
	run := func(b *testing.B, mk func() weights.Store) {
		for i := 0; i < b.N; i++ {
			ws := mk()
			if _, err := search.Run(context.Background(), db, ws, goals, search.Options{
				Strategy: search.BestFirst, Learn: true, MaxDepth: 32,
			}); err != nil {
				b.Fatal(err)
			}
			res, err := search.Run(context.Background(), db, ws, goals, search.Options{
				Strategy: search.BestFirst, Learn: true, MaxSolutions: 1, MaxDepth: 32,
			})
			if err != nil || len(res.Solutions) != 1 {
				b.Fatal("run failed")
			}
		}
	}
	b.Run("marginal", func(b *testing.B) {
		run(b, func() weights.Store { return weights.NewTable(weights.Config{N: 16, A: 64}) })
	})
	b.Run("conditional", func(b *testing.B) {
		run(b, func() weights.Store { return weights.NewConditional(weights.Config{N: 16, A: 64}) })
	})
}

// BenchmarkFullHarness runs the entire printable experiment suite once per
// iteration (the blogbench command path).
func BenchmarkFullHarness(b *testing.B) {
	if testing.Short() {
		b.Skip("full harness is slow")
	}
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.All() {
			if r.ID == "E4" {
				continue // E4 times wall-clock itself; skip nested timing
			}
			if err := r.Run(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}
