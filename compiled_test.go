package blog

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"blog/internal/parse"
	"blog/internal/vm"
)

func solutionSet(res *Result) []string {
	out := make([]string, len(res.Solutions))
	for i, s := range res.Solutions {
		out[i] = fmt.Sprintf("%s |%.9g", s, s.Bound)
	}
	sort.Strings(out)
	return out
}

// TestCompiledMatchesOracle: the default compiled path and the
// Compiled(false) tree-walking oracle return the same answers, and the
// dispatch counter proves which engine ran.
func TestCompiledMatchesOracle(t *testing.T) {
	if !vm.Enabled {
		t.Skip("BLOG_COMPILED=off disables the engine under test")
	}
	p := loadFig1(t)
	for _, s := range []Strategy{DFS, BFS, BestFirst, Parallel} {
		compiled, err := p.Query("gf(sam,G)", s)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := p.Query("gf(sam,G)", s, Compiled(false))
		if err != nil {
			t.Fatal(err)
		}
		if compiled.VMDispatched == 0 {
			t.Errorf("%v: compiled run never dispatched to the VM", s)
		}
		if oracle.VMDispatched != 0 {
			t.Errorf("%v: oracle run dispatched %d goals to the VM", s, oracle.VMDispatched)
		}
		a, b := solutionSet(compiled), solutionSet(oracle)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("%v: compiled %v != oracle %v", s, a, b)
		}
	}
}

// TestCompiledSeesAssertedClause: asserting a clause after load bumps the
// database generation, so the next compiled query recompiles its dispatch
// tables and finds solutions through the new clause.
func TestCompiledSeesAssertedClause(t *testing.T) {
	if !vm.Enabled {
		t.Skip("BLOG_COMPILED=off disables the engine under test")
	}
	p := loadFig1(t)
	before, err := p.Query("gf(dan,G)", DFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Solutions) != 1 || before.Solutions[0].String() != "G = john" {
		t.Fatalf("baseline solutions = %v", solutionSet(before))
	}

	// dan gains a second child; gf(dan,G) must now also reach the new
	// grandchild through the recompiled f/2 dispatch bucket for dan.
	head, err := parse.Query("f(dan, sue)")
	if err != nil {
		t.Fatal(err)
	}
	p.db.Assert(head[0], nil)
	grand, err := parse.Query("f(sue, tim)")
	if err != nil {
		t.Fatal(err)
	}
	p.db.Assert(grand[0], nil)

	after, err := p.Query("gf(dan,G)", DFS)
	if err != nil {
		t.Fatal(err)
	}
	if after.VMDispatched == 0 {
		t.Error("post-assert query must still run compiled")
	}
	got := solutionSet(after)
	if len(after.Solutions) != 2 {
		t.Fatalf("post-assert solutions = %v, want john and tim", got)
	}
	oracle, err := p.Query("gf(dan,G)", DFS, Compiled(false))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(solutionSet(oracle)) {
		t.Errorf("compiled %v != oracle %v after assert", got, solutionSet(oracle))
	}
}

// TestCompiledAfterLoadWeights: replacing the weight table must not leave
// stale state on the compiled path — bounds reflect the loaded weights
// while resolution still dispatches to the VM.
func TestCompiledAfterLoadWeights(t *testing.T) {
	if !vm.Enabled {
		t.Skip("BLOG_COMPILED=off disables the engine under test")
	}
	trained := loadFig1(t)
	if _, err := trained.Query("gf(sam,G)", BestFirst, Learn()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trained.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}

	p := loadFig1(t)
	baseline, err := p.Query("gf(sam,G)", BestFirst)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := p.Query("gf(sam,G)", BestFirst)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMDispatched == 0 {
		t.Error("post-LoadWeights query must still run compiled")
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions = %v", solutionSet(res))
	}
	if fmt.Sprint(solutionSet(res)) == fmt.Sprint(solutionSet(baseline)) {
		t.Error("loaded weights should change solution bounds")
	}
	oracle, err := p.Query("gf(sam,G)", BestFirst, Compiled(false))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(solutionSet(res)) != fmt.Sprint(solutionSet(oracle)) {
		t.Errorf("compiled %v != oracle %v under loaded weights", solutionSet(res), solutionSet(oracle))
	}
}

// TestCompiledAfterSessionMerge: ending a learning session merges its
// weights into the global table; subsequent queries run compiled and
// agree with the oracle under the merged weights.
func TestCompiledAfterSessionMerge(t *testing.T) {
	if !vm.Enabled {
		t.Skip("BLOG_COMPILED=off disables the engine under test")
	}
	p := loadFig1(t)
	s := p.NewSession(0.5)
	if _, err := p.Query("gf(sam,G)", BestFirst, Learn(), InSession(s)); err != nil {
		t.Fatal(err)
	}
	s.End()
	res, err := p.Query("gf(sam,G)", BestFirst)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMDispatched == 0 {
		t.Error("post-merge query must still run compiled")
	}
	oracle, err := p.Query("gf(sam,G)", BestFirst, Compiled(false))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(solutionSet(res)) != fmt.Sprint(solutionSet(oracle)) {
		t.Errorf("compiled %v != oracle %v after session merge", solutionSet(res), solutionSet(oracle))
	}
}
