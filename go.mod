module blog

go 1.24
