package search

import (
	"fmt"
	"strings"

	"blog/internal/engine"
	"blog/internal/term"
)

// Tree is a recorded search tree in the style of figure 3 of the paper:
// the top half of each node is the match that created it, the bottom half
// the goal searched next below it.
type Tree struct {
	Root *TreeNode
}

// TreeNode is one node of the recorded tree.
type TreeNode struct {
	// Match is the instantiated goal this node's creation matched (the
	// top half of the node in figure 3); for the root it is the query.
	Match string
	// NextGoal is the goal searched below this node (the bottom half);
	// empty for leaves.
	NextGoal string
	// Status is "", "solution", "fail", or "pruned".
	Status string
	// Bound is the chain bound at this node.
	Bound float64
	// Children are the OR-alternatives below this node.
	Children []*TreeNode
}

type treeBuilder struct {
	tree  *Tree
	nodes map[*engine.Node]*TreeNode
}

func newTreeBuilder(goals []term.Term) *treeBuilder {
	parts := make([]string, len(goals))
	for i, g := range goals {
		parts[i] = g.String()
	}
	root := &TreeNode{Match: "?- " + strings.Join(parts, ",")}
	return &treeBuilder{
		tree:  &Tree{Root: root},
		nodes: map[*engine.Node]*TreeNode{},
	}
}

// lookup finds or creates the TreeNode for n (the root engine node maps to
// the tree root).
func (b *treeBuilder) lookup(n *engine.Node) *TreeNode {
	if n.Parent == nil {
		return b.tree.Root
	}
	if tn, ok := b.nodes[n]; ok {
		return tn
	}
	tn := &TreeNode{Match: n.Label, Bound: n.Bound}
	b.nodes[n] = tn
	return tn
}

func (b *treeBuilder) addChildren(parent *engine.Node, children []*engine.Node) {
	pt := b.lookup(parent)
	if e, ok := parent.Goals.Top(); ok {
		pt.NextGoal = parent.Env.Format(e.Goal)
	}
	for _, c := range children {
		ct := b.lookup(c)
		pt.Children = append(pt.Children, ct)
	}
}

func (b *treeBuilder) status(n *engine.Node, s string) {
	tn := b.lookup(n)
	tn.Status = s
	if n.Parent != nil {
		// Ensure orphaned status nodes (never expanded) still hang off
		// their parent; addChildren normally did this already.
		pt := b.lookup(n.Parent)
		found := false
		for _, c := range pt.Children {
			if c == tn {
				found = true
				break
			}
		}
		if !found {
			pt.Children = append(pt.Children, tn)
		}
	}
}

// Render draws the tree with indentation, matching the layout information
// of figure 3: each node shows match / next goal, with solution and
// failure leaves flagged.
func (t *Tree) Render() string {
	var b strings.Builder
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		indent := strings.Repeat("  ", depth)
		line := indent + n.Match
		if n.NextGoal != "" {
			line += "  /next: " + n.NextGoal
		}
		switch n.Status {
		case "solution":
			line += "  => SOLUTION"
		case "fail":
			line += "  => FAIL"
		case "pruned":
			line += "  => PRUNED"
		}
		if depth > 0 {
			line += fmt.Sprintf("  (bound %.3g)", n.Bound)
		}
		b.WriteString(line + "\n")
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}

// CountStatus returns how many nodes carry each status.
func (t *Tree) CountStatus() (solutions, failures, pruned int) {
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		switch n.Status {
		case "solution":
			solutions++
		case "fail":
			failures++
		case "pruned":
			pruned++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	var n int
	var walk func(tn *TreeNode)
	walk = func(tn *TreeNode) {
		n++
		for _, c := range tn.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return n
}
