package search

import (
	"context"
	"errors"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/term"
	"blog/internal/weights"
)

// Iter is a pull-based search: each Next call runs the strategy's loop
// just far enough to produce one more solution, which is how an
// interactive Prolog top level behaves ("; for more"). The weight rules
// still apply per completed chain when Learn is set, so an Iter that the
// caller abandons after the first answer has still learned from every
// chain it finished — the incremental setting the paper's sessions
// target.
type Iter struct {
	ctx       context.Context
	exp       *engine.Expander
	ws        weights.Store
	frontier  frontier
	opt       Options
	queryVars []*term.Var
	stats     Stats
	maxExp    uint64
	served    int
	done      bool
	err       error

	// Branch-and-bound state when Options.Prune is set: open nodes whose
	// bound exceeds bestBound+PruneSlack are cut, exactly as in Run.
	bestBound float64
	haveBest  bool
}

// NewIter prepares a lazy search; ctx cancels future Next calls. Tree and
// trace recording are not supported here; use Run for those.
func NewIter(ctx context.Context, db *kb.DB, ws weights.Store, goals []term.Term, opt Options) (*Iter, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(goals) == 0 {
		return nil, errors.New("search: empty query")
	}
	if opt.RecordTree || opt.RecordTrace {
		return nil, errors.New("search: Iter does not record trees or traces")
	}
	exp := engine.NewExpander(db, ws)
	exp.OccursCheck = opt.OccursCheck
	exp.Ctx = ctx
	exp.Tabler = opt.Tabler
	exp.NoVM = opt.NoVM
	if opt.MaxDepth > 0 {
		exp.MaxDepth = opt.MaxDepth
	}
	var queryVars []*term.Var
	for _, g := range goals {
		queryVars = term.Vars(g, queryVars)
	}
	it := &Iter{
		ctx:       ctx,
		exp:       exp,
		ws:        ws,
		frontier:  newFrontier(opt.Strategy),
		opt:       opt,
		queryVars: queryVars,
		maxExp:    opt.MaxExpansions,
	}
	if it.maxExp == 0 {
		it.maxExp = DefaultMaxExpansions
	}
	it.frontier.push(exp.Root(goals))
	return it, nil
}

// QueryVars returns the query's variables in first-occurrence order.
func (it *Iter) QueryVars() []*term.Var { return it.queryVars }

// Stats returns the work counters accumulated so far.
func (it *Iter) Stats() Stats {
	s := it.stats
	s.VMDispatched = it.exp.VMDispatched
	return s
}

// Next produces the next solution. ok is false when the search is over:
// either exhausted (err nil) or aborted (err non-nil, e.g. ErrBudget).
// After ok=false, further calls return the same result.
func (it *Iter) Next() (engine.Solution, bool, error) {
	if it.done {
		return engine.Solution{}, false, it.err
	}
	if it.opt.MaxSolutions > 0 && it.served >= it.opt.MaxSolutions {
		it.done = true
		return engine.Solution{}, false, nil
	}
	for it.frontier.len() > 0 {
		if err := it.ctx.Err(); err != nil {
			it.done = true
			it.err = err
			return engine.Solution{}, false, err
		}
		if it.frontier.len() > it.stats.MaxFrontier {
			it.stats.MaxFrontier = it.frontier.len()
		}
		n := it.frontier.pop()
		if it.opt.Prune && it.haveBest && n.Bound > it.bestBound+it.opt.PruneSlack {
			it.stats.Pruned++
			continue
		}
		if n.IsSolution() {
			sol := engine.Extract(n, it.queryVars)
			if it.opt.Learn {
				it.ws.RecordSuccess(sol.Chain)
			}
			if !it.haveBest || n.Bound < it.bestBound {
				it.bestBound, it.haveBest = n.Bound, true
			}
			it.served++
			return sol, true, nil
		}
		if it.stats.Expanded >= it.maxExp {
			it.done = true
			it.err = ErrBudget
			return engine.Solution{}, false, it.err
		}
		it.stats.Expanded++
		if n.Depth > it.stats.MaxDepth {
			it.stats.MaxDepth = n.Depth
		}
		children, err := it.exp.Expand(n)
		if err != nil && err != engine.ErrDepthLimit {
			it.done = true
			it.err = err
			return engine.Solution{}, false, err
		}
		if err == engine.ErrDepthLimit {
			it.stats.DepthCutoffs++
		}
		if len(children) == 0 {
			it.stats.Failures++
			if it.opt.Learn {
				it.ws.RecordFailure(n.Chain.Slice())
			}
			continue
		}
		it.stats.Generated += uint64(len(children))
		if it.opt.Strategy == DFS {
			for i := len(children) - 1; i >= 0; i-- {
				it.frontier.push(children[i])
			}
		} else {
			for _, c := range children {
				it.frontier.push(c)
			}
		}
	}
	it.done = true
	return engine.Solution{}, false, nil
}

// Exhausted reports whether the whole tree was searched (meaningful after
// Next returned ok=false with a nil error). A stream stopped by the
// MaxSolutions cap with open chains left is not exhausted, matching
// Run's Result.Exhausted.
func (it *Iter) Exhausted() bool { return it.done && it.err == nil && it.frontier.len() == 0 }
