package search

import (
	"context"
	"errors"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/term"
	"blog/internal/weights"
)

// Iter is a pull-based search: each Next call runs the strategy's loop
// just far enough to produce one more solution, which is how an
// interactive Prolog top level behaves ("; for more"). The weight rules
// still apply per completed chain when Learn is set, so an Iter that the
// caller abandons after the first answer has still learned from every
// chain it finished — the incremental setting the paper's sessions
// target.
type Iter struct {
	ctx       context.Context
	exp       *engine.Expander
	ws        weights.Store
	frontier  frontier
	opt       Options
	queryVars []*term.Var
	stats     Stats
	maxExp    uint64
	served    int
	done      bool
	err       error

	// trail, when non-nil, is the destructive-store DFS machine the Iter
	// delegates to (DFS without Options.NoTrail); the frontier fields
	// above are unused then.
	trail *engine.TrailRun

	// Branch-and-bound state when Options.Prune is set: open nodes whose
	// bound exceeds bestBound+PruneSlack are cut, exactly as in Run.
	bestBound float64
	haveBest  bool

	// Figure-1/figure-3 recording state when Options.RecordTree or
	// RecordTrace is set; like Run, recording routes DFS off the trail
	// machine onto the persistent-Env frontier.
	tb    *treeBuilder
	trace []string
}

// NewIter prepares a lazy search; ctx cancels future Next calls. Tree and
// trace recording route DFS onto the persistent-Env frontier, exactly as
// Run does (the trail machine keeps no per-node history); results arrive
// through Tree and Trace as the iteration progresses.
func NewIter(ctx context.Context, db *kb.DB, ws weights.Store, goals []term.Term, opt Options) (*Iter, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(goals) == 0 {
		return nil, errors.New("search: empty query")
	}
	if opt.Strategy == DFS && !opt.NoTrail && !opt.RecordTree && !opt.RecordTrace {
		maxExp := opt.MaxExpansions
		if maxExp == 0 {
			maxExp = DefaultMaxExpansions
		}
		tr := engine.NewTrailRun(engine.TrailConfig{
			DB:            db,
			Weights:       ws,
			OccursCheck:   opt.OccursCheck,
			MaxDepth:      opt.MaxDepth,
			Tabler:        opt.Tabler,
			Ctx:           ctx,
			NoVM:          opt.NoVM,
			Learn:         opt.Learn,
			Prune:         opt.Prune,
			PruneSlack:    opt.PruneSlack,
			MaxExpansions: maxExp,
			BudgetErr:     ErrBudget,
			Prof:          opt.Prof,
			Live:          opt.Live,
		}, goals)
		return &Iter{ctx: ctx, opt: opt, queryVars: tr.QueryVars(), trail: tr}, nil
	}
	exp := engine.NewExpander(db, ws)
	exp.OccursCheck = opt.OccursCheck
	exp.Ctx = ctx
	exp.Tabler = opt.Tabler
	exp.NoVM = opt.NoVM
	exp.Prof = opt.Prof
	exp.RecordTree = opt.RecordTree || opt.RecordTrace
	if opt.MaxDepth > 0 {
		exp.MaxDepth = opt.MaxDepth
	}
	var queryVars []*term.Var
	for _, g := range goals {
		queryVars = term.Vars(g, queryVars)
	}
	it := &Iter{
		ctx:       ctx,
		exp:       exp,
		ws:        ws,
		frontier:  newFrontier(opt.Strategy),
		opt:       opt,
		queryVars: queryVars,
		maxExp:    opt.MaxExpansions,
	}
	if opt.RecordTree {
		it.tb = newTreeBuilder(goals)
	}
	if it.maxExp == 0 {
		it.maxExp = DefaultMaxExpansions
	}
	it.frontier.push(exp.Root(goals))
	return it, nil
}

// Tree returns the search tree recorded so far when Options.RecordTree
// was set, nil otherwise. The tree grows as Next is called.
func (it *Iter) Tree() *Tree {
	if it.tb == nil {
		return nil
	}
	return it.tb.tree
}

// Trace returns the figure-1 style lines recorded so far when
// Options.RecordTrace was set.
func (it *Iter) Trace() []string { return it.trace }

// QueryVars returns the query's variables in first-occurrence order.
func (it *Iter) QueryVars() []*term.Var { return it.queryVars }

// Stats returns the work counters accumulated so far.
func (it *Iter) Stats() Stats {
	if it.trail != nil {
		return trailStats(it.trail.Stats())
	}
	s := it.stats
	s.VMDispatched = it.exp.VMDispatched
	s.Representation = RepPersistentEnv
	return s
}

// Next produces the next solution. ok is false when the search is over:
// either exhausted (err nil) or aborted (err non-nil, e.g. ErrBudget).
// After ok=false, further calls return the same result.
func (it *Iter) Next() (engine.Solution, bool, error) {
	if it.done {
		return engine.Solution{}, false, it.err
	}
	if it.opt.MaxSolutions > 0 && it.served >= it.opt.MaxSolutions {
		it.done = true
		if it.trail != nil {
			it.trail.Release()
		}
		return engine.Solution{}, false, nil
	}
	if it.trail != nil {
		return it.nextTrail()
	}
	for it.frontier.len() > 0 {
		if err := it.ctx.Err(); err != nil {
			it.done = true
			it.err = err
			return engine.Solution{}, false, err
		}
		if it.frontier.len() > it.stats.MaxFrontier {
			it.stats.MaxFrontier = it.frontier.len()
		}
		n := it.frontier.pop()
		if it.opt.Prune && it.haveBest && n.Bound > it.bestBound+it.opt.PruneSlack {
			it.stats.Pruned++
			if it.tb != nil {
				it.tb.status(n, "pruned")
			}
			continue
		}
		if n.IsSolution() {
			// Guard the yield itself: a solution generated before an earlier
			// Next call served a better bound must never reach the caller.
			// The pop-time prune above covers this today; this check is the
			// invariant stated where it matters, so a future reordering of
			// the pop path cannot silently start yielding stale bounds
			// (TestIterPruneStaleSolution pins the behavior).
			if it.opt.Prune && it.haveBest && n.Bound > it.bestBound+it.opt.PruneSlack {
				it.stats.Pruned++
				continue
			}
			sol := engine.Extract(n, it.queryVars)
			if it.opt.Learn {
				it.ws.RecordSuccess(sol.Chain)
			}
			if it.tb != nil {
				it.tb.status(n, "solution")
			}
			if !it.haveBest || n.Bound < it.bestBound {
				it.bestBound, it.haveBest = n.Bound, true
			}
			it.served++
			it.exp.ProfFlush()
			return sol, true, nil
		}
		if it.stats.Expanded >= it.maxExp {
			it.done = true
			it.err = ErrBudget
			it.exp.ProfFlush()
			return engine.Solution{}, false, it.err
		}
		it.stats.Expanded++
		if it.opt.Live != nil && it.stats.Expanded&1023 == 0 {
			it.opt.Live.Expanded.Store(it.stats.Expanded)
		}
		if n.Depth > it.stats.MaxDepth {
			it.stats.MaxDepth = n.Depth
		}
		children, err := it.exp.Expand(n)
		if err != nil && err != engine.ErrDepthLimit {
			it.done = true
			it.err = err
			it.exp.ProfFlush()
			return engine.Solution{}, false, err
		}
		if err == engine.ErrDepthLimit {
			it.stats.DepthCutoffs++
		}
		if len(children) == 0 {
			it.stats.Failures++
			if it.opt.Learn {
				it.ws.RecordFailure(n.Chain.Slice())
			}
			if it.tb != nil {
				it.tb.status(n, "fail")
			}
			continue
		}
		it.stats.Generated += uint64(len(children))
		if it.opt.RecordTrace {
			it.trace = append(it.trace, traceLine(n, children))
		}
		if it.tb != nil {
			it.tb.addChildren(n, children)
		}
		if it.opt.Strategy == DFS {
			for i := len(children) - 1; i >= 0; i-- {
				it.frontier.push(children[i])
			}
		} else {
			for _, c := range children {
				it.frontier.push(c)
			}
		}
	}
	it.done = true
	it.exp.ProfFlush()
	return engine.Solution{}, false, nil
}

// nextTrail delegates one Next step to the trail-store machine. The
// machine checks context, budget and prune bounds itself, in the same
// order as the loop above.
func (it *Iter) nextTrail() (engine.Solution, bool, error) {
	sol, ok, err := it.trail.Next()
	if err != nil {
		it.done = true
		it.err = err
		it.trail.Release()
		return engine.Solution{}, false, err
	}
	if !ok {
		it.done = true
		it.trail.Release()
		return engine.Solution{}, false, nil
	}
	it.served++
	return sol, true, nil
}

// Exhausted reports whether the whole tree was searched (meaningful after
// Next returned ok=false with a nil error). A stream stopped by the
// MaxSolutions cap with open chains left is not exhausted, matching
// Run's Result.Exhausted.
func (it *Iter) Exhausted() bool {
	if it.trail != nil {
		return it.done && it.err == nil && it.trail.Exhausted()
	}
	return it.done && it.err == nil && it.frontier.len() == 0
}
