package search

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"blog/internal/kb"
	"blog/internal/ref"
	"blog/internal/weights"
	"blog/internal/workload"
)

// solutionMultiset renders a result's solutions as a sorted string list
// for cross-strategy comparison.
func solutionMultiset(res *Result) []string {
	out := make([]string, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		out = append(out, s.Format(res.QueryVars))
	}
	sort.Strings(out)
	return out
}

// TestDifferentialStrategiesOnRandomPrograms is the engine's main
// soundness net: on stratified random programs, DFS, BFS and best-first
// (uniform, learned-table, and conditional-table guided) must all find
// exactly the same solution multiset, because B-LOG's claim is that the
// bound changes the ORDER of the search, never its answers.
func TestDifferentialStrategiesOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := workload.RandomProgram(3, 3, 4, 4, seed)
			db, _, err := kb.LoadString(src)
			if err != nil {
				t.Fatalf("random program does not parse: %v\n%s", err, src)
			}
			query := "l2p0(Q,R)"
			var want []string
			type runCase struct {
				name string
				ws   weights.Store
				opt  Options
			}
			cases := []runCase{
				{"dfs", weights.NewUniform(weights.DefaultConfig()), Options{Strategy: DFS, MaxDepth: 24}},
				{"bfs", weights.NewUniform(weights.DefaultConfig()), Options{Strategy: BFS, MaxDepth: 24}},
				{"best-uniform", weights.NewUniform(weights.DefaultConfig()), Options{Strategy: BestFirst, MaxDepth: 24}},
				{"best-learn", weights.NewTable(weights.Config{N: 16, A: 24}), Options{Strategy: BestFirst, Learn: true, MaxDepth: 24}},
				{"best-conditional", weights.NewConditional(weights.Config{N: 16, A: 24}), Options{Strategy: BestFirst, Learn: true, MaxDepth: 24}},
			}
			for _, c := range cases {
				res, err := Run(context.Background(), db, c.ws, q(t, query), c.opt)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				got := solutionMultiset(res)
				if want == nil {
					want = got
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("%s found %d solutions, dfs found %d\nprogram:\n%s",
						c.name, len(got), len(want), src)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s solution %d = %q, want %q", c.name, i, got[i], want[i])
					}
				}
			}
			// A learned best-first re-run must also agree: learning only
			// reorders.
			tab := weights.NewTable(weights.Config{N: 16, A: 24})
			if _, err := Run(context.Background(), db, tab, q(t, query), Options{Strategy: BestFirst, Learn: true, MaxDepth: 24}); err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), db, tab, q(t, query), Options{Strategy: BestFirst, Learn: true, MaxDepth: 24})
			if err != nil {
				t.Fatal(err)
			}
			got := solutionMultiset(res)
			if len(got) != len(want) {
				t.Fatalf("learned re-run found %d solutions, want %d", len(got), len(want))
			}
		})
	}
}

// TestDifferentialEnginesAgreeWithFixpointOracle checks the top-down
// engines against the independent bottom-up fixpoint evaluator of
// internal/ref on Datalog-fragment workload programs. The queries include
// constant first arguments, so the symbolized first-argument index is on
// the tested path: a pruning bug there would drop answers the oracle
// licenses.
func TestDifferentialEnginesAgreeWithFixpointOracle(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		queries []string
	}{
		{"family", workload.FamilyTree(4, 2), []string{
			"gf(p0,G)", "anc(p0,X)", "anc(X,p3)", "f(p0,X)"}},
		{"dag", workload.DAG(4, 3, 2, 7), []string{
			"path(n0_0,Z)", "edge(n0_1,Y)", "path(X,n3_0)"}},
		{"random", workload.RandomProgram(3, 3, 4, 4, 5), []string{
			"l2p0(Q,R)", "l1p0(Q,R)"}},
		{"join", workload.Join(24, 40, 0.5, 13), []string{
			"r(X,K), s(K,V)"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db, _, err := kb.LoadString(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			model, err := ref.Eval(db)
			if err != nil {
				t.Fatalf("oracle rejected program: %v", err)
			}
			for _, query := range tc.queries {
				goals := q(t, query)
				want := model.Answers(goals)
				sort.Strings(want)
				for _, strat := range []Strategy{DFS, BFS, BestFirst} {
					res, err := Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()),
						q(t, query), Options{Strategy: strat, MaxDepth: 64})
					if err != nil {
						t.Fatalf("%s %q: %v", strat, query, err)
					}
					if !res.Exhausted {
						t.Fatalf("%s %q: search not exhausted, comparison invalid", strat, query)
					}
					// The engine enumerates proofs; the oracle answers.
					// Dedup before comparing.
					seen := map[string]bool{}
					var got []string
					for _, s := range res.Solutions {
						f := s.Format(res.QueryVars)
						if !seen[f] {
							seen[f] = true
							got = append(got, f)
						}
					}
					sort.Strings(got)
					if len(got) != len(want) {
						t.Fatalf("%s %q: engine found %d distinct answers, oracle %d\nengine: %v\noracle: %v",
							strat, query, len(got), len(want), got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s %q: answer %d = %q, oracle %q", strat, query, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestDifferentialLearnedSearchNeverLosesSolutions drives learning hard
// on the deep-failure programs and re-checks completeness each round:
// even with many infinities in the table, unpruned best-first remains
// complete (the paper: "the correct solution(s) will still be found").
func TestDifferentialLearnedSearchNeverLosesSolutions(t *testing.T) {
	db, _, err := kb.LoadString(workload.DeepFailure(6, 5))
	if err != nil {
		t.Fatal(err)
	}
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	for round := 0; round < 5; round++ {
		res, err := Run(context.Background(), db, tab, q(t, "top(W)"), Options{Strategy: BestFirst, Learn: true, MaxDepth: 64})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(res.Solutions) != 1 {
			t.Fatalf("round %d: %d solutions, want 1", round, len(res.Solutions))
		}
		if !res.Exhausted {
			t.Fatalf("round %d: not exhausted", round)
		}
	}
}
