package search

import (
	"context"
	"strings"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/term"
	"blog/internal/weights"
	"blog/internal/workload"
)

const fig1 = `
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).
`

// sec5 is the A :- B,C,D example of section 5. Clause IDs:
// 0: a:-b,c,d  1: b:-e  2: b:-f  3: c:-g  4: d:-h  5: e  6: f  7: g  8: h
const sec5 = `
a :- b, c, d.
b :- e.
b :- f.
c :- g.
d :- h.
e. f. g. h.
`

func load(t testing.TB, src string) *kb.DB {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func q(t testing.TB, s string) []term.Term {
	t.Helper()
	gs, err := parse.Query(s)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func uniform() weights.Store { return weights.NewUniform(weights.DefaultConfig()) }

func solutionsOf(res *Result, v string) []string {
	var out []string
	for _, s := range res.Solutions {
		out = append(out, s.Bindings[v].String())
	}
	return out
}

func TestDFSFig1AllSolutions(t *testing.T) {
	db := load(t, fig1)
	res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	got := solutionsOf(res, "G")
	if len(got) != 2 || got[0] != "den" || got[1] != "doug" {
		t.Errorf("solutions = %v, want [den doug] in Prolog order", got)
	}
	if !res.Exhausted {
		t.Error("search should exhaust")
	}
	if res.Stats.Failures != 1 {
		t.Errorf("failures = %d, want 1 (the m branch)", res.Stats.Failures)
	}
}

func TestDFSFirstSolutionIsProlog(t *testing.T) {
	db := load(t, fig1)
	res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{Strategy: DFS, MaxSolutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := solutionsOf(res, "G"); len(got) != 1 || got[0] != "den" {
		t.Errorf("first solution = %v, want den (figure 1)", got)
	}
}

func TestBFSSameSolutionSet(t *testing.T) {
	db := load(t, fig1)
	res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{Strategy: BFS})
	if err != nil {
		t.Fatal(err)
	}
	got := solutionsOf(res, "G")
	if len(got) != 2 {
		t.Fatalf("solutions = %v", got)
	}
	set := map[string]bool{got[0]: true, got[1]: true}
	if !set["den"] || !set["doug"] {
		t.Errorf("solutions = %v", got)
	}
}

func TestBestFirstUniformSameSolutionSet(t *testing.T) {
	db := load(t, fig1)
	res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{Strategy: BestFirst})
	if err != nil {
		t.Fatal(err)
	}
	if got := solutionsOf(res, "G"); len(got) != 2 {
		t.Errorf("solutions = %v", got)
	}
}

func TestAllStrategiesAgreeOnConjunctions(t *testing.T) {
	db := load(t, fig1)
	goals := q(t, "f(sam,Y), f(Y,G)")
	for _, s := range []Strategy{DFS, BFS, BestFirst} {
		res, err := Run(context.Background(), db, uniform(), goals, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Solutions) != 2 {
			t.Errorf("%v: %d solutions, want 2", s, len(res.Solutions))
		}
	}
}

func TestGroundQuerySucceedsOnce(t *testing.T) {
	db := load(t, fig1)
	res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,den)"), Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 {
		t.Errorf("gf(sam,den): %d solutions", len(res.Solutions))
	}
	res2, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,peg)"), Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Solutions) != 0 {
		t.Errorf("gf(sam,peg) should fail")
	}
}

func TestEmptyQueryErrors(t *testing.T) {
	db := load(t, fig1)
	if _, err := Run(context.Background(), db, uniform(), nil, Options{}); err == nil {
		t.Error("empty query must error")
	}
}

func TestMaxExpansionsBudget(t *testing.T) {
	db := load(t, "loop :- loop.")
	_, err := Run(context.Background(), db, uniform(), q(t, "loop"), Options{Strategy: DFS, MaxExpansions: 10, MaxDepth: 1 << 20})
	if err != ErrBudget {
		t.Errorf("got %v, want ErrBudget", err)
	}
}

func TestDepthLimitTerminatesCyclicProgram(t *testing.T) {
	db := load(t, "loop :- loop.")
	res, err := Run(context.Background(), db, uniform(), q(t, "loop"), Options{Strategy: DFS, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 || res.Stats.DepthCutoffs == 0 {
		t.Errorf("cyclic program: %d solutions, %d cutoffs", len(res.Solutions), res.Stats.DepthCutoffs)
	}
}

func TestFig1Trace(t *testing.T) {
	db := load(t, fig1)
	res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{
		Strategy: DFS, MaxSolutions: 1, RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Trace, "\n")
	// The figure-1 steps: the query resolves against both rules, then
	// f(sam,Y) matches f(sam,larry), then f(larry,G) matches den.
	for _, want := range []string{"?- gf(sam,G)", "f(sam,larry)", "f(larry,den)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
}

func TestFig3TreeShape(t *testing.T) {
	db := load(t, fig1)
	res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{
		Strategy: DFS, RecordTree: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := res.Tree
	if tree == nil {
		t.Fatal("no tree recorded")
	}
	sols, fails, _ := tree.CountStatus()
	if sols != 2 || fails != 1 {
		t.Errorf("tree has %d solutions, %d failures; figure 3 shows 2 and 1", sols, fails)
	}
	// Root fans out to the two rule alternatives.
	if len(tree.Root.Children) != 2 {
		t.Errorf("root fan-out = %d, want 2", len(tree.Root.Children))
	}
	rendered := tree.Render()
	for _, want := range []string{"?- gf(sam,G)", "SOLUTION", "FAIL", "f(larry,den)", "f(larry,doug)"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
	if tree.Size() < 6 {
		t.Errorf("tree size = %d, suspiciously small", tree.Size())
	}
}

// sec5Weights installs the figure-4 weight scenario of section 5.
func sec5Weights(b1 float64) *weights.Table {
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	tab.Set(kb.Arc{Caller: kb.Query, Pos: 0, Callee: 0}, 0) // ?- a
	tab.Set(kb.Arc{Caller: 0, Pos: 0, Callee: 1}, b1)       // first B  (b:-e)
	tab.Set(kb.Arc{Caller: 0, Pos: 0, Callee: 2}, 3)        // second B (b:-f)
	tab.Set(kb.Arc{Caller: 0, Pos: 1, Callee: 3}, 5)        // C
	tab.Set(kb.Arc{Caller: 0, Pos: 2, Callee: 4}, 6)        // D
	tab.Set(kb.Arc{Caller: 1, Pos: 0, Callee: 5}, 1)        // E
	tab.Set(kb.Arc{Caller: 2, Pos: 0, Callee: 6}, 2)        // F
	tab.Set(kb.Arc{Caller: 3, Pos: 0, Callee: 7}, 1)        // G
	tab.Set(kb.Arc{Caller: 4, Pos: 0, Callee: 8}, 1)        // H
	return tab
}

// expansionOrder runs best-first and returns the first goal resolved at
// each expansion, via the trace.
func expansionOrder(t *testing.T, tab *weights.Table) []string {
	db := load(t, sec5)
	res, err := Run(context.Background(), db, tab, q(t, "a"), Options{Strategy: BestFirst, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, line := range res.Trace {
		goal := strings.TrimPrefix(line, "?- ")
		if i := strings.IndexAny(goal, ", "); i > 0 {
			goal = goal[:i]
		}
		order = append(order, goal)
	}
	return order
}

func TestSection5WorkedExampleScenario1(t *testing.T) {
	// Weights as in figure 4 (first B = 4): the second B (weight 3) is
	// expanded first; after its chain reaches F (bound 5), the first B
	// (weight 4) is chosen next — the paper's described order.
	order := expansionOrder(t, sec5Weights(4))
	// order[0] = a (root), order[1] = b via... expansions resolve goals:
	// a, then b (fan-out to both Bs), then f (second B chain), then e.
	want := []string{"a", "b", "f", "e"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("expansion order = %v, want prefix %v", order, want)
		}
	}
}

func TestSection5WorkedExampleScenario2(t *testing.T) {
	// First B weight lowered to 1: now B:-E is expanded before the second
	// B ("this appears to be a depth-first search, as in PROLOG").
	order := expansionOrder(t, sec5Weights(1))
	want := []string{"a", "b", "e"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("expansion order = %v, want prefix %v", order, want)
		}
	}
	// The second B's chain (f) must come after e's chain continues (c).
	posF, posC := -1, -1
	for i, g := range order {
		if g == "f" && posF < 0 {
			posF = i
		}
		if g == "c" && posC < 0 {
			posC = i
		}
	}
	if posC < 0 || (posF >= 0 && posF < posC) {
		t.Errorf("order = %v: chain through first B should continue (c) before second B (f)", order)
	}
}

func TestLearningRecordsSuccessAndFailure(t *testing.T) {
	db := load(t, fig1)
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	_, err := Run(context.Background(), db, tab, q(t, "gf(sam,G)"), Options{Strategy: DFS, Learn: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() == 0 {
		t.Fatal("learning run should store weights")
	}
	// The m-branch failure must have produced an infinity somewhere on
	// the failed chain (rule 2's arcs).
	foundInf := false
	for _, a := range []kb.Arc{
		{Caller: kb.Query, Pos: 0, Callee: 1},
		{Caller: 1, Pos: 0, Callee: 3},
	} {
		if k, _ := tab.State(a); k == weights.Infinite {
			foundInf = true
		}
	}
	if !foundInf {
		t.Error("failed chain should carry an infinity")
	}
	// Successful chains should now be bound N.
	for _, chain := range [][]kb.Arc{
		{{Caller: kb.Query, Pos: 0, Callee: 0}, {Caller: 0, Pos: 0, Callee: 3}, {Caller: 0, Pos: 1, Callee: 5}},
	} {
		b := weights.ChainBound(tab, chain)
		if b != 16 {
			t.Errorf("success chain bound = %v, want 16", b)
		}
	}
}

func TestLearningSpeedsUpRequery(t *testing.T) {
	// The paper's adaptivity claim: "If a successful query is found, the
	// next search will try this path early and if an unsuccessful search
	// is detected, its path will be avoided until all others have been
	// attempted."
	db := load(t, fig1)
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	goals := q(t, "gf(sam,G)")
	first, err := Run(context.Background(), db, tab, goals, Options{Strategy: BestFirst, Learn: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), db, tab, q(t, "gf(sam,G)"), Options{
		Strategy: BestFirst, Learn: true, MaxSolutions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Expanded >= first.Stats.Expanded {
		t.Errorf("re-query expanded %d nodes, first run %d; learning should help",
			second.Stats.Expanded, first.Stats.Expanded)
	}
	// The learned-infinite m-branch must not be expanded at all when a
	// single solution is requested.
	if second.Stats.Failures != 0 {
		t.Errorf("re-query hit %d failures; the infinite branch should be avoided", second.Stats.Failures)
	}
}

func TestPruningWithExactWeights(t *testing.T) {
	// With weights from the theoretical solver, pruning keeps all
	// solutions (their bounds are equal-minimal).
	db := load(t, fig1)
	goals := q(t, "gf(sam,G)")
	outcomes, err := EnumerateOutcomes(context.Background(), db, goals, 16)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := weights.Solve(outcomes)
	if err != nil {
		t.Fatal(err)
	}
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	sol.Apply(tab)
	res, err := Run(context.Background(), db, tab, goals, Options{Strategy: BestFirst, Prune: true, PruneSlack: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Errorf("pruned search found %d solutions, want 2", len(res.Solutions))
	}
}

func TestEnumerateOutcomesFig1(t *testing.T) {
	db := load(t, fig1)
	outcomes, err := EnumerateOutcomes(context.Background(), db, q(t, "gf(sam,G)"), 16)
	if err != nil {
		t.Fatal(err)
	}
	var succ, fail int
	for _, o := range outcomes {
		if o.Success {
			succ++
		} else {
			fail++
		}
	}
	if succ != 2 || fail != 1 {
		t.Errorf("outcomes = %d success, %d fail; figure 3 shows 2 and 1", succ, fail)
	}
}

func TestBestFirstAvoidsDeepFailureAfterLearning(t *testing.T) {
	// A program with a cheap failing branch and an expensive succeeding
	// branch: after one learning pass, best-first goes straight to the
	// solution.
	src := `
top(X) :- bad(X).
top(X) :- good(X).
bad(X) :- step1(X), step2(X), nothere(X).
step1(x). step2(x).
good(x).
`
	db := load(t, src)
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	goals := q(t, "top(x)")
	if _, err := Run(context.Background(), db, tab, goals, Options{Strategy: BestFirst, Learn: true}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), db, tab, q(t, "top(x)"), Options{Strategy: BestFirst, Learn: true, MaxSolutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failures != 0 {
		t.Errorf("learned search still failed %d times", res.Stats.Failures)
	}
	if res.Stats.Expanded > 3 {
		t.Errorf("learned search expanded %d nodes, want <= 3", res.Stats.Expanded)
	}
}

func TestBestFirstSolutionsInBoundOrder(t *testing.T) {
	// A fundamental branch-and-bound invariant: since bounds grow
	// monotonically along chains and the frontier pops minima, best-first
	// emits solutions in nondecreasing bound order — with any weights.
	cases := []struct {
		src, query string
		ws         weights.Store
	}{
		{fig1, "gf(sam,G)", uniform()},
		{workload.FamilyTree(4, 3), "gf(p0,G)", uniform()},
		{workload.FamilyTree(4, 3), "anc(p0,X)", weights.NewTable(weights.Config{N: 16, A: 32})},
		{workload.Unbalanced(8, 10), "job(X)", weights.NewTable(weights.Config{N: 16, A: 64})},
	}
	for _, c := range cases {
		db := load(t, c.src)
		res, err := Run(context.Background(), db, c.ws, q(t, c.query), Options{Strategy: BestFirst, MaxDepth: 32})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Solutions); i++ {
			if res.Solutions[i].Bound < res.Solutions[i-1].Bound {
				t.Fatalf("%s: solution %d bound %v < previous %v",
					c.query, i, res.Solutions[i].Bound, res.Solutions[i-1].Bound)
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	if DFS.String() != "dfs" || BFS.String() != "bfs" || BestFirst.String() != "best-first" {
		t.Error("strategy names")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy name")
	}
}

func TestArithmeticProgramAllStrategies(t *testing.T) {
	src := `
sumto(0, 0).
sumto(N, S) :- N > 0, M is N - 1, sumto(M, T), S is T + N.
`
	db := load(t, src)
	for _, s := range []Strategy{DFS, BFS, BestFirst} {
		res, err := Run(context.Background(), db, uniform(), q(t, "sumto(10, S)"), Options{Strategy: s, MaxDepth: 64})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Solutions) != 1 || res.Solutions[0].Bindings["S"].String() != "55" {
			t.Errorf("%v: solutions %v", s, res.Solutions)
		}
	}
}

func TestListProgram(t *testing.T) {
	src := `
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
`
	db := load(t, src)
	res, err := Run(context.Background(), db, uniform(), q(t, "append(X, Y, [1,2,3])"), Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 4 {
		t.Errorf("append splits = %d, want 4", len(res.Solutions))
	}
	res2, err := Run(context.Background(), db, uniform(), q(t, "member(M, [a,b,c])"), Options{Strategy: BestFirst})
	if err != nil {
		t.Fatal(err)
	}
	if got := solutionsOf(res2, "M"); len(got) != 3 {
		t.Errorf("members = %v", got)
	}
}

func BenchmarkDFSFig1(b *testing.B) {
	db := load(b, fig1)
	goals, _ := parse.Query("gf(sam,G)")
	ws := uniform()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), db, ws, goals, Options{Strategy: DFS}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestFirstFig1(b *testing.B) {
	db := load(b, fig1)
	goals, _ := parse.Query("gf(sam,G)")
	ws := uniform()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), db, ws, goals, Options{Strategy: BestFirst}); err != nil {
			b.Fatal(err)
		}
	}
}
