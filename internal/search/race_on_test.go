//go:build race

package search

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation changes allocation behavior; the
// allocation-regression guard skips itself then.
const raceEnabled = true
