package search

import (
	"context"
	"testing"

	"blog/internal/vm"
	"blog/internal/workload"
)

// TestDFSAllocationBudget is the allocation-regression guard for the
// sequential hot path: one trail-store DFS query over a deep-failure
// program must stay within a small fixed allocation budget. The trail
// machine recycles its scratch (store, frames, compounds, goal blocks,
// choice points) across runs, so the steady-state cost per query is a
// handful of allocations — the run header, the refreshed root goal and
// the extracted solution — regardless of the ~200 expansions underneath.
// If this fails after an engine change, something on the per-expansion
// path started allocating again; profile before raising the budget.
func TestDFSAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	if !vm.Enabled {
		t.Skip("BLOG_COMPILED=off runs the tree-walking path, which has its own costs")
	}
	db := load(t, workload.DeepFailure(16, 12))
	goals := q(t, "top(W)")
	ws := uniform()
	opt := Options{Strategy: DFS, MaxSolutions: 1, MaxDepth: 64}
	run := func() {
		res, err := Run(context.Background(), db, ws, goals, opt)
		if err != nil || len(res.Solutions) != 1 {
			t.Fatalf("run: %d solutions, err %v", len(res.Solutions), err)
		}
	}
	run() // warm the program cache and the scratch pool
	// Measured steady state is ~30 allocations per query; the budget
	// leaves slack for pool refills after a GC cycle empties the
	// sync.Pool mid-measurement, not for per-expansion regressions
	// (each of the ~200 expansions allocating once would blow straight
	// past it).
	const budget = 90
	if got := testing.AllocsPerRun(50, run); got > budget {
		t.Errorf("DFS query allocated %.1f times, budget %d", got, budget)
	}
}
