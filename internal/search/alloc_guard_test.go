package search

import (
	"context"
	"sort"
	"testing"
	"time"

	"blog/internal/obs"
	"blog/internal/vm"
	"blog/internal/workload"
)

// TestDFSAllocationBudget is the allocation-regression guard for the
// sequential hot path: one trail-store DFS query over a deep-failure
// program must stay within a small fixed allocation budget. The trail
// machine recycles its scratch (store, frames, compounds, goal blocks,
// choice points) across runs, so the steady-state cost per query is a
// handful of allocations — the run header, the refreshed root goal and
// the extracted solution — regardless of the ~200 expansions underneath.
// If this fails after an engine change, something on the per-expansion
// path started allocating again; profile before raising the budget.
func TestDFSAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	if !vm.Enabled {
		t.Skip("BLOG_COMPILED=off runs the tree-walking path, which has its own costs")
	}
	db := load(t, workload.DeepFailure(16, 12))
	goals := q(t, "top(W)")
	ws := uniform()
	opt := Options{Strategy: DFS, MaxSolutions: 1, MaxDepth: 64}
	run := func() {
		res, err := Run(context.Background(), db, ws, goals, opt)
		if err != nil || len(res.Solutions) != 1 {
			t.Fatalf("run: %d solutions, err %v", len(res.Solutions), err)
		}
	}
	run() // warm the program cache and the scratch pool
	// Measured steady state is ~30 allocations per query; the budget
	// leaves slack for pool refills after a GC cycle empties the
	// sync.Pool mid-measurement, not for per-expansion regressions
	// (each of the ~200 expansions allocating once would blow straight
	// past it).
	const budget = 90
	if got := testing.AllocsPerRun(50, run); got > budget {
		t.Errorf("DFS query allocated %.1f times, budget %d", got, budget)
	}
}

// TestDFSProfilerAllocationBudget pins the profiler's hot-path cost: with
// a warm profiler (every predicate's cell already published), a profiled
// query may allocate only the per-run Meter on top of the unprofiled
// budget. A failure here means Note/Flush started allocating per
// dispatch.
func TestDFSProfilerAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	if !vm.Enabled {
		t.Skip("BLOG_COMPILED=off runs the tree-walking path, which has its own costs")
	}
	db := load(t, workload.DeepFailure(16, 12))
	goals := q(t, "top(W)")
	ws := uniform()
	prof := obs.NewProfiler()
	opt := Options{Strategy: DFS, MaxSolutions: 1, MaxDepth: 64, Prof: prof}
	run := func() {
		res, err := Run(context.Background(), db, ws, goals, opt)
		if err != nil || len(res.Solutions) != 1 {
			t.Fatalf("run: %d solutions, err %v", len(res.Solutions), err)
		}
	}
	run() // warm the scratch pool and publish every predicate's cell
	// The unprofiled budget plus a handful for the Meter; per-dispatch
	// allocations (~200 expansions) would blow straight past it.
	const budget = 100
	if got := testing.AllocsPerRun(50, run); got > budget {
		t.Errorf("profiled DFS query allocated %.1f times, budget %d", got, budget)
	}
	if prof.TotalNanos() == 0 {
		t.Error("profiler attributed no time")
	}
}

// TestDFSObservabilityOffOverhead is a gross-inversion tripwire for the
// disabled path: with no profiler, no trace and no live registry, the
// query must not run slower than the fully instrumented one. It cannot
// measure the real disabled-path overhead (that is what the E1 benchmarks
// against the recorded baseline are for) — it catches the disabled path
// accidentally doing instrumented-path work.
func TestDFSObservabilityOffOverhead(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing test")
	}
	db := load(t, workload.DeepFailure(16, 12))
	goals := q(t, "top(W)")
	ws := uniform()
	median := func(opt Options) time.Duration {
		times := make([]time.Duration, 7)
		for i := range times {
			start := time.Now()
			if _, err := Run(context.Background(), db, ws, goals, opt); err != nil {
				t.Fatal(err)
			}
			times[i] = time.Since(start)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[3]
	}
	base := Options{Strategy: DFS, MaxSolutions: 1, MaxDepth: 64}
	on := base
	on.Prof = obs.NewProfiler()
	median(base) // warm
	off := median(base)
	instrumented := median(on)
	// 25% headroom plus an absolute floor absorbs scheduler noise on a
	// ~30µs query; a real inversion (off paying per-dispatch timer costs)
	// is far larger.
	if off > instrumented*5/4+50*time.Microsecond {
		t.Errorf("observability-off run (%v) slower than instrumented run (%v)", off, instrumented)
	}
}
