// Package search implements the three search disciplines the paper
// compares over the OR-tree: Prolog's depth-first search (the baseline of
// section 2), breadth-first search, and B-LOG's weighted best-first
// branch-and-bound search (sections 3-5), together with the driver that
// applies the weight update rules as chains complete.
package search

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/obs"
	"blog/internal/term"
	"blog/internal/weights"
)

// Strategy selects the search discipline.
type Strategy int

const (
	// DFS expands the most recently generated node first, taking clause
	// alternatives in source order: Prolog's search.
	DFS Strategy = iota
	// BFS expands nodes in generation order.
	BFS
	// BestFirst expands the open node with the least bound, the B-LOG
	// discipline.
	BestFirst
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case DFS:
		return "dfs"
	case BFS:
		return "bfs"
	case BestFirst:
		return "best-first"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a search run.
type Options struct {
	Strategy Strategy
	// MaxSolutions stops the search after this many solutions; 0 finds all.
	MaxSolutions int
	// MaxExpansions bounds work; 0 means DefaultMaxExpansions.
	MaxExpansions uint64
	// Learn applies the section-5 weight update rules to the store as
	// chains complete.
	Learn bool
	// Prune cuts open nodes whose bound exceeds the best solution found
	// so far (strict branch and bound). Sound only when weights satisfy
	// the section-4 requirements; with heuristic weights it may lose
	// solutions, which experiment E3 quantifies.
	Prune bool
	// PruneSlack widens the pruning threshold: a node survives while
	// bound <= best + PruneSlack.
	PruneSlack float64
	// RecordTree builds a Tree of the entire search for rendering.
	RecordTree bool
	// RecordTrace collects figure-1 style resolution trace lines.
	RecordTrace bool
	// OccursCheck enables sound unification.
	OccursCheck bool
	// MaxDepth bounds chain length; 0 uses the store's A constant.
	MaxDepth int
	// Tabler, when non-nil, resolves declared tabled predicates against
	// memoized answer tables (see internal/table) instead of program
	// clauses.
	Tabler engine.Tabler
	// NoVM forces the tree-walking resolution path (the differential
	// oracle) instead of the compiled bytecode engine.
	NoVM bool
	// NoTrail forces DFS onto the persistent-Env frontier (the
	// differential oracle for the trail-store machine) instead of the
	// destructive binding store. Non-DFS strategies always use Env —
	// their frontiers hold many open nodes at once and genuinely need
	// persistent environments.
	NoTrail bool
	// Prof, when non-nil, accumulates per-predicate profile counters on
	// either binding representation. Nil (the default) costs one nil
	// check on the hot path.
	Prof *obs.Profiler
	// Live, when non-nil, receives periodic expansion-count updates for
	// the live query inspector.
	Live *obs.Live
}

// DefaultMaxExpansions stops runaway searches on cyclic programs.
const DefaultMaxExpansions = 5_000_000

// Binding-store representations reported in Stats.Representation.
const (
	// RepTrailStore is the mutable trail-disciplined store (engine.TrailRun).
	RepTrailStore = "trail-store"
	// RepPersistentEnv is the immutable Env chain representation.
	RepPersistentEnv = "persistent-env"
)

// Stats counts the work a search performed.
type Stats struct {
	Expanded     uint64 // nodes whose first goal was resolved
	Generated    uint64 // children created
	Failures     uint64 // chains that died (no children)
	DepthCutoffs uint64 // chains cut by MaxDepth
	Pruned       uint64 // chains cut by the bound
	MaxFrontier  int    // peak open-list size (choice-point stack for trail runs)
	MaxDepth     int    // deepest chain expanded
	VMDispatched uint64 // goals resolved on the compiled bytecode path
	// Representation names the binding representation that ran:
	// RepTrailStore or RepPersistentEnv.
	Representation string
}

// Result is the outcome of a search run.
type Result struct {
	Solutions []engine.Solution
	Stats     Stats
	// Exhausted is true when the frontier emptied: every chain was
	// followed to a solution or failure, so the solution list is complete
	// (for non-pruned runs).
	Exhausted bool
	// Tree is the recorded search tree when Options.RecordTree was set.
	Tree *Tree
	// Trace holds figure-1 style lines when Options.RecordTrace was set.
	Trace []string
	// QueryVars are the variables of the query in first-occurrence order.
	QueryVars []*term.Var
}

// ErrBudget is reported when MaxExpansions was hit before exhaustion.
var ErrBudget = errors.New("search: expansion budget exhausted")

// Run searches for solutions to goals over db guided by ws. A cancelled
// or deadlined ctx aborts the search between node expansions and returns
// the context's error with the work done so far.
func Run(ctx context.Context, db *kb.DB, ws weights.Store, goals []term.Term, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(goals) == 0 {
		return nil, errors.New("search: empty query")
	}
	if opt.Strategy == DFS && !opt.NoTrail && !opt.RecordTree && !opt.RecordTrace {
		return runTrail(ctx, db, ws, goals, opt)
	}
	exp := engine.NewExpander(db, ws)
	exp.OccursCheck = opt.OccursCheck
	exp.Ctx = ctx
	exp.Tabler = opt.Tabler
	exp.RecordTree = opt.RecordTree || opt.RecordTrace
	exp.NoVM = opt.NoVM
	exp.Prof = opt.Prof
	defer exp.ProfFlush()
	if opt.MaxDepth > 0 {
		exp.MaxDepth = opt.MaxDepth
	}

	var queryVars []*term.Var
	for _, g := range goals {
		queryVars = term.Vars(g, queryVars)
	}

	res := &Result{QueryVars: queryVars}
	res.Stats.Representation = RepPersistentEnv
	defer func() { res.Stats.VMDispatched = exp.VMDispatched }()
	var tb *treeBuilder
	if opt.RecordTree {
		tb = newTreeBuilder(goals)
		res.Tree = tb.tree
	}

	f := newFrontier(opt.Strategy)
	root := exp.Root(goals)
	f.push(root)

	maxExp := opt.MaxExpansions
	if maxExp == 0 {
		maxExp = DefaultMaxExpansions
	}
	bestBound := 0.0
	haveBest := false

	for f.len() > 0 {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if f.len() > res.Stats.MaxFrontier {
			res.Stats.MaxFrontier = f.len()
		}
		n := f.pop()

		if opt.Prune && haveBest && n.Bound > bestBound+opt.PruneSlack {
			res.Stats.Pruned++
			if tb != nil {
				tb.status(n, "pruned")
			}
			continue
		}

		if n.IsSolution() {
			sol := engine.Extract(n, queryVars)
			res.Solutions = append(res.Solutions, sol)
			if opt.Learn {
				ws.RecordSuccess(sol.Chain)
			}
			if tb != nil {
				tb.status(n, "solution")
			}
			if !haveBest || n.Bound < bestBound {
				bestBound, haveBest = n.Bound, true
			}
			if opt.MaxSolutions > 0 && len(res.Solutions) >= opt.MaxSolutions {
				return res, nil
			}
			continue
		}

		if res.Stats.Expanded >= maxExp {
			return res, ErrBudget
		}
		res.Stats.Expanded++
		if opt.Live != nil && res.Stats.Expanded&1023 == 0 {
			opt.Live.Expanded.Store(res.Stats.Expanded)
		}
		if n.Depth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = n.Depth
		}

		children, err := exp.Expand(n)
		if err != nil && err != engine.ErrDepthLimit {
			return res, err
		}
		if err == engine.ErrDepthLimit {
			res.Stats.DepthCutoffs++
		}
		if len(children) == 0 {
			res.Stats.Failures++
			if opt.Learn {
				ws.RecordFailure(n.Chain.Slice())
			}
			if tb != nil {
				tb.status(n, "fail")
			}
			continue
		}
		res.Stats.Generated += uint64(len(children))
		if opt.RecordTrace {
			res.Trace = append(res.Trace, traceLine(n, children))
		}
		if tb != nil {
			tb.addChildren(n, children)
		}
		if opt.Strategy == DFS {
			// Push in reverse so the first clause pops first: source order.
			for i := len(children) - 1; i >= 0; i-- {
				f.push(children[i])
			}
		} else {
			for _, c := range children {
				f.push(c)
			}
		}
	}
	res.Exhausted = true
	return res, nil
}

// runTrail is Run's sequential DFS on the destructive trail-store
// machine (engine.TrailRun). It visits nodes in the same order and keeps
// the same counters as the persistent-Env DFS at every step, so results
// are interchangeable; only the binding representation differs.
func runTrail(ctx context.Context, db *kb.DB, ws weights.Store, goals []term.Term, opt Options) (*Result, error) {
	maxExp := opt.MaxExpansions
	if maxExp == 0 {
		maxExp = DefaultMaxExpansions
	}
	tr := engine.NewTrailRun(engine.TrailConfig{
		DB:            db,
		Weights:       ws,
		OccursCheck:   opt.OccursCheck,
		MaxDepth:      opt.MaxDepth,
		Tabler:        opt.Tabler,
		Ctx:           ctx,
		NoVM:          opt.NoVM,
		Learn:         opt.Learn,
		Prune:         opt.Prune,
		PruneSlack:    opt.PruneSlack,
		MaxExpansions: maxExp,
		BudgetErr:     ErrBudget,
		Prof:          opt.Prof,
		Live:          opt.Live,
	}, goals)
	res := &Result{QueryVars: tr.QueryVars()}
	defer tr.Release() // solutions are detached; recycle the run's scratch
	defer func() { res.Stats = trailStats(tr.Stats()) }()
	for {
		sol, ok, err := tr.Next()
		if err != nil {
			return res, err
		}
		if !ok {
			res.Exhausted = tr.Exhausted()
			return res, nil
		}
		res.Solutions = append(res.Solutions, sol)
		if opt.MaxSolutions > 0 && len(res.Solutions) >= opt.MaxSolutions {
			return res, nil
		}
	}
}

// trailStats maps the trail machine's counters onto the search Stats
// shape; the choice-point stack peak stands in for the open-list peak.
func trailStats(ts engine.TrailStats) Stats {
	return Stats{
		Expanded:       ts.Expanded,
		Generated:      ts.Generated,
		Failures:       ts.Failures,
		DepthCutoffs:   ts.DepthCutoffs,
		Pruned:         ts.Pruned,
		MaxFrontier:    ts.MaxChoicePoints,
		MaxDepth:       ts.MaxDepth,
		VMDispatched:   ts.VMDispatched,
		Representation: RepTrailStore,
	}
}

// traceLine renders one resolution step in the style of figure 1:
// the pending goals, then each match found for the first goal.
func traceLine(n *engine.Node, children []*engine.Node) string {
	goals := ""
	for s, i := n.Goals, 0; s != nil && i < 4; i++ {
		e, _ := s.Top()
		if i > 0 {
			goals += ","
		}
		goals += n.Env.Format(e.Goal)
		s = s.Pop()
	}
	line := "?- " + goals + " -> " + children[0].Label
	for _, c := range children[1:] {
		line += " | " + c.Label
	}
	return line
}

// frontier abstracts the open list.
type frontier interface {
	push(*engine.Node)
	pop() *engine.Node
	len() int
}

func newFrontier(s Strategy) frontier {
	switch s {
	case BFS:
		return &fifo{}
	case BestFirst:
		return &minHeap{}
	default:
		return &lifo{}
	}
}

type lifo struct{ items []*engine.Node }

func (s *lifo) push(n *engine.Node) { s.items = append(s.items, n) }
func (s *lifo) pop() *engine.Node {
	n := s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return n
}
func (s *lifo) len() int { return len(s.items) }

type fifo struct {
	items []*engine.Node
	head  int
}

func (q *fifo) push(n *engine.Node) { q.items = append(q.items, n) }
func (q *fifo) pop() *engine.Node {
	n := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append([]*engine.Node(nil), q.items[q.head:]...)
		q.head = 0
	}
	return n
}
func (q *fifo) len() int { return len(q.items) - q.head }

// minHeap orders by (Bound, Seq): equal bounds expand in generation order,
// so a uniform store degenerates gracefully to breadth-first.
type minHeap struct{ items []*engine.Node }

func (h *minHeap) Len() int { return len(h.items) }
func (h *minHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.Bound != b.Bound {
		return a.Bound < b.Bound
	}
	return a.Seq < b.Seq
}
func (h *minHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *minHeap) Push(x any)    { h.items = append(h.items, x.(*engine.Node)) }
func (h *minHeap) Pop() any {
	old := h.items
	n := old[len(old)-1]
	old[len(old)-1] = nil
	h.items = old[:len(old)-1]
	return n
}
func (h *minHeap) push(n *engine.Node) { heap.Push(h, n) }
func (h *minHeap) pop() *engine.Node   { return heap.Pop(h).(*engine.Node) }
func (h *minHeap) len() int            { return len(h.items) }

// EnumerateOutcomes exhaustively searches (DFS, no learning) and returns
// every complete chain as a weights.Outcome — the input the section-4
// theoretical solver needs.
func EnumerateOutcomes(ctx context.Context, db *kb.DB, goals []term.Term, maxDepth int) ([]weights.Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := weights.DefaultConfig()
	if maxDepth > 0 {
		cfg.A = maxDepth
	}
	ws := weights.NewUniform(cfg)
	exp := engine.NewExpander(db, ws)
	exp.MaxDepth = cfg.A
	exp.Ctx = ctx

	var outcomes []weights.Outcome
	stack := []*engine.Node{exp.Root(goals)}
	var steps uint64
	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.IsSolution() {
			outcomes = append(outcomes, weights.Outcome{Chain: n.Chain.Slice(), Success: true})
			continue
		}
		if steps++; steps > DefaultMaxExpansions {
			return nil, ErrBudget
		}
		children, err := exp.Expand(n)
		if err != nil && err != engine.ErrDepthLimit {
			return nil, err
		}
		if len(children) == 0 {
			if n.Chain.Len() > 0 {
				outcomes = append(outcomes, weights.Outcome{Chain: n.Chain.Slice(), Success: false})
			}
			continue
		}
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}
	return outcomes, nil
}
