package search

import (
	"context"
	"testing"

	"blog/internal/kb"
	"blog/internal/weights"
	"blog/internal/workload"
)

func TestIterYieldsAllSolutionsLazily(t *testing.T) {
	db := load(t, fig1)
	it, err := NewIter(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		sol, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, sol.Format(it.QueryVars()))
	}
	if len(got) != 2 || got[0] != "G = den" || got[1] != "G = doug" {
		t.Errorf("solutions = %v", got)
	}
	if !it.Exhausted() {
		t.Error("iterator should be exhausted")
	}
	// Further calls keep returning done.
	if _, ok, err := it.Next(); ok || err != nil {
		t.Error("exhausted iterator must stay done")
	}
}

func TestIterMatchesRun(t *testing.T) {
	db := load(t, workload.FamilyTree(4, 3))
	for _, strat := range []Strategy{DFS, BFS, BestFirst} {
		run, err := Run(context.Background(), db, uniform(), q(t, "gf(p0,G)"), Options{Strategy: strat, MaxDepth: 24})
		if err != nil {
			t.Fatal(err)
		}
		it, err := NewIter(context.Background(), db, uniform(), q(t, "gf(p0,G)"), Options{Strategy: strat, MaxDepth: 24})
		if err != nil {
			t.Fatal(err)
		}
		var n int
		for {
			_, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != len(run.Solutions) {
			t.Errorf("%v: iter %d solutions, run %d", strat, n, len(run.Solutions))
		}
		if it.Stats().Expanded != run.Stats.Expanded {
			t.Errorf("%v: iter expanded %d, run %d", strat, it.Stats().Expanded, run.Stats.Expanded)
		}
	}
}

func TestIterEarlyAbandonmentDoesLessWork(t *testing.T) {
	db := load(t, workload.FamilyTree(5, 3))
	full, err := Run(context.Background(), db, uniform(), q(t, "anc(p0,X)"), Options{Strategy: DFS, MaxDepth: 24})
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIter(context.Background(), db, uniform(), q(t, "anc(p0,X)"), Options{Strategy: DFS, MaxDepth: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatal("first solution missing")
	}
	if it.Stats().Expanded >= full.Stats.Expanded {
		t.Errorf("one-solution pull expanded %d, full run %d", it.Stats().Expanded, full.Stats.Expanded)
	}
}

func TestIterMaxSolutions(t *testing.T) {
	db := load(t, fig1)
	it, err := NewIter(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{Strategy: DFS, MaxSolutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); !ok {
		t.Fatal("first solution missing")
	}
	if _, ok, err := it.Next(); ok || err != nil {
		t.Error("MaxSolutions must cap the stream")
	}
}

func TestIterBudget(t *testing.T) {
	db := load(t, "loop :- loop.")
	it, err := NewIter(context.Background(), db, uniform(), q(t, "loop"), Options{Strategy: DFS, MaxExpansions: 10, MaxDepth: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := it.Next()
	if ok || err != ErrBudget {
		t.Errorf("got ok=%v err=%v, want budget error", ok, err)
	}
	if it.Exhausted() {
		t.Error("budget abort is not exhaustion")
	}
}

func TestIterLearnsFromAbandonedSearch(t *testing.T) {
	// Pull one solution and abandon: the chains completed along the way
	// (including failures) must have updated the table.
	db := load(t, workload.DeepFailure(6, 4))
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	it, err := NewIter(context.Background(), db, tab, q(t, "top(W)"), Options{Strategy: BestFirst, Learn: true, MaxDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatalf("no solution: %v", err)
	}
	if tab.Len() == 0 {
		t.Error("abandoned iterator should still have learned")
	}
}

func TestIterRejectsRecording(t *testing.T) {
	db := load(t, fig1)
	if _, err := NewIter(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{RecordTree: true}); err == nil {
		t.Error("tree recording unsupported in Iter")
	}
	if _, err := NewIter(context.Background(), db, uniform(), nil, Options{}); err == nil {
		t.Error("empty query must fail")
	}
}

func TestIterErrorPropagates(t *testing.T) {
	db := load(t, "bad(X) :- Y is X + Z, Y > 0.")
	it, err := NewIter(context.Background(), db, uniform(), q(t, "bad(1)"), Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); ok || err == nil {
		t.Error("arithmetic error must surface from Next")
	}
}

var _ = kb.Query // keep kb import for the helper file
