package search

import (
	"context"
	"strings"
	"testing"

	"blog/internal/kb"
	"blog/internal/weights"
	"blog/internal/workload"
)

func TestIterYieldsAllSolutionsLazily(t *testing.T) {
	db := load(t, fig1)
	it, err := NewIter(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		sol, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, sol.Format(it.QueryVars()))
	}
	if len(got) != 2 || got[0] != "G = den" || got[1] != "G = doug" {
		t.Errorf("solutions = %v", got)
	}
	if !it.Exhausted() {
		t.Error("iterator should be exhausted")
	}
	// Further calls keep returning done.
	if _, ok, err := it.Next(); ok || err != nil {
		t.Error("exhausted iterator must stay done")
	}
}

func TestIterMatchesRun(t *testing.T) {
	db := load(t, workload.FamilyTree(4, 3))
	for _, strat := range []Strategy{DFS, BFS, BestFirst} {
		run, err := Run(context.Background(), db, uniform(), q(t, "gf(p0,G)"), Options{Strategy: strat, MaxDepth: 24})
		if err != nil {
			t.Fatal(err)
		}
		it, err := NewIter(context.Background(), db, uniform(), q(t, "gf(p0,G)"), Options{Strategy: strat, MaxDepth: 24})
		if err != nil {
			t.Fatal(err)
		}
		var n int
		for {
			_, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != len(run.Solutions) {
			t.Errorf("%v: iter %d solutions, run %d", strat, n, len(run.Solutions))
		}
		if it.Stats().Expanded != run.Stats.Expanded {
			t.Errorf("%v: iter expanded %d, run %d", strat, it.Stats().Expanded, run.Stats.Expanded)
		}
	}
}

func TestIterEarlyAbandonmentDoesLessWork(t *testing.T) {
	db := load(t, workload.FamilyTree(5, 3))
	full, err := Run(context.Background(), db, uniform(), q(t, "anc(p0,X)"), Options{Strategy: DFS, MaxDepth: 24})
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIter(context.Background(), db, uniform(), q(t, "anc(p0,X)"), Options{Strategy: DFS, MaxDepth: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatal("first solution missing")
	}
	if it.Stats().Expanded >= full.Stats.Expanded {
		t.Errorf("one-solution pull expanded %d, full run %d", it.Stats().Expanded, full.Stats.Expanded)
	}
}

func TestIterMaxSolutions(t *testing.T) {
	db := load(t, fig1)
	it, err := NewIter(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{Strategy: DFS, MaxSolutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); !ok {
		t.Fatal("first solution missing")
	}
	if _, ok, err := it.Next(); ok || err != nil {
		t.Error("MaxSolutions must cap the stream")
	}
}

func TestIterBudget(t *testing.T) {
	db := load(t, "loop :- loop.")
	it, err := NewIter(context.Background(), db, uniform(), q(t, "loop"), Options{Strategy: DFS, MaxExpansions: 10, MaxDepth: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := it.Next()
	if ok || err != ErrBudget {
		t.Errorf("got ok=%v err=%v, want budget error", ok, err)
	}
	if it.Exhausted() {
		t.Error("budget abort is not exhaustion")
	}
}

func TestIterLearnsFromAbandonedSearch(t *testing.T) {
	// Pull one solution and abandon: the chains completed along the way
	// (including failures) must have updated the table.
	db := load(t, workload.DeepFailure(6, 4))
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	it, err := NewIter(context.Background(), db, tab, q(t, "top(W)"), Options{Strategy: BestFirst, Learn: true, MaxDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatalf("no solution: %v", err)
	}
	if tab.Len() == 0 {
		t.Error("abandoned iterator should still have learned")
	}
}

// TestIterRecordingParity: a recording Iter drained to exhaustion
// produces the same tree and trace as the batch Run with the same
// options (both route DFS onto the persistent-Env frontier).
func TestIterRecordingParity(t *testing.T) {
	db := load(t, fig1)
	opt := Options{Strategy: DFS, RecordTree: true, RecordTrace: true}
	it, err := NewIter(context.Background(), db, uniform(), q(t, "gf(sam,G)"), opt)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,G)"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if it.Tree() == nil {
		t.Fatal("recording Iter returned no tree")
	}
	if got, want := it.Tree().Render(), res.Tree.Render(); got != want {
		t.Errorf("streamed tree differs from batch tree:\n--- iter ---\n%s\n--- run ---\n%s", got, want)
	}
	if got, want := strings.Join(it.Trace(), "\n"), strings.Join(res.Trace, "\n"); got != want {
		t.Errorf("streamed trace differs from batch trace:\n--- iter ---\n%s\n--- run ---\n%s", got, want)
	}
	if st := it.Stats(); st.Representation != RepPersistentEnv {
		t.Errorf("recording stream ran on %q, want %q", st.Representation, RepPersistentEnv)
	}
}

func TestIterRejectsEmptyQuery(t *testing.T) {
	db := load(t, fig1)
	if _, err := NewIter(context.Background(), db, uniform(), nil, Options{}); err == nil {
		t.Error("empty query must fail")
	}
}

func TestIterErrorPropagates(t *testing.T) {
	db := load(t, "bad(X) :- Y is X + Z, Y > 0.")
	it, err := NewIter(context.Background(), db, uniform(), q(t, "bad(1)"), Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); ok || err == nil {
		t.Error("arithmetic error must surface from Next")
	}
}

var _ = kb.Query // keep kb import for the helper file

// TestIterPrunes: the streaming engine applies the same branch-and-bound
// rule as Run — once a solution bound is known, costlier open nodes are
// cut instead of served.
func TestIterPrunes(t *testing.T) {
	// DFS reaches `a` through the short clause first (bound 2 with uniform
	// weights); the deep branch's solution sits at bound 4 and must be
	// pruned against it.
	src := `
top(X) :- cheap(X).
top(X) :- d1(X).
cheap(a).
d1(X) :- d2(X).
d2(X) :- d3(X).
d3(b).
`
	db := load(t, src)
	opts := Options{Strategy: DFS, Prune: true}
	run, err := Run(context.Background(), db, uniform(), q(t, "top(X)"), opts)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIter(context.Background(), db, uniform(), q(t, "top(X)"), opts)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		sol, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, sol.Format(it.QueryVars()))
	}
	if len(got) != 1 || got[0] != "X = a" {
		t.Errorf("pruned stream served %v, want only X = a", got)
	}
	if len(run.Solutions) != len(got) {
		t.Errorf("Run found %d solutions, Iter served %d", len(run.Solutions), len(got))
	}
	if it.Stats().Pruned == 0 {
		t.Error("stream should have pruned the deep branch")
	}
	if it.Stats().Pruned != run.Stats.Pruned {
		t.Errorf("Iter pruned %d, Run pruned %d", it.Stats().Pruned, run.Stats.Pruned)
	}
	// With slack covering the bound gap, the deep solution survives.
	it2, err := NewIter(context.Background(), db, uniform(), q(t, "top(X)"), Options{Strategy: DFS, Prune: true, PruneSlack: 8})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		_, ok, err := it2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("slack stream served %d solutions, want 2", n)
	}
}

// TestIterCappedStreamNotExhausted: stopping at the MaxSolutions cap with
// open chains left must not claim the tree was searched (Run semantics).
func TestIterCappedStreamNotExhausted(t *testing.T) {
	db := load(t, "f(a).\nf(b).\n")
	it, err := NewIter(context.Background(), db, uniform(), q(t, "f(X)"), Options{Strategy: DFS, MaxSolutions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatalf("first solution: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := it.Next(); ok {
		t.Fatal("cap of 1 should end the stream")
	}
	if it.Exhausted() {
		t.Error("capped stream with open chains reported Exhausted")
	}
	// An uncapped run over the same tree does exhaust.
	it2, err := NewIter(context.Background(), db, uniform(), q(t, "f(X)"), Options{Strategy: DFS})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok, err := it2.Next(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	if !it2.Exhausted() {
		t.Error("fully drained stream should report Exhausted")
	}
}

// TestIterPruneStaleSolution pins the yield-time prune invariant: a
// solution node that was already sitting in the frontier when an earlier
// Next call served a better bound must be pruned when reached, never
// yielded. BFS makes the window deterministic: the cheap fact's solution
// is served first, and the longer clause's solution node — generated with
// a bound that was acceptable at generation time — goes stale in between.
func TestIterPruneStaleSolution(t *testing.T) {
	db := load(t, `
		q(1).
		q(2) :- t.
		t.
	`)
	it, err := NewIter(context.Background(), db, uniform(), q(t, "q(X)"),
		Options{Strategy: BFS, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	sol, ok, err := it.Next()
	if err != nil || !ok {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	if got := sol.Format(it.QueryVars()); got != "X = 1" {
		t.Fatalf("first solution = %q, want X = 1", got)
	}
	// The q(2) derivation reaches its solution at a worse bound than the
	// one already served; it must be cut, ending the stream.
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("stale-bound solution leaked: ok=%v err=%v", ok, err)
	}
	if got := it.Stats().Pruned; got == 0 {
		t.Errorf("Pruned = %d, want at least one cut", got)
	}
	if !it.Exhausted() {
		t.Error("stream should report Exhausted after the cut")
	}
}
