// Package sim is a minimal discrete-event simulator used by the hardware
// models (semantic paging disk, interconnection network, scoreboard
// processor, whole machine). Time is an integer cycle count; events fire
// in (time, sequence) order, so simulations are fully deterministic.
package sim

import "container/heap"

// Time is a simulated clock value in cycles.
type Time int64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is one simulation instance. The zero value is ready to use.
type Sim struct {
	now   Time
	seq   uint64
	queue eventQueue
	steps uint64
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// At schedules fn to run at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (s *Sim) After(delay Time, fn func()) { s.At(s.now+delay, fn) }

// Run executes events until the queue empties or limit events have fired
// (0 = no limit). It returns the final time.
func (s *Sim) Run(limit uint64) Time {
	for len(s.queue) > 0 {
		if limit > 0 && s.steps >= limit {
			break
		}
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.steps++
		e.fn()
	}
	return s.now
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.queue) }

// Resource is a single-server FIFO resource with a fixed service time per
// request: the building block for disk heads, functional units and network
// ports. Acquire schedules done when the resource has completed the
// request; requests are served in arrival order.
type Resource struct {
	sim  *Sim
	name string
	// freeAt is the earliest time the resource can start a new request.
	freeAt Time
	// Busy accumulates total busy cycles for utilization reporting.
	Busy Time
	// Served counts completed requests.
	Served uint64
}

// NewResource creates a resource bound to a simulator.
func NewResource(s *Sim, name string) *Resource {
	return &Resource{sim: s, name: name}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire enqueues a request taking service cycles and calls done when it
// completes. It returns the completion time.
func (r *Resource) Acquire(service Time, done func()) Time {
	start := r.sim.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start + service
	r.freeAt = end
	r.Busy += service
	r.Served++
	if done != nil {
		r.sim.At(end, done)
	}
	return end
}

// Utilization returns busy cycles divided by elapsed time (0 when the
// clock has not advanced).
func (r *Resource) Utilization() float64 {
	if r.sim.now == 0 {
		return 0
	}
	return float64(r.Busy) / float64(r.sim.now)
}
