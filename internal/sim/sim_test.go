package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var s Sim
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	end := s.Run(0)
	if end != 30 {
		t.Errorf("end time = %d", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(7, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	var s Sim
	var fired []Time
	s.After(5, func() {
		fired = append(fired, s.Now())
		s.After(10, func() { fired = append(fired, s.Now()) })
	})
	s.Run(0)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var s Sim
	s.At(10, func() {
		s.At(3, func() {
			if s.Now() != 10 {
				t.Errorf("past event fired at %d, want clamped to 10", s.Now())
			}
		})
	})
	s.Run(0)
}

func TestRunLimit(t *testing.T) {
	var s Sim
	count := 0
	var loop func()
	loop = func() {
		count++
		s.After(1, loop)
	}
	s.After(1, loop)
	s.Run(100)
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if s.Pending() == 0 {
		t.Error("limited run should leave pending events")
	}
}

func TestResourceSerializes(t *testing.T) {
	var s Sim
	r := NewResource(&s, "disk")
	var done []Time
	// Three requests of 10 cycles each issued at time 0: finish at 10,20,30.
	for i := 0; i < 3; i++ {
		r.Acquire(10, func() { done = append(done, s.Now()) })
	}
	s.Run(0)
	if len(done) != 3 || done[0] != 10 || done[1] != 20 || done[2] != 30 {
		t.Errorf("completions = %v", done)
	}
	if r.Busy != 30 || r.Served != 3 {
		t.Errorf("busy=%d served=%d", r.Busy, r.Served)
	}
	if u := r.Utilization(); u != 1.0 {
		t.Errorf("utilization = %v, want 1.0", u)
	}
	if r.Name() != "disk" {
		t.Error("name")
	}
}

func TestResourceIdleGaps(t *testing.T) {
	var s Sim
	r := NewResource(&s, "unit")
	s.At(0, func() { r.Acquire(5, nil) })
	s.At(100, func() { r.Acquire(5, func() {}) })
	s.Run(0)
	if s.Now() != 105 {
		t.Errorf("end = %d", s.Now())
	}
	if u := r.Utilization(); u >= 0.2 {
		t.Errorf("utilization = %v, want ~10/105", u)
	}
}

func TestUtilizationAtTimeZero(t *testing.T) {
	var s Sim
	r := NewResource(&s, "u")
	if r.Utilization() != 0 {
		t.Error("zero-time utilization should be 0")
	}
}

// Property: N sequential acquisitions of d cycles each on one resource
// always finish at N*d when issued at time 0.
func TestPropertyResourcePipeline(t *testing.T) {
	f := func(n, d uint8) bool {
		if n == 0 || d == 0 {
			return true
		}
		var s Sim
		r := NewResource(&s, "u")
		var last Time
		for i := 0; i < int(n); i++ {
			last = r.Acquire(Time(d), nil)
		}
		s.Run(0)
		return last == Time(int64(n)*int64(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	var s Sim
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	s.Run(0)
}
