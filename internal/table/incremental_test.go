package table_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/ref"
	"blog/internal/solve"
	"blog/internal/table"
	"blog/internal/weights"
)

// assertFact parses and asserts a single fact, firing the kb assert hook
// that dirty-marks dependent tables.
func assertFact(t *testing.T, db *kb.DB, fact string) {
	t.Helper()
	head, err := parse.OneTerm(fact)
	if err != nil {
		t.Fatalf("parse %q: %v", fact, err)
	}
	db.Assert(head, nil)
}

// tabledAnswers runs one tabled query and returns its distinct answers.
func tabledAnswers(t *testing.T, db *kb.DB, sp *table.Space, query string, strat solve.Strategy, noVM bool) []string {
	t.Helper()
	goals, err := parse.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := solve.Do(context.Background(), &solve.Request{
		DB:       db,
		Store:    weights.NewUniform(weights.DefaultConfig()),
		Goals:    goals,
		Strategy: strat,
		Tables:   sp,
		NoVM:     noVM,
	})
	if err != nil {
		t.Fatalf("%v %q: %v", strat, query, err)
	}
	if !resp.Exhausted {
		t.Fatalf("%v %q: not exhausted", strat, query)
	}
	return distinctAnswers(resp)
}

func oracleAnswers(t *testing.T, db *kb.DB, query string) []string {
	t.Helper()
	model, err := ref.Eval(db)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	goals, err := parse.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	want := model.Answers(goals)
	sort.Strings(want)
	return want
}

// TestPostAssertAnswersMatchOracle is the assert-path staleness regression
// (the bug this subsystem fixes): after asserting clauses into a predicate
// a completed table was derived from, every subsequent tabled query — on
// the compiled VM path and the tree-walking oracle path, under every
// strategy — must return the answers of the *updated* program, checked
// against a fresh bottom-up fixpoint of the mutated database. Before
// dependency tracking, the table kept serving the pre-assert answer set.
func TestPostAssertAnswersMatchOracle(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		asserts []string
		queries []string
		// pre/post give hand-computed expected answers when the program is
		// outside ref's Datalog fragment (negation); when nil the oracle
		// is re-evaluated on the mutated database instead.
		pre, post map[string]string
	}{
		{
			// Monotone growth: new edges extend the closure.
			name: "closure-growth",
			src: `:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(a, b).
edge(b, c).
edge(c, a).
`,
			asserts: []string{"edge(c, d)", "edge(d, e)"},
			queries: []string{"path(a, Z)", "path(X, c)", "path(X, Y)"},
		},
		{
			// Non-monotone shrinkage: the assert *removes* answers derived
			// through negation, so serving any stale set — complete or
			// in-flight — would be unsound, not just incomplete. ref
			// rejects \+, so the expectations are hand-computed.
			name: "negation-shrink",
			src: `:- table reach/2, unreachable/1.
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
unreachable(Y) :- node(Y), \+(reach(a, Y)).
node(a). node(b). node(c). node(d).
edge(a, b). edge(b, c).
`,
			asserts: []string{"edge(c, d)"},
			queries: []string{"unreachable(Y)", "reach(a, Z)"},
			pre: map[string]string{
				"unreachable(Y)": "[Y = a Y = d]",
				"reach(a, Z)":    "[Z = b Z = c]",
			},
			post: map[string]string{
				"unreachable(Y)": "[Y = a]",
				"reach(a, Z)":    "[Z = b Z = c Z = d]",
			},
		},
	}
	strategies := []solve.Strategy{solve.DFS, solve.BFS, solve.BestFirst, solve.Parallel}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, noVM := range []bool{false, true} {
				db, _, err := kb.LoadString(tc.src)
				if err != nil {
					t.Fatal(err)
				}
				sp := table.NewSpace(db, table.Config{})
				// Materialize and verify the pre-assert tables first, so
				// the post-assert check exercises re-derivation of an
				// existing complete table, not a cold production.
				expect := func(query string, hand map[string]string) string {
					if hand != nil {
						return hand[query]
					}
					return fmt.Sprint(oracleAnswers(t, db, query))
				}
				for _, query := range tc.queries {
					want := expect(query, tc.pre)
					got := tabledAnswers(t, db, sp, query, solve.DFS, noVM)
					if fmt.Sprint(got) != want {
						t.Fatalf("noVM=%v pre-assert %q:\nengine: %v\noracle: %v", noVM, query, got, want)
					}
				}
				for _, fact := range tc.asserts {
					assertFact(t, db, fact)
				}
				for _, query := range tc.queries {
					want := expect(query, tc.post)
					for _, strat := range strategies {
						got := tabledAnswers(t, db, sp, query, strat, noVM)
						if fmt.Sprint(got) != want {
							t.Fatalf("noVM=%v %v post-assert %q:\nengine: %v\noracle: %v", noVM, strat, query, got, want)
						}
					}
				}
			}
		})
	}
}

// TestAssertRederivesOnlyDownstream pins the incremental half of the fix:
// an assert touching predicate p dirty-marks and re-derives only the
// tables whose recorded dependency sets include p. An unrelated table in
// the same space keeps serving — same object, same creation timestamp,
// growing hit counter, zero revalidations.
func TestAssertRederivesOnlyDownstream(t *testing.T) {
	db, _, err := kb.LoadString(`
:- table patha/2, pathb/2.
patha(X, Z) :- patha(X, Y), ea(Y, Z).
patha(X, Y) :- ea(X, Y).
pathb(X, Z) :- pathb(X, Y), eb(Y, Z).
pathb(X, Y) :- eb(X, Y).
ea(a1, a2). ea(a2, a3).
eb(b1, b2). eb(b2, b3).
`)
	if err != nil {
		t.Fatal(err)
	}
	sp := table.NewSpace(db, table.Config{})
	tabledAnswers(t, db, sp, "patha(a1, Z)", solve.DFS, false)
	tabledAnswers(t, db, sp, "pathb(b1, Z)", solve.DFS, false)
	// Touch both again so each table records a hit.
	tabledAnswers(t, db, sp, "patha(a1, Z)", solve.DFS, false)
	tabledAnswers(t, db, sp, "pathb(b1, Z)", solve.DFS, false)

	infoFor := func(pred string) table.Info {
		t.Helper()
		for _, ti := range sp.Tables() {
			if ti.Pred == pred {
				return ti
			}
		}
		t.Fatalf("no table for %s in %+v", pred, sp.Tables())
		return table.Info{}
	}
	before := infoFor("pathb/2")
	if !before.Complete || before.Hits != 1 {
		t.Fatalf("pathb baseline = %+v, want complete with 1 hit", before)
	}

	assertFact(t, db, "ea(a3, a4)")

	a := infoFor("patha/2")
	b := infoFor("pathb/2")
	if !a.Dirty {
		t.Fatalf("patha after assert = %+v, want dirty (ea/2 is in its dep set %v)", a, a.Deps)
	}
	if b.Dirty {
		t.Fatalf("pathb after assert = %+v, want untouched (deps %v exclude ea/2)", b, b.Deps)
	}

	if got := tabledAnswers(t, db, sp, "patha(a1, Z)", solve.DFS, false); fmt.Sprint(got) != "[Z = a2 Z = a3 Z = a4]" {
		t.Fatalf("patha post-assert = %v, want the new a4 answer", got)
	}
	tabledAnswers(t, db, sp, "pathb(b1, Z)", solve.DFS, false)

	a, b = infoFor("patha/2"), infoFor("pathb/2")
	if a.Dirty || a.Revalidations != 1 {
		t.Fatalf("patha after re-derivation = %+v, want clean with 1 revalidation", a)
	}
	if b.Revalidations != 0 || !b.CreatedAt.Equal(before.CreatedAt) || b.Hits != before.Hits+1 {
		t.Fatalf("pathb = %+v (baseline %+v): the unrelated table must keep its identity — same creation time, hit counter still advancing, no revalidations", b, before)
	}

	tot := sp.Totals()
	if tot.Dirtied != 1 || tot.Revalidated != 1 {
		t.Fatalf("totals = dirtied %d revalidated %d, want 1 and 1", tot.Dirtied, tot.Revalidated)
	}
}

// TestAssertDuringProductionIsNotStale closes the race window: an assert
// that lands while a table's fixpoint is still running must not let that
// production complete with pre-assert answers. The epoch check at
// completion dirty-marks the group, and the in-test assert lands between
// the first production and the re-query.
func TestAssertWhileIncompleteDropsPartialTables(t *testing.T) {
	db, _, err := kb.LoadString(`
:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(a, b).
`)
	if err != nil {
		t.Fatal(err)
	}
	sp := table.NewSpace(db, table.Config{})
	// Cancel mid-production to leave an incomplete table behind.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	goals, _ := parse.Query("path(a, Z)")
	_, _ = solve.Do(ctx, &solve.Request{
		DB: db, Store: weights.NewUniform(weights.DefaultConfig()),
		Goals: goals, Strategy: solve.DFS, Tables: sp,
	})
	// The assert must orphan any incomplete table (its partial answer set
	// predates the new clause), so the re-query derives from scratch and
	// sees the new edge.
	assertFact(t, db, "edge(b, c)")
	got := tabledAnswers(t, db, sp, "path(a, Z)", solve.DFS, false)
	if fmt.Sprint(got) != "[Z = b Z = c]" {
		t.Fatalf("post-assert answers = %v, want both edges", got)
	}
}

// TestAssertHookReachesAllSpaces pins the multi-hook contract: every live
// space over a shared database receives assert invalidations (the hook
// registry used to be a single last-wins slot, so an older space silently
// went stale), and Close drops exactly the closed space's registration.
func TestAssertHookReachesAllSpaces(t *testing.T) {
	db, _, err := kb.LoadString(`
:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(a, b).
`)
	if err != nil {
		t.Fatal(err)
	}
	sp1 := table.NewSpace(db, table.Config{})
	defer sp1.Close()
	sp2 := table.NewSpace(db, table.Config{})
	for _, sp := range []*table.Space{sp1, sp2} {
		if got := tabledAnswers(t, db, sp, "path(a, Z)", solve.DFS, false); fmt.Sprint(got) != "[Z = b]" {
			t.Fatalf("baseline answers = %v", got)
		}
	}

	assertFact(t, db, "edge(b, c)")
	// Both spaces — not just the newest — must have dirty-marked their
	// tables and re-derive the extended closure.
	for i, sp := range []*table.Space{sp1, sp2} {
		if tot := sp.Totals(); tot.Dirtied != 1 {
			t.Fatalf("space %d dirtied = %d, want 1", i+1, tot.Dirtied)
		}
		if got := tabledAnswers(t, db, sp, "path(a, Z)", solve.DFS, false); fmt.Sprint(got) != "[Z = b Z = c]" {
			t.Fatalf("space %d post-assert answers = %v, want the new edge", i+1, got)
		}
	}

	// Closing sp2 unregisters only its hook: later asserts keep reaching
	// sp1, while the closed space takes no further dirty marks.
	sp2.Close()
	sp2.Close() // idempotent
	assertFact(t, db, "edge(c, d)")
	if got := tabledAnswers(t, db, sp1, "path(a, Z)", solve.DFS, false); fmt.Sprint(got) != "[Z = b Z = c Z = d]" {
		t.Fatalf("open space post-close answers = %v, want all three edges", got)
	}
	if tot := sp2.Totals(); tot.Dirtied != 1 {
		t.Fatalf("closed space dirtied = %d, want 1 (no marks after Close)", tot.Dirtied)
	}
}
