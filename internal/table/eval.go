package table

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"blog/internal/engine"
	"blog/internal/obs"
	"blog/internal/term"
	"blog/internal/weights"
)

// eval is one production run: the single goroutine holding the space's
// producer slot, computing the dependency group of the table it entered
// on. It implements engine.Tabler so that generator searches route nested
// tabled calls back here — the producer/consumer scheduling:
//
//   - a call to a complete table consumes its answers (consumer);
//   - the first call to an incomplete table becomes its generator and
//     iterates rounds until stable (producer);
//   - a recursive call to a table already being generated higher in the
//     evaluation stack consumes the answers known so far (follower).
//
// Completion detection is the linear-tabling rule: the leader — the
// outermost in-progress table — keeps re-running its generator (which
// transitively re-runs the generators of every incomplete table it
// depends on) until one full round changes no answer set anywhere in the
// group — no new answer and, for min(N) tables, no cost improvement; at
// that point the group has reached its fixpoint and every table in it is
// marked complete at once.
//
// Productions are stamped with increasing frame numbers, and every
// consumption of a not-yet-complete table records the frame of the oldest
// in-progress production it (transitively) reached. That one number
// answers both scheduling questions: a generator round that reached no
// in-progress production (lowFrame stays at maxFrame) is deterministic
// and needs no re-run, and a production whose rounds never reached a
// frame older than its own is final — safe to consult under negation even
// before the leader marks it complete.
type eval struct {
	space *Space
	h     *Handle
	ctx   context.Context

	// inProg holds tables whose generator is on the evaluation stack
	// (calls to them are followers); frames holds their production frame.
	inProg map[string]*Table
	frames map[string]int
	// group accumulates every table touched while incomplete; the leader
	// marks them all complete when the fixpoint is reached.
	group map[string]*Table
	// stable memoizes, per table, the group answer count at which its
	// generator last stabilized: re-entering it is a no-op until some
	// table in the group has since grown.
	stable map[string]uint64
	// active is set while the leader's require is on the stack.
	active bool
	// nextFrame stamps productions in stack order; curFrame is the frame
	// of the innermost require in progress.
	nextFrame int
	curFrame  int
	// lowFrame accumulates, per generator round, the oldest in-progress
	// frame the round's consumptions reached (maxFrame = none).
	lowFrame int
	// truncConsumed records that this production consumed a previously
	// completed table that was depth-truncated, so the group built on it
	// inherits the truncation.
	truncConsumed bool
	// added counts answer-set *changes* anywhere during this eval: new
	// answers and, for min(N) tables, cost improvements that replaced a
	// memoized answer. Counting value changes — not just answer counts —
	// is what keeps the leader iterating while a round only lowers
	// existing costs; see addMinAnswer.
	added uint64
	// steps counts generator expansions and answer consumptions against
	// the budget.
	steps uint64
	// deps accumulates the production's predicate dependency set: every
	// predicate a generator resolved against program clauses (via the
	// engine's DepHook), plus the stored dependency sets of complete
	// tables it consumed — which makes the recorded set transitive.
	deps map[predKey]struct{}
	// startEpoch is the space's invalidation epoch when this production
	// began; markComplete re-checks the dep set against it.
	startEpoch uint64

	// Limits snapshotted from the space at creation, so a concurrent
	// Reconfigure cannot change them mid-production.
	ws       weights.Store
	maxDepth int
	budget   uint64
	// noVM pins generator expansion to the tree-walking engine (the
	// handle's SetNoVM), keeping NoVM query runs oracle end to end.
	noVM bool
	// prof and trace come from the handle: generator runs charge the
	// profiler, and leader fixpoints record spans on the trace.
	prof  *obs.Profiler
	trace *obs.Trace
	// reqID is the producing query's request ID (obs.WithRequestID),
	// stamped on the lifecycle events this production emits.
	reqID string
}

// maxFrame means "reached no in-progress production".
const maxFrame = math.MaxInt

func newEval(s *Space, h *Handle, ctx context.Context) *eval {
	if ctx == nil {
		ctx = context.Background()
	}
	ev := &eval{
		space:    s,
		h:        h,
		ctx:      ctx,
		inProg:   make(map[string]*Table),
		frames:   make(map[string]int),
		group:    make(map[string]*Table),
		stable:   make(map[string]uint64),
		deps:     make(map[predKey]struct{}),
		lowFrame: maxFrame,
		reqID:    obs.RequestID(ctx),
	}
	ev.ws, ev.maxDepth, ev.budget, ev.startEpoch = s.limits()
	// A query with a deeper bound than the space default raises the
	// generator bound with it, so tabled evaluation honors MaxDepth the
	// way the untabled engine does.
	if h != nil && h.maxDepth > ev.maxDepth {
		ev.maxDepth = h.maxDepth
	}
	if h != nil {
		ev.noVM = h.noVM
		ev.prof = h.prof
		ev.trace = h.trace
	}
	return ev
}

// require ensures t is usable by its caller: complete, in progress higher
// up the stack (follower consumption), or — here — generated to local
// stability, with the leader additionally detecting group completion.
func (ev *eval) require(t *Table) error {
	if t.complete.Load() || ev.inProg[t.key] != nil {
		return nil
	}
	if n, ok := ev.stable[t.key]; ok && n == ev.added {
		return nil // nothing in the group changed since it stabilized
	}
	myFrame := ev.nextFrame
	ev.nextFrame++
	ev.inProg[t.key] = t
	ev.frames[t.key] = myFrame
	if _, seen := ev.group[t.key]; !seen {
		// First entry this production: clear truncation state left by an
		// earlier, possibly shallower or interrupted production; the
		// rounds below re-derive it at the current bound.
		t.truncated = false
		ev.group[t.key] = t
	}
	leader := !ev.active
	if leader {
		ev.active = true
	}
	parentFrame := ev.curFrame
	ev.curFrame = myFrame
	prodLow := maxFrame
	// Fixpoint span under the query's open "search" phase; nested
	// productions of the dependency group appear as sibling spans, each
	// with per-round children carrying the answer-set delta.
	var fsp *obs.Span
	if ev.trace != nil {
		fsp = ev.trace.Span("search", "fixpoint "+t.pred)
	}
	round := 0
	var err error
	for {
		before := ev.added
		outerLow := ev.lowFrame
		ev.lowFrame = maxFrame
		round++
		rsp := fsp.Child(fmt.Sprintf("round %d", round))
		err = ev.runGenerator(t)
		rsp.SetCount("answers", int64(ev.added-before))
		rsp.End()
		roundLow := ev.lowFrame
		// Propagate conservatively to the enclosing round: it treats
		// nested reach as its own (extra rounds are safe; a wrong early
		// exit would not be).
		ev.lowFrame = min(outerLow, roundLow)
		prodLow = min(prodLow, roundLow)
		if err != nil {
			break
		}
		if ev.added == before {
			break // a full round changed nothing anywhere: stable
		}
		if roundLow == maxFrame {
			// New answers, but the round reached no in-progress
			// production: it was deterministic and exhaustive, so a
			// re-run cannot add more. Non-recursive tables finish in one
			// pass.
			break
		}
	}
	ev.curFrame = parentFrame
	fsp.SetCount("rounds", int64(round))
	fsp.End()
	t.rounds.Add(int64(round))
	if leader {
		// The final leader round re-ran every reachable incomplete
		// generator and derived nothing new: the group is at fixpoint.
		if err == nil {
			// Truncation anywhere in the group (or in a truncated
			// complete table it consumed) infects every member: their
			// answers were derived through the cut derivations, so all
			// of them may be missing answers and all must be re-produced
			// for a deeper query.
			trunc := ev.truncConsumed
			for _, g := range ev.group {
				trunc = trunc || g.truncated
			}
			for _, g := range ev.group {
				g.truncated = trunc
				g.depth = ev.maxDepth
			}
			stale := ev.space.markComplete(ev.group, ev.deps, ev.startEpoch)
			// A group that completed already dirty (an assert raced the
			// fixpoint) is not a successful revalidation: the next touch
			// re-derives it, and that pass claims the counter and the
			// table_revalidated event instead.
			if !stale {
				for _, g := range ev.group {
					if g.revalidating {
						ev.space.revalidated.Add(1)
					}
				}
			}
			if j := ev.space.journal.Load(); j != nil {
				for _, g := range ev.group {
					kind := obs.KindTableCompleted
					detail := ""
					if stale {
						detail = "completed stale: assert raced the fixpoint; dirty-marked for re-derivation"
					} else if g.revalidating {
						kind = obs.KindTableRevalidated
					}
					j.Emit(obs.Event{
						Kind:      kind,
						RequestID: ev.reqID,
						Pred:      g.pred,
						Call:      g.pattern.String(),
						Count:     g.nAnswers.Load(),
						Bytes:     g.bytes.Load(),
						Rounds:    int(g.rounds.Load()),
						Detail:    detail,
					})
					if trunc {
						j.Emit(obs.Event{
							Kind:      obs.KindTableTruncated,
							RequestID: ev.reqID,
							Pred:      g.pred,
							Call:      g.pattern.String(),
							Count:     g.nAnswers.Load(),
							Cause:     "depth_bound",
							Detail:    fmt.Sprintf("depth %d", ev.maxDepth),
						})
					}
				}
			}
		}
		ev.active = false
	} else {
		// Allow a later leader round to re-enter and re-derive.
		delete(ev.inProg, t.key)
		delete(ev.frames, t.key)
		if err == nil {
			ev.stable[t.key] = ev.added
			// A production that never reached below its own frame is
			// final — its self-recursion converged within the rounds
			// above — which negation may rely on.
			t.independent = prodLow >= myFrame
		}
	}
	return err
}

// noteConsumption records that the current generator round consumed t's
// (not yet complete) answers, for the scheduling bookkeeping above.
func (ev *eval) noteConsumption(t *Table) {
	if f, ok := ev.frames[t.key]; ok {
		ev.lowFrame = min(ev.lowFrame, f) // follower: actively in progress
		return
	}
	// Pending table. An independent one is final — consuming it reaches
	// nothing in progress. A dependent one reached some in-progress
	// ancestor; its recorded frame numbers are stale across productions,
	// so treat it as reaching the outermost frame (conservative: forces
	// iteration and blocks finality, never the reverse).
	if !t.independent {
		ev.lowFrame = 0
	}
}

// runGenerator exhausts one depth-first derivation of t's call pattern,
// adding every solution to the table. The generator call itself resolves
// against program clauses — that is what produces answers — while calls
// inside those derivations (including the recursive variant calls that
// would otherwise loop) dispatch through ev (Resolve below) and consume
// tables instead.
func (ev *eval) runGenerator(t *Table) error {
	// Generators are sequential inside the producer slot, so they run on
	// the destructive trail-store machine. RootBypassTabler makes the
	// root pattern resolve against program clauses (that is what derives
	// answers) while every call inside those derivations dispatches
	// through ev and consumes tables. The derivation budget is metered
	// through the step hook — one tick per non-solution node, exactly the
	// counting the persistent-Env generator used — because ev.steps is
	// shared across the whole fixpoint, not per run.
	goal := term.Refresh(t.pattern)
	tr := engine.NewTrailRun(engine.TrailConfig{
		DB:               ev.space.db,
		Weights:          ev.ws,
		MaxDepth:         ev.maxDepth,
		Tabler:           ev,
		Ctx:              ev.ctx,
		NoVM:             ev.noVM,
		MaxExpansions:    math.MaxUint64,
		RootBypassTabler: true,
		Prof:             ev.prof,
		StepHook: func() error {
			if ev.steps++; ev.steps > ev.budget {
				return ErrBudget
			}
			return nil
		},
		DepHook: func(fn term.Sym, arity int) {
			ev.deps[predKey{fn, arity}] = struct{}{}
		},
	}, []term.Term{goal})
	// Answers are detached as they are added, so the run's scratch can be
	// recycled as soon as the derivation is over.
	defer tr.Release()
	var err error
	for {
		_, ok, nerr := tr.Next()
		if nerr != nil {
			err = nerr
			break
		}
		if !ok {
			break
		}
		if aerr := ev.addAnswer(t, tr.ResolveAnswer(goal)); aerr != nil {
			err = aerr
			break
		}
	}
	if tr.Stats().DepthCutoffs > 0 {
		// A derivation inside the generator (a non-tabled chain in a
		// clause body) hit the depth bound; answers past it are not
		// derived. Flag the table so the truncation is visible
		// (Info.Truncated) instead of silently memoized — exactly the
		// honesty the untabled engine's DepthCutoffs counter gives.
		t.truncated = true
	}
	return err
}

// ErrCost reports a derivation into a min(N) table whose cost argument
// did not resolve to an integer — the subsumption lattice is defined over
// integer costs, so a non-integer (or unbound) cost has no place in it.
var ErrCost = errors.New("table: min(N) answer cost is not an integer")

// addAnswer stores one derived answer: deduplicated by variant form for
// plain tables, folded into the cost lattice for min(N) tables.
func (ev *eval) addAnswer(t *Table, ans term.Term) error {
	if t.min > 0 {
		return ev.addMinAnswer(t, ans)
	}
	key, canon := Canonicalize(nil, ans)
	if _, dup := t.answerSet[key]; dup {
		return nil
	}
	t.answerSet[key] = struct{}{}
	t.answers = append(t.answers, canon)
	t.nAnswers.Add(1)
	t.bytes.Add(term.ApproxBytes(canon))
	ev.noteAdded()
	return nil
}

// addMinAnswer folds one derived answer into a min(N) table: the first
// answer for a projection of the non-cost arguments is memoized, a
// derivation dominated by the memoized cost is subsumed (dropped), and a
// strictly cheaper derivation replaces the memoized answer in place.
func (ev *eval) addMinAnswer(t *Table, ans term.Term) error {
	c, ok := ans.(*term.Compound)
	if !ok || t.min > len(c.Args) {
		return fmt.Errorf("%w: %s answer %s has no argument %d", ErrCost, t.pred, ans, t.min)
	}
	costArg, ok := c.Args[t.min-1].(term.Int)
	if !ok {
		return fmt.Errorf("%w: %s answer %s carries %s at cost position %d", ErrCost, t.pred, ans, c.Args[t.min-1], t.min)
	}
	cost := int64(costArg)
	// The projection key is the answer with its cost slot neutralized, so
	// two answers compete exactly when they agree on every other argument.
	// One canonicalization serves both forms: the cost slot is a ground
	// Int either way, so the canonical answer is the canonical projection
	// with the real cost restored.
	proj := make([]term.Term, len(c.Args))
	copy(proj, c.Args)
	proj[t.min-1] = term.Int(0)
	key, canonProj := Canonicalize(nil, &term.Compound{Functor: c.Functor, Args: proj})
	idx, seen := t.projIdx[key]
	if seen && cost >= t.costs[idx] {
		ev.space.subsumed.Add(1)
		if ev.h != nil {
			ev.h.subsumed.Add(1)
		}
		return nil
	}
	pc := canonProj.(*term.Compound)
	args := make([]term.Term, len(pc.Args))
	copy(args, pc.Args)
	args[t.min-1] = costArg
	canon := &term.Compound{Functor: pc.Functor, Args: args}
	if !seen {
		t.projIdx[key] = len(t.answers)
		t.answers = append(t.answers, canon)
		t.costs = append(t.costs, cost)
		t.nAnswers.Add(1)
		t.bytes.Add(term.ApproxBytes(canon))
		ev.noteAdded()
		return nil
	}
	// Strictly cheaper: replace in place. The replacement is a value
	// change, so it counts toward ev.added — a generator round that only
	// improves costs must keep the dependency group open (the improved
	// answer can lower costs derived through it in the next round), even
	// though the answer *count* did not move. Retained bytes track the
	// swap (a cheaper answer can be structurally larger or smaller).
	t.bytes.Add(term.ApproxBytes(canon) - term.ApproxBytes(t.answers[idx]))
	t.answers[idx] = canon
	t.costs[idx] = cost
	ev.added++
	ev.space.improved.Add(1)
	if ev.h != nil {
		ev.h.improved.Add(1)
	}
	return nil
}

// noteAdded counts one new memoized answer on the eval, the space and the
// query handle.
func (ev *eval) noteAdded() {
	ev.added++
	ev.space.answers.Add(1)
	if ev.h != nil {
		ev.h.answers.Add(1)
	}
}

// charge counts answer consumptions against the derivation budget, so a
// runaway fixpoint (infinitely many answers) whose per-round expansion
// count is tiny still hits the budget instead of re-replaying ever-larger
// tables forever.
func (ev *eval) charge(consumed int) error {
	ev.steps += uint64(consumed)
	if ev.steps > ev.budget {
		return ErrBudget
	}
	return nil
}

// IsTabled implements engine.Tabler for generator expanders.
func (ev *eval) IsTabled(fn term.Sym, arity int) bool { return ev.space.db.IsTabled(fn, arity) }

// ForNegation implements engine.NegationTabler: negation sub-searches
// inside a production get the restricted negEval view.
func (ev *eval) ForNegation() engine.Tabler { return negEval{ev} }

// serveComplete replays a table completed before this production began.
func (ev *eval) serveComplete(env *term.Env, goal term.Term, t *Table) ([]*term.Env, error) {
	if t.truncated {
		ev.truncConsumed = true
	}
	// The consumed table's answers flow into this production, so its
	// dependency set (already transitive) and its own predicate join ours.
	ev.deps[predKey{t.fn, t.arity}] = struct{}{}
	for _, d := range t.deps {
		ev.deps[d] = struct{}{}
	}
	t.hits.Add(1)
	t.lastHit.Store(time.Now().UnixNano())
	if fn, arity, ok := term.PredOf(t.pattern); ok {
		ev.prof.TableHit(fn, arity)
	}
	if ev.h != nil {
		ev.h.hits.Add(1)
		ev.h.noteTruncated(t)
	}
	ev.space.hits.Add(1)
	envs := bindAnswers(env, goal, t.answers)
	if ev.h != nil {
		ev.h.reuse.Add(uint64(len(envs)))
	}
	ev.space.reuse.Add(uint64(len(envs)))
	return envs, ev.charge(len(envs))
}

// Resolve implements engine.Tabler for calls made inside generators.
func (ev *eval) Resolve(_ context.Context, env *term.Env, goal term.Term) ([]*term.Env, error) {
	key, pattern := Canonicalize(env, goal)
	// Tables this eval is already producing resolve by identity through
	// the group, never through the live map: a concurrent Invalidate
	// swaps the map mid-production, and a fresh (empty) table under the
	// same key would silently truncate the fixpoint.
	if t := ev.group[key]; t != nil {
		if err := ev.require(t); err != nil {
			return nil, err
		}
		if !t.complete.Load() {
			ev.noteConsumption(t)
		}
		envs := bindAnswers(env, goal, t.answers)
		return envs, ev.charge(len(envs))
	}
	if t, ok := ev.space.lookup(key, ev.maxDepth); ok {
		return ev.serveComplete(env, goal, t)
	}
	t := ev.space.getOrCreate(key, pattern, ev.h, ev.maxDepth, ev.reqID)
	if fn, arity, ok := term.PredOf(pattern); ok {
		ev.prof.TableMiss(fn, arity)
	}
	if err := ev.require(t); err != nil {
		return nil, err
	}
	// Producer or follower consumption of the answers known so far; for
	// followers the enclosing rounds guarantee late answers are seen.
	if !t.complete.Load() {
		ev.noteConsumption(t)
	}
	envs := bindAnswers(env, goal, t.answers)
	return envs, ev.charge(len(envs))
}

// ErrNonStratified rejects negation over a tabled predicate whose answer
// set is still growing — a negative loop through the recursive component
// being produced. Memoizing such a negation would freeze an unsound model
// into the shared table space, so the program is refused instead (the
// stratification restriction of standard tabling systems).
var ErrNonStratified = errors.New("table: negation over a tabled predicate in its own recursive component (non-stratified program)")

// negEval is the Tabler view used inside negation-as-failure sub-searches
// during a production. A \+ decision is only sound against a final answer
// set, so it serves complete tables and final (independently converged)
// pending tables, and rejects anything still growing.
type negEval struct{ ev *eval }

// IsTabled implements engine.Tabler.
func (n negEval) IsTabled(fn term.Sym, arity int) bool { return n.ev.IsTabled(fn, arity) }

// ForNegation implements engine.NegationTabler (negation within negation
// keeps the restriction).
func (n negEval) ForNegation() engine.Tabler { return n }

// Resolve implements engine.Tabler under the finality restriction.
func (n negEval) Resolve(_ context.Context, env *term.Env, goal term.Term) ([]*term.Env, error) {
	ev := n.ev
	key, pattern := Canonicalize(env, goal)
	t := ev.group[key]
	if t == nil {
		if ct, ok := ev.space.lookup(key, ev.maxDepth); ok {
			return ev.serveComplete(env, goal, ct)
		}
		t = ev.space.getOrCreate(key, pattern, ev.h, ev.maxDepth, ev.reqID)
	}
	if ev.inProg[t.key] != nil {
		return nil, ErrNonStratified
	}
	if err := ev.require(t); err != nil {
		return nil, err
	}
	if !t.complete.Load() && !t.independent {
		return nil, ErrNonStratified
	}
	envs := bindAnswers(env, goal, t.answers)
	return envs, ev.charge(len(envs))
}

var (
	_ engine.Tabler         = (*eval)(nil)
	_ engine.NegationTabler = (*eval)(nil)
	_ engine.NegationTabler = negEval{}
)
