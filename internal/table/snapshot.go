package table

// snapshot.go — the persistent table store: complete, non-truncated
// tables serialize to a line-oriented JSON snapshot and load back into a
// fresh space, so a blogd restart replays its hot answer tables instead
// of rebuilding every fixpoint from nothing.
//
// The codec leans on the same canonical forms the live space uses. Terms
// travel as source text (the canonical pattern and answers render with
// numbered _T variables and re-parse byte-identically), and each record
// carries the table's dependency set with a per-predicate clause
// fingerprint (kb.PredFingerprint). Loading validates per table: the
// predicate must still be tabled in the same mode, and every dependency's
// fingerprint must match the current database — a mismatch skips exactly
// that table (it re-derives on next touch), never the whole snapshot.
// Truncated tables are never written: they are depth-bound artifacts of
// the producing configuration, and untruncated tables are the ones that
// serve any depth, which is what makes the snapshot valid under a
// different -max-depth at the next boot. Dirty tables are skipped too —
// persisting known-stale answers would re-introduce the staleness the
// dirty mark exists to prevent.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"blog/internal/obs"
	"blog/internal/parse"
	"blog/internal/term"
)

// snapshotVersion is the on-disk format version; a reader rejects files
// written by a different major layout.
const snapshotVersion = 1

// snapHeader is the first line of a snapshot file.
type snapHeader struct {
	V        int   `json:"v"`
	MaxDepth int   `json:"max_depth"`
	Tables   int   `json:"tables"`
	SavedAt  int64 `json:"saved_at"` // unixnano
}

// snapDep is one validated dependency edge: the predicate indicator and
// the fingerprint of its clause list at save time.
type snapDep struct {
	Pred string `json:"pred"`
	FP   uint64 `json:"fp"`
}

// snapRecord is one persisted table.
type snapRecord struct {
	Pred          string    `json:"pred"`
	Call          string    `json:"call"`
	Min           int       `json:"min,omitempty"`
	Deps          []snapDep `json:"deps"`
	Answers       []string  `json:"answers"`
	CreatedAt     int64     `json:"created_at"`
	CompletedAt   int64     `json:"completed_at"`
	Hits          uint64    `json:"hits,omitempty"`
	Rounds        int64     `json:"rounds,omitempty"`
	Revalidations int64     `json:"revalidations,omitempty"`
}

// WriteSnapshot serializes every complete, clean, untruncated table to w
// and returns how many were written. Safe to call concurrently with
// queries and asserts: the table set is snapshotted under the read lock, a
// complete table's answer list is immutable, and each table's dirty mark
// is re-checked after its dependency fingerprints are computed, so an
// assert racing the writer can only drop a record, never produce one whose
// fingerprints postdate its answers.
func (s *Space) WriteSnapshot(w io.Writer) (int, error) {
	s.mu.RLock()
	maxDepth := s.maxDepth
	list := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		if t.complete.Load() && !t.dirty.Load() && !t.truncated {
			list = append(list, t)
		}
	}
	s.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].key < list[j].key })

	recs := make([]snapRecord, 0, len(list))
	var totalBytes int64
	for _, t := range list {
		rec := snapRecord{
			Pred:          t.pred,
			Call:          t.pattern.String(),
			Min:           t.min,
			Deps:          make([]snapDep, len(t.deps)),
			Answers:       make([]string, len(t.answers)),
			CreatedAt:     t.createdAt.UnixNano(),
			CompletedAt:   t.completedAt.Load(),
			Hits:          t.hits.Load(),
			Rounds:        t.rounds.Load(),
			Revalidations: t.revalidations.Load(),
		}
		for i, d := range t.deps {
			rec.Deps[i] = snapDep{Pred: d.String(), FP: s.db.PredFingerprint(d.fn, d.arity)}
		}
		for i, a := range t.answers {
			rec.Answers[i] = a.String()
		}
		// Re-check the dirty mark only now, *after* the fingerprints above:
		// an assert publishes its dirty marks inside the same database
		// write-lock critical section that changes the fingerprints, so if
		// any fingerprint read observed the post-assert clause store, this
		// load observes the mark and the record is dropped. Checking before
		// fingerprinting (or relying on the selection alone) could pair
		// post-assert fingerprints with pre-assert answers — a record that
		// would validate as fresh at the next boot and serve stale answers.
		if t.dirty.Load() {
			continue
		}
		recs = append(recs, rec)
		totalBytes += t.bytes.Load()
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(snapHeader{
		V:        snapshotVersion,
		MaxDepth: maxDepth,
		Tables:   len(recs),
		SavedAt:  time.Now().UnixNano(),
	}); err != nil {
		return 0, err
	}
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	s.journal.Load().Emit(obs.Event{
		Kind:  obs.KindSnapshotSaved,
		Count: int64(len(recs)),
		Bytes: totalBytes,
	})
	return len(recs), nil
}

// ReadSnapshot loads a snapshot written by WriteSnapshot into the space,
// validating each table against the current database: the predicate must
// still be tabled in the recorded mode, every dependency's clause
// fingerprint must match, and every term must re-parse. A table that
// fails validation — or whose call pattern already has a live table — is
// skipped and simply re-derives on next touch; a malformed header or
// stream aborts with an error. Returns (loaded, skipped).
func (s *Space) ReadSnapshot(r io.Reader) (loaded, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, 0, err
		}
		return 0, 0, fmt.Errorf("table: snapshot is empty")
	}
	var hdr snapHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return 0, 0, fmt.Errorf("table: bad snapshot header: %w", err)
	}
	if hdr.V != snapshotVersion {
		return 0, 0, fmt.Errorf("table: snapshot version %d, want %d", hdr.V, snapshotVersion)
	}
	var totalBytes int64
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec snapRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return loaded, skipped, fmt.Errorf("table: bad snapshot record: %w", err)
		}
		t, bytes, ok := s.restore(&rec)
		if !ok {
			skipped++
			continue
		}
		s.mu.Lock()
		if _, exists := s.tables[t.key]; exists {
			s.mu.Unlock()
			skipped++
			continue
		}
		s.tables[t.key] = t
		for _, d := range t.deps {
			m := s.depIndex[d]
			if m == nil {
				m = make(map[*Table]struct{})
				s.depIndex[d] = m
			}
			m[t] = struct{}{}
		}
		s.mu.Unlock()
		s.created.Add(1)
		loaded++
		totalBytes += bytes
	}
	if err := sc.Err(); err != nil {
		return loaded, skipped, err
	}
	s.journal.Load().Emit(obs.Event{
		Kind:   obs.KindSnapshotLoaded,
		Count:  int64(loaded),
		Bytes:  totalBytes,
		Detail: fmt.Sprintf("skipped %d", skipped),
	})
	return loaded, skipped, nil
}

// restore validates one snapshot record against the current database and
// rebuilds its table object (already complete, not yet installed).
func (s *Space) restore(rec *snapRecord) (*Table, int64, bool) {
	call, err := parse.OneTerm(rec.Call)
	if err != nil {
		return nil, 0, false
	}
	fn, arity, ok := term.PredOf(call)
	if !ok {
		return nil, 0, false
	}
	if !s.db.IsTabled(fn, arity) || s.db.TabledMin(fn, arity) != rec.Min {
		return nil, 0, false
	}
	deps := make([]predKey, 0, len(rec.Deps))
	for _, d := range rec.Deps {
		k, ok := parsePredKey(d.Pred)
		if !ok || s.db.PredFingerprint(k.fn, k.arity) != d.FP {
			return nil, 0, false
		}
		deps = append(deps, k)
	}
	key, pattern := Canonicalize(nil, call)
	pred, _ := term.Indicator(pattern)
	t := &Table{
		key:     key,
		pattern: pattern,
		pred:    pred,
		fn:      fn,
		arity:   arity,
		min:     rec.Min,
		deps:    deps,
	}
	var bytes int64
	t.answers = make([]term.Term, 0, len(rec.Answers))
	for _, src := range rec.Answers {
		a, err := parse.OneTerm(src)
		if err != nil {
			return nil, 0, false
		}
		afn, aar, ok := term.PredOf(a)
		if !ok || afn != fn || aar != arity {
			return nil, 0, false
		}
		_, canon := Canonicalize(nil, a)
		t.answers = append(t.answers, canon)
		bytes += term.ApproxBytes(canon)
	}
	t.createdAt = time.Unix(0, rec.CreatedAt)
	t.completedAt.Store(rec.CompletedAt)
	t.nAnswers.Store(int64(len(t.answers)))
	t.bytes.Store(bytes)
	t.rounds.Store(rec.Rounds)
	t.hits.Store(rec.Hits)
	t.revalidations.Store(rec.Revalidations)
	t.complete.Store(true)
	return t, bytes, true
}
