package table_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"blog/internal/kb"
	"blog/internal/solve"
	"blog/internal/table"
)

// snapshotSrc exercises all three persistence classes: a plain variant
// table (path/2), an answer-subsumption lattice (shortest/3 min(3)), and
// a table that truncates at the space's depth bound (top/1 behind a
// 13-deep chain) — the last must never be written.
const snapshotSrc = `
:- table path/2.
:- table shortest/3 min(3).
:- table top/1.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(a, b). edge(b, c). edge(c, a). edge(c, d).
shortest(X, Z, C) :- shortest(X, Y, A), wedge(Y, Z, B), C is A + B.
shortest(X, Y, C) :- wedge(X, Y, C).
wedge(a, b, 4). wedge(a, c, 1). wedge(c, b, 1). wedge(b, a, 1).
top(X) :- chain0(X).
chain0(X) :- chain1(X).
chain1(X) :- chain2(X).
chain2(X) :- chain3(X).
chain3(X) :- chain4(X).
chain4(X) :- chain5(X).
chain5(X) :- chain6(X).
chain6(X) :- chain7(X).
chain7(X) :- chain8(X).
chain8(X) :- chain9(X).
chain9(X) :- chain10(X).
chain10(X) :- chain11(X).
chain11(X) :- chain12(X).
chain12(done).
`

var snapshotQueries = []string{"path(a, Z)", "shortest(a, Y, C)", "top(R)"}

// buildSnapshotSpace loads snapshotSrc, materializes all three tables at
// a depth bound that truncates top/1, and returns the db and space.
func buildSnapshotSpace(t *testing.T) (*kb.DB, *table.Space) {
	t.Helper()
	db, _, err := kb.LoadString(snapshotSrc)
	if err != nil {
		t.Fatal(err)
	}
	sp := table.NewSpace(db, table.Config{MaxDepth: 8})
	for _, q := range snapshotQueries {
		tabledAnswers(t, db, sp, q, solve.DFS, false)
	}
	return db, sp
}

// TestSnapshotRoundTrip is the persistence property test: write a space
// holding plain, min(N), and truncated tables; load into a fresh space;
// truncated tables are skipped; the accounting matches exactly; and the
// loaded answers are byte-identical to what a from-scratch re-derivation
// produces — served as replay, with no new table production.
func TestSnapshotRoundTrip(t *testing.T) {
	db, spA := buildSnapshotSpace(t)

	infoByPred := func(sp *table.Space) map[string]table.Info {
		m := map[string]table.Info{}
		for _, ti := range sp.Tables() {
			m[ti.Pred] = ti
		}
		return m
	}
	aInfos := infoByPred(spA)
	if len(aInfos) != 3 || !aInfos["top/1"].Truncated {
		t.Fatalf("builder space = %+v, want 3 tables with top/1 truncated", aInfos)
	}

	var buf bytes.Buffer
	n, err := spA.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("wrote %d tables, want 2 (truncated top/1 excluded)", n)
	}

	spB := table.NewSpace(db, table.Config{MaxDepth: 8})
	loaded, skipped, err := spB.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 || skipped != 0 {
		t.Fatalf("loaded %d skipped %d, want 2 and 0", loaded, skipped)
	}

	// Accounting must match the saved tables exactly: byte-for-byte
	// retained size, answer counts, hit counters carried through.
	bInfos := infoByPred(spB)
	var wantBytes, gotBytes int64
	for _, pred := range []string{"path/2", "shortest/3"} {
		a, b := aInfos[pred], bInfos[pred]
		if !b.Complete || b.Dirty || b.Truncated {
			t.Fatalf("loaded %s = %+v, want clean complete", pred, b)
		}
		if b.Answers != a.Answers || b.Bytes != a.Bytes || b.Hits != a.Hits || b.Min != a.Min {
			t.Fatalf("loaded %s = %+v, want the saved accounting %+v", pred, b, a)
		}
		if fmt.Sprint(b.Deps) != fmt.Sprint(a.Deps) {
			t.Fatalf("loaded %s deps = %v, want %v", pred, b.Deps, a.Deps)
		}
		wantBytes += a.Bytes
		gotBytes += b.Bytes
	}
	if acct := spB.Accounting(); acct.Complete != 2 || acct.RetainedBytes != gotBytes || gotBytes != wantBytes {
		t.Fatalf("accounting = %+v, want 2 complete tables retaining %d bytes", acct, wantBytes)
	}

	// The loaded tables serve by replay: answers byte-identical to an
	// independent re-derivation, no production in the loaded space.
	spC := table.NewSpace(db, table.Config{MaxDepth: 8})
	for _, q := range snapshotQueries[:2] {
		preTot := spB.Totals()
		fromLoad := tabledAnswers(t, db, spB, q, solve.DFS, false)
		fromScratch := tabledAnswers(t, db, spC, q, solve.DFS, false)
		if fmt.Sprint(fromLoad) != fmt.Sprint(fromScratch) {
			t.Fatalf("%q: loaded answers %v != re-derived %v", q, fromLoad, fromScratch)
		}
		postTot := spB.Totals()
		if postTot.Created != preTot.Created || postTot.Hits != preTot.Hits+1 {
			t.Fatalf("%q: totals %+v -> %+v, want a pure table hit with no production", q, preTot, postTot)
		}
	}
	// And the re-derived tables' footprints equal the loaded ones:
	// Bytes stays exact across save, load, and recomputation.
	cInfos := infoByPred(spC)
	for _, pred := range []string{"path/2", "shortest/3"} {
		if cInfos[pred].Bytes != bInfos[pred].Bytes {
			t.Fatalf("%s: re-derived %d bytes, loaded %d — footprint must be exact", pred, cInfos[pred].Bytes, bInfos[pred].Bytes)
		}
	}
}

// TestSnapshotSkipsStaleAndDirty pins the validation half: a clause
// assert after save changes the dependency fingerprint, so the affected
// table is skipped at load (and re-derives with the new fact) while the
// untouched table loads; and a dirty table is never written out.
func TestSnapshotSkipsStaleAndDirty(t *testing.T) {
	db, spA := buildSnapshotSpace(t)
	var buf bytes.Buffer
	if n, err := spA.WriteSnapshot(&buf); err != nil || n != 2 {
		t.Fatalf("write = %d, %v", n, err)
	}

	// Mutating edge/2 invalidates path/2's recorded fingerprint;
	// shortest/3 depends on wedge/3 and stays loadable.
	assertFact(t, db, "edge(d, e)")

	spB := table.NewSpace(db, table.Config{MaxDepth: 8})
	loaded, skipped, err := spB.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || skipped != 1 {
		t.Fatalf("loaded %d skipped %d, want the stale path/2 record skipped", loaded, skipped)
	}
	for _, ti := range spB.Tables() {
		if ti.Pred != "shortest/3" {
			t.Fatalf("loaded table = %+v, want only shortest/3", ti)
		}
	}
	// The skipped table re-derives on demand and sees the asserted fact.
	got := tabledAnswers(t, db, spB, "path(a, Z)", solve.DFS, false)
	if fmt.Sprint(got) != "[Z = a Z = b Z = c Z = d Z = e]" {
		t.Fatalf("re-derived path = %v, want the post-assert closure", got)
	}

	// Back in the builder space the assert dirty-marked path/2; a new
	// snapshot must exclude it (persisting known-stale answers would
	// re-introduce the staleness the dirty mark prevents).
	var buf2 bytes.Buffer
	if n, err := spA.WriteSnapshot(&buf2); err != nil || n != 1 {
		t.Fatalf("post-assert write = %d, %v; want only clean shortest/3", n, err)
	}
}

// TestSnapshotRejectsBadStreams: garbage and version-mismatched headers
// abort the load with an error instead of installing partial state.
func TestSnapshotRejectsBadStreams(t *testing.T) {
	db, _, err := kb.LoadString(snapshotSrc)
	if err != nil {
		t.Fatal(err)
	}
	sp := table.NewSpace(db, table.Config{})
	if _, _, err := sp.ReadSnapshot(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, _, err := sp.ReadSnapshot(strings.NewReader(`{"v":99,"tables":0}` + "\n")); err == nil {
		t.Fatal("future version accepted")
	}
	if _, _, err := sp.ReadSnapshot(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
	if sp.Len() != 0 {
		t.Fatalf("rejected loads left %d tables", sp.Len())
	}
}

// TestSnapshotWriteDuringQueries runs WriteSnapshot concurrently with
// live tabled queries (run under -race): the writer snapshots the table
// set under the read lock and complete answer lists are immutable, so
// neither side may trip the race detector or corrupt the stream.
func TestSnapshotWriteDuringQueries(t *testing.T) {
	db, sp := buildSnapshotSpace(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queries := []string{"path(a, Z)", "path(b, Z)", "shortest(a, Y, C)"}
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				tabledAnswers(t, db, sp, queries[(i+j)%len(queries)], solve.DFS, false)
			}
		}(i)
	}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		n, err := sp.WriteSnapshot(&buf)
		if err != nil {
			t.Errorf("concurrent write %d: %v", i, err)
			break
		}
		if n < 2 {
			t.Errorf("concurrent write %d: %d tables, want at least the 2 seeded", i, n)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotLoadDuringQueries races boot-time ReadSnapshot against
// queries arriving on the same fresh space (run under -race): whichever
// side materializes a call pattern first wins, the other is skipped or
// served, and every query still gets the full answer set.
func TestSnapshotLoadDuringQueries(t *testing.T) {
	db, spA := buildSnapshotSpace(t)
	var buf bytes.Buffer
	if _, err := spA.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	spB := table.NewSpace(db, table.Config{MaxDepth: 8})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				got := tabledAnswers(t, db, spB, "path(a, Z)", solve.DFS, false)
				if fmt.Sprint(got) != "[Z = a Z = b Z = c Z = d]" {
					t.Errorf("answers during load = %v", got)
					return
				}
			}
		}()
	}
	if _, _, err := spB.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
