package table_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/ref"
	"blog/internal/solve"
	"blog/internal/table"
	"blog/internal/weights"
	"blog/internal/workload"
)

// TestTabledEnginesAgreeWithFixpointOracle is the tabling soundness and
// completeness net: under every strategy — DFS, BFS, BestFirst and the
// live OR-parallel engine — the tabled answer set of each query must
// equal the minimal-model answers of the independent bottom-up fixpoint
// evaluator (internal/ref), duplicate-free. The cases include
// left-recursive programs over cyclic graphs that ref handles natively
// but the untabled top-down engine cannot finish.
func TestTabledEnginesAgreeWithFixpointOracle(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// tabled marks extra predicates (generated sources without
		// `:- table` directives of their own).
		tabled  []string
		queries []string
	}{
		{"family", workload.FamilyTree(4, 2), []string{"anc/2", "gf/2"}, []string{
			"gf(p0,G)", "anc(p0,X)", "anc(X,p3)", "anc(X,Y)"}},
		{"dag", workload.DAG(4, 3, 2, 7), []string{"path/2"}, []string{
			"path(n0_0,Z)", "path(X,n3_0)", "path(X,Y)"}},
		{"random", workload.RandomProgram(3, 3, 4, 4, 5), []string{"l1p0/2", "l2p0/2"}, []string{
			"l2p0(Q,R)", "l1p0(Q,R)"}},
		{"cyclic-left-recursive", workload.Cyclic(12, 8, 3), nil, []string{
			"path(v0,Z)", "path(X,v5)", "path(X,Y)", "path(v3,v3)"}},
		{"cyclic-small", workload.Cyclic(5, 3, 11), nil, []string{
			"path(v1,Z)", "path(X,Y)"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db, _, err := kb.LoadString(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			for _, pred := range tc.tabled {
				name, arity, ok := splitPred(pred)
				if !ok {
					t.Fatalf("bad pred %q", pred)
				}
				db.MarkTabled(name, arity)
			}
			model, err := ref.Eval(db)
			if err != nil {
				t.Fatalf("oracle rejected program: %v", err)
			}
			sp := table.NewSpace(db, table.Config{})
			for _, query := range tc.queries {
				goals, err := parse.Query(query)
				if err != nil {
					t.Fatal(err)
				}
				want := model.Answers(goals)
				sort.Strings(want)
				for _, strat := range []solve.Strategy{solve.DFS, solve.BFS, solve.BestFirst, solve.Parallel} {
					goals, err := parse.Query(query)
					if err != nil {
						t.Fatal(err)
					}
					resp, err := solve.Do(context.Background(), &solve.Request{
						DB:       db,
						Store:    weights.NewUniform(weights.DefaultConfig()),
						Goals:    goals,
						Strategy: strat,
						Tables:   sp,
					})
					if err != nil {
						t.Fatalf("%v %q: %v", strat, query, err)
					}
					if !resp.Exhausted {
						t.Fatalf("%v %q: not exhausted, comparison invalid", strat, query)
					}
					got := distinctAnswers(resp)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("%v %q:\nengine: %v\noracle: %v", strat, query, got, want)
					}
				}
			}
		})
	}
}

// TestTabledAnswersAreDuplicateFree: when the query is a single tabled
// goal, the engine must return each answer exactly once (the acceptance
// criterion's "complete, duplicate-free answer set") under every
// strategy, learned weights included.
func TestTabledAnswersAreDuplicateFree(t *testing.T) {
	db, _, err := kb.LoadString(workload.Cyclic(10, 6, 17))
	if err != nil {
		t.Fatal(err)
	}
	sp := table.NewSpace(db, table.Config{})
	for _, strat := range []solve.Strategy{solve.DFS, solve.BFS, solve.BestFirst, solve.Parallel} {
		goals, err := parse.Query("path(v0,Z)")
		if err != nil {
			t.Fatal(err)
		}
		resp, err := solve.Do(context.Background(), &solve.Request{
			DB:       db,
			Store:    weights.NewTable(weights.DefaultConfig()),
			Goals:    goals,
			Strategy: strat,
			Learn:    true,
			Tables:   sp,
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		seen := map[string]int{}
		for _, s := range resp.Solutions {
			seen[s.Format(resp.QueryVars)]++
		}
		for ans, n := range seen {
			if n != 1 {
				t.Fatalf("%v: answer %q returned %d times", strat, ans, n)
			}
		}
		if len(seen) != 10 {
			t.Fatalf("%v: %d distinct answers, want all 10 nodes reachable", strat, len(seen))
		}
	}
}

func distinctAnswers(resp *solve.Response) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range resp.Solutions {
		f := s.Format(resp.QueryVars)
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

func splitPred(pred string) (string, int, bool) {
	i := strings.LastIndexByte(pred, '/')
	if i < 0 {
		return "", 0, false
	}
	var arity int
	if _, err := fmt.Sscanf(pred[i+1:], "%d", &arity); err != nil {
		return "", 0, false
	}
	return pred[:i], arity, true
}
