package table

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"blog/internal/kb"
	"blog/internal/term"
)

// fuzzSpace builds a space over a db that declares `:- table p/2 min(2)`.
func fuzzSpace(tb testing.TB) *Space {
	db, _, err := kb.LoadString(":- table p/2 min(2).\np(seed, 0).\n")
	if err != nil {
		tb.Fatal(err)
	}
	return NewSpace(db, Config{})
}

// feedStream pushes one answer stream into a fresh min table via the
// producer's addAnswer path and returns the table's final (key -> cost)
// state. Each stream element is a (key byte, cost byte) pair.
func feedStream(tb testing.TB, sp *Space, stream []byte) map[string]int64 {
	ev := newEval(sp, sp.NewHandle(), context.Background())
	_, pattern := Canonicalize(nil, term.NewCompound("p", term.NewVar("K"), term.NewVar("C")))
	t := sp.getOrCreate(fmt.Sprintf("fuzz-%p", &stream), pattern, nil, 0, "")
	for i := 0; i+1 < len(stream); i += 2 {
		ans := term.NewCompound("p",
			term.NewAtom(fmt.Sprintf("k%d", stream[i])),
			term.Int(int64(stream[i+1])))
		if err := ev.addAnswer(t, ans); err != nil {
			tb.Fatalf("addAnswer(%s): %v", ans, err)
		}
	}
	got := make(map[string]int64, len(t.answers))
	for i, a := range t.answers {
		c := a.(*term.Compound)
		key := c.Args[0].String()
		if _, dup := got[key]; dup {
			tb.Fatalf("key %s appears twice in the answer list %v", key, t.answers)
		}
		got[key] = t.costs[i]
		if int64(c.Args[1].(term.Int)) != t.costs[i] {
			tb.Fatalf("answer %s disagrees with costs[%d] = %d", a, i, t.costs[i])
		}
	}
	return got
}

// FuzzSubsume drives random answer streams into a min(2) table and checks
// the lattice invariant: whatever the arrival order, the table ends with
// exactly the pointwise minima of the stream — one answer per key, each
// carrying the least cost seen for that key, none dropped, none extra.
// Order-independence is asserted by replaying every stream reversed.
func FuzzSubsume(f *testing.F) {
	// Improvement after the projection is already memoized (7 then 3),
	// then a dominated late arrival (9).
	f.Add([]byte{0, 7, 0, 3, 0, 9})
	// Tie cost: the second equal-cost arrival must be subsumed, not doubled.
	f.Add([]byte{4, 5, 4, 5})
	// Interleaved keys with improvements on both.
	f.Add([]byte{1, 9, 2, 8, 1, 2, 2, 1, 1, 2})
	// Strictly decreasing chain on one key.
	f.Add([]byte{3, 200, 3, 100, 3, 50, 3, 1, 3, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		if len(stream) < 2 {
			t.Skip()
		}
		want := make(map[string]int64)
		for i := 0; i+1 < len(stream); i += 2 {
			key := fmt.Sprintf("k%d", stream[i])
			cost := int64(stream[i+1])
			if cur, ok := want[key]; !ok || cost < cur {
				want[key] = cost
			}
		}
		sp := fuzzSpace(t)
		got := feedStream(t, sp, stream)
		if fmt.Sprint(sortedPairs(got)) != fmt.Sprint(sortedPairs(want)) {
			t.Fatalf("stream %v:\n table: %v\nminima: %v", stream, sortedPairs(got), sortedPairs(want))
		}
		// Reverse the stream: the final state must be identical.
		rev := make([]byte, 0, len(stream))
		for i := (len(stream)/2)*2 - 2; i >= 0; i -= 2 {
			rev = append(rev, stream[i], stream[i+1])
		}
		gotRev := feedStream(t, sp, rev)
		if fmt.Sprint(sortedPairs(gotRev)) != fmt.Sprint(sortedPairs(got)) {
			t.Fatalf("stream %v is order-dependent:\n forward: %v\nreversed: %v", stream, sortedPairs(got), sortedPairs(gotRev))
		}
	})
}

func sortedPairs(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(out)
	return out
}
