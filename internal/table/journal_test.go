package table

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"blog/internal/obs"
	"blog/internal/search"
	"blog/internal/weights"
)

// TestJournaledSpaceUnderRace hammers a journaled space (run under -race):
// parallel tabled queries generate tables while an invalidation loop tears
// them down with a cause. The journal must come out with strictly
// increasing, gapless coverage of the lifecycle — created and completed
// events for the queries, invalidated events carrying the loop's cause —
// and the space itself must stay consistent (every query still gets the
// full answer set).
func TestJournaledSpaceUnderRace(t *testing.T) {
	db := load(t, leftRecPath)
	sp := NewSpace(db, Config{})
	j := obs.NewJournal(1 << 14)
	sp.SetJournal(j)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		for _, query := range []string{"path(a, R)", "path(b, R)", "path(c, R)"} {
			wg.Add(1)
			go func(query string) {
				defer wg.Done()
				res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), mustQ(query), search.Options{Strategy: search.DFS, Tabler: sp.NewHandle()})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Solutions) != 4 {
					errs <- fmt.Errorf("%s: %d solutions, want 4", query, len(res.Solutions))
				}
			}(query)
		}
	}
	stop := make(chan struct{})
	var inval sync.WaitGroup
	inval.Add(1)
	go func() {
		defer inval.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sp.Invalidate("race_loop")
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	inval.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The loop may never have caught the space populated (uninstrumented
	// runs finish queries in microseconds); materialize one more table and
	// invalidate it so the lifecycle always includes a journaled wipe.
	if res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), mustQ("path(a, R)"), search.Options{Strategy: search.DFS, Tabler: sp.NewHandle()}); err != nil || len(res.Solutions) != 4 {
		t.Fatalf("final run: %v", err)
	}
	sp.Invalidate("race_loop")

	evs := j.Events(0)
	if len(evs) == 0 {
		t.Fatal("journal empty after journaled run")
	}
	counts := map[string]int{}
	last := uint64(0)
	for _, ev := range evs {
		if ev.Seq <= last {
			t.Fatalf("journal seq %d after %d: not increasing", ev.Seq, last)
		}
		if last != 0 && ev.Seq != last+1 {
			t.Fatalf("journal gap: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
		counts[ev.Kind]++
		switch ev.Kind {
		case obs.KindTableCreated:
			if ev.Pred != "path/2" {
				t.Errorf("created event pred = %q, want path/2", ev.Pred)
			}
		case obs.KindTableCompleted:
			if ev.Count <= 0 || ev.Bytes <= 0 {
				t.Errorf("completed event lacks accounting: %+v", ev)
			}
		case obs.KindTableInvalidated:
			if ev.Cause != "race_loop" {
				t.Errorf("invalidated cause = %q, want race_loop", ev.Cause)
			}
			if ev.Count <= 0 {
				t.Errorf("invalidated event dropped %d tables, want > 0", ev.Count)
			}
		default:
			t.Errorf("unexpected event kind %q: %+v", ev.Kind, ev)
		}
	}
	if counts[obs.KindTableCreated] == 0 || counts[obs.KindTableCompleted] == 0 {
		t.Errorf("lifecycle coverage: %v, want created and completed events", counts)
	}
	// The invalidation loop always fires at least once with tables present
	// (each query creates fresh ones after every wipe).
	if counts[obs.KindTableInvalidated] == 0 {
		t.Errorf("no invalidation events despite invalidation loop: %v", counts)
	}
}
