package table

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/term"
	"blog/internal/weights"
)

func load(t *testing.T, src string) *kb.DB {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return db
}

func q(t *testing.T, query string) []term.Term {
	t.Helper()
	goals, err := parse.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	return goals
}

// runTabled runs one query with tabling over a fresh uniform store.
func runTabled(t *testing.T, db *kb.DB, sp *Space, query string, strat search.Strategy) *search.Result {
	t.Helper()
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, query), search.Options{
		Strategy: strat, Tabler: sp.NewHandle(),
	})
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	return res
}

func answers(t *testing.T, res *search.Result) []string {
	t.Helper()
	out := make([]string, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		out = append(out, s.Format(res.QueryVars))
	}
	sort.Strings(out)
	return out
}

const leftRecPath = `
:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(a, b).
edge(b, c).
edge(c, a).
edge(c, d).
`

// TestLeftRecursionTerminatesComplete is the core tentpole property: a
// left-recursive transitive closure over a cyclic graph — which the plain
// OR-tree search cannot finish — terminates with the complete,
// duplicate-free answer set.
func TestLeftRecursionTerminatesComplete(t *testing.T) {
	db := load(t, leftRecPath)
	sp := NewSpace(db, Config{})
	res := runTabled(t, db, sp, "path(a, R)", search.DFS)
	if !res.Exhausted {
		t.Fatal("tabled search not exhausted")
	}
	got := answers(t, res)
	want := []string{"R = a", "R = b", "R = c", "R = d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
	// Every strategy sees the same completed table.
	for _, strat := range []search.Strategy{search.BFS, search.BestFirst} {
		if got := answers(t, runTabled(t, db, sp, "path(a, R)", strat)); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%v answers = %v, want %v", strat, got, want)
		}
	}
}

// TestVariantReuseAndCounters checks that a repeated call is served from
// the memoized table and the counters say so.
func TestVariantReuseAndCounters(t *testing.T) {
	db := load(t, leftRecPath)
	sp := NewSpace(db, Config{})

	h1 := sp.NewHandle()
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "path(a, R)"), search.Options{Strategy: search.DFS, Tabler: h1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 4 {
		t.Fatalf("first run: %d solutions", len(res.Solutions))
	}
	s1 := h1.Stats()
	if s1.Created != 1 || s1.Answers != 4 || s1.Hits != 0 {
		t.Fatalf("first run stats = %+v, want 1 table, 4 answers, 0 hits", s1)
	}

	h2 := sp.NewHandle()
	if _, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "path(a, R)"), search.Options{Strategy: search.DFS, Tabler: h2}); err != nil {
		t.Fatal(err)
	}
	s2 := h2.Stats()
	if s2.Created != 0 || s2.Hits != 1 || s2.RederivationsAvoided != 4 {
		t.Fatalf("second run stats = %+v, want 0 created, 1 hit, 4 rederivations avoided", s2)
	}

	// A different variant builds its own table.
	h3 := sp.NewHandle()
	if _, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "path(b, R)"), search.Options{Strategy: search.DFS, Tabler: h3}); err != nil {
		t.Fatal(err)
	}
	if s3 := h3.Stats(); s3.Created != 1 {
		t.Fatalf("variant run stats = %+v, want 1 created", s3)
	}
	if n := sp.Len(); n != 2 {
		t.Fatalf("space has %d tables, want 2", n)
	}
}

// TestMutualRecursionFixpoint exercises completion detection across a
// dependency group: even/odd over successor-free natural numbers encoded
// as a cyclic graph of next/2 facts.
func TestMutualRecursionFixpoint(t *testing.T) {
	db := load(t, `
:- table even/1, odd/1.
even(z).
even(X) :- odd(Y), next(Y, X).
odd(X) :- even(Y), next(Y, X).
next(z, one).
next(one, two).
next(two, three).
next(three, z).
`)
	sp := NewSpace(db, Config{})
	gotEven := answers(t, runTabled(t, db, sp, "even(E)", search.DFS))
	wantEven := []string{"E = two", "E = z"}
	if fmt.Sprint(gotEven) != fmt.Sprint(wantEven) {
		t.Fatalf("even = %v, want %v", gotEven, wantEven)
	}
	gotOdd := answers(t, runTabled(t, db, sp, "odd(O)", search.DFS))
	wantOdd := []string{"O = one", "O = three"}
	if fmt.Sprint(gotOdd) != fmt.Sprint(wantOdd) {
		t.Fatalf("odd = %v, want %v", gotOdd, wantOdd)
	}
	// Both tables in the group completed; the odd query was a hit on the
	// group completed by the even query.
	for _, info := range sp.Tables() {
		if !info.Complete {
			t.Fatalf("table %s %s incomplete after group fixpoint", info.Pred, info.Call)
		}
	}
}

// TestInvalidateRebuilds checks Invalidate drops tables and the next
// query recomputes them.
func TestInvalidateRebuilds(t *testing.T) {
	db := load(t, leftRecPath)
	sp := NewSpace(db, Config{})
	runTabled(t, db, sp, "path(a, R)", search.DFS)
	if sp.Len() != 1 {
		t.Fatalf("tables = %d, want 1", sp.Len())
	}
	sp.Invalidate("test")
	if sp.Len() != 0 {
		t.Fatalf("tables after invalidate = %d, want 0", sp.Len())
	}
	h := sp.NewHandle()
	if _, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "path(a, R)"), search.Options{Strategy: search.DFS, Tabler: h}); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.Created != 1 || s.Answers != 4 {
		t.Fatalf("post-invalidate stats = %+v, want recomputation", s)
	}
	tot := sp.Totals()
	if tot.Created != 2 || tot.Answers != 8 {
		t.Fatalf("cumulative totals = (%d created, %d answers), want (2, 8): totals are monotonic", tot.Created, tot.Answers)
	}
}

// TestBudgetStopsInfiniteAnswerSets: a tabled predicate with infinitely
// many answers must fail with the budget error, not hang.
func TestBudgetStopsInfiniteAnswerSets(t *testing.T) {
	db := load(t, `
:- table nat/1.
nat(z).
nat(s(X)) :- nat(X).
`)
	sp := NewSpace(db, Config{Budget: 5_000})
	_, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "nat(N)"), search.Options{Strategy: search.DFS, Tabler: sp.NewHandle()})
	if !errors.Is(err, search.ErrBudget) {
		t.Fatalf("err = %v, want table budget (wrapping search.ErrBudget)", err)
	}
}

// TestCancellationDuringProduction: a cancelled context aborts production
// and a later query on a fresh context completes the table.
func TestCancellationDuringProduction(t *testing.T) {
	db := load(t, leftRecPath)
	sp := NewSpace(db, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := search.Run(ctx, db, weights.NewUniform(weights.DefaultConfig()), q(t, "path(a, R)"), search.Options{Strategy: search.DFS, Tabler: sp.NewHandle()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	res := runTabled(t, db, sp, "path(a, R)", search.DFS)
	if len(res.Solutions) != 4 || !res.Exhausted {
		t.Fatalf("retry after cancel: %d solutions, exhausted=%v", len(res.Solutions), res.Exhausted)
	}
}

// TestConcurrentConsumption hammers one space from many goroutines (run
// under -race): concurrent producers serialize, consumers see only
// complete tables, and every run gets the full answer set.
func TestConcurrentConsumption(t *testing.T) {
	db := load(t, leftRecPath)
	sp := NewSpace(db, Config{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		for _, query := range []string{"path(a, R)", "path(b, R)", "path(c, R)"} {
			wg.Add(1)
			go func(query string) {
				defer wg.Done()
				res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), mustQ(query), search.Options{Strategy: search.DFS, Tabler: sp.NewHandle()})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Solutions) != 4 {
					errs <- fmt.Errorf("%s: %d solutions, want 4", query, len(res.Solutions))
				}
			}(query)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func mustQ(query string) []term.Term {
	goals, err := parse.Query(query)
	if err != nil {
		panic(err)
	}
	return goals
}

// TestCanonicalizeVariants checks the variant key: sharing preserved,
// renamed goals are variants, distinct shapes are not.
func TestCanonicalizeVariants(t *testing.T) {
	k := func(s string) string {
		goals := mustQ(s)
		key, _ := Canonicalize(nil, goals[0])
		return key
	}
	if k("p(X, Y)") != k("p(A, B)") {
		t.Fatal("renamed-apart goals must be variants")
	}
	if k("p(X, X)") == k("p(X, Y)") {
		t.Fatal("shared-variable goal must not be a variant of the open goal")
	}
	if k("p(a, X)") == k("p(X, a)") {
		t.Fatal("different constant positions must differ")
	}
	if k("p(f(X), X)") != k("p(f(B), B)") {
		t.Fatal("compound sharing must canonicalize consistently")
	}
}

// TestTabledWithBuiltinsAndNegation: generators run the full engine, so
// bodies may use builtins and negation-as-failure.
func TestTabledWithBuiltinsAndNegation(t *testing.T) {
	db := load(t, `
:- table reach/2.
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
blocked(c).
safe_reach(X, Y) :- reach(X, Y), \+(blocked(Y)).
edge(a, b).
edge(b, c).
edge(c, a).
`)
	sp := NewSpace(db, Config{})
	got := answers(t, runTabled(t, db, sp, "safe_reach(a, R)", search.DFS))
	want := []string{"R = a", "R = b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("safe_reach = %v, want %v", got, want)
	}
}

// TestDepthTruncationIsFlagged: a tabled predicate whose generator
// derivations hit the depth bound memoizes the depth-capped set but
// flags the table Truncated, so the cap is visible instead of silent.
func TestDepthTruncationIsFlagged(t *testing.T) {
	var b strings.Builder
	b.WriteString(":- table top/1.\ntop(X) :- chain0(X).\n")
	const deep = 12
	for i := 0; i < deep; i++ {
		fmt.Fprintf(&b, "chain%d(X) :- chain%d(X).\n", i, i+1)
	}
	fmt.Fprintf(&b, "chain%d(done).\n", deep)
	db := load(t, b.String())

	sp := NewSpace(db, Config{MaxDepth: 6})
	res := runTabled(t, db, sp, "top(R)", search.DFS)
	if len(res.Solutions) != 0 {
		t.Fatalf("depth-capped generator found %d answers, want 0", len(res.Solutions))
	}
	infos := sp.Tables()
	if len(infos) != 1 || !infos[0].Complete || !infos[0].Truncated {
		t.Fatalf("infos = %+v, want one complete, truncated table", infos)
	}

	// The truncation is visible on the handle's counters too.
	h := sp.NewHandle()
	if _, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "top(R)"), search.Options{Strategy: search.DFS, Tabler: h}); err != nil {
		t.Fatal(err)
	}
	if h.Stats().TablesTruncated == 0 {
		t.Fatal("truncated consumption not counted on the handle")
	}

	// A deeper query re-produces the truncated table at its own bound
	// and finds the answer — MaxDepth means the same thing tabled or not.
	h2 := sp.NewHandle()
	h2.SetMaxDepth(500)
	res2, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "top(R)"), search.Options{Strategy: search.DFS, MaxDepth: 500, Tabler: h2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Solutions) != 1 {
		t.Fatalf("deep query found %d answers, want 1", len(res2.Solutions))
	}
	if s2 := h2.Stats(); s2.Created != 1 || s2.TablesTruncated != 0 {
		t.Fatalf("deep query stats = %+v, want a fresh untruncated production", s2)
	}

	// A space with enough depth derives the answer and is not truncated.
	sp2 := NewSpace(db, Config{MaxDepth: 64})
	res3 := runTabled(t, db, sp2, "top(R)", search.DFS)
	if len(res3.Solutions) != 1 {
		t.Fatalf("deep run found %d answers, want 1", len(res3.Solutions))
	}
	if infos := sp2.Tables(); infos[0].Truncated {
		t.Fatalf("deep run flagged truncated: %+v", infos)
	}
}

// TestReconfigureRaisesDepth: Reconfigure drops tables and applies the
// new depth bound, so a previously truncated table rebuilds complete —
// the LoadWeights path.
func TestReconfigureRaisesDepth(t *testing.T) {
	var b strings.Builder
	b.WriteString(":- table top/1.\ntop(X) :- chain0(X).\n")
	const deep = 12
	for i := 0; i < deep; i++ {
		fmt.Fprintf(&b, "chain%d(X) :- chain%d(X).\n", i, i+1)
	}
	fmt.Fprintf(&b, "chain%d(done).\n", deep)
	db := load(t, b.String())

	sp := NewSpace(db, Config{MaxDepth: 6})
	if res := runTabled(t, db, sp, "top(R)", search.DFS); len(res.Solutions) != 0 {
		t.Fatalf("capped run found %d answers, want 0", len(res.Solutions))
	}
	sp.Reconfigure(Config{MaxDepth: 64})
	if sp.Len() != 0 {
		t.Fatalf("tables survived Reconfigure: %d", sp.Len())
	}
	if res := runTabled(t, db, sp, "top(R)", search.DFS); len(res.Solutions) != 1 {
		t.Fatalf("reconfigured run found %d answers, want 1", len(res.Solutions))
	}
}

const weightedCycle = `
:- table shortest/3 min(3).
shortest(X,Z,C) :- shortest(X,Y,A), edge(Y,Z,B), C is A + B.
shortest(X,Y,C) :- edge(X,Y,C).
edge(a,b,4).
edge(a,c,1).
edge(c,b,1).
edge(b,a,1).
`

// TestMinSubsumptionKeepsMinima is the tentpole property in miniature: a
// left-recursive weighted reachability over a cyclic graph — which plain
// tabling floods with unboundedly many dominated cost tuples — terminates
// with exactly one answer per reachable pair, carrying the true minimum.
func TestMinSubsumptionKeepsMinima(t *testing.T) {
	db := load(t, weightedCycle)
	sp := NewSpace(db, Config{})
	h := sp.NewHandle()
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "shortest(a, Y, C)"), search.Options{Strategy: search.DFS, Tabler: h})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("weighted tabled search not exhausted")
	}
	got := answers(t, res)
	want := []string{"Y = a, C = 3", "Y = b, C = 2", "Y = c, C = 1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("minima = %v, want %v", got, want)
	}
	st := h.Stats()
	if st.AnswersSubsumed == 0 {
		t.Fatalf("stats = %+v, want AnswersSubsumed > 0 (the direct a->b edge is dominated)", st)
	}
	if st.AnswersImproved == 0 {
		t.Fatalf("stats = %+v, want AnswersImproved > 0 (a->b improves from 4 to 2)", st)
	}
	// The table listing shows the subsumption slot.
	infos := sp.Tables()
	if len(infos) != 1 || infos[0].Min != 3 || infos[0].Answers != 3 {
		t.Fatalf("infos = %+v, want one min(3) table with 3 answers", infos)
	}
}

// TestImprovementKeepsGroupOpen is the fixpoint regression test: a
// generator round that adds no new answer but *improves* an existing cost
// must keep the dependency group open, because the improved answer can
// lower costs derived through it in the next round. The graph is built so
// the last discovery round is long past before the cheap long chain
// catches up: a->x directly costs 100 and x->y costs 100 more, while a
// six-hop chain reaches x for 6. The round that improves x from 100 to 6
// adds nothing new — a count-based stability check would stop there and
// freeze y at 200 instead of re-deriving it at 106.
func TestImprovementKeepsGroupOpen(t *testing.T) {
	db := load(t, `
:- table shortest/3 min(3).
shortest(X,Z,C) :- shortest(X,Y,A), edge(Y,Z,B), C is A + B.
shortest(X,Y,C) :- edge(X,Y,C).
edge(a,x,100).
edge(x,y,100).
edge(a,c1,1).
edge(c1,c2,1).
edge(c2,c3,1).
edge(c3,c4,1).
edge(c4,c5,1).
edge(c5,x,1).
`)
	sp := NewSpace(db, Config{})
	h := sp.NewHandle()
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "shortest(a, Y, C)"), search.Options{Strategy: search.DFS, Tabler: h})
	if err != nil {
		t.Fatal(err)
	}
	got := answers(t, res)
	want := []string{
		"Y = c1, C = 1", "Y = c2, C = 2", "Y = c3, C = 3", "Y = c4, C = 4",
		"Y = c5, C = 5", "Y = x, C = 6", "Y = y, C = 106",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("answers = %v, want %v (y = 106 requires the improvement-only round to keep the group open)", got, want)
	}
	if st := h.Stats(); st.AnswersImproved < 2 {
		t.Fatalf("stats = %+v, want at least the x and y improvements counted", st)
	}
}

// TestMinCostMustBeInteger: a derivation into a min table whose cost
// argument is not an integer has no place in the cost lattice and must be
// rejected, not silently memoized.
func TestMinCostMustBeInteger(t *testing.T) {
	db := load(t, `
:- table w/2 min(2).
w(a, oops).
`)
	sp := NewSpace(db, Config{})
	_, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "w(a, C)"), search.Options{Strategy: search.DFS, Tabler: sp.NewHandle()})
	if !errors.Is(err, ErrCost) {
		t.Fatalf("err = %v, want ErrCost", err)
	}
	for _, ti := range sp.Tables() {
		if ti.Complete {
			t.Fatalf("refused production left complete table %+v", ti)
		}
	}
}

// TestMinVariantsAreIndependent: a call with the cost argument bound and
// a differently-projected variant each get their own lattice.
func TestMinVariantsAreIndependent(t *testing.T) {
	db := load(t, weightedCycle)
	sp := NewSpace(db, Config{})
	// Fully projected: one pair, one minimal answer.
	res := runTabled(t, db, sp, "shortest(a, b, C)", search.DFS)
	if got := answers(t, res); fmt.Sprint(got) != "[C = 2]" {
		t.Fatalf("shortest(a,b,C) = %v, want the minimum 2", got)
	}
	// A later wider call builds its own variant table and still minimizes.
	res = runTabled(t, db, sp, "shortest(b, Y, C)", search.DFS)
	want := []string{"Y = a, C = 1", "Y = b, C = 3", "Y = c, C = 2"}
	if got := answers(t, res); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("shortest(b,Y,C) = %v, want %v", got, want)
	}
	// Three variants: shortest(a,b,_), the open shortest(a,_,_) its
	// generator recursed through, and shortest(b,_,_).
	if n := sp.Len(); n != 3 {
		t.Fatalf("space has %d tables, want 3 independent variants", n)
	}
}

// TestStratifiedNegationOverTabled: negation over a tabled predicate
// from a lower stratum works inside another tabled predicate's
// production — the inner table is produced to finality first.
func TestStratifiedNegationOverTabled(t *testing.T) {
	db := load(t, `
:- table reach/2, unreachable/2.
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
unreachable(X, Y) :- node(X), node(Y), \+(reach(X, Y)).
node(a). node(b). node(c). node(d).
edge(a, b). edge(b, c). edge(c, a).
`)
	sp := NewSpace(db, Config{})
	got := answers(t, runTabled(t, db, sp, "unreachable(a, Y)", search.DFS))
	want := []string{"Y = d"} // d is off the cycle
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("unreachable = %v, want %v", got, want)
	}
}

// TestNonStratifiedNegationRejected: a negative loop through the
// component being produced must be refused, not memoized unsoundly.
func TestNonStratifiedNegationRejected(t *testing.T) {
	db := load(t, `
:- table p/1, q/1.
p(a) :- \+(q(a)).
q(a) :- p(a).
`)
	sp := NewSpace(db, Config{})
	_, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "p(a)"), search.Options{Strategy: search.DFS, Tabler: sp.NewHandle()})
	if !errors.Is(err, ErrNonStratified) {
		t.Fatalf("err = %v, want ErrNonStratified", err)
	}
	// The refused production must not leave a complete table behind.
	for _, ti := range sp.Tables() {
		if ti.Complete {
			t.Fatalf("refused production left complete table %+v", ti)
		}
	}
}

// TestTruncationPropagatesAcrossGroup: a table built on a depth-truncated
// dependency inherits the truncation, so a deeper query re-produces the
// whole group instead of being served the stale incomplete set.
func TestTruncationPropagatesAcrossGroup(t *testing.T) {
	var b strings.Builder
	b.WriteString(":- table p/1, q/1.\np(X) :- q(X).\nq(X) :- chain0(X).\nq(shallow).\n")
	const deep = 8
	for i := 0; i < deep; i++ {
		fmt.Fprintf(&b, "chain%d(X) :- chain%d(X).\n", i, i+1)
	}
	fmt.Fprintf(&b, "chain%d(deepone).\n", deep)
	db := load(t, b.String())

	sp := NewSpace(db, Config{MaxDepth: 4})
	res := runTabled(t, db, sp, "p(R)", search.DFS)
	if len(res.Solutions) != 1 {
		t.Fatalf("capped run found %d answers, want just shallow", len(res.Solutions))
	}
	for _, ti := range sp.Tables() {
		if !ti.Truncated {
			t.Fatalf("table %s %s not flagged truncated: the dependency's cut must infect the group", ti.Pred, ti.Call)
		}
	}

	// A deeper query re-produces the whole group and finds both answers.
	h := sp.NewHandle()
	h.SetMaxDepth(64)
	res2, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), q(t, "p(R)"), search.Options{Strategy: search.DFS, MaxDepth: 64, Tabler: h})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, 2)
	for _, s := range res2.Solutions {
		got = append(got, s.Format(res2.QueryVars))
	}
	sort.Strings(got)
	if fmt.Sprint(got) != "[R = deepone R = shallow]" {
		t.Fatalf("deep query answers = %v, want both", got)
	}
}
