// Package table implements tabled resolution (answer memoization) for the
// B-LOG engine: an answer-table subsystem keyed by call patterns, with
// producer/consumer scheduling and completion detection, so recursive
// subgoals are derived once and every later occurrence — in the same query
// or a later one — resolves against the memoized answer set instead of
// re-opening the OR-subtree.
//
// The paper's OR-tree search (section 3) re-derives a subgoal every time a
// chain reaches it and diverges on left-recursive programs; tabling is the
// canonical fix in modern logic programming systems. The scheme here is
// linear tabling with iterative re-execution: the first call to a tabled
// variant (the producer) runs its program clauses to exhaustion in rounds,
// recursive variant calls inside those rounds consuming the answers known
// so far, until a full round adds no answer anywhere in the dependency
// group; then the whole group is marked complete. Callers of a complete
// table (consumers) never touch program clauses — the engine turns each
// answer into one child node (answer-clause resolution, engine.Tabler).
//
// Answer subsumption extends the scheme to weighted workloads: a
// predicate declared `:- table name/arity min(N)` marks argument N as a
// cost position, and its tables keep at most one answer per projection of
// the remaining arguments — the least-cost derivation seen so far. A
// derivation dominated by the memoized answer is subsumed (dropped); a
// strictly cheaper one replaces it, and the replacement counts as a value
// change that keeps the fixpoint's dependency group open, so generator
// rounds re-run until the costs themselves stabilize. That is what lets a
// left-recursive weighted reachability (`shortest/3` over a cyclic graph)
// terminate with the true minimal cost per reachable pair, where plain
// tabling would enumerate unboundedly many dominated cost tuples.
//
// A Space is the table store shared by every query against one database.
// Variant call patterns are canonicalized over interned term.Syms, answer
// lists are deduplicated by the same canonical form, and concurrent
// consumption is safe under every strategy: complete tables are read
// lock-free behind an atomic completion flag, and production is serialized
// by a context-aware producer slot, so one table is never computed twice
// concurrently and consumers of a table being produced wait for completion
// rather than observing partial answer sets.
//
// Maintenance is dependency-tracked and incremental. Every production
// records the predicates its fixpoint resolved against program clauses
// (plus, transitively, the recorded dependencies of every complete table
// it consumed), and the space indexes complete tables by those
// predicates. A clause assert then dirty-marks only the tables downstream
// of the asserted predicate (Space.InvalidatePred, wired to kb's assert
// hook); a dirty table stops serving, is replaced by a fresh object on
// next touch, and re-derives through the normal production path —
// untouched tables keep serving throughout. Whole-space Invalidate
// remains only for genuine limit changes (a new depth coding A), and
// ReconfigureCause with unchanged limits is a no-op. Complete untruncated
// tables additionally serialize to a persistent snapshot (snapshot.go)
// that validates per-table dependency fingerprints at load, so a blogd
// restart replays its hot tables instead of rebuilding every fixpoint.
package table

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/obs"
	"blog/internal/search"
	"blog/internal/term"
	"blog/internal/unify"
	"blog/internal/weights"
)

// ErrBudget reports that computing a table's answer set exceeded the
// space's derivation budget — the tabled analogue of a runaway search
// (for example a tabled predicate with infinitely many answers). It wraps
// search.ErrBudget so callers classify it like any other budget stop.
var ErrBudget = fmt.Errorf("table: answer derivation exceeded the table space budget: %w", search.ErrBudget)

// Config sizes a Space.
type Config struct {
	// MaxDepth bounds one generator derivation in arcs; 0 uses the
	// weights default A. Tabled recursion does not consume depth (answer
	// consumption is flat), so this only cuts runaway non-tabled chains
	// inside generators.
	MaxDepth int
	// Budget bounds the total generator expansions of one production
	// (the whole dependency group); 0 means DefaultBudget.
	Budget uint64
}

// DefaultBudget bounds one production run; generous, because a production
// covers the full fixpoint of a dependency group.
const DefaultBudget = 2_000_000

// Space is an answer-table store over one database. It is safe for
// concurrent use by any number of queries and workers.
type Space struct {
	db *kb.DB

	// prod is the producer slot: at most one goroutine computes tables at
	// a time, acquired with the caller's context so a cancelled consumer
	// never blocks indefinitely behind a long production.
	prod chan struct{}

	mu       sync.RWMutex
	ws       weights.Store // generator weight store (guarded by mu)
	maxDepth int           // guarded by mu; see Reconfigure
	budget   uint64        // guarded by mu
	tables   map[string]*Table

	// depIndex maps a predicate to the complete tables whose answer sets
	// were derived (transitively) from its clauses, so InvalidatePred
	// dirty-marks exactly the downstream tables. Guarded by mu.
	depIndex map[predKey]map[*Table]struct{}
	// epoch counts predicate invalidations; predEpoch records each
	// predicate's last invalidation epoch. A production snapshots epoch at
	// start and re-checks its dependency set at completion, so an assert
	// that races a fixpoint dirty-marks the freshly completed group
	// instead of letting part-old, part-new answers serve. Guarded by mu.
	epoch     uint64
	predEpoch map[predKey]uint64

	// Cumulative, monotonic counters (survive Invalidate) for /metrics.
	created     atomic.Uint64
	answers     atomic.Uint64
	hits        atomic.Uint64
	reuse       atomic.Uint64
	subsumed    atomic.Uint64
	improved    atomic.Uint64
	dirtied     atomic.Uint64
	revalidated atomic.Uint64

	// journal, when set, receives table lifecycle events (created,
	// completed, truncated, invalidated with cause). Nil by default, so
	// a space without an attached journal pays one nil check per
	// lifecycle transition — never per answer or per hit.
	journal atomic.Pointer[obs.Journal]

	// unhook unregisters this space's assert hook from the database
	// (Close); closeOnce makes Close idempotent.
	unhook    func()
	closeOnce sync.Once
}

// SetJournal attaches the structured event journal; table lifecycle
// events (creation, completion, truncation, invalidation) are emitted
// into it from then on. Safe to call concurrently with queries.
func (s *Space) SetJournal(j *obs.Journal) { s.journal.Store(j) }

// predKey identifies a predicate by interned functor symbol and arity —
// the dependency-graph node type of the maintenance index.
type predKey struct {
	fn    term.Sym
	arity int
}

func (k predKey) String() string { return k.fn.Name() + "/" + strconv.Itoa(k.arity) }

// parsePredKey parses a "name/arity" indicator back to a key.
func parsePredKey(ind string) (predKey, bool) {
	i := strings.LastIndexByte(ind, '/')
	if i <= 0 {
		return predKey{}, false
	}
	arity, err := strconv.Atoi(ind[i+1:])
	if err != nil || arity < 0 {
		return predKey{}, false
	}
	return predKey{term.Intern(ind[:i]), arity}, true
}

// NewSpace returns an empty table space over db. The space registers an
// assert hook, so clause asserts dirty-mark downstream tables; every live
// space over a shared database receives the notification (short-lived
// spaces in tests and benchmarks should Close when done to drop theirs).
func NewSpace(db *kb.DB, cfg Config) *Space {
	s := &Space{
		db:        db,
		prod:      make(chan struct{}, 1),
		tables:    make(map[string]*Table),
		depIndex:  make(map[predKey]map[*Table]struct{}),
		predEpoch: make(map[predKey]uint64),
	}
	s.Reconfigure(cfg)
	s.unhook = db.AddAssertHook(func(fn term.Sym, arity int) { s.InvalidatePred(fn, arity, "assert") })
	return s
}

// Close unregisters the space's assert hook from the database. A closed
// space keeps serving whatever it holds but no longer receives
// invalidations, so it must not be queried after further asserts.
// Idempotent and safe for concurrent use.
func (s *Space) Close() { s.closeOnce.Do(s.unhook) }

// Reconfigure applies new limits — in particular a new depth coding A
// after a weight-table load. Changed limits drop every memoized table,
// since they were produced under the old bounds; unchanged limits (for
// example reloading an identical weight file) are a no-op, so the hot
// cache survives. In-flight productions finish against their orphaned
// tables (their answers stay sound) with the limits they started under.
func (s *Space) Reconfigure(cfg Config) { s.ReconfigureCause(cfg, "reconfigure") }

// ReconfigureCause is Reconfigure with an explicit invalidation cause for
// the journal event ("load_weights", "reconfigure", ...).
func (s *Space) ReconfigureCause(cfg Config, cause string) {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = weights.DefaultConfig().A
	}
	if cfg.Budget == 0 {
		cfg.Budget = DefaultBudget
	}
	s.mu.Lock()
	if s.ws != nil && cfg.MaxDepth == s.maxDepth && cfg.Budget == s.budget {
		// Same limits as the tables were produced under: nothing they
		// depend on changed, so wiping them would be a pure re-derivation
		// stampede. Keep serving.
		s.mu.Unlock()
		return
	}
	s.ws = weights.NewUniform(weights.Config{N: weights.DefaultConfig().N, A: cfg.MaxDepth})
	s.maxDepth = cfg.MaxDepth
	s.budget = cfg.Budget
	dropped := len(s.tables)
	var bytes int64
	if dropped > 0 {
		for _, t := range s.tables {
			bytes += t.bytes.Load()
		}
		s.tables = make(map[string]*Table)
		s.depIndex = make(map[predKey]map[*Table]struct{})
	}
	s.mu.Unlock()
	if dropped > 0 {
		s.journal.Load().Emit(obs.Event{
			Kind:  obs.KindTableInvalidated,
			Cause: cause,
			Count: int64(dropped),
			Bytes: bytes,
		})
	}
}

// limits snapshots the generator limits and the invalidation epoch for
// one production run.
func (s *Space) limits() (ws weights.Store, maxDepth int, budget uint64, epoch uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ws, s.maxDepth, s.budget, s.epoch
}

// Table is the memoized answer set of one call-pattern variant. Answers
// are appended by the (single) producer and become immutable once the
// completion flag is set; consumers read them only after observing
// complete, so the slice is never read and written concurrently.
type Table struct {
	key     string
	pattern term.Term // canonical call with fresh variables
	pred    string    // predicate indicator, for listings
	fn      term.Sym  // interned functor of the pattern
	arity   int

	// min is the 1-based cost-argument position of an answer-subsumption
	// (`min(N)`) table, 0 for plain variant tabling. A min table keeps at
	// most one answer per projection of the remaining arguments — the
	// least-cost derivation seen so far — so answers may be *replaced* by
	// the producer before completion; after the completion flag is set the
	// slice is immutable like any other table's.
	min int

	complete  atomic.Bool
	answers   []term.Term
	answerSet map[string]struct{} // producer-only dedup index (plain tables)
	// projIdx and costs are the subsumption index of a min table
	// (producer-only, like answerSet): projIdx maps the canonical form of
	// an answer's non-cost arguments to its slot in answers, and costs
	// holds the current cost at each slot.
	projIdx map[string]int
	costs   []int64
	// truncated records that a generator derivation hit the depth bound,
	// so answers past it may be missing; depth is the generator bound the
	// table was produced under. An untruncated table is depth-independent
	// (no derivation was cut), so it serves queries of any depth; a
	// truncated one serves only queries whose depth bound it covers and
	// is re-produced when a deeper query arrives. Both are written by the
	// producer before complete is published and read only after.
	truncated bool
	depth     int
	// independent marks a pending (not yet leader-completed) table whose
	// last production never reached an in-progress production below its
	// own frame: its answer set is final, which is what negation inside a
	// production may rely on. Producer-goroutine only; see eval.require.
	independent bool

	// deps is the sorted predicate dependency set recorded at completion:
	// every predicate the fixpoint resolved against program clauses, plus
	// the stored dependencies of every complete table it consumed
	// (transitive closure by construction). Written once under the space
	// mutex at completion, immutable after.
	deps []predKey
	// dirty marks a complete table whose dependency set was invalidated
	// (assert on a predicate it was derived from). A dirty table stops
	// serving — lookup rejects it — and is replaced by a fresh object on
	// next touch; it re-derives through the normal production path.
	dirty atomic.Bool
	// revalidating marks a fresh table that replaced a dirty one, so its
	// completion journals as table_revalidated. Written at creation under
	// the space mutex, read by the single producer.
	revalidating bool
	// revalidations counts how many times this logical table (the call
	// pattern, across object replacements) has been re-derived after a
	// dirty mark. Carried over on replacement.
	revalidations atomic.Int64

	// Resource accounting. Written by the producer (nAnswers/bytes/rounds)
	// and by consumers (hits/lastHit); read at any time by the inventory,
	// so everything is atomic even where a single writer exists.
	createdAt   time.Time    // set under the space mutex at creation
	completedAt atomic.Int64 // unixnano of the completion publish, 0 while producing
	nAnswers    atomic.Int64 // memoized answers so far (replacements do not count)
	bytes       atomic.Int64 // approximate retained bytes of the answer list
	rounds      atomic.Int64 // fixpoint rounds across this table's productions
	hits        atomic.Uint64
	lastHit     atomic.Int64 // unixnano of the last complete-table serve
}

// Table states reported by Info.State and counted by Accounting.
const (
	StateProducing = "producing"
	StateComplete  = "complete"
	StateTruncated = "truncated"
	StateDirty     = "dirty"
)

// Info describes one table for listings (REPL :tables, server /stats and
// /tables).
type Info struct {
	// Pred is the predicate indicator, e.g. "path/2".
	Pred string
	// Call renders the canonical call pattern, e.g. "path(v0,_T1)".
	Call string
	// Answers is the number of distinct memoized answers so far (partial
	// while the table is still producing).
	Answers int
	// Min is the 1-based cost-argument position of an answer-subsumption
	// (`min(N)`) table, 0 for plain variant tabling.
	Min int
	// Complete reports whether the fixpoint finished (an incomplete
	// table was interrupted and will be recomputed on next use).
	Complete bool
	// Truncated reports that a generator derivation hit the depth bound
	// while this table was produced: the memoized set is the depth-capped
	// one, the tabled analogue of the untabled engine's DepthCutoffs.
	Truncated bool
	// State is the coarse lifecycle state: StateProducing (not yet
	// complete), StateComplete, or StateTruncated (complete but
	// depth-capped).
	State string
	// Bytes is the approximate retained heap bytes of the memoized
	// answers (term.ApproxBytes summed over the answer list).
	Bytes int64
	// Hits counts calls served from this table once complete.
	Hits uint64
	// Rounds is the fixpoint round count across this table's productions.
	Rounds int
	// Dirty reports that a dependency of this complete table was
	// invalidated (clause assert); the table no longer serves and will
	// re-derive on next touch.
	Dirty bool
	// Revalidations counts re-derivations of this call pattern after
	// dirty marks (carried across the object replacement each one does).
	Revalidations int
	// Deps lists the predicate indicators this table's fixpoint was
	// derived from (set at completion; empty while producing).
	Deps []string
	// CreatedAt is when the table was materialized; CompletedAt when its
	// group reached fixpoint (zero while producing); LastHit when a
	// consumer was last served from it (zero if never).
	CreatedAt   time.Time
	CompletedAt time.Time
	LastHit     time.Time
}

// infoOf snapshots one table's listing row.
func infoOf(t *Table) Info {
	info := Info{
		Pred:      t.pred,
		Call:      t.pattern.String(),
		Min:       t.min,
		Answers:   int(t.nAnswers.Load()),
		Bytes:     t.bytes.Load(),
		Hits:      t.hits.Load(),
		Rounds:    int(t.rounds.Load()),
		CreatedAt: t.createdAt,
		State:     StateProducing,
	}
	info.Revalidations = int(t.revalidations.Load())
	if t.complete.Load() {
		info.Complete = true
		info.Truncated = t.truncated
		info.State = StateComplete
		if t.truncated {
			info.State = StateTruncated
		}
		if t.dirty.Load() {
			info.Dirty = true
			info.State = StateDirty
		}
		if len(t.deps) > 0 {
			info.Deps = make([]string, len(t.deps))
			for i, d := range t.deps {
				info.Deps[i] = d.String()
			}
		}
	}
	if ns := t.completedAt.Load(); ns != 0 {
		info.CompletedAt = time.Unix(0, ns)
	}
	if ns := t.lastHit.Load(); ns != 0 {
		info.LastHit = time.Unix(0, ns)
	}
	return info
}

// Invalidate drops every table — the blunt instrument, kept for genuine
// whole-space causes (operator reset, limit changes). In-flight
// productions finish against the orphaned tables — their answers remain
// sound — and the next tabled call rebuilds from the current program
// state. The cause is carried on the journal event. Clause asserts do NOT
// route here: they dirty-mark only downstream tables via InvalidatePred.
func (s *Space) Invalidate(cause string) {
	s.mu.Lock()
	dropped := len(s.tables)
	var bytes int64
	if dropped > 0 {
		for _, t := range s.tables {
			bytes += t.bytes.Load()
		}
		s.tables = make(map[string]*Table)
		s.depIndex = make(map[predKey]map[*Table]struct{})
	}
	s.mu.Unlock()
	if dropped > 0 {
		s.journal.Load().Emit(obs.Event{
			Kind:  obs.KindTableInvalidated,
			Cause: cause,
			Count: int64(dropped),
			Bytes: bytes,
		})
	}
}

// InvalidatePred dirty-marks the complete tables whose dependency sets
// include the given predicate — the incremental-maintenance entry point,
// called from kb's assert hook when a clause lands. Dirty tables stop
// serving and re-derive on next touch; everything else keeps serving
// untouched. Incomplete tables (aborted or in-flight productions) are
// orphaned from the map: their answer sets were derived against the old
// clause store and, under negation, could hold answers the new store no
// longer supports, so the next call starts a fresh production (an
// in-flight producer still completes its orphaned group by identity — a
// racing fixpoint is additionally caught by the epoch check at
// completion).
func (s *Space) InvalidatePred(fn term.Sym, arity int, cause string) {
	key := predKey{fn, arity}
	s.mu.Lock()
	s.epoch++
	s.predEpoch[key] = s.epoch
	var marked, bytes int64
	for t := range s.depIndex[key] {
		if t.complete.Load() && !t.dirty.Load() {
			t.dirty.Store(true)
			marked++
			bytes += t.bytes.Load()
		}
	}
	for k, t := range s.tables {
		if !t.complete.Load() {
			delete(s.tables, k)
		}
	}
	s.mu.Unlock()
	if marked > 0 {
		s.dirtied.Add(uint64(marked))
		s.journal.Load().Emit(obs.Event{
			Kind:   obs.KindTableInvalidated,
			Cause:  cause,
			Pred:   key.String(),
			Count:  marked,
			Bytes:  bytes,
			Detail: "dirty-marked for re-derivation",
		})
	}
}

// Len returns the number of live tables.
func (s *Space) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tables)
}

// snapshot copies the live table pointers out from under the lock.
func (s *Space) snapshot() []*Table {
	s.mu.RLock()
	list := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		list = append(list, t)
	}
	s.mu.RUnlock()
	return list
}

// Tables lists the live tables sorted by call pattern.
func (s *Space) Tables() []Info {
	list := s.snapshot()
	out := make([]Info, 0, len(list))
	for _, t := range list {
		out = append(out, infoOf(t))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Call < out[j].Call
	})
	return out
}

// Inventory lists the live tables ranked by retained bytes (largest
// first, ties by pred then call) — the /tables endpoint's order, so the
// biggest memory consumers lead.
func (s *Space) Inventory() []Info {
	list := s.snapshot()
	out := make([]Info, 0, len(list))
	for _, t := range list {
		out = append(out, infoOf(t))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Call < out[j].Call
	})
	return out
}

// Accounting aggregates the live gauges of a Space: table counts by
// lifecycle state and the total approximate bytes and answers retained.
// Unlike Totals these are point-in-time values that drop to zero on
// Invalidate.
type Accounting struct {
	Producing     int
	Complete      int
	Truncated     int
	Dirty         int
	RetainedBytes int64
	Answers       int64
}

// Accounting returns the space's live resource gauges.
func (s *Space) Accounting() Accounting {
	var a Accounting
	for _, t := range s.snapshot() {
		switch {
		case !t.complete.Load():
			a.Producing++
		case t.dirty.Load():
			a.Dirty++
		case t.truncated:
			a.Truncated++
		default:
			a.Complete++
		}
		a.RetainedBytes += t.bytes.Load()
		a.Answers += t.nAnswers.Load()
	}
	return a
}

// Totals are the cumulative (monotonic, surviving Invalidate) counters of
// a Space: tables created, distinct answers memoized, complete-table hits,
// answers replayed from complete tables (each a re-derivation avoided),
// and the answer-subsumption pair — derived answers dominated by a
// cheaper memoized one (Subsumed) and memoized answers replaced by a
// strictly cheaper derivation (Improved).
type Totals struct {
	Created              uint64
	Answers              uint64
	Hits                 uint64
	RederivationsAvoided uint64
	Subsumed             uint64
	Improved             uint64
	// Dirtied counts dirty marks placed by InvalidatePred; Revalidated
	// counts dirty tables that have since re-derived to completion.
	Dirtied     uint64
	Revalidated uint64
}

// Totals returns the space's cumulative counters.
func (s *Space) Totals() Totals {
	return Totals{
		Created:              s.created.Load(),
		Answers:              s.answers.Load(),
		Hits:                 s.hits.Load(),
		RederivationsAvoided: s.reuse.Load(),
		Subsumed:             s.subsumed.Load(),
		Improved:             s.improved.Load(),
		Dirtied:              s.dirtied.Load(),
		Revalidated:          s.revalidated.Load(),
	}
}

// lookup returns the table for key if it is complete, not dirty, and
// serves queries with the given depth bound: untruncated tables serve any
// depth, while a depth-truncated table only covers bounds up to the one
// it was produced under.
func (s *Space) lookup(key string, depth int) (*Table, bool) {
	s.mu.RLock()
	t := s.tables[key]
	s.mu.RUnlock()
	if t != nil && t.complete.Load() && !t.dirty.Load() && (!t.truncated || t.depth >= depth) {
		return t, true
	}
	return nil, false
}

// getOrCreate returns the table for key, materializing it if needed. A
// complete table that lookup rejected — dirty after a dependency
// invalidation, or truncated under a shallower bound than the caller's —
// is replaced by a fresh object under the same key; the old object stays
// valid for consumers already holding it. A dirty replacement carries the
// logical table's identity (creation time, hit counters, revalidation
// count) so the inventory shows one long-lived table being maintained,
// not a new one per assert.
func (s *Space) getOrCreate(key string, pattern term.Term, h *Handle, depth int, reqID string) *Table {
	s.mu.Lock()
	t := s.tables[key]
	var replaced *Table
	if t != nil && t.complete.Load() {
		if t.dirty.Load() {
			replaced = t
			t = nil
		} else if t.truncated && t.depth < depth {
			t = nil
		}
	}
	created := false
	if t == nil {
		pred, _ := term.Indicator(pattern)
		t = &Table{key: key, pattern: pattern, pred: pred, createdAt: time.Now()}
		if fn, arity, ok := term.PredOf(pattern); ok {
			t.fn, t.arity = fn, arity
			t.min = s.db.TabledMin(fn, arity)
		}
		if t.min > 0 {
			t.projIdx = make(map[string]int)
		} else {
			t.answerSet = make(map[string]struct{})
		}
		if replaced != nil {
			t.createdAt = replaced.createdAt
			t.hits.Store(replaced.hits.Load())
			t.lastHit.Store(replaced.lastHit.Load())
			t.revalidations.Store(replaced.revalidations.Load() + 1)
			t.revalidating = true
			s.unindexLocked(replaced)
		}
		s.tables[key] = t
		s.created.Add(1)
		if h != nil {
			h.created.Add(1)
		}
		created = replaced == nil
	}
	s.mu.Unlock()
	if created {
		s.journal.Load().Emit(obs.Event{
			Kind:      obs.KindTableCreated,
			RequestID: reqID,
			Pred:      t.pred,
			Call:      pattern.String(),
		})
	}
	return t
}

// unindexLocked removes a replaced table object from the dependency
// index. Caller holds s.mu.
func (s *Space) unindexLocked(t *Table) {
	for _, d := range t.deps {
		if m := s.depIndex[d]; m != nil {
			delete(m, t)
			if len(m) == 0 {
				delete(s.depIndex, d)
			}
		}
	}
}

// acquireProducer claims the producer slot, or fails with ctx's error.
func (s *Space) acquireProducer(ctx context.Context) error {
	select {
	case s.prod <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.prod <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Space) releaseProducer() { <-s.prod }

// markComplete publishes a produced group: answers appended before the
// flag store are visible to any consumer that loads the flag. It also
// records the production's dependency set on every member and registers
// the members in the dependency index, and it re-checks the set against
// the predicate invalidation epochs: a dependency invalidated after the
// production snapshotted its epoch (an assert racing the fixpoint) means
// part of the rounds may have run against the old clause store, so the
// whole group completes already dirty — the current caller is served (the
// assert raced it either way), the next one re-derives. Returns whether
// the group was marked stale.
func (s *Space) markComplete(group map[string]*Table, deps map[predKey]struct{}, startEpoch uint64) (stale bool) {
	now := time.Now().UnixNano()
	s.mu.Lock()
	for _, t := range group {
		deps[predKey{t.fn, t.arity}] = struct{}{}
	}
	depList := make([]predKey, 0, len(deps))
	for d := range deps {
		if s.predEpoch[d] > startEpoch {
			stale = true
		}
		depList = append(depList, d)
	}
	sort.Slice(depList, func(i, j int) bool {
		if depList[i].fn != depList[j].fn {
			return depList[i].fn < depList[j].fn
		}
		return depList[i].arity < depList[j].arity
	})
	for _, t := range group {
		t.deps = depList
		// Orphaned members (InvalidatePred dropped them from the map
		// mid-production) are unreachable to future lookups; indexing them
		// would only leak.
		if s.tables[t.key] == t {
			for _, d := range depList {
				m := s.depIndex[d]
				if m == nil {
					m = make(map[*Table]struct{})
					s.depIndex[d] = m
				}
				m[t] = struct{}{}
			}
		}
		if stale {
			t.dirty.Store(true)
			s.dirtied.Add(1)
		}
		t.completedAt.Store(now)
		t.complete.Store(true)
	}
	s.mu.Unlock()
	return stale
}

// Stats are the per-query tabled-resolution counters of one Handle.
type Stats struct {
	// Created counts tables this query materialized.
	Created uint64
	// Answers counts distinct answers this query derived into tables.
	Answers uint64
	// Hits counts tabled calls served from an already-complete table.
	Hits uint64
	// RederivationsAvoided counts answers replayed from complete tables —
	// each one a subgoal derivation the untabled engine would have redone.
	RederivationsAvoided uint64
	// TablesTruncated counts consumptions of depth-truncated tables: the
	// served answer set was cut by the depth bound (the tabled analogue
	// of the untabled engine's DepthCutoffs counter).
	TablesTruncated uint64
	// AnswersSubsumed counts derivations into min(N) tables dominated by
	// an already-memoized answer of equal or lower cost — dominated tuples
	// a plain table would have memoized and replayed.
	AnswersSubsumed uint64
	// AnswersImproved counts memoized min(N) answers replaced by a
	// strictly cheaper derivation. An improvement is a value change: it
	// keeps the fixpoint's dependency group open like a new answer does.
	AnswersImproved uint64
}

// Handle is one query run's view of a Space: it implements engine.Tabler
// and keeps per-request counters. A Handle is shared by all workers of a
// parallel run, so its counters are atomic.
type Handle struct {
	space *Space
	// maxDepth is the query's depth bound (SetMaxDepth); productions run
	// at the larger of it and the space default, so raising a query's
	// MaxDepth raises the generator bound too.
	maxDepth int
	// noVM forces table generators onto the tree-walking engine, so a
	// NoVM query run is oracle end to end (SetNoVM).
	noVM bool
	// prof, when non-nil, profiles generator runs and counts table
	// hits/misses per predicate (SetProfiler).
	prof *obs.Profiler
	// trace, when non-nil, receives fixpoint spans under the query's open
	// "search" phase (SetTrace).
	trace *obs.Trace

	created   atomic.Uint64
	answers   atomic.Uint64
	hits      atomic.Uint64
	reuse     atomic.Uint64
	truncated atomic.Uint64
	subsumed  atomic.Uint64
	improved  atomic.Uint64
}

// NewHandle returns a per-query handle on the space.
func (s *Space) NewHandle() *Handle { return &Handle{space: s} }

// SetMaxDepth passes the query's depth bound to table production. It must
// be called before the handle's first Resolve.
func (h *Handle) SetMaxDepth(d int) { h.maxDepth = d }

// SetNoVM forces this handle's table production onto the tree-walking
// engine. It must be called before the handle's first Resolve.
func (h *Handle) SetNoVM(on bool) { h.noVM = on }

// SetProfiler attaches a per-predicate profiler to the handle's table
// resolution: generator runs charge into it, and hits/misses are counted
// per predicate. It must be called before the handle's first Resolve.
func (h *Handle) SetProfiler(p *obs.Profiler) { h.prof = p }

// SetTrace attaches a query trace: each leader fixpoint records a span
// (with per-round child spans) under the query's open "search" phase. It
// must be called before the handle's first Resolve.
func (h *Handle) SetTrace(tr *obs.Trace) { h.trace = tr }

// Stats returns the counters this handle accumulated.
func (h *Handle) Stats() Stats {
	return Stats{
		Created:              h.created.Load(),
		Answers:              h.answers.Load(),
		Hits:                 h.hits.Load(),
		RederivationsAvoided: h.reuse.Load(),
		TablesTruncated:      h.truncated.Load(),
		AnswersSubsumed:      h.subsumed.Load(),
		AnswersImproved:      h.improved.Load(),
	}
}

// noteTruncated counts a consumption of a depth-truncated table.
func (h *Handle) noteTruncated(t *Table) {
	if t.truncated {
		h.truncated.Add(1)
	}
}

// IsTabled implements engine.Tabler.
func (h *Handle) IsTabled(fn term.Sym, arity int) bool { return h.space.db.IsTabled(fn, arity) }

// ForNegation implements engine.NegationTabler. The handle itself is safe
// under negation: it serves only complete tables, producing first when
// needed, so a \+ sub-search never observes a growing answer set.
func (h *Handle) ForNegation() engine.Tabler { return h }

// Resolve implements engine.Tabler for top-level (consumer) calls: serve
// a complete table's answers, or claim the producer slot and compute the
// table's dependency group to completion first.
func (h *Handle) Resolve(ctx context.Context, env *term.Env, goal term.Term) ([]*term.Env, error) {
	key, pattern := Canonicalize(env, goal)
	if t, ok := h.space.lookup(key, h.maxDepth); ok {
		return h.serveHit(env, goal, t), nil
	}
	if err := h.space.acquireProducer(ctx); err != nil {
		return nil, err
	}
	defer h.space.releaseProducer()
	// Another producer may have completed the table while we waited.
	if t, ok := h.space.lookup(key, h.maxDepth); ok {
		return h.serveHit(env, goal, t), nil
	}
	t := h.space.getOrCreate(key, pattern, h, h.maxDepth, obs.RequestID(ctx))
	if fn, arity, ok := term.PredOf(pattern); ok {
		h.prof.TableMiss(fn, arity)
	}
	ev := newEval(h.space, h, ctx)
	if err := ev.require(t); err != nil {
		return nil, err
	}
	h.noteTruncated(t)
	return bindAnswers(env, goal, t.answers), nil
}

// serveHit replays a complete table into env and counts the reuse.
func (h *Handle) serveHit(env *term.Env, goal term.Term, t *Table) []*term.Env {
	h.hits.Add(1)
	h.space.hits.Add(1)
	t.hits.Add(1)
	t.lastHit.Store(time.Now().UnixNano())
	if fn, arity, ok := term.PredOf(t.pattern); ok {
		h.prof.TableHit(fn, arity)
	}
	h.noteTruncated(t)
	envs := bindAnswers(env, goal, t.answers)
	h.reuse.Add(uint64(len(envs)))
	h.space.reuse.Add(uint64(len(envs)))
	return envs
}

// bindAnswers unifies goal (under env) with a renamed-apart copy of each
// answer, returning the extended environments. Unification can only fail
// for goals more specific than the call pattern would suggest; for the
// producing call itself every answer matches by construction.
func bindAnswers(env *term.Env, goal term.Term, answers []term.Term) []*term.Env {
	out := make([]*term.Env, 0, len(answers))
	for _, a := range answers {
		if e, ok := unify.Unify(env, goal, term.Refresh(a)); ok {
			out = append(out, e)
		}
	}
	return out
}

// Canonicalize resolves goal under env and rewrites it to its variant
// canonical form: distinct free variables become numbered placeholders in
// first-occurrence order (sharing preserved), and the returned key encodes
// the structure over interned Syms, so two goals are variants of each
// other exactly when their keys are equal. The returned pattern is a fresh
// copy detached from env, reusable as the generator's root goal and as the
// stored form of an answer (Canonicalize with a nil env).
func Canonicalize(env *term.Env, goal term.Term) (string, term.Term) {
	var b strings.Builder
	var seen []*term.Var
	var fresh []*term.Var
	var walk func(t term.Term) term.Term
	walk = func(t term.Term) term.Term {
		t = env.Resolve(t)
		switch t := t.(type) {
		case term.Atom:
			b.WriteByte('a')
			b.WriteString(strconv.FormatInt(int64(t.Sym()), 10))
			return t
		case term.Int:
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(int64(t), 10))
			return t
		case *term.Var:
			idx := -1
			for i, v := range seen {
				if v == t {
					idx = i
					break
				}
			}
			if idx < 0 {
				idx = len(seen)
				seen = append(seen, t)
				fresh = append(fresh, term.NewVar("_T"+strconv.Itoa(idx)))
			}
			b.WriteByte('_')
			b.WriteString(strconv.Itoa(idx))
			return fresh[idx]
		case *term.Compound:
			b.WriteByte('c')
			b.WriteString(strconv.FormatInt(int64(t.Functor), 10))
			b.WriteByte('/')
			b.WriteString(strconv.Itoa(len(t.Args)))
			b.WriteByte('(')
			args := make([]term.Term, len(t.Args))
			changed := false
			for i, a := range t.Args {
				args[i] = walk(a)
				if args[i] != a {
					changed = true
				}
				b.WriteByte(',')
			}
			b.WriteByte(')')
			if !changed {
				return t
			}
			return &term.Compound{Functor: t.Functor, Args: args}
		default:
			return t
		}
	}
	pattern := walk(goal)
	return b.String(), pattern
}

var (
	_ engine.Tabler         = (*Handle)(nil)
	_ engine.NegationTabler = (*Handle)(nil)
)
