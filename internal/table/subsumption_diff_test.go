package table_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/ref"
	"blog/internal/solve"
	"blog/internal/table"
	"blog/internal/weights"
	"blog/internal/workload"
)

// oracleEdges converts workload edges to the oracle's input type. The two
// types are kept separate on purpose: the oracle package must not import
// the workload generators (or anything else the engine side uses).
func oracleEdges(es []workload.WEdge) []ref.WeightedEdge {
	out := make([]ref.WeightedEdge, len(es))
	for i, e := range es {
		out[i] = ref.WeightedEdge{From: e.From, To: e.To, Cost: e.Cost}
	}
	return out
}

// TestSubsumptionAgreesWithBellmanFordOracle is the answer-subsumption
// soundness and minimality net: under every strategy — DFS, BFS,
// BestFirst and the live OR-parallel engine — the min(3)-tabled
// left-recursive shortest/3 program must return exactly one answer per
// reachable node pair, carrying exactly the least path cost computed by
// the independent Bellman–Ford-style relaxation oracle (ref.MinCosts).
// The cases cover a weighted family tree (parallel arcs with different
// costs), a layered DAG, uniformly random graphs (cycles and self-loops
// included) and the strongly cyclic ring-with-chords workload the
// untabled engine diverges on; all are negative-free.
func TestSubsumptionAgreesWithBellmanFordOracle(t *testing.T) {
	cases := []struct {
		name  string
		edges []workload.WEdge
		src   string // source node for the bound-source query
	}{
		{"family-weighted", workload.WeightedFamilyTreeEdges(3, 2), "p0"},
		{"dag", workload.WeightedDAGEdges(4, 3, 2, 7), "n0_0"},
		{"random", workload.WeightedRandomEdges(7, 22, 9, 5), "r0"},
		{"random-dense", workload.WeightedRandomEdges(5, 30, 4, 19), "r1"},
		{"cyclic", workload.WeightedCyclicEdges(10, 5, 3), "v0"},
		{"cyclic-small", workload.WeightedCyclicEdges(5, 3, 11), "v1"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			db, _, err := kb.LoadString(workload.ShortestProgram(tc.edges, true))
			if err != nil {
				t.Fatal(err)
			}
			dist, err := ref.MinCosts(oracleEdges(tc.edges))
			if err != nil {
				t.Fatalf("oracle rejected graph: %v", err)
			}

			// Oracle-side answer sets, rendered the way the engines format
			// solutions.
			var wantFrom []string
			var wantAll []string
			for pair, d := range dist {
				if pair[0] == tc.src {
					wantFrom = append(wantFrom, fmt.Sprintf("Z = %s, C = %d", pair[1], d))
				}
				wantAll = append(wantAll, fmt.Sprintf("X = %s, Y = %s, C = %d", pair[0], pair[1], d))
			}
			sort.Strings(wantFrom)
			sort.Strings(wantAll)

			queries := []struct {
				q    string
				want []string
			}{
				{fmt.Sprintf("shortest(%s, Z, C)", tc.src), wantFrom},
				{"shortest(X, Y, C)", wantAll},
			}
			for _, strat := range []solve.Strategy{solve.DFS, solve.BFS, solve.BestFirst, solve.Parallel} {
				// A fresh space per strategy: every strategy must be able to
				// *produce* the cost fixpoint, not just replay one produced
				// by the first.
				sp := table.NewSpace(db, table.Config{})
				for _, qc := range queries {
					goals, err := parse.Query(qc.q)
					if err != nil {
						t.Fatal(err)
					}
					resp, err := solve.Do(context.Background(), &solve.Request{
						DB:       db,
						Store:    weights.NewUniform(weights.DefaultConfig()),
						Goals:    goals,
						Strategy: strat,
						Tables:   sp,
					})
					if err != nil {
						t.Fatalf("%v %q: %v", strat, qc.q, err)
					}
					if !resp.Exhausted {
						t.Fatalf("%v %q: not exhausted, comparison invalid", strat, qc.q)
					}
					got := make([]string, 0, len(resp.Solutions))
					for _, s := range resp.Solutions {
						got = append(got, s.Format(resp.QueryVars))
					}
					sort.Strings(got)
					if fmt.Sprint(got) != fmt.Sprint(qc.want) {
						t.Fatalf("%v %q:\nengine: %v\noracle: %v", strat, qc.q, got, qc.want)
					}
					// Minimality implies one answer per pair: any duplicate
					// or dominated tuple would have shown as an extra line.
					if len(got) != len(qc.want) {
						t.Fatalf("%v %q: %d answers for %d pairs", strat, qc.q, len(got), len(qc.want))
					}
				}
			}
		})
	}
}

// TestSubsumptionCountersSurfaceThroughSolve: the cyclic workload must
// report lattice work (subsumed and improved answers) through the unified
// solver stats, where the facade and the server read it.
func TestSubsumptionCountersSurfaceThroughSolve(t *testing.T) {
	edges := workload.WeightedCyclicEdges(10, 5, 3)
	db, _, err := kb.LoadString(workload.ShortestProgram(edges, true))
	if err != nil {
		t.Fatal(err)
	}
	sp := table.NewSpace(db, table.Config{})
	goals, err := parse.Query("shortest(v0, Z, C)")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := solve.Do(context.Background(), &solve.Request{
		DB:       db,
		Store:    weights.NewUniform(weights.DefaultConfig()),
		Goals:    goals,
		Strategy: solve.DFS,
		Tables:   sp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.AnswersSubsumed == 0 {
		t.Fatalf("stats = %+v, want AnswersSubsumed > 0 on a cyclic weighted fixpoint", resp.Stats)
	}
	tot := sp.Totals()
	if tot.Subsumed == 0 || tot.Subsumed != resp.Stats.AnswersSubsumed || tot.Improved != resp.Stats.AnswersImproved {
		t.Fatalf("space totals %+v disagree with query stats %+v", tot, resp.Stats)
	}
}
