// Package kb implements the B-LOG database: a clause store with predicate
// and first-argument indexing, plus the weighted-pointer structure of
// figure 4 of the paper.
//
// Section 5 stores the database "as a linked list data structure, with
// blocks representing each Horn clause (rule or fact), and pointers to
// blocks representing other rules or facts in the database that can resolve
// the rule", with a weight kept just below each named pointer — an inverted
// file per rule. Here a block is a Clause, and a pointer is an Arc: the
// static coordinate (caller clause, body position, callee clause). Arcs are
// what weights attach to; because they are static program coordinates, a
// weight learned by one query is visible to every later query that travels
// the same pointer, which is requirement 1 of section 4.
package kb

import (
	"fmt"
	"sort"
	"strings"

	"blog/internal/parse"
	"blog/internal/term"
	"blog/internal/unify"
)

// ClauseID identifies a clause by its load order. The pseudo-clause ID
// Query (-1) stands for the query the user typed, which is the root of the
// search tree and the caller of its goals.
type ClauseID int

// Query is the caller ID used for arcs leaving the root query node.
const Query ClauseID = -1

// Arc is a weighted pointer of the figure-4 structure: the decision to
// resolve the Pos-th body goal of clause Caller using clause Callee.
// Pos is 0-based; for a query, Caller is kb.Query and Pos indexes the
// query's goals.
type Arc struct {
	Caller ClauseID
	Pos    int
	Callee ClauseID
}

// String renders an arc as caller.pos->callee for diagnostics.
func (a Arc) String() string {
	return fmt.Sprintf("%d.%d->%d", a.Caller, a.Pos, a.Callee)
}

// Clause is one stored Horn clause (a block in the paper's linked list).
type Clause struct {
	ID   ClauseID
	Head term.Term
	Body []term.Term
	// Pred is the predicate indicator of the head, e.g. "f/2".
	Pred string
	// Line is the source line, when parsed from text.
	Line int
}

// IsFact reports whether the clause has an empty body.
func (c *Clause) IsFact() bool { return len(c.Body) == 0 }

// String renders the clause in source syntax. A space precedes the final
// period when the text would otherwise end in a symbolic character (the
// terminator would merge into the preceding token on reparse).
func (c *Clause) String() string {
	var text string
	if c.IsFact() {
		text = c.Head.String()
	} else {
		parts := make([]string, len(c.Body))
		for i, g := range c.Body {
			parts[i] = g.String()
		}
		text = c.Head.String() + " :- " + strings.Join(parts, ", ")
	}
	if term.EndsSymbolic(text) {
		return text + " ."
	}
	return text + "."
}

// DB is the clause database. Loading is single-threaded; after loading,
// all methods used during search are read-only and safe for concurrent use
// by parallel workers.
type DB struct {
	clauses []*Clause
	// byPred maps a predicate indicator to its clauses in source order.
	byPred map[string][]*Clause
	// firstArg maps pred -> first-argument constant key -> clauses whose
	// head first argument is that constant. Clauses with a variable or
	// compound first argument appear in varFirst and match any key.
	firstArg map[string]map[string][]*Clause
	varFirst map[string][]*Clause
}

// New returns an empty database.
func New() *DB {
	return &DB{
		byPred:   make(map[string][]*Clause),
		firstArg: make(map[string]map[string][]*Clause),
		varFirst: make(map[string][]*Clause),
	}
}

// LoadString parses src and asserts all its clauses. Directive queries in
// the source are returned for the caller to run.
func LoadString(src string) (*DB, [][]term.Term, error) {
	prog, err := parse.Source(src)
	if err != nil {
		return nil, nil, err
	}
	db := New()
	for _, c := range prog.Clauses {
		db.assert(c.Head, c.Body, c.Line)
	}
	return db, prog.Queries, nil
}

// Assert appends a clause to the database and returns it.
func (db *DB) Assert(head term.Term, body []term.Term) *Clause {
	return db.assert(head, body, 0)
}

func (db *DB) assert(head term.Term, body []term.Term, line int) *Clause {
	pred, ok := term.Indicator(head)
	if !ok {
		panic(fmt.Sprintf("kb: clause head %s is not callable", head))
	}
	c := &Clause{ID: ClauseID(len(db.clauses)), Head: head, Body: body, Pred: pred, Line: line}
	db.clauses = append(db.clauses, c)
	db.byPred[pred] = append(db.byPred[pred], c)
	if key, keyed := firstArgKey(head); keyed {
		m := db.firstArg[pred]
		if m == nil {
			m = make(map[string][]*Clause)
			db.firstArg[pred] = m
		}
		m[key] = append(m[key], c)
	} else {
		db.varFirst[pred] = append(db.varFirst[pred], c)
	}
	return c
}

// firstArgKey returns an index key for the first head argument if it is an
// atom or integer. Compound first arguments are indexed by functor/arity.
func firstArgKey(head term.Term) (string, bool) {
	c, ok := head.(*term.Compound)
	if !ok || len(c.Args) == 0 {
		return "", false
	}
	switch a := c.Args[0].(type) {
	case term.Atom:
		return "a:" + string(a), true
	case term.Int:
		return "i:" + a.String(), true
	case *term.Compound:
		return fmt.Sprintf("c:%s/%d", a.Functor, len(a.Args)), true
	default: // variable: not keyed
		return "", false
	}
}

// Len returns the number of clauses.
func (db *DB) Len() int { return len(db.clauses) }

// Clause returns the clause with the given ID, or nil for kb.Query or an
// out-of-range ID.
func (db *DB) Clause(id ClauseID) *Clause {
	if id < 0 || int(id) >= len(db.clauses) {
		return nil
	}
	return db.clauses[id]
}

// Clauses returns all clauses in load order. The returned slice is shared;
// callers must not modify it.
func (db *DB) Clauses() []*Clause { return db.clauses }

// Preds returns the sorted list of predicate indicators present.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.byPred))
	for p := range db.byPred {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ClausesFor returns the clauses for a predicate indicator in source order.
func (db *DB) ClausesFor(pred string) []*Clause { return db.byPred[pred] }

// Candidates returns, in source order, the clauses whose heads may unify
// with the goal as resolved under env. The first-argument index prunes
// clauses whose head first argument is a different constant; the result is
// a superset of the truly unifiable clauses (unification still decides).
func (db *DB) Candidates(env *term.Env, goal term.Term) []*Clause {
	goal = env.Resolve(goal)
	pred, ok := term.Indicator(goal)
	if !ok {
		return nil
	}
	all := db.byPred[pred]
	if len(all) == 0 {
		return nil
	}
	gc, ok := goal.(*term.Compound)
	if !ok || len(gc.Args) == 0 {
		return all
	}
	key, keyed := callKey(env, gc.Args[0])
	if !keyed {
		return all
	}
	keyedClauses := db.firstArg[pred][key]
	varClauses := db.varFirst[pred]
	if len(varClauses) == 0 {
		return keyedClauses
	}
	if len(keyedClauses) == 0 {
		return varClauses
	}
	// Merge the two lists preserving source order (both are ID-sorted).
	out := make([]*Clause, 0, len(keyedClauses)+len(varClauses))
	i, j := 0, 0
	for i < len(keyedClauses) && j < len(varClauses) {
		if keyedClauses[i].ID < varClauses[j].ID {
			out = append(out, keyedClauses[i])
			i++
		} else {
			out = append(out, varClauses[j])
			j++
		}
	}
	out = append(out, keyedClauses[i:]...)
	out = append(out, varClauses[j:]...)
	return out
}

// callKey computes the index key of a call's first argument under env.
func callKey(env *term.Env, arg term.Term) (string, bool) {
	arg = env.Resolve(arg)
	switch a := arg.(type) {
	case term.Atom:
		return "a:" + string(a), true
	case term.Int:
		return "i:" + a.String(), true
	case *term.Compound:
		return fmt.Sprintf("c:%s/%d", a.Functor, len(a.Args)), true
	default:
		return "", false
	}
}

// Arcs enumerates every static arc of the database: for each clause body
// position (and optionally a query's goals via ArcsForGoals), the clauses
// that can resolve the goal at that position. This materializes the
// figure-4 pointer structure.
func (db *DB) Arcs() []Arc {
	var out []Arc
	for _, c := range db.clauses {
		for pos, g := range c.Body {
			for _, callee := range db.Candidates(nil, g) {
				out = append(out, Arc{Caller: c.ID, Pos: pos, Callee: callee.ID})
			}
		}
	}
	return out
}

// ArcsForGoals enumerates the arcs leaving a query with the given goals.
func (db *DB) ArcsForGoals(goals []term.Term) []Arc {
	var out []Arc
	for pos, g := range goals {
		for _, callee := range db.Candidates(nil, g) {
			out = append(out, Arc{Caller: Query, Pos: pos, Callee: callee.ID})
		}
	}
	return out
}

// ResolvableBy reports whether clause callee's head can unify with the
// goal at body position pos of clause caller (renamed apart). It validates
// arcs produced by Arcs.
func (db *DB) ResolvableBy(caller ClauseID, pos int, callee ClauseID) bool {
	c := db.Clause(caller)
	k := db.Clause(callee)
	if c == nil || k == nil || pos < 0 || pos >= len(c.Body) {
		return false
	}
	goal := term.NewRenamer().Rename(c.Body[pos])
	head := term.NewRenamer().Rename(k.Head)
	return unify.CanUnify(nil, goal, head)
}
