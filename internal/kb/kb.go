// Package kb implements the B-LOG database: a clause store with predicate
// and first-argument indexing, plus the weighted-pointer structure of
// figure 4 of the paper.
//
// Section 5 stores the database "as a linked list data structure, with
// blocks representing each Horn clause (rule or fact), and pointers to
// blocks representing other rules or facts in the database that can resolve
// the rule", with a weight kept just below each named pointer — an inverted
// file per rule. Here a block is a Clause, and a pointer is an Arc: the
// static coordinate (caller clause, body position, callee clause). Arcs are
// what weights attach to; because they are static program coordinates, a
// weight learned by one query is visible to every later query that travels
// the same pointer, which is requirement 1 of section 4.
//
// Clauses are compiled at load time: their terms become slot-numbered
// skeletons (term.Skeleton), so resolution activates a clause with one
// fresh-variable frame instead of a map-backed deep rename, and the
// predicate and first-argument indexes key on interned symbols (term.Sym)
// instead of formatted strings.
package kb

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"blog/internal/parse"
	"blog/internal/term"
	"blog/internal/unify"
)

// ClauseID identifies a clause by its load order. The pseudo-clause ID
// Query (-1) stands for the query the user typed, which is the root of the
// search tree and the caller of its goals.
type ClauseID int

// Query is the caller ID used for arcs leaving the root query node.
const Query ClauseID = -1

// Arc is a weighted pointer of the figure-4 structure: the decision to
// resolve the Pos-th body goal of clause Caller using clause Callee.
// Pos is 0-based; for a query, Caller is kb.Query and Pos indexes the
// query's goals.
type Arc struct {
	Caller ClauseID
	Pos    int
	Callee ClauseID
}

// String renders an arc as caller.pos->callee for diagnostics.
func (a Arc) String() string {
	return fmt.Sprintf("%d.%d->%d", a.Caller, a.Pos, a.Callee)
}

// Clause is one stored Horn clause (a block in the paper's linked list).
// Head and Body keep the loaded terms for rendering and static analysis;
// resolution uses the compiled skeleton via Activate.
type Clause struct {
	ID   ClauseID
	Head term.Term
	Body []term.Term
	// Pred is the predicate indicator of the head, e.g. "f/2".
	Pred string
	// Line is the source line, when parsed from text.
	Line int

	// Compiled form: head and body skeletons over one shared slot
	// numbering, plus the print names of the slots (in slot order).
	headSkel term.Skeleton
	bodySkel []term.Skeleton
	varNames []string
}

// IsFact reports whether the clause has an empty body.
func (c *Clause) IsFact() bool { return len(c.Body) == 0 }

// NumVars returns the number of variable slots in the compiled clause.
func (c *Clause) NumVars() int { return len(c.varNames) }

// Activate instantiates the clause for one resolution step: a fresh
// activation frame is allocated and the head and body are rebuilt by slot
// lookup, sharing all ground subterms. It replaces the per-resolution deep
// rename of the uncompiled representation.
func (c *Clause) Activate() (head term.Term, body []term.Term) {
	frame := term.NewFrame(c.varNames)
	head = c.headSkel.Instantiate(frame)
	if len(c.bodySkel) == 0 {
		return head, nil
	}
	body = make([]term.Term, len(c.bodySkel))
	for i := range c.bodySkel {
		body[i] = c.bodySkel[i].Instantiate(frame)
	}
	return head, body
}

// ActivateHead instantiates only the clause head, renamed apart. Fact
// joins use this; a ground head comes back shared with zero allocation.
func (c *Clause) ActivateHead() term.Term {
	if c.headSkel.IsGround() {
		return c.Head
	}
	return c.headSkel.Instantiate(term.NewFrame(c.varNames))
}

// HeadForUnify begins a two-phase activation: it instantiates the head for
// a resolution attempt, minting a frame only when the head has variables.
// If the head unifies, BodyAfter completes the activation with the same
// frame; if not, the body (often the bulk of the clause) was never built.
func (c *Clause) HeadForUnify() (term.Term, *term.Frame) {
	if c.headSkel.IsGround() {
		return c.Head, nil
	}
	f := term.NewFrame(c.varNames)
	return c.headSkel.Instantiate(f), f
}

// EnsureFrame completes a two-phase activation's frame: a nil frame from
// HeadForUnify (ground head) is minted here when the clause has variables
// elsewhere. Callers then instantiate body goals via InstantiateGoal.
func (c *Clause) EnsureFrame(f *term.Frame) *term.Frame {
	if f == nil && len(c.varNames) > 0 {
		f = term.NewFrame(c.varNames)
	}
	return f
}

// InstantiateGoal instantiates the body goal at pos against an activation
// frame, letting callers build their own goal records without an
// intermediate body slice.
func (c *Clause) InstantiateGoal(pos int, f *term.Frame) term.Term {
	return c.bodySkel[pos].Instantiate(f)
}

// ActivateGoal instantiates the body goal at pos, renamed apart.
func (c *Clause) ActivateGoal(pos int) term.Term {
	if c.bodySkel[pos].IsGround() {
		return c.Body[pos]
	}
	return c.bodySkel[pos].Instantiate(term.NewFrame(c.varNames))
}

// String renders the clause in source syntax. A space precedes the final
// period when the text would otherwise end in a symbolic character (the
// terminator would merge into the preceding token on reparse).
func (c *Clause) String() string {
	var text string
	if c.IsFact() {
		text = c.Head.String()
	} else {
		parts := make([]string, len(c.Body))
		for i, g := range c.Body {
			parts[i] = g.String()
		}
		text = c.Head.String() + " :- " + strings.Join(parts, ", ")
	}
	if term.EndsSymbolic(text) {
		return text + " ."
	}
	return text + "."
}

// predKey identifies a predicate by interned functor symbol and arity —
// the allocation-free analogue of the "f/2" indicator string.
type predKey struct {
	fn    term.Sym
	arity int
}

// argKey is the first-argument index key: the shape of a constant (atom,
// integer, or compound principal functor) as a comparable struct, so index
// probes never format strings.
type argKey struct {
	kind byte // 'a' atom, 'i' integer, 'c' compound
	sym  term.Sym
	num  int64 // integer value, or compound arity
}

// DB is the clause database. It is safe for concurrent use: queries read
// the clause store under mu's read lock while Assert mutates it under the
// write lock, so clauses may land while searches are in flight (the table
// layer's dirty-marking and epoch checks exist precisely to keep memoized
// answers sound under that interleaving). Individual clauses are immutable
// once asserted, so a slice snapshot taken under the lock stays valid
// after it is released. The tabled set is the one load-time-only structure:
// `:- table` directives are rejected by Assert, so it is never written
// concurrently with reads.
type DB struct {
	// mu guards the clause store (clauses, byPred, firstArg, varFirst) and
	// the assert-hook list.
	mu      sync.RWMutex
	clauses []*Clause
	// byPred maps a predicate key to its clauses in source order.
	byPred map[predKey][]*Clause
	// firstArg maps pred -> first-argument constant key -> clauses whose
	// head first argument is that constant. Clauses with a variable first
	// argument appear in varFirst and match any key.
	firstArg map[predKey]map[argKey][]*Clause
	varFirst map[predKey][]*Clause
	// tabled marks predicates declared `:- table name/arity` for answer
	// memoization (consumed by internal/table through IsTabled). The value
	// is the 1-based cost-argument position of a `min(N)` answer-subsumption
	// declaration, or 0 for plain variant tabling.
	tabled map[predKey]int

	// gen counts clause assertions. Compiled-form caches (internal/vm)
	// pin the generation they were built from and recompile when it
	// moves, which is how session-merged clauses reach the compiled path.
	gen atomic.Uint64
	// compiled holds the cached compiled program as an opaque value, so
	// kb does not import its compiler.
	compiled atomic.Value
	// journal holds the engine event journal (*obs.Journal) as an opaque
	// value for the same reason: kb sits below obs, and only internal/vm
	// reads it back to stamp recompile events.
	journal atomic.Value
	// hooks are the assert-notification callbacks (guarded by mu; nil slots
	// are unregistered entries). Each table space registers one so a clause
	// assert can dirty-mark its downstream answer tables; every live space
	// over a shared DB receives the notification.
	hooks []func(name term.Sym, arity int)
}

// AddAssertHook registers fn to be called after every clause assertion
// with the asserted head's predicate, and returns a function that
// unregisters it. Hooks run while the assertion still holds the database
// write lock, so a hook's effects (dirty-marking dependent tables) become
// visible atomically with the clause change: a reader that observes the
// new clause store is guaranteed to also observe the hook's marks. Hooks
// must therefore not call back into locking DB methods.
func (db *DB) AddAssertHook(fn func(name term.Sym, arity int)) (remove func()) {
	db.mu.Lock()
	db.hooks = append(db.hooks, fn)
	i := len(db.hooks) - 1
	db.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			db.mu.Lock()
			db.hooks[i] = nil
			// Trim trailing dead slots so churning short-lived registrants
			// (per-test table spaces over a shared DB) do not grow the list
			// without bound.
			for len(db.hooks) > 0 && db.hooks[len(db.hooks)-1] == nil {
				db.hooks = db.hooks[:len(db.hooks)-1]
			}
			db.mu.Unlock()
		})
	}
}

// Generation returns the clause-assertion generation. It changes exactly
// when Assert (or load) adds a clause.
func (db *DB) Generation() uint64 { return db.gen.Load() }

// CompiledCache returns the cached compiled program, or nil. The cache is
// owned by internal/vm; kb only stores it so the compiled form lives and
// dies with the database.
func (db *DB) CompiledCache() any { return db.compiled.Load() }

// SetCompiledCache stores the compiled program for this database.
func (db *DB) SetCompiledCache(p any) { db.compiled.Store(p) }

// EventJournal returns the attached engine event journal (a *obs.Journal
// stored opaquely), or nil.
func (db *DB) EventJournal() any { return db.journal.Load() }

// SetEventJournal attaches the engine event journal. The value must be
// non-nil (atomic.Value rejects nil stores).
func (db *DB) SetEventJournal(j any) { db.journal.Store(j) }

// New returns an empty database.
func New() *DB {
	return &DB{
		byPred:   make(map[predKey][]*Clause),
		firstArg: make(map[predKey]map[argKey][]*Clause),
		varFirst: make(map[predKey][]*Clause),
		tabled:   make(map[predKey]int),
	}
}

// LoadString parses src and asserts all its clauses. Directive queries in
// the source are returned for the caller to run. `:- table name/arity`
// directives mark their predicates for tabled evaluation.
func LoadString(src string) (*DB, [][]term.Term, error) {
	prog, err := parse.Source(src)
	if err != nil {
		return nil, nil, err
	}
	db := New()
	for _, c := range prog.Clauses {
		db.assert(c.Head, c.Body, c.Line)
	}
	declared := make(map[string]parse.TabledDecl)
	for _, d := range prog.Tabled {
		if reservedForTabling(d.Name) {
			return nil, nil, fmt.Errorf("kb: line %d: cannot table %s/%d: %q is an evaluable builtin, which the engine dispatches before tabling", d.Line, d.Name, d.Arity, d.Name)
		}
		// Idempotent redeclaration is fine; a conflicting mode is not —
		// last-wins would silently flip a predicate between plain and
		// cost-minimal evaluation.
		ind := d.Name + "/" + strconv.Itoa(d.Arity)
		if prev, ok := declared[ind]; ok && prev.Min != d.Min {
			return nil, nil, fmt.Errorf("kb: line %d: conflicting table directives for %s: min(%d) on line %d vs min(%d) here (0 = plain tabling)", d.Line, ind, prev.Min, prev.Line, d.Min)
		}
		declared[ind] = d
		if d.Min == 0 {
			db.MarkTabled(d.Name, d.Arity)
			continue
		}
		if err := db.MarkTabledMin(d.Name, d.Arity, d.Min); err != nil {
			return nil, nil, fmt.Errorf("kb: line %d: %w", d.Line, err)
		}
	}
	return db, prog.Queries, nil
}

// reservedForTabling lists predicate names a `:- table` directive must
// reject: the engine resolves negation and the evaluable builtins before
// consulting the answer tables, so a declaration naming one would load as
// a silent no-op. The list mirrors the engine's builtin table by name
// (like internal/ref's copy, kb deliberately does not import the engine).
func reservedForTabling(name string) bool {
	switch name {
	case "true", "fail", "false", "!", "=", "\\=", "==", "\\==", "is",
		"=:=", "=\\=", "<", ">", "=<", ">=", "@<", "@>", "@=<", "@>=",
		"between", "integer", "atom", "atomic", "compound", "var",
		"nonvar", "ground", "functor", "arg", "=..", "length",
		"copy_term", "succ", "\\+":
		return true
	}
	return false
}

// MarkTabled declares a predicate tabled, as the `:- table name/arity`
// directive does. Marking is a load-time operation; after loading the
// tabled set, like the clause store, is read-only.
func (db *DB) MarkTabled(name string, arity int) {
	db.tabled[predKey{term.Intern(name), arity}] = 0
}

// MarkTabledMin declares a predicate tabled with answer subsumption, as
// the `:- table name/arity min(pos)` directive does: pos (1-based) is the
// cost argument, and the answer table keeps only the least-cost answer per
// binding of the remaining arguments. pos must name a real argument slot.
func (db *DB) MarkTabledMin(name string, arity, pos int) error {
	if pos < 1 || pos > arity {
		return fmt.Errorf("cannot table %s/%d min(%d): the cost position must name an argument (1..%d)", name, arity, pos, arity)
	}
	db.tabled[predKey{term.Intern(name), arity}] = pos
	return nil
}

// IsTabled reports whether the predicate was declared tabled.
func (db *DB) IsTabled(fn term.Sym, arity int) bool {
	_, ok := db.tabled[predKey{fn, arity}]
	return ok
}

// TabledMin returns the 1-based cost-argument position of a predicate
// declared `:- table name/arity min(pos)`, or 0 for plain variant tabling
// (and for predicates not tabled at all).
func (db *DB) TabledMin(fn term.Sym, arity int) int {
	return db.tabled[predKey{fn, arity}]
}

// HasTabled reports whether any predicate is declared tabled, so callers
// can skip the tabling hook entirely for programs that declare none.
func (db *DB) HasTabled() bool { return len(db.tabled) > 0 }

// TabledPreds returns the sorted indicators of the tabled predicates.
// Subsumption-tabled predicates carry their declared mode, e.g.
// "shortest/3 min(3)".
func (db *DB) TabledPreds() []string {
	out := make([]string, 0, len(db.tabled))
	for k, min := range db.tabled {
		ind := k.fn.Name() + "/" + strconv.Itoa(k.arity)
		if min > 0 {
			ind += " min(" + strconv.Itoa(min) + ")"
		}
		out = append(out, ind)
	}
	sort.Strings(out)
	return out
}

// Assert appends a clause to the database and returns it.
func (db *DB) Assert(head term.Term, body []term.Term) *Clause {
	return db.assert(head, body, 0)
}

func (db *DB) assert(head term.Term, body []term.Term, line int) *Clause {
	pred, ok := term.Indicator(head)
	if !ok {
		panic(fmt.Sprintf("kb: clause head %s is not callable", head))
	}
	fn, arity, _ := term.PredOf(head)
	key := predKey{fn, arity}
	c := &Clause{Head: head, Body: body, Pred: pred, Line: line}
	// Compile once (outside the lock — compilation touches only the new
	// clause): head and body share one slot numbering.
	terms := make([]term.Term, 0, len(body)+1)
	terms = append(terms, head)
	terms = append(terms, body...)
	sks, names := term.CompileTerms(terms)
	c.headSkel, c.bodySkel, c.varNames = sks[0], sks[1:], names

	db.mu.Lock()
	c.ID = ClauseID(len(db.clauses))
	db.clauses = append(db.clauses, c)
	db.byPred[key] = append(db.byPred[key], c)
	if ak, keyed := firstArgKey(head); keyed {
		m := db.firstArg[key]
		if m == nil {
			m = make(map[argKey][]*Clause)
			db.firstArg[key] = m
		}
		m[ak] = append(m[ak], c)
	} else {
		db.varFirst[key] = append(db.varFirst[key], c)
	}
	db.gen.Add(1)
	// Hooks fire inside the critical section so their effects (table dirty
	// marks) publish atomically with the clause change: any reader that can
	// see the new clause — in particular a snapshot writer fingerprinting
	// this predicate — is guaranteed to also see the marks.
	for _, hook := range db.hooks {
		if hook != nil {
			hook(fn, arity)
		}
	}
	db.mu.Unlock()
	return c
}

// PredFingerprint hashes a predicate's clause list (each clause's source
// rendering, in load order) to a 64-bit value. Equal fingerprints mean
// the predicate's definition is textually unchanged — the per-predicate
// generation that a persisted table snapshot validates against at load,
// so one changed predicate re-derives its downstream tables instead of
// discarding the whole snapshot.
func (db *DB) PredFingerprint(fn term.Sym, arity int) uint64 {
	db.mu.RLock()
	clauses := db.byPred[predKey{fn, arity}]
	db.mu.RUnlock()
	h := fnv.New64a()
	for _, c := range clauses {
		io.WriteString(h, c.String())
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// firstArgKey returns an index key for the first head argument if it is an
// atom or integer. Compound first arguments are indexed by functor/arity.
func firstArgKey(head term.Term) (argKey, bool) {
	c, ok := head.(*term.Compound)
	if !ok || len(c.Args) == 0 {
		return argKey{}, false
	}
	return constKey(c.Args[0])
}

// constKey computes the index key of a constant term; variables (and any
// other unindexable term) report false.
func constKey(arg term.Term) (argKey, bool) {
	switch a := arg.(type) {
	case term.Atom:
		return argKey{kind: 'a', sym: a.Sym()}, true
	case term.Int:
		return argKey{kind: 'i', num: int64(a)}, true
	case *term.Compound:
		return argKey{kind: 'c', sym: a.Functor, num: int64(len(a.Args))}, true
	default: // variable: not keyed
		return argKey{}, false
	}
}

// Len returns the number of clauses.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.clauses)
}

// Clause returns the clause with the given ID, or nil for kb.Query or an
// out-of-range ID.
func (db *DB) Clause(id ClauseID) *Clause {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.clauseLocked(id)
}

func (db *DB) clauseLocked(id ClauseID) *Clause {
	if id < 0 || int(id) >= len(db.clauses) {
		return nil
	}
	return db.clauses[id]
}

// Clauses returns all clauses in load order. The returned slice is a
// point-in-time snapshot (clauses asserted later extend the store, never
// this view); callers must not modify it.
func (db *DB) Clauses() []*Clause {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.clauses
}

// Preds returns the sorted list of predicate indicators present.
func (db *DB) Preds() []string {
	db.mu.RLock()
	out := make([]string, 0, len(db.byPred))
	for k := range db.byPred {
		out = append(out, k.fn.Name()+"/"+strconv.Itoa(k.arity))
	}
	db.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ClausesFor returns the clauses for a predicate indicator ("name/arity",
// as produced by term.Indicator or Preds) in source order.
func (db *DB) ClausesFor(pred string) []*Clause {
	i := strings.LastIndexByte(pred, '/')
	if i < 0 {
		return nil
	}
	arity, err := strconv.Atoi(pred[i+1:])
	if err != nil {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.byPred[predKey{term.Intern(pred[:i]), arity}]
}

// Candidates returns, in source order, the clauses whose heads may unify
// with the goal as resolved under env. The first-argument index prunes
// clauses whose head first argument is a different constant; the result is
// a superset of the truly unifiable clauses (unification still decides).
// The probe is allocation-free: predicate and argument keys are interned
// symbols, not formatted strings.
func (db *DB) Candidates(env *term.Env, goal term.Term) []*Clause {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.candidatesLocked(env, goal)
}

// candidatesLocked is Candidates' body; the caller holds mu (read or
// write). Split out so whole-database walks (Arcs, LinkedListText) probe
// under one lock acquisition instead of recursively read-locking, which
// could deadlock against a waiting writer.
func (db *DB) candidatesLocked(env *term.Env, goal term.Term) []*Clause {
	goal = env.Resolve(goal)
	fn, arity, ok := term.PredOf(goal)
	if !ok {
		return nil
	}
	key := predKey{fn, arity}
	all := db.byPred[key]
	if len(all) == 0 {
		return nil
	}
	gc, ok := goal.(*term.Compound)
	if !ok || len(gc.Args) == 0 {
		return all
	}
	ak, keyed := constKey(env.Resolve(gc.Args[0]))
	if !keyed {
		return all
	}
	keyedClauses := db.firstArg[key][ak]
	varClauses := db.varFirst[key]
	if len(varClauses) == 0 {
		return keyedClauses
	}
	if len(keyedClauses) == 0 {
		return varClauses
	}
	// Merge the two lists preserving source order (both are ID-sorted).
	out := make([]*Clause, 0, len(keyedClauses)+len(varClauses))
	i, j := 0, 0
	for i < len(keyedClauses) && j < len(varClauses) {
		if keyedClauses[i].ID < varClauses[j].ID {
			out = append(out, keyedClauses[i])
			i++
		} else {
			out = append(out, varClauses[j])
			j++
		}
	}
	out = append(out, keyedClauses[i:]...)
	out = append(out, varClauses[j:]...)
	return out
}

// Arcs enumerates every static arc of the database: for each clause body
// position (and optionally a query's goals via ArcsForGoals), the clauses
// that can resolve the goal at that position. This materializes the
// figure-4 pointer structure.
func (db *DB) Arcs() []Arc {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Arc
	for _, c := range db.clauses {
		for pos, g := range c.Body {
			for _, callee := range db.candidatesLocked(nil, g) {
				out = append(out, Arc{Caller: c.ID, Pos: pos, Callee: callee.ID})
			}
		}
	}
	return out
}

// ArcsForGoals enumerates the arcs leaving a query with the given goals.
func (db *DB) ArcsForGoals(goals []term.Term) []Arc {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Arc
	for pos, g := range goals {
		for _, callee := range db.candidatesLocked(nil, g) {
			out = append(out, Arc{Caller: Query, Pos: pos, Callee: callee.ID})
		}
	}
	return out
}

// ResolvableBy reports whether clause callee's head can unify with the
// goal at body position pos of clause caller (renamed apart). It validates
// arcs produced by Arcs.
func (db *DB) ResolvableBy(caller ClauseID, pos int, callee ClauseID) bool {
	db.mu.RLock()
	c := db.clauseLocked(caller)
	k := db.clauseLocked(callee)
	db.mu.RUnlock()
	if c == nil || k == nil || pos < 0 || pos >= len(c.Body) {
		return false
	}
	return unify.CanUnify(nil, c.ActivateGoal(pos), k.ActivateHead())
}
