package kb

import (
	"fmt"
	"sort"
	"strings"

	"blog/internal/term"
)

// GraphText renders the database in the network style of figure 2 of the
// paper: binary ground facts become `(x) --rel--> (y)` arcs, other facts
// are listed as-is, and rules are shown as graph equivalences.
func (db *DB) GraphText() string {
	var rules, facts []string
	for _, c := range db.Clauses() {
		if c.IsFact() {
			if s, ok := binaryArc(c.Head); ok {
				facts = append(facts, s)
			} else {
				facts = append(facts, c.Head.String())
			}
			continue
		}
		lhs, lok := binaryArc(c.Head)
		var rhs []string
		allBinary := lok
		for _, g := range c.Body {
			s, ok := binaryArc(g)
			if !ok {
				allBinary = false
				break
			}
			rhs = append(rhs, s)
		}
		if allBinary {
			rules = append(rules, lhs+"  :-  "+strings.Join(rhs, "  "))
		} else {
			rules = append(rules, c.String())
		}
	}
	var b strings.Builder
	b.WriteString("RULES (graph equivalences)\n")
	for _, r := range rules {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	b.WriteString("FACTS (network)\n")
	for _, f := range facts {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

func binaryArc(t term.Term) (string, bool) {
	c, ok := t.(*term.Compound)
	if !ok || len(c.Args) != 2 {
		return "", false
	}
	return fmt.Sprintf("(%s) --%s--> (%s)", c.Args[0], c.Functor, c.Args[1]), true
}

// LinkedListText renders the figure-4 linked-list structure: one block per
// clause, each body goal followed by its named, weighted pointers to the
// clauses that can resolve it. weightOf supplies the number printed under
// each pointer (the caller chooses the weight store; kb itself stores no
// weights, mirroring the paper's separation of structure and bounds).
func (db *DB) LinkedListText(weightOf func(Arc) float64) string {
	var b strings.Builder
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, c := range db.clauses {
		fmt.Fprintf(&b, "block %d: %s\n", c.ID, c.String())
		for pos, g := range c.Body {
			name, _ := term.Indicator(g)
			cands := db.candidatesLocked(nil, g)
			if len(cands) == 0 {
				fmt.Fprintf(&b, "  goal %d %-12s (no resolvers)\n", pos, name)
				continue
			}
			for _, callee := range cands {
				a := Arc{Caller: c.ID, Pos: pos, Callee: callee.ID}
				fmt.Fprintf(&b, "  goal %d %-12s -> block %-3d  weight %.3g\n",
					pos, name, callee.ID, weightOf(a))
			}
		}
	}
	return b.String()
}

// GraphDOT renders the fact network of figure 2 in Graphviz DOT syntax:
// ground binary facts become labelled edges; other facts become isolated
// labelled nodes.
func (db *DB) GraphDOT() string {
	var b strings.Builder
	b.WriteString("digraph blog {\n  rankdir=LR;\n  node [shape=ellipse];\n")
	quote := func(s string) string {
		return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
	}
	seen := map[string]bool{}
	node := func(name string) {
		if !seen[name] {
			seen[name] = true
			fmt.Fprintf(&b, "  %s;\n", quote(name))
		}
	}
	for _, c := range db.Clauses() {
		if !c.IsFact() {
			continue
		}
		if f, ok := c.Head.(*term.Compound); ok && len(f.Args) == 2 &&
			term.Ground(nil, c.Head) {
			from, to := f.Args[0].String(), f.Args[1].String()
			node(from)
			node(to)
			fmt.Fprintf(&b, "  %s -> %s [label=%s];\n", quote(from), quote(to), quote(f.FunctorName()))
			continue
		}
		node(c.Head.String())
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes the database for logging and the README quickstart.
type Stats struct {
	Clauses int
	Facts   int
	Rules   int
	Preds   int
	Arcs    int
}

// Stats computes summary statistics.
func (db *DB) ComputeStats() Stats {
	db.mu.RLock()
	s := Stats{Clauses: len(db.clauses), Preds: len(db.byPred)}
	for _, c := range db.clauses {
		if c.IsFact() {
			s.Facts++
		} else {
			s.Rules++
		}
	}
	db.mu.RUnlock()
	s.Arcs = len(db.Arcs())
	return s
}

// SortArcs orders arcs by (Caller, Pos, Callee) for deterministic output.
func SortArcs(arcs []Arc) {
	sort.Slice(arcs, func(i, j int) bool {
		a, b := arcs[i], arcs[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Callee < b.Callee
	})
}
