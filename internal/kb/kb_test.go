package kb

import (
	"fmt"
	"strings"
	"testing"

	"blog/internal/parse"
	"blog/internal/term"
)

const fig1 = `
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).
`

const sec5 = `
a :- b, c, d.
b :- e.
b :- f.
c :- g.
d :- h.
e. f. g. h.
`

func load(t testing.TB, src string) *DB {
	t.Helper()
	db, _, err := LoadString(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return db
}

func TestLoadFig1(t *testing.T) {
	db := load(t, fig1)
	if db.Len() != 12 {
		t.Fatalf("Len = %d, want 12", db.Len())
	}
	s := db.ComputeStats()
	if s.Facts != 10 || s.Rules != 2 || s.Preds != 3 {
		t.Errorf("stats = %+v", s)
	}
	preds := db.Preds()
	want := []string{"f/2", "gf/2", "m/2"}
	for i, p := range want {
		if preds[i] != p {
			t.Errorf("preds = %v, want %v", preds, want)
			break
		}
	}
}

func TestClauseByID(t *testing.T) {
	db := load(t, fig1)
	c := db.Clause(0)
	if c == nil || c.Pred != "gf/2" {
		t.Errorf("Clause(0) = %v", c)
	}
	if db.Clause(Query) != nil {
		t.Error("Clause(Query) should be nil")
	}
	if db.Clause(999) != nil {
		t.Error("out-of-range ID should be nil")
	}
}

func TestClauseString(t *testing.T) {
	db := load(t, sec5)
	if got := db.Clause(0).String(); got != "a :- b, c, d." {
		t.Errorf("rule prints %q", got)
	}
	if got := db.Clause(5).String(); got != "e." {
		t.Errorf("fact prints %q", got)
	}
}

func TestCandidatesByPredicate(t *testing.T) {
	db := load(t, fig1)
	g, _ := parse.OneTerm("gf(A,B)")
	cands := db.Candidates(nil, g)
	if len(cands) != 2 {
		t.Fatalf("gf/2 candidates = %d, want 2", len(cands))
	}
	if cands[0].ID != 0 || cands[1].ID != 1 {
		t.Error("candidates must come in source order")
	}
}

func TestCandidatesFirstArgIndex(t *testing.T) {
	db := load(t, fig1)
	g, _ := parse.OneTerm("f(sam,Y)")
	cands := db.Candidates(nil, g)
	if len(cands) != 1 || cands[0].Head.String() != "f(sam,larry)" {
		t.Fatalf("f(sam,Y) candidates = %v", cands)
	}
	// Open first argument returns all f/2 clauses.
	g2, _ := parse.OneTerm("f(X,Y)")
	if got := len(db.Candidates(nil, g2)); got != 6 {
		t.Errorf("f(X,Y) candidates = %d, want 6", got)
	}
	// Unknown constant: no candidates.
	g3, _ := parse.OneTerm("f(nobody,Y)")
	if got := len(db.Candidates(nil, g3)); got != 0 {
		t.Errorf("f(nobody,Y) candidates = %d, want 0", got)
	}
}

func TestCandidatesIndexUsesEnv(t *testing.T) {
	db := load(t, fig1)
	x := term.NewVar("X")
	goal := term.NewCompound("f", x, term.NewVar("Y"))
	env := (*term.Env)(nil).Bind(x, term.NewAtom("larry"))
	cands := db.Candidates(env, goal)
	if len(cands) != 2 {
		t.Fatalf("f(larry,Y) under env: %d candidates, want 2", len(cands))
	}
}

func TestCandidatesMergesVarFirstClauses(t *testing.T) {
	db := load(t, `
p(a, 1).
p(X, 2).
p(a, 3).
p(b, 4).
`)
	g, _ := parse.OneTerm("p(a,N)")
	cands := db.Candidates(nil, g)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3 (two keyed + one var-first)", len(cands))
	}
	// Source order must be preserved across the merge.
	if !(cands[0].ID < cands[1].ID && cands[1].ID < cands[2].ID) {
		t.Errorf("candidates out of order: %v %v %v", cands[0].ID, cands[1].ID, cands[2].ID)
	}
}

func TestCandidatesVarOnlyPredicate(t *testing.T) {
	db := load(t, "q(X) :- p(X).\np(a).")
	g, _ := parse.OneTerm("q(a)")
	if got := len(db.Candidates(nil, g)); got != 1 {
		t.Errorf("q(a) candidates = %d, want 1", got)
	}
}

func TestCandidatesNonCallable(t *testing.T) {
	db := load(t, "p(a).")
	if got := db.Candidates(nil, term.NewVar("X")); got != nil {
		t.Errorf("variable goal should have no candidates, got %v", got)
	}
	if got := db.Candidates(nil, term.Int(3)); got != nil {
		t.Errorf("integer goal should have no candidates, got %v", got)
	}
}

func TestCandidatesCompoundFirstArg(t *testing.T) {
	db := load(t, "p(s(a), one).\np(t(a), two).\np(s(b), three).")
	g, _ := parse.OneTerm("p(s(Z), W)")
	cands := db.Candidates(nil, g)
	if len(cands) != 2 {
		t.Errorf("p(s(_),_) candidates = %d, want 2 (indexed by functor)", len(cands))
	}
}

func TestArcsSec5(t *testing.T) {
	db := load(t, sec5)
	arcs := db.Arcs()
	// a:-b,c,d: b has 2 resolvers, c 1, d 1 = 4 arcs.
	// b:-e, b:-f, c:-g, d:-h: 1 each = 4 arcs. Total 8.
	if len(arcs) != 8 {
		t.Fatalf("got %d arcs, want 8", len(arcs))
	}
	SortArcs(arcs)
	first := arcs[0]
	if first.Caller != 0 || first.Pos != 0 {
		t.Errorf("first arc = %v", first)
	}
	// Every arc must be validated by actual unification.
	for _, a := range arcs {
		if !db.ResolvableBy(a.Caller, a.Pos, a.Callee) {
			t.Errorf("arc %v not resolvable", a)
		}
	}
}

func TestArcsForGoals(t *testing.T) {
	db := load(t, fig1)
	goals, _ := parse.Query("gf(sam,G)")
	arcs := db.ArcsForGoals(goals)
	if len(arcs) != 2 {
		t.Fatalf("query arcs = %d, want 2", len(arcs))
	}
	for _, a := range arcs {
		if a.Caller != Query || a.Pos != 0 {
			t.Errorf("arc = %v", a)
		}
	}
}

func TestResolvableByBounds(t *testing.T) {
	db := load(t, sec5)
	if db.ResolvableBy(Query, 0, 0) {
		t.Error("query caller has no stored body")
	}
	if db.ResolvableBy(0, 99, 1) {
		t.Error("out-of-range pos")
	}
	if db.ResolvableBy(0, 0, 999) {
		t.Error("out-of-range callee")
	}
}

func TestGraphText(t *testing.T) {
	db := load(t, fig1)
	g := db.GraphText()
	for _, want := range []string{
		"(curt) --f--> (elain)",
		"(peg) --m--> (doug)",
		"(X) --gf--> (Z)  :-  (X) --f--> (Y)  (Y) --f--> (Z)",
		"RULES", "FACTS",
	} {
		if !strings.Contains(g, want) {
			t.Errorf("GraphText missing %q\n%s", want, g)
		}
	}
}

func TestGraphDOT(t *testing.T) {
	db := load(t, fig1)
	dot := db.GraphDOT()
	for _, want := range []string{
		"digraph blog {",
		`"curt" -> "elain" [label="f"];`,
		`"peg" -> "doug" [label="m"];`,
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Non-binary facts appear as isolated nodes without crashing.
	db2 := load(t, "solo(a).\ntriple(a,b,c).")
	dot2 := db2.GraphDOT()
	if !strings.Contains(dot2, `"solo(a)"`) || !strings.Contains(dot2, `"triple(a,b,c)"`) {
		t.Errorf("non-binary facts missing:\n%s", dot2)
	}
}

func TestLinkedListText(t *testing.T) {
	db := load(t, sec5)
	txt := db.LinkedListText(func(a Arc) float64 { return float64(a.Callee) })
	for _, want := range []string{
		"block 0: a :- b, c, d.",
		"goal 0 b/0",
		"-> block 1",
		"-> block 2",
		"block 5: e.",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("LinkedListText missing %q\n%s", want, txt)
		}
	}
}

func TestAssertPanicsOnNonCallable(t *testing.T) {
	db := New()
	defer func() {
		if recover() == nil {
			t.Error("Assert with integer head should panic")
		}
	}()
	db.Assert(term.Int(1), nil)
}

func TestClauseActivation(t *testing.T) {
	db, _, err := LoadString("p(X,Y) :- q(X,Z), r(Z,Y).\nq(a,b).\n")
	if err != nil {
		t.Fatal(err)
	}
	rule := db.Clause(0)
	if rule.NumVars() != 3 {
		t.Fatalf("rule has %d slots, want 3 (X,Y,Z)", rule.NumVars())
	}
	h1, b1 := rule.Activate()
	h2, b2 := rule.Activate()
	// Structure preserved, variables renamed apart across activations.
	if h1.String() != "p(X,Y)" || len(b1) != 2 {
		t.Fatalf("activation produced %s / %v", h1, b1)
	}
	x1 := h1.(*term.Compound).Args[0].(*term.Var)
	x2 := h2.(*term.Compound).Args[0].(*term.Var)
	if x1 == x2 {
		t.Error("two activations must not share variables")
	}
	// Shared variables map to the same fresh var within one activation.
	z1 := b1[0].(*term.Compound).Args[1].(*term.Var)
	z1b := b1[1].(*term.Compound).Args[0].(*term.Var)
	if z1 != z1b {
		t.Error("Z must be the same fresh variable in both body goals")
	}
	if x2 == z1 || b2[0].(*term.Compound).Args[1].(*term.Var) == z1 {
		t.Error("activations leaked variables into each other")
	}
	// Ground fact heads activate as the stored term itself.
	fact := db.Clause(1)
	if fact.ActivateHead() != fact.Head {
		t.Error("ground fact head must be shared, not copied")
	}
	// Two-phase activation defers the body until the head unified.
	head, frame := rule.HeadForUnify()
	if head == nil || frame == nil {
		t.Fatal("rule head activation needs a frame")
	}
	frame = rule.EnsureFrame(frame)
	g0 := rule.InstantiateGoal(0, frame)
	if g0.(*term.Compound).Args[0] != head.(*term.Compound).Args[0] {
		t.Error("body goal must reuse the head's activation frame")
	}
}

func BenchmarkCandidatesIndexed(b *testing.B) {
	db := load(b, fig1)
	g, _ := parse.OneTerm("f(larry,Y)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := db.Candidates(nil, g); len(got) != 2 {
			b.Fatal("wrong candidates")
		}
	}
}

func TestTableDirectiveRejectsBuiltins(t *testing.T) {
	for _, src := range []string{
		":- table is/2.\nf(a).\n",
		":- table '\\\\+'/1.\nf(a).\n",
		":- table '='/2.\nf(a).\n",
	} {
		if _, _, err := LoadString(src); err == nil {
			t.Errorf("LoadString(%q) loaded; want builtin-tabling rejection", src)
		}
	}
	// Ordinary declarations still load.
	db, _, err := LoadString(":- table path/2.\npath(X,Y) :- edge(X,Y).\nedge(a,b).\n")
	if err != nil {
		t.Fatal(err)
	}
	if !db.HasTabled() {
		t.Fatal("HasTabled = false after a table directive")
	}
}

func TestTableDirectiveMinMode(t *testing.T) {
	db, _, err := LoadString(":- table shortest/3 min(3), path/2.\nshortest(X,Y,C) :- edge(X,Y,C).\npath(X,Y) :- edge(X,Y,_).\nedge(a,b,1).\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := db.TabledMin(term.Intern("shortest"), 3); got != 3 {
		t.Errorf("TabledMin(shortest/3) = %d, want 3", got)
	}
	if got := db.TabledMin(term.Intern("path"), 2); got != 0 {
		t.Errorf("TabledMin(path/2) = %d, want 0 (plain tabling)", got)
	}
	if got := db.TabledMin(term.Intern("edge"), 3); got != 0 {
		t.Errorf("TabledMin(edge/3) = %d, want 0 (not tabled)", got)
	}
	if !db.IsTabled(term.Intern("shortest"), 3) {
		t.Error("IsTabled(shortest/3) = false, want true")
	}
	want := []string{"path/2", "shortest/3 min(3)"}
	if got := db.TabledPreds(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("TabledPreds = %v, want %v", got, want)
	}

	// The cost position must name a real argument slot.
	for _, src := range []string{
		":- table shortest/3 min(4).\nf(a).\n",
		":- table flag/0 min(1).\nf(a).\n",
	} {
		if _, _, err := LoadString(src); err == nil {
			t.Errorf("LoadString(%q) loaded; want out-of-range min rejection", src)
		}
	}

	// Conflicting redeclarations must be rejected — last-wins would
	// silently flip the predicate between plain and cost-minimal
	// evaluation. Idempotent repeats stay legal.
	for _, src := range []string{
		":- table shortest/3 min(3).\n:- table shortest/3.\nf(a).\n",
		":- table shortest/3.\n:- table shortest/3 min(3).\nf(a).\n",
		":- table shortest/3 min(3), shortest/3 min(2).\nf(a).\n",
	} {
		if _, _, err := LoadString(src); err == nil {
			t.Errorf("LoadString(%q) loaded; want conflicting-mode rejection", src)
		}
	}
	if _, _, err := LoadString(":- table path/2.\n:- table path/2.\npath(a,b).\n"); err != nil {
		t.Errorf("idempotent redeclaration rejected: %v", err)
	}
}
