// Package engine implements the resolution core shared by every B-LOG
// search strategy: OR-tree nodes (the paper's "chains"), node expansion by
// clause resolution, and the evaluable builtins.
//
// AND-conjunction is handled sequentially inside each node, exactly as the
// paper's section 3 model prescribes ("we consider AND-trees now only in a
// sequential way, in very much the same way Prolog does"): a node carries
// the whole remaining goal list and one expansion step resolves only its
// first goal. Every fan-out under a node is therefore an OR-alternative,
// and each root-to-leaf chain is either a solution or a failure.
package engine

import (
	"context"
	"errors"
	"fmt"

	"blog/internal/kb"
	"blog/internal/obs"
	"blog/internal/term"
	"blog/internal/unify"
	"blog/internal/vm"
	"blog/internal/weights"
)

// GoalEntry is a pending goal plus the static coordinate it came from,
// which names the arcs (weighted pointers) leaving it.
type GoalEntry struct {
	Goal   term.Term
	Caller kb.ClauseID // clause whose body produced this goal; kb.Query for query goals
	Pos    int         // body position within Caller
}

// GoalStack is a persistent (immutable) list of pending goals. Sibling
// OR-branches share tails, so pushing a clause body allocates only as many
// nodes as the body has goals.
type GoalStack struct {
	entry GoalEntry
	tail  *GoalStack
	size  int
}

// PushGoals prepends entries (in order) onto s and returns the new stack.
func PushGoals(s *GoalStack, entries []GoalEntry) *GoalStack {
	for i := len(entries) - 1; i >= 0; i-- {
		sz := 1
		if s != nil {
			sz = s.size + 1
		}
		s = &GoalStack{entry: entries[i], tail: s, size: sz}
	}
	return s
}

// Top returns the first pending goal; ok is false for the empty stack.
func (s *GoalStack) Top() (GoalEntry, bool) {
	if s == nil {
		return GoalEntry{}, false
	}
	return s.entry, true
}

// Pop returns the stack without its first goal.
func (s *GoalStack) Pop() *GoalStack {
	if s == nil {
		return nil
	}
	return s.tail
}

// Len returns the number of pending goals.
func (s *GoalStack) Len() int {
	if s == nil {
		return 0
	}
	return s.size
}

// ArcList is a persistent list of the arcs chosen along a chain, stored
// leaf-first so extension is O(1); Slice reverses into root-first order
// for the weight update rules.
type ArcList struct {
	arc    kb.Arc
	parent *ArcList
	size   int
}

// Extend appends an arc at the leaf end.
func (l *ArcList) Extend(a kb.Arc) *ArcList {
	sz := 1
	if l != nil {
		sz = l.size + 1
	}
	return &ArcList{arc: a, parent: l, size: sz}
}

// Len returns the chain length in arcs.
func (l *ArcList) Len() int {
	if l == nil {
		return 0
	}
	return l.size
}

// Slice materializes the chain root-first.
func (l *ArcList) Slice() []kb.Arc {
	out := make([]kb.Arc, l.Len())
	for i, c := l.Len()-1, l; c != nil; i, c = i-1, c.parent {
		out[i] = c.arc
	}
	return out
}

// Last returns the leaf-most arc of the chain.
func (l *ArcList) Last() (kb.Arc, bool) {
	if l == nil {
		return kb.Arc{}, false
	}
	return l.arc, true
}

// Node is one OR-tree node: a resolvent with its environment, the chain of
// decisions that produced it, and the branch-and-bound bound B(n).
type Node struct {
	Goals *GoalStack
	Env   *term.Env
	Chain *ArcList
	Bound float64
	Depth int // arcs from the root
	// Seq is a creation serial used by strategies as a tiebreaker: LIFO
	// order for depth-first, FIFO for breadth-first/best-first.
	Seq uint64
	// Parent links the search tree for figure-3 style rendering; nil
	// unless the expander records trees.
	Parent *Node
	// Label describes the decision that created this node (the matched
	// clause or builtin), used only for rendering.
	Label string
}

// IsSolution reports whether the node has no pending goals.
func (n *Node) IsSolution() bool { return n.Goals.Len() == 0 }

// Tabler resolves calls to tabled predicates by answer-clause resolution:
// instead of expanding a tabled goal against program clauses, the engine
// asks the Tabler for the environments that unify the goal with each
// memoized answer. internal/table implements it; the interface lives here
// so the engine never imports the table subsystem. Implementations must be
// safe for concurrent use (parallel workers share one Tabler per query).
type Tabler interface {
	// IsTabled reports whether the predicate is under tabled evaluation.
	IsTabled(fn term.Sym, arity int) bool
	// Resolve returns one extended environment per table answer that
	// unifies with goal (resolved under env), computing the table to
	// completion first if needed. ctx bounds that computation.
	Resolve(ctx context.Context, env *term.Env, goal term.Term) ([]*term.Env, error)
}

// NegationTabler is implemented by Tablers that need a restricted view
// inside negation-as-failure sub-searches. Negation over a tabled goal is
// only sound against a final answer set; a Tabler in the middle of
// producing a recursive component returns a view that enforces that
// (rejecting non-stratified programs) instead of silently consuming a
// growing table.
type NegationTabler interface {
	Tabler
	// ForNegation returns the Tabler to use inside a \+ sub-search.
	ForNegation() Tabler
}

// Expander expands OR-tree nodes against a database and weight store.
// It carries counters and the bytecode machine's scratch space, so each
// goroutine must own its Expander (parallel workers allocate one each).
type Expander struct {
	DB *kb.DB
	// Weights supplies arc weights for child bounds.
	Weights weights.Store
	// OccursCheck enables sound unification.
	OccursCheck bool
	// MaxDepth bounds chain length in arcs; longer chains fail. Zero
	// means the weight store's A constant.
	MaxDepth int
	// RecordTree links children to parents and fills Label for rendering.
	RecordTree bool
	// Tabler, when non-nil, intercepts calls to tabled predicates and
	// resolves them against memoized answers instead of program clauses.
	Tabler Tabler
	// Ctx cancels work inside a single Expand call (today: the nested
	// negation-as-failure search, which may run up to negationBudget
	// expansions, and tabled answer production). The per-node loops of the
	// search drivers check the context themselves between Expand calls;
	// nil means no cancellation.
	Ctx context.Context
	// NoVM forces the tree-walking resolution path (the differential
	// oracle), as blog.Compiled(false) and the -compiled=off flags do.
	NoVM bool
	// VMDispatched counts goals resolved on the compiled bytecode path.
	VMDispatched uint64
	// Prof, when non-nil, accumulates per-predicate profile counters with
	// interval attribution: each Expand charges the time since the previous
	// Expand to the previously expanded predicate. Callers that pause
	// between Expand calls (pull iterators) flush via ProfFlush so idle
	// time is not attributed.
	Prof *obs.Profiler

	seq   uint64
	prog  *vm.Program
	mach  vm.Machine
	meter *obs.Meter
}

// NewExpander returns an expander with MaxDepth defaulted from the store.
func NewExpander(db *kb.DB, ws weights.Store) *Expander {
	return &Expander{DB: db, Weights: ws, MaxDepth: ws.Config().A}
}

// Root builds the root node for a query's goals.
func (e *Expander) Root(goals []term.Term) *Node {
	entries := make([]GoalEntry, len(goals))
	for i, g := range goals {
		entries[i] = GoalEntry{Goal: g, Caller: kb.Query, Pos: i}
	}
	e.seq++
	return &Node{Goals: PushGoals(nil, entries), Seq: e.seq, Label: "?-"}
}

// ErrDepthLimit marks chains cut off by MaxDepth. They are treated as
// failures for the weight rules, matching the A*N infinity coding: a chain
// of A arcs has bound at least A times... any single known solution.
var ErrDepthLimit = errors.New("engine: chain exceeded maximum depth")

// Expand resolves the first goal of n and returns its children. A nil,
// nil return means the node failed (no matching clause, failed builtin, or
// depth limit). Solutions must be detected by the caller via IsSolution
// before calling Expand.
func (e *Expander) Expand(n *Node) ([]*Node, error) {
	entry, ok := n.Goals.Top()
	if !ok {
		return nil, errors.New("engine: Expand called on solution node")
	}
	maxDepth := e.MaxDepth
	if maxDepth <= 0 {
		maxDepth = e.Weights.Config().A
	}
	if n.Depth >= maxDepth {
		return nil, ErrDepthLimit
	}
	goal := n.Env.Resolve(entry.Goal)

	if fn, arity, ok := term.PredOf(goal); ok {
		if e.Prof != nil {
			if e.meter == nil {
				e.meter = obs.NewMeter(e.Prof)
			}
			e.meter.Note(fn, arity, 0, 0)
		}
		if fn == term.SymNeg && arity == 1 {
			return e.expandNegation(n, goal)
		}
		if isBuiltin(fn, arity) {
			return e.expandBuiltin(n, entry, goal, builtins[biKey{fn, arity}])
		}
		if e.Tabler != nil && e.Tabler.IsTabled(fn, arity) {
			return e.expandTabled(n, goal)
		}
		// Compiled path: everything the VM models was filtered out above;
		// tree recording keeps the walker so figure labels are unchanged.
		if !e.NoVM && !e.RecordTree && vm.Enabled {
			if pc := e.program().Pred(fn, arity); pc != nil {
				return e.expandCompiled(n, entry, goal, pc)
			}
		}
	}

	cands := e.DB.Candidates(n.Env, goal)
	children := make([]*Node, 0, len(cands))
	for _, c := range cands {
		// Two-phase activation of the compiled clause: instantiate the
		// head (slot lookups over a fresh frame, ground subterms shared —
		// no map-backed deep rename), and build the body only if the head
		// actually unifies.
		head, frame := c.HeadForUnify()
		env, ok := e.unify(n.Env, goal, head)
		if !ok {
			continue
		}
		bodyEntries := make([]GoalEntry, len(c.Body))
		if len(bodyEntries) > 0 {
			frame = c.EnsureFrame(frame)
			for i := range bodyEntries {
				bodyEntries[i] = GoalEntry{Goal: c.InstantiateGoal(i, frame), Caller: c.ID, Pos: i}
			}
		}
		arc := kb.Arc{Caller: entry.Caller, Pos: entry.Pos, Callee: c.ID}
		e.seq++
		child := &Node{
			Goals: PushGoals(n.Goals.Pop(), bodyEntries),
			Env:   env,
			Chain: n.Chain.Extend(arc),
			Bound: n.Bound + e.arcWeight(n, arc),
			Depth: n.Depth + 1,
			Seq:   e.seq,
		}
		if e.RecordTree {
			child.Parent = n
			child.Label = e.matchLabel(env, goal, c)
		}
		children = append(children, child)
	}
	return children, nil
}

// ProfFlush charges the profiler's pending attribution interval and
// clears it. Search drivers call it at solution yields and terminal
// states so time spent outside the engine is not charged to a predicate.
func (e *Expander) ProfFlush() {
	e.meter.Flush(0, 0)
}

// program returns the compiled program for the database, recompiling
// when the database generation moved (a clause was asserted since).
// Lazy attachment here, rather than in a constructor, covers every
// Expander construction site, including struct literals.
func (e *Expander) program() *vm.Program {
	if e.prog == nil || e.prog.Gen() != e.DB.Generation() {
		e.prog = vm.For(e.DB)
	}
	return e.prog
}

// expandCompiled is Expand's clause-resolution loop on the bytecode
// machine: switch-on-term candidate selection, head unification on the
// register machine, and body goals built from the registers. Candidate
// order is clause-ID order, identical to the tree-walking path, so the
// two engines produce the same children in the same order.
func (e *Expander) expandCompiled(n *Node, entry GoalEntry, goal term.Term, pc *vm.PredCode) ([]*Node, error) {
	e.VMDispatched++
	if c := e.meter.Current(); c != nil {
		c.VMDispatches.Add(1)
	}
	cands := pc.Select(n.Env, goal)
	children := make([]*Node, 0, len(cands))
	for _, cc := range cands {
		env, ok := e.mach.Resolve(n.Env, goal, cc, e.OccursCheck)
		if !ok {
			continue
		}
		c := cc.Clause()
		arc := kb.Arc{Caller: entry.Caller, Pos: entry.Pos, Callee: c.ID}
		e.seq++
		children = append(children, &Node{
			Goals: e.pushBody(n.Goals.Pop(), c),
			Env:   env,
			Chain: n.Chain.Extend(arc),
			Bound: n.Bound + e.arcWeight(n, arc),
			Depth: n.Depth + 1,
			Seq:   e.seq,
		})
	}
	return children, nil
}

// pushBody prepends the instantiated body of a just-resolved compiled
// clause onto tail. It is PushGoals specialized to the machine's body
// skeletons: the stack nodes for the whole body come from one block, so
// a clause with k body goals costs one allocation instead of k+1. Each
// node is a distinct addressable struct, so the persistent-list sharing
// contract is unchanged.
func (e *Expander) pushBody(tail *GoalStack, c *kb.Clause) *GoalStack {
	nb := len(c.Body)
	if nb == 0 {
		return tail
	}
	base := 0
	if tail != nil {
		base = tail.size
	}
	block := make([]GoalStack, nb)
	for i := nb - 1; i >= 0; i-- {
		block[i] = GoalStack{
			entry: GoalEntry{Goal: e.mach.BodyGoal(i), Caller: c.ID, Pos: i},
			tail:  tail,
			size:  base + nb - i,
		}
		tail = &block[i]
	}
	return tail
}

func (e *Expander) unify(env *term.Env, a, b term.Term) (*term.Env, bool) {
	if e.OccursCheck {
		return unify.UnifyOC(env, a, b)
	}
	return unify.Unify(env, a, b)
}

// arcWeight computes the bound increment for taking arc from node n,
// consulting the conditional (context-sensitive) store when the weight
// store provides one — the "conditional information" extension sketched
// at the end of section 5 of the paper.
func (e *Expander) arcWeight(n *Node, arc kb.Arc) float64 {
	if cs, ok := e.Weights.(weights.ContextualStore); ok {
		if prev, has := n.Chain.Last(); has {
			return cs.WeightIn(prev, arc)
		}
		return cs.WeightIn(weights.RootContext, arc)
	}
	return e.Weights.Weight(arc)
}

// negationBudget bounds the nested search a \+ goal may perform.
const negationBudget = 100_000

// ErrNegationBudget reports a \+ subgoal whose proof attempt exceeded
// negationBudget expansions.
var ErrNegationBudget = errors.New("engine: negation subgoal exceeded expansion budget")

// expandNegation implements negation as failure: \+(G) succeeds exactly
// when a nested depth-first search over the same database finds no proof
// of G. The nested search adds no arcs (negation is a machine decision,
// not a database pointer) and uses the remaining depth budget. As in
// standard Prolog, \+ over a goal with unbound variables means "no
// instance is provable" (it never binds them).
func (e *Expander) expandNegation(n *Node, goal term.Term) ([]*Node, error) {
	inner := goal.(*term.Compound).Args[0]
	sub := &Expander{
		DB:          e.DB,
		Weights:     e.Weights,
		OccursCheck: e.OccursCheck,
		MaxDepth:    e.MaxDepth,
		Tabler:      e.Tabler,
		Ctx:         e.Ctx,
		NoVM:        e.NoVM,
	}
	if nt, ok := e.Tabler.(NegationTabler); ok {
		sub.Tabler = nt.ForNegation()
	}
	defer func() { e.VMDispatched += sub.VMDispatched }()
	stack := []*Node{{
		Goals: PushGoals(nil, []GoalEntry{{Goal: inner, Caller: kb.Query, Pos: 0}}),
		Env:   n.Env,
	}}
	var steps int
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.IsSolution() {
			return nil, nil // proof found: \+ fails the chain
		}
		if steps++; steps > negationBudget {
			return nil, ErrNegationBudget
		}
		if e.Ctx != nil && steps%256 == 0 {
			if err := e.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		children, err := sub.Expand(cur)
		if err != nil && err != ErrDepthLimit {
			return nil, err
		}
		stack = append(stack, children...)
	}
	// No proof of the inner goal: \+ succeeds like a zero-weight builtin.
	e.seq++
	child := &Node{
		Goals: n.Goals.Pop(),
		Env:   n.Env,
		Chain: n.Chain,
		Bound: n.Bound,
		Depth: n.Depth,
		Seq:   e.seq,
	}
	if e.RecordTree {
		child.Parent = n
		child.Label = n.Env.Format(goal)
	}
	return []*Node{child}, nil
}

// matchLabel renders the head of the matched clause under the child env,
// which is how figure 3 labels the top half of each node.
func (e *Expander) matchLabel(env *term.Env, goal term.Term, c *kb.Clause) string {
	return env.Format(goal)
}

// expandTabled resolves a tabled goal against its answer table: one child
// per memoized answer that unifies. Like a builtin, answer consumption is
// a machine decision, not a database pointer — it adds no arc, no weight
// and no depth; the sub-derivation the answer stands for was accounted
// when the table was produced. Termination on left-recursive programs
// follows: recursive calls consume finite answer sets instead of opening
// ever-deeper program-clause resolvents.
func (e *Expander) expandTabled(n *Node, goal term.Term) ([]*Node, error) {
	ctx := e.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	envs, err := e.Tabler.Resolve(ctx, n.Env, goal)
	// Table production charges its own time inside the generator runs
	// (which share the profiler); restarting the interval clock here keeps
	// that wall time from also being charged to the consumer's predicate.
	e.meter.Skip()
	if err != nil {
		return nil, err
	}
	children := make([]*Node, 0, len(envs))
	for _, env := range envs {
		e.seq++
		child := &Node{
			Goals: n.Goals.Pop(),
			Env:   env,
			Chain: n.Chain,
			Bound: n.Bound,
			Depth: n.Depth,
			Seq:   e.seq,
		}
		if e.RecordTree {
			child.Parent = n
			child.Label = env.Format(goal)
		}
		children = append(children, child)
	}
	return children, nil
}

// expandBuiltin evaluates a builtin goal. Builtins are decisions of the
// machine, not of the database, so they add no arc and zero weight; a
// failing builtin fails the whole chain, exactly like an unmatched goal.
func (e *Expander) expandBuiltin(n *Node, entry GoalEntry, goal term.Term, bi builtin) ([]*Node, error) {
	envs, err := bi(n.Env, goal)
	if err != nil {
		return nil, err
	}
	children := make([]*Node, 0, len(envs))
	for _, env := range envs {
		e.seq++
		child := &Node{
			Goals: n.Goals.Pop(),
			Env:   env,
			Chain: n.Chain,
			Bound: n.Bound,
			Depth: n.Depth, // builtins do not consume depth budget
			Seq:   e.seq,
		}
		if e.RecordTree {
			child.Parent = n
			child.Label = env.Format(goal)
		}
		children = append(children, child)
	}
	return children, nil
}

// Solution extracts the bindings of the given query variables from a
// solution node, deeply resolved.
type Solution struct {
	// Bindings maps query variable names to their value terms.
	Bindings map[string]term.Term
	// Bound is the chain bound at the solution leaf.
	Bound float64
	// Chain is the root-first arc chain (the paper's decision sequence).
	Chain []kb.Arc
	// Depth is the chain length in arcs.
	Depth int
}

// Extract builds a Solution for query vars from a solution node.
func Extract(n *Node, queryVars []*term.Var) Solution {
	b := make(map[string]term.Term, len(queryVars))
	for _, v := range queryVars {
		b[v.String()] = n.Env.ResolveDeep(v)
	}
	return Solution{Bindings: b, Bound: n.Bound, Chain: n.Chain.Slice(), Depth: n.Depth}
}

// Format renders a solution as `X = v, Y = w` in variable order.
func (s Solution) Format(queryVars []*term.Var) string {
	if len(queryVars) == 0 {
		return "true"
	}
	out := ""
	for i, v := range queryVars {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s = %s", v.String(), s.Bindings[v.String()])
	}
	return out
}
