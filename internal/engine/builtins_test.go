package engine

import (
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/term"
	"blog/internal/weights"
)

// run expands a single-goal query to exhaustion with a trivial DFS and
// returns the solution environments' formatted bindings of X (if present).
func runBuiltinQuery(t *testing.T, src, q string) []string {
	t.Helper()
	db := kb.New()
	if src != "" {
		loaded, _, err := kb.LoadString(src)
		if err != nil {
			t.Fatal(err)
		}
		db = loaded
	}
	exp := NewExpander(db, weights.NewUniform(weights.DefaultConfig()))
	gs, err := parse.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var qvars []*term.Var
	for _, g := range gs {
		qvars = term.Vars(g, qvars)
	}
	var out []string
	stack := []*Node{exp.Root(gs)}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.IsSolution() {
			sol := Extract(n, qvars)
			out = append(out, sol.Format(qvars))
			continue
		}
		cs, err := exp.Expand(n)
		if err != nil && err != ErrDepthLimit {
			t.Fatalf("expand: %v", err)
		}
		for i := len(cs) - 1; i >= 0; i-- {
			stack = append(stack, cs[i])
		}
	}
	return out
}

func TestBuiltinTrueFail(t *testing.T) {
	if got := runBuiltinQuery(t, "", "true"); len(got) != 1 || got[0] != "true" {
		t.Errorf("true: %v", got)
	}
	if got := runBuiltinQuery(t, "", "fail"); len(got) != 0 {
		t.Errorf("fail: %v", got)
	}
	if got := runBuiltinQuery(t, "", "false"); len(got) != 0 {
		t.Errorf("false: %v", got)
	}
}

func TestBuiltinUnify(t *testing.T) {
	got := runBuiltinQuery(t, "", "X = f(a,b)")
	if len(got) != 1 || got[0] != "X = f(a,b)" {
		t.Errorf("=: %v", got)
	}
	if got := runBuiltinQuery(t, "", "a = b"); len(got) != 0 {
		t.Errorf("a=b: %v", got)
	}
}

func TestBuiltinNotUnify(t *testing.T) {
	if got := runBuiltinQuery(t, "", "a \\= b"); len(got) != 1 {
		t.Errorf("a\\=b: %v", got)
	}
	if got := runBuiltinQuery(t, "", "a \\= a"); len(got) != 0 {
		t.Errorf("a\\=a: %v", got)
	}
	// X \= a fails because they can unify.
	if got := runBuiltinQuery(t, "", "X \\= a, X = b"); len(got) != 0 {
		t.Errorf("X\\=a: %v", got)
	}
}

func TestBuiltinStructuralEq(t *testing.T) {
	if got := runBuiltinQuery(t, "", "f(a) == f(a)"); len(got) != 1 {
		t.Errorf("==: %v", got)
	}
	if got := runBuiltinQuery(t, "", "X == Y"); len(got) != 0 {
		t.Errorf("distinct vars ==: %v", got)
	}
	if got := runBuiltinQuery(t, "", "f(a) \\== f(b)"); len(got) != 1 {
		t.Errorf("\\==: %v", got)
	}
}

func TestBuiltinIs(t *testing.T) {
	cases := []struct {
		q    string
		want string
	}{
		{"X is 2 + 3", "X = 5"},
		{"X is 2 * 3 + 1", "X = 7"},
		{"X is 7 // 2", "X = 3"},
		{"X is 7 mod 2", "X = 1"},
		{"X is -3 mod 5", "X = 2"}, // Prolog mod follows divisor sign
		{"X is abs(-4)", "X = 4"},
		{"X is min(3, 5)", "X = 3"},
		{"X is max(3, 5)", "X = 5"},
		{"X is 2 - 5", "X = -3"},
	}
	for _, c := range cases {
		got := runBuiltinQuery(t, "", c.q)
		if len(got) != 1 || got[0] != c.want {
			t.Errorf("%s: got %v, want %s", c.q, got, c.want)
		}
	}
	// is fails when lhs does not unify with the value.
	if got := runBuiltinQuery(t, "", "4 is 2 + 1"); len(got) != 0 {
		t.Errorf("4 is 3: %v", got)
	}
	if got := runBuiltinQuery(t, "", "3 is 2 + 1"); len(got) != 1 {
		t.Errorf("3 is 3: %v", got)
	}
}

func TestBuiltinArithmeticComparisons(t *testing.T) {
	yes := []string{"1 < 2", "2 > 1", "2 =< 2", "2 >= 2", "3 =:= 3", "3 =\\= 4", "1 + 1 =:= 2"}
	for _, q := range yes {
		if got := runBuiltinQuery(t, "", q); len(got) != 1 {
			t.Errorf("%s should succeed: %v", q, got)
		}
	}
	no := []string{"2 < 1", "1 > 2", "3 =< 2", "1 >= 2", "3 =:= 4", "3 =\\= 3"}
	for _, q := range no {
		if got := runBuiltinQuery(t, "", q); len(got) != 0 {
			t.Errorf("%s should fail: %v", q, got)
		}
	}
}

func TestBuiltinTermOrder(t *testing.T) {
	if got := runBuiltinQuery(t, "", "a @< b"); len(got) != 1 {
		t.Error("a @< b should succeed")
	}
	if got := runBuiltinQuery(t, "", "b @< a"); len(got) != 0 {
		t.Error("b @< a should fail")
	}
	if got := runBuiltinQuery(t, "", "f(a) @> a"); len(got) != 1 {
		t.Error("compound @> atom")
	}
}

func TestBuiltinBetween(t *testing.T) {
	got := runBuiltinQuery(t, "", "between(1, 3, X)")
	want := []string{"X = 1", "X = 2", "X = 3"}
	if len(got) != 3 {
		t.Fatalf("between: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("between[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// Check membership mode.
	if got := runBuiltinQuery(t, "", "between(1, 3, 2)"); len(got) != 1 {
		t.Error("between membership should succeed")
	}
	if got := runBuiltinQuery(t, "", "between(1, 3, 9)"); len(got) != 0 {
		t.Error("out-of-range membership should fail")
	}
	if got := runBuiltinQuery(t, "", "between(3, 1, X)"); len(got) != 0 {
		t.Error("empty range should fail")
	}
}

func TestBuiltinTypeChecks(t *testing.T) {
	yes := []string{"integer(3)", "atom(a)", "var(X)", "nonvar(f(Y))", "nonvar(3)"}
	for _, q := range yes {
		if got := runBuiltinQuery(t, "", q); len(got) != 1 {
			t.Errorf("%s should succeed", q)
		}
	}
	no := []string{"integer(a)", "atom(3)", "atom(f(a))", "var(a)", "nonvar(X)"}
	for _, q := range no {
		if got := runBuiltinQuery(t, "", q); len(got) != 0 {
			t.Errorf("%s should fail", q)
		}
	}
	// var(X) after binding should fail.
	if got := runBuiltinQuery(t, "", "X = a, var(X)"); len(got) != 0 {
		t.Error("var of bound variable should fail")
	}
}

func TestBuiltinCutIsNoop(t *testing.T) {
	// B-LOG has no cut; ! behaves as true and prunes nothing.
	src := "p(1) :- !.\np(2)."
	got := runBuiltinQuery(t, src, "p(X)")
	if len(got) != 2 {
		t.Errorf("cut must not prune in B-LOG, got %v", got)
	}
}

func TestBuiltinsMixedWithClauses(t *testing.T) {
	src := `
double(X, Y) :- Y is X * 2.
big(X) :- X > 10.
`
	if got := runBuiltinQuery(t, src, "double(21, Z)"); len(got) != 1 || got[0] != "Z = 42" {
		t.Errorf("double: %v", got)
	}
	if got := runBuiltinQuery(t, src, "big(11)"); len(got) != 1 {
		t.Errorf("big(11): %v", got)
	}
	if got := runBuiltinQuery(t, src, "big(9)"); len(got) != 0 {
		t.Errorf("big(9): %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(nil, term.NewVar("X")); err != ErrUnboundArithmetic {
		t.Errorf("unbound eval: %v", err)
	}
	if _, err := Eval(nil, term.NewAtom("a")); err == nil {
		t.Error("atom eval should error")
	}
	div, _ := parse.OneTerm("//(1,0)")
	if _, err := Eval(nil, div); err == nil {
		t.Error("division by zero should error")
	}
	mod, _ := parse.OneTerm("mod(1,0)")
	if _, err := Eval(nil, mod); err == nil {
		t.Error("mod by zero should error")
	}
	unk, _ := parse.OneTerm("foo(1,2)")
	if _, err := Eval(nil, unk); err == nil {
		t.Error("unknown function should error")
	}
	unk1, _ := parse.OneTerm("foo(1)")
	if _, err := Eval(nil, unk1); err == nil {
		t.Error("unknown unary function should error")
	}
}

func TestEvalErrorPropagatesFromSearch(t *testing.T) {
	db := kb.New()
	exp := NewExpander(db, weights.NewUniform(weights.DefaultConfig()))
	gs, _ := parse.Query("X is Y + 1")
	root := exp.Root(gs)
	if _, err := exp.Expand(root); err == nil {
		t.Error("unbound arithmetic must surface as an error")
	}
}

func TestIsBuiltin(t *testing.T) {
	if !IsBuiltin("is", 2) || !IsBuiltin("between", 3) {
		t.Error("expected builtins missing")
	}
	if IsBuiltin("is", 3) || IsBuiltin("foo", 2) {
		t.Error("non-builtins reported")
	}
}
