package engine

import "testing"

func TestBuiltinFunctorDecompose(t *testing.T) {
	cases := []struct {
		q    string
		want []string
	}{
		{"functor(f(a,b), N, A)", []string{"N = f, A = 2"}},
		{"functor(foo, N, A)", []string{"N = foo, A = 0"}},
		{"functor(42, N, A)", []string{"N = 42, A = 0"}},
	}
	for _, c := range cases {
		got := runBuiltinQuery(t, "", c.q)
		if len(got) != 1 || got[0] != c.want[0] {
			t.Errorf("%s: got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBuiltinFunctorConstruct(t *testing.T) {
	got := runBuiltinQuery(t, "", "functor(T, f, 2), T = f(X, Y), X = 1")
	if len(got) != 1 {
		t.Fatalf("construct: %v", got)
	}
	if got := runBuiltinQuery(t, "", "functor(T, foo, 0), T = foo"); len(got) != 1 {
		t.Error("atom construction failed")
	}
	if got := runBuiltinQuery(t, "", "functor(T, 42, 0), T = 42"); len(got) != 1 {
		t.Error("integer construction failed")
	}
	// Mismatched checks fail rather than succeed.
	if got := runBuiltinQuery(t, "", "functor(f(a), g, 1)"); len(got) != 0 {
		t.Error("wrong name should fail")
	}
	if got := runBuiltinQuery(t, "", "functor(f(a), f, 2)"); len(got) != 0 {
		t.Error("wrong arity should fail")
	}
}

func TestBuiltinArg(t *testing.T) {
	if got := runBuiltinQuery(t, "", "arg(2, f(a,b,c), X)"); len(got) != 1 || got[0] != "X = b" {
		t.Errorf("arg bound index: %v", got)
	}
	if got := runBuiltinQuery(t, "", "arg(0, f(a), X)"); len(got) != 0 {
		t.Error("index 0 out of range")
	}
	if got := runBuiltinQuery(t, "", "arg(4, f(a,b,c), X)"); len(got) != 0 {
		t.Error("index past arity")
	}
	// Enumeration mode.
	got := runBuiltinQuery(t, "", "arg(I, f(x,y), A)")
	if len(got) != 2 || got[0] != "I = 1, A = x" || got[1] != "I = 2, A = y" {
		t.Errorf("arg enumeration: %v", got)
	}
	// Finding the position of a known argument.
	if got := runBuiltinQuery(t, "", "arg(I, f(x,y), y)"); len(got) != 1 || got[0] != "I = 2" {
		t.Errorf("arg position: %v", got)
	}
	if got := runBuiltinQuery(t, "", "arg(1, atom, X)"); len(got) != 0 {
		t.Error("arg of non-compound fails")
	}
}

func TestBuiltinUniv(t *testing.T) {
	if got := runBuiltinQuery(t, "", "f(a,b) =.. L"); len(got) != 1 || got[0] != "L = [f,a,b]" {
		t.Errorf("decompose: %v", got)
	}
	if got := runBuiltinQuery(t, "", "foo =.. L"); len(got) != 1 || got[0] != "L = [foo]" {
		t.Errorf("atom decompose: %v", got)
	}
	if got := runBuiltinQuery(t, "", "7 =.. L"); len(got) != 1 || got[0] != "L = [7]" {
		t.Errorf("int decompose: %v", got)
	}
	if got := runBuiltinQuery(t, "", "T =.. [g, 1, 2], T = g(1, 2)"); len(got) != 1 {
		t.Error("construct failed")
	}
	if got := runBuiltinQuery(t, "", "T =.. [foo], T = foo"); len(got) != 1 {
		t.Error("atom construct failed")
	}
}

func TestBuiltinUnivErrors(t *testing.T) {
	for _, q := range []string{
		"T =.. []",        // empty list
		"T =.. [f(a), 1]", // non-atom functor
		"T =.. X",         // unbound list
	} {
		db, exp := setup(t, "p(a).")
		_ = db
		gs := goals(t, q)
		if _, err := exp.Expand(exp.Root(gs)); err == nil {
			t.Errorf("%s should error", q)
		}
	}
}

func TestBuiltinLength(t *testing.T) {
	if got := runBuiltinQuery(t, "", "length([a,b,c], N)"); len(got) != 1 || got[0] != "N = 3" {
		t.Errorf("measure: %v", got)
	}
	if got := runBuiltinQuery(t, "", "length([], N)"); len(got) != 1 || got[0] != "N = 0" {
		t.Errorf("empty: %v", got)
	}
	if got := runBuiltinQuery(t, "", "length(L, 2), L = [x, y]"); len(got) != 1 {
		t.Errorf("generate: %v", got)
	}
	if got := runBuiltinQuery(t, "", "length([a], 2)"); len(got) != 0 {
		t.Error("wrong length should fail")
	}
	if got := runBuiltinQuery(t, "", "length(L, -1)"); len(got) != 0 {
		t.Error("negative length fails")
	}
}

func TestBuiltinCopyTerm(t *testing.T) {
	// The copy has fresh variables: binding the copy leaves the original
	// untouched.
	got := runBuiltinQuery(t, "", "X = f(A, A, b), copy_term(X, Y), Y = f(1, Q, b), var(A)")
	if len(got) != 1 {
		t.Fatalf("copy_term: %v", got)
	}
	// Shared variables stay shared within the copy.
	if got := runBuiltinQuery(t, "", "copy_term(f(A,A), f(1,Z)), Z =:= 1"); len(got) != 1 {
		t.Error("copy must preserve internal sharing")
	}
}

func TestBuiltinSucc(t *testing.T) {
	if got := runBuiltinQuery(t, "", "succ(3, X)"); len(got) != 1 || got[0] != "X = 4" {
		t.Errorf("succ fwd: %v", got)
	}
	if got := runBuiltinQuery(t, "", "succ(X, 4)"); len(got) != 1 || got[0] != "X = 3" {
		t.Errorf("succ bwd: %v", got)
	}
	if got := runBuiltinQuery(t, "", "succ(X, 0)"); len(got) != 0 {
		t.Error("no natural precedes 0")
	}
	db, exp := setup(t, "p(a).")
	_ = db
	if _, err := exp.Expand(exp.Root(goals(t, "succ(X, Y)"))); err == nil {
		t.Error("doubly-unbound succ should error")
	}
}

func TestBuiltinTypeChecksExtended(t *testing.T) {
	yes := []string{"atomic(a)", "atomic(3)", "compound(f(x))", "ground(f(a,1))"}
	for _, q := range yes {
		if got := runBuiltinQuery(t, "", q); len(got) != 1 {
			t.Errorf("%s should succeed", q)
		}
	}
	no := []string{"atomic(f(a))", "atomic(X)", "compound(a)", "compound(X)", "ground(f(X))"}
	for _, q := range no {
		if got := runBuiltinQuery(t, "", q); len(got) != 0 {
			t.Errorf("%s should fail", q)
		}
	}
}
