package engine

import (
	"errors"
	"fmt"

	"blog/internal/term"
	"blog/internal/unify"
)

// builtin evaluates a goal under an environment. It returns one successor
// environment per solution of the builtin (deterministic builtins return
// zero or one). A returned error aborts the whole search: it signals a
// program error such as an unbound arithmetic operand, not mere failure.
type builtin func(env *term.Env, goal term.Term) ([]*term.Env, error)

// biKey dispatches builtins on the goal's interned functor symbol and
// arity — an integer map probe, with no string hashing on the hot path.
type biKey struct {
	fn    term.Sym
	arity int
}

// IsBuiltin reports whether name/arity is an evaluable builtin.
func IsBuiltin(name string, arity int) bool {
	_, ok := builtins[biKey{term.Intern(name), arity}]
	return ok
}

var builtins map[biKey]builtin

// biArities is a dense arity bitmap indexed by builtin Sym. Builtins are
// interned at process init, before any program text, so their Syms are
// small and the table stays a few dozen entries. Expand probes it on
// every goal; the map above is only consulted after a bitmap hit, so the
// overwhelmingly common miss costs one bounds check and one load instead
// of hashing a struct key.
var biArities []uint8

// isBuiltin is the hot-path probe: it answers "not a builtin" without
// touching the builtins map.
func isBuiltin(fn term.Sym, arity int) bool {
	return int(fn) < len(biArities) && arity < 8 && biArities[fn]&(1<<arity) != 0
}

func init() {
	entries := []struct {
		name  string
		arity int
		fn    builtin
	}{
		{"true", 0, biTrue},
		{"fail", 0, biFail},
		{"false", 0, biFail},
		{"!", 0, biCut},
		{"=", 2, biUnify},
		{"\\=", 2, biNotUnify},
		{"==", 2, biStructEq},
		{"\\==", 2, biStructNeq},
		{"is", 2, biIs},
		{"=:=", 2, arithCompare(func(a, b int64) bool { return a == b })},
		{"=\\=", 2, arithCompare(func(a, b int64) bool { return a != b })},
		{"<", 2, arithCompare(func(a, b int64) bool { return a < b })},
		{">", 2, arithCompare(func(a, b int64) bool { return a > b })},
		{"=<", 2, arithCompare(func(a, b int64) bool { return a <= b })},
		{">=", 2, arithCompare(func(a, b int64) bool { return a >= b })},
		{"@<", 2, termCompare(func(c int) bool { return c < 0 })},
		{"@>", 2, termCompare(func(c int) bool { return c > 0 })},
		{"@=<", 2, termCompare(func(c int) bool { return c <= 0 })},
		{"@>=", 2, termCompare(func(c int) bool { return c >= 0 })},
		{"between", 3, biBetween},
		{"integer", 1, biInteger},
		{"atom", 1, biAtom},
		{"atomic", 1, biAtomic},
		{"compound", 1, biCompound},
		{"var", 1, biVar},
		{"nonvar", 1, biNonvar},
		{"ground", 1, biGround},
		{"functor", 3, biFunctor},
		{"arg", 3, biArg},
		{"=..", 2, biUniv},
		{"length", 2, biLength},
		{"copy_term", 2, biCopyTerm},
		{"succ", 2, biSucc},
	}
	builtins = make(map[biKey]builtin, len(entries))
	maxSym := term.Sym(0)
	for _, e := range entries {
		s := term.Intern(e.name)
		builtins[biKey{s, e.arity}] = e.fn
		if s > maxSym {
			maxSym = s
		}
	}
	biArities = make([]uint8, maxSym+1)
	for k := range builtins {
		biArities[k.fn] |= 1 << k.arity
	}
}

func biTrue(env *term.Env, _ term.Term) ([]*term.Env, error) {
	return []*term.Env{env}, nil
}

func biFail(*term.Env, term.Term) ([]*term.Env, error) { return nil, nil }

// biCut treats ! as true. B-LOG deliberately has no cut: the paper offers
// "an alternative to Prolog's sequentially oriented depth-first search,
// without giving up completeness by incorporating control annotations"
// (section 8), and a pruning cut is meaningless when siblings expand in
// best-first order. Accepting it as a no-op lets standard benchmark
// programs load; their search spaces simply stay unpruned.
func biCut(env *term.Env, _ term.Term) ([]*term.Env, error) {
	return []*term.Env{env}, nil
}

func args2(goal term.Term) (term.Term, term.Term) {
	c := goal.(*term.Compound)
	return c.Args[0], c.Args[1]
}

func biUnify(env *term.Env, goal term.Term) ([]*term.Env, error) {
	a, b := args2(goal)
	if e, ok := unify.Unify(env, a, b); ok {
		return []*term.Env{e}, nil
	}
	return nil, nil
}

func biNotUnify(env *term.Env, goal term.Term) ([]*term.Env, error) {
	a, b := args2(goal)
	if unify.CanUnify(env, a, b) {
		return nil, nil
	}
	return []*term.Env{env}, nil
}

// structEq is the shared core of ==/2 and \==/2: structural equality with
// bindings applied on the fly, resolving each argument position exactly
// once and allocating no deep-resolved copies.
func structEq(env *term.Env, goal term.Term) bool {
	a, b := args2(goal)
	return term.EqualUnder(env, a, b)
}

func biStructEq(env *term.Env, goal term.Term) ([]*term.Env, error) {
	if structEq(env, goal) {
		return []*term.Env{env}, nil
	}
	return nil, nil
}

func biStructNeq(env *term.Env, goal term.Term) ([]*term.Env, error) {
	if structEq(env, goal) {
		return nil, nil
	}
	return []*term.Env{env}, nil
}

func biIs(env *term.Env, goal term.Term) ([]*term.Env, error) {
	lhs, rhs := args2(goal)
	v, err := Eval(env, rhs)
	if err != nil {
		return nil, err
	}
	if e, ok := unify.Unify(env, lhs, term.Int(v)); ok {
		return []*term.Env{e}, nil
	}
	return nil, nil
}

func arithCompare(cmp func(a, b int64) bool) builtin {
	return func(env *term.Env, goal term.Term) ([]*term.Env, error) {
		lhs, rhs := args2(goal)
		a, err := Eval(env, lhs)
		if err != nil {
			return nil, err
		}
		b, err := Eval(env, rhs)
		if err != nil {
			return nil, err
		}
		if cmp(a, b) {
			return []*term.Env{env}, nil
		}
		return nil, nil
	}
}

func termCompare(ok func(c int) bool) builtin {
	return func(env *term.Env, goal term.Term) ([]*term.Env, error) {
		a, b := args2(goal)
		if ok(term.CompareUnder(env, a, b)) {
			return []*term.Env{env}, nil
		}
		return nil, nil
	}
}

// biBetween is the only nondeterministic builtin: between(L,H,X) with
// integer bounds enumerates X = L..H, giving workload generators a compact
// way to express OR fan-out.
func biBetween(env *term.Env, goal term.Term) ([]*term.Env, error) {
	c := goal.(*term.Compound)
	lo, err := Eval(env, c.Args[0])
	if err != nil {
		return nil, err
	}
	hi, err := Eval(env, c.Args[1])
	if err != nil {
		return nil, err
	}
	x := env.Resolve(c.Args[2])
	if xi, ok := x.(term.Int); ok {
		if int64(xi) >= lo && int64(xi) <= hi {
			return []*term.Env{env}, nil
		}
		return nil, nil
	}
	xv, ok := x.(*term.Var)
	if !ok {
		return nil, nil
	}
	if hi < lo {
		return nil, nil
	}
	if hi-lo > 1_000_000 {
		return nil, fmt.Errorf("engine: between(%d,%d,_) range too large", lo, hi)
	}
	envs := make([]*term.Env, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		envs = append(envs, env.Bind(xv, term.Int(i)))
	}
	return envs, nil
}

func typeCheck(pred func(t term.Term) bool) builtin {
	return func(env *term.Env, goal term.Term) ([]*term.Env, error) {
		a := env.Resolve(goal.(*term.Compound).Args[0])
		if pred(a) {
			return []*term.Env{env}, nil
		}
		return nil, nil
	}
}

var (
	biInteger = typeCheck(func(t term.Term) bool { _, ok := t.(term.Int); return ok })
	biAtom    = typeCheck(func(t term.Term) bool { _, ok := t.(term.Atom); return ok })
	biAtomic  = typeCheck(func(t term.Term) bool {
		switch t.(type) {
		case term.Atom, term.Int:
			return true
		}
		return false
	})
	biCompound = typeCheck(func(t term.Term) bool { _, ok := t.(*term.Compound); return ok })
	biVar      = typeCheck(func(t term.Term) bool { _, ok := t.(*term.Var); return ok })
	biNonvar   = typeCheck(func(t term.Term) bool { _, ok := t.(*term.Var); return !ok })
)

func biGround(env *term.Env, goal term.Term) ([]*term.Env, error) {
	if term.Ground(env, goal.(*term.Compound).Args[0]) {
		return []*term.Env{env}, nil
	}
	return nil, nil
}

// biFunctor implements functor/3 in both modes: decomposing a bound term
// into name and arity, or constructing a most-general term from them.
func biFunctor(env *term.Env, goal term.Term) ([]*term.Env, error) {
	c := goal.(*term.Compound)
	t := env.Resolve(c.Args[0])
	switch t := t.(type) {
	case *term.Var:
		// Construction mode: name and arity must be bound.
		name := env.Resolve(c.Args[1])
		arity := env.Resolve(c.Args[2])
		n, okN := arity.(term.Int)
		if !okN {
			return nil, fmt.Errorf("engine: functor/3 arity %s is not an integer", arity)
		}
		switch nm := name.(type) {
		case term.Atom:
			if n < 0 {
				return nil, errors.New("engine: functor/3 negative arity")
			}
			if n == 0 {
				if e, ok := unify.Unify(env, t, nm); ok {
					return []*term.Env{e}, nil
				}
				return nil, nil
			}
			args := make([]term.Term, n)
			for i := range args {
				args[i] = term.NewVar("_")
			}
			if e, ok := unify.Unify(env, t, term.NewCompound(nm.Name(), args...)); ok {
				return []*term.Env{e}, nil
			}
			return nil, nil
		case term.Int:
			if n != 0 {
				return nil, errors.New("engine: functor/3 integer name needs arity 0")
			}
			if e, ok := unify.Unify(env, t, nm); ok {
				return []*term.Env{e}, nil
			}
			return nil, nil
		default:
			return nil, ErrUnboundArithmetic
		}
	case term.Atom:
		return unifyPair(env, c.Args[1], t, c.Args[2], term.Int(0))
	case term.Int:
		return unifyPair(env, c.Args[1], t, c.Args[2], term.Int(0))
	case *term.Compound:
		return unifyPair(env, c.Args[1], term.AtomOf(t.Functor), c.Args[2], term.Int(int64(len(t.Args))))
	}
	return nil, nil
}

// unifyPair unifies two (lhs, value) pairs in sequence.
func unifyPair(env *term.Env, l1, v1, l2, v2 term.Term) ([]*term.Env, error) {
	e, ok := unify.Unify(env, l1, v1)
	if !ok {
		return nil, nil
	}
	e, ok = unify.Unify(e, l2, v2)
	if !ok {
		return nil, nil
	}
	return []*term.Env{e}, nil
}

// biArg implements arg/3: argument extraction with a bound index, or
// enumeration over all argument positions when the index is free.
func biArg(env *term.Env, goal term.Term) ([]*term.Env, error) {
	c := goal.(*term.Compound)
	t := env.Resolve(c.Args[1])
	tc, ok := t.(*term.Compound)
	if !ok {
		return nil, nil
	}
	idx := env.Resolve(c.Args[0])
	if n, ok := idx.(term.Int); ok {
		if n < 1 || int(n) > len(tc.Args) {
			return nil, nil
		}
		if e, ok := unify.Unify(env, c.Args[2], tc.Args[n-1]); ok {
			return []*term.Env{e}, nil
		}
		return nil, nil
	}
	var envs []*term.Env
	for i, a := range tc.Args {
		e, ok := unify.Unify(env, idx, term.Int(int64(i+1)))
		if !ok {
			continue
		}
		if e2, ok := unify.Unify(e, c.Args[2], a); ok {
			envs = append(envs, e2)
		}
	}
	return envs, nil
}

// biUniv implements =../2 (univ) in both directions.
func biUniv(env *term.Env, goal term.Term) ([]*term.Env, error) {
	c := goal.(*term.Compound)
	t := env.Resolve(c.Args[0])
	switch t := t.(type) {
	case *term.Var:
		items, proper := listSlice(env, c.Args[1])
		if !proper || len(items) == 0 {
			return nil, errors.New("engine: =../2 needs a proper non-empty list on the right")
		}
		head := env.Resolve(items[0])
		if len(items) == 1 {
			switch head.(type) {
			case term.Atom, term.Int:
				if e, ok := unify.Unify(env, t, head); ok {
					return []*term.Env{e}, nil
				}
				return nil, nil
			}
			return nil, errors.New("engine: =../2 singleton list must hold an atomic term")
		}
		name, ok := head.(term.Atom)
		if !ok {
			return nil, errors.New("engine: =../2 functor must be an atom")
		}
		if e, ok := unify.Unify(env, t, term.NewCompound(name.Name(), items[1:]...)); ok {
			return []*term.Env{e}, nil
		}
		return nil, nil
	case *term.Compound:
		items := make([]term.Term, 0, len(t.Args)+1)
		items = append(items, term.AtomOf(t.Functor))
		items = append(items, t.Args...)
		if e, ok := unify.Unify(env, c.Args[1], term.FromList(items)); ok {
			return []*term.Env{e}, nil
		}
		return nil, nil
	default: // atom or int
		if e, ok := unify.Unify(env, c.Args[1], term.FromList([]term.Term{t})); ok {
			return []*term.Env{e}, nil
		}
		return nil, nil
	}
}

// listSlice walks a list term; proper is false when the tail is not [].
func listSlice(env *term.Env, t term.Term) (items []term.Term, proper bool) {
	for {
		t = env.Resolve(t)
		if t == term.EmptyList {
			return items, true
		}
		cell, ok := t.(*term.Compound)
		if !ok || cell.Functor != term.SymDot || len(cell.Args) != 2 {
			return items, false
		}
		items = append(items, cell.Args[0])
		t = cell.Args[1]
	}
}

// biLength implements length/2: measuring a bound list, or generating a
// list of fresh variables from a bound length. The doubly-unbound mode is
// rejected (it would enumerate forever under best-first search).
func biLength(env *term.Env, goal term.Term) ([]*term.Env, error) {
	c := goal.(*term.Compound)
	items, proper := listSlice(env, c.Args[0])
	if proper {
		if e, ok := unify.Unify(env, c.Args[1], term.Int(int64(len(items)))); ok {
			return []*term.Env{e}, nil
		}
		return nil, nil
	}
	n, ok := env.Resolve(c.Args[1]).(term.Int)
	if !ok {
		return nil, errors.New("engine: length/2 needs a proper list or a bound length")
	}
	if n < 0 {
		return nil, nil
	}
	if n > 1_000_000 {
		return nil, fmt.Errorf("engine: length/2 request %d too large", n)
	}
	fresh := make([]term.Term, n)
	for i := range fresh {
		fresh[i] = term.NewVar("_")
	}
	if e, ok := unify.Unify(env, c.Args[0], term.FromList(fresh)); ok {
		return []*term.Env{e}, nil
	}
	return nil, nil
}

// biCopyTerm implements copy_term/2: a fresh variant of the first
// argument unifies with the second.
func biCopyTerm(env *term.Env, goal term.Term) ([]*term.Env, error) {
	c := goal.(*term.Compound)
	cp := term.Refresh(env.ResolveDeep(c.Args[0]))
	if e, ok := unify.Unify(env, c.Args[1], cp); ok {
		return []*term.Env{e}, nil
	}
	return nil, nil
}

// biSucc implements succ/2 over naturals in both directions.
func biSucc(env *term.Env, goal term.Term) ([]*term.Env, error) {
	a, b := args2(goal)
	ra := env.Resolve(a)
	rb := env.Resolve(b)
	if n, ok := ra.(term.Int); ok {
		if n < 0 {
			return nil, nil
		}
		if e, ok := unify.Unify(env, b, n+1); ok {
			return []*term.Env{e}, nil
		}
		return nil, nil
	}
	if m, ok := rb.(term.Int); ok {
		if m < 1 {
			return nil, nil
		}
		if e, ok := unify.Unify(env, a, m-1); ok {
			return []*term.Env{e}, nil
		}
		return nil, nil
	}
	return nil, errors.New("engine: succ/2 needs at least one bound integer")
}

// ErrUnboundArithmetic reports evaluation of an expression containing an
// unbound variable.
var ErrUnboundArithmetic = errors.New("engine: unbound variable in arithmetic expression")

// Pre-interned arithmetic function symbols, so Eval dispatches on integer
// compares instead of functor strings.
var (
	symAdd    = term.Intern("+")
	symSub    = term.Intern("-")
	symMul    = term.Intern("*")
	symIntDiv = term.Intern("//")
	symMod    = term.Intern("mod")
	symAbs    = term.Intern("abs")
	symMin    = term.Intern("min")
	symMax    = term.Intern("max")
)

// Eval evaluates an arithmetic expression term to an integer.
// Supported: integers, + - * // mod abs min max, and unary minus.
func Eval(env *term.Env, t term.Term) (int64, error) {
	t = env.Resolve(t)
	switch t := t.(type) {
	case term.Int:
		return int64(t), nil
	case *term.Var:
		return 0, ErrUnboundArithmetic
	case term.Atom:
		return 0, fmt.Errorf("engine: atom %s is not an arithmetic expression", t)
	case *term.Compound:
		if len(t.Args) == 1 {
			a, err := Eval(env, t.Args[0])
			if err != nil {
				return 0, err
			}
			switch t.Functor {
			case symSub:
				return -a, nil
			case symAbs:
				if a < 0 {
					return -a, nil
				}
				return a, nil
			}
			return 0, fmt.Errorf("engine: unknown arithmetic function %s/1", t.Functor)
		}
		if len(t.Args) == 2 {
			a, err := Eval(env, t.Args[0])
			if err != nil {
				return 0, err
			}
			b, err := Eval(env, t.Args[1])
			if err != nil {
				return 0, err
			}
			switch t.Functor {
			case symAdd:
				return a + b, nil
			case symSub:
				return a - b, nil
			case symMul:
				return a * b, nil
			case symIntDiv:
				if b == 0 {
					return 0, errors.New("engine: division by zero")
				}
				return a / b, nil
			case symMod:
				if b == 0 {
					return 0, errors.New("engine: mod by zero")
				}
				m := a % b
				if (m < 0 && b > 0) || (m > 0 && b < 0) {
					m += b
				}
				return m, nil
			case symMin:
				if a < b {
					return a, nil
				}
				return b, nil
			case symMax:
				if a > b {
					return a, nil
				}
				return b, nil
			}
			return 0, fmt.Errorf("engine: unknown arithmetic function %s/2", t.Functor)
		}
	}
	return 0, fmt.Errorf("engine: cannot evaluate %s", t)
}
