package engine

import (
	"context"
	"errors"
	"math"
	"sync"

	"blog/internal/kb"
	"blog/internal/obs"
	"blog/internal/term"
	"blog/internal/unify"
	"blog/internal/vm"
	"blog/internal/weights"
)

// This file is the destructive-binding twin of the Expander/search.Run
// pair: a resumable depth-first machine over one term.Store with a trail
// mark per choice point, instead of a frontier of persistent Nodes. It
// visits nodes in exactly the order sequential DFS visits them and keeps
// the same work counters at every arrival, so the persistent-Env DFS
// remains its differential oracle (search.Options.NoTrail selects it).
//
// The machine is "arrival"-driven: arriving at a node runs the same
// sequence search.Run runs on a popped node — context, prune, solution,
// budget, depth, dispatch — then either descends into the first matching
// alternative (pushing a choice point) or backtracks: undo the trail to
// the innermost choice point's mark, recycle its activation frame and
// goal-stack block, and try its next alternative.

// TrailConfig configures one TrailRun. DB, Weights and Ctx follow the
// Expander fields of the same names.
type TrailConfig struct {
	DB          *kb.DB
	Weights     weights.Store
	OccursCheck bool
	// MaxDepth bounds chain length in arcs; <=0 means the weight store's
	// A constant.
	MaxDepth int
	Tabler   Tabler
	Ctx      context.Context
	NoVM     bool
	// Learn applies the weight update rules as chains complete. It also
	// switches per-candidate arc weights to eager capture at choice-point
	// creation, because lazily computed weights would see the updates made
	// while earlier siblings ran — the persistent engine fixes child
	// bounds at generation time.
	Learn      bool
	Prune      bool
	PruneSlack float64
	// MaxExpansions bounds arrivals at non-solution nodes; 0 means no
	// bound. BudgetErr is returned when it is hit.
	MaxExpansions uint64
	BudgetErr     error
	// RootBypassTabler makes the first dispatched goal resolve against
	// program clauses even when its predicate is tabled — how a table
	// generator derives answers for its own pattern instead of consuming
	// itself.
	RootBypassTabler bool
	// StepHook, when set, runs once per non-solution arrival, before the
	// expansion is counted; a non-nil return aborts the run with that
	// error. Table generators meter their derivation budget through it.
	StepHook func() error
	// DepHook, when set, observes every predicate the run resolves
	// against program clauses (compiled or tree-walk, including goals
	// inside negation sub-runs). Table generators record their fixpoint's
	// clause-dependency set through it; goals answered by builtins or by
	// memoized tables are not reported — the tabler tracks consumed
	// tables itself and folds their stored dependency sets in.
	DepHook func(fn term.Sym, arity int)
	// Prof, when non-nil, accumulates per-predicate profile counters via
	// interval attribution: each dispatch charges the time and trail
	// binds/undos since the previous dispatch to the previously dispatched
	// predicate. Disabled (nil) costs one nil check per dispatch.
	Prof *obs.Profiler
	// Live, when non-nil, receives the expansion counter every 1024
	// arrivals, for the server's live query inspector.
	Live *obs.Live
}

// TrailStats mirrors the search-level work counters for a trail run.
// MaxChoicePoints is the peak choice-point stack depth — the trail
// analogue of the open-list high-water mark.
type TrailStats struct {
	Expanded        uint64
	Generated       uint64
	Failures        uint64
	DepthCutoffs    uint64
	Pruned          uint64
	MaxDepth        int
	MaxChoicePoints int
	VMDispatched    uint64
}

// errTrailBudget is the fallback when MaxExpansions is hit without a
// configured BudgetErr.
var errTrailBudget = errors.New("engine: trail run expansion budget exhausted")

// trailShared is the state a run shares with its nested negation runs:
// one store, one frame pool, one goal-block pool, one bytecode machine
// and one compiled program. Negation sub-searches run on the same store
// under a mark, exactly as the persistent engine's nested search runs on
// the same Env.
type trailShared struct {
	st     *term.Store
	pool   term.FramePool
	cpool  term.CompoundPool
	blocks goalBlockPool
	mach   vm.Machine
	prog   *vm.Program

	// Direct-mapped predicate-code cache in front of prog's map lookup;
	// see predCode.
	pcCache   [pcCacheSize]pcCacheEntry
	cacheProg *vm.Program

	// progDB is the database prog was compiled from. Recycled scratch can
	// carry a program whose generation number coincides with a different
	// database's; getShared compares the database identity, not just the
	// generation, before trusting it.
	progDB *kb.DB

	// spareCPs and spareChain hold the previous run's stack capacities
	// (contents dead, not zeroed — pushCP and takeAlt overwrite every
	// field they read) so the next run starts at steady-state capacity.
	spareCPs   []choicePoint
	spareChain []kb.Arc
}

// sharedPool recycles trailShared scratch across runs. A recycled scratch
// arrives with warm frame/compound/goal-block free lists and — when the
// run is over the same database — a warm predicate-code cache, so repeated
// queries skip both the pool ramp-up and the per-dispatch map lookups of a
// cold cache.
var sharedPool = sync.Pool{New: func() any { return new(trailShared) }}

func getShared(db *kb.DB) *trailShared {
	sh := sharedPool.Get().(*trailShared)
	if sh.st == nil {
		sh.st = term.NewStore()
	} else {
		sh.st.Reset()
	}
	sh.mach.Pool = &sh.pool
	sh.mach.CPool = &sh.cpool
	if sh.progDB != db {
		sh.prog = nil
		sh.cacheProg = nil
		sh.progDB = db
	}
	return sh
}

// Release returns the run's pooled scratch — store discarded, frame,
// compound and goal-block free lists plus the predicate-code cache kept —
// for reuse by later runs. Call it once the run is over and every needed
// solution has been extracted (solutions and table answers are detached
// copies, so they survive). After Release the run is dead: Next reports
// the terminal state, Stats and Exhausted stay valid, but extract paths
// must not be used. Skipping Release is safe — the scratch is then simply
// garbage collected with the run.
func (r *TrailRun) Release() {
	sh := r.sh
	if sh == nil {
		return
	}
	r.sh = nil
	r.env = nil
	r.mode = trailDone
	// Every compound still logged belongs to a branch of the dead run;
	// recycling the lot seeds the free lists for the next run.
	sh.cpool.Release(0)
	// Fold the run's pool peaks into the process-wide high-water marks —
	// once per run, off the hot path — and zero the per-run counters so a
	// recycled scratch starts the next run's accounting clean.
	term.RecordPoolHighWater(sh.pool.RunReset(), sh.cpool.RunReset())
	sh.spareCPs = r.cps[:0]
	sh.spareChain = r.chain[:0]
	r.cps = nil
	r.chain = nil
	sharedPool.Put(sh)
}

// pcCacheSize is the predicate-code cache size; a power of two so the
// index mask is one AND. Sized to hold a few hundred predicates — the
// cache lives in the recycled scratch, so the footprint is paid once per
// pooled scratch, not per run.
const pcCacheSize = 256

type pcCacheEntry struct {
	fn    term.Sym
	arity int32
	valid bool
	pc    *vm.PredCode
}

// goalBlockPool recycles the single-block []GoalStack allocations that
// back clause-body pushes (see Expander.pushBody), keyed by body length.
// Blocks die at backtrack, with the frames of the same activation.
type goalBlockPool struct {
	bySize [][][]GoalStack
}

func (p *goalBlockPool) get(n int) []GoalStack {
	if n < len(p.bySize) {
		if l := p.bySize[n]; len(l) > 0 {
			b := l[len(l)-1]
			l[len(l)-1] = nil
			p.bySize[n] = l[:len(l)-1]
			return b
		}
	}
	return make([]GoalStack, n)
}

func (p *goalBlockPool) put(b []GoalStack) {
	n := len(b)
	if n == 0 {
		return
	}
	for n >= len(p.bySize) {
		p.bySize = append(p.bySize, nil)
	}
	p.bySize[n] = append(p.bySize[n], b)
}

type cpKind uint8

const (
	cpVM cpKind = iota
	cpKB
	cpDeltas
)

// choicePoint is one open OR-branch: the goal being resolved, the state
// to restore before trying the next alternative, the untried candidate
// list, and the pooled resources of the alternative currently taken.
type choicePoint struct {
	kind     cpKind
	entry    GoalEntry
	goal     term.Term  // resolved goal; stable across alternatives
	tail     *GoalStack // pending goals minus the one being resolved
	mark     int        // trail mark to undo to
	compMark int        // compound-pool mark to release to
	chainLen int
	depth    int
	bound    float64

	vmCands []*vm.CClause
	kbCands []*kb.Clause
	alts    [][]term.Binding
	// weights holds per-candidate arc weights captured eagerly under
	// Learn (see TrailConfig.Learn); nil means compute lazily.
	weights []float64
	next    int

	// Pooled resources of the currently taken alternative, released when
	// backtracking revisits this choice point.
	frame *term.Frame
	block []GoalStack
}

const (
	trailArrive uint8 = iota
	trailBacktrack
	trailDone
)

// TrailRun is a resumable sequential DFS over a destructive binding
// store. Next yields solutions one at a time; the caller owns solution
// caps and stops calling when satisfied.
type TrailRun struct {
	cfg TrailConfig
	sh  *trailShared
	ctx context.Context
	env *term.Env // the store's distinguished node

	maxDepth int
	maxExp   uint64

	goals *GoalStack
	depth int
	bound float64
	chain []kb.Arc
	cps   []choicePoint

	queryVars []*term.Var
	fresh     map[*term.Var]*term.Var // original -> refreshed query var

	stats     TrailStats
	bestBound float64
	haveBest  bool
	mode      uint8
	err       error
	exhausted bool
	// rootBypass is TrailConfig.RootBypassTabler, consumed by the first
	// dispatch.
	rootBypass bool
	// meter charges the profiler; nil when profiling is disabled.
	meter *obs.Meter
}

// NewTrailRun prepares a trail-store DFS for goals. The goals are renamed
// apart on entry (shared variables stay shared): the run binds
// destructively into the frames its goal terms reach, and the caller's
// terms — often parse-time structures reused across queries — must never
// be written. Solutions report bindings under the original variables.
func NewTrailRun(cfg TrailConfig, goals []term.Term) *TrailRun {
	if cfg.Ctx == nil {
		cfg.Ctx = context.Background()
	}
	maxDepth := cfg.MaxDepth
	if maxDepth <= 0 {
		maxDepth = cfg.Weights.Config().A
	}
	maxExp := cfg.MaxExpansions
	if maxExp == 0 {
		maxExp = math.MaxUint64
	}
	var queryVars []*term.Var
	for _, g := range goals {
		queryVars = term.Vars(g, queryVars)
	}
	freshGoals, m := term.RefreshAll(goals)
	entries := make([]GoalEntry, len(freshGoals))
	for i, g := range freshGoals {
		entries[i] = GoalEntry{Goal: g, Caller: kb.Query, Pos: i}
	}
	sh := getShared(cfg.DB)
	// The choice-point and chain stacks grow with search depth; recycled
	// capacity (or a realistic starting size on a cold scratch) replaces
	// the doubling ramp — which costs more total bytes than the final
	// capacity — with at most one allocation per scratch lifetime.
	cps, chain := sh.spareCPs, sh.spareChain
	sh.spareCPs, sh.spareChain = nil, nil
	if cps == nil {
		cps = make([]choicePoint, 0, 32)
	}
	if chain == nil {
		chain = make([]kb.Arc, 0, 32)
	}
	return &TrailRun{
		cfg:        cfg,
		sh:         sh,
		ctx:        cfg.Ctx,
		env:        sh.st.Env(),
		maxDepth:   maxDepth,
		maxExp:     maxExp,
		goals:      PushGoals(nil, entries),
		chain:      chain,
		cps:        cps,
		queryVars:  queryVars,
		fresh:      m,
		rootBypass: cfg.RootBypassTabler,
		meter:      obs.NewMeter(cfg.Prof),
	}
}

// QueryVars returns the original query variables in first-occurrence
// order.
func (r *TrailRun) QueryVars() []*term.Var { return r.queryVars }

// Stats returns the work counters accumulated so far.
func (r *TrailRun) Stats() TrailStats { return r.stats }

// Exhausted reports that every chain was followed to a solution or
// failure (meaningful after Next returned ok=false with a nil error).
func (r *TrailRun) Exhausted() bool { return r.exhausted }

// Next resumes the search until the next solution. ok is false when the
// search is over: exhausted (err nil) or aborted (err non-nil). After
// ok=false, further calls return the same result.
func (r *TrailRun) Next() (Solution, bool, error) {
	for {
		switch r.mode {
		case trailArrive:
			sol, yielded, err := r.arrive()
			if err != nil {
				r.mode = trailDone
				r.err = err
				r.profFlush()
				return Solution{}, false, err
			}
			if yielded {
				r.mode = trailBacktrack
				// Flush pending profiler attribution at the yield so time
				// the caller spends between pulls is not charged.
				r.profFlush()
				return sol, true, nil
			}
		case trailBacktrack:
			if !r.backtrack() {
				r.mode = trailDone
				r.exhausted = true
				r.profFlush()
				return Solution{}, false, nil
			}
			r.mode = trailArrive
		default:
			return Solution{}, false, r.err
		}
	}
}

// arrive runs the per-node sequence of search.Run on the machine's
// current (goals, depth, bound) state, in the same order: context, prune,
// solution, budget, step hook, depth, dispatch.
func (r *TrailRun) arrive() (Solution, bool, error) {
	if err := r.ctx.Err(); err != nil {
		return Solution{}, false, err
	}
	if r.cfg.Prune && r.haveBest && r.bound > r.bestBound+r.cfg.PruneSlack {
		r.stats.Pruned++
		r.mode = trailBacktrack
		return Solution{}, false, nil
	}
	if r.goals.Len() == 0 {
		sol := r.extract()
		if r.cfg.Learn {
			r.cfg.Weights.RecordSuccess(sol.Chain)
		}
		if !r.haveBest || r.bound < r.bestBound {
			r.bestBound, r.haveBest = r.bound, true
		}
		return sol, true, nil
	}
	if r.stats.Expanded >= r.maxExp {
		err := r.cfg.BudgetErr
		if err == nil {
			err = errTrailBudget
		}
		return Solution{}, false, err
	}
	if h := r.cfg.StepHook; h != nil {
		if err := h(); err != nil {
			return Solution{}, false, err
		}
	}
	r.stats.Expanded++
	if l := r.cfg.Live; l != nil && r.stats.Expanded&1023 == 0 {
		l.Expanded.Store(r.stats.Expanded)
	}
	if r.depth > r.stats.MaxDepth {
		r.stats.MaxDepth = r.depth
	}
	if r.depth >= r.maxDepth {
		r.stats.DepthCutoffs++
		r.failChain()
		return Solution{}, false, nil
	}
	return Solution{}, false, r.dispatch()
}

// profFlush charges the profiler's pending attribution interval. Runs at
// solution yields and terminal states.
func (r *TrailRun) profFlush() {
	if r.meter != nil && r.sh != nil {
		b, u := r.sh.st.Counters()
		r.meter.Flush(b, u)
	}
}

// failChain records the current node as a dead chain and switches to
// backtracking, mirroring the Failures accounting of search.Run.
func (r *TrailRun) failChain() {
	r.stats.Failures++
	if r.cfg.Learn {
		chain := make([]kb.Arc, len(r.chain))
		copy(chain, r.chain)
		r.cfg.Weights.RecordFailure(chain)
	}
	r.mode = trailBacktrack
}

// dispatch resolves the first pending goal, in the same precedence order
// as Expander.Expand: negation, builtin, tabled, compiled, tree-walk.
func (r *TrailRun) dispatch() error {
	entry, _ := r.goals.Top()
	goal := r.env.Resolve(entry.Goal)
	bypass := r.rootBypass
	r.rootBypass = false
	fn, arity, ok := term.PredOf(goal)
	if !ok {
		// Unbound variable or integer goal: nothing resolves it.
		r.failChain()
		return nil
	}
	if m := r.meter; m != nil {
		b, u := r.sh.st.Counters()
		m.Note(fn, arity, b, u)
	}
	if fn == term.SymNeg && arity == 1 {
		return r.dispatchNegation(goal)
	}
	if isBuiltin(fn, arity) {
		base := r.sh.st.Overlay()
		envs, err := builtins[biKey{fn, arity}](base, goal)
		if err != nil {
			return err
		}
		r.applyEnvs(base, envs, goal)
		return nil
	}
	if r.cfg.Tabler != nil && !bypass && r.cfg.Tabler.IsTabled(fn, arity) {
		base := r.sh.st.Overlay()
		envs, err := r.cfg.Tabler.Resolve(r.ctx, base, goal)
		// Production time is charged inside the generator runs, which share
		// the profiler; skip the interval so it is not double-counted here.
		r.meter.Skip()
		if err != nil {
			return err
		}
		r.applyEnvs(base, envs, goal)
		return nil
	}
	if h := r.cfg.DepHook; h != nil {
		h(fn, arity)
	}
	if !r.cfg.NoVM && vm.Enabled {
		if pc, ok := r.predCode(fn, arity); ok {
			return r.dispatchVM(entry, goal, pc)
		}
	}
	return r.dispatchClauses(entry, goal)
}

func (r *TrailRun) program() *vm.Program {
	if r.sh.prog == nil || r.sh.prog.Gen() != r.cfg.DB.Generation() {
		r.sh.prog = vm.For(r.cfg.DB)
	}
	return r.sh.prog
}

// predCode resolves the compiled code for a predicate through a small
// direct-mapped cache in front of the program's map — the lookup runs
// once per dispatched goal, which makes it one of the hottest loads in
// the machine. Negative results ("the compiler skipped this predicate")
// are cached too; asserting a clause bumps the database generation,
// which swaps the program and flushes the cache.
func (r *TrailRun) predCode(fn term.Sym, arity int) (*vm.PredCode, bool) {
	prog := r.program()
	sh := r.sh
	if sh.cacheProg != prog {
		sh.pcCache = [pcCacheSize]pcCacheEntry{}
		sh.cacheProg = prog
	}
	i := (uint32(fn)*31 + uint32(arity)) & (pcCacheSize - 1)
	e := &sh.pcCache[i]
	if e.valid && e.fn == fn && e.arity == int32(arity) {
		return e.pc, e.pc != nil
	}
	pc := prog.Pred(fn, arity)
	*e = pcCacheEntry{fn: fn, arity: int32(arity), pc: pc, valid: true}
	return pc, pc != nil
}

// applyEnvs commits the outcome of a builtin or tabled resolution, which
// was staged as overlay environments above the store. One alternative is
// a deterministic step (its deltas replay destructively under the
// enclosing choice point's mark); several become a deltas choice point.
// Like their Expander counterparts, these children add no arc, weight or
// depth.
func (r *TrailRun) applyEnvs(base *term.Env, envs []*term.Env, goal term.Term) {
	switch len(envs) {
	case 0:
		r.failChain()
	case 1:
		for _, b := range envs[0].Deltas(base) {
			r.env.Bind(b.Var, b.Val)
		}
		r.goals = r.goals.Pop()
		r.stats.Generated++
	default:
		cp := r.pushCP(cpDeltas, GoalEntry{}, goal)
		cp.alts = make([][]term.Binding, len(envs))
		for i, e := range envs {
			cp.alts[i] = e.Deltas(base)
		}
		r.tryNext(cp) // at least two alternatives: cannot fail
	}
}

// dispatchVM resolves a goal against compiled clauses, creating a choice
// point over the switch-on-term candidate list.
func (r *TrailRun) dispatchVM(entry GoalEntry, goal term.Term, pc *vm.PredCode) error {
	r.stats.VMDispatched++
	if c := r.meter.Current(); c != nil {
		c.VMDispatches.Add(1)
	}
	cands := pc.Select(r.env, goal)
	if len(cands) == 0 {
		r.failChain()
		return nil
	}
	cp := r.pushCP(cpVM, entry, goal)
	cp.vmCands = cands
	if r.cfg.Learn {
		ws := make([]float64, len(cands))
		for i, cc := range cands {
			ws[i] = r.arcWeight(kb.Arc{Caller: entry.Caller, Pos: entry.Pos, Callee: cc.Clause().ID})
		}
		cp.weights = ws
	}
	if !r.tryNext(cp) {
		r.popFailedCP()
	}
	return nil
}

// dispatchClauses is the tree-walking resolution path (the oracle), used
// under NoVM or for predicates the compiler skipped.
func (r *TrailRun) dispatchClauses(entry GoalEntry, goal term.Term) error {
	cands := r.cfg.DB.Candidates(r.env, goal)
	if len(cands) == 0 {
		r.failChain()
		return nil
	}
	cp := r.pushCP(cpKB, entry, goal)
	cp.kbCands = cands
	if r.cfg.Learn {
		ws := make([]float64, len(cands))
		for i, c := range cands {
			ws[i] = r.arcWeight(kb.Arc{Caller: entry.Caller, Pos: entry.Pos, Callee: c.ID})
		}
		cp.weights = ws
	}
	if !r.tryNext(cp) {
		r.popFailedCP()
	}
	return nil
}

// dispatchNegation runs negation as failure as a nested trail run on the
// same store (under a mark), budgeted like the Expander's nested search.
func (r *TrailRun) dispatchNegation(goal term.Term) error {
	inner := goal.(*term.Compound).Args[0]
	cfg := r.cfg
	if nt, ok := cfg.Tabler.(NegationTabler); ok {
		cfg.Tabler = nt.ForNegation()
	}
	cfg.MaxDepth = r.maxDepth
	cfg.MaxExpansions = math.MaxUint64
	cfg.Learn = false
	cfg.Prune = false
	cfg.RootBypassTabler = false
	// The nested run is not separately profiled: its whole wall time lands
	// in the enclosing interval, charged to the \+ predicate.
	cfg.Prof = nil
	cfg.Live = nil
	var steps int
	cfg.StepHook = func() error {
		if steps++; steps > negationBudget {
			return ErrNegationBudget
		}
		return nil
	}
	sub := &TrailRun{
		cfg:      cfg,
		sh:       r.sh,
		ctx:      cfg.Ctx,
		env:      r.env,
		maxDepth: r.maxDepth,
		maxExp:   math.MaxUint64,
		goals:    PushGoals(nil, []GoalEntry{{Goal: inner, Caller: kb.Query, Pos: 0}}),
	}
	mark := r.sh.st.Mark()
	_, proved, err := sub.Next()
	r.sh.st.Undo(mark)
	r.stats.VMDispatched += sub.stats.VMDispatched
	if err != nil {
		return err
	}
	if proved {
		r.failChain()
		return nil
	}
	// No proof of the inner goal: \+ succeeds like a zero-weight builtin.
	r.goals = r.goals.Pop()
	r.stats.Generated++
	return nil
}

// pushCP opens a choice point capturing the state to restore before each
// alternative: trail mark, chain length, depth, bound and the goal tail.
// Fields are written in place (popped slots are recycled by the append,
// and every field is reassigned here), which keeps the large struct off
// the stack-copy path on this per-dispatch call.
func (r *TrailRun) pushCP(kind cpKind, entry GoalEntry, goal term.Term) *choicePoint {
	n := len(r.cps)
	if n < cap(r.cps) {
		r.cps = r.cps[:n+1]
	} else {
		r.cps = append(r.cps, choicePoint{})
	}
	cp := &r.cps[n]
	cp.kind = kind
	cp.entry = entry
	cp.goal = goal
	cp.tail = r.goals.Pop()
	cp.mark = r.sh.st.Mark()
	cp.compMark = r.sh.cpool.Mark()
	cp.chainLen = len(r.chain)
	cp.depth = r.depth
	cp.bound = r.bound
	cp.vmCands = nil
	cp.kbCands = nil
	cp.alts = nil
	cp.weights = nil
	cp.next = 0
	cp.frame = nil
	cp.block = nil
	if len(r.cps) > r.stats.MaxChoicePoints {
		r.stats.MaxChoicePoints = len(r.cps)
	}
	return cp
}

// popFailedCP discards a choice point none of whose alternatives resolved
// — the node produced zero children, so the chain fails with the node's
// own (already restored) context. Popped slots are not zeroed: pushCP
// reinitializes every field on reuse, and what the stale references pin
// (candidate lists, the goal spine of a sibling branch) is bounded by the
// peak stack and dies with the run.
func (r *TrailRun) popFailedCP() {
	r.cps = r.cps[:len(r.cps)-1]
	r.failChain()
}

// tryNext commits the choice point's next succeeding alternative: state
// is already restored to the choice point (by pushCP at creation, by
// backtrack on revisit), each failed attempt undoes its own partial
// bindings, and a success installs the child as the machine's current
// node. Children are counted into Generated as they are taken — visit
// order equals generation order for DFS, so the counters agree with the
// persistent engine at every arrival.
func (r *TrailRun) tryNext(cp *choicePoint) bool {
	switch cp.kind {
	case cpVM:
		for cp.next < len(cp.vmCands) {
			i := cp.next
			cp.next++
			cc := cp.vmCands[i]
			if _, ok := r.sh.mach.Resolve(r.env, cp.goal, cc, r.cfg.OccursCheck); !ok {
				r.sh.st.Undo(cp.mark)
				r.sh.cpool.Release(cp.compMark)
				r.sh.pool.Put(r.sh.mach.TakeFrame())
				continue
			}
			c := cc.Clause()
			tail := cp.tail
			var block []GoalStack
			if nb := len(c.Body); nb > 0 {
				block = r.sh.blocks.get(nb)
				base := 0
				if tail != nil {
					base = tail.size
				}
				for j := nb - 1; j >= 0; j-- {
					block[j] = GoalStack{
						entry: GoalEntry{Goal: r.sh.mach.BodyGoal(j), Caller: c.ID, Pos: j},
						tail:  tail,
						size:  base + nb - j,
					}
					tail = &block[j]
				}
			}
			// Body goals can mint frame slots the head never touched, so
			// the frame is taken only after the body is built.
			cp.frame = r.sh.mach.TakeFrame()
			cp.block = block
			r.takeAlt(cp, i, c.ID)
			r.goals = tail
			return true
		}
		return false
	case cpKB:
		for cp.next < len(cp.kbCands) {
			i := cp.next
			cp.next++
			c := cp.kbCands[i]
			head, frame := c.HeadForUnify()
			if _, ok := r.unify(cp.goal, head); !ok {
				r.sh.st.Undo(cp.mark)
				continue
			}
			tail := cp.tail
			var block []GoalStack
			if nb := len(c.Body); nb > 0 {
				frame = c.EnsureFrame(frame)
				block = r.sh.blocks.get(nb)
				base := 0
				if tail != nil {
					base = tail.size
				}
				for j := nb - 1; j >= 0; j-- {
					block[j] = GoalStack{
						entry: GoalEntry{Goal: c.InstantiateGoal(j, frame), Caller: c.ID, Pos: j},
						tail:  tail,
						size:  base + nb - j,
					}
					tail = &block[j]
				}
			}
			cp.frame = nil // kb activation frames are not pool-minted
			cp.block = block
			r.takeAlt(cp, i, c.ID)
			r.goals = tail
			return true
		}
		return false
	default: // cpDeltas
		if cp.next < len(cp.alts) {
			alt := cp.alts[cp.next]
			cp.next++
			for _, b := range alt {
				r.env.Bind(b.Var, b.Val)
			}
			r.goals = cp.tail
			r.stats.Generated++
			return true
		}
		return false
	}
}

// takeAlt records taking a clause alternative: extend the chain, price
// the arc, descend one level.
func (r *TrailRun) takeAlt(cp *choicePoint, i int, callee kb.ClauseID) {
	arc := kb.Arc{Caller: cp.entry.Caller, Pos: cp.entry.Pos, Callee: callee}
	var w float64
	if cp.weights != nil {
		w = cp.weights[i]
	} else {
		w = r.arcWeight(arc)
	}
	r.chain = append(r.chain, arc)
	r.bound = cp.bound + w
	r.depth = cp.depth + 1
	r.stats.Generated++
}

// arcWeight prices arc in the current chain context; the chain is at the
// parent's length whenever this runs, so the context arc is the parent's
// last decision, matching Expander.arcWeight.
func (r *TrailRun) arcWeight(arc kb.Arc) float64 {
	if cs, ok := r.cfg.Weights.(weights.ContextualStore); ok {
		if n := len(r.chain); n > 0 {
			return cs.WeightIn(r.chain[n-1], arc)
		}
		return cs.WeightIn(weights.RootContext, arc)
	}
	return r.cfg.Weights.Weight(arc)
}

func (r *TrailRun) unify(a, b term.Term) (*term.Env, bool) {
	if r.cfg.OccursCheck {
		return unify.UnifyOC(r.env, a, b)
	}
	return unify.Unify(r.env, a, b)
}

// backtrack rewinds to the innermost choice point with an untried
// alternative: undo its trail segment, recycle the taken alternative's
// frame and goal block, restore chain/depth/bound, and try the next
// candidate. Exhausted choice points pop silently — their node produced
// children, so it was no failure.
func (r *TrailRun) backtrack() bool {
	for len(r.cps) > 0 {
		cp := &r.cps[len(r.cps)-1]
		r.sh.st.Undo(cp.mark)
		r.sh.cpool.Release(cp.compMark)
		if cp.frame != nil {
			r.sh.pool.Put(cp.frame)
			cp.frame = nil
		}
		if cp.block != nil {
			r.sh.blocks.put(cp.block)
			cp.block = nil
		}
		r.chain = r.chain[:cp.chainLen]
		r.depth = cp.depth
		r.bound = cp.bound
		if r.tryNext(cp) {
			return true
		}
		r.cps = r.cps[:len(r.cps)-1]
	}
	return false
}

// extract materializes the current solution. Bindings are detached from
// the store (pool-recycled variables replaced by standalone ones) and
// keyed by the original query variables; the chain is copied out of the
// machine's mutable buffer.
func (r *TrailRun) extract() Solution {
	b := make(map[string]term.Term, len(r.queryVars))
	if len(r.queryVars) > 0 {
		d := term.Detacher{Env: r.env, Subst: r.fresh}
		for _, v := range r.queryVars {
			b[v.String()] = d.Detach(v)
		}
	}
	chain := make([]kb.Arc, len(r.chain))
	copy(chain, r.chain)
	return Solution{Bindings: b, Bound: r.bound, Chain: chain, Depth: r.depth}
}

// ResolveAnswer deep-resolves t — a term over the original (pre-run)
// query variables — against the store at the current solution, detached
// from pooled frames. Meaningful only immediately after Next yielded a
// solution; table generators snapshot surviving answers out with it.
func (r *TrailRun) ResolveAnswer(t term.Term) term.Term {
	d := term.Detacher{Env: r.env, Subst: r.fresh}
	return d.Detach(t)
}
