package engine

import (
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/weights"
)

func TestNegationGroundSuccess(t *testing.T) {
	got := runBuiltinQuery(t, "p(a).", "\\+(p(b))")
	if len(got) != 1 {
		t.Errorf("\\+(p(b)) should succeed: %v", got)
	}
}

func TestNegationGroundFailure(t *testing.T) {
	got := runBuiltinQuery(t, "p(a).", "\\+(p(a))")
	if len(got) != 0 {
		t.Errorf("\\+(p(a)) should fail: %v", got)
	}
}

func TestNegationUnknownPredicate(t *testing.T) {
	got := runBuiltinQuery(t, "p(a).", "\\+(missing(x))")
	if len(got) != 1 {
		t.Errorf("negation of unprovable goal should succeed: %v", got)
	}
}

func TestNegationThroughRules(t *testing.T) {
	src := `
reach(X) :- edge(a, X).
reach(X) :- edge(a, Y), edge(Y, X).
edge(a, b). edge(b, c).
`
	if got := runBuiltinQuery(t, src, "\\+(reach(c))"); len(got) != 0 {
		t.Error("reach(c) is provable through the rule chain")
	}
	if got := runBuiltinQuery(t, src, "\\+(reach(z))"); len(got) != 1 {
		t.Error("reach(z) is not provable")
	}
}

func TestNegationDoesNotBind(t *testing.T) {
	// \+ must never export bindings: X stays free afterwards.
	src := "p(a).\nq(b)."
	got := runBuiltinQuery(t, src, "\\+(p(z)), q(X)")
	if len(got) != 1 || got[0] != "X = b" {
		t.Errorf("got %v", got)
	}
}

func TestNegationSeesOuterBindings(t *testing.T) {
	src := "p(a).\nitem(a). item(b)."
	// Select the items that are NOT p: classic NAF filtering.
	got := runBuiltinQuery(t, src, "item(X), \\+(p(X))")
	if len(got) != 1 || got[0] != "X = b" {
		t.Errorf("got %v", got)
	}
}

func TestDoubleNegation(t *testing.T) {
	if got := runBuiltinQuery(t, "p(a).", "\\+(\\+(p(a)))"); len(got) != 1 {
		t.Error("double negation of a provable goal should succeed")
	}
	if got := runBuiltinQuery(t, "p(a).", "\\+(\\+(p(b)))"); len(got) != 0 {
		t.Error("double negation of an unprovable goal should fail")
	}
}

func TestNegationAddsNoWeight(t *testing.T) {
	db, _, err := kb.LoadString("p(a).\nq(b).")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExpander(db, weights.NewUniform(weights.DefaultConfig()))
	gs, _ := parse.Query("\\+(p(z)), q(Y)")
	root := exp.Root(gs)
	children, err := exp.Expand(root)
	if err != nil || len(children) != 1 {
		t.Fatalf("expand: %v, %d children", err, len(children))
	}
	if children[0].Bound != 0 || children[0].Depth != 0 {
		t.Errorf("negation child bound=%v depth=%d, want 0/0", children[0].Bound, children[0].Depth)
	}
}

func TestNegationRespectsDepthLimit(t *testing.T) {
	// The inner proof attempt of a cyclic goal is cut by the depth limit,
	// so \+(loop) terminates (and succeeds: no finite proof exists).
	db, _, err := kb.LoadString("loop :- loop.")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExpander(db, weights.NewUniform(weights.Config{N: 16, A: 12}))
	gs, _ := parse.Query("\\+(loop)")
	root := exp.Root(gs)
	children, err := exp.Expand(root)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(children) != 1 {
		t.Error("\\+(loop) should succeed under the depth limit")
	}
}

func TestNegationErrorPropagates(t *testing.T) {
	db, _, err := kb.LoadString("bad :- X is Y + 1, X > 0.")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExpander(db, weights.NewUniform(weights.DefaultConfig()))
	gs, _ := parse.Query("\\+(bad)")
	root := exp.Root(gs)
	if _, err := exp.Expand(root); err == nil {
		t.Error("inner arithmetic error must surface")
	}
}
