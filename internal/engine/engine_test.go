package engine

import (
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/term"
	"blog/internal/weights"
)

const fig1 = `
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).
`

func setup(t testing.TB, src string) (*kb.DB, *Expander) {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	return db, NewExpander(db, weights.NewUniform(weights.DefaultConfig()))
}

func goals(t testing.TB, q string) []term.Term {
	t.Helper()
	gs, err := parse.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func TestGoalStack(t *testing.T) {
	var s *GoalStack
	if s.Len() != 0 {
		t.Error("empty stack len")
	}
	if _, ok := s.Top(); ok {
		t.Error("empty stack should have no top")
	}
	g1 := GoalEntry{Goal: term.NewAtom("a")}
	g2 := GoalEntry{Goal: term.NewAtom("b")}
	s2 := PushGoals(s, []GoalEntry{g1, g2})
	if s2.Len() != 2 {
		t.Errorf("len = %d", s2.Len())
	}
	top, _ := s2.Top()
	if top.Goal != term.NewAtom("a") {
		t.Error("push order wrong: first entry must be on top")
	}
	if s2.Pop().Len() != 1 {
		t.Error("pop should drop one")
	}
	// Persistence: s2 unchanged after further pushes.
	s3 := PushGoals(s2.Pop(), []GoalEntry{{Goal: term.NewAtom("c")}})
	if top2, _ := s2.Top(); top2.Goal != term.NewAtom("a") {
		t.Error("s2 mutated")
	}
	if top3, _ := s3.Top(); top3.Goal != term.NewAtom("c") {
		t.Error("s3 top wrong")
	}
}

func TestArcList(t *testing.T) {
	var l *ArcList
	if l.Len() != 0 || len(l.Slice()) != 0 {
		t.Error("empty arc list")
	}
	a1 := kb.Arc{Caller: kb.Query, Pos: 0, Callee: 0}
	a2 := kb.Arc{Caller: 0, Pos: 0, Callee: 1}
	l2 := l.Extend(a1).Extend(a2)
	s := l2.Slice()
	if len(s) != 2 || s[0] != a1 || s[1] != a2 {
		t.Errorf("slice = %v (must be root-first)", s)
	}
}

func TestRootNode(t *testing.T) {
	_, exp := setup(t, fig1)
	root := exp.Root(goals(t, "gf(sam,G)"))
	if root.Goals.Len() != 1 || !root.IsSolution() == false && root.IsSolution() {
		t.Error("root should have 1 goal")
	}
	e, _ := root.Goals.Top()
	if e.Caller != kb.Query || e.Pos != 0 {
		t.Errorf("root goal coordinates = %v/%v", e.Caller, e.Pos)
	}
	if root.Bound != 0 || root.Depth != 0 {
		t.Error("root bound/depth must be zero")
	}
}

func TestExpandMatchesRules(t *testing.T) {
	_, exp := setup(t, fig1)
	root := exp.Root(goals(t, "gf(sam,G)"))
	children, err := exp.Expand(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("got %d children, want 2 (two gf rules)", len(children))
	}
	c0 := children[0]
	if c0.Goals.Len() != 2 {
		t.Errorf("child goals = %d, want 2 (rule body)", c0.Goals.Len())
	}
	top, _ := c0.Goals.Top()
	if top.Caller != 0 || top.Pos != 0 {
		t.Errorf("body goal coordinates = %d/%d, want 0/0", top.Caller, top.Pos)
	}
	// First body goal must be f(sam, Y) under the child env.
	if got := c0.Env.Format(top.Goal); got != "f(sam,Y)" {
		t.Errorf("first body goal = %s", got)
	}
	if c0.Depth != 1 || c0.Chain.Len() != 1 {
		t.Error("child depth/chain wrong")
	}
	arc := c0.Chain.Slice()[0]
	want := kb.Arc{Caller: kb.Query, Pos: 0, Callee: 0}
	if arc != want {
		t.Errorf("arc = %v, want %v", arc, want)
	}
}

func TestExpandUniformBound(t *testing.T) {
	_, exp := setup(t, fig1)
	root := exp.Root(goals(t, "gf(sam,G)"))
	children, _ := exp.Expand(root)
	for _, c := range children {
		if c.Bound != 1 {
			t.Errorf("uniform child bound = %v, want 1", c.Bound)
		}
	}
}

func TestExpandFactConsumesGoal(t *testing.T) {
	_, exp := setup(t, fig1)
	root := exp.Root(goals(t, "f(sam,Y)"))
	children, err := exp.Expand(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 1 {
		t.Fatalf("got %d children", len(children))
	}
	if !children[0].IsSolution() {
		t.Error("fact match should yield a solution node")
	}
}

func TestExpandFailure(t *testing.T) {
	_, exp := setup(t, fig1)
	root := exp.Root(goals(t, "f(nobody,Y)"))
	children, err := exp.Expand(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 0 {
		t.Error("unknown constant should have no children")
	}
	// Unknown predicate behaves the same way.
	root2 := exp.Root(goals(t, "zzz(a)"))
	children2, err := exp.Expand(root2)
	if err != nil || len(children2) != 0 {
		t.Error("unknown predicate should fail silently")
	}
}

func TestExpandDepthLimit(t *testing.T) {
	db, _, err := kb.LoadString("loop(X) :- loop(X).")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExpander(db, weights.NewUniform(weights.Config{N: 16, A: 4}))
	n := exp.Root(goals(t, "loop(a)"))
	for i := 0; i < 4; i++ {
		cs, err := exp.Expand(n)
		if err != nil {
			t.Fatalf("depth %d: %v", i, err)
		}
		n = cs[0]
	}
	if _, err := exp.Expand(n); err != ErrDepthLimit {
		t.Errorf("got %v, want ErrDepthLimit", err)
	}
}

func TestExpandSolutionNodeErrors(t *testing.T) {
	_, exp := setup(t, fig1)
	n := &Node{} // empty goals = solution
	if _, err := exp.Expand(n); err == nil {
		t.Error("expanding a solution node must error")
	}
}

func TestVariableRenamingAcrossActivations(t *testing.T) {
	// Two activations of the same clause must not share variables.
	db, _, err := kb.LoadString("p(X, Y) :- q(X), q(Y).\nq(1).\nq(2).")
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExpander(db, weights.NewUniform(weights.DefaultConfig()))
	root := exp.Root(goals(t, "p(A,B)"))
	l1, _ := exp.Expand(root)
	l2, _ := exp.Expand(l1[0]) // q(X): 2 matches
	if len(l2) != 2 {
		t.Fatalf("q(X) matches = %d", len(l2))
	}
	l3, _ := exp.Expand(l2[0]) // q(Y): 2 matches even though X bound
	if len(l3) != 2 {
		t.Fatalf("q(Y) matches = %d, want 2", len(l3))
	}
}

func TestExtractSolution(t *testing.T) {
	_, exp := setup(t, fig1)
	qgoals := goals(t, "f(sam,Y)")
	qvars := term.Vars(qgoals[0], nil)
	root := exp.Root(qgoals)
	children, _ := exp.Expand(root)
	sol := Extract(children[0], qvars)
	if got := sol.Bindings["Y"].String(); got != "larry" {
		t.Errorf("Y = %s, want larry", got)
	}
	if sol.Depth != 1 || len(sol.Chain) != 1 {
		t.Error("solution chain metadata wrong")
	}
	if got := sol.Format(qvars); got != "Y = larry" {
		t.Errorf("Format = %q", got)
	}
	if got := (Solution{}).Format(nil); got != "true" {
		t.Errorf("ground query format = %q", got)
	}
}

func TestWeightedBoundAccumulates(t *testing.T) {
	db, _, err := kb.LoadString(fig1)
	if err != nil {
		t.Fatal(err)
	}
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	arcRule0 := kb.Arc{Caller: kb.Query, Pos: 0, Callee: 0}
	tab.Set(arcRule0, 3)
	exp := NewExpander(db, tab)
	root := exp.Root(goals(t, "gf(sam,G)"))
	children, _ := exp.Expand(root)
	if children[0].Bound != 3 {
		t.Errorf("bound = %v, want known 3", children[0].Bound)
	}
	if children[1].Bound != tab.Config().UnknownWeight() {
		t.Errorf("bound = %v, want unknown N+1", children[1].Bound)
	}
}

func TestRecordTreeLabels(t *testing.T) {
	_, exp := setup(t, fig1)
	exp.RecordTree = true
	root := exp.Root(goals(t, "f(sam,Y)"))
	children, _ := exp.Expand(root)
	if children[0].Parent != root {
		t.Error("parent link missing")
	}
	if children[0].Label != "f(sam,larry)" {
		t.Errorf("label = %q", children[0].Label)
	}
}

func BenchmarkExpandFanout(b *testing.B) {
	db, _, err := kb.LoadString(fig1)
	if err != nil {
		b.Fatal(err)
	}
	exp := NewExpander(db, weights.NewUniform(weights.DefaultConfig()))
	gs, _ := parse.Query("f(X,Y)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := exp.Root(gs)
		if cs, _ := exp.Expand(root); len(cs) != 6 {
			b.Fatal("bad fanout")
		}
	}
}
