package solve

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/table"
	"blog/internal/term"
	"blog/internal/vm"
	"blog/internal/weights"
	"blog/internal/workload"
)

// fuzzCase maps a generator selector and seed to a program plus its
// candidate queries. The cases cover every resolution feature the VM
// compiles (constants, repeated variables, nested and ground compounds,
// first-argument dispatch) and every fallback it must interleave with
// (builtins, negation as failure, tabled calls).
func fuzzCase(gen uint8, seed int64) (src string, queries []string, tabled bool) {
	switch gen % 7 {
	case 0:
		return workload.FamilyTree(3, 2), []string{"gf(p0, G)", "anc(p0, X)", "gf(X, Y)", "anc(X, p5)"}, false
	case 1:
		w, d := 2+int(seed%5+5)%5, 2+int(seed%4+4)%4
		return workload.DeepFailure(w, d), []string{"top(W)", "top(win)"}, false
	case 2:
		return workload.DAG(3, 3, 2, seed), []string{"path(n0_0, Z)", "path(X, Z)", "path(X, n2_1)"}, false
	case 3:
		return workload.RandomProgram(3, 3, 3, 4, seed),
			[]string{"l2p0(X, Y)", "l2p1(c0, Y)", "l1p2(X, c1)", "l2p2(X, X)"}, false
	case 4:
		// Left-recursive transitive closure over a cyclic graph: only
		// terminates tabled, and the tabled generators run compiled.
		return workload.Cyclic(8, 4, seed), []string{"path(v0, Z)", "path(X, v3)", "path(v2, v5)"}, true
	case 5:
		// Builtins and negation interleaved with compiled user clauses.
		return `
			num(1). num(2). num(3). num(4).
			big(X) :- num(X), X > 2.
			double(X, Y) :- num(X), Y is X * 2.
			small(X) :- num(X), \+(big(X)).
			samepair(X, Y) :- num(X), num(Y), X =:= Y.
		`, []string{"big(X)", "double(X, Y)", "small(X)", "samepair(A, B)"}, false
	default:
		return structured(seed), []string{
			"q(A, B)", "q(g(A), B)", "r(A)", "box(f(A, B), C)", "pair(P)", "pair(mk(A, A))",
		}, false
	}
}

// structured generates random facts with nested compound arguments plus
// fixed rules over them, exercising opStruct read/write mode, register
// capture through structure, and the ground-compound constant pool.
func structured(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	atoms := []string{"a", "b", "c", "d"}
	var gterm func(depth int) string
	gterm = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(4) == 0 {
				return fmt.Sprintf("%d", rng.Intn(5))
			}
			return atoms[rng.Intn(len(atoms))]
		}
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("f(%s, %s)", gterm(depth-1), gterm(depth-1))
		}
		return fmt.Sprintf("g(%s)", gterm(depth-1))
	}
	var b strings.Builder
	for i := 0; i < 6+rng.Intn(6); i++ {
		fmt.Fprintf(&b, "box(%s, %s).\n", gterm(2), gterm(2))
	}
	// A nonground fact with a repeated variable (write mode must mint one
	// shared fresh variable) and structural rules over box/2.
	b.WriteString("pair(mk(X, X)).\n")
	b.WriteString("q(X, Y) :- box(X, Y).\n")
	b.WriteString("q(g(X), f(Y, Y)) :- box(X, Y).\n")
	b.WriteString("r(X) :- q(X, X).\n")
	b.WriteString("r(f(X, Y)) :- box(X, Y).\n")
	return b.String()
}

// canonSolution renders one solution with unbound variables normalized to
// appearance order, so compiled and tree-walk runs compare at term level
// regardless of fresh-variable naming.
func canonSolution(s engine.Solution, qvars []*term.Var) string {
	names := map[*term.Var]int{}
	var b strings.Builder
	for i, v := range qvars {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(canonTerm(s.Bindings[v.String()], names))
	}
	fmt.Fprintf(&b, " |%.9g", s.Bound)
	return b.String()
}

func canonTerm(t term.Term, names map[*term.Var]int) string {
	switch x := t.(type) {
	case *term.Var:
		id, ok := names[x]
		if !ok {
			id = len(names)
			names[x] = id
		}
		return fmt.Sprintf("_%d", id)
	case *term.Compound:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = canonTerm(a, names)
		}
		return x.FunctorName() + "(" + strings.Join(parts, ",") + ")"
	case nil:
		return "<nil>"
	default:
		return t.String()
	}
}

// runEngine executes one query on a fresh database, weight store, and
// (when tabled) table space, on either the compiled or the oracle path.
func runEngine(t *testing.T, src, query string, strat Strategy, noVM, tabled bool) *Response {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	goals, err := parse.Query(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	req := &Request{
		DB:            db,
		Store:         weights.NewUniform(weights.DefaultConfig()),
		Goals:         goals,
		Strategy:      strat,
		MaxExpansions: 20000,
		MaxDepth:      48,
		NoVM:          noVM,
	}
	if tabled {
		req.Tables = table.NewSpace(db, table.Config{})
	}
	if strat == Parallel {
		req.Workers = 4
	}
	resp, err := Do(context.Background(), req)
	if err != nil {
		t.Fatalf("solve (%v, noVM=%v): %v", strat, noVM, err)
	}
	return resp
}

func canonAll(resp *Response) []string {
	out := make([]string, len(resp.Solutions))
	for i, s := range resp.Solutions {
		out[i] = canonSolution(s, resp.QueryVars)
	}
	return out
}

// FuzzVMResolve is the differential oracle for the bytecode engine:
// random programs and queries must produce identical solution sets,
// bounds, and completion status compiled and tree-walked, under all four
// strategies. Sequential strategies additionally must agree step for step
// on every work counter, because compiled candidate order matches the
// tree-walker's clause-ID order exactly.
func FuzzVMResolve(f *testing.F) {
	for g := uint8(0); g < 7; g++ {
		f.Add(g, int64(1), uint8(0))
		f.Add(g, int64(42), uint8(1))
		f.Add(g, int64(-7), uint8(2))
	}
	f.Fuzz(func(t *testing.T, gen uint8, seed int64, qsel uint8) {
		if !vm.Enabled {
			t.Skip("BLOG_COMPILED=off disables the engine under test")
		}
		src, queries, tabled := fuzzCase(gen, seed)
		query := queries[int(qsel)%len(queries)]
		for _, strat := range []Strategy{DFS, BFS, BestFirst, Parallel} {
			oracle := runEngine(t, src, query, strat, true, tabled)
			compiled := runEngine(t, src, query, strat, false, tabled)
			if oracle.Stats.VMDispatched != 0 {
				t.Fatalf("%v: oracle run dispatched %d goals to the VM", strat, oracle.Stats.VMDispatched)
			}
			if strat == Parallel {
				// Worker interleaving is nondeterministic; compare the
				// solution multiset, and only when both runs proved it
				// complete (a budget cut truncates unpredictably).
				if !oracle.Exhausted || !compiled.Exhausted {
					continue
				}
				a, b := canonAll(oracle), canonAll(compiled)
				// Response order is already sorted by the solver for
				// Parallel; canonical renaming preserves comparability.
				if fmt.Sprint(a) != fmt.Sprint(b) {
					t.Fatalf("%v: solutions diverge\noracle:   %v\ncompiled: %v", strat, a, b)
				}
				continue
			}
			if oracle.Exhausted != compiled.Exhausted {
				t.Fatalf("%v: Exhausted %v (oracle) vs %v (compiled)", strat, oracle.Exhausted, compiled.Exhausted)
			}
			a, b := canonAll(oracle), canonAll(compiled)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("%v: solutions diverge\noracle:   %v\ncompiled: %v", strat, a, b)
			}
			os, cs := oracle.Stats, compiled.Stats
			if os.Expanded != cs.Expanded || os.Generated != cs.Generated ||
				os.Failures != cs.Failures || os.DepthCutoffs != cs.DepthCutoffs ||
				os.Pruned != cs.Pruned || os.MaxDepth != cs.MaxDepth {
				t.Fatalf("%v: stats diverge\noracle:   %+v\ncompiled: %+v", strat, os, cs)
			}
			if !tabled && cs.Expanded > 0 && cs.Generated > 0 && cs.VMDispatched == 0 {
				t.Fatalf("%v: compiled run never dispatched to the VM (stats %+v)", strat, cs)
			}
		}
	})
}
