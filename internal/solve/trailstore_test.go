package solve

import (
	"context"
	"fmt"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/table"
	"blog/internal/weights"
)

// runDFSRep executes one query under sequential DFS on the representation
// selected by noTrail: the destructive trail store (false) or the
// persistent-Env frontier (true), everything else held equal.
func runDFSRep(t *testing.T, src, query string, noTrail, tabled, prune bool, maxSol int) *Response {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	goals, err := parse.Query(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	req := &Request{
		DB:            db,
		Store:         weights.NewUniform(weights.DefaultConfig()),
		Goals:         goals,
		Strategy:      DFS,
		MaxSolutions:  maxSol,
		MaxExpansions: 20000,
		MaxDepth:      48,
		Prune:         prune,
		NoTrail:       noTrail,
	}
	if tabled {
		req.Tables = table.NewSpace(db, table.Config{})
	}
	resp, err := Do(context.Background(), req)
	if err != nil {
		t.Fatalf("solve (noTrail=%v): %v", noTrail, err)
	}
	return resp
}

// FuzzTrailStore is the differential oracle for the trail-store machine:
// on random programs and queries, sequential DFS must produce the same
// solutions in the same order, with the same bounds, completion status and
// work counters, whether bindings live in the destructive trail store or
// the persistent-Env frontier. Two variants run per case: exhaustive
// enumeration, and branch-and-bound pruning capped at the first solution —
// the mode where choice-point bookkeeping (bounds restored on backtrack,
// prune checks at arrival) is easiest to get subtly wrong.
func FuzzTrailStore(f *testing.F) {
	for g := uint8(0); g < 7; g++ {
		f.Add(g, int64(1), uint8(0))
		f.Add(g, int64(42), uint8(1))
		f.Add(g, int64(-7), uint8(2))
	}
	f.Fuzz(func(t *testing.T, gen uint8, seed int64, qsel uint8) {
		src, queries, tabled := fuzzCase(gen, seed)
		query := queries[int(qsel)%len(queries)]
		for _, v := range []struct {
			name   string
			prune  bool
			maxSol int
		}{
			{"exhaustive", false, 0},
			{"prune-first", true, 1},
		} {
			env := runDFSRep(t, src, query, true, tabled, v.prune, v.maxSol)
			trail := runDFSRep(t, src, query, false, tabled, v.prune, v.maxSol)
			if env.Stats.Representation != search.RepPersistentEnv {
				t.Fatalf("%s: NoTrail run reports representation %q", v.name, env.Stats.Representation)
			}
			if trail.Stats.Representation != search.RepTrailStore {
				t.Fatalf("%s: trail run reports representation %q", v.name, trail.Stats.Representation)
			}
			if env.Exhausted != trail.Exhausted {
				t.Fatalf("%s: Exhausted %v (env) vs %v (trail)", v.name, env.Exhausted, trail.Exhausted)
			}
			// Sequential DFS is deterministic: solution order and bounds
			// must match exactly, not just as sets.
			a, b := canonAll(env), canonAll(trail)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("%s: solutions diverge\nenv:   %v\ntrail: %v", v.name, a, b)
			}
			es, ts := env.Stats, trail.Stats
			if es.Expanded != ts.Expanded || es.Failures != ts.Failures ||
				es.DepthCutoffs != ts.DepthCutoffs || es.Pruned != ts.Pruned ||
				es.MaxDepth != ts.MaxDepth {
				t.Fatalf("%s: stats diverge\nenv:   %+v\ntrail: %+v", v.name, es, ts)
			}
			// The trail machine generates children lazily (one per taken
			// alternative), the frontier engine eagerly (all per expansion),
			// so Generated only agrees once every alternative was taken —
			// i.e. on exhausted runs.
			if env.Exhausted && trail.Exhausted && es.Generated != ts.Generated {
				t.Fatalf("%s: Generated %d (env) vs %d (trail)", v.name, es.Generated, ts.Generated)
			}
		}
	})
}
