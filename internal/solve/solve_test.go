package solve

import (
	"context"
	"errors"
	"testing"
	"time"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/term"
	"blog/internal/weights"
)

const familySrc = `
f(sam, bob). f(bob, den). f(bob, peg).
m(sam, liz). m(liz, joe).
gf(X, Z) :- f(X, Y), f(Y, Z).
gf(X, Z) :- m(X, Y), f(Y, Z).
`

func load(t testing.TB, src string) *kb.DB {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func q(t testing.TB, s string) []term.Term {
	t.Helper()
	gs, err := parse.Query(s)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func req(t testing.TB, db *kb.DB, query string, strat Strategy) *Request {
	t.Helper()
	return &Request{
		DB:       db,
		Store:    weights.NewUniform(weights.DefaultConfig()),
		Goals:    q(t, query),
		Strategy: strat,
	}
}

// everyStrategy enumerates the four dispatchable disciplines as requests.
func everyStrategy(t testing.TB, db *kb.DB, query string) map[string]*Request {
	and := req(t, db, query, DFS)
	and.AndParallel = true
	par := req(t, db, query, Parallel)
	par.Workers = 4
	return map[string]*Request{
		"dfs":          req(t, db, query, DFS),
		"bfs":          req(t, db, query, BFS),
		"best-first":   req(t, db, query, BestFirst),
		"parallel":     par,
		"and-parallel": and,
	}
}

func TestSolverForDispatch(t *testing.T) {
	db := load(t, familySrc)
	cases := []struct {
		name string
		req  *Request
		want Solver
	}{
		{"dfs", req(t, db, "gf(sam,G)", DFS), Sequential{}},
		{"bfs", req(t, db, "gf(sam,G)", BFS), Sequential{}},
		{"best", req(t, db, "gf(sam,G)", BestFirst), Sequential{}},
		{"parallel", req(t, db, "gf(sam,G)", Parallel), ORParallel{}},
	}
	and := req(t, db, "gf(sam,G)", BestFirst)
	and.AndParallel = true
	cases = append(cases, struct {
		name string
		req  *Request
		want Solver
	}{"andpar", and, ANDParallel{}})

	for _, c := range cases {
		s, err := SolverFor(c.req)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if s != c.want {
			t.Errorf("%s: solver = %T, want %T", c.name, s, c.want)
		}
	}

	bad := req(t, db, "gf(sam,G)", Parallel)
	bad.AndParallel = true
	if _, err := SolverFor(bad); err == nil {
		t.Error("Parallel+AndParallel must be rejected")
	}
	if _, err := SolverFor(req(t, db, "gf(sam,G)", Strategy(99))); err == nil {
		t.Error("unknown strategy must be rejected")
	}
}

func TestDoAgreesAcrossStrategies(t *testing.T) {
	db := load(t, familySrc)
	var want int
	for _, name := range []string{"dfs", "bfs", "best-first", "parallel", "and-parallel"} {
		r := everyStrategy(t, db, "gf(sam,G)")[name]
		resp, err := Do(context.Background(), r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !resp.Exhausted {
			t.Errorf("%s: full run must report exhaustion", name)
		}
		if name == "dfs" {
			want = len(resp.Solutions)
			if want == 0 {
				t.Fatal("dfs found no solutions")
			}
			continue
		}
		if len(resp.Solutions) != want {
			t.Errorf("%s: %d solutions, dfs found %d", name, len(resp.Solutions), want)
		}
		for _, s := range resp.Solutions {
			if s.Depth == 0 {
				t.Errorf("%s: solution missing depth", name)
			}
		}
	}
}

func TestDoValidates(t *testing.T) {
	db := load(t, familySrc)
	for name, r := range map[string]*Request{
		"nil db":    {Store: weights.NewUniform(weights.DefaultConfig()), Goals: q(t, "gf(sam,G)")},
		"nil store": {DB: db, Goals: q(t, "gf(sam,G)")},
		"no goals":  {DB: db, Store: weights.NewUniform(weights.DefaultConfig())},
	} {
		if _, err := Do(context.Background(), r); err == nil {
			t.Errorf("%s must be rejected", name)
		}
	}
	rec := req(t, db, "gf(sam,G)", Parallel)
	rec.RecordTree = true
	if _, err := Do(context.Background(), rec); err == nil {
		t.Error("parallel tree recording must be rejected")
	}
}

// TestCancelledContextEveryStrategy: a context cancelled before the run
// must surface context.Canceled from every engine.
func TestCancelledContextEveryStrategy(t *testing.T) {
	db := load(t, familySrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, r := range everyStrategy(t, db, "gf(sam,G)") {
		if _, err := Do(ctx, r); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestCancelMidSearchEveryStrategy cancels while an unbounded search is in
// flight and checks for a prompt return.
func TestCancelMidSearchEveryStrategy(t *testing.T) {
	db := load(t, "loop :- loop.\nloop2 :- loop2.\n")
	for name, r := range everyStrategy(t, db, "loop, loop2") {
		r.MaxDepth = 1 << 20
		r.MaxExpansions = 1 << 62
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, err := Do(ctx, r)
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s: err = %v, want context.Canceled", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: no return within 5s of cancellation (started %v ago)", name, time.Since(start))
		}
	}
}

func TestDeadlineExceeded(t *testing.T) {
	db := load(t, "loop :- loop.\n")
	r := req(t, db, "loop", DFS)
	r.MaxDepth = 1 << 20
	r.MaxExpansions = 1 << 62
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := Do(ctx, r); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestParallelSolutionsStableOrder(t *testing.T) {
	db := load(t, familySrc)
	r := req(t, db, "gf(sam,G)", Parallel)
	r.Workers = 8
	first, err := Do(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Do(context.Background(), req(t, db, "gf(sam,G)", Parallel))
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Solutions) != len(first.Solutions) {
			t.Fatalf("run %d: %d solutions, want %d", i, len(again.Solutions), len(first.Solutions))
		}
		for j := range again.Solutions {
			a := again.Solutions[j].Format(again.QueryVars)
			b := first.Solutions[j].Format(first.QueryVars)
			if a != b {
				t.Fatalf("run %d: order drifted: %q vs %q", i, a, b)
			}
		}
	}
}

func TestNewIterStreams(t *testing.T) {
	db := load(t, familySrc)
	it, _, err := NewIter(context.Background(), req(t, db, "gf(sam,G)", DFS))
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Error("iterator produced no solutions")
	}
	if _, _, err := NewIter(context.Background(), req(t, db, "gf(sam,G)", Parallel)); err == nil {
		t.Error("parallel streaming must be rejected")
	}
}

func TestNewIterCancelled(t *testing.T) {
	db := load(t, "loop :- loop.\n")
	r := req(t, db, "loop", DFS)
	r.MaxDepth = 1 << 20
	r.MaxExpansions = 1 << 62
	ctx, cancel := context.WithCancel(context.Background())
	it, _, err := NewIter(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, ok, err := it.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Errorf("Next after cancel: ok=%v err=%v", ok, err)
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, name := range []string{"dfs", "bfs", "best", "best-first", "parallel"} {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := name
		if name == "best" {
			want = "best-first"
		}
		if s.String() != want {
			t.Errorf("ParseStrategy(%q).String() = %q", name, s)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy must error")
	}
}

// TestAndParallelRespectsSearchStrategy: the AND-parallel engine must run
// its groups under the requested sequential discipline (a best-first group
// with learned weights behaves differently from DFS; here we just assert
// the solver accepts all three and agrees on the result).
func TestAndParallelRespectsSearchStrategy(t *testing.T) {
	db := load(t, familySrc+"\ncolor(red). color(blue).\n")
	var want int
	for i, strat := range []Strategy{DFS, BFS, BestFirst} {
		r := req(t, db, "gf(sam,G), color(C)", strat)
		r.AndParallel = true
		resp, err := Do(context.Background(), r)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if resp.Stats.Groups != 2 {
			t.Errorf("%v: groups = %d, want 2", strat, resp.Stats.Groups)
		}
		if i == 0 {
			want = len(resp.Solutions)
			continue
		}
		if len(resp.Solutions) != want {
			t.Errorf("%v: %d solutions, want %d", strat, len(resp.Solutions), want)
		}
	}
}

// TestNewIterHonorsPrune: streaming requests no longer silently drop the
// branch-and-bound switches (ROADMAP item from PR 2 review).
func TestNewIterHonorsPrune(t *testing.T) {
	src := `
top(X) :- cheap(X).
top(X) :- d1(X).
cheap(a).
d1(X) :- d2(X).
d2(X) :- d3(X).
d3(b).
`
	db := load(t, src)
	r := req(t, db, "top(X)", DFS)
	r.Prune = true
	it, _, err := NewIter(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Errorf("pruned stream served %d solutions, want 1", n)
	}
	if it.Stats().Pruned == 0 {
		t.Error("streaming run should report pruned chains")
	}
}

// TestNewIterRecords: tree/trace recording works on streaming requests
// exactly as on batch ones — recording routes DFS onto the
// persistent-Env frontier and the records grow as the stream is pulled.
// (Replaces the PR 2 rejection, which made Iter the one API recording
// didn't reach.)
func TestNewIterRecords(t *testing.T) {
	db := load(t, familySrc)
	r := req(t, db, "gf(sam,G)", DFS)
	r.RecordTree = true
	r.RecordTrace = true
	it, _, err := NewIter(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if it.Tree() == nil {
		t.Error("RecordTree on a streaming request produced no tree")
	}
	if len(it.Trace()) == 0 {
		t.Error("RecordTrace on a streaming request produced no lines")
	}
	if st := it.Stats(); st.Representation != search.RepPersistentEnv {
		t.Errorf("recording stream ran on %q, want %q", st.Representation, search.RepPersistentEnv)
	}
}

// TestOccursCheckEveryStrategy: the soundness switch reaches all four
// engines — notably Parallel, which used to discard it (ROADMAP item from
// PR 2 review). p only succeeds through the unsound cyclic binding
// Y = f(Y).
func TestOccursCheckEveryStrategy(t *testing.T) {
	db := load(t, "p :- eq(Y, f(Y)).\neq(X, X).\n")
	for name, r := range everyStrategy(t, db, "p") {
		r.OccursCheck = true
		resp, err := Do(context.Background(), r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(resp.Solutions) != 0 {
			t.Errorf("%s: occurs check admitted %d unsound solutions", name, len(resp.Solutions))
		}
	}
	// Sanity: without the check the cyclic unification succeeds.
	r := req(t, db, "p", Parallel)
	r.Workers = 4
	resp, err := Do(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Solutions) != 1 {
		t.Errorf("unsound run found %d solutions, want 1", len(resp.Solutions))
	}
}
