//go:build race

package solve

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation changes allocation behavior; the
// allocation-regression guards skip themselves then.
const raceEnabled = true
