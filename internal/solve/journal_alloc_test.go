package solve

import (
	"context"
	"testing"

	"blog/internal/obs"
	"blog/internal/table"
	"blog/internal/vm"
	"blog/internal/weights"
)

const tabledPathSrc = `
:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(a, b).
edge(b, c).
edge(c, a).
edge(c, d).
`

// TestDFSJournalAllocationBudget extends the search-tier allocation guard
// (internal/search/alloc_guard_test.go) to the journaled tabled path. Two
// properties: a query served from an already-complete table allocates
// within a fixed budget whether or not a journal is attached (the hit path
// emits nothing — accounting is pure atomics), and a full table lifecycle
// (invalidate, re-produce, complete) with the journal attached costs at
// most a handful of allocations over the unjournaled lifecycle — one
// heap-copied Event per transition, never per answer or per expansion.
func TestDFSJournalAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation behavior")
	}
	if !vm.Enabled {
		t.Skip("BLOG_COMPILED=off runs the tree-walking path, which has its own costs")
	}
	db := load(t, tabledPathSrc)
	sp := table.NewSpace(db, table.Config{})
	mkRun := func() func() {
		req := &Request{
			DB:       db,
			Store:    weights.NewUniform(weights.DefaultConfig()),
			Goals:    q(t, "path(a, R)"),
			Strategy: DFS,
			Tables:   sp,
		}
		return func() {
			resp, err := Do(context.Background(), req)
			if err != nil || len(resp.Solutions) != 4 {
				t.Fatalf("run: %d solutions, err %v", len(resp.Solutions), err)
			}
		}
	}
	run := mkRun()
	run() // materialize and complete the table, warm the scratch pools

	// Steady state: every run is served from the complete table. The
	// journal must not change this cost at all — attach it and hold the
	// same absolute budget the unjournaled hit path meets.
	const hitBudget = 120
	if got := testing.AllocsPerRun(50, run); got > hitBudget {
		t.Errorf("tabled hit query (no journal) allocated %.1f times, budget %d", got, hitBudget)
	}
	j := obs.NewJournal(1 << 12)
	sp.SetJournal(j)
	if got := testing.AllocsPerRun(50, run); got > hitBudget {
		t.Errorf("tabled hit query (journal attached) allocated %.1f times, budget %d", got, hitBudget)
	}
	if j.LastSeq() != 0 {
		t.Errorf("hit-path runs emitted %d events, want 0", j.LastSeq())
	}

	// Full lifecycle: each cycle invalidates the space and re-produces the
	// table, which with a journal attached emits exactly the lifecycle
	// events (invalidated, created, completed). Compare against the same
	// cycle with the journal detached; the journal may add only a few
	// allocations per cycle.
	cycle := func() {
		sp.Invalidate("alloc_guard")
		run()
	}
	sp.SetJournal(nil)
	cycle() // settle pool state before measuring
	off := testing.AllocsPerRun(30, cycle)
	sp.SetJournal(j)
	before := j.LastSeq()
	on := testing.AllocsPerRun(30, cycle)
	if on > off+12 {
		t.Errorf("journaled lifecycle allocated %.1f times vs %.1f unjournaled; emission must stay O(transitions)", on, off)
	}
	evs := j.Events(before)
	if len(evs) == 0 {
		t.Fatal("journaled lifecycle emitted no events")
	}
	kinds := map[string]bool{}
	for _, ev := range evs {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{obs.KindTableInvalidated, obs.KindTableCreated, obs.KindTableCompleted} {
		if !kinds[k] {
			t.Errorf("lifecycle journal missing %s events (saw %v)", k, kinds)
		}
	}
}
