package solve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/table"
	"blog/internal/weights"
)

// TestConcurrentRepresentations hammers one database — hence one shared
// compiled Program — from three directions at once (run under -race):
// OR-parallel workers on the persistent-Env representation, sequential
// trail-store DFS queries each owning a recycled destructive store, and
// tabled trail-DFS queries whose table space a fourth goroutine keeps
// invalidating mid-run. Every query must still see its full answer set:
// the Program is read-only shared state, trail scratch is per-run, and an
// invalidated table is simply re-derived by the next consumer.
func TestConcurrentRepresentations(t *testing.T) {
	db, _, err := kb.LoadString(`
		:- table path/2.
		gf(X, Z) :- f(X, Y), f(Y, Z).
		f(sam, larry). f(larry, den). f(larry, doug).
		path(X, Z) :- path(X, Y), edge(Y, Z).
		path(X, Y) :- edge(X, Y).
		edge(a, b). edge(b, c). edge(c, a).
	`)
	if err != nil {
		t.Fatal(err)
	}
	sp := table.NewSpace(db, table.Config{})
	run := func(query string, strat Strategy, tabled bool) (int, error) {
		goals, err := parse.Query(query)
		if err != nil {
			return 0, err
		}
		req := &Request{
			DB:            db,
			Store:         weights.NewUniform(weights.DefaultConfig()),
			Goals:         goals,
			Strategy:      strat,
			MaxExpansions: 20000,
			MaxDepth:      48,
		}
		if tabled {
			req.Tables = sp
		}
		if strat == Parallel {
			req.Workers = 4
		}
		resp, err := Do(context.Background(), req)
		if err != nil {
			return 0, err
		}
		return len(resp.Solutions), nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	check := func(query string, strat Strategy, tabled bool, want int) {
		defer wg.Done()
		got, err := run(query, strat, tabled)
		if err != nil {
			errs <- fmt.Errorf("%s (%v): %v", query, strat, err)
			return
		}
		if got != want {
			errs <- fmt.Errorf("%s (%v): %d solutions, want %d", query, strat, got, want)
		}
	}
	stop := make(chan struct{})
	var inv sync.WaitGroup
	inv.Add(1)
	go func() {
		defer inv.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sp.Invalidate("test")
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(3)
		go check("gf(sam, G)", Parallel, false, 2)
		go check("gf(sam, G)", DFS, false, 2)
		go check("path(a, R)", DFS, true, 3)
	}
	wg.Wait()
	close(stop)
	inv.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
