//go:build !race

package solve

const raceEnabled = false
