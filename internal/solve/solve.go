// Package solve is the unified, context-aware solver runtime behind every
// search discipline of the reproduction. The paper's central claim is that
// one OR-tree chain model can be driven by interchangeable scheduling
// disciplines — Prolog's depth-first baseline, breadth-first, B-LOG's
// weighted best-first branch and bound, the OR-parallel processor network,
// and the section-7 AND-parallel decomposition. This package makes that
// interchangeability literal: a single Request describes a query run
// (goals, weight store, strategy, budgets, learning, recording), a single
// Response carries solutions and unified Stats back, and each engine is a
// Solver behind the same interface. Every run takes a context.Context and
// honors cancellation and deadlines, which is what lets callers multiplex
// heavy concurrent query traffic over one Program.
package solve

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"blog/internal/andpar"
	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/obs"
	"blog/internal/par"
	"blog/internal/search"
	"blog/internal/table"
	"blog/internal/term"
	"blog/internal/vm"
	"blog/internal/weights"
)

// Strategy selects the search discipline. This is the canonical strategy
// enum of the system; the blog facade aliases it and the mapping onto the
// sequential engine's internal enum lives only here (searchStrategy).
type Strategy int

const (
	// DFS is Prolog's depth-first, source-order search.
	DFS Strategy = iota
	// BFS is breadth-first search.
	BFS
	// BestFirst is B-LOG's weighted best-first branch and bound.
	BestFirst
	// Parallel is the OR-parallel best-first engine (live goroutines).
	Parallel
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case DFS:
		return "dfs"
	case BFS:
		return "bfs"
	case BestFirst:
		return "best-first"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy resolves the command-line/REPL spellings of a strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "dfs":
		return DFS, nil
	case "bfs":
		return BFS, nil
	case "best", "best-first":
		return BestFirst, nil
	case "parallel":
		return Parallel, nil
	}
	return 0, fmt.Errorf("solve: unknown strategy %q", name)
}

// searchStrategy maps the canonical enum onto the sequential engine's; ok
// is false for strategies the sequential engine does not implement.
func (s Strategy) searchStrategy() (search.Strategy, bool) {
	switch s {
	case DFS:
		return search.DFS, true
	case BFS:
		return search.BFS, true
	case BestFirst:
		return search.BestFirst, true
	}
	return 0, false
}

// Request describes one query run: what to solve, over which database and
// weight store, under which discipline, and within which budgets.
type Request struct {
	// DB is the clause database; Store supplies (and, with Learn, absorbs)
	// arc weights — a weights.Table, a session overlay, or a conditional
	// store.
	DB    *kb.DB
	Store weights.Store
	// Goals is the parsed conjunction, shared-variable structure intact.
	Goals []term.Term
	// Strategy picks the discipline; AndParallel composes with the three
	// sequential strategies, which then drive each independent goal group.
	Strategy    Strategy
	AndParallel bool

	// Budgets and limits. Zero values mean: all solutions, the engine
	// default expansion cap, and the store's A depth constant.
	MaxSolutions  int
	MaxExpansions uint64
	MaxDepth      int

	// Learning and soundness switches.
	Learn       bool
	Prune       bool
	PruneSlack  float64
	OccursCheck bool

	// NoVM forces the tree-walking resolution path (the differential
	// oracle) instead of the compiled bytecode engine.
	NoVM bool

	// NoTrail forces sequential DFS onto the persistent-Env frontier (the
	// differential oracle) instead of the destructive trail-store machine.
	// Only DFS is affected: the other strategies always run on Env.
	NoTrail bool

	// Tables switches on tabled resolution: predicates declared
	// `:- table name/arity` resolve against this answer-table space
	// (memoized, deduplicated, complete answer sets) instead of program
	// clauses. nil runs untabled. The space is shared — across the
	// workers of one run and across runs — and is safe for all of them.
	Tables *table.Space

	// OR-parallel scheduling (Strategy == Parallel). Workers defaults to
	// 4; TwoLevel selects the paper's D-threshold network scheduling.
	Workers  int
	TwoLevel bool
	D        float64
	LocalCap int

	// Recording (sequential, non-AND-parallel runs only).
	RecordTree  bool
	RecordTrace bool

	// Observability. Trace, when non-nil, collects a span tree for this
	// run (compile, search, table fixpoint rounds). Prof, when non-nil,
	// accumulates per-predicate counters and attributed nanos; it may be
	// shared across concurrent runs (all counters are atomic). Live, when
	// non-nil, is this run's in-flight inspector entry; the engines sync
	// their expansion counter into it periodically. All three work on
	// every strategy and both binding representations.
	Trace *obs.Trace
	Prof  *obs.Profiler
	Live  *obs.Live
}

// Stats is the unified work accounting across every engine. Counters not
// produced by a given engine are zero (e.g. Migrations outside Parallel,
// Groups outside AND-parallel).
type Stats struct {
	Expanded     uint64
	Generated    uint64
	Failures     uint64
	DepthCutoffs uint64
	Pruned       uint64
	MaxFrontier  int
	MaxDepth     int
	// VMDispatched counts goals resolved on the compiled bytecode path
	// (zero when the run forced the tree-walking oracle).
	VMDispatched uint64
	// Representation names the binding representation the run used:
	// search.RepTrailStore (destructive store; sequential DFS default) or
	// search.RepPersistentEnv (immutable Env chains; everything else).
	Representation string

	// OR-parallel network counters.
	Migrations        uint64
	NetworkAcquires   uint64
	LocalPops         uint64
	Spills            uint64
	PerWorkerExpanded []uint64

	// AND-parallel decomposition counters.
	Groups         int
	GroupSolutions []int

	// Tabled-resolution counters (Request.Tables runs only): tables this
	// query materialized, distinct answers it derived into them, calls
	// served from an already-complete table, answers replayed from
	// complete tables — each replay a subgoal re-derivation avoided —
	// and consumptions of depth-truncated tables (answer sets cut by the
	// depth bound, the tabled analogue of DepthCutoffs).
	TablesCreated        uint64
	TableAnswers         uint64
	TableHits            uint64
	RederivationsAvoided uint64
	TablesTruncated      uint64
	// Answer-subsumption counters (min(N) tables only): derivations
	// dominated by a cheaper memoized answer, and memoized answers
	// replaced by a strictly cheaper derivation.
	AnswersSubsumed uint64
	AnswersImproved uint64
}

// addTable folds a table handle's per-query counters into the stats.
func (s *Stats) addTable(h *table.Handle) {
	if h == nil {
		return
	}
	ts := h.Stats()
	s.TablesCreated = ts.Created
	s.TableAnswers = ts.Answers
	s.TableHits = ts.Hits
	s.RederivationsAvoided = ts.RederivationsAvoided
	s.TablesTruncated = ts.TablesTruncated
	s.AnswersSubsumed = ts.AnswersSubsumed
	s.AnswersImproved = ts.AnswersImproved
}

// Response is the unified outcome of a Request.
type Response struct {
	// Solutions carry bindings, bound, depth and the decision chain.
	Solutions []engine.Solution
	// QueryVars are the query's variables in first-occurrence order (the
	// rendering order for bindings).
	QueryVars []*term.Var
	Stats     Stats
	// Exhausted reports that the engine searched the whole tree: the
	// solution list is complete, not an artifact of MaxSolutions or
	// cancellation. It is engine-reported, never inferred from options.
	Exhausted bool
	// Tree is the recorded search tree when Request.RecordTree was set.
	Tree *search.Tree
	// Trace holds figure-1 style lines when Request.RecordTrace was set.
	Trace []string
}

// Solver runs one Request to completion (or cancellation). Implementations
// must return promptly with ctx.Err() once ctx is done, leaking no
// goroutines.
type Solver interface {
	Solve(ctx context.Context, req *Request) (*Response, error)
}

// SolverFor returns the engine that handles req: Sequential for DFS, BFS
// and BestFirst, ORParallel for Parallel, ANDParallel when AndParallel is
// set on a sequential strategy.
func SolverFor(req *Request) (Solver, error) {
	if req.Strategy == Parallel {
		if req.AndParallel {
			return nil, errors.New("solve: AndParallel is incompatible with the Parallel strategy")
		}
		return ORParallel{}, nil
	}
	if _, ok := req.Strategy.searchStrategy(); !ok {
		return nil, fmt.Errorf("solve: unknown strategy %v", req.Strategy)
	}
	if req.AndParallel {
		return ANDParallel{}, nil
	}
	return Sequential{}, nil
}

// Do validates req, dispatches to the implementing Solver and returns its
// Response. It is the single entry point the blog facade uses for every
// strategy.
func Do(ctx context.Context, req *Request) (*Response, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	s, err := SolverFor(req)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return s.Solve(ctx, req)
}

// NewIter prepares a lazy, pull-based run for req — the interactive
// top-level's "; for more" model. Streaming runs on the sequential engine
// only; Parallel and AndParallel are rejected. Tree and trace recording
// work exactly as in Do: recording routes DFS onto the persistent-Env
// frontier, and the recorded tree/trace grow as solutions are pulled.
// Prune/PruneSlack are honored: the iterator cuts open nodes against the
// best solution bound served so far, exactly as the batch engine does.
// The returned table.Handle carries the stream's tabled-resolution
// counters (nil for untabled requests). A traced stream's "search" phase
// stays open across pulls; obs.Trace.Finish closes it when the caller is
// done.
func NewIter(ctx context.Context, req *Request) (*search.Iter, *table.Handle, error) {
	if err := validate(req); err != nil {
		return nil, nil, err
	}
	sstrat, ok := req.Strategy.searchStrategy()
	if !ok {
		return nil, nil, fmt.Errorf("solve: streaming requires a sequential strategy, got %v", req.Strategy)
	}
	if req.AndParallel {
		return nil, nil, errors.New("solve: streaming does not support AndParallel")
	}
	th, tb := tabler(req)
	compilePhase(req)
	searchPhase(req) // left open; table fixpoints nest beneath it across pulls
	it, err := search.NewIter(ctx, req.DB, req.Store, req.Goals, search.Options{
		Strategy:      sstrat,
		MaxSolutions:  req.MaxSolutions,
		MaxExpansions: req.MaxExpansions,
		MaxDepth:      req.MaxDepth,
		Learn:         req.Learn,
		Prune:         req.Prune,
		PruneSlack:    req.PruneSlack,
		OccursCheck:   req.OccursCheck,
		Tabler:        tb,
		NoVM:          req.NoVM,
		NoTrail:       req.NoTrail,
		RecordTree:    req.RecordTree,
		RecordTrace:   req.RecordTrace,
		Prof:          req.Prof,
		Live:          req.Live,
	})
	if err != nil {
		return nil, nil, err
	}
	return it, th, nil
}

// tabler returns the per-run table handle for req, as both the concrete
// handle (for stats extraction) and the engine interface (nil interface —
// not a typed nil — when tabling is off).
func tabler(req *Request) (*table.Handle, engine.Tabler) {
	if req.Tables == nil {
		return nil, nil
	}
	h := req.Tables.NewHandle()
	// Production honors the query's depth bound when it exceeds the
	// space default, so MaxDepth means the same thing tabled or not.
	h.SetMaxDepth(req.MaxDepth)
	// An oracle run must be oracle all the way down: table generators
	// follow the query's engine choice.
	h.SetNoVM(req.NoVM)
	// Table hit/miss counters and fixpoint spans flow through the handle
	// into the generator runs.
	h.SetProfiler(req.Prof)
	h.SetTrace(req.Trace)
	return h, h
}

// compilePhase records the clause-compilation span for a traced run. The
// bytecode cache is per-DB and warm after the first query, so the span
// shows real compile cost exactly once per database; later runs record
// the (cheap) cache probe. No-op when the run is untraced.
func compilePhase(req *Request) {
	if req.Trace == nil {
		return
	}
	sp := req.Trace.Phase("compile")
	if vm.Enabled && !req.NoVM {
		vm.For(req.DB)
	}
	sp.End()
}

// searchPhase opens the span the engine runs under; table fixpoints
// attach beneath it by name while it is open. closeSearch stamps the
// unified counters and ends it; both are no-ops for untraced runs.
func searchPhase(req *Request) *obs.Span {
	if req.Trace == nil {
		return nil
	}
	return req.Trace.Phase("search")
}

func closeSearch(sp *obs.Span, resp *Response) {
	if sp == nil {
		return
	}
	sp.SetCount("expanded", int64(resp.Stats.Expanded))
	sp.SetCount("solutions", int64(len(resp.Solutions)))
	sp.End()
}

func validate(req *Request) error {
	if req.DB == nil {
		return errors.New("solve: nil database")
	}
	if req.Store == nil {
		return errors.New("solve: nil weight store")
	}
	if len(req.Goals) == 0 {
		return errors.New("solve: empty query")
	}
	if (req.RecordTree || req.RecordTrace) && (req.Strategy == Parallel || req.AndParallel) {
		return errors.New("solve: tree/trace recording requires a sequential, non-AND-parallel run")
	}
	return nil
}

// Sequential is the single-threaded engine: DFS, BFS and BestFirst over
// one open list, driven by package search.
type Sequential struct{}

// Solve implements Solver.
func (Sequential) Solve(ctx context.Context, req *Request) (*Response, error) {
	sstrat, ok := req.Strategy.searchStrategy()
	if !ok {
		return nil, fmt.Errorf("solve: strategy %v is not sequential", req.Strategy)
	}
	th, tb := tabler(req)
	compilePhase(req)
	ssp := searchPhase(req)
	sres, err := search.Run(ctx, req.DB, req.Store, req.Goals, search.Options{
		Strategy:      sstrat,
		MaxSolutions:  req.MaxSolutions,
		MaxExpansions: req.MaxExpansions,
		MaxDepth:      req.MaxDepth,
		Learn:         req.Learn,
		Prune:         req.Prune,
		PruneSlack:    req.PruneSlack,
		OccursCheck:   req.OccursCheck,
		Tabler:        tb,
		NoVM:          req.NoVM,
		NoTrail:       req.NoTrail,
		RecordTree:    req.RecordTree,
		RecordTrace:   req.RecordTrace,
		Prof:          req.Prof,
		Live:          req.Live,
	})
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Solutions: sres.Solutions,
		QueryVars: sres.QueryVars,
		Stats: Stats{
			Expanded:       sres.Stats.Expanded,
			Generated:      sres.Stats.Generated,
			Failures:       sres.Stats.Failures,
			DepthCutoffs:   sres.Stats.DepthCutoffs,
			Pruned:         sres.Stats.Pruned,
			MaxFrontier:    sres.Stats.MaxFrontier,
			MaxDepth:       sres.Stats.MaxDepth,
			VMDispatched:   sres.Stats.VMDispatched,
			Representation: sres.Stats.Representation,
		},
		Exhausted: sres.Exhausted,
		Tree:      sres.Tree,
		Trace:     sres.Trace,
	}
	resp.Stats.addTable(th)
	closeSearch(ssp, resp)
	return resp, nil
}

// ORParallel is the OR-parallel engine of sections 3 and 6: n goroutine
// workers over a shared or two-level open list, driven by package par.
type ORParallel struct{}

// Solve implements Solver.
func (ORParallel) Solve(ctx context.Context, req *Request) (*Response, error) {
	mode := par.SharedHeap
	if req.TwoLevel {
		mode = par.TwoLevel
	}
	th, tb := tabler(req)
	compilePhase(req)
	ssp := searchPhase(req)
	pres, err := par.Run(ctx, req.DB, req.Store, req.Goals, par.Options{
		Workers:       req.Workers,
		Mode:          mode,
		D:             req.D,
		LocalCap:      req.LocalCap,
		MaxSolutions:  req.MaxSolutions,
		MaxExpansions: req.MaxExpansions,
		Learn:         req.Learn,
		MaxDepth:      req.MaxDepth,
		OccursCheck:   req.OccursCheck,
		Tabler:        tb,
		NoVM:          req.NoVM,
		Prof:          req.Prof,
		Live:          req.Live,
	})
	if err != nil {
		return nil, err
	}
	// Parallel completion order is nondeterministic; present solutions in
	// a stable order so every engine's Response reads the same way.
	sortSolutions(pres.Solutions, pres.QueryVars)
	resp := &Response{
		Solutions: pres.Solutions,
		QueryVars: pres.QueryVars,
		Stats: Stats{
			Expanded:          pres.Stats.Expanded,
			Generated:         pres.Stats.Generated,
			Failures:          pres.Stats.Failures,
			DepthCutoffs:      pres.Stats.DepthCutoffs,
			Migrations:        pres.Stats.Migrations,
			NetworkAcquires:   pres.Stats.NetworkAcquires,
			LocalPops:         pres.Stats.LocalPops,
			Spills:            pres.Stats.Spills,
			PerWorkerExpanded: pres.Stats.PerWorkerExpanded,
			VMDispatched:      pres.Stats.VMDispatched,
			Representation:    search.RepPersistentEnv,
		},
		Exhausted: pres.Exhausted,
	}
	resp.Stats.addTable(th)
	closeSearch(ssp, resp)
	return resp, nil
}

// ANDParallel is the section-7 engine: independent (non-variable-sharing)
// goal groups evaluated concurrently under a sequential strategy and
// combined by cross product, driven by package andpar.
type ANDParallel struct{}

// Solve implements Solver.
func (ANDParallel) Solve(ctx context.Context, req *Request) (*Response, error) {
	sstrat, ok := req.Strategy.searchStrategy()
	if !ok {
		return nil, fmt.Errorf("solve: strategy %v is not sequential", req.Strategy)
	}
	th, tb := tabler(req)
	compilePhase(req)
	ssp := searchPhase(req)
	ares, err := andpar.Solve(ctx, req.DB, req.Store, req.Goals, andpar.Options{
		Search: search.Options{
			Strategy:      sstrat,
			MaxExpansions: req.MaxExpansions,
			MaxDepth:      req.MaxDepth,
			Learn:         req.Learn,
			Prune:         req.Prune,
			PruneSlack:    req.PruneSlack,
			OccursCheck:   req.OccursCheck,
			Tabler:        tb,
			NoVM:          req.NoVM,
			NoTrail:       req.NoTrail,
			Prof:          req.Prof,
			Live:          req.Live,
		},
		Parallel:     true,
		MaxSolutions: req.MaxSolutions,
	})
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Solutions: ares.Solutions,
		QueryVars: ares.QueryVars,
		Stats: Stats{
			Expanded:       ares.Stats.Expanded,
			Generated:      ares.Stats.Generated,
			Failures:       ares.Stats.Failures,
			DepthCutoffs:   ares.Stats.DepthCutoffs,
			Pruned:         ares.Stats.Pruned,
			MaxFrontier:    ares.Stats.MaxFrontier,
			MaxDepth:       ares.Stats.MaxDepth,
			VMDispatched:   ares.Stats.VMDispatched,
			Groups:         ares.GroupCount,
			GroupSolutions: ares.GroupSolutions,
			// Group aggregation drops per-group search stats fields that are
			// not counters; every group ran the same configuration, so the
			// representation is a function of it.
			Representation: andparRepresentation(sstrat, req.NoTrail),
		},
		Exhausted: ares.Exhausted,
	}
	resp.Stats.addTable(th)
	closeSearch(ssp, resp)
	return resp, nil
}

// andparRepresentation names the binding representation AND-parallel
// groups ran under: the trail store exactly when each group's sequential
// search would pick it.
func andparRepresentation(s search.Strategy, noTrail bool) string {
	if s == search.DFS && !noTrail {
		return search.RepTrailStore
	}
	return search.RepPersistentEnv
}

// sortSolutions orders solutions by rendered bindings, then bound, giving
// nondeterministic engines a stable presentation order.
func sortSolutions(sols []engine.Solution, qvars []*term.Var) {
	sort.Slice(sols, func(i, j int) bool {
		a, b := sols[i].Format(qvars), sols[j].Format(qvars)
		if a != b {
			return a < b
		}
		return sols[i].Bound < sols[j].Bound
	})
}

var (
	_ Solver = Sequential{}
	_ Solver = ORParallel{}
	_ Solver = ANDParallel{}
)
