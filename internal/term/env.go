package term

import (
	"strings"
	"sync/atomic"
)

// varCounter issues process-unique variable serials. Renaming clauses apart
// must be race-free because parallel workers expand OR-branches concurrently.
var varCounter atomic.Uint64

// Frame is one activation record: the fresh variables minted together by a
// clause activation (or a single NewVar call), backed by one allocation.
// Variables carry their frame and slot index, which lets Env snapshots
// store one binding array per frame — shared unchanged between snapshots —
// instead of copying a flat map of every binding.
type Frame struct {
	vars []Var
	// b, when non-nil, holds the frame's destructive bindings in a trail
	// run's Store (slot i binds vars[i]); nil outside trail runs. It is
	// written only by the single goroutine driving the owning Store.
	b []Term
	// pooled marks frames minted by a FramePool: their variables are
	// recycled at backtrack, so anything escaping the activation must be
	// detached first (see Detacher).
	pooled bool
}

// Size returns the number of variable slots in the frame.
func (f *Frame) Size() int { return len(f.vars) }

// Var returns the variable at slot i.
func (f *Frame) Var(i int) *Var { return &f.vars[i] }

// NewVar allocates a fresh variable with the given print name, in a
// one-slot frame of its own.
func NewVar(name string) *Var {
	f := &Frame{vars: make([]Var, 1)}
	f.vars[0] = Var{Name: name, ID: varCounter.Add(1), frame: f}
	return &f.vars[0]
}

// NewFrame mints len(names) fresh variables sharing one activation frame.
// The variables are backed by a single allocation and receive consecutive
// serials, so activating a clause skeleton costs O(1) allocations
// regardless of how many variables the clause has. A nil frame is returned
// for an empty name list (ground activation).
func NewFrame(names []string) *Frame {
	n := len(names)
	if n == 0 {
		return nil
	}
	f := &Frame{vars: make([]Var, n)}
	base := varCounter.Add(uint64(n)) - uint64(n)
	for i := range f.vars {
		f.vars[i] = Var{Name: names[i], ID: base + uint64(i) + 1, frame: f, idx: int32(i)}
	}
	return f
}

// snapshotEvery controls how often an Env node carries a snapshot of all
// bindings below it. Lookups walk at most snapshotEvery-1 links before
// reaching a snapshot. Fresh-variable lookups never walk at all (the birth
// cutoff answers them in O(1)), so the window can be wider — trading a
// longer bounded walk for far fewer snapshot allocations — than it could
// be when every miss paid the full walk.
const snapshotEvery = 64

// snapshot indexes every binding reachable from its Env node. Frame-backed
// variables live in per-frame binding arrays keyed by frame identity; a
// frame untouched since the previous snapshot shares its array with it, so
// building a snapshot copies only the arrays of recently-bound frames plus
// a key map that is much smaller than the binding count.
type snapshot struct {
	frames map[*Frame][]Term
}

// Env is an immutable binding environment. The zero value (nil) is the
// empty environment. Bind returns a new Env sharing all previous bindings,
// so sibling OR-branches can extend a common ancestor independently.
type Env struct {
	parent *Env
	v      *Var
	t      Term
	depth  int
	// born is the variable serial high-water mark when this node was
	// created. A variable with a larger ID was minted after the node and
	// so cannot be bound here or in any ancestor — Lookup uses this to
	// answer fresh-variable misses without walking the spine.
	born uint64
	snap *snapshot
	// st, when non-nil, ties the node to a destructive Store (store.go).
	// The store's distinguished node binds in place; other st-carrying
	// nodes are overlays staging alternatives above the store.
	st *Store
}

// Depth returns the number of bindings in the environment.
func (e *Env) Depth() int {
	if e == nil {
		return 0
	}
	return e.depth
}

// Bind returns a new environment with v bound to t. It must only be called
// for unbound v (the unifier guarantees this); rebinding would shadow
// rather than overwrite, breaking Depth-based accounting.
func (e *Env) Bind(v *Var, t Term) *Env {
	if e != nil && e.st != nil {
		if e == e.st.env {
			// Destructive path: write the frame slot in place and log the
			// write on the trail. The same node is returned, so callers
			// threading environments through unification work unchanged.
			f := v.frame
			if f.b == nil {
				f.b = make([]Term, len(f.vars))
			}
			f.b[v.idx] = t
			e.st.trail = append(e.st.trail, trailEntry{frame: f, slot: v.idx})
			e.st.binds++
			e.depth++
			return e
		}
		// Overlay node: an immutable extension staged above the store (see
		// Store.Overlay). No snapshots and no birth cutoff — overlay spines
		// are short and Lookup walks them explicitly.
		return &Env{parent: e, v: v, t: t, depth: e.depth + 1, st: e.st}
	}
	n := &Env{parent: e, v: v, t: t, depth: e.Depth() + 1, born: varCounter.Load()}
	if n.depth%snapshotEvery == 0 {
		n.snap = n.buildSnapshot()
	}
	return n
}

// buildSnapshot merges the bindings since the previous snapshot into it,
// copying only the binding arrays of frames touched in that window.
func (n *Env) buildSnapshot() *snapshot {
	// Collect the spine nodes since the previous snapshot (at most
	// snapshotEvery of them).
	var recent [snapshotEvery]*Env
	cnt := 0
	var prev *snapshot
	for c := n; c != nil; c = c.parent {
		if c.snap != nil {
			prev = c.snap
			break
		}
		recent[cnt] = c
		cnt++
	}
	s := &snapshot{}
	if prev != nil {
		s.frames = make(map[*Frame][]Term, len(prev.frames)+8)
		for k, vals := range prev.frames {
			s.frames[k] = vals
		}
	} else {
		s.frames = make(map[*Frame][]Term, cnt)
	}
	// Frames whose arrays were already copied for this snapshot; each
	// window touches at most snapshotEvery frames, so a linear scan wins
	// over a map.
	var cloned [snapshotEvery]*Frame
	nCloned := 0
	for i := cnt - 1; i >= 0; i-- { // order is immaterial: one bind per var
		c := recent[i]
		v := c.v
		vals := s.frames[v.frame]
		fresh := false
		for j := 0; j < nCloned; j++ {
			if cloned[j] == v.frame {
				fresh = true
				break
			}
		}
		if !fresh {
			nv := make([]Term, len(v.frame.vars))
			copy(nv, vals)
			vals = nv
			s.frames[v.frame] = vals
			cloned[nCloned] = v.frame
			nCloned++
		}
		vals[v.idx] = c.t
	}
	return s
}

// Lookup returns the binding of v, if any. Fresh variables (minted after
// the newest binding) answer in O(1) via the birth cutoff; older variables
// walk at most snapshotEvery-1 spine links, then answer from the nearest
// snapshot's per-frame binding array.
func (e *Env) Lookup(v *Var) (Term, bool) {
	if e == nil {
		return nil, false
	}
	if e.st != nil {
		// Store mode: walk the (short) overlay spine, then answer from the
		// frame binding array at the distinguished node. The birth cutoff
		// does not apply — destructive binds do not advance node identity.
		for c := e; c != nil; c = c.parent {
			if c == c.st.env {
				f := v.frame
				if f == nil || f.b == nil {
					return nil, false
				}
				t := f.b[v.idx]
				return t, t != nil
			}
			if c.v == v {
				return c.t, true
			}
		}
		return nil, false
	}
	if v.ID > e.born {
		return nil, false
	}
	for c := e; c != nil; c = c.parent {
		if c.v == v {
			return c.t, true
		}
		if c.snap != nil {
			vals, ok := c.snap.frames[v.frame]
			if !ok {
				return nil, false
			}
			t := vals[v.idx]
			return t, t != nil
		}
	}
	return nil, false
}

// Resolve dereferences t through variable bindings until it reaches an
// unbound variable or a non-variable term. It does not descend into
// compound arguments; see ResolveDeep.
func (e *Env) Resolve(t Term) Term {
	for {
		v, ok := t.(*Var)
		if !ok {
			return t
		}
		b, ok := e.Lookup(v)
		if !ok {
			return v
		}
		t = b
	}
}

// ResolveDeep returns a copy of t with every bound variable replaced by its
// (deeply resolved) value. Unbound variables remain in place, so the result
// is independent of the environment except for those.
func (e *Env) ResolveDeep(t Term) Term {
	t = e.Resolve(t)
	c, ok := t.(*Compound)
	if !ok {
		return t
	}
	args := make([]Term, len(c.Args))
	changed := false
	for i, a := range c.Args {
		args[i] = e.ResolveDeep(a)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return c
	}
	return &Compound{Functor: c.Functor, Args: args}
}

// Format renders t with bindings from e applied.
func (e *Env) Format(t Term) string {
	t = e.Resolve(t)
	switch t := t.(type) {
	case *Compound:
		if s, ok := listString(t, e); ok {
			return s
		}
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = e.Format(a)
		}
		return quoteAtom(t.FunctorName()) + "(" + strings.Join(parts, ",") + ")"
	default:
		return t.String()
	}
}

// Refresh returns t with every variable consistently replaced by a fresh
// one (the "renaming apart" operation for terms that were not compiled at
// load time, such as copy_term/2 arguments). It is a one-shot map-based
// copy: arbitrary runtime terms can have many variables, so the skeleton
// compiler's small-clause slot numbering does not apply. Clause activation
// does not go through here — stored clauses are compiled once into
// Skeletons and activated via frames; see skeleton.go.
func Refresh(t Term) Term {
	switch t.(type) {
	case *Var, *Compound:
		return refresh(t, make(map[*Var]*Var, 4))
	default:
		return t
	}
}

func refresh(t Term, m map[*Var]*Var) Term {
	switch t := t.(type) {
	case *Var:
		if nv, ok := m[t]; ok {
			return nv
		}
		nv := NewVar(t.Name)
		m[t] = nv
		return nv
	case *Compound:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = refresh(a, m)
		}
		return &Compound{Functor: t.Functor, Args: args}
	default:
		return t
	}
}
