package term

import (
	"strings"
	"sync/atomic"
)

// varCounter issues process-unique variable serials. Renaming clauses apart
// must be race-free because parallel workers expand OR-branches concurrently.
var varCounter atomic.Uint64

// NewVar allocates a fresh variable with the given print name.
func NewVar(name string) *Var {
	return &Var{Name: name, ID: varCounter.Add(1)}
}

// snapshotEvery controls how often an Env node carries a full map snapshot
// of all bindings below it. Lookups walk at most snapshotEvery-1 links
// before reaching a snapshot, bounding lookup cost while keeping extension
// allocation-light. 16 balances the two for typical chain depths.
const snapshotEvery = 16

// Env is an immutable binding environment. The zero value (nil) is the
// empty environment. Bind returns a new Env sharing all previous bindings,
// so sibling OR-branches can extend a common ancestor independently.
type Env struct {
	parent *Env
	v      *Var
	t      Term
	depth  int
	// snap, when non-nil, holds every binding reachable from this node,
	// letting Lookup stop here instead of walking to the root.
	snap map[*Var]Term
}

// Depth returns the number of bindings in the environment.
func (e *Env) Depth() int {
	if e == nil {
		return 0
	}
	return e.depth
}

// Bind returns a new environment with v bound to t. It must only be called
// for unbound v (the unifier guarantees this); rebinding would shadow
// rather than overwrite, breaking Depth-based accounting.
func (e *Env) Bind(v *Var, t Term) *Env {
	n := &Env{parent: e, v: v, t: t, depth: e.Depth() + 1}
	if n.depth%snapshotEvery == 0 {
		snap := make(map[*Var]Term, n.depth)
		for c := n; c != nil; c = c.parent {
			if c.snap != nil {
				for k, val := range c.snap {
					if _, dup := snap[k]; !dup {
						snap[k] = val
					}
				}
				break
			}
			if _, dup := snap[c.v]; !dup {
				snap[c.v] = c.t
			}
		}
		n.snap = snap
	}
	return n
}

// Lookup returns the binding of v, if any.
func (e *Env) Lookup(v *Var) (Term, bool) {
	for c := e; c != nil; c = c.parent {
		if c.snap != nil {
			t, ok := c.snap[v]
			return t, ok
		}
		if c.v == v {
			return c.t, true
		}
	}
	return nil, false
}

// Resolve dereferences t through variable bindings until it reaches an
// unbound variable or a non-variable term. It does not descend into
// compound arguments; see ResolveDeep.
func (e *Env) Resolve(t Term) Term {
	for {
		v, ok := t.(*Var)
		if !ok {
			return t
		}
		b, ok := e.Lookup(v)
		if !ok {
			return v
		}
		t = b
	}
}

// ResolveDeep returns a copy of t with every bound variable replaced by its
// (deeply resolved) value. Unbound variables remain in place, so the result
// is independent of the environment except for those.
func (e *Env) ResolveDeep(t Term) Term {
	t = e.Resolve(t)
	c, ok := t.(*Compound)
	if !ok {
		return t
	}
	args := make([]Term, len(c.Args))
	changed := false
	for i, a := range c.Args {
		args[i] = e.ResolveDeep(a)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return c
	}
	return &Compound{Functor: c.Functor, Args: args}
}

// Format renders t with bindings from e applied.
func (e *Env) Format(t Term) string {
	t = e.Resolve(t)
	switch t := t.(type) {
	case *Compound:
		if s, ok := listString(t, e); ok {
			return s
		}
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = e.Format(a)
		}
		return quoteAtom(t.Functor) + "(" + strings.Join(parts, ",") + ")"
	default:
		return t.String()
	}
}

// Renamer copies terms while replacing their variables with fresh ones,
// implementing the "renaming apart" step of resolution. One Renamer is used
// per clause activation so that shared variables within the clause map to
// the same fresh variable.
type Renamer struct {
	m map[*Var]*Var
}

// NewRenamer returns an empty Renamer.
func NewRenamer() *Renamer { return &Renamer{m: make(map[*Var]*Var, 4)} }

// Rename returns t with every variable consistently replaced by a fresh one.
func (r *Renamer) Rename(t Term) Term {
	switch t := t.(type) {
	case *Var:
		if nv, ok := r.m[t]; ok {
			return nv
		}
		nv := NewVar(t.Name)
		r.m[t] = nv
		return nv
	case *Compound:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = r.Rename(a)
		}
		return &Compound{Functor: t.Functor, Args: args}
	default:
		return t
	}
}
