package term

import (
	"sync"
	"sync/atomic"
)

// Sym is an interned symbol: a process-unique integer identifying a functor
// or atom name. Unification, clause indexing and builtin dispatch compare
// Syms — one integer compare — where a string-based representation would
// re-compare functor text on every step. The paper's machine gets the same
// effect from hardware name tags; interning is the software analogue.
//
// Sym values are only meaningful within one process and are never
// persisted; rendering goes back through the table via Name.
type Sym int32

// symTable is the process-wide intern table. The name slice is published
// through an atomic pointer so that Name (the render path) never takes a
// lock; Intern is a load-time / parse-time operation and may lock.
type symTable struct {
	mu    sync.RWMutex
	ids   map[string]Sym
	names atomic.Pointer[[]string]
}

var symbols = func() *symTable {
	t := &symTable{ids: map[string]Sym{"": 0}}
	names := []string{""} // Sym 0 is the empty atom ''
	t.names.Store(&names)
	return t
}()

// Intern returns the unique Sym for name, creating it on first use.
// Safe for concurrent use.
func Intern(name string) Sym {
	t := symbols
	t.mu.RLock()
	s, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.ids[name]; ok {
		return s
	}
	old := *t.names.Load()
	s = Sym(len(old))
	// Appending may grow in place; readers only index below their own
	// slice header's length, so publishing the longer header afterwards
	// is race-free.
	names := append(old, name)
	t.names.Store(&names)
	t.ids[name] = s
	return s
}

// Name returns the interned text of s, or "" for an unknown Sym.
func (s Sym) Name() string {
	names := *symbols.names.Load()
	if s < 0 || int(s) >= len(names) {
		return ""
	}
	return names[s]
}

// String renders the raw (unquoted) name, so Syms format naturally with %s.
func (s Sym) String() string { return s.Name() }

// Well-known symbols, pre-interned so hot paths compare against constants.
var (
	// SymDot is the list cell functor `.`.
	SymDot = Intern(".")
	// SymNil is the empty list atom `[]`.
	SymNil = Intern("[]")
	// SymNeg is the negation-as-failure operator `\+`.
	SymNeg = Intern("\\+")
)
