// Package term defines the term representation of the B-LOG logic
// programming system: atoms, integers, logic variables and compound terms,
// together with persistent (structure-shared) binding environments.
//
// The representation is compiled for cheap resolution, mirroring the
// hardware operations section 6 of the paper argues for:
//
//   - Functor and atom names are interned to integer Syms in a
//     process-wide symbol table (sym.go), so unification, clause indexing
//     and builtin dispatch compare integers, never strings.
//   - Clause terms are compiled once into Skeletons (skeleton.go) whose
//     variables are numbered slots; "renaming apart" a clause is then one
//     activation frame allocation plus a slot-indexed copy that shares all
//     ground subterms verbatim.
//   - Variables carry their activation Frame, letting binding environments
//     snapshot per-frame binding arrays instead of copying one flat map
//     (env.go).
//
// B-LOG performs a best-first search of the OR-tree, which means many
// resolvents ("chains" in the paper's terminology) are alive at once. A
// destructive binding trail, as used by depth-first Prolog implementations,
// cannot represent that: undoing bindings for one chain would corrupt its
// siblings. Instead every chain carries an immutable Env; extending an Env
// allocates a small node and shares the entire suffix with the parent chain.
// This is exactly the environment-copying pressure that section 6 of the
// paper motivates its multi-write memory with.
package term

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Term is the interface implemented by all term representations.
// The concrete types are Atom, Int, *Var and *Compound.
type Term interface {
	// String renders the term without consulting any environment.
	// Use (*Env).Format to render with bindings applied.
	String() string
	isTerm()
}

// Atom is a constant symbol such as `sam` or `[]`, represented by its
// interned Sym. Atoms are comparable with == (one integer compare) and
// usable as map keys.
type Atom struct{ sym Sym }

// NewAtom interns name and returns the atom for it.
func NewAtom(name string) Atom { return Atom{Intern(name)} }

// AtomOf wraps an already-interned Sym as an atom.
func AtomOf(s Sym) Atom { return Atom{s} }

// Sym returns the atom's interned symbol.
func (a Atom) Sym() Sym { return a.sym }

// Name returns the atom's text without quoting.
func (a Atom) Name() string { return a.sym.Name() }

// Int is an integer constant.
type Int int64

// Var is a logic variable. Identity is by pointer; Name is only for
// printing. ID is a process-unique serial used for stable ordering and
// for printing anonymous renamed variables (for example `_G42`).
// Every Var belongs to an activation Frame (see env.go); variables created
// singly via NewVar get a one-slot frame of their own.
type Var struct {
	Name  string
	ID    uint64
	frame *Frame
	idx   int32
}

// Compound is a functor applied to one or more arguments, such as
// `f(sam, Y)` or `.(H, T)` (a list cell). The functor is interned.
type Compound struct {
	Functor Sym
	// pooled marks compounds minted by a CompoundPool (store.go): they are
	// recycled on backtrack, so Detacher always copies them on the way out.
	// The flag packs into Functor's alignment padding — no size cost.
	pooled bool
	Args   []Term
}

// FunctorName returns the functor's text.
func (c *Compound) FunctorName() string { return c.Functor.Name() }

func (Atom) isTerm()      {}
func (Int) isTerm()       {}
func (*Var) isTerm()      {}
func (*Compound) isTerm() {}

// String implements Term.
func (a Atom) String() string { return quoteAtom(a.Name()) }

// String implements Term.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// String implements Term.
func (v *Var) String() string {
	if v.Name != "" && v.Name != "_" {
		return v.Name
	}
	return "_G" + strconv.FormatUint(v.ID, 10)
}

// String implements Term.
func (c *Compound) String() string {
	if s, ok := listString(c, nil); ok {
		return s
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return quoteAtom(c.FunctorName()) + "(" + strings.Join(parts, ",") + ")"
}

// Indicator returns the predicate indicator (functor/arity) of a callable
// term, for example "f/2" for f(sam,Y) or "true/0" for the atom true.
// It returns "", false for variables and integers, which are not callable.
func Indicator(t Term) (string, bool) {
	switch t := t.(type) {
	case Atom:
		return t.Name() + "/0", true
	case *Compound:
		return t.FunctorName() + "/" + strconv.Itoa(len(t.Args)), true
	default:
		return "", false
	}
}

// PredOf returns the interned functor symbol and arity of a callable term.
// It is the allocation-free form of Indicator used by clause indexing and
// builtin dispatch.
func PredOf(t Term) (fn Sym, arity int, ok bool) {
	switch t := t.(type) {
	case Atom:
		return t.sym, 0, true
	case *Compound:
		return t.Functor, len(t.Args), true
	default:
		return 0, 0, false
	}
}

// Functor returns the functor name and arity of a callable term.
func Functor(t Term) (name string, arity int, ok bool) {
	switch t := t.(type) {
	case Atom:
		return t.Name(), 0, true
	case *Compound:
		return t.FunctorName(), len(t.Args), true
	default:
		return "", 0, false
	}
}

// NewCompound builds a compound term, interning the functor. As a
// convenience, a zero-argument call yields an Atom so that callers never
// construct empty compounds.
func NewCompound(functor string, args ...Term) Term {
	if len(args) == 0 {
		return NewAtom(functor)
	}
	return &Compound{Functor: Intern(functor), Args: args}
}

// EmptyList is the atom `[]` terminating proper lists.
var EmptyList = Atom{SymNil}

// Cons builds a list cell `.(head, tail)`.
func Cons(head, tail Term) Term { return &Compound{Functor: SymDot, Args: []Term{head, tail}} }

// FromList builds a proper list term from a slice.
func FromList(items []Term) Term {
	t := Term(EmptyList)
	for i := len(items) - 1; i >= 0; i-- {
		t = Cons(items[i], t)
	}
	return t
}

// listString renders a list cell chain in [a,b|T] notation; env may be nil.
func listString(c *Compound, env *Env) (string, bool) {
	if c.Functor != SymDot || len(c.Args) != 2 {
		return "", false
	}
	var b strings.Builder
	b.WriteByte('[')
	first := true
	var cur Term = c
	for {
		if env != nil {
			cur = env.Resolve(cur)
		}
		cell, ok := cur.(*Compound)
		if !ok || cell.Functor != SymDot || len(cell.Args) != 2 {
			break
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		if env != nil {
			b.WriteString(env.Format(cell.Args[0]))
		} else {
			b.WriteString(cell.Args[0].String())
		}
		cur = cell.Args[1]
	}
	if env != nil {
		cur = env.Resolve(cur)
	}
	if cur != Term(EmptyList) {
		b.WriteByte('|')
		if env != nil {
			b.WriteString(env.Format(cur))
		} else {
			b.WriteString(cur.String())
		}
	}
	b.WriteByte(']')
	return b.String(), true
}

// quoteAtom quotes an atom when it does not have plain-atom syntax.
// The bare atom "." is always quoted: unquoted it would merge with a
// following clause terminator or parenthesis during reparsing.
func quoteAtom(s string) string {
	if s == "" {
		return "''"
	}
	if s == "[]" || s == "!" {
		return s
	}
	// "." would merge with a following terminator; "," and ";" lex as
	// punctuation, not atoms. All three need quotes to reparse.
	if s == "." || s == "," || s == ";" {
		return "'" + s + "'"
	}
	plain := s[0] >= 'a' && s[0] <= 'z'
	if plain {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
				plain = false
				break
			}
		}
	}
	if plain {
		return s
	}
	sym := true
	for i := 0; i < len(s); i++ {
		if !strings.ContainsRune("+-*/\\^<>=~:.?@#&", rune(s[i])) {
			sym = false
			break
		}
	}
	// A symbolic atom containing the comment opener would start a block
	// comment when reparsed; quote it instead.
	if sym && !strings.Contains(s, "/*") {
		return s
	}
	escaped := strings.ReplaceAll(s, "\\", "\\\\")
	escaped = strings.ReplaceAll(escaped, "'", "\\'")
	return "'" + escaped + "'"
}

// EndsSymbolic reports whether the rendered text ends in a symbolic-atom
// character, in which case a following "." would lex as part of the same
// token; clause writers insert a space before the terminator then.
func EndsSymbolic(s string) bool {
	if s == "" {
		return false
	}
	return strings.ContainsRune("+-*/\\^<>=~:.?@#&", rune(s[len(s)-1]))
}

// Vars appends the distinct variables occurring in t (without consulting
// any environment) to dst, in first-occurrence order.
func Vars(t Term, dst []*Var) []*Var {
	switch t := t.(type) {
	case *Var:
		for _, v := range dst {
			if v == t {
				return dst
			}
		}
		return append(dst, t)
	case *Compound:
		for _, a := range t.Args {
			dst = Vars(a, dst)
		}
	}
	return dst
}

// VarsUnder appends the distinct variables remaining free in t after
// resolving bindings in env, in first-occurrence order.
func VarsUnder(env *Env, t Term, dst []*Var) []*Var {
	t = env.Resolve(t)
	switch t := t.(type) {
	case *Var:
		for _, v := range dst {
			if v == t {
				return dst
			}
		}
		return append(dst, t)
	case *Compound:
		for _, a := range t.Args {
			dst = VarsUnder(env, a, dst)
		}
	}
	return dst
}

// Equal reports structural equality of two terms without an environment;
// variables are equal only when identical.
func Equal(a, b Term) bool {
	switch a := a.(type) {
	case Atom:
		b, ok := b.(Atom)
		return ok && a == b
	case Int:
		b, ok := b.(Int)
		return ok && a == b
	case *Var:
		return a == b
	case *Compound:
		b, ok := b.(*Compound)
		if !ok || a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !Equal(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// EqualUnder reports structural equality of a and b with bindings from env
// applied on the fly, without materializing deeply-resolved copies. It
// backs ==/2 and \==/2: each argument position is resolved exactly once.
func EqualUnder(env *Env, a, b Term) bool {
	a, b = env.Resolve(a), env.Resolve(b)
	switch a := a.(type) {
	case Atom:
		b, ok := b.(Atom)
		return ok && a == b
	case Int:
		b, ok := b.(Int)
		return ok && a == b
	case *Var:
		return a == b
	case *Compound:
		b, ok := b.(*Compound)
		if !ok || a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !EqualUnder(env, a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare imposes the standard order of terms: Var < Int < Atom < Compound,
// with compounds ordered by arity, then functor, then arguments.
// Atoms and functors order by their interned text, not their Sym serials.
func Compare(a, b Term) int { return CompareUnder(nil, a, b) }

// CompareUnder is Compare with bindings from env applied on the fly; each
// argument position is resolved exactly once. It backs the @</2 family.
func CompareUnder(env *Env, a, b Term) int {
	a, b = env.Resolve(a), env.Resolve(b)
	ra, rb := orderRank(a), orderRank(b)
	if ra != rb {
		return ra - rb
	}
	switch a := a.(type) {
	case *Var:
		bv := b.(*Var)
		switch {
		case a.ID < bv.ID:
			return -1
		case a.ID > bv.ID:
			return 1
		}
		return 0
	case Int:
		bi := b.(Int)
		switch {
		case a < bi:
			return -1
		case a > bi:
			return 1
		}
		return 0
	case Atom:
		return strings.Compare(a.Name(), b.(Atom).Name())
	case *Compound:
		bc := b.(*Compound)
		if d := len(a.Args) - len(bc.Args); d != 0 {
			return d
		}
		if a.Functor != bc.Functor {
			if d := strings.Compare(a.Functor.Name(), bc.Functor.Name()); d != 0 {
				return d
			}
		}
		for i := range a.Args {
			if d := CompareUnder(env, a.Args[i], bc.Args[i]); d != 0 {
				return d
			}
		}
		return 0
	}
	return 0
}

func orderRank(t Term) int {
	switch t.(type) {
	case *Var:
		return 0
	case Int:
		return 1
	case Atom:
		return 2
	default:
		return 3
	}
}

// SortVars sorts variables by their serial IDs, giving a deterministic
// presentation order for solution printing.
func SortVars(vs []*Var) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
}

// Ground reports whether t contains no unbound variables under env.
func Ground(env *Env, t Term) bool {
	t = env.Resolve(t)
	switch t := t.(type) {
	case *Var:
		return false
	case *Compound:
		for _, a := range t.Args {
			if !Ground(env, a) {
				return false
			}
		}
	}
	return true
}

var _ = fmt.Stringer(Atom{}) // Atom satisfies fmt.Stringer.
