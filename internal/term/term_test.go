package term

import (
	"testing"
	"testing/quick"
)

func TestAtomString(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"sam", "sam"},
		{"fooBar_9", "fooBar_9"},
		{"[]", "[]"},
		{"hello world", "'hello world'"},
		{"Upper", "'Upper'"},
		{"", "''"},
		{"=..", "=.."},
		{"don't", "'don\\'t'"},
	}
	for _, c := range cases {
		if got := NewAtom(c.in).String(); got != c.want {
			t.Errorf("NewAtom(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIntString(t *testing.T) {
	if got := Int(-42).String(); got != "-42" {
		t.Errorf("Int(-42).String() = %q", got)
	}
}

func TestVarString(t *testing.T) {
	v := NewVar("X")
	if got := v.String(); got != "X" {
		t.Errorf("named var prints %q, want X", got)
	}
	anon := NewVar("_")
	if got := anon.String(); got[:2] != "_G" {
		t.Errorf("anonymous var prints %q, want _G prefix", got)
	}
}

func TestCompoundString(t *testing.T) {
	x := NewVar("X")
	tm := NewCompound("f", NewAtom("sam"), x)
	if got := tm.String(); got != "f(sam,X)" {
		t.Errorf("got %q, want f(sam,X)", got)
	}
}

func TestNewCompoundZeroArgsIsAtom(t *testing.T) {
	tm := NewCompound("foo")
	if _, ok := tm.(Atom); !ok {
		t.Fatalf("NewCompound with no args should produce Atom, got %T", tm)
	}
}

func TestListString(t *testing.T) {
	l := FromList([]Term{NewAtom("a"), Int(2), NewAtom("c")})
	if got := l.String(); got != "[a,2,c]" {
		t.Errorf("got %q, want [a,2,c]", got)
	}
	partial := Cons(NewAtom("a"), NewVar("T"))
	if got := partial.String(); got != "[a|T]" {
		t.Errorf("got %q, want [a|T]", got)
	}
	if got := Term(EmptyList).String(); got != "[]" {
		t.Errorf("got %q, want []", got)
	}
}

func TestIndicator(t *testing.T) {
	if ind, ok := Indicator(NewCompound("f", NewAtom("a"), NewAtom("b"))); !ok || ind != "f/2" {
		t.Errorf("Indicator(f(a,b)) = %q,%v", ind, ok)
	}
	if ind, ok := Indicator(NewAtom("true")); !ok || ind != "true/0" {
		t.Errorf("Indicator(true) = %q,%v", ind, ok)
	}
	if _, ok := Indicator(Int(3)); ok {
		t.Error("Indicator(3) should not be callable")
	}
	if _, ok := Indicator(NewVar("X")); ok {
		t.Error("Indicator(X) should not be callable")
	}
}

func TestEnvBindLookup(t *testing.T) {
	x, y := NewVar("X"), NewVar("Y")
	var e *Env
	if _, ok := e.Lookup(x); ok {
		t.Fatal("empty env should have no bindings")
	}
	e1 := e.Bind(x, NewAtom("a"))
	e2 := e1.Bind(y, NewAtom("b"))
	if v, ok := e2.Lookup(x); !ok || v != NewAtom("a") {
		t.Errorf("X = %v, %v", v, ok)
	}
	if v, ok := e2.Lookup(y); !ok || v != NewAtom("b") {
		t.Errorf("Y = %v, %v", v, ok)
	}
	// e1 must be unaffected by the extension (persistence).
	if _, ok := e1.Lookup(y); ok {
		t.Error("binding of Y leaked into ancestor environment")
	}
	if e2.Depth() != 2 || e1.Depth() != 1 || e.Depth() != 0 {
		t.Errorf("depths = %d,%d,%d", e2.Depth(), e1.Depth(), e.Depth())
	}
}

func TestEnvSiblingIndependence(t *testing.T) {
	x, y := NewVar("X"), NewVar("Y")
	base := (*Env)(nil).Bind(x, NewAtom("root"))
	left := base.Bind(y, NewAtom("l"))
	right := base.Bind(y, NewAtom("r"))
	if v, _ := left.Lookup(y); v != NewAtom("l") {
		t.Errorf("left sees Y=%v", v)
	}
	if v, _ := right.Lookup(y); v != NewAtom("r") {
		t.Errorf("right sees Y=%v", v)
	}
}

func TestEnvSnapshotDeepChain(t *testing.T) {
	// Build a chain much deeper than snapshotEvery and check every binding
	// is still visible — this exercises the snapshot fast path.
	const n = 10 * snapshotEvery
	vars := make([]*Var, n)
	var e *Env
	for i := range vars {
		vars[i] = NewVar("V")
		e = e.Bind(vars[i], Int(i))
	}
	for i, v := range vars {
		got, ok := e.Lookup(v)
		if !ok || got != Int(i) {
			t.Fatalf("binding %d lost: got %v, %v", i, got, ok)
		}
	}
}

func TestResolveChain(t *testing.T) {
	x, y, z := NewVar("X"), NewVar("Y"), NewVar("Z")
	e := (*Env)(nil).Bind(x, y).Bind(y, z).Bind(z, NewAtom("end"))
	if got := e.Resolve(x); got != NewAtom("end") {
		t.Errorf("Resolve(X) = %v, want end", got)
	}
	free := NewVar("F")
	e2 := e.Bind(NewVar("W"), free)
	if got := e2.Resolve(free); got != free {
		t.Errorf("Resolve of unbound var should be itself, got %v", got)
	}
}

func TestResolveDeep(t *testing.T) {
	x, y := NewVar("X"), NewVar("Y")
	tm := NewCompound("f", x, NewCompound("g", y))
	e := (*Env)(nil).Bind(x, NewAtom("a")).Bind(y, Int(7))
	got := e.ResolveDeep(tm)
	want := NewCompound("f", NewAtom("a"), NewCompound("g", Int(7)))
	if !Equal(got, want) {
		t.Errorf("ResolveDeep = %v, want %v", got, want)
	}
	// Untouched subterms should be shared, not copied.
	g := NewCompound("g", NewAtom("k"))
	t2 := NewCompound("h", g).(*Compound)
	r2 := e.ResolveDeep(t2).(*Compound)
	if r2 != t2 {
		t.Error("fully ground term should be returned unchanged")
	}
}

func TestEnvFormat(t *testing.T) {
	x := NewVar("X")
	e := (*Env)(nil).Bind(x, FromList([]Term{NewAtom("a"), NewAtom("b")}))
	if got := e.Format(NewCompound("p", x)); got != "p([a,b])" {
		t.Errorf("Format = %q", got)
	}
}

func TestRefreshConsistency(t *testing.T) {
	x := NewVar("X")
	tm := NewCompound("f", x, x, NewVar("Y"))
	out := Refresh(tm).(*Compound)
	a0, a1 := out.Args[0].(*Var), out.Args[1].(*Var)
	if a0 != a1 {
		t.Error("same source var must refresh to same fresh var")
	}
	if a0 == x {
		t.Error("refreshed var must be fresh")
	}
	if out.Args[2].(*Var) == a0 {
		t.Error("distinct source vars must stay distinct")
	}
	// Ground subterms pass through.
	if g := Refresh(NewAtom("a")); g != NewAtom("a") {
		t.Errorf("Refresh(a) = %v", g)
	}
}

func TestInternStable(t *testing.T) {
	a, b := Intern("zebra_functor"), Intern("zebra_functor")
	if a != b {
		t.Fatalf("Intern not stable: %d vs %d", a, b)
	}
	if a.Name() != "zebra_functor" {
		t.Fatalf("Name round-trip = %q", a.Name())
	}
	if NewAtom("zebra_functor") != NewAtom("zebra_functor") {
		t.Fatal("atoms of same name must be ==")
	}
	if NewAtom("zebra_functor") == NewAtom("other_functor") {
		t.Fatal("atoms of different names must differ")
	}
}

func TestSkeletonActivation(t *testing.T) {
	x, y := NewVar("X"), NewVar("Y")
	g := NewCompound("g", NewAtom("k"), Int(3)) // ground subterm
	tm := NewCompound("f", x, g, NewCompound("h", y, x))
	sks, names := CompileTerms([]Term{tm, NewCompound("p", y)})
	if len(names) != 2 {
		t.Fatalf("slots = %v, want 2", names)
	}
	frame := NewFrame(names)
	out := sks[0].Instantiate(frame).(*Compound)
	if out.Args[0] != Term(frame.Var(0)) {
		t.Error("slot 0 should instantiate to frame var 0")
	}
	if out.Args[1] != Term(g) {
		t.Error("ground subterm must be shared, not copied")
	}
	h := out.Args[2].(*Compound)
	if h.Args[0] != Term(frame.Var(1)) || h.Args[1] != Term(frame.Var(0)) {
		t.Error("shared variables must map to the same frame slots")
	}
	p := sks[1].Instantiate(frame).(*Compound)
	if p.Args[0] != Term(frame.Var(1)) {
		t.Error("second term must share slot numbering with the first")
	}
	// Two activations must be renamed apart from each other.
	out2 := sks[0].Instantiate(NewFrame(names)).(*Compound)
	if out2.Args[0] == out.Args[0] {
		t.Error("activations must mint fresh variables")
	}
	// A fully ground term activates as itself with a nil frame.
	gc := g.(*Compound)
	gsk, gnames := Compile(gc)
	if len(gnames) != 0 || !gsk.IsGround() {
		t.Fatalf("ground compile: names=%v ground=%v", gnames, gsk.IsGround())
	}
	if gsk.Instantiate(nil) != Term(gc) {
		t.Error("ground skeleton must instantiate to the shared term")
	}
}

func TestNewFrameUniqueIDs(t *testing.T) {
	f1 := NewFrame([]string{"A", "B", "C"})
	f2 := NewFrame([]string{"A"})
	seen := map[uint64]bool{}
	for _, f := range []*Frame{f1, f2} {
		for i := 0; i < f.Size(); i++ {
			v := f.Var(i)
			if seen[v.ID] {
				t.Fatalf("duplicate frame var ID %d", v.ID)
			}
			seen[v.ID] = true
		}
	}
	if f1.Var(0).Name != "A" || f1.Var(2).Name != "C" {
		t.Error("frame vars must keep their print names")
	}
}

func TestVars(t *testing.T) {
	x, y := NewVar("X"), NewVar("Y")
	tm := NewCompound("f", x, NewCompound("g", y, x))
	vs := Vars(tm, nil)
	if len(vs) != 2 || vs[0] != x || vs[1] != y {
		t.Errorf("Vars = %v", vs)
	}
}

func TestVarsUnder(t *testing.T) {
	x, y := NewVar("X"), NewVar("Y")
	e := (*Env)(nil).Bind(x, NewCompound("g", y))
	vs := VarsUnder(e, NewCompound("f", x), nil)
	if len(vs) != 1 || vs[0] != y {
		t.Errorf("VarsUnder = %v, want [Y]", vs)
	}
}

func TestEqual(t *testing.T) {
	x := NewVar("X")
	if !Equal(NewCompound("f", x, Int(1)), NewCompound("f", x, Int(1))) {
		t.Error("identical structure should be Equal")
	}
	if Equal(NewCompound("f", NewVar("X")), NewCompound("f", NewVar("X"))) {
		t.Error("distinct vars must not be Equal")
	}
	if Equal(NewAtom("a"), Int(1)) {
		t.Error("atom != int")
	}
}

func TestCompareOrder(t *testing.T) {
	v := NewVar("X")
	seq := []Term{v, Int(1), NewAtom("a"), NewCompound("f", NewAtom("a"))}
	for i := 0; i < len(seq); i++ {
		for j := 0; j < len(seq); j++ {
			got := Compare(seq[i], seq[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", seq[i], seq[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", seq[i], seq[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", seq[i], seq[j], got)
			}
		}
	}
	if Compare(Int(1), Int(2)) >= 0 || Compare(NewAtom("a"), NewAtom("b")) >= 0 {
		t.Error("ordering within kinds broken")
	}
	if Compare(NewCompound("f", Int(1)), NewCompound("f", Int(2))) >= 0 {
		t.Error("compound args should order")
	}
}

func TestGround(t *testing.T) {
	x := NewVar("X")
	tm := NewCompound("f", x)
	if Ground(nil, tm) {
		t.Error("f(X) is not ground")
	}
	e := (*Env)(nil).Bind(x, NewAtom("a"))
	if !Ground(e, tm) {
		t.Error("f(a) is ground under env")
	}
}

func TestFreshVarIDsUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		v := NewVar("V")
		if seen[v.ID] {
			t.Fatalf("duplicate var ID %d", v.ID)
		}
		seen[v.ID] = true
	}
}

// Property: for any sequence of (var, value) bindings, every bound variable
// resolves to its value regardless of chain depth (snapshot correctness).
func TestPropertyEnvLookupTotal(t *testing.T) {
	f := func(vals []int8) bool {
		var e *Env
		vars := make([]*Var, len(vals))
		for i, x := range vals {
			vars[i] = NewVar("V")
			e = e.Bind(vars[i], Int(x))
		}
		for i, v := range vars {
			got, ok := e.Lookup(v)
			if !ok || got != Int(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and Equal terms compare to 0.
func TestPropertyCompareAntisymmetric(t *testing.T) {
	gen := func(n int8, s string) Term {
		switch n % 3 {
		case 0:
			return Int(n)
		case 1:
			return NewAtom(s)
		default:
			return NewCompound("f", Int(n), NewAtom(s))
		}
	}
	f := func(n1 int8, s1 string, n2 int8, s2 string) bool {
		a, b := gen(n1, s1), gen(n2, s2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEnvBind(b *testing.B) {
	v := NewVar("X")
	var e *Env
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e = e.Bind(v, Int(i))
		if e.Depth() > 1024 {
			e = nil
		}
	}
}

func BenchmarkEnvLookupDeep(b *testing.B) {
	var e *Env
	vars := make([]*Var, 256)
	for i := range vars {
		vars[i] = NewVar("V")
		e = e.Bind(vars[i], Int(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Lookup(vars[i%len(vars)]); !ok {
			b.Fatal("lost binding")
		}
	}
}
