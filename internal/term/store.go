package term

// This file implements the mutable half of the package's two binding
// representations. The immutable Env (env.go) gives persistent
// environments — what BFS, best-first and the OR-parallel frontier need,
// where many open nodes extend a shared ancestor. Sequential depth-first
// resolution needs none of that persistence: exactly one branch is alive
// at a time, and classic WAM-family engines exploit it with a destructive
// binding store plus a trail that undoes bindings on backtrack. Store is
// that representation; engine.TrailRun drives it.

// trailEntry records one destructive binding so Undo can erase it: the
// frame written and the slot within it.
type trailEntry struct {
	frame *Frame
	slot  int32
}

// Store is a mutable, trail-disciplined binding store. Bindings are
// written in place into per-frame binding arrays (Frame.b); every write is
// logged on the trail, and Undo rewinds to a Mark in time proportional to
// the bindings made since — the O(bindings-since-mark) backtracking step.
//
// The store is driven through its distinguished Env (Env method): Bind on
// that node writes destructively and returns the same node, so the unifier
// and the bytecode machine run unchanged over either representation. A
// Store is single-goroutine; concurrent queries each own one.
type Store struct {
	trail []trailEntry
	env   *Env

	// binds and undos count destructive writes and trail rewinds over the
	// store's whole lifetime (Reset does not clear them). The profiler
	// samples them as deltas; an unconditional increment is cheaper on the
	// hot path than a branch on whether anyone is watching.
	binds uint64
	undos uint64
}

// NewStore returns an empty store with its distinguished environment.
func NewStore() *Store {
	s := &Store{}
	s.env = &Env{st: s}
	return s
}

// Env returns the distinguished environment backed by the store. Bind on
// it mutates the store; Lookup reads the frame binding arrays.
func (s *Store) Env() *Env { return s.env }

// Reset empties the store for reuse by a new run, keeping the trail's
// capacity. The caller owns the consequences: any frame the old trail
// still pointed to must be dead (a finished run's frames are — the pool's
// free list only holds undone frames, and the rest die with the run).
func (s *Store) Reset() {
	tr := s.trail
	for i := range tr {
		tr[i] = trailEntry{}
	}
	s.trail = tr[:0]
	s.env.depth = 0
}

// Mark returns the current trail position, to pass to Undo.
func (s *Store) Mark() int { return len(s.trail) }

// Undo unbinds everything recorded since mark, most recent first, and
// truncates the trail back to it.
func (s *Store) Undo(mark int) {
	tr := s.trail
	for i := len(tr) - 1; i >= mark; i-- {
		e := tr[i]
		e.frame.b[e.slot] = nil
	}
	s.env.depth -= len(tr) - mark
	s.undos += uint64(len(tr) - mark)
	s.trail = tr[:mark]
}

// Counters returns the lifetime destructive-bind and undo counts, for
// profiler delta sampling.
func (s *Store) Counters() (binds, undos uint64) { return s.binds, s.undos }

// Overlay returns a fresh immutable extension point over the store's
// current state. Code that stages alternative binding sets before the
// machine commits to one (builtin evaluation, tabled answer resolution)
// binds against the overlay — producing ordinary immutable Env nodes that
// never touch the store — and the machine later replays the chosen
// alternative's Deltas destructively under a trail mark.
func (s *Store) Overlay() *Env {
	return &Env{parent: s.env, depth: s.env.depth, st: s}
}

// Binding is one (variable, value) pair staged in an overlay.
type Binding struct {
	Var *Var
	Val Term
}

// Deltas returns the bindings added to e above base, oldest first (bind
// order), so replaying them in sequence reproduces the overlay's state.
func (e *Env) Deltas(base *Env) []Binding {
	n := 0
	for c := e; c != base && c != nil; c = c.parent {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]Binding, n)
	for c := e; c != base && c != nil; c = c.parent {
		n--
		out[n] = Binding{Var: c.v, Val: c.t}
	}
	return out
}

// FramePool recycles activation frames whose lifetime ends at backtrack.
// Frames are keyed by slot count; Get re-mints the variable identities
// (fresh serials, the caller's print names) so a recycled frame is
// indistinguishable from a newly allocated one. A pool belongs to a single
// trail run — frames never migrate between queries, so pooling cannot leak
// terms across them.
//
// Pooled frames impose one contract, enforced by Detacher: no *Var pointer
// into a pooled frame may outlive the activation (solution bindings and
// table answers detach them into fresh standalone variables first).
type FramePool struct {
	bySize [][]*Frame

	// out and peak track the frames currently handed out and the deepest
	// that count has reached — the activation high-water mark of the run.
	// Plain ints: a pool is single-goroutine by the trail-run contract.
	// Frames that die with the run without a Put are folded away by
	// RunReset at the run boundary.
	out  int
	peak int
}

// Get returns a frame with len(names) freshly minted variables, reusing a
// recycled frame of that size when one is available. Nil for no names,
// matching NewFrame.
func (p *FramePool) Get(names []string) *Frame {
	n := len(names)
	if n == 0 {
		return nil
	}
	if p.out++; p.out > p.peak {
		p.peak = p.out
	}
	if n < len(p.bySize) {
		if l := p.bySize[n]; len(l) > 0 {
			f := l[len(l)-1]
			l[len(l)-1] = nil
			p.bySize[n] = l[:len(l)-1]
			// All bindings into a released frame were undone before Put
			// (they postdate the owning choice point's mark), so f.b is
			// already all-nil and can be kept.
			base := varCounter.Add(uint64(n)) - uint64(n)
			for i := range f.vars {
				f.vars[i] = Var{Name: names[i], ID: base + uint64(i) + 1, frame: f, idx: int32(i)}
			}
			return f
		}
	}
	f := NewFrame(names)
	f.pooled = true
	return f
}

// Put releases a frame back to the pool. Frames not minted by a pool
// (including nil ground activations) are ignored.
func (p *FramePool) Put(f *Frame) {
	if f == nil || !f.pooled {
		return
	}
	p.out--
	n := len(f.vars)
	for n >= len(p.bySize) {
		p.bySize = append(p.bySize, nil)
	}
	p.bySize[n] = append(p.bySize[n], f)
}

// RunReset ends one run's accounting: it returns the run's activation
// high-water mark and zeroes both counters, so frames that died with the
// run without a Put do not inflate the next run's baseline. Callers fold
// the returned peak into the process-wide marks (RecordPoolHighWater).
func (p *FramePool) RunReset() int {
	peak := p.peak
	p.out, p.peak = 0, 0
	return peak
}

// RefreshAll renames the variables of ts apart with one shared map, so
// variables shared across the slice stay shared. It returns the renamed
// terms and the original-to-fresh mapping. Trail runs refresh their root
// goals this way: the run binds destructively into the frames its goal
// terms reference, and the caller's terms (often parse-time structures
// reused across queries) must never be written.
func RefreshAll(ts []Term) ([]Term, map[*Var]*Var) {
	m := make(map[*Var]*Var, 8)
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = refresh(t, m)
	}
	return out, m
}

// Detacher resolves terms out of a trail run's store into standalone
// terms. Variables are first translated through Subst (a trail run's
// original-to-refreshed query variable map; nil is fine), then resolved
// against Env; any variable still unbound whose frame is pool-recycled is
// replaced by a fresh detached variable with the same print name,
// consistently across one Detacher's lifetime. The result survives
// backtracking and frame recycling.
type Detacher struct {
	Env   *Env
	Subst map[*Var]*Var
	fresh map[*Var]*Var
}

// Detach resolves t as described on the type.
func (d *Detacher) Detach(t Term) Term {
	if v, ok := t.(*Var); ok && d.Subst != nil {
		if nv, ok := d.Subst[v]; ok {
			t = nv
		}
	}
	t = d.Env.Resolve(t)
	switch t := t.(type) {
	case *Var:
		if t.frame == nil || !t.frame.pooled {
			return t
		}
		if nv, ok := d.fresh[t]; ok {
			return nv
		}
		nv := NewVar(t.Name)
		if d.fresh == nil {
			d.fresh = make(map[*Var]*Var, 4)
		}
		d.fresh[t] = nv
		return nv
	case *Compound:
		args := make([]Term, len(t.Args))
		// Pool-minted compounds are recycled on backtrack, so they are
		// copied unconditionally; others are shared when unchanged.
		changed := t.pooled
		for i, a := range t.Args {
			args[i] = d.Detach(a)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return t
		}
		return &Compound{Functor: t.Functor, Args: args}
	default:
		return t
	}
}

// CompoundPool recycles the short-lived compounds of clause-body
// instantiation, the dominant allocation of the resolution hot path. It
// works like the trail: every Get is logged, a caller takes a Mark before
// an activation, and Release returns everything minted since the mark to
// the per-arity free lists — which is sound exactly because a body goal's
// structure dies with its activation's choice point, and everything that
// outlives backtracking (solution bindings, table answers) leaves through
// Detacher, which copies pool-minted compounds unconditionally.
type CompoundPool struct {
	free [][]*Compound // indexed by arity
	log  []*Compound

	// peak is the deepest the log has grown this run — the high-water mark
	// of simultaneously live pooled compounds. Single-goroutine, like the
	// pool itself.
	peak int
}

// Mark returns the current log position, to pass to Release.
func (p *CompoundPool) Mark() int { return len(p.log) }

// Get returns a pooled compound with the given functor and arity. Args
// are not cleared: callers fill every slot, as with MakeCompound.
func (p *CompoundPool) Get(fn Sym, arity int) *Compound {
	var c *Compound
	if arity < len(p.free) {
		if l := p.free[arity]; len(l) > 0 {
			c = l[len(l)-1]
			l[len(l)-1] = nil
			p.free[arity] = l[:len(l)-1]
			c.Functor = fn
		}
	}
	if c == nil {
		c = MakeCompound(fn, arity)
		c.pooled = true
	}
	p.log = append(p.log, c)
	if len(p.log) > p.peak {
		p.peak = len(p.log)
	}
	return c
}

// Release recycles every compound minted since mark and truncates the
// log back to it.
func (p *CompoundPool) Release(mark int) {
	lg := p.log
	for i := len(lg) - 1; i >= mark; i-- {
		c := lg[i]
		lg[i] = nil
		n := len(c.Args)
		for n >= len(p.free) {
			p.free = append(p.free, nil)
		}
		p.free[n] = append(p.free[n], c)
	}
	p.log = lg[:mark]
}

// RunReset returns the run's pooled-compound high-water mark and zeroes
// it; see FramePool.RunReset.
func (p *CompoundPool) RunReset() int {
	peak := p.peak
	p.peak = 0
	return peak
}

// MakeCompound allocates a compound of the given arity with its argument
// slice in the same allocation, for hot paths (body-goal instantiation)
// that build many short-lived compounds. Arguments start nil; the caller
// fills them.
func MakeCompound(fn Sym, arity int) *Compound {
	switch arity {
	case 1:
		s := &struct {
			c Compound
			a [1]Term
		}{}
		s.c = Compound{Functor: fn, Args: s.a[:]}
		return &s.c
	case 2:
		s := &struct {
			c Compound
			a [2]Term
		}{}
		s.c = Compound{Functor: fn, Args: s.a[:]}
		return &s.c
	case 3:
		s := &struct {
			c Compound
			a [3]Term
		}{}
		s.c = Compound{Functor: fn, Args: s.a[:]}
		return &s.c
	case 4:
		s := &struct {
			c Compound
			a [4]Term
		}{}
		s.c = Compound{Functor: fn, Args: s.a[:]}
		return &s.c
	default:
		return &Compound{Functor: fn, Args: make([]Term, arity)}
	}
}
