package term

import "sync/atomic"

// ApproxBytes estimates the retained heap bytes of a stored term. Table
// accounting sums it over memoized answers, so the model is deliberately
// cheap and stable rather than an exact heap census: interned atoms and
// small integers cost only their interface words (the symbol table is
// shared process-wide and not attributed here), a variable its struct,
// and a compound its header plus argument slice plus arguments.
func ApproxBytes(t Term) int64 {
	switch t := t.(type) {
	case *Var:
		// Interface words + the Var struct (name header, serial, frame
		// back-pointer, slot index).
		return 64
	case *Compound:
		// Interface words + the Compound struct + the Args backing array
		// (one interface pair per slot), then the arguments themselves.
		b := int64(48 + 16*len(t.Args))
		for _, a := range t.Args {
			b += ApproxBytes(a)
		}
		return b
	default:
		// Atom and Int fit in the interface words.
		_ = t
		return 16
	}
}

// Process-wide pool high-water marks: the deepest simultaneous frame
// activation and pooled-compound population any trail run reached. Each
// run's pools count locally (plain ints, single-goroutine by the trail
// contract) and fold their peaks in here at Release, off the hot path.
var (
	framesHighWater    atomic.Int64
	compoundsHighWater atomic.Int64
)

// RecordPoolHighWater folds one run's pool peaks into the process-wide
// high-water marks (CAS-max).
func RecordPoolHighWater(frames, compounds int) {
	casMax(&framesHighWater, int64(frames))
	casMax(&compoundsHighWater, int64(compounds))
}

// PoolHighWater returns the process-wide pool high-water marks: the peak
// simultaneous activation-frame count and pooled-compound count of any
// single trail run since process start.
func PoolHighWater() (frames, compounds int64) {
	return framesHighWater.Load(), compoundsHighWater.Load()
}

func casMax(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}
