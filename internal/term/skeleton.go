package term

// Skeleton is the compile-once form of a term, built at clause-load time so
// that "renaming apart" — which a map-based deep copy previously paid on
// every resolution step — becomes a cheap activation: allocate one frame of
// fresh variables (NewFrame) and instantiate by slot lookup. Ground
// subterms are captured verbatim and shared by every activation, so a fact
// with a ground head activates with zero allocation.
//
// This is the software analogue of the paper's claim (section 6) that
// clause activation should be a constant-time hardware operation rather
// than a structure copy.
type Skeleton struct {
	kind    skKind
	slot    int32 // skSlot: frame index of the variable
	functor Sym   // skCompound: interned functor
	ground  Term  // skGround: the shared, variable-free subterm
	args    []Skeleton
}

type skKind uint8

const (
	skGround skKind = iota
	skSlot
	skCompound
)

// slotAlloc numbers the distinct variables of one or more terms 0..n-1 in
// first-occurrence order. Clause variable counts are small, so a linear
// scan beats a map.
type slotAlloc struct {
	vars  []*Var
	names []string
}

func (sa *slotAlloc) slotOf(v *Var) int32 {
	for i, w := range sa.vars {
		if w == v {
			return int32(i)
		}
	}
	sa.vars = append(sa.vars, v)
	sa.names = append(sa.names, v.Name)
	return int32(len(sa.vars) - 1)
}

func (sa *slotAlloc) compile(t Term) Skeleton {
	switch t := t.(type) {
	case *Var:
		return Skeleton{kind: skSlot, slot: sa.slotOf(t)}
	case *Compound:
		args := make([]Skeleton, len(t.Args))
		allGround := true
		for i, a := range t.Args {
			args[i] = sa.compile(a)
			if args[i].kind != skGround {
				allGround = false
			}
		}
		if allGround {
			return Skeleton{kind: skGround, ground: t}
		}
		return Skeleton{kind: skCompound, functor: t.Functor, args: args}
	default:
		return Skeleton{kind: skGround, ground: t}
	}
}

// Compile compiles a single term. The returned names (one per slot, in
// slot order) parameterize NewFrame at each activation.
func Compile(t Term) (Skeleton, []string) {
	var sa slotAlloc
	sk := sa.compile(t)
	return sk, sa.names
}

// CompileTerms compiles several terms against one shared slot numbering,
// so a variable occurring in multiple terms (a clause head and its body
// goals) maps to the same slot in all of them.
func CompileTerms(ts []Term) ([]Skeleton, []string) {
	var sa slotAlloc
	sks := make([]Skeleton, len(ts))
	for i, t := range ts {
		sks[i] = sa.compile(t)
	}
	return sks, sa.names
}

// Instantiate builds the term for one activation: slots index into frame,
// ground subterms are shared, and only the variable-containing spine is
// copied. A nil frame is fine for ground skeletons.
func (s *Skeleton) Instantiate(frame *Frame) Term {
	switch s.kind {
	case skSlot:
		return frame.Var(int(s.slot))
	case skCompound:
		args := make([]Term, len(s.args))
		for i := range s.args {
			args[i] = s.args[i].Instantiate(frame)
		}
		return &Compound{Functor: s.functor, Args: args}
	default:
		return s.ground
	}
}

// IsGround reports whether the skeleton has no variable slots anywhere
// (instantiation returns the stored term itself).
func (s *Skeleton) IsGround() bool { return s.kind == skGround }
