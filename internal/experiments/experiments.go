package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"blog/internal/andpar"
	"blog/internal/kb"
	"blog/internal/machine"
	"blog/internal/metrics"
	"blog/internal/par"
	"blog/internal/parse"
	"blog/internal/ref"
	"blog/internal/scoreboard"
	"blog/internal/search"
	"blog/internal/session"
	"blog/internal/spd"
	"blog/internal/table"
	"blog/internal/term"
	"blog/internal/weights"
	"blog/internal/workload"
)

func mustQuery(q string) []term.Term {
	goals, err := parse.Query(q)
	if err != nil {
		panic(err)
	}
	return goals
}

// E1 compares the three search disciplines on deep-failure programs: work
// to the first solution for DFS (Prolog), BFS, uninformed best-first, and
// best-first after one learning pass. Claim under test (sections 3 and 5):
// weighted best-first avoids the failing subtrees DFS must walk.
func E1(w io.Writer) error {
	t := metrics.NewTable(
		"E1  expansions to FIRST solution on DeepFailure(width, depth)",
		"width", "depth", "dfs", "bfs", "best(uninformed)", "best(learned)")
	for _, shape := range []struct{ width, depth int }{
		{4, 4}, {8, 4}, {8, 8}, {16, 8}, {16, 12},
	} {
		src := workload.DeepFailure(shape.width, shape.depth)
		db, _, err := kb.LoadString(src)
		if err != nil {
			return err
		}
		uni := weights.NewUniform(weights.DefaultConfig())
		row := []any{shape.width, shape.depth}
		for _, strat := range []search.Strategy{search.DFS, search.BFS, search.BestFirst} {
			res, err := search.Run(context.Background(), db, uni, mustQuery("top(W)"), search.Options{
				Strategy: strat, MaxSolutions: 1, MaxDepth: 64,
			})
			if err != nil {
				return err
			}
			row = append(row, res.Stats.Expanded)
		}
		// Learned: one full pass with learning, then re-query.
		tab := weights.NewTable(weights.Config{N: 16, A: 64})
		if _, err := search.Run(context.Background(), db, tab, mustQuery("top(W)"), search.Options{
			Strategy: search.BestFirst, Learn: true, MaxDepth: 64,
		}); err != nil {
			return err
		}
		res, err := search.Run(context.Background(), db, tab, mustQuery("top(W)"), search.Options{
			Strategy: search.BestFirst, Learn: true, MaxSolutions: 1, MaxDepth: 64,
		})
		if err != nil {
			return err
		}
		row = append(row, res.Stats.Expanded)
		t.AddRow(row...)
	}
	fmt.Fprint(w, t.String())
	return nil
}

// E2 measures the session learning curve: cost to the first solution per
// query over a session of similar queries. Claim under test (section 5):
// "especially where a user tries a second and third query that is similar
// to the first one with some minor changes, later searches should become
// more efficient", and ended sessions improve the initial condition of
// the next session. (All-solution queries cannot show this — exhausting
// the tree costs the same in any order — so the session asks for the
// first solution, the interactive use case the paper describes.)
func E2(w io.Writer) error {
	src := workload.DeepFailure(10, 6)
	db, _, err := kb.LoadString(src)
	if err != nil {
		return err
	}
	global := weights.NewTable(weights.Config{N: 16, A: 64})
	// A session of queries on the same predicate: the first is cold, the
	// rest profit from the locally learned weights.
	const queriesPerSession = 6
	t := metrics.NewTable(
		"E2  expansions to first solution, sessions of repeated top(W) queries on DeepFailure(10,6)",
		"query#", "session 1", "session 2 (after merge)")
	type curve []uint64
	runSession := func() curve {
		s := session.New(global, session.WithAlpha(0.7))
		var c curve
		for i := 0; i < queriesPerSession; i++ {
			res, err := search.Run(context.Background(), db, s, mustQuery("top(W)"), search.Options{
				Strategy: search.BestFirst, Learn: true, MaxSolutions: 1, MaxDepth: 48,
			})
			if err != nil {
				panic(err)
			}
			c = append(c, res.Stats.Expanded)
		}
		s.End()
		return c
	}
	c1 := runSession()
	c2 := runSession()
	var tot1, tot2 uint64
	for i := range c1 {
		t.AddRow(i+1, c1[i], c2[i])
		tot1 += c1[i]
		tot2 += c2[i]
	}
	t.AddRow("total", tot1, tot2)
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "session 1 learning curve: %d cold -> %d warm; session 2 starts warm at %d\n",
		c1[0], c1[len(c1)-1], c2[0])
	return nil
}

// E3 validates the weighting theory of section 4: the solver's weights
// satisfy the branch-and-bound requirements on the fully enumerated tree,
// and the section-5 heuristic's learned weights approach them (the paper:
// weights "will eventually converge to be proportional to those described
// by the theoretical model").
func E3(w io.Writer) error {
	t := metrics.NewTable(
		"E3  learned weights vs theoretical solution",
		"workload", "arcs solved", "infinite arcs", "residual", "rms dist (1 pass)", "rms dist (5 passes)", "inf agreement")
	cases := []struct {
		name  string
		src   string
		query string
	}{
		{"fig1 gf", Fig1Program, "gf(sam,G)"},
		{"family(3,2) gf", workload.FamilyTree(3, 2), "gf(p0,G)"},
		{"deepfail(6,4)", workload.DeepFailure(6, 4), "top(W)"},
	}
	for _, c := range cases {
		db, _, err := kb.LoadString(c.src)
		if err != nil {
			return err
		}
		outcomes, err := search.EnumerateOutcomes(context.Background(), db, mustQuery(c.query), 48)
		if err != nil {
			return err
		}
		sol, err := weights.Solve(outcomes)
		if err != nil {
			return err
		}
		if err := sol.Check(outcomes, 1e-6); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		dist := func(passes int) (float64, float64) {
			tab := weights.NewTable(weights.Config{N: 16, A: 64})
			for i := 0; i < passes; i++ {
				if _, err := search.Run(context.Background(), db, tab, mustQuery(c.query), search.Options{
					Strategy: search.BestFirst, Learn: true, MaxDepth: 48,
				}); err != nil {
					panic(err)
				}
			}
			return sol.Distance(tab)
		}
		r1, _ := dist(1)
		r5, inf5 := dist(5)
		t.AddRow(c.name, len(sol.W), len(sol.Infinite), sol.Residual, r1, r5, inf5)
	}
	fmt.Fprint(w, t.String())
	return nil
}

// E4 measures live OR-parallel speedup with goroutine workers on an
// all-solutions N-queens search. Claim under test (section 7):
// "OR-parallelism is specially effective in speeding up non-deterministic
// programs, specially when more than one solution is needed."
func E4(w io.Writer) error {
	db, _, err := kb.LoadString(workload.NQueens)
	if err != nil {
		return err
	}
	uni := weights.NewUniform(weights.DefaultConfig())
	t := metrics.NewTable(
		fmt.Sprintf("E4  OR-parallel speedup, all solutions of queens(7), two-level D=4 [GOMAXPROCS=%d]", runtime.GOMAXPROCS(0)),
		"workers", "wall ms", "speedup", "solutions", "migrations")
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := par.Run(context.Background(), db, uni, mustQuery("queens(7, Qs)"), par.Options{
			Workers: workers, Mode: par.TwoLevel, D: 4, LocalCap: 256, MaxDepth: 1024,
		})
		if err != nil {
			return err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if workers == 1 {
			base = ms
		}
		sp := 0.0
		if ms > 0 {
			sp = base / ms
		}
		t.AddRow(workers, ms, sp, len(res.Solutions), res.Stats.Migrations)
	}
	fmt.Fprint(w, t.String())
	return nil
}

// E5 sweeps the migration threshold D on the cycle-accurate machine with
// an unbalanced tree. Claim under test (section 6): D trades network
// traffic against load balance, and "can be modified at run time, based
// on the measured communication overhead".
func E5(w io.Writer) error {
	src := workload.FamilyTree(5, 3)
	db, _, err := kb.LoadString(src)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		"E5  migration threshold D sweep (machine simulation, anc(p0,X) over family(5,3), LocalCap=4)",
		"D", "makespan cycles", "migrations", "spills", "net transfers", "net blocked", "final D")
	type setting struct {
		d        float64
		adaptive bool
	}
	settings := []setting{
		{0, false}, {1, false}, {4, false}, {16, false}, {64, false}, {1e9, false},
		{0, true}, // section 6: D "modified at run time, based on the measured communication overhead"
	}
	for _, sc := range settings {
		cfg := machine.DefaultConfig()
		cfg.D = sc.d
		cfg.AdaptiveD = sc.adaptive
		cfg.LocalCap = 4 // small local lists keep the network busy
		cfg.MaxDepth = 32
		m, err := machine.New(cfg, db, weights.NewUniform(weights.DefaultConfig()))
		if err != nil {
			return err
		}
		rep, err := m.Run(mustQuery("anc(p0, X)"))
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%g", sc.d)
		if sc.d >= 1e9 {
			label = "inf"
		}
		if sc.adaptive {
			label = "adaptive(0)"
		}
		t.AddRow(label, int64(rep.Cycles), rep.Migrations, rep.Spills, rep.NetTransfers, rep.NetBlocked, rep.DFinal)
	}
	fmt.Fprint(w, t.String())
	return nil
}

// E6 measures SPD cache behavior: hit ratio and paging cost versus cache
// size, and SIMD vs MIMD ganging. Claim under test (section 6): "cheap
// RAM has made a cache attractive in a disk system", and SIMD cylinder
// mode handles cross-cylinder pointers by deferral.
func E6(w io.Writer) error {
	db, _, err := kb.LoadString(workload.FamilyTree(6, 3))
	if err != nil {
		return err
	}
	ws := weights.NewTable(weights.DefaultConfig())
	blocks := spd.BuildBlocks(db, ws)
	geo := spd.DefaultGeometry()
	goals := mustQuery("gf(p0,G)")
	seeds := spd.SeedsForGoals(db, goals)

	// One paging request touches tracks in nearly sorted order, so any
	// cache survives it. The cache question is about a *stream* of
	// requests: a working set of hot tracks re-touched by successive
	// queries. Build a request stream cycling over 6 distinct tracks of
	// SP 0 — caches smaller than the working set thrash, larger ones
	// converge to pure hits, exactly the "cheap RAM cache" argument.
	_ = seeds
	trackCap := geo.Surfaces * geo.BlocksPerTrack
	var hot []spd.BlockID
	for c := 0; len(hot) < 6; c++ {
		id := spd.BlockID(c * trackCap) // surface 0, cylinder c
		if int(id) >= db.Len() {
			break
		}
		hot = append(hot, id)
	}
	t := metrics.NewTable(
		"E6  SPD cache sweep: 60 pagings cycling a 6-track working set over family(6,3)",
		"cache tracks/SP", "mode", "track loads", "cache hits", "hit ratio", "cycles")
	for _, cache := range []int{1, 2, 4, 8, 16} {
		for _, mode := range []spd.Mode{spd.MIMD, spd.SIMD} {
			disk := spd.New(geo, mode, cache)
			if err := disk.Store(blocks); err != nil {
				return err
			}
			var total int64
			for req := 0; req < 60; req++ {
				_, cost := disk.PageSubgraph([]spd.BlockID{hot[req%len(hot)]}, 0)
				total += int64(cost)
			}
			st := disk.Stats()
			ratio := 0.0
			if st.TrackLoads+st.CacheHits > 0 {
				ratio = float64(st.CacheHits) / float64(st.TrackLoads+st.CacheHits)
			}
			t.AddRow(cache, mode.String(), st.TrackLoads, st.CacheHits, ratio, total)
		}
	}
	fmt.Fprint(w, t.String())
	return nil
}

// E7 measures the scoreboard processor: multitasking M chains to hide
// disk latency, and the multi-write memory's copy savings. Claims under
// test (section 6): "the delays due to disk access can be compensated for
// by developing other chains", and the shift-register memory makes block
// copies cheap.
func E7(w io.Writer) error {
	// Balance compute and disk so the latency-hiding curve is visible:
	// one in four expansions pages a block (300 cycles) while compute per
	// expansion is ~100-200 cycles, so a single task idles on the disk,
	// a few tasks overlap it, and many tasks saturate a functional unit.
	cfg := scoreboard.DefaultConfig()
	cfg.DiskCycles = 300
	jobs := make([]scoreboard.Job, 64)
	for i := range jobs {
		disk := 0
		if i%4 == 0 {
			disk = 1
		}
		jobs[i] = scoreboard.Job{
			Candidates: 3 + i%4,
			EnvWords:   32 + (i%5)*16,
			DiskBlocks: disk,
		}
	}
	t := metrics.NewTable(
		"E7  scoreboard processor: cycles for 64 expansions vs tasks M",
		"tasks M", "cycles", "disk util", "unify util", "copy util")
	for _, m := range []int{1, 2, 4, 8, 16} {
		rep := scoreboard.New(cfg, m).Run(jobs)
		t.AddRow(m, int64(rep.Cycles), rep.UnitUtil[scoreboard.Disk],
			rep.UnitUtil[scoreboard.Unify], rep.UnitUtil[scoreboard.Copy])
	}
	fmt.Fprint(w, t.String())

	t2 := metrics.NewTable(
		"E7b multi-write (shift register) memory ablation, M=4",
		"memory", "cycles", "copy passes", "words written")
	for _, mw := range []bool{true, false} {
		c := cfg
		c.MultiWrite = mw
		rep := scoreboard.New(c, 4).Run(jobs)
		name := "multi-write"
		if !mw {
			name = "single-write"
		}
		t2.AddRow(name, int64(rep.Cycles), rep.CopyPasses, rep.WordsWritten)
	}
	fmt.Fprint(w, t2.String())
	return nil
}

// E8 compares conjunction evaluation strategies from section 7:
// sequential (Prolog scheme), independent AND-parallel cross product, and
// the SPD semi-join for shared-variable joins.
func E8(w io.Writer) error {
	// Part 1: independent goals. Sequential AND evaluation re-derives the
	// second group once per solution of the first; the independent
	// decomposition derives each group once and cross-multiplies, so the
	// honest comparison is derivation work (expansions), with wall time
	// as a bonus from running groups concurrently.
	db, _, err := kb.LoadString(workload.MapColoring(9, 3) + "\nsize(s1). size(s2). size(s3). size(s4).\n")
	if err != nil {
		return err
	}
	uni := weights.NewUniform(weights.DefaultConfig())
	// size(S) first: Prolog's sequential scheme re-derives the whole
	// coloring subtree once per size, the decomposition derives it once.
	conj := "size(S), coloring(A,B,C,D,E,F,G,H,I)"
	seqStart := time.Now()
	seqRes, err := search.Run(context.Background(), db, uni, mustQuery(conj), search.Options{Strategy: search.DFS, MaxDepth: 64})
	if err != nil {
		return err
	}
	seqMs := float64(time.Since(seqStart).Microseconds()) / 1000
	parStart := time.Now()
	parRes, err := andpar.Solve(context.Background(), db, uni, mustQuery(conj), andpar.Options{
		Search:   search.Options{Strategy: search.DFS, MaxDepth: 64},
		Parallel: true,
	})
	if err != nil {
		return err
	}
	parMs := float64(time.Since(parStart).Microseconds()) / 1000
	t := metrics.NewTable(
		"E8a independent AND-parallelism: coloring(9 regions) x size(S)",
		"method", "solutions", "groups", "expansions", "wall ms")
	t.AddRow("sequential (Prolog scheme)", len(seqRes.Solutions), 1, seqRes.Stats.Expanded, seqMs)
	t.AddRow("independent AND-parallel", len(parRes.Solutions), parRes.GroupCount, parRes.Stats.Expanded, parMs)
	fmt.Fprint(w, t.String())

	// Part 2: shared-variable join via semi-join.
	t2 := metrics.NewTable(
		"E8b semi-join vs nested loop on r(X,K), s(K,V) [|r|=200 |s|=400]",
		"selectivity", "solutions", "nested attempts", "semijoin attempts", "marked/total", "spd cycles")
	for _, sel := range []float64{0.05, 0.25, 0.75} {
		jdb, _, err := kb.LoadString(workload.Join(200, 400, sel, 13))
		if err != nil {
			return err
		}
		jgoals := mustQuery("r(X,K), s(K,V)")
		nl, err := andpar.NestedLoopJoin(context.Background(), jdb, uni, jgoals[0], jgoals[1], search.Options{Strategy: search.DFS})
		if err != nil {
			return err
		}
		blocks := spd.BuildBlocks(jdb, weights.NewTable(weights.DefaultConfig()))
		disk := spd.New(spd.DefaultGeometry(), spd.MIMD, 8)
		if err := disk.Store(blocks); err != nil {
			return err
		}
		jgoals2 := mustQuery("r(X,K), s(K,V)")
		sj, err := andpar.SemiJoin(context.Background(), jdb, uni, jgoals2[0], jgoals2[1], disk, search.Options{Strategy: search.DFS})
		if err != nil {
			return err
		}
		if len(sj.Solutions) != len(nl.Solutions) {
			return fmt.Errorf("E8: semi-join %d solutions != nested %d", len(sj.Solutions), len(nl.Solutions))
		}
		t2.AddRow(sel, len(sj.Solutions), nl.JoinAttempts, sj.JoinAttempts,
			fmt.Sprintf("%d/%d", sj.MarkedClauses, sj.ConsumerClauses), int64(sj.SPDCycles))
	}
	fmt.Fprint(w, t2.String())
	return nil
}

// E9 evaluates the conditional-weights extension the paper sketches at
// the end of section 5 ("conditional probabilities (conditional
// information) might be added to the model, since a decision should
// depend on what has been previously decided"). The workload's leg arcs
// are shared database pointers whose success depends on the previously
// chosen mode, so the marginal scheme cannot assign blame; the
// context-conditioned table separates the (mode, leg) pairs. The paper's
// stated cost — "maintaining the database in this model is clearly more
// difficult" — shows up as the learned-state sizes.
func E9(w io.Writer) error {
	t := metrics.NewTable(
		"E9  conditional vs marginal weights on ContextSensitive(n): expansions to first solution after one learning pass",
		"n", "marginal", "conditional", "marginal state", "conditional state (pairs)")
	for _, n := range []int{4, 8, 16, 32} {
		db, _, err := kb.LoadString(workload.ContextSensitive(n))
		if err != nil {
			return err
		}
		run := func(ws weights.Store, maxSol int) (uint64, error) {
			res, err := search.Run(context.Background(), db, ws, mustQuery("plan(M,P)"), search.Options{
				Strategy: search.BestFirst, Learn: true, MaxSolutions: maxSol, MaxDepth: 32,
			})
			if err != nil {
				return 0, err
			}
			return res.Stats.Expanded, nil
		}
		marg := weights.NewTable(weights.Config{N: 16, A: 64})
		if _, err := run(marg, 0); err != nil {
			return err
		}
		mCost, err := run(marg, 1)
		if err != nil {
			return err
		}
		cond := weights.NewConditional(weights.Config{N: 16, A: 64})
		if _, err := run(cond, 0); err != nil {
			return err
		}
		cCost, err := run(cond, 1)
		if err != nil {
			return err
		}
		t.AddRow(n, mCost, cCost, marg.Len(), cond.Len())
	}
	fmt.Fprint(w, t.String())
	return nil
}

// E10 evaluates tabled resolution on graph reachability: transitive
// closure over strongly cyclic graphs written with the natural
// left-recursive rule (workload.Cyclic). The untabled OR-tree search can
// only be depth-capped — it enumerates proofs, not answers, and its
// answer set is incomplete at any finite cap — while tabled resolution
// computes the fixpoint once and returns the complete, duplicate-free set
// matching the bottom-up oracle. The table rows record the work gap and
// the second-query payoff (answers replayed from the memoized table).
func E10(w io.Writer) error {
	t := metrics.NewTable(
		"E10 tabled resolution: path(v0,Z) over Cyclic(n, n/2) left-recursive transitive closure",
		"n", "oracle answers", "untabled(depth 12) answers", "expansions", "tabled answers", "expansions", "repeat expansions", "replayed")
	for _, n := range []int{8, 16, 32} {
		db, _, err := kb.LoadString(workload.Cyclic(n, n/2, 2026))
		if err != nil {
			return err
		}
		model, err := ref.Eval(db)
		if err != nil {
			return err
		}
		oracle := len(model.Answers(mustQuery("path(v0,Z)")))

		uni := weights.NewUniform(weights.DefaultConfig())
		unt, err := search.Run(context.Background(), db, uni, mustQuery("path(v0,Z)"), search.Options{
			Strategy: search.DFS, MaxDepth: 12,
		})
		if err != nil {
			return err
		}
		untabledAnswers := map[string]bool{}
		for _, s := range unt.Solutions {
			untabledAnswers[s.Format(unt.QueryVars)] = true
		}

		sp := table.NewSpace(db, table.Config{})
		h := sp.NewHandle()
		tab, err := search.Run(context.Background(), db, uni, mustQuery("path(v0,Z)"), search.Options{
			Strategy: search.DFS, Tabler: h,
		})
		if err != nil {
			return err
		}
		if len(tab.Solutions) != oracle {
			return fmt.Errorf("E10: tabled found %d answers, oracle %d", len(tab.Solutions), oracle)
		}
		h2 := sp.NewHandle()
		rep, err := search.Run(context.Background(), db, uni, mustQuery("path(v0,Z)"), search.Options{
			Strategy: search.DFS, Tabler: h2,
		})
		if err != nil {
			return err
		}
		t.AddRow(n, oracle, len(untabledAnswers), unt.Stats.Expanded,
			len(tab.Solutions), tab.Stats.Expanded, rep.Stats.Expanded, h2.Stats().RederivationsAvoided)
	}
	fmt.Fprint(w, t.String())
	return nil
}

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Desc string
	Run  func(io.Writer) error
}

// All lists every figure and experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"F1", "figure 1: Prolog program and resolution trace", F1},
		{"F2", "figure 2: the database as a graph", F2},
		{"F3", "figure 3: the OR search tree", F3},
		{"F4", "figure 4 + section-5 worked search orders", F4},
		{"F5", "figure 5: parallel machine simulation", F5},
		{"F6", "figure 6: semantic paging disk", F6},
		{"E1", "strategy shootout on deep-failure programs", E1},
		{"E2", "session learning curve", E2},
		{"E3", "weight convergence to the section-4 theory", E3},
		{"E4", "live OR-parallel speedup (goroutines)", E4},
		{"E5", "migration threshold D sweep (machine)", E5},
		{"E6", "SPD cache sweep, SIMD vs MIMD", E6},
		{"E7", "scoreboard multitasking and multi-write memory", E7},
		{"E8", "AND-parallel: independence and semi-join", E8},
		{"E9", "conditional-weights extension (section-5 remark)", E9},
		{"E10", "tabled resolution: left-recursive transitive closure", E10},
	}
}

// ByID returns the runner for an experiment id, or false.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, r := range all {
		out[i] = r.ID
	}
	sort.Strings(out)
	return out
}
