// Package experiments implements the reproduction suite indexed in
// DESIGN.md: the paper's six illustrative figures (F1-F6) and the eight
// quantitative experiments (E1-E8) that test its performance claims.
// Both cmd/blogbench and the root benchmark file drive these entry
// points; EXPERIMENTS.md records their output against the paper.
package experiments

import (
	"context"
	"fmt"
	"io"

	"blog/internal/kb"
	"blog/internal/machine"
	"blog/internal/metrics"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/spd"
	"blog/internal/weights"
)

// Fig1Program is the program of figure 1, verbatim.
const Fig1Program = `
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).
`

// Sec5Program is the A :- B,C,D example of section 5.
const Sec5Program = `
a :- b, c, d.
b :- e.
b :- f.
c :- g.
d :- h.
e. f. g. h.
`

func loadFig1() (*kb.DB, error) {
	db, _, err := kb.LoadString(Fig1Program)
	return db, err
}

// F1 reproduces figure 1: the program listing and the Prolog (DFS)
// resolution trace for ?- gf(sam,G) down to its first solution.
func F1(w io.Writer) error {
	db, err := loadFig1()
	if err != nil {
		return err
	}
	goals, err := parse.Query("gf(sam,G)")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "F1  Figure 1: Prolog program and resolution trace for ?- gf(sam,G)")
	fmt.Fprint(w, Fig1Program)
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals, search.Options{
		Strategy: search.DFS, MaxSolutions: 1, RecordTrace: true,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "resolution trace (depth-first, first solution):")
	for _, line := range res.Trace {
		fmt.Fprintln(w, "  "+line)
	}
	for _, s := range res.Solutions {
		fmt.Fprintf(w, "solution: %s\n", s.Format(res.QueryVars))
	}
	return nil
}

// F2 reproduces figure 2: the database drawn as a network of facts and
// rule graph equivalences.
func F2(w io.Writer) error {
	db, err := loadFig1()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "F2  Figure 2: the database as a graph")
	fmt.Fprint(w, db.GraphText())
	return nil
}

// F3 reproduces figure 3: the full OR search tree for ?- gf(sam,G), with
// its two solution chains and one failing chain.
func F3(w io.Writer) error {
	db, err := loadFig1()
	if err != nil {
		return err
	}
	goals, err := parse.Query("gf(sam,G)")
	if err != nil {
		return err
	}
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals, search.Options{
		Strategy: search.DFS, RecordTree: true,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "F3  Figure 3: the OR search tree for ?- gf(sam,G)")
	fmt.Fprint(w, res.Tree.Render())
	sols, fails, _ := res.Tree.CountStatus()
	fmt.Fprintf(w, "solutions: %d   failing chains: %d   (paper: 2 and 1)\n", sols, fails)
	return nil
}

// F4 reproduces figure 4 and the worked search orders of section 5: the
// weighted linked-list structure, then the best-first expansion order
// under the two weight scenarios the text walks through.
func F4(w io.Writer) error {
	db, _, err := kb.LoadString(Sec5Program)
	if err != nil {
		return err
	}
	scenario := func(b1 float64) (*weights.Table, error) {
		tab := weights.NewTable(weights.Config{N: 16, A: 64})
		tab.Set(kb.Arc{Caller: kb.Query, Pos: 0, Callee: 0}, 0)
		tab.Set(kb.Arc{Caller: 0, Pos: 0, Callee: 1}, b1) // first B
		tab.Set(kb.Arc{Caller: 0, Pos: 0, Callee: 2}, 3)  // second B
		tab.Set(kb.Arc{Caller: 0, Pos: 1, Callee: 3}, 5)  // C
		tab.Set(kb.Arc{Caller: 0, Pos: 2, Callee: 4}, 6)  // D
		tab.Set(kb.Arc{Caller: 1, Pos: 0, Callee: 5}, 1)  // E
		tab.Set(kb.Arc{Caller: 2, Pos: 0, Callee: 6}, 2)  // F
		tab.Set(kb.Arc{Caller: 3, Pos: 0, Callee: 7}, 1)  // G
		tab.Set(kb.Arc{Caller: 4, Pos: 0, Callee: 8}, 1)  // H
		return tab, nil
	}
	fmt.Fprintln(w, "F4  Figure 4: weighted linked-list structure (section-5 example)")
	tab, err := scenario(4)
	if err != nil {
		return err
	}
	fmt.Fprint(w, db.LinkedListText(func(a kb.Arc) float64 { return tab.Weight(a) }))
	for _, sc := range []struct {
		b1   float64
		note string
	}{
		{4, "scenario 1 (first B = 4): second B expands first, then first B"},
		{1, "scenario 2 (first B = 1): B:-E expands before second B (depth-first-like)"},
	} {
		tab, err := scenario(sc.b1)
		if err != nil {
			return err
		}
		goals, err := parse.Query("a")
		if err != nil {
			return err
		}
		res, err := search.Run(context.Background(), db, tab, goals, search.Options{Strategy: search.BestFirst, RecordTrace: true})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sc.note)
		for _, line := range res.Trace {
			fmt.Fprintln(w, "  "+line)
		}
	}
	return nil
}

// F5 reproduces figure 5: a run of the whole parallel machine (processors
// x tasks, SPDs, min-seeking network) on the figure-1 query, reporting the
// per-component activity the figure illustrates.
func F5(w io.Writer) error {
	db, err := loadFig1()
	if err != nil {
		return err
	}
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg, db, weights.NewUniform(weights.DefaultConfig()))
	if err != nil {
		return err
	}
	goals, err := parse.Query("gf(sam,G)")
	if err != nil {
		return err
	}
	rep, err := m.Run(goals)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "F5  Figure 5: the parallel computing environment (cycle simulation)")
	fmt.Fprintf(w, "processors: %d x %d tasks   disks: %d   D: %g\n",
		cfg.Processors, cfg.TasksPerProcessor, cfg.Disks, cfg.D)
	fmt.Fprintf(w, "makespan: %d cycles   solutions: %d (first at cycle %d)\n",
		rep.Cycles, len(rep.Solutions), rep.FirstSolution)
	fmt.Fprintf(w, "expanded: %d   failures: %d   page-ins: %d (%d cycles)\n",
		rep.Expanded, rep.Failures, rep.PageIns, rep.PageInCycles)
	fmt.Fprintf(w, "network: %d transfers (%d blocked)   spills: %d   migrations: %d\n",
		rep.NetTransfers, rep.NetBlocked, rep.Spills, rep.Migrations)
	t := metrics.NewTable("per-processor utilization", "proc", "busy cycles", "utilization")
	for i, b := range rep.ProcBusy {
		t.AddRow(i, int64(b), rep.ProcUtil[i])
	}
	fmt.Fprint(w, t.String())
	for i, ds := range rep.DiskStats {
		fmt.Fprintf(w, "spd%d: loads=%d hits=%d seeks=%dcy rotate=%dcy marks=%d\n",
			i, ds.TrackLoads, ds.CacheHits, int64(ds.SeekCycles), int64(ds.RotateCycles), ds.MarksSet)
	}
	for _, s := range rep.Solutions {
		fmt.Fprintf(w, "  cycle %6d  proc %d  %s\n", s.At, s.Proc, s.Solution.Format(nil))
	}
	return nil
}

// F6 reproduces figure 6: the semantic paging disk in action — marking
// the figure-1 rule blocks, following pointers at increasing Hamming
// distance, and reading the paged subgraph, with full cost accounting.
func F6(w io.Writer) error {
	db, err := loadFig1()
	if err != nil {
		return err
	}
	ws := weights.NewTable(weights.DefaultConfig())
	blocks := spd.BuildBlocks(db, ws)
	// A deliberately small geometry so the 12-clause database spans
	// several cylinders and SIMD mode has cross-cylinder pointers to
	// defer, as the paper describes.
	geo := spd.Geometry{
		Cylinders: 8, Surfaces: 2, BlocksPerTrack: 2,
		SeekPerCylinder: 20, RotationPerBlock: 50, CacheOp: 1,
	}
	fmt.Fprintln(w, "F6  Figure 6: a semantic paging disk (SPD)")
	t := metrics.NewTable("subgraph paging from the gf rules (12 blocks over 3 cylinders)",
		"distance", "blocks paged", "track loads", "cache hits", "cycles")
	for _, dist := range []int{0, 1, 2} {
		disk := spd.New(geo, spd.MIMD, 4)
		if err := disk.Store(blocks); err != nil {
			return err
		}
		goals, err := parse.Query("gf(sam,G)")
		if err != nil {
			return err
		}
		seeds := spd.SeedsForGoals(db, goals)
		paged, cost := disk.PageSubgraph(seeds, dist)
		st := disk.Stats()
		t.AddRow(dist, len(paged), st.TrackLoads, st.CacheHits, int64(cost))
	}
	fmt.Fprint(w, t.String())
	// SIMD vs MIMD on the same operation.
	t2 := metrics.NewTable("SP ganging modes (distance 2)", "mode", "cycles", "deferred pointers")
	for _, mode := range []spd.Mode{spd.MIMD, spd.SIMD} {
		disk := spd.New(geo, mode, 4)
		if err := disk.Store(blocks); err != nil {
			return err
		}
		goals, _ := parse.Query("gf(sam,G)")
		_, cost := disk.PageSubgraph(spd.SeedsForGoals(db, goals), 2)
		t2.AddRow(mode.String(), int64(cost), disk.Stats().Deferred)
	}
	fmt.Fprint(w, t2.String())
	return nil
}
