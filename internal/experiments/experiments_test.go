package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r.Run(&buf); err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", r.ID)
			}
		})
	}
}

func TestF1TraceContents(t *testing.T) {
	var buf bytes.Buffer
	if err := F1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"gf(sam,G)", "f(sam,larry)", "f(larry,den)", "solution: G = den"} {
		if !strings.Contains(out, want) {
			t.Errorf("F1 missing %q", want)
		}
	}
}

func TestF3TreeCounts(t *testing.T) {
	var buf bytes.Buffer
	if err := F3(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "solutions: 2   failing chains: 1") {
		t.Errorf("F3 counts wrong:\n%s", buf.String())
	}
}

func TestF4WorkedOrders(t *testing.T) {
	var buf bytes.Buffer
	if err := F4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "scenario 1") || !strings.Contains(out, "scenario 2") {
		t.Error("F4 missing scenarios")
	}
	if !strings.Contains(out, "block 0: a :- b, c, d.") {
		t.Error("F4 missing linked list dump")
	}
}

func TestByIDAndIDs(t *testing.T) {
	if _, ok := ByID("F1"); !ok {
		t.Error("F1 missing")
	}
	if _, ok := ByID("zz"); ok {
		t.Error("unknown id found")
	}
	ids := IDs()
	if len(ids) != 16 {
		t.Errorf("ids = %v", ids)
	}
}

func TestE1TableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := E1(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// title + header + separator + 5 rows
	if len(lines) != 8 {
		t.Errorf("E1 lines = %d:\n%s", len(lines), buf.String())
	}
}

func BenchmarkF5Machine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := F5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
