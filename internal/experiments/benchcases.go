package experiments

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"blog"
	"blog/internal/andpar"
	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/server"
	"blog/internal/table"
	"blog/internal/term"
	"blog/internal/weights"
	"blog/internal/workload"
)

// BenchCase is one resolution-heavy exhibit benchmark. The module-root
// bench_test.go and `blogbench -bench-json` both run exactly this list,
// so the CI-smoked benchmarks and the BENCH.json perf trajectory can
// never measure different workloads under the same name.
type BenchCase struct {
	Name string
	Fn   func(b *testing.B)
}

func benchLoad(src string) *kb.DB {
	db, _, err := kb.LoadString(src)
	if err != nil {
		panic(err)
	}
	return db
}

func benchGoals(q string) []term.Term {
	goals, err := parse.Query(q)
	if err != nil {
		panic(err)
	}
	return goals
}

// BenchCases returns the shared exhibit benchmark list.
func BenchCases() []BenchCase {
	return []BenchCase{
		{"F1Fig1Trace", func(b *testing.B) {
			db := benchLoad(Fig1Program)
			ws := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("gf(sam,G)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.DFS, MaxSolutions: 1, RecordTrace: true,
				})
				if err != nil || len(res.Solutions) != 1 {
					b.Fatal("trace run failed")
				}
			}
		}},
		{"F3SearchTree", func(b *testing.B) {
			db := benchLoad(Fig1Program)
			ws := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("gf(sam,G)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.DFS, RecordTree: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if s, f, _ := res.Tree.CountStatus(); s != 2 || f != 1 {
					b.Fatal("wrong tree")
				}
			}
		}},
		{"F4BestFirstOrder", func(b *testing.B) {
			db := benchLoad(Sec5Program)
			tab := weights.NewTable(weights.Config{N: 16, A: 64})
			tab.Set(kb.Arc{Caller: kb.Query, Pos: 0, Callee: 0}, 0)
			tab.Set(kb.Arc{Caller: 0, Pos: 0, Callee: 1}, 4)
			tab.Set(kb.Arc{Caller: 0, Pos: 0, Callee: 2}, 3)
			tab.Set(kb.Arc{Caller: 0, Pos: 1, Callee: 3}, 5)
			tab.Set(kb.Arc{Caller: 0, Pos: 2, Callee: 4}, 6)
			tab.Set(kb.Arc{Caller: 1, Pos: 0, Callee: 5}, 1)
			tab.Set(kb.Arc{Caller: 2, Pos: 0, Callee: 6}, 2)
			tab.Set(kb.Arc{Caller: 3, Pos: 0, Callee: 7}, 1)
			tab.Set(kb.Arc{Caller: 4, Pos: 0, Callee: 8}, 1)
			goals := benchGoals("a")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := search.Run(context.Background(), db, tab, goals, search.Options{
					Strategy: search.BestFirst,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"E1Strategies/dfs", func(b *testing.B) {
			db := benchLoad(workload.DeepFailure(16, 12))
			goals := benchGoals("top(W)")
			ws := weights.NewUniform(weights.DefaultConfig())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.DFS, MaxSolutions: 1, MaxDepth: 64,
				})
				if err != nil || len(res.Solutions) != 1 {
					b.Fatal("dfs failed")
				}
			}
		}},
		{"E1Strategies/best-learned", func(b *testing.B) {
			db := benchLoad(workload.DeepFailure(16, 12))
			goals := benchGoals("top(W)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tab := weights.NewTable(weights.Config{N: 16, A: 64})
				if _, err := search.Run(context.Background(), db, tab, goals, search.Options{
					Strategy: search.BestFirst, Learn: true, MaxDepth: 64,
				}); err != nil {
					b.Fatal(err)
				}
				res, err := search.Run(context.Background(), db, tab, goals, search.Options{
					Strategy: search.BestFirst, Learn: true, MaxSolutions: 1, MaxDepth: 64,
				})
				if err != nil || len(res.Solutions) != 1 {
					b.Fatal("learned run failed")
				}
			}
		}},
		{"E8AndParallel/semijoin", func(b *testing.B) {
			db := benchLoad(workload.Join(200, 400, 0.25, 13))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("r(X,K), s(K,V)")
			opt := search.Options{Strategy: search.DFS}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := andpar.SemiJoin(context.Background(), db, uni, goals[0], goals[1], nil, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"E8AndParallel/nested", func(b *testing.B) {
			db := benchLoad(workload.Join(200, 400, 0.25, 13))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("r(X,K), s(K,V)")
			opt := search.Options{Strategy: search.DFS}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := andpar.NestedLoopJoin(context.Background(), db, uni, goals[0], goals[1], opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"E10Tabling/tabled", func(b *testing.B) {
			// Full fixpoint each iteration: a fresh space, so the cost of
			// building the transitive-closure table is what is measured.
			db := benchLoad(workload.Cyclic(24, 12, 7))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("path(v0,Z)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp := table.NewSpace(db, table.Config{})
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: sp.NewHandle(),
				})
				if err != nil || len(res.Solutions) != 24 || !res.Exhausted {
					b.Fatal("tabled run incomplete")
				}
			}
		}},
		{"E10Tabling/replay", func(b *testing.B) {
			// Warm table: every iteration is pure answer replay — the
			// steady-state cost tabling buys for repeated subgoals.
			db := benchLoad(workload.Cyclic(24, 12, 7))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("path(v0,Z)")
			sp := table.NewSpace(db, table.Config{})
			if _, err := search.Run(context.Background(), db, uni, goals, search.Options{
				Strategy: search.DFS, Tabler: sp.NewHandle(),
			}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: sp.NewHandle(),
				})
				if err != nil || len(res.Solutions) != 24 {
					b.Fatal("replay run failed")
				}
			}
		}},
		{"E10Tabling/untabled-capped", func(b *testing.B) {
			// The incomplete baseline: the same goal depth-capped without
			// tables (completion is impossible for the untabled engine).
			db := benchLoad(workload.Cyclic(24, 12, 7))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("path(v0,Z)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, MaxDepth: 12,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"E11Subsumption/min-cyclic", func(b *testing.B) {
			// Answer subsumption on the workload class nothing else
			// finishes: left-recursive weighted reachability over a cyclic
			// graph. A fresh space per iteration measures the full
			// cost-minimal fixpoint; the answers metric records the
			// O(node pairs) table the min(3) mode converges to.
			db := benchLoad(workload.WeightedCyclic(24, 12, 7))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("shortest(v0,Z,C)")
			b.ReportAllocs()
			var answers int
			for i := 0; i < b.N; i++ {
				sp := table.NewSpace(db, table.Config{})
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: sp.NewHandle(),
				})
				if err != nil || len(res.Solutions) != 24 || !res.Exhausted {
					b.Fatal("min-tabled run incomplete")
				}
				answers = len(res.Solutions)
			}
			b.ReportMetric(float64(answers), "answers")
		}},
		{"E11Subsumption/min-dag", func(b *testing.B) {
			// The same weighted DAG as plain-dag below, min(3)-tabled: the
			// table keeps one minimal answer per node pair, so the answers
			// metric here against plain-dag's is the O(node pairs) vs
			// O(path costs) memory claim in numbers.
			edges := workload.WeightedDAGEdges(6, 4, 3, 21)
			db := benchLoad(workload.ShortestProgram(edges, true))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("shortest(n0_0,Z,C)")
			b.ReportAllocs()
			var answers int
			for i := 0; i < b.N; i++ {
				sp := table.NewSpace(db, table.Config{})
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: sp.NewHandle(),
				})
				if err != nil || !res.Exhausted {
					b.Fatal("min-tabled dag run incomplete")
				}
				answers = len(res.Solutions)
			}
			b.ReportMetric(float64(answers), "answers")
		}},
		{"E11Subsumption/plain-dag", func(b *testing.B) {
			// The plain-tabled baseline on the same DAG: every distinct
			// cost tuple is memoized and replayed, the dominated-answer
			// flood subsumption exists to cut (on a cyclic graph this
			// baseline would not terminate at all).
			edges := workload.WeightedDAGEdges(6, 4, 3, 21)
			db := benchLoad(workload.ShortestProgram(edges, false))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("shortest(n0_0,Z,C)")
			b.ReportAllocs()
			var answers int
			for i := 0; i < b.N; i++ {
				sp := table.NewSpace(db, table.Config{})
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: sp.NewHandle(),
				})
				if err != nil || !res.Exhausted {
					b.Fatal("plain-tabled dag run incomplete")
				}
				answers = len(res.Solutions)
			}
			b.ReportMetric(float64(answers), "answers")
		}},
		{"E11Subsumption/replay", func(b *testing.B) {
			// Warm min table: steady-state replay of the memoized minima.
			db := benchLoad(workload.WeightedCyclic(24, 12, 7))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("shortest(v0,Z,C)")
			sp := table.NewSpace(db, table.Config{})
			if _, err := search.Run(context.Background(), db, uni, goals, search.Options{
				Strategy: search.DFS, Tabler: sp.NewHandle(),
			}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: sp.NewHandle(),
				})
				if err != nil || len(res.Solutions) != 24 {
					b.Fatal("replay run failed")
				}
			}
		}},
		{"E12Compiled/e1-compiled", func(b *testing.B) {
			// The bytecode engine on the E1 deep-failure sweep; pair with
			// e1-treewalk for the compilation speedup in one report.
			db := benchLoad(workload.DeepFailure(16, 12))
			goals := benchGoals("top(W)")
			ws := weights.NewUniform(weights.DefaultConfig())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.DFS, MaxSolutions: 1, MaxDepth: 64,
				})
				if err != nil || len(res.Solutions) != 1 {
					b.Fatal("compiled dfs failed")
				}
			}
		}},
		{"E12Compiled/e1-treewalk", func(b *testing.B) {
			// The tree-walking oracle on the identical workload and budget.
			db := benchLoad(workload.DeepFailure(16, 12))
			goals := benchGoals("top(W)")
			ws := weights.NewUniform(weights.DefaultConfig())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.DFS, MaxSolutions: 1, MaxDepth: 64, NoVM: true,
				})
				if err != nil || len(res.Solutions) != 1 {
					b.Fatal("treewalk dfs failed")
				}
			}
		}},
		{"E12Compiled/e10-compiled", func(b *testing.B) {
			// Full tabled fixpoint with the generators running compiled: a
			// fresh space per iteration, as in E10Tabling/tabled.
			db := benchLoad(workload.Cyclic(24, 12, 7))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("path(v0,Z)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp := table.NewSpace(db, table.Config{})
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: sp.NewHandle(),
				})
				if err != nil || len(res.Solutions) != 24 || !res.Exhausted {
					b.Fatal("compiled tabled run incomplete")
				}
			}
		}},
		{"E12Compiled/e10-treewalk", func(b *testing.B) {
			// The same fixpoint build forced onto the tree-walking oracle.
			db := benchLoad(workload.Cyclic(24, 12, 7))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("path(v0,Z)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp := table.NewSpace(db, table.Config{})
				h := sp.NewHandle()
				h.SetNoVM(true)
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: h, NoVM: true,
				})
				if err != nil || len(res.Solutions) != 24 || !res.Exhausted {
					b.Fatal("treewalk tabled run incomplete")
				}
			}
		}},
		{"E13BindingStore/trail-deepfail", func(b *testing.B) {
			// Sequential DFS on the destructive trail store: bindings
			// written in place, undone on backtrack, scratch recycled
			// across runs. Pair with env-deepfail for the representation
			// speedup in one report.
			db := benchLoad(workload.DeepFailure(16, 12))
			goals := benchGoals("top(W)")
			ws := weights.NewUniform(weights.DefaultConfig())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.DFS, MaxSolutions: 1, MaxDepth: 64,
				})
				if err != nil || len(res.Solutions) != 1 {
					b.Fatal("trail dfs failed")
				}
			}
		}},
		{"E13BindingStore/env-deepfail", func(b *testing.B) {
			// The identical workload on the persistent-Env frontier
			// (Options.NoTrail), the differential oracle's representation.
			db := benchLoad(workload.DeepFailure(16, 12))
			goals := benchGoals("top(W)")
			ws := weights.NewUniform(weights.DefaultConfig())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.DFS, MaxSolutions: 1, MaxDepth: 64, NoTrail: true,
				})
				if err != nil || len(res.Solutions) != 1 {
					b.Fatal("env dfs failed")
				}
			}
		}},
		{"E13BindingStore/trail-enumerate", func(b *testing.B) {
			// Exhaustive enumeration (every solution, full backtrack over
			// the whole tree): the regime where trail undo and scratch
			// pooling pay on every branch, not just the failing ones.
			db := benchLoad(workload.FamilyTree(4, 3))
			goals := benchGoals("anc(p0, X)")
			ws := weights.NewUniform(weights.DefaultConfig())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.DFS, MaxDepth: 32,
				})
				if err != nil || !res.Exhausted || len(res.Solutions) == 0 {
					b.Fatal("trail enumeration failed")
				}
			}
		}},
		{"E13BindingStore/env-enumerate", func(b *testing.B) {
			db := benchLoad(workload.FamilyTree(4, 3))
			goals := benchGoals("anc(p0, X)")
			ws := weights.NewUniform(weights.DefaultConfig())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.DFS, MaxDepth: 32, NoTrail: true,
				})
				if err != nil || !res.Exhausted || len(res.Solutions) == 0 {
					b.Fatal("env enumeration failed")
				}
			}
		}},
		{"E14Snapshot/cold-fixpoint", func(b *testing.B) {
			// Cold boot without a snapshot: every iteration is a fresh
			// space that must run the full transitive-closure fixpoint
			// before the first answer — the restart cost persistence
			// removes. Pair with snapshot-warm for the boot speedup.
			db := benchLoad(workload.Cyclic(24, 12, 7))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("path(v0,Z)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp := table.NewSpace(db, table.Config{})
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: sp.NewHandle(),
				})
				if err != nil || len(res.Solutions) != 24 || !res.Exhausted {
					b.Fatal("cold run incomplete")
				}
			}
		}},
		{"E14Snapshot/snapshot-warm", func(b *testing.B) {
			// Snapshot-warm boot: each iteration loads the persisted
			// tables into a fresh space and answers the same query by
			// replay — deserialization plus a table hit, zero fixpoint
			// rounds.
			db := benchLoad(workload.Cyclic(24, 12, 7))
			uni := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("path(v0,Z)")
			seed := table.NewSpace(db, table.Config{})
			if _, err := search.Run(context.Background(), db, uni, goals, search.Options{
				Strategy: search.DFS, Tabler: seed.NewHandle(),
			}); err != nil {
				b.Fatal(err)
			}
			var snap bytes.Buffer
			if n, err := seed.WriteSnapshot(&snap); err != nil || n == 0 {
				b.Fatalf("snapshot write: %d tables, %v", n, err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := table.NewSpace(db, table.Config{})
				if _, skipped, err := sp.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil || skipped != 0 {
					b.Fatalf("snapshot load: skipped %d, %v", skipped, err)
				}
				res, err := search.Run(context.Background(), db, uni, goals, search.Options{
					Strategy: search.DFS, Tabler: sp.NewHandle(),
				})
				if err != nil || len(res.Solutions) != 24 || !res.Exhausted {
					b.Fatal("warm run incomplete")
				}
				if sp.Totals().Created != 1 || sp.Totals().Hits != 1 {
					b.Fatal("warm run produced instead of replaying")
				}
			}
		}},
		{"ServerThroughput", func(b *testing.B) {
			// End-to-end query service: concurrent HTTP clients against one
			// shared Program through blogd's handler, pool and wire types.
			prog, err := blog.LoadString(workload.FamilyTree(4, 3))
			if err != nil {
				b.Fatal(err)
			}
			srv := server.New(server.Config{Program: prog, QueueLen: 4096})
			ts := httptest.NewServer(srv)
			defer ts.Close()
			client := ts.Client()
			body := []byte(`{"goal":"gf(p0,G)","strategy":"dfs"}`)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Errorf("status %d", resp.StatusCode)
						return
					}
				}
			})
		}},
		{"AblationEnvRep", func(b *testing.B) {
			db := benchLoad(workload.FamilyTree(5, 3))
			ws := weights.NewUniform(weights.DefaultConfig())
			goals := benchGoals("anc(p0, X)")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), db, ws, goals, search.Options{
					Strategy: search.BestFirst, MaxDepth: 32,
				})
				if err != nil || !res.Exhausted {
					b.Fatal("search failed")
				}
			}
		}},
	}
}
