package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenFigures locks the deterministic figure outputs byte-for-byte:
// F1-F4 and F6 depend only on the example programs and fixed latency
// constants, so any drift is a behavior change that must be reviewed.
// (F5 and the E-series include host-dependent or tuning-prone values and
// are validated by their own assertions instead.)
func TestGoldenFigures(t *testing.T) {
	for _, id := range []string{"F1", "F2", "F3", "F4", "F6"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			var buf bytes.Buffer
			if err := r.Run(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s",
					id, buf.String(), want)
			}
		})
	}
}
