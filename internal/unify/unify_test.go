package unify

import (
	"testing"
	"testing/quick"

	"blog/internal/term"
)

func atom(s string) term.Term { return term.NewAtom(s) }
func num(i int64) term.Term   { return term.Int(i) }
func v(name string) *term.Var { return term.NewVar(name) }
func f(n string, a ...term.Term) term.Term {
	return term.NewCompound(n, a...)
}

func TestUnifyAtoms(t *testing.T) {
	if _, ok := Unify(nil, atom("a"), atom("a")); !ok {
		t.Error("a = a should unify")
	}
	if _, ok := Unify(nil, atom("a"), atom("b")); ok {
		t.Error("a = b should fail")
	}
}

func TestUnifyInts(t *testing.T) {
	if _, ok := Unify(nil, num(3), num(3)); !ok {
		t.Error("3 = 3 should unify")
	}
	if _, ok := Unify(nil, num(3), num(4)); ok {
		t.Error("3 = 4 should fail")
	}
	if _, ok := Unify(nil, num(3), atom("3")); ok {
		t.Error("3 = '3' should fail (int is not atom)")
	}
}

func TestUnifyVarBinding(t *testing.T) {
	x := v("X")
	e, ok := Unify(nil, x, atom("a"))
	if !ok {
		t.Fatal("X = a should unify")
	}
	if got := e.Resolve(x); got != atom("a") {
		t.Errorf("X resolved to %v", got)
	}
	// Symmetric direction.
	y := v("Y")
	e2, ok := Unify(nil, atom("b"), y)
	if !ok || e2.Resolve(y) != atom("b") {
		t.Error("b = Y should bind Y")
	}
}

func TestUnifyVarVar(t *testing.T) {
	x, y := v("X"), v("Y")
	e, ok := Unify(nil, x, y)
	if !ok {
		t.Fatal("X = Y should unify")
	}
	e, ok = Unify(e, x, atom("a"))
	if !ok {
		t.Fatal("X = a should unify after X=Y")
	}
	if got := e.Resolve(y); got != atom("a") {
		t.Errorf("Y should see a, got %v", got)
	}
}

func TestUnifyCompound(t *testing.T) {
	x, y := v("X"), v("Y")
	e, ok := Unify(nil, f("f", x, atom("b")), f("f", atom("a"), y))
	if !ok {
		t.Fatal("f(X,b) = f(a,Y) should unify")
	}
	if e.Resolve(x) != atom("a") || e.Resolve(y) != atom("b") {
		t.Errorf("X=%v Y=%v", e.Resolve(x), e.Resolve(y))
	}
}

func TestUnifyCompoundMismatch(t *testing.T) {
	if _, ok := Unify(nil, f("f", atom("a")), f("g", atom("a"))); ok {
		t.Error("different functors should fail")
	}
	if _, ok := Unify(nil, f("f", atom("a")), f("f", atom("a"), atom("b"))); ok {
		t.Error("different arities should fail")
	}
	if _, ok := Unify(nil, f("f", atom("a")), atom("f")); ok {
		t.Error("compound vs atom should fail")
	}
}

func TestUnifyFailureLeavesEnvUsable(t *testing.T) {
	x := v("X")
	e, _ := Unify(nil, x, atom("a"))
	e2, ok := Unify(e, f("p", x), f("p", atom("b")))
	if ok {
		t.Fatal("p(a) = p(b) should fail")
	}
	// The returned env must be the original, still resolving X to a.
	if e2.Resolve(x) != atom("a") {
		t.Error("failed unification corrupted the environment")
	}
}

func TestUnifyPartialBindingNotLeaked(t *testing.T) {
	x, y := v("X"), v("Y")
	// First arg binds X, second arg fails: X must stay unbound in returned env.
	e, ok := Unify(nil, f("f", x, atom("b")), f("f", atom("a"), atom("c")))
	if ok {
		t.Fatal("should fail on second arg")
	}
	if _, bound := e.Lookup(x); bound {
		t.Error("partial binding leaked after failure")
	}
	_ = y
}

func TestUnifySharedSubterm(t *testing.T) {
	x := v("X")
	// f(X, X) = f(a, Y) binds X=a and Y=a.
	y := v("Y")
	e, ok := Unify(nil, f("f", x, x), f("f", atom("a"), y))
	if !ok {
		t.Fatal("should unify")
	}
	if e.Resolve(y) != atom("a") {
		t.Errorf("Y = %v, want a", e.Resolve(y))
	}
	// f(X, X) = f(a, b) must fail.
	if _, ok := Unify(nil, f("f", x, x), f("f", atom("a"), atom("b"))); ok {
		t.Error("f(X,X) = f(a,b) should fail")
	}
}

func TestOccursCheck(t *testing.T) {
	x := v("X")
	if _, ok := UnifyOC(nil, x, f("f", x)); ok {
		t.Error("X = f(X) should fail with occurs check")
	}
	// Without occurs check it "succeeds" (creating a cyclic binding).
	if _, ok := Unify(nil, x, f("s", x)); !ok {
		t.Error("X = s(X) should succeed without occurs check")
	}
	// Occurs check through an intermediate binding.
	y := v("Y")
	e, _ := Unify(nil, y, f("g", x))
	if _, ok := UnifyOC(e, x, f("f", y)); ok {
		t.Error("X = f(Y) with Y=g(X) should fail occurs check")
	}
}

func TestCanUnify(t *testing.T) {
	x := v("X")
	e, _ := Unify(nil, x, atom("a"))
	if !CanUnify(e, f("p", x), f("p", atom("a"))) {
		t.Error("p(a) should be unifiable with p(a)")
	}
	if CanUnify(e, f("p", x), f("p", atom("b"))) {
		t.Error("p(a) should not be unifiable with p(b)")
	}
}

func TestMatchOneWay(t *testing.T) {
	x := v("X")
	// Pattern variable binds to database term.
	e, ok := Match(nil, f("f", atom("sam"), x), f("f", atom("sam"), atom("larry")))
	if !ok || e.Resolve(x) != atom("larry") {
		t.Fatalf("match failed: ok=%v X=%v", ok, e.Resolve(x))
	}
	// Database variable must NOT be bound by pattern constant: one-way only.
	dbv := v("D")
	if _, ok := Match(nil, f("f", atom("a")), f("f", dbv)); ok {
		t.Error("one-way match must not instantiate database variables")
	}
	if _, ok := Match(nil, atom("a"), atom("b")); ok {
		t.Error("a should not match b")
	}
	if _, ok := Match(nil, num(1), num(1)); !ok {
		t.Error("1 should match 1")
	}
}

func TestUnifyDeepList(t *testing.T) {
	mk := func(tail term.Term) term.Term {
		l := tail
		for i := 99; i >= 0; i-- {
			l = term.Cons(num(int64(i)), l)
		}
		return l
	}
	x := v("Tail")
	e, ok := Unify(nil, mk(x), mk(term.EmptyList))
	if !ok {
		t.Fatal("long list unification failed")
	}
	if e.Resolve(x) != term.EmptyList {
		t.Error("tail should bind to []")
	}
}

// Property: unification is symmetric in success for var-free terms.
func TestPropertyUnifySymmetric(t *testing.T) {
	gen := func(a, b int8) (term.Term, term.Term) {
		mk := func(n int8) term.Term {
			switch n % 4 {
			case 0:
				return num(int64(n))
			case 1:
				return atom("a")
			case 2:
				return f("f", num(int64(n%3)))
			default:
				return f("g", atom("a"), num(int64(n%2)))
			}
		}
		return mk(a), mk(b)
	}
	prop := func(a, b int8) bool {
		ta, tb := gen(a, b)
		_, ok1 := Unify(nil, ta, tb)
		_, ok2 := Unify(nil, tb, ta)
		return ok1 == ok2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: after successful unification, both sides resolve deeply to
// equal terms.
func TestPropertyUnifyYieldsEqualTerms(t *testing.T) {
	prop := func(n int8, useVar bool) bool {
		x := v("X")
		var lhs term.Term = f("f", x, num(int64(n)))
		var rhs term.Term
		if useVar {
			rhs = f("f", num(int64(n)), num(int64(n)))
		} else {
			rhs = f("f", atom("c"), num(int64(n)))
		}
		e, ok := Unify(nil, lhs, rhs)
		if !ok {
			return true
		}
		return term.Equal(e.ResolveDeep(lhs), e.ResolveDeep(rhs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: unification is reflexive — any term unifies with itself
// under any environment without adding bindings.
func TestPropertyUnifyReflexive(t *testing.T) {
	gen := func(n int8, s string) term.Term {
		base := []term.Term{atom("a"), num(int64(n)), v("V")}
		t1 := base[int(uint8(n))%len(base)]
		if n%2 == 0 {
			return f("w", t1, atom(s))
		}
		return t1
	}
	prop := func(n int8, s string) bool {
		tm := gen(n, s)
		e, ok := Unify(nil, tm, tm)
		return ok && e.Depth() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: unifying a fresh variable with any term always succeeds and
// the variable resolves to that term.
func TestPropertyVarUnifiesWithAnything(t *testing.T) {
	prop := func(n int8, s string) bool {
		var tm term.Term
		switch n % 3 {
		case 0:
			tm = num(int64(n))
		case 1:
			tm = atom(s)
		default:
			tm = f("g", num(int64(n)), atom(s))
		}
		x := v("X")
		e, ok := Unify(nil, x, tm)
		return ok && term.Equal(e.ResolveDeep(x), tm)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Match is a restriction of Unify — whatever Match accepts,
// Unify accepts too (with at least the same bindings possible).
func TestPropertyMatchImpliesUnify(t *testing.T) {
	prop := func(a, b int8) bool {
		mk := func(n int8, withVar bool) term.Term {
			if withVar {
				return f("f", v("P"), num(int64(n)))
			}
			return f("f", atom("k"), num(int64(n)))
		}
		pat := mk(a, a%2 == 0)
		dat := mk(b, false)
		if _, ok := Match(nil, pat, dat); ok {
			if _, ok2 := Unify(nil, pat, dat); !ok2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnifyFlat(b *testing.B) {
	l := f("f", atom("a"), atom("b"), atom("c"), num(1), num(2))
	r := f("f", v("A"), v("B"), v("C"), v("D"), v("E"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := Unify(nil, l, r); !ok {
			b.Fatal("unify failed")
		}
	}
}

func BenchmarkUnifyList100(b *testing.B) {
	items := make([]term.Term, 100)
	for i := range items {
		items[i] = num(int64(i))
	}
	l := term.FromList(items)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := Unify(nil, l, term.FromList(items)); !ok {
			b.Fatal("unify failed")
		}
	}
}
