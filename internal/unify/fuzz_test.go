package unify

import (
	"testing"

	"blog/internal/term"
)

// fuzzDecoder turns fuzz bytes into terms over a small shared vocabulary:
// atoms a/b/c, small integers, four shared variables, and f/g compounds.
// Sharing the variable pool between the two decoded terms is what makes
// the fuzzer reach interesting unification cases (aliasing, repeated
// variables, var-to-compound bindings).
type fuzzDecoder struct {
	data []byte
	pos  int
	vars [4]*term.Var
}

func newFuzzDecoder(data []byte) *fuzzDecoder {
	d := &fuzzDecoder{data: data}
	for i := range d.vars {
		d.vars[i] = term.NewVar("V")
	}
	return d
}

func (d *fuzzDecoder) next() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *fuzzDecoder) term(depth int) term.Term {
	b := d.next()
	if depth >= 4 {
		// Cap nesting: leaves only.
		b %= 3
	}
	switch b % 5 {
	case 0:
		return term.Int(int64(b >> 4))
	case 1:
		return term.NewAtom(string(rune('a' + b%3)))
	case 2:
		return d.vars[b%4]
	case 3:
		n := int(b%3) + 1
		args := make([]term.Term, n)
		for i := range args {
			args[i] = d.term(depth + 1)
		}
		return term.NewCompound("f", args...)
	default:
		return term.Cons(d.term(depth+1), d.term(depth+1))
	}
}

// naiveUnify is an independent reference unifier over an explicit
// substitution map (the textbook algorithm), deliberately sharing no code
// with the engine's environment-based unifier. No occurs check, matching
// Unify.
func naiveUnify(sub map[*term.Var]term.Term, a, b term.Term) bool {
	a = naiveWalk(sub, a)
	b = naiveWalk(sub, b)
	if a == b {
		return true
	}
	if av, ok := a.(*term.Var); ok {
		sub[av] = b
		return true
	}
	if bv, ok := b.(*term.Var); ok {
		sub[bv] = a
		return true
	}
	switch at := a.(type) {
	case term.Atom:
		bt, ok := b.(term.Atom)
		return ok && at == bt
	case term.Int:
		bt, ok := b.(term.Int)
		return ok && at == bt
	case *term.Compound:
		bt, ok := b.(*term.Compound)
		if !ok || at.Functor != bt.Functor || len(at.Args) != len(bt.Args) {
			return false
		}
		for i := range at.Args {
			if !naiveUnify(sub, at.Args[i], bt.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func naiveWalk(sub map[*term.Var]term.Term, t term.Term) term.Term {
	for {
		v, ok := t.(*term.Var)
		if !ok {
			return t
		}
		b, ok := sub[v]
		if !ok {
			return v
		}
		t = b
	}
}

// naiveApply deeply applies the substitution.
func naiveApply(sub map[*term.Var]term.Term, t term.Term) term.Term {
	t = naiveWalk(sub, t)
	c, ok := t.(*term.Compound)
	if !ok {
		return t
	}
	args := make([]term.Term, len(c.Args))
	for i, a := range c.Args {
		args[i] = naiveApply(sub, a)
	}
	return &term.Compound{Functor: c.Functor, Args: args}
}

// FuzzUnify decodes random term pairs and checks the engine's slot/frame
// environment unifier against the naive substitution unifier: both must
// agree on unifiability, and each must produce an actual unifier (after
// applying the bindings, the two terms are structurally equal).
func FuzzUnify(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 2})                            // V0 = V0
	f.Add([]byte{2, 7})                            // V0 = V3
	f.Add([]byte{3, 2, 3, 7})                      // f(V0) = f(V3)
	f.Add([]byte{4, 2, 1, 4, 3, 6, 0})             // list cells with vars
	f.Add([]byte{8, 2, 6, 0, 8, 1, 2, 9})          // nested compounds
	f.Add([]byte{13, 13, 2, 5, 0, 13, 2, 2, 5, 1}) // deep sharing
	f.Add([]byte{3, 3, 2, 3, 7, 3, 3, 7, 3, 2})    // f(f(V0),f(V3)) style
	f.Fuzz(func(t *testing.T, data []byte) {
		d := newFuzzDecoder(data)
		a := d.term(0)
		b := d.term(0)

		env, okEnv := Unify(nil, a, b)
		sub := make(map[*term.Var]term.Term)
		okNaive := naiveUnify(sub, a, b)

		if okEnv != okNaive {
			t.Fatalf("unifiability disagreement: env=%v naive=%v\na = %s\nb = %s",
				okEnv, okNaive, a, b)
		}
		if !okEnv {
			return
		}
		// The occurs-check unifier must never succeed where plain
		// unification failed; where it fails despite okEnv, the bindings
		// are cyclic and deep application would not terminate — the
		// agreement check above is all that is decidable there.
		envOC, okOC := UnifyOC(nil, a, b)
		if !okOC {
			return
		}
		// Each unifier's own bindings must make the terms equal.
		if ra, rb := env.ResolveDeep(a), env.ResolveDeep(b); !term.Equal(ra, rb) {
			t.Fatalf("env unifier is not a unifier:\na = %s -> %s\nb = %s -> %s", a, ra, b, rb)
		}
		if na, nb := naiveApply(sub, a), naiveApply(sub, b); !term.Equal(na, nb) {
			t.Fatalf("naive unifier is not a unifier:\na = %s -> %s\nb = %s -> %s", a, na, b, nb)
		}
		if ra, rb := envOC.ResolveDeep(a), envOC.ResolveDeep(b); !term.Equal(ra, rb) {
			t.Fatalf("occurs-check unifier is not a unifier:\na = %s -> %s\nb = %s -> %s", a, ra, b, rb)
		}
	})
}
