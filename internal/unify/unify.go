// Package unify implements unification over the persistent binding
// environments of package term. It is the "match" step of section 2 of the
// B-LOG paper: a resolution step succeeds exactly when the current goal
// unifies with the head of a database clause.
//
// Because environments are persistent, Unify never mutates its input: on
// success it returns a new environment extending the old one, and on
// failure the original environment remains valid. This is what allows many
// OR-chains to share an environment prefix while the best-first scheduler
// expands them in an arbitrary order.
package unify

import "blog/internal/term"

// Unify attempts to unify a and b under env. It returns the extended
// environment and true on success, or the original environment and false
// on failure. The occurs check is disabled, matching standard Prolog;
// use UnifyOC when cyclic bindings must be rejected.
func Unify(env *term.Env, a, b term.Term) (*term.Env, bool) {
	return unify(env, a, b, false)
}

// UnifyOC is Unify with the occurs check enabled: binding a variable to a
// term containing that variable fails rather than creating a cyclic term.
func UnifyOC(env *term.Env, a, b term.Term) (*term.Env, bool) {
	return unify(env, a, b, true)
}

func unify(env *term.Env, a, b term.Term, oc bool) (*term.Env, bool) {
	a = env.Resolve(a)
	b = env.Resolve(b)
	if a == b {
		return env, true
	}
	switch at := a.(type) {
	case *term.Var:
		if oc && occurs(env, at, b) {
			return env, false
		}
		return env.Bind(at, b), true
	case term.Atom:
		switch bt := b.(type) {
		case *term.Var:
			return env.Bind(bt, a), true
		case term.Atom:
			if at == bt {
				return env, true
			}
		}
		return env, false
	case term.Int:
		switch bt := b.(type) {
		case *term.Var:
			return env.Bind(bt, a), true
		case term.Int:
			if at == bt {
				return env, true
			}
		}
		return env, false
	case *term.Compound:
		switch bt := b.(type) {
		case *term.Var:
			if oc && occurs(env, bt, a) {
				return env, false
			}
			return env.Bind(bt, a), true
		case *term.Compound:
			if at.Functor != bt.Functor || len(at.Args) != len(bt.Args) {
				return env, false
			}
			e := env
			ok := true
			for i := range at.Args {
				if e, ok = unify(e, at.Args[i], bt.Args[i], oc); !ok {
					return env, false
				}
			}
			return e, true
		}
		return env, false
	}
	return env, false
}

// occurs reports whether v occurs in t under env.
func occurs(env *term.Env, v *term.Var, t term.Term) bool {
	t = env.Resolve(t)
	switch t := t.(type) {
	case *term.Var:
		return t == v
	case *term.Compound:
		for _, a := range t.Args {
			if occurs(env, v, a) {
				return true
			}
		}
	}
	return false
}

// CanUnify reports whether a and b unify under env without keeping the
// resulting bindings. It backs the \=/2 builtin and the candidate
// prefiltering done by the first-argument index.
func CanUnify(env *term.Env, a, b term.Term) bool {
	_, ok := unify(env, a, b, false)
	return ok
}

// Match performs one-way matching: it unifies pattern against t but only
// allows variables of the pattern (fresh, unbound in env) to be bound.
// It is used by the semantic-paging-disk mark operation, where the
// comparand graph may bind its own holes but must not instantiate the
// database. Returns the extended env and whether the match succeeded.
func Match(env *term.Env, pattern, t term.Term) (*term.Env, bool) {
	pattern = env.Resolve(pattern)
	t = env.Resolve(t)
	if pv, ok := pattern.(*term.Var); ok {
		return env.Bind(pv, t), true
	}
	switch pt := pattern.(type) {
	case term.Atom:
		if a, ok := t.(term.Atom); ok && a == pt {
			return env, true
		}
	case term.Int:
		if i, ok := t.(term.Int); ok && i == pt {
			return env, true
		}
	case *term.Compound:
		tc, ok := t.(*term.Compound)
		if !ok || tc.Functor != pt.Functor || len(tc.Args) != len(pt.Args) {
			return env, false
		}
		e := env
		for i := range pt.Args {
			if e, ok = Match(e, pt.Args[i], tc.Args[i]); !ok {
				return env, false
			}
		}
		return e, true
	}
	return env, false
}
