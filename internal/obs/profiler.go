// Package obs is the engine-wide observability layer: a per-predicate
// profiler keyed on interned Syms (profiler.go), per-query span tracing
// (trace.go), a live-query registry for the server's inspector
// (live.go), and a lock-free bounded ring of structured engine events
// (journal.go). Everything is nil-receiver-safe so the disabled path
// costs one nil check and zero allocations.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blog/internal/term"
)

// Cell accumulates the counters for one predicate. Cells are reached
// through a dense Sym-indexed array, so the hot path is one pointer load
// and an atomic add; a cell, once created, is never moved or freed while
// its profiler lives.
type Cell struct {
	Expansions   atomic.Uint64
	VMDispatches atomic.Uint64
	TrailBinds   atomic.Uint64
	TrailUndos   atomic.Uint64
	TableHits    atomic.Uint64
	TableMisses  atomic.Uint64
	Nanos        atomic.Uint64

	sym   term.Sym
	arity int32 // first observed arity, for display
}

// Profiler accumulates per-predicate counters. Safe for concurrent use:
// counters are atomic, cells publish into their Sym-indexed slot with an
// atomic store, and the array itself grows geometrically under a mutex
// while readers load it through an atomic pointer.
type Profiler struct {
	mu    sync.Mutex
	cells atomic.Pointer[[]atomic.Pointer[Cell]]
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// Cell returns the counter cell for the predicate fn/arity, creating it on
// first touch. Nil receiver returns nil, so call sites guard with a single
// nil check.
func (p *Profiler) Cell(fn term.Sym, arity int) *Cell {
	if p == nil {
		return nil
	}
	if cs := p.cells.Load(); cs != nil && int(fn) < len(*cs) {
		if c := (*cs)[fn].Load(); c != nil {
			return c
		}
	}
	return p.grow(fn, arity)
}

func (p *Profiler) grow(fn term.Sym, arity int) *Cell {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.cells.Load()
	if cur == nil || int(fn) >= len(*cur) {
		// Grow geometrically: programs intern predicates in source order,
		// so sizing to exactly fn+1 would recopy the array once per new
		// predicate — quadratic on wide programs.
		n := 0
		if cur != nil {
			n = len(*cur)
		}
		n = max(2*n, int(fn)+16)
		next := make([]atomic.Pointer[Cell], n)
		if cur != nil {
			for i := range *cur {
				next[i].Store((*cur)[i].Load())
			}
		}
		p.cells.Store(&next)
		cur = &next
	}
	// A cell within bounds publishes into its slot without copying the
	// array — first touch of a predicate is O(1), not O(predicates).
	if c := (*cur)[fn].Load(); c != nil {
		return c
	}
	c := &Cell{sym: fn, arity: int32(arity)}
	(*cur)[fn].Store(c)
	return c
}

// TableHit counts a memoized-answer replay for fn/arity.
func (p *Profiler) TableHit(fn term.Sym, arity int) {
	if p == nil {
		return
	}
	p.Cell(fn, arity).TableHits.Add(1)
}

// TableMiss counts a table production (fixpoint entry) for fn/arity.
func (p *Profiler) TableMiss(fn term.Sym, arity int) {
	if p == nil {
		return
	}
	p.Cell(fn, arity).TableMisses.Add(1)
}

// PredProfile is one predicate's counters, snapshotted.
type PredProfile struct {
	Pred         string `json:"pred"`
	Expansions   uint64 `json:"expansions"`
	VMDispatches uint64 `json:"vm_dispatches,omitempty"`
	TrailBinds   uint64 `json:"trail_binds,omitempty"`
	TrailUndos   uint64 `json:"trail_undos,omitempty"`
	TableHits    uint64 `json:"table_hits,omitempty"`
	TableMisses  uint64 `json:"table_misses,omitempty"`
	Nanos        uint64 `json:"nanos"`
}

// Snapshot returns every touched predicate's counters, hottest (most
// cumulative nanos) first. Nil receiver returns nil.
func (p *Profiler) Snapshot() []PredProfile {
	if p == nil {
		return nil
	}
	cs := p.cells.Load()
	if cs == nil {
		return nil
	}
	out := make([]PredProfile, 0, 16)
	for i := range *cs {
		c := (*cs)[i].Load()
		if c == nil {
			continue
		}
		pp := PredProfile{
			Pred:         fmt.Sprintf("%s/%d", c.sym.Name(), c.arity),
			Expansions:   c.Expansions.Load(),
			VMDispatches: c.VMDispatches.Load(),
			TrailBinds:   c.TrailBinds.Load(),
			TrailUndos:   c.TrailUndos.Load(),
			TableHits:    c.TableHits.Load(),
			TableMisses:  c.TableMisses.Load(),
			Nanos:        c.Nanos.Load(),
		}
		if pp.Expansions == 0 && pp.Nanos == 0 && pp.TableHits == 0 && pp.TableMisses == 0 {
			continue
		}
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nanos != out[j].Nanos {
			return out[i].Nanos > out[j].Nanos
		}
		return out[i].Pred < out[j].Pred
	})
	return out
}

// Top returns the n hottest predicates by cumulative nanos.
func (p *Profiler) Top(n int) []PredProfile {
	s := p.Snapshot()
	if n > 0 && len(s) > n {
		s = s[:n]
	}
	return s
}

// TotalNanos sums cumulative nanos over every predicate.
func (p *Profiler) TotalNanos() uint64 {
	var total uint64
	for _, pp := range p.Snapshot() {
		total += pp.Nanos
	}
	return total
}

// Merge adds q's counters into p. The server uses this to fold a
// per-query profile into the process-wide one: each query profiles into
// its own Profiler (exact per-query attribution for the slow-query log),
// then merges — O(predicates touched), off the hot path.
func (p *Profiler) Merge(q *Profiler) {
	if p == nil || q == nil {
		return
	}
	cs := q.cells.Load()
	if cs == nil {
		return
	}
	for i := range *cs {
		c := (*cs)[i].Load()
		if c == nil {
			continue
		}
		d := p.Cell(c.sym, int(c.arity))
		d.Expansions.Add(c.Expansions.Load())
		d.VMDispatches.Add(c.VMDispatches.Load())
		d.TrailBinds.Add(c.TrailBinds.Load())
		d.TrailUndos.Add(c.TrailUndos.Load())
		d.TableHits.Add(c.TableHits.Load())
		d.TableMisses.Add(c.TableMisses.Load())
		d.Nanos.Add(c.Nanos.Load())
	}
}

// Meter charges wall-time intervals and trail-counter deltas to the
// predicate currently being resolved. The engines drive it with
// interval attribution: each dispatch charges the time (and binds/undos)
// since the previous dispatch to the previously dispatched predicate, so
// the sum of per-predicate nanos tracks search wall time closely. A Meter
// belongs to one engine run (single goroutine).
type Meter struct {
	p     *Profiler
	cell  *Cell
	last  time.Time
	binds uint64
	undos uint64
}

// NewMeter returns a meter charging into p, or nil if p is nil — so the
// engine's per-dispatch guard stays a single nil check.
func NewMeter(p *Profiler) *Meter {
	if p == nil {
		return nil
	}
	return &Meter{p: p}
}

// Note starts a new attribution interval for fn/arity: it flushes the
// pending interval to the previous predicate, counts one expansion for
// fn, and records the new baseline. binds/undos are cumulative counters
// (term.Store's); deltas between notes are charged alongside time.
func (m *Meter) Note(fn term.Sym, arity int, binds, undos uint64) *Cell {
	now := time.Now()
	if c := m.cell; c != nil {
		c.Nanos.Add(uint64(now.Sub(m.last)))
		c.TrailBinds.Add(binds - m.binds)
		c.TrailUndos.Add(undos - m.undos)
	}
	c := m.p.Cell(fn, arity)
	c.Expansions.Add(1)
	m.cell = c
	m.last = now
	m.binds, m.undos = binds, undos
	return c
}

// Flush charges the pending interval and clears the current predicate, so
// time spent outside the engine (between pulls of a suspended run, after
// a terminal state) is not attributed to anyone.
func (m *Meter) Flush(binds, undos uint64) {
	if m == nil || m.cell == nil {
		return
	}
	now := time.Now()
	m.cell.Nanos.Add(uint64(now.Sub(m.last)))
	m.cell.TrailBinds.Add(binds - m.binds)
	m.cell.TrailUndos.Add(undos - m.undos)
	m.cell = nil
	m.binds, m.undos = binds, undos
}

// Skip restarts the interval clock without charging, excluding the time
// since the last Note/Skip from attribution. The trail engine calls it
// after a tabled Resolve returns: production time is charged inside the
// generator run (which shares the profiler), so charging the same wall
// time to the consumer's predicate would double-count it.
func (m *Meter) Skip() {
	if m == nil || m.cell == nil {
		return
	}
	m.last = time.Now()
}

// Current returns the cell of the predicate currently being charged, or
// nil. The VM dispatch counter increments through it.
func (m *Meter) Current() *Cell {
	if m == nil {
		return nil
	}
	return m.cell
}
