package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed node of a query's span tree. The JSON shape is the
// wire schema blogd returns for `"trace": true` queries:
//
//	{"name":"query","start_us":0,"dur_us":812.4,
//	 "children":[{"name":"parse",...},{"name":"compile",...},
//	             {"name":"search","counts":{"expanded":951},
//	              "children":[{"name":"fixpoint path/2",...}]}]}
//
// start_us is relative to the trace root, dur_us is the span's wall
// duration; counts carry span-specific tallies (answers per fixpoint
// round, expansions under search).
type Span struct {
	Name     string           `json:"name"`
	StartUs  float64          `json:"start_us"`
	DurUs    float64          `json:"dur_us"`
	Counts   map[string]int64 `json:"counts,omitempty"`
	Children []*Span          `json:"children,omitempty"`

	tr    *Trace
	start time.Time
	done  bool
}

// Trace collects the span tree for one query. Phases (parse, compile,
// search) hang off the root and register by name, so deeper layers — the
// table engine attaching fixpoint spans under "search" — can parent spans
// without the span being threaded through every call signature. All
// methods are safe on a nil receiver (tracing disabled) and safe for
// concurrent use (parallel strategies resolve tables from many
// goroutines).
type Trace struct {
	mu    sync.Mutex
	root  *Span
	open  map[string]*Span
	start time.Time
}

// NewTrace starts a trace whose root span has the given name.
func NewTrace(name string) *Trace {
	t := &Trace{start: time.Now(), open: make(map[string]*Span, 4)}
	t.root = &Span{Name: name, tr: t, start: t.start}
	return t
}

func (t *Trace) newSpan(parent *Span, name string) *Span {
	now := time.Now()
	s := &Span{Name: name, StartUs: float64(now.Sub(t.start)) / 1e3, tr: t, start: now}
	parent.Children = append(parent.Children, s)
	return s
}

// Phase opens a span directly under the root and registers it by name as
// the current phase, so Span(name, ...) can parent under it from another
// layer. Nil-safe.
func (t *Trace) Phase(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.newSpan(t.root, name)
	t.open[name] = s
	return s
}

// Span opens a span under the open phase named parent, falling back to the
// root when no such phase is open. Nil-safe.
func (t *Trace) Span(parent, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.open[parent]
	if p == nil || p.done {
		p = t.root
	}
	return t.newSpan(p, name)
}

// Child opens a span under s. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.newSpan(s, name)
}

// End closes the span, fixing its duration. Nil-safe and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if !s.done {
		s.DurUs = float64(time.Since(s.start)) / 1e3
		s.done = true
	}
}

// SetCount records a named tally on the span. Nil-safe.
func (s *Span) SetCount(k string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.Counts == nil {
		s.Counts = make(map[string]int64, 2)
	}
	s.Counts[k] = v
}

// Finish closes the root and any span still open (a streamed query
// abandoned mid-search leaves its search phase running) and returns the
// completed tree. Nil-safe: returns nil when tracing is disabled.
func (t *Trace) Finish() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var close func(s *Span)
	close = func(s *Span) {
		if !s.done {
			s.DurUs = float64(time.Since(s.start)) / 1e3
			s.done = true
		}
		for _, c := range s.Children {
			close(c)
		}
	}
	close(t.root)
	return t.root
}

// Render formats the span tree as an indented text outline, for the REPL.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		fmt.Fprintf(&b, "%s%-*s %9.1fµs", strings.Repeat("  ", depth), 24-2*depth, s.Name, s.DurUs)
		if len(s.Counts) > 0 {
			keys := make([]string, 0, len(s.Counts))
			for k := range s.Counts {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%d", k, s.Counts[k])
			}
		}
		b.WriteByte('\n')
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return b.String()
}
