package obs

import (
	"sync"
	"testing"
	"time"
)

func TestJournalNil(t *testing.T) {
	var j *Journal
	if seq := j.Emit(Event{Kind: KindSlowQuery}); seq != 0 {
		t.Errorf("nil Emit = %d, want 0", seq)
	}
	if j.LastSeq() != 0 || j.Cap() != 0 || j.Overwritten() != 0 || j.Events(0) != nil {
		t.Error("nil journal not empty")
	}
}

func TestJournalEmitDrain(t *testing.T) {
	j := NewJournal(128)
	if j.Cap() != 128 {
		t.Fatalf("cap = %d, want 128", j.Cap())
	}
	for i := 0; i < 10; i++ {
		seq := j.Emit(Event{Kind: KindTableCreated, Pred: "p/1"})
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	evs := j.Events(0)
	if len(evs) != 10 {
		t.Fatalf("drained %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Kind != KindTableCreated || ev.Time.IsZero() {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
	// Cursor semantics: strictly-after, then empty at the end.
	if tail := j.Events(7); len(tail) != 3 || tail[0].Seq != 8 {
		t.Errorf("Events(7) = %+v, want seqs 8..10", tail)
	}
	if tail := j.Events(10); len(tail) != 0 {
		t.Errorf("Events(10) = %+v, want empty", tail)
	}
	if j.Overwritten() != 0 {
		t.Errorf("overwritten = %d before lap", j.Overwritten())
	}
}

func TestJournalCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 64}, {1, 64}, {64, 64}, {65, 128}, {4096, 4096}, {5000, 8192}} {
		if got := NewJournal(c.ask).Cap(); got != c.want {
			t.Errorf("NewJournal(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestJournalOverwrite(t *testing.T) {
	j := NewJournal(64)
	for i := 0; i < 200; i++ {
		j.Emit(Event{Kind: KindSlowQuery, Count: int64(i)})
	}
	if j.LastSeq() != 200 {
		t.Fatalf("last = %d, want 200", j.LastSeq())
	}
	if j.Overwritten() != 200-64 {
		t.Errorf("overwritten = %d, want %d", j.Overwritten(), 200-64)
	}
	evs := j.Events(0)
	if len(evs) != 64 {
		t.Fatalf("retained %d events, want 64", len(evs))
	}
	// Oldest retained is 137 (200-64+1), newest 200, contiguous.
	for i, ev := range evs {
		if want := uint64(137 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

// TestJournalHammer drives one journal from parallel emitters, a
// table-lifecycle generator and an invalidation loop while readers drain
// concurrently — the -race proof that Emit and Events never tear. Each
// producer's returned sequence numbers must be strictly increasing
// (gapless allocation is journal-wide: the union of all producers is
// 1..N), and every event a reader observes must be internally consistent
// (the Kind always matches the payload shape it was emitted with).
func TestJournalHammer(t *testing.T) {
	j := NewJournal(256) // small ring: force heavy lap-around
	const producers = 8
	const perProducer = 2000

	var wg sync.WaitGroup
	seqs := make([][]uint64, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			mine := make([]uint64, 0, perProducer)
			for i := 0; i < perProducer; i++ {
				var ev Event
				switch i % 3 {
				case 0: // table lifecycle generator
					ev = Event{Kind: KindTableCompleted, Pred: "p/2", Call: "p(_,_)", Count: 4, Bytes: 512, Rounds: 2}
				case 1: // invalidation loop
					ev = Event{Kind: KindTableInvalidated, Cause: "assert", Count: 1, Bytes: 512}
				default: // query workers
					ev = Event{Kind: KindSlowQuery, RequestID: "q-000001", Millis: 12.5}
				}
				mine = append(mine, j.Emit(ev))
			}
			seqs[p] = mine
		}(p)
	}
	// Concurrent readers drain while producers emit; every observed event
	// must be whole.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var cursor uint64
			for {
				for _, ev := range j.Events(cursor) {
					if ev.Seq <= cursor {
						t.Errorf("reader went backwards: %d after %d", ev.Seq, cursor)
					}
					cursor = ev.Seq
					checkWhole(t, ev)
				}
				select {
				case <-stop:
					return
				default:
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// Per-producer sequences strictly increase; the union is gapless 1..N.
	total := producers * perProducer
	seen := make([]bool, total+1)
	for p, mine := range seqs {
		last := uint64(0)
		for _, s := range mine {
			if s <= last {
				t.Fatalf("producer %d seq %d after %d", p, s, last)
			}
			last = s
			if s == 0 || s > uint64(total) || seen[s] {
				t.Fatalf("producer %d got duplicate or out-of-range seq %d", p, s)
			}
			seen[s] = true
		}
	}
	for s := 1; s <= total; s++ {
		if !seen[s] {
			t.Fatalf("sequence %d never allocated: gap", s)
		}
	}
	if j.LastSeq() != uint64(total) {
		t.Errorf("last = %d, want %d", j.LastSeq(), total)
	}
	// A final drain of the lapped ring yields the newest Cap() events,
	// contiguous and whole.
	evs := j.Events(0)
	if len(evs) != j.Cap() {
		t.Fatalf("final drain %d events, want %d", len(evs), j.Cap())
	}
	for i, ev := range evs {
		if want := uint64(total - j.Cap() + 1 + i); ev.Seq != want {
			t.Fatalf("final drain event %d seq = %d, want %d", i, ev.Seq, want)
		}
		checkWhole(t, ev)
	}
}

// checkWhole asserts one event's fields are the exact set its kind was
// emitted with in TestJournalHammer — a torn read would mix shapes.
func checkWhole(t *testing.T, ev Event) {
	t.Helper()
	switch ev.Kind {
	case KindTableCompleted:
		if ev.Pred != "p/2" || ev.Call != "p(_,_)" || ev.Count != 4 || ev.Bytes != 512 || ev.Rounds != 2 || ev.Cause != "" || ev.Millis != 0 {
			t.Errorf("torn completed event: %+v", ev)
		}
	case KindTableInvalidated:
		if ev.Cause != "assert" || ev.Count != 1 || ev.Bytes != 512 || ev.Pred != "" || ev.Millis != 0 {
			t.Errorf("torn invalidated event: %+v", ev)
		}
	case KindSlowQuery:
		if ev.RequestID != "q-000001" || ev.Millis != 12.5 || ev.Pred != "" || ev.Count != 0 {
			t.Errorf("torn slow-query event: %+v", ev)
		}
	default:
		t.Errorf("unknown kind %q: %+v", ev.Kind, ev)
	}
	if ev.Time.IsZero() {
		t.Errorf("event %d missing timestamp", ev.Seq)
	}
}
