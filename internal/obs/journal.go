package obs

// journal.go — the structured event journal: a lock-free bounded ring of
// typed engine events (table lifecycle, VM recompiles, session churn,
// admission rejects, kills, slow queries), each stamped with a monotonic
// sequence number and, when known, the request ID of the query that
// caused it. Like the profiler, everything is nil-receiver-safe: a
// disabled journal costs one nil check per emission site.
//
// The ring is multi-producer, multi-consumer and never blocks: Emit
// claims a sequence number with one atomic add and publishes an immutable
// heap copy of the event into its slot with one atomic pointer store.
// Readers snapshot slots through the same atomic pointers, so an event is
// either observed whole or not at all — a slot mid-overwrite simply holds
// the previous (complete) event, which the sequence check skips. Old
// events are overwritten once the ring laps; Overwritten reports how many
// are gone.

import (
	"sync/atomic"
	"time"
)

// Event kinds recorded in a Journal. Plain strings, so wire encodings and
// filters need no mapping.
const (
	KindTableCreated     = "table_created"
	KindTableCompleted   = "table_completed"
	KindTableTruncated   = "table_truncated"
	KindTableInvalidated = "table_invalidated"
	KindTableRevalidated = "table_revalidated"
	KindSnapshotLoaded   = "snapshot_loaded"
	KindSnapshotSaved    = "snapshot_saved"
	KindVMRecompile      = "vm_recompile"
	KindSessionCreated   = "session_created"
	KindSessionMerged    = "session_merged"
	KindSessionEvicted   = "session_evicted"
	KindAdmissionReject  = "admission_reject"
	KindQueryKilled      = "query_killed"
	KindSlowQuery        = "slow_query"
)

// Event is one typed engine event. Unused fields stay zero and are
// omitted on the wire; which fields a kind fills is documented on the
// emission site.
type Event struct {
	// Seq is the journal-wide monotonic sequence number (1-based),
	// assigned by Emit.
	Seq uint64 `json:"seq"`
	// Time is the emission time, stamped by Emit unless already set.
	Time time.Time `json:"time"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// RequestID is the q-%06d ID of the query that caused the event, when
	// one was on the context.
	RequestID string `json:"request_id,omitempty"`
	// Pred and Call identify a table's predicate and canonical call
	// pattern on table lifecycle events.
	Pred string `json:"pred,omitempty"`
	Call string `json:"call,omitempty"`
	// Cause names what triggered an invalidation (assert, load_weights,
	// reconfigure) or rejection.
	Cause string `json:"cause,omitempty"`
	// Count is the kind's cardinality: answers memoized on completion,
	// tables dropped on invalidation, predicates compiled on a recompile.
	Count int64 `json:"count,omitempty"`
	// Bytes is the approximate retained answer bytes involved.
	Bytes int64 `json:"bytes,omitempty"`
	// Rounds is the fixpoint round count of a completed production.
	Rounds int `json:"rounds,omitempty"`
	// Generation is the kb generation a VM recompile produced.
	Generation uint64 `json:"generation,omitempty"`
	// Millis carries a duration (slow-query wall time).
	Millis float64 `json:"ms,omitempty"`
	// Detail is free-form context (goal text, session ID).
	Detail string `json:"detail,omitempty"`
}

// Journal is the bounded event ring. Safe for any number of concurrent
// emitters and readers; a nil *Journal ignores emissions and reads empty.
type Journal struct {
	mask  uint64
	seq   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// journalMaxCap bounds the ring so a misconfigured capacity cannot pin
// gigabytes of retained events.
const journalMaxCap = 1 << 20

// NewJournal returns a journal retaining at least capacity events
// (rounded up to a power of two, minimum 64).
func NewJournal(capacity int) *Journal {
	n := 64
	for n < capacity && n < journalMaxCap {
		n <<= 1
	}
	return &Journal{mask: uint64(n - 1), slots: make([]atomic.Pointer[Event], n)}
}

// Emit records one event, assigning its sequence number and timestamp,
// and returns the sequence number (0 on a nil journal). The event is
// copied; the stored copy is never mutated again, which is what makes
// concurrent reads tear-free.
func (j *Journal) Emit(e Event) uint64 {
	if j == nil {
		return 0
	}
	e.Seq = j.seq.Add(1)
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	ev := e
	j.slots[(e.Seq-1)&j.mask].Store(&ev)
	return e.Seq
}

// LastSeq returns the newest assigned sequence number (0 when empty).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	return j.seq.Load()
}

// Cap returns the ring capacity in events.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.slots)
}

// Overwritten returns how many events have been lost to ring lap-around
// — emitted, then overwritten before any reader was obliged to see them.
func (j *Journal) Overwritten() uint64 {
	if j == nil {
		return 0
	}
	if s, c := j.seq.Load(), uint64(len(j.slots)); s > c {
		return s - c
	}
	return 0
}

// Events returns the retained events with sequence numbers strictly
// greater than after, oldest first. Events overwritten since after are
// simply absent; a slot still being published (its writer claimed the
// sequence number but has not stored yet) is skipped the same way, so
// the result only ever contains complete events in sequence order.
func (j *Journal) Events(after uint64) []Event {
	if j == nil {
		return nil
	}
	last := j.seq.Load()
	if last <= after {
		return nil
	}
	lo := after + 1
	if c := uint64(len(j.slots)); last > c && lo < last-c+1 {
		lo = last - c + 1
	}
	out := make([]Event, 0, last-lo+1)
	for s := lo; s <= last; s++ {
		ev := j.slots[(s-1)&j.mask].Load()
		if ev != nil && ev.Seq == s {
			out = append(out, *ev)
		}
	}
	return out
}
