package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"blog/internal/term"
)

func TestTracePhaseRegistryAndFinish(t *testing.T) {
	tr := NewTrace("query")
	p := tr.Phase("parse")
	p.End()
	s := tr.Phase("search")
	// A span addressed to an open phase nests under it; table fixpoints
	// use exactly this to parent under "search" without plumbing the span.
	fix := tr.Span("search", "fixpoint p/2")
	r1 := fix.Child("round 1")
	r1.SetCount("answers", 3)
	r1.End()
	fix.SetCount("rounds", 1)
	fix.End()
	// An unknown parent falls back to the root rather than vanishing.
	stray := tr.Span("no-such-phase", "stray")
	stray.End()
	_ = s // left open: Finish must close it

	root := tr.Finish()
	if root.Name != "query" || len(root.Children) != 3 {
		t.Fatalf("root = %q with %d children, want query with 3", root.Name, len(root.Children))
	}
	search := root.Children[1]
	if search.Name != "search" || len(search.Children) != 1 || search.Children[0].Name != "fixpoint p/2" {
		t.Fatalf("search subtree wrong: %+v", search)
	}
	if !strings.Contains(root.Render(), "rounds=1") {
		t.Errorf("Render lacks counts:\n%s", root.Render())
	}
	if search.DurUs <= 0 {
		t.Error("Finish did not close the open search phase")
	}
	// Idempotent: a second Finish returns the same closed tree.
	if again := tr.Finish(); again != root {
		t.Error("Finish not idempotent")
	}
	// Nil-safety of the disabled path.
	var none *Trace
	if none.Finish() != nil || none.Phase("x") != nil {
		t.Error("nil trace not inert")
	}
	none.Phase("x").End()
	none.Span("a", "b").Child("c").SetCount("k", 1)
}

func TestProfilerCellsAndMerge(t *testing.T) {
	a, b := term.Intern("obs_test_pred_a"), term.Intern("obs_test_pred_b")
	p := NewProfiler()
	c := p.Cell(a, 2)
	c.Expansions.Add(5)
	c.Nanos.Add(100)
	if p.Cell(a, 2) != c {
		t.Fatal("second Cell lookup returned a different cell")
	}
	p.TableHit(b, 1)
	p.TableMiss(b, 1)

	q := NewProfiler()
	q.Cell(a, 2).Nanos.Add(50)
	p.Merge(q)
	if got := p.Cell(a, 2).Nanos.Load(); got != 150 {
		t.Errorf("merged nanos = %d, want 150", got)
	}
	snap := p.Snapshot()
	if len(snap) != 2 || snap[0].Pred != "obs_test_pred_a/2" {
		t.Fatalf("snapshot = %+v, want a/2 hottest of 2", snap)
	}
	if snap[1].TableHits != 1 || snap[1].TableMisses != 1 {
		t.Errorf("table counters lost: %+v", snap[1])
	}
	if got := p.TotalNanos(); got != 150 {
		t.Errorf("TotalNanos = %d, want 150", got)
	}
	if top := p.Top(1); len(top) != 1 || top[0].Expansions != 5 {
		t.Errorf("Top(1) = %+v", top)
	}
	// Nil receiver: every entry point is inert.
	var none *Profiler
	if none.Cell(a, 2) != nil || none.Snapshot() != nil || none.TotalNanos() != 0 {
		t.Error("nil profiler not inert")
	}
	none.TableHit(a, 2)
	none.Merge(p)
	p.Merge(nil)
}

func TestMeterAttribution(t *testing.T) {
	p := NewProfiler()
	a, b := term.Intern("obs_test_meter_a"), term.Intern("obs_test_meter_b")
	m := NewMeter(p)
	m.Note(a, 1, 0, 0)
	time.Sleep(2 * time.Millisecond) // charged to a
	m.Note(b, 1, 7, 3)               // a gets the interval and the deltas
	time.Sleep(time.Millisecond)     // charged to b
	m.Flush(9, 4)
	ca, cb := p.Cell(a, 1), p.Cell(b, 1)
	if ca.Nanos.Load() < uint64(time.Millisecond) {
		t.Errorf("a charged %dns, want >= 1ms", ca.Nanos.Load())
	}
	if ca.TrailBinds.Load() != 7 || ca.TrailUndos.Load() != 3 {
		t.Errorf("a deltas = %d/%d, want 7/3", ca.TrailBinds.Load(), ca.TrailUndos.Load())
	}
	if cb.TrailBinds.Load() != 2 || cb.TrailUndos.Load() != 1 {
		t.Errorf("b deltas = %d/%d, want 2/1", cb.TrailBinds.Load(), cb.TrailUndos.Load())
	}
	// Skip restarts the clock without charging anyone.
	m.Note(a, 1, 9, 4)
	before := ca.Nanos.Load()
	time.Sleep(time.Millisecond)
	m.Skip()
	m.Flush(9, 4)
	if got := ca.Nanos.Load() - before; got > uint64(500*time.Microsecond) {
		t.Errorf("Skip still charged %dns", got)
	}
	// A nil meter (profiling off) is inert.
	var none *Meter
	none.Flush(0, 0)
	none.Skip()
	if none.Current() != nil {
		t.Error("nil meter has a current cell")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	l1 := r.Add("g1", "dfs", cancel)
	l2 := r.Add("g2", "bfs", cancel)
	if l1.ID == l2.ID || !strings.HasPrefix(l1.ID, "q-") {
		t.Fatalf("ids %q %q", l1.ID, l2.ID)
	}
	if r.Get(l1.ID) != l1 || r.Get("q-999999") != nil {
		t.Error("Get broken")
	}
	if list := r.List(); len(list) != 2 || list[0] != l1 {
		t.Fatalf("List = %+v, want [l1 l2] oldest first", list)
	}
	l1.Cancel(ErrKilled)
	if cause := context.Cause(ctx); cause != ErrKilled {
		t.Errorf("cause = %v, want ErrKilled", cause)
	}
	r.Remove(l1)
	r.Remove(l1) // idempotent
	if list := r.List(); len(list) != 1 || list[0] != l2 {
		t.Fatalf("List after remove = %+v", list)
	}
	// Request-ID context plumbing.
	idCtx := WithRequestID(context.Background(), l2.ID)
	if RequestID(idCtx) != l2.ID || RequestID(context.Background()) != "" {
		t.Error("request-id context plumbing broken")
	}
}
