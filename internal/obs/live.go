package obs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrKilled is the cancellation cause set when a query is cancelled
// through the live inspector (DELETE /debug/queries/{id}), so the server
// can answer the victim's request distinctly from a client disconnect.
var ErrKilled = errors.New("query cancelled via inspector")

// Live is one in-flight query as the inspector sees it. The engines store
// into Expanded periodically (every 1024 expansions) behind a nil check,
// so an unwatched query pays nothing and a watched one pays one atomic
// store per ~1024 dispatches.
type Live struct {
	ID       string
	Goal     string
	Strategy string
	Start    time.Time
	Expanded atomic.Uint64

	cancel context.CancelCauseFunc
}

// Cancel cancels the query's context with the given cause.
func (l *Live) Cancel(cause error) {
	if l.cancel != nil {
		l.cancel(cause)
	}
}

// Registry tracks in-flight queries for the live inspector and mints the
// request IDs the structured logs share with it.
type Registry struct {
	mu   sync.Mutex
	next uint64
	m    map[string]*Live
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Live, 16)}
}

// Add registers an in-flight query and returns its entry, with a freshly
// minted ID. cancel may be nil for queries that cannot be killed.
func (r *Registry) Add(goal, strategy string, cancel context.CancelCauseFunc) *Live {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	l := &Live{
		ID:       fmt.Sprintf("q-%06d", r.next),
		Goal:     goal,
		Strategy: strategy,
		Start:    time.Now(),
		cancel:   cancel,
	}
	r.m[l.ID] = l
	return l
}

// Remove unregisters a finished query.
func (r *Registry) Remove(l *Live) {
	if l == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, l.ID)
}

// Get returns the in-flight query with the given ID, or nil.
func (r *Registry) Get(id string) *Live {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[id]
}

// List returns the in-flight queries, oldest first.
func (r *Registry) List() []*Live {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Live, 0, len(r.m))
	for _, l := range r.m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

type ctxKey struct{}

// WithRequestID stamps a request ID into ctx for structured logging.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID returns the request ID stamped by WithRequestID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
