package andpar

import (
	"context"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/spd"
	"blog/internal/term"
	"blog/internal/weights"
	"blog/internal/workload"
)

func load(t testing.TB, src string) *kb.DB {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func q(t testing.TB, s string) []term.Term {
	t.Helper()
	gs, err := parse.Query(s)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func uniform() weights.Store { return weights.NewUniform(weights.DefaultConfig()) }

func TestGroupsIndependent(t *testing.T) {
	goals := q(t, "p(X), q(Y), r(Z)")
	groups := Groups(nil, goals)
	if len(groups) != 3 {
		t.Fatalf("groups = %v, want 3 singletons", groups)
	}
}

func TestGroupsChained(t *testing.T) {
	goals := q(t, "p(X,Y), q(Y,Z), r(W)")
	groups := Groups(nil, goals)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 1 {
		t.Errorf("first group = %v", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0] != 2 {
		t.Errorf("second group = %v", groups[1])
	}
}

func TestGroupsTransitive(t *testing.T) {
	// X links g0-g1, Z links g1-g2: all one group.
	goals := q(t, "p(X), q(X,Z), r(Z)")
	groups := Groups(nil, goals)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v, want one group of 3", groups)
	}
}

func TestGroupsRespectEnvBindings(t *testing.T) {
	// After binding the shared variable, the goals become independent.
	goals := q(t, "p(X), q(X)")
	x := term.Vars(goals[0], nil)[0]
	env := (*term.Env)(nil).Bind(x, term.NewAtom("a"))
	groups := Groups(env, goals)
	if len(groups) != 2 {
		t.Fatalf("ground-shared goals should be independent, got %v", groups)
	}
}

func TestGroupsGroundGoals(t *testing.T) {
	goals := q(t, "p(a), q(b)")
	if len(Groups(nil, goals)) != 2 {
		t.Error("ground goals are independent")
	}
}

const indepSrc = `
p(1). p(2). p(3).
q(a). q(b).
r(z).
`

func TestSolveIndependentCrossProduct(t *testing.T) {
	db := load(t, indepSrc)
	for _, parallel := range []bool{false, true} {
		res, err := Solve(context.Background(), db, uniform(), q(t, "p(X), q(Y)"), Options{
			Search:   search.Options{Strategy: search.DFS},
			Parallel: parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		if res.GroupCount != 2 {
			t.Errorf("groups = %d", res.GroupCount)
		}
		if len(res.Solutions) != 6 {
			t.Fatalf("parallel=%v: solutions = %d, want 3x2=6", parallel, len(res.Solutions))
		}
		// Every solution binds both X and Y.
		seen := map[string]bool{}
		for _, s := range res.Solutions {
			seen[s.Bindings["X"].String()+"/"+s.Bindings["Y"].String()] = true
		}
		if len(seen) != 6 {
			t.Errorf("distinct combinations = %d", len(seen))
		}
	}
}

func TestSolveMatchesSequentialSearch(t *testing.T) {
	db := load(t, indepSrc)
	seqRes, err := search.Run(context.Background(), db, uniform(), q(t, "p(X), q(Y), r(Z)"), search.Options{Strategy: search.DFS})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Solve(context.Background(), db, uniform(), q(t, "p(X), q(Y), r(Z)"), Options{
		Search:   search.Options{Strategy: search.DFS},
		Parallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(parRes.Solutions) != len(seqRes.Solutions) {
		t.Errorf("AND-parallel %d solutions, sequential %d", len(parRes.Solutions), len(seqRes.Solutions))
	}
}

func TestSolveFailingGroupFailsAll(t *testing.T) {
	db := load(t, indepSrc)
	res, err := Solve(context.Background(), db, uniform(), q(t, "p(X), missing(Y)"), Options{
		Search: search.Options{Strategy: search.DFS},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Error("conjunction with failing group must fail")
	}
	if res.GroupSolutions[0] == 0 {
		t.Error("p group should have solutions")
	}
}

func TestSolveMaxSolutions(t *testing.T) {
	db := load(t, indepSrc)
	res, err := Solve(context.Background(), db, uniform(), q(t, "p(X), q(Y)"), Options{
		Search:       search.Options{Strategy: search.DFS},
		MaxSolutions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 4 {
		t.Errorf("solutions = %d, want capped 4", len(res.Solutions))
	}
}

func TestSolveEmptyErrors(t *testing.T) {
	db := load(t, indepSrc)
	if _, err := Solve(context.Background(), db, uniform(), nil, Options{}); err == nil {
		t.Error("empty conjunction must error")
	}
}

func TestSemiJoinMatchesNestedLoop(t *testing.T) {
	db := load(t, workload.Join(20, 30, 0.5, 5))
	goals := q(t, "r(X,K), s(K,V)")
	opt := search.Options{Strategy: search.DFS}
	sj, err := SemiJoin(context.Background(), db, uniform(), goals[0], goals[1], nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := NestedLoopJoin(context.Background(), db, uniform(), goals[0], goals[1], opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sj.Solutions) != len(nl.Solutions) {
		t.Fatalf("semi-join %d solutions, nested loop %d", len(sj.Solutions), len(nl.Solutions))
	}
	// The point of the semi-join: far fewer join attempts.
	if sj.JoinAttempts >= nl.JoinAttempts {
		t.Errorf("semi-join attempts %d should be < nested loop %d", sj.JoinAttempts, nl.JoinAttempts)
	}
	if sj.MarkedClauses >= sj.ConsumerClauses {
		t.Errorf("marking should restrict candidates: %d of %d", sj.MarkedClauses, sj.ConsumerClauses)
	}
}

func TestSemiJoinAgainstSearchBaseline(t *testing.T) {
	// The semi-join result must equal the plain sequential search result.
	db := load(t, workload.Join(10, 15, 0.7, 9))
	goals := q(t, "r(X,K), s(K,V)")
	opt := search.Options{Strategy: search.DFS}
	sj, err := SemiJoin(context.Background(), db, uniform(), goals[0], goals[1], nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := search.Run(context.Background(), db, uniform(), q(t, "r(X,K), s(K,V)"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sj.Solutions) != len(seq.Solutions) {
		t.Errorf("semi-join %d, search %d", len(sj.Solutions), len(seq.Solutions))
	}
}

func TestSemiJoinWithSPDCharging(t *testing.T) {
	db := load(t, workload.Join(16, 16, 0.5, 11))
	ws := uniform()
	blocks := spd.BuildBlocks(db, ws)
	disk := spd.New(spd.DefaultGeometry(), spd.MIMD, 4)
	if err := disk.Store(blocks); err != nil {
		t.Fatal(err)
	}
	goals := q(t, "r(X,K), s(K,V)")
	sj, err := SemiJoin(context.Background(), db, ws, goals[0], goals[1], disk, search.Options{Strategy: search.DFS})
	if err != nil {
		t.Fatal(err)
	}
	if sj.SPDCycles <= 0 {
		t.Error("SPD marking must cost simulated cycles")
	}
	if sj.MarkedClauses == 0 || len(sj.Solutions) == 0 {
		t.Errorf("marked=%d solutions=%d", sj.MarkedClauses, len(sj.Solutions))
	}
}

func TestSemiJoinRequiresSharedVars(t *testing.T) {
	db := load(t, indepSrc)
	goals := q(t, "p(X), q(Y)")
	if _, err := SemiJoin(context.Background(), db, uniform(), goals[0], goals[1], nil, search.Options{}); err == nil {
		t.Error("independent goals must be rejected")
	}
}

func TestSemiJoinRejectsRuleConsumer(t *testing.T) {
	db := load(t, "r(1,a).\nderived(K,V) :- base(K,V).\nbase(a,x).")
	goals := q(t, "r(X,K), derived(K,V)")
	if _, err := SemiJoin(context.Background(), db, uniform(), goals[0], goals[1], nil, search.Options{Strategy: search.DFS}); err == nil {
		t.Error("rule consumers are out of scope and must be rejected")
	}
}

func TestSemiJoinEmptyProducer(t *testing.T) {
	db := load(t, "s(a,1).")
	goals := q(t, "r(X,K), s(K,V)")
	sj, err := SemiJoin(context.Background(), db, uniform(), goals[0], goals[1], nil, search.Options{Strategy: search.DFS})
	if err != nil {
		t.Fatal(err)
	}
	if sj.ProducerSolutions != 0 || len(sj.Solutions) != 0 {
		t.Error("empty producer should yield empty join")
	}
}

func TestSolveParallelIsRaceFree(t *testing.T) {
	// run with -race: groups share the weight store.
	db := load(t, workload.FamilyTree(3, 2)+"\ncolor(red). color(blue).\n")
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	res, err := Solve(context.Background(), db, tab, q(t, "gf(p0,G), color(C)"), Options{
		Search:   search.Options{Strategy: search.BestFirst, Learn: true},
		Parallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupCount != 2 {
		t.Errorf("groups = %d", res.GroupCount)
	}
	if len(res.Solutions) == 0 {
		t.Error("expected joined solutions")
	}
}

func BenchmarkSemiJoinVsNested(b *testing.B) {
	db, _, err := kb.LoadString(workload.Join(100, 200, 0.2, 3))
	if err != nil {
		b.Fatal(err)
	}
	goals, _ := parse.Query("r(X,K), s(K,V)")
	opt := search.Options{Strategy: search.DFS}
	b.Run("semijoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SemiJoin(context.Background(), db, uniform(), goals[0], goals[1], nil, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NestedLoopJoin(context.Background(), db, uniform(), goals[0], goals[1], opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
