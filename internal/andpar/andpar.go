// Package andpar implements the AND-parallel extensions of section 7 of
// the paper:
//
//   - Independent AND-parallelism: "conjunctions of goals which do not
//     share variables" run under the same OR-model concurrently; their
//     solution sets combine by cross product.
//   - Semi-join evaluation for shared-variable conjunctions: the producer
//     goal runs first, its bindings for the shared variables are projected,
//     and the SPD's marking capability restricts the consumer goal's
//     candidate clauses before the join — "in our implementation a highly
//     efficient semi-join algorithm can use the marking capabilities of
//     the SPD's".
//
// Goals that share variables and are not handled by the semi-join path
// "can be executed in sequence using the same scheme as Prolog", which is
// exactly what package search does; that is the baseline the experiment
// compares against.
package andpar

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/search"
	"blog/internal/sim"
	"blog/internal/spd"
	"blog/internal/term"
	"blog/internal/unify"
	"blog/internal/weights"
)

// Groups partitions goal indexes into connected components of the
// variable-sharing graph under env: goals in different groups share no
// unbound variable and are independent in the section-7 sense. Groups are
// returned in first-goal order; within a group, goal order is preserved.
func Groups(env *term.Env, goals []term.Term) [][]int {
	varsOf := make([][]*term.Var, len(goals))
	for i, g := range goals {
		varsOf[i] = term.VarsUnder(env, g, nil)
	}
	// Union-find over goal indexes.
	parent := make([]int, len(goals))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	owner := make(map[*term.Var]int)
	for i, vs := range varsOf {
		for _, v := range vs {
			if prev, ok := owner[v]; ok {
				union(prev, i)
			} else {
				owner[v] = i
			}
		}
	}
	groupsByRoot := make(map[int][]int)
	var order []int
	for i := range goals {
		r := find(i)
		if _, seen := groupsByRoot[r]; !seen {
			order = append(order, r)
		}
		groupsByRoot[r] = append(groupsByRoot[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groupsByRoot[r])
	}
	return out
}

// Result is the outcome of an AND-parallel conjunction evaluation.
type Result struct {
	// Solutions are the combined conjunction answers. Bindings merge the
	// groups' (variable-disjoint) maps; Bound and Depth sum across the
	// combined groups' chains and Chain concatenates them in group order,
	// so a combined solution reports the same cost accounting a sequential
	// search of the whole conjunction would.
	Solutions []engine.Solution
	// QueryVars are the conjunction's variables in first-occurrence order.
	QueryVars []*term.Var
	// GroupCount is the number of independent groups found.
	GroupCount int
	// GroupSolutions records each group's own solution count.
	GroupSolutions []int
	// Stats aggregates search work across groups (counters sum; the
	// frontier and depth peaks take the maximum over groups).
	Stats search.Stats
	// Exhausted reports that every group searched its whole tree and the
	// cross product was not truncated by MaxSolutions: the solution list
	// is complete.
	Exhausted bool
}

// Options configures parallel conjunction evaluation.
type Options struct {
	// Search configures each group's inner search.
	Search search.Options
	// Parallel runs independent groups concurrently (the experiment's
	// ablation switch; false runs the same decomposition sequentially).
	Parallel bool
	// MaxSolutions bounds the combined solution count (0 = all).
	MaxSolutions int
}

// Solve evaluates a conjunction by independent-group decomposition. Groups
// run concurrently when opt.Parallel is set, then combine by cross
// product. Any group with zero solutions makes the conjunction fail. A
// cancelled ctx aborts every group's search and returns the context error.
func Solve(ctx context.Context, db *kb.DB, ws weights.Store, goals []term.Term, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(goals) == 0 {
		return nil, errors.New("andpar: empty conjunction")
	}
	groups := Groups(nil, goals)
	res := &Result{GroupCount: len(groups)}
	for _, g := range goals {
		res.QueryVars = term.Vars(g, res.QueryVars)
	}

	outs := make([]*search.Result, len(groups))
	errs := make([]error, len(groups))
	runGroup := func(gi int) {
		idx := groups[gi]
		sub := make([]term.Term, len(idx))
		for j, i := range idx {
			sub[j] = goals[i]
		}
		outs[gi], errs[gi] = search.Run(ctx, db, ws, sub, opt.Search)
	}
	if opt.Parallel {
		var wg sync.WaitGroup
		for gi := range groups {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				runGroup(gi)
			}(gi)
		}
		wg.Wait()
	} else {
		for gi := range groups {
			runGroup(gi)
		}
	}
	exhausted := true
	for gi, r := range outs {
		if errs[gi] != nil {
			return nil, errs[gi]
		}
		res.GroupSolutions = append(res.GroupSolutions, len(r.Solutions))
		res.Stats.Expanded += r.Stats.Expanded
		res.Stats.Generated += r.Stats.Generated
		res.Stats.Failures += r.Stats.Failures
		res.Stats.DepthCutoffs += r.Stats.DepthCutoffs
		res.Stats.Pruned += r.Stats.Pruned
		res.Stats.VMDispatched += r.Stats.VMDispatched
		if r.Stats.MaxFrontier > res.Stats.MaxFrontier {
			res.Stats.MaxFrontier = r.Stats.MaxFrontier
		}
		if r.Stats.MaxDepth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = r.Stats.MaxDepth
		}
		if !r.Exhausted {
			exhausted = false
		}
	}

	// Cross product. Groups are variable-disjoint, so bindings merge
	// cleanly; bounds/depths add and chains concatenate.
	combined := []engine.Solution{{Bindings: map[string]term.Term{}}}
	for gi, r := range outs {
		if len(r.Solutions) == 0 {
			res.Exhausted = exhausted // a proven failure is still complete
			return res, nil           // conjunction fails
		}
		next := make([]engine.Solution, 0, len(combined)*len(r.Solutions))
	cross:
		for _, base := range combined {
			for _, add := range r.Solutions {
				m := make(map[string]term.Term, len(base.Bindings)+len(add.Bindings))
				for k, v := range base.Bindings {
					m[k] = v
				}
				for k, v := range add.Bindings {
					m[k] = v
				}
				chain := make([]kb.Arc, 0, len(base.Chain)+len(add.Chain))
				chain = append(append(chain, base.Chain...), add.Chain...)
				next = append(next, engine.Solution{
					Bindings: m,
					Bound:    base.Bound + add.Bound,
					Depth:    base.Depth + add.Depth,
					Chain:    chain,
				})
				if opt.MaxSolutions > 0 && len(next) >= opt.MaxSolutions && gi == len(groups)-1 {
					break cross
				}
			}
		}
		combined = next
	}
	res.Solutions = combined
	truncated := false
	if opt.MaxSolutions > 0 {
		full := 1
		for _, n := range res.GroupSolutions {
			if full > opt.MaxSolutions {
				break // saturated: already past the cap
			}
			full *= n
		}
		truncated = full > opt.MaxSolutions
		if len(res.Solutions) > opt.MaxSolutions {
			res.Solutions = res.Solutions[:opt.MaxSolutions]
		}
	}
	res.Exhausted = exhausted && !truncated
	return res, nil
}

// SemiJoinReport is the outcome and cost accounting of a semi-join.
type SemiJoinReport struct {
	Solutions []map[string]term.Term
	// ProducerSolutions is |p| after evaluating the producer goal.
	ProducerSolutions int
	// ConsumerClauses is the consumer predicate's total clause count (the
	// naive candidate set).
	ConsumerClauses int
	// MarkedClauses is the candidate count after SPD mark restriction.
	MarkedClauses int
	// SPDCycles is the simulated disk time of the marking pass.
	SPDCycles sim.Time
	// JoinAttempts counts consumer-side unifications actually performed.
	JoinAttempts int
}

// SemiJoin evaluates the conjunction `producer, consumer` where the two
// goals share at least one variable and the consumer resolves against
// facts. It runs the producer with the given search options, projects the
// shared-variable bindings, marks matching consumer facts on the SPD
// (charging simulated disk time), and joins only against marked facts.
func SemiJoin(ctx context.Context, db *kb.DB, ws weights.Store, producer, consumer term.Term, disk *spd.SPD, opt search.Options) (*SemiJoinReport, error) {
	shared := sharedVars(producer, consumer)
	if len(shared) == 0 {
		return nil, errors.New("andpar: semi-join requires shared variables; use Solve for independent goals")
	}
	consPred, ok := term.Indicator(consumer)
	if !ok {
		return nil, fmt.Errorf("andpar: consumer %s is not callable", consumer)
	}
	consClauses := db.ClausesFor(consPred)
	for _, c := range consClauses {
		if !c.IsFact() {
			return nil, fmt.Errorf("andpar: semi-join consumer %s resolves against rule %s; only fact joins are supported", consPred, c)
		}
	}

	rep := &SemiJoinReport{ConsumerClauses: len(consClauses)}

	// Phase 1: evaluate the producer.
	prodRes, err := search.Run(ctx, db, ws, []term.Term{producer}, opt)
	if err != nil {
		return nil, err
	}
	rep.ProducerSolutions = len(prodRes.Solutions)
	if rep.ProducerSolutions == 0 {
		return rep, nil
	}

	// Phase 2: project shared-variable values and mark consumer facts
	// whose head could join any projected tuple.
	type proj map[string]term.Term
	projections := make([]proj, 0, len(prodRes.Solutions))
	for _, s := range prodRes.Solutions {
		p := proj{}
		for _, v := range shared {
			p[v.String()] = s.Bindings[v.String()]
		}
		projections = append(projections, p)
	}
	markOK := func(c *kb.Clause) bool {
		for _, p := range projections {
			// Build the consumer goal with shared vars bound to this
			// projection and test unifiability against the fact head.
			env := (*term.Env)(nil)
			okAll := true
			for _, v := range shared {
				val, ok := p[v.String()]
				if !ok {
					okAll = false
					break
				}
				env = env.Bind(v, val)
			}
			if !okAll {
				continue
			}
			head := c.ActivateHead()
			if unify.CanUnify(env, consumer, head) {
				return true
			}
		}
		return false
	}
	markedSet := make(map[kb.ClauseID]bool)
	if disk != nil {
		before := disk.Elapsed()
		disk.ClearMarks()
		disk.MarkWhere(func(b *spd.Block) bool {
			c := db.Clause(kb.ClauseID(b.ID))
			return c != nil && c.Pred == consPred && markOK(c)
		})
		for _, id := range disk.Marked() {
			markedSet[kb.ClauseID(id)] = true
		}
		rep.SPDCycles = disk.Elapsed() - before
	} else {
		for _, c := range consClauses {
			if markOK(c) {
				markedSet[c.ID] = true
			}
		}
	}
	rep.MarkedClauses = len(markedSet)

	// Phase 3: join each producer solution against marked facts only.
	var qvars []*term.Var
	qvars = term.Vars(producer, qvars)
	qvars = term.Vars(consumer, qvars)
	for _, s := range prodRes.Solutions {
		env := (*term.Env)(nil)
		valid := true
		for _, v := range prodRes.QueryVars {
			val, ok := s.Bindings[v.String()]
			if !ok {
				valid = false
				break
			}
			if _, isVar := val.(*term.Var); isVar {
				continue // producer left it free
			}
			env = env.Bind(v, val)
		}
		if !valid {
			continue
		}
		for _, c := range consClauses {
			if !markedSet[c.ID] {
				continue
			}
			rep.JoinAttempts++
			head := c.ActivateHead()
			e2, ok := unify.Unify(env, consumer, head)
			if !ok {
				continue
			}
			m := make(map[string]term.Term, len(qvars))
			for _, v := range qvars {
				m[v.String()] = e2.ResolveDeep(v)
			}
			rep.Solutions = append(rep.Solutions, m)
		}
	}
	return rep, nil
}

// sharedVars returns the variables occurring in both terms.
func sharedVars(a, b term.Term) []*term.Var {
	av := term.Vars(a, nil)
	bv := term.Vars(b, nil)
	var out []*term.Var
	for _, v := range av {
		for _, w := range bv {
			if v == w {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// NestedLoopJoin is the naive baseline: join every producer solution
// against every consumer fact with no restriction. It returns the same
// solutions as SemiJoin plus the attempt count for comparison.
func NestedLoopJoin(ctx context.Context, db *kb.DB, ws weights.Store, producer, consumer term.Term, opt search.Options) (*SemiJoinReport, error) {
	consPred, ok := term.Indicator(consumer)
	if !ok {
		return nil, fmt.Errorf("andpar: consumer %s is not callable", consumer)
	}
	consClauses := db.ClausesFor(consPred)
	rep := &SemiJoinReport{ConsumerClauses: len(consClauses), MarkedClauses: len(consClauses)}
	prodRes, err := search.Run(ctx, db, ws, []term.Term{producer}, opt)
	if err != nil {
		return nil, err
	}
	rep.ProducerSolutions = len(prodRes.Solutions)
	var qvars []*term.Var
	qvars = term.Vars(producer, qvars)
	qvars = term.Vars(consumer, qvars)
	for _, s := range prodRes.Solutions {
		env := (*term.Env)(nil)
		for _, v := range prodRes.QueryVars {
			val, ok := s.Bindings[v.String()]
			if !ok {
				continue
			}
			if _, isVar := val.(*term.Var); isVar {
				continue
			}
			env = env.Bind(v, val)
		}
		for _, c := range consClauses {
			if !c.IsFact() {
				return nil, fmt.Errorf("andpar: consumer %s resolves against rule %s", consPred, c)
			}
			rep.JoinAttempts++
			head := c.ActivateHead()
			e2, ok := unify.Unify(env, consumer, head)
			if !ok {
				continue
			}
			m := make(map[string]term.Term, len(qvars))
			for _, v := range qvars {
				m[v.String()] = e2.ResolveDeep(v)
			}
			rep.Solutions = append(rep.Solutions, m)
		}
	}
	return rep, nil
}
