// Package scoreboard models the B-LOG processor of section 6: a CDC-6600
// style scoreboard keeps a set of specialized functional units (search,
// unify, copy, weight update, disk channel) busy across M concurrent
// chain-development tasks, so that one processor "is multitasked, able to
// develop several chains of the search tree at one time" and "the delays
// due to disk access can be compensated for by developing other chains".
//
// The model also includes the multi-write (shift register) memory the
// paper proposes for environment copying: with it, producing the k child
// environments of an expansion costs one pass over the environment words;
// without it, k passes. Experiment E7 measures both the latency-hiding and
// the copy-cost claims.
package scoreboard

import (
	"fmt"

	"blog/internal/sim"
)

// UnitKind names a functional unit class.
type UnitKind int

const (
	// Search finds candidate clauses through the index.
	Search UnitKind = iota
	// Unify runs one head unification.
	Unify
	// Copy produces child environments (multi-write memory applies here).
	Copy
	// Weight computes child bounds and applies update rules.
	Weight
	// Disk pages a clause block in from the SPD.
	Disk
	numUnits
)

// String implements fmt.Stringer.
func (u UnitKind) String() string {
	switch u {
	case Search:
		return "search"
	case Unify:
		return "unify"
	case Copy:
		return "copy"
	case Weight:
		return "weight"
	case Disk:
		return "disk"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(u))
	}
}

// Config sets unit latencies and memory behavior.
type Config struct {
	// SearchCycles is the index probe cost per expansion.
	SearchCycles sim.Time
	// UnifyCycles is the cost of one head unification.
	UnifyCycles sim.Time
	// CopySetupCycles is the fixed cost of starting an environment copy.
	CopySetupCycles sim.Time
	// CopyPerWord is the cost per environment word per pass.
	CopyPerWord sim.Time
	// WeightCycles is the bound computation cost per child.
	WeightCycles sim.Time
	// DiskCycles is the SPD page-in latency.
	DiskCycles sim.Time
	// MultiWrite enables the shift-register memory: one copy pass serves
	// all children of an expansion.
	MultiWrite bool
	// Units gives the number of parallel units of each kind (default 1
	// each; the disk channel is also 1).
	Units map[UnitKind]int
}

// DefaultConfig uses latencies in the spirit of the paper's technology:
// disk access orders of magnitude slower than register-level operations.
func DefaultConfig() Config {
	return Config{
		SearchCycles:    4,
		UnifyCycles:     6,
		CopySetupCycles: 2,
		CopyPerWord:     1,
		WeightCycles:    1,
		DiskCycles:      800,
		MultiWrite:      true,
	}
}

// Job is one chain expansion to execute: resolve a goal with Candidates
// matching clauses over an environment of EnvWords words, needing
// DiskBlocks block page-ins that miss the local memory.
type Job struct {
	Candidates int
	EnvWords   int
	DiskBlocks int
}

// Report summarizes a processor run.
type Report struct {
	Cycles       sim.Time
	Jobs         int
	Children     int
	UnitBusy     map[UnitKind]sim.Time
	UnitUtil     map[UnitKind]float64
	DiskStalls   uint64
	CopyPasses   uint64
	WordsWritten uint64
}

// Processor is one scoreboard-driven B-LOG processor with M tasks.
type Processor struct {
	cfg   Config
	tasks int
}

// New creates a processor with M concurrent tasks (minimum 1).
func New(cfg Config, tasks int) *Processor {
	if tasks < 1 {
		tasks = 1
	}
	return &Processor{cfg: cfg, tasks: tasks}
}

// Run executes the job stream to completion and reports timing. Jobs are
// claimed by tasks in order; each task runs its job's micro-program
// (search; then per candidate: disk? copy, unify, weight), with every step
// contending for its unit. Deterministic: ties resolve in task order.
func (p *Processor) Run(jobs []Job) Report {
	var s sim.Sim
	units := make(map[UnitKind][]*sim.Resource)
	unitCount := func(k UnitKind) int {
		if p.cfg.Units != nil {
			if n, ok := p.cfg.Units[k]; ok && n > 0 {
				return n
			}
		}
		return 1
	}
	for k := UnitKind(0); k < numUnits; k++ {
		n := unitCount(k)
		for i := 0; i < n; i++ {
			units[k] = append(units[k], sim.NewResource(&s, k.String()))
		}
	}
	// pick returns the unit of kind k that frees earliest (scoreboard
	// structural-hazard resolution). With FIFO resources, acquiring the
	// least-loaded unit approximates issue-when-free.
	rep := Report{
		UnitBusy: make(map[UnitKind]sim.Time),
		UnitUtil: make(map[UnitKind]float64),
	}
	acquire := func(k UnitKind, cost sim.Time, done func()) {
		rs := units[k]
		best := rs[0]
		for _, r := range rs[1:] {
			if r.Busy < best.Busy {
				best = r
			}
		}
		best.Acquire(cost, done)
	}

	next := 0
	var runTask func(id int)
	runJob := func(id int, j Job, finished func()) {
		// Micro-program: SEARCH, then per-candidate pipeline.
		acquire(Search, p.cfg.SearchCycles, func() {
			// Copy phase: one pass with multi-write, k passes without.
			passes := j.Candidates
			if p.cfg.MultiWrite {
				passes = 1
			}
			if j.Candidates == 0 {
				passes = 0
			}
			copyCost := sim.Time(0)
			if passes > 0 {
				copyCost = p.cfg.CopySetupCycles + sim.Time(passes)*sim.Time(j.EnvWords)*p.cfg.CopyPerWord
				rep.CopyPasses += uint64(passes)
				rep.WordsWritten += uint64(passes * j.EnvWords)
			}
			diskNeeded := j.DiskBlocks
			afterDisk := func() {
				if copyCost == 0 {
					// Failure expansion: weight update only.
					acquire(Weight, p.cfg.WeightCycles, finished)
					return
				}
				acquire(Copy, copyCost, func() {
					remaining := j.Candidates
					for c := 0; c < j.Candidates; c++ {
						acquire(Unify, p.cfg.UnifyCycles, func() {
							acquire(Weight, p.cfg.WeightCycles, func() {
								remaining--
								if remaining == 0 {
									finished()
								}
							})
						})
					}
				})
			}
			if diskNeeded > 0 {
				rep.DiskStalls += uint64(diskNeeded)
				var pageIn func(left int)
				pageIn = func(left int) {
					if left == 0 {
						afterDisk()
						return
					}
					acquire(Disk, p.cfg.DiskCycles, func() { pageIn(left - 1) })
				}
				pageIn(diskNeeded)
			} else {
				afterDisk()
			}
		})
	}
	runTask = func(id int) {
		if next >= len(jobs) {
			return
		}
		j := jobs[next]
		next++
		rep.Jobs++
		rep.Children += j.Candidates
		runJob(id, j, func() { runTask(id) })
	}
	for t := 0; t < p.tasks && t < len(jobs); t++ {
		t := t
		s.At(0, func() { runTask(t) })
	}
	rep.Cycles = s.Run(0)
	for k := UnitKind(0); k < numUnits; k++ {
		var busy sim.Time
		for _, r := range units[k] {
			busy += r.Busy
		}
		rep.UnitBusy[k] = busy
		if rep.Cycles > 0 {
			rep.UnitUtil[k] = float64(busy) / float64(rep.Cycles) / float64(len(units[k]))
		}
	}
	return rep
}
