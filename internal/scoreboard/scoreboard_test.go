package scoreboard

import (
	"testing"

	"blog/internal/sim"
)

func simpleJobs(n, candidates, envWords, disk int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Candidates: candidates, EnvWords: envWords, DiskBlocks: disk}
	}
	return jobs
}

func TestSingleTaskSingleJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DiskCycles = 100
	p := New(cfg, 1)
	rep := p.Run(simpleJobs(1, 2, 10, 0))
	if rep.Jobs != 1 || rep.Children != 2 {
		t.Errorf("jobs=%d children=%d", rep.Jobs, rep.Children)
	}
	// search(4) + copy(2+10) + unify/weight pipeline. Exact pipeline:
	// both unifies queue on one unit (6+6), each followed by weight(1).
	// End = 4 + 12 + 6 + 6 + 1 = 29.
	if rep.Cycles != 29 {
		t.Errorf("cycles = %d, want 29", rep.Cycles)
	}
}

func TestMultiWriteReducesCopyCost(t *testing.T) {
	base := DefaultConfig()
	base.MultiWrite = true
	single := base
	single.MultiWrite = false
	jobs := simpleJobs(50, 4, 32, 0)
	mw := New(base, 1).Run(jobs)
	sw := New(single, 1).Run(jobs)
	if mw.Cycles >= sw.Cycles {
		t.Errorf("multi-write (%d) should beat single-write (%d)", mw.Cycles, sw.Cycles)
	}
	if mw.CopyPasses != 50 || sw.CopyPasses != 200 {
		t.Errorf("copy passes = %d / %d, want 50 / 200", mw.CopyPasses, sw.CopyPasses)
	}
	if mw.WordsWritten >= sw.WordsWritten {
		t.Error("multi-write should write fewer words")
	}
}

func TestMultitaskingHidesDiskLatency(t *testing.T) {
	// Jobs that each need a disk page-in: with one task the processor
	// idles during disk waits; with several tasks, compute overlaps disk.
	cfg := DefaultConfig()
	cfg.DiskCycles = 500
	jobs := simpleJobs(16, 3, 16, 1)
	t1 := New(cfg, 1).Run(jobs)
	t4 := New(cfg, 4).Run(jobs)
	if t4.Cycles >= t1.Cycles {
		t.Errorf("4 tasks (%d cycles) should beat 1 task (%d)", t4.Cycles, t1.Cycles)
	}
	// Disk stays the bottleneck: its utilization should rise with tasks.
	if t4.UnitUtil[Disk] <= t1.UnitUtil[Disk] {
		t.Errorf("disk util with 4 tasks (%.2f) should exceed 1 task (%.2f)",
			t4.UnitUtil[Disk], t1.UnitUtil[Disk])
	}
}

func TestMoreTasksSaturate(t *testing.T) {
	// Past saturation, extra tasks cannot help (single disk channel).
	cfg := DefaultConfig()
	cfg.DiskCycles = 300
	jobs := simpleJobs(32, 2, 8, 1)
	t8 := New(cfg, 8).Run(jobs)
	t32 := New(cfg, 32).Run(jobs)
	// Makespan is bounded below by total disk time: 32 jobs x 300.
	if t8.Cycles < 32*300 || t32.Cycles < 32*300 {
		t.Errorf("cycles below disk lower bound: %d, %d", t8.Cycles, t32.Cycles)
	}
	// And they should be within a small factor of it when saturated.
	if t32.Cycles > 32*300+3000 {
		t.Errorf("32 tasks far off disk bound: %d", t32.Cycles)
	}
}

func TestFailureJobsWeightOnly(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg, 1)
	rep := p.Run([]Job{{Candidates: 0, EnvWords: 8, DiskBlocks: 0}})
	// search(4) + weight(1) only.
	if rep.Cycles != cfg.SearchCycles+cfg.WeightCycles {
		t.Errorf("failure job cycles = %d", rep.Cycles)
	}
	if rep.CopyPasses != 0 {
		t.Error("failure job must not copy")
	}
}

func TestMultipleUnifyUnits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Units = map[UnitKind]int{Unify: 4}
	jobs := simpleJobs(20, 4, 4, 0)
	one := New(DefaultConfig(), 4).Run(jobs)
	four := New(cfg, 4).Run(jobs)
	if four.Cycles >= one.Cycles {
		t.Errorf("4 unify units (%d) should beat 1 (%d)", four.Cycles, one.Cycles)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	jobs := simpleJobs(40, 3, 12, 1)
	a := New(cfg, 6).Run(jobs)
	b := New(cfg, 6).Run(jobs)
	if a.Cycles != b.Cycles || a.DiskStalls != b.DiskStalls {
		t.Error("simulation must be deterministic")
	}
}

func TestUtilizationBounds(t *testing.T) {
	rep := New(DefaultConfig(), 4).Run(simpleJobs(30, 3, 10, 1))
	for k, u := range rep.UnitUtil {
		if u < 0 || u > 1.0000001 {
			t.Errorf("unit %v utilization %v out of range", k, u)
		}
	}
	if rep.Cycles <= 0 {
		t.Error("no cycles elapsed")
	}
}

func TestEmptyJobStream(t *testing.T) {
	rep := New(DefaultConfig(), 4).Run(nil)
	if rep.Jobs != 0 || rep.Cycles != 0 {
		t.Errorf("empty run: %+v", rep)
	}
}

func TestTaskCountClamped(t *testing.T) {
	p := New(DefaultConfig(), 0)
	rep := p.Run(simpleJobs(2, 1, 1, 0))
	if rep.Jobs != 2 {
		t.Error("clamped task count should still run")
	}
}

func TestUnitKindString(t *testing.T) {
	names := map[UnitKind]string{Search: "search", Unify: "unify", Copy: "copy", Weight: "weight", Disk: "disk"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d prints %s", int(k), k.String())
		}
	}
	if UnitKind(99).String() != "UnitKind(99)" {
		t.Error("unknown kind")
	}
}

func TestDiskSerialChannel(t *testing.T) {
	// Two tasks, both needing disk: page-ins serialize on one channel.
	cfg := DefaultConfig()
	cfg.DiskCycles = 100
	rep := New(cfg, 2).Run(simpleJobs(2, 1, 1, 1))
	if rep.Cycles < 200 {
		t.Errorf("cycles = %d; two page-ins on one channel need >= 200", rep.Cycles)
	}
	var total sim.Time
	for _, b := range rep.UnitBusy {
		total += b
	}
	if rep.UnitBusy[Disk] != 200 {
		t.Errorf("disk busy = %d, want 200", rep.UnitBusy[Disk])
	}
}

func BenchmarkScoreboard(b *testing.B) {
	cfg := DefaultConfig()
	jobs := simpleJobs(100, 3, 16, 1)
	p := New(cfg, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(jobs)
	}
}
