package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"blog/internal/workload"
)

// spanNames flattens a span tree's names depth-first.
func spanNames(s map[string]any, out *[]string) {
	if s == nil {
		return
	}
	if n, ok := s["name"].(string); ok {
		*out = append(*out, n)
	}
	if kids, ok := s["children"].([]any); ok {
		for _, k := range kids {
			if m, ok := k.(map[string]any); ok {
				spanNames(m, out)
			}
		}
	}
}

func TestQueryTraceFlag(t *testing.T) {
	_, ts := newTestServer(t, workload.FamilyTree(3, 2), Config{})
	// Without the flag the trace field stays absent.
	got := queryResp(t, ts.Client(), ts.URL+"/query", QueryRequest{Goal: "gf(p0,G)", Strategy: "dfs"})
	if got.Trace != nil {
		t.Fatalf("untraced response carries trace: %+v", got.Trace)
	}
	// With it the span tree comes back: query > parse/compile/search.
	resp, data := postJSON(t, ts.Client(), ts.URL+"/query",
		QueryRequest{Goal: "gf(p0,G)", Strategy: "dfs", Trace: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	tr, ok := raw["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace in %s", data)
	}
	var names []string
	spanNames(tr, &names)
	for _, want := range []string{"query", "parse", "search"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("trace lacks %q span; got %v", want, names)
		}
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, workload.FamilyTree(3, 2), Config{})
	// Empty before any query.
	resp, data := get(t, ts.Client(), ts.URL+"/profile")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var prof ProfileResponse
	if err := json.Unmarshal(data, &prof); err != nil {
		t.Fatal(err)
	}
	if len(prof.Preds) != 0 {
		t.Fatalf("profile before any query: %+v", prof.Preds)
	}
	queryResp(t, ts.Client(), ts.URL+"/query", QueryRequest{Goal: "gf(p0,G)", Strategy: "dfs"})
	queryResp(t, ts.Client(), ts.URL+"/query", QueryRequest{Goal: "anc(p0,X)", Strategy: "dfs"})
	resp, data = get(t, ts.Client(), ts.URL+"/profile?n=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	prof = ProfileResponse{}
	if err := json.Unmarshal(data, &prof); err != nil {
		t.Fatal(err)
	}
	if len(prof.Preds) == 0 || len(prof.Preds) > 3 {
		t.Fatalf("profile rows = %d, want 1..3: %s", len(prof.Preds), data)
	}
	if prof.TotalNanos == 0 {
		t.Error("profile attributed no time")
	}
	seen := map[string]bool{}
	for _, p := range prof.Preds {
		seen[p.Pred] = p.Expansions > 0
	}
	if !seen["gf/2"] && !seen["anc/2"] && !seen["f/2"] {
		t.Errorf("no familiar predicate in profile: %s", data)
	}
}

func TestMetricsHistogram(t *testing.T) {
	_, ts := newTestServer(t, workload.FamilyTree(2, 2), Config{})
	queryResp(t, ts.Client(), ts.URL+"/query", QueryRequest{Goal: "gf(p0,G)"})
	_, data := get(t, ts.Client(), ts.URL+"/metrics")
	body := string(data)
	for _, want := range []string{
		`blogd_query_duration_seconds_bucket{le="0.1"} `,
		"blogd_query_duration_seconds_bucket{le=\"+Inf\"} 1\n",
		"blogd_query_duration_seconds_sum ",
		"blogd_query_duration_seconds_count 1\n",
		"blogd_killed_total 0\n",
		"blogd_slow_queries_total 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics lack %q:\n%s", want, body)
		}
	}
}

// TestDebugQueriesAndKill drives the live inspector end to end: a stuck
// query shows up in GET /debug/queries, DELETE cancels it, the victim's
// own request answers 410 Gone and the kill is counted.
func TestDebugQueriesAndKill(t *testing.T) {
	// A DFS for an absent node in a dense DAG: exponentially many paths
	// within the depth bound, so the search runs until killed.
	_, ts := newTestServer(t, workload.DAG(18, 8, 4, 1), Config{DefaultTimeout: time.Minute})
	type result struct {
		status int
		body   string
	}
	done := make(chan result, 1)
	go func() {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/query",
			QueryRequest{Goal: "path(n0_0, missing)", Strategy: "dfs", MaxExpansions: 1 << 40})
		done <- result{resp.StatusCode, string(data)}
	}()

	// Wait for the query to appear in the inspector.
	var victim LiveQuery
	deadline := time.Now().Add(10 * time.Second)
	for victim.ID == "" {
		if time.Now().After(deadline) {
			t.Fatal("query never appeared in /debug/queries")
		}
		_, data := get(t, ts.Client(), ts.URL+"/debug/queries")
		var list []LiveQuery
		if err := json.Unmarshal(data, &list); err != nil {
			t.Fatalf("bad listing %q: %v", data, err)
		}
		if len(list) > 0 {
			victim = list[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if victim.Goal != "path(n0_0, missing)" || victim.Strategy != "dfs" {
		t.Errorf("listing = %+v, want the path goal under dfs", victim)
	}

	// Killing an unknown id is a 404 and leaves the victim running.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/debug/queries/q-999999", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown id: status %d", resp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/debug/queries/"+victim.ID, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE %s: status %d: %s", victim.ID, resp.StatusCode, data)
	}
	var kr KillResponse
	if err := json.Unmarshal(data, &kr); err != nil {
		t.Fatal(err)
	}
	if kr.ID != victim.ID || !kr.Killed {
		t.Errorf("kill response = %+v", kr)
	}

	got := <-done
	if got.status != http.StatusGone {
		t.Fatalf("victim got %d (%s), want 410 Gone", got.status, got.body)
	}
	if !strings.Contains(got.body, "cancelled via inspector") {
		t.Errorf("victim body %q lacks the kill cause", got.body)
	}

	// The registry is empty again and the kill was counted.
	_, data = get(t, ts.Client(), ts.URL+"/debug/queries")
	if string(data) != "[]\n" && string(data) != "[]" {
		t.Errorf("inspector still lists queries: %s", data)
	}
	_, data = get(t, ts.Client(), ts.URL+"/metrics")
	if !strings.Contains(string(data), "blogd_killed_total 1\n") {
		t.Errorf("killed_total not incremented:\n%s", data)
	}
}

// syncWriter serializes writes from the server's slog handler.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

func TestSlowQueryLog(t *testing.T) {
	var buf syncWriter
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	_, ts := newTestServer(t, workload.FamilyTree(3, 2),
		Config{Logger: logger, SlowQuery: time.Nanosecond})
	queryResp(t, ts.Client(), ts.URL+"/query", QueryRequest{Goal: "gf(p0,G)", Strategy: "dfs"})
	out := buf.String()
	for _, want := range []string{"slow query", "request_id=q-", "goal=", "spans=", "hot_preds="} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query log lacks %q:\n%s", want, out)
		}
	}
	_, data := get(t, ts.Client(), ts.URL+"/metrics")
	if !strings.Contains(string(data), "blogd_slow_queries_total 1\n") {
		t.Errorf("slow_queries_total not incremented:\n%s", data)
	}
}

func get(t testing.TB, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}
