package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSaturated is returned by Pool.Acquire when the concurrency limit is
// reached and the admission queue is full. The handler maps it to 429 so
// overload produces fast rejections instead of unbounded queueing.
var ErrSaturated = errors.New("server: query pool saturated")

// Pool is the admission controller in front of the solver runtime: at
// most workers queries run concurrently, at most queueLen more may wait
// for a slot, and everything beyond that fails fast. A waiter whose
// context ends (client gone, deadline passed) leaves the queue
// immediately, so abandoned requests cost nothing.
type Pool struct {
	sem      chan struct{}
	queueCap int64
	waiting  atomic.Int64
}

// NewPool sizes the admission controller. workers <= 0 defaults to 4;
// queueLen < 0 means no waiting (admit-or-reject).
func NewPool(workers, queueLen int) *Pool {
	if workers <= 0 {
		workers = 4
	}
	if queueLen < 0 {
		queueLen = 0
	}
	return &Pool{sem: make(chan struct{}, workers), queueCap: int64(queueLen)}
}

// Acquire claims a worker slot, waiting in the bounded queue if all slots
// are busy. It returns ErrSaturated when the queue is full and ctx's
// error if the caller gives up first. Every nil return must be paired
// with exactly one Release.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	default:
	}
	// No free slot: claim a queue place or fail fast.
	for {
		w := p.waiting.Load()
		if w >= p.queueCap {
			return ErrSaturated
		}
		if p.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	defer p.waiting.Add(-1)
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by a successful Acquire.
func (p *Pool) Release() { <-p.sem }

// InFlight returns the number of slots currently claimed.
func (p *Pool) InFlight() int { return len(p.sem) }

// Queued returns the number of requests waiting for a slot.
func (p *Pool) Queued() int { return int(p.waiting.Load()) }

// Capacity returns (workers, queueLen).
func (p *Pool) Capacity() (workers, queueLen int) { return cap(p.sem), int(p.queueCap) }
