package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blog"
	"blog/internal/obs"
)

// Config sizes the service around one shared Program.
type Config struct {
	// Program is the loaded knowledge base every request queries.
	Program *blog.Program

	// MaxConcurrent bounds queries running at once (default GOMAXPROCS).
	MaxConcurrent int
	// QueueLen bounds requests waiting for a slot; beyond it requests
	// fail fast with 429. 0 means the default (64); negative disables
	// waiting entirely (admit-or-reject).
	QueueLen int
	// MaxWorkers clamps the client-requested OR-parallel worker count, so
	// one admitted request cannot spawn unbounded goroutines (default 16).
	MaxWorkers int
	// DefaultTimeout bounds a query that asked for no deadline
	// (default 10s); MaxTimeout clamps client-requested deadlines
	// (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// SolutionCap clamps per-query answer counts (default 1024).
	SolutionCap int
	// MaxSessions bounds live learning sessions (default 1024).
	MaxSessions int
	// SessionTTL evicts sessions idle for this long — their local weights
	// merge conservatively, exactly as an explicit end would — so
	// abandoned clients cannot exhaust MaxSessions forever (default 30m;
	// negative disables eviction).
	SessionTTL time.Duration
	// DefaultStrategy names the discipline used when a request leaves
	// strategy empty (default "best").
	DefaultStrategy string
	// NoVM forces the tree-walking resolution engine for every query (the
	// daemon's -compiled=off escape hatch); per-request "compiled":false
	// does the same for one query.
	NoVM bool

	// JournalCapacity sizes the program's structured event journal (table
	// lifecycle, VM recompiles, session churn, rejections, kills, slow
	// queries) served by GET /events. 0 means the default (4096).
	JournalCapacity int

	// Logger receives the server's structured logs (slow queries,
	// inspector kills), each carrying the query's request ID. nil means
	// slog.Default().
	Logger *slog.Logger
	// SlowQuery is the slow-query log threshold: a query whose wall time
	// reaches it is logged with its span tree and hottest predicates
	// (sampled — at most one log per second under sustained slowness).
	// 0 disables the slow-query log.
	SlowQuery time.Duration
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueLen == 0 {
		c.QueueLen = 64
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 16
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.SolutionCap <= 0 {
		c.SolutionCap = 1024
	}
	if c.DefaultStrategy == "" {
		c.DefaultStrategy = "best"
	}
	if c.JournalCapacity <= 0 {
		c.JournalCapacity = 4096
	}
}

// streamWriteGrace bounds how long one NDJSON line may sit in a stalled
// client's socket before the stream is abandoned and its slot freed.
const streamWriteGrace = 30 * time.Second

// Server is the query service. It implements http.Handler.
type Server struct {
	cfg      Config
	program  *blog.Program
	pool     *Pool
	sessions *registry
	metrics  *serverMetrics
	mux      *http.ServeMux
	start    time.Time
	logger   *slog.Logger

	// prof is the process-wide per-predicate profile served by
	// GET /profile; each query runs with its own profiler, merged in at
	// completion so slow-query logs see exact per-query attribution.
	prof *obs.Profiler
	// live is the in-flight query registry behind GET /debug/queries.
	live *obs.Registry
	// journal is the program's structured event journal behind GET /events
	// (enabled on the program at construction).
	journal *blog.Journal
	// slowLogged is the last slow-query log's unixnano, the sampling gate.
	slowLogged atomic.Int64

	// evictions tracks background idle-eviction merges so EndAllSessions
	// can join them before the caller persists the global table.
	evictions sync.WaitGroup
}

// New builds a Server over cfg.Program. cfg.Program must be non-nil.
func New(cfg Config) *Server {
	if cfg.Program == nil {
		panic("server: Config.Program is nil")
	}
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		program:  cfg.Program,
		pool:     NewPool(cfg.MaxConcurrent, cfg.QueueLen),
		sessions: newRegistry(cfg.MaxSessions, cfg.SessionTTL),
		metrics:  newServerMetrics(),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		logger:   cfg.Logger,
		prof:     obs.NewProfiler(),
		live:     obs.NewRegistry(),
	}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	s.journal = cfg.Program.EnableJournal(cfg.JournalCapacity)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /query/stream", s.handleStream)
	s.mux.HandleFunc("POST /sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /sessions", s.handleSessionList)
	s.mux.HandleFunc("POST /sessions/{id}/query", s.handleSessionQuery)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionEnd)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("DELETE /debug/queries/{id}", s.handleDebugKill)
	s.mux.HandleFunc("GET /profile", s.handleProfile)
	s.mux.HandleFunc("GET /tables", s.handleTables)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Pool exposes the admission controller (tests and the daemon's logs).
func (s *Server) Pool() *Pool { return s.pool }

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	// Only genuine validation failures count as bad requests; 404s, 422
	// budget stops and 429s have their own accounting.
	if status == http.StatusBadRequest {
		s.metrics.badRequests.Inc()
	}
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// decodeQuery parses and validates the request body into a QueryRequest
// plus resolved strategy, solution cap and timeout. A nil return means an
// error response was already written.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (*QueryRequest, blog.Strategy, int, time.Duration, bool) {
	var q QueryRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return nil, 0, 0, 0, false
	}
	if q.Goal == "" {
		s.writeError(w, http.StatusBadRequest, "missing goal")
		return nil, 0, 0, 0, false
	}
	if err := blog.ValidateQuery(q.Goal); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad goal: "+err.Error())
		return nil, 0, 0, 0, false
	}
	name := q.Strategy
	if name == "" {
		name = s.cfg.DefaultStrategy
	}
	strat, err := blog.ParseStrategy(name)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return nil, 0, 0, 0, false
	}
	maxSol := s.cfg.SolutionCap
	if q.MaxSolutions > 0 && q.MaxSolutions < maxSol {
		maxSol = q.MaxSolutions
	}
	timeout := s.cfg.DefaultTimeout
	if q.TimeoutMs > 0 {
		// Compare in milliseconds before multiplying: a huge timeout_ms
		// must clamp to MaxTimeout, not overflow into the past.
		if int64(q.TimeoutMs) >= int64(s.cfg.MaxTimeout/time.Millisecond) {
			timeout = s.cfg.MaxTimeout
		} else {
			timeout = time.Duration(q.TimeoutMs) * time.Millisecond
		}
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	// Clamp the OR-parallel worker count: the pool bounds admitted
	// requests, this bounds the goroutines one admitted request can cost.
	if q.Workers > s.cfg.MaxWorkers {
		q.Workers = s.cfg.MaxWorkers
	}
	if q.Workers < 0 {
		q.Workers = 0
	}
	return &q, strat, maxSol, timeout, true
}

// admit claims a worker slot for the request, mapping saturation to 429
// and client abandonment to a silent drop. ok=false means a response was
// written (or the client is gone).
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	err := s.pool.Acquire(r.Context())
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrSaturated):
		s.metrics.rejected.Inc()
		s.journal.Emit(blog.Event{Kind: obs.KindAdmissionReject, Detail: r.URL.Path})
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error()})
	default:
		// Client gave up while queued; nothing useful to write.
		s.metrics.cancelled.Inc()
	}
	return false
}

// finishQueryError maps a query error onto a response and counters. ctx
// is the query's (possibly kill-cancelled) context: a context.Canceled
// whose cause is obs.ErrKilled was cancelled through the live inspector,
// which the victim learns as 410 Gone — distinct from its own client
// disconnecting, where nobody is left to read a response.
func (s *Server) finishQueryError(w http.ResponseWriter, ctx context.Context, err error) {
	// Every body carries the query's request ID, so a client can correlate
	// its failure with the inspector, the slow-query log and /events.
	reqID := obs.RequestID(ctx)
	fail := func(status int, msg string) {
		writeJSON(w, status, ErrorResponse{Error: msg, RequestID: reqID})
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.timeouts.Inc()
		fail(http.StatusGatewayTimeout, "query timed out")
	case errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), obs.ErrKilled):
		s.metrics.killed.Inc()
		fail(http.StatusGone, obs.ErrKilled.Error())
	case errors.Is(err, context.Canceled):
		s.metrics.cancelled.Inc() // client gone; response is moot
	case errors.Is(err, blog.ErrBudget):
		s.metrics.budgetStops.Inc()
		fail(http.StatusUnprocessableEntity, "expansion budget exhausted before completion")
	default:
		s.metrics.errors.Inc()
		fail(http.StatusInternalServerError, err.Error())
	}
}

// handleQuery serves POST /query: one-shot query over the shared Program.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.runQuery(w, r, nil)
}

// runQuery executes a one-shot query, optionally inside a session.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, entry *sessionEntry) {
	q, strat, maxSol, timeout, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.pool.Release()
	s.metrics.queries.Inc()
	// Counted at admission like queries_total (and like the streaming
	// endpoint), so the tabled/untabled split means the same thing on
	// every endpoint regardless of how the query ends.
	if q.Tabled {
		s.metrics.tabledQueries.Inc()
	}

	opts := q.options(maxSol)
	if s.cfg.NoVM {
		opts = append(opts, blog.Compiled(false))
	}
	sessionID := ""
	if entry != nil {
		opts = append(opts, blog.InSession(entry.s))
		sessionID = entry.id
	}
	tctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// The kill layer sits inside the timeout: DELETE /debug/queries/{id}
	// cancels with cause obs.ErrKilled, which finishQueryError reads back
	// through context.Cause to answer this request with 410.
	ctx, kill := context.WithCancelCause(tctx)
	defer kill(nil)
	lv := s.live.Add(q.Goal, strat.String(), kill)
	defer s.live.Remove(lv)
	ctx = obs.WithRequestID(ctx, lv.ID)
	// Every query runs with its own profiler, merged into the process-wide
	// profile at completion; the per-query view feeds the slow-query log.
	qprof := blog.NewProfiler()
	traced := q.Trace || s.cfg.SlowQuery > 0
	opts = append(opts, blog.Profiled(qprof), blog.Monitor(lv))
	if traced {
		opts = append(opts, blog.Traced())
	}
	start := time.Now()
	res, err := s.program.QueryContext(ctx, q.Goal, strat, opts...)
	elapsed := time.Since(start)
	s.metrics.observeLatency(elapsedMs(start))
	s.prof.Merge(qprof)
	if err != nil {
		s.finishQueryError(w, ctx, err)
		return
	}
	s.logSlowQuery(ctx, q.Goal, strat.String(), elapsed, res.Spans, qprof)
	if entry != nil {
		entry.s.NoteQuery(len(res.Solutions) > 0)
	}
	resp := QueryResponse{
		Solutions:            make([]Solution, 0, len(res.Solutions)),
		Exhausted:            res.Exhausted,
		Expanded:             res.Expanded,
		Generated:            res.Generated,
		Failures:             res.Failures,
		Strategy:             strat.String(),
		ElapsedMs:            elapsedMs(start),
		RequestID:            lv.ID,
		VMDispatched:         res.VMDispatched,
		Session:              sessionID,
		TablesCreated:        res.TablesCreated,
		TableAnswers:         res.TableAnswers,
		TableHits:            res.TableHits,
		RederivationsAvoided: res.RederivationsAvoided,
		TablesTruncated:      res.TablesTruncated,
		AnswersSubsumed:      res.AnswersSubsumed,
		AnswersImproved:      res.AnswersImproved,
	}
	if q.Trace {
		resp.Trace = res.Spans
	}
	for _, sol := range res.Solutions {
		resp.Solutions = append(resp.Solutions, wireSolution(sol))
	}
	s.metrics.vmDispatch.Add(res.VMDispatched)
	s.metrics.solutions.Add(uint64(len(resp.Solutions)))
	writeJSON(w, http.StatusOK, resp)
}

// handleStream serves POST /query/stream: solutions as NDJSON lines the
// moment the engine finds them, ending with one terminal line. Sequential
// strategies only (the streaming engine's constraint).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	q, strat, maxSol, timeout, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.pool.Release()
	s.metrics.queries.Inc()
	if q.Tabled {
		s.metrics.tabledQueries.Inc()
	}

	tctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ctx, kill := context.WithCancelCause(tctx)
	defer kill(nil)
	lv := s.live.Add(q.Goal, strat.String(), kill)
	defer s.live.Remove(lv)
	ctx = obs.WithRequestID(ctx, lv.ID)
	start := time.Now()
	opts := q.options(maxSol)
	if s.cfg.NoVM {
		opts = append(opts, blog.Compiled(false))
	}
	qprof := blog.NewProfiler()
	traced := q.Trace || s.cfg.SlowQuery > 0
	opts = append(opts, blog.Profiled(qprof), blog.Monitor(lv))
	if traced {
		opts = append(opts, blog.Traced())
	}
	it, err := s.program.IterContext(ctx, q.Goal, strat, opts...)
	if err != nil {
		// Everything rejected here is a request shape problem (parallel
		// strategy, AND-parallel) — the goal already parsed.
		s.metrics.observeLatency(elapsedMs(start))
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// A client that stops reading must not pin the worker slot: every
	// line gets a fresh write deadline set just before the write (never
	// earlier — the engine may legitimately search longer than the grace
	// between solutions), so a stalled connection errors out of Encode
	// and the deferred Release frees the slot. The deadline is cleared on
	// return so a keep-alive connection is not poisoned for its next
	// request when the embedding http.Server has no WriteTimeout.
	rc := http.NewResponseController(w)
	defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	served := 0
	for {
		sol, more, err := it.Next()
		if !more {
			st := it.Stats()
			s.metrics.vmDispatch.Add(st.VMDispatched)
			final := StreamEvent{
				Done:                 true,
				Exhausted:            it.Exhausted(),
				Solutions:            served,
				Expanded:             st.Expanded,
				RequestID:            lv.ID,
				VMDispatched:         st.VMDispatched,
				TablesCreated:        st.TablesCreated,
				TableAnswers:         st.TableAnswers,
				TableHits:            st.TableHits,
				RederivationsAvoided: st.RederivationsAvoided,
				TablesTruncated:      st.TablesTruncated,
				AnswersSubsumed:      st.AnswersSubsumed,
				AnswersImproved:      st.AnswersImproved,
			}
			if q.Trace {
				final.Trace = it.Spans()
			}
			if err != nil {
				final.Error = err.Error()
				switch {
				case errors.Is(err, context.DeadlineExceeded):
					s.metrics.timeouts.Inc()
				case errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), obs.ErrKilled):
					s.metrics.killed.Inc()
					final.Error = obs.ErrKilled.Error()
				case errors.Is(err, context.Canceled):
					s.metrics.cancelled.Inc()
				case errors.Is(err, blog.ErrBudget):
					s.metrics.budgetStops.Inc()
				default:
					s.metrics.errors.Inc()
				}
			}
			_ = rc.SetWriteDeadline(time.Now().Add(streamWriteGrace))
			_ = enc.Encode(final)
			if flusher != nil {
				flusher.Flush()
			}
			elapsed := time.Since(start)
			s.metrics.observeLatency(elapsedMs(start))
			s.prof.Merge(qprof)
			if err == nil {
				s.logSlowQuery(ctx, q.Goal, strat.String(), elapsed, it.Spans(), qprof)
			}
			return
		}
		ws := wireSolution(sol)
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteGrace))
		if encErr := enc.Encode(StreamEvent{Solution: &ws}); encErr != nil {
			// Client went away mid-stream; the deferred Release frees the
			// slot and ctx cancellation stops the engine on the next pull.
			s.metrics.cancelled.Inc()
			s.metrics.observeLatency(elapsedMs(start))
			s.prof.Merge(qprof)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		served++
		s.metrics.streamed.Inc()
	}
}

// handleSessionCreate serves POST /sessions. An empty body means
// defaults.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Alpha float64 `json:"alpha"`
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &body); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	e, evicted, err := s.sessions.create(s.program, body.Alpha)
	s.mergeEvicted(evicted)
	if err != nil {
		if errors.Is(err, ErrSessionLimit) {
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error()})
			return
		}
		s.metrics.errors.Inc()
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.sessionsOpen.Inc()
	s.journal.Emit(blog.Event{Kind: obs.KindSessionCreated, Detail: e.id})
	writeJSON(w, http.StatusCreated, e.info())
}

// mergeEvicted performs the conservative merge for idle-evicted sessions
// in the background, once any straggler query has released them.
func (s *Server) mergeEvicted(evicted []*sessionEntry) {
	for _, old := range evicted {
		s.evictions.Add(1)
		go func(old *sessionEntry) {
			defer s.evictions.Done()
			s.sessions.waitIdle(old)
			old.s.End()
			s.metrics.sessionsEnded.Inc()
			s.journal.Emit(blog.Event{Kind: obs.KindSessionEvicted, Detail: old.id})
		}(old)
	}
}

// EndAllSessions drains the registry and merges every live session, then
// joins any in-flight idle-eviction merges — the daemon calls this on
// shutdown so learned weights are never lost before persisting. It
// returns the number of registry sessions merged.
func (s *Server) EndAllSessions() int {
	drained := s.sessions.drain()
	for _, e := range drained {
		s.sessions.waitIdle(e)
		e.s.End()
		s.metrics.sessionsEnded.Inc()
	}
	s.evictions.Wait()
	return len(drained)
}

// handleSessionList serves GET /sessions, sweeping idle sessions first
// so the listing and gauges stay honest on a create-quiet server.
func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.mergeEvicted(s.sessions.sweep())
	entries := s.sessions.list()
	out := make([]SessionInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.info())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSessionQuery serves POST /sessions/{id}/query: the query's weight
// learning goes to the session's local store, so a client's session
// behaves exactly as section 5 prescribes. The acquired reference keeps a
// concurrent DELETE from merging mid-query.
func (s *Server) handleSessionQuery(w http.ResponseWriter, r *http.Request) {
	e, err := s.sessions.acquire(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err.Error())
		return
	}
	defer s.sessions.release(e)
	s.runQuery(w, r, e)
}

// handleSessionEnd serves DELETE /sessions/{id}: the conservative
// end-of-session merge into the global table, after in-flight queries on
// the session finish (bounded by the per-query timeout).
func (s *Server) handleSessionEnd(w http.ResponseWriter, r *http.Request) {
	e, err := s.sessions.remove(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err.Error())
		return
	}
	s.sessions.waitIdle(e)
	adopted, averaged, kept, vetoed := e.s.End()
	qn, succ, fail := e.s.Counts()
	s.metrics.sessionsEnded.Inc()
	s.journal.Emit(blog.Event{
		Kind:   obs.KindSessionMerged,
		Detail: e.id,
		Count:  int64(adopted + averaged + kept),
	})
	writeJSON(w, http.StatusOK, SessionEndResponse{
		ID:               e.id,
		Adopted:          adopted,
		Averaged:         averaged,
		InfinitiesKept:   kept,
		InfinitiesVetoed: vetoed,
		Queries:          qn,
		Successes:        succ,
		Failures:         fail,
	})
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Healthz{
		Status:   "ok",
		UptimeS:  time.Since(s.start).Seconds(),
		InFlight: s.pool.InFlight(),
		Queued:   s.pool.Queued(),
	})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	workers, queueLen := s.pool.Capacity()
	var tt tableTotals
	var tot blog.TableTotals
	tt.active, tot = s.program.TableStats()
	tt.created, tt.answers, tt.hits, tt.reuse = tot.Created, tot.Answers, tot.Hits, tot.RederivationsAvoided
	tt.subsumed, tt.improved = tot.Subsumed, tot.Improved
	tt.dirtied, tt.revalidated = tot.Dirtied, tot.Revalidated
	acct := s.program.TableAccounting()
	tt.producing, tt.complete, tt.truncated, tt.dirty = acct.Producing, acct.Complete, acct.Truncated, acct.Dirty
	tt.retainedBytes = acct.RetainedBytes
	tt.poolFrames, tt.poolCompounds = blog.PoolHighWater()
	tt.journalEvents, tt.journalUnseen = s.journal.LastSeq(), s.journal.Overwritten()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(s.metrics.expose(s.pool.InFlight(), s.pool.Queued(), workers, queueLen, s.sessions.len(), tt)))
}

// logSlowQuery emits the structured slow-query record when the query's
// wall time reached the threshold: request ID, goal, strategy, elapsed,
// the rendered span tree, and the query's hottest predicates. Sampled to
// at most one record per second so a saturating slow workload cannot turn
// the log into the bottleneck (the slow_queries_total counter still
// counts every one).
func (s *Server) logSlowQuery(ctx context.Context, goal, strategy string, elapsed time.Duration, spans *blog.Span, prof *blog.Profiler) {
	if s.cfg.SlowQuery <= 0 || elapsed < s.cfg.SlowQuery {
		return
	}
	s.metrics.slowQueries.Inc()
	// Every slow query reaches the journal (cheap, bounded ring); only the
	// expensive structured log line below is sampled.
	s.journal.Emit(blog.Event{
		Kind:      obs.KindSlowQuery,
		RequestID: obs.RequestID(ctx),
		Millis:    float64(elapsed) / float64(time.Millisecond),
		Detail:    goal,
	})
	now := time.Now().UnixNano()
	last := s.slowLogged.Load()
	if now-last < int64(time.Second) || !s.slowLogged.CompareAndSwap(last, now) {
		return
	}
	attrs := []any{
		"request_id", obs.RequestID(ctx),
		"goal", goal,
		"strategy", strategy,
		"elapsed_ms", float64(elapsed) / float64(time.Millisecond),
	}
	if spans != nil {
		attrs = append(attrs, "spans", spans.Render())
	}
	if top := prof.Top(5); len(top) > 0 {
		hot := make([]string, 0, len(top))
		for _, p := range top {
			hot = append(hot, fmt.Sprintf("%s exp=%d nanos=%d", p.Pred, p.Expansions, p.Nanos))
		}
		attrs = append(attrs, "hot_preds", strings.Join(hot, "; "))
	}
	s.logger.Warn("slow query", attrs...)
}

// handleDebugQueries serves GET /debug/queries: the in-flight queries,
// oldest first, with goal, strategy, elapsed time and the engine-synced
// expansion counter.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	live := s.live.List()
	out := make([]LiveQuery, 0, len(live))
	for _, l := range live {
		out = append(out, LiveQuery{
			ID:        l.ID,
			Goal:      l.Goal,
			Strategy:  l.Strategy,
			ElapsedMs: elapsedMs(l.Start),
			Expanded:  l.Expanded.Load(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDebugKill serves DELETE /debug/queries/{id}: cancel an in-flight
// query through the inspector. The victim's own request answers 410; this
// request answers 200 with the kill acknowledged.
func (s *Server) handleDebugKill(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	l := s.live.Get(id)
	if l == nil {
		s.writeError(w, http.StatusNotFound, "no in-flight query "+id)
		return
	}
	l.Cancel(obs.ErrKilled)
	s.journal.Emit(blog.Event{Kind: obs.KindQueryKilled, RequestID: id, Detail: l.Goal})
	s.logger.Info("query killed via inspector", "request_id", id, "goal", l.Goal)
	writeJSON(w, http.StatusOK, KillResponse{ID: id, Killed: true})
}

// handleProfile serves GET /profile: the process-wide per-predicate
// profile, hottest first. ?n= bounds the row count (default 20).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	writeJSON(w, http.StatusOK, ProfileResponse{
		TotalNanos: s.prof.TotalNanos(),
		Preds:      s.prof.Top(n),
	})
}

// handleTables serves GET /tables: the live answer-table inventory ranked
// by retained bytes (largest first), with the space-wide gauges — the
// operator's what-is-holding-memory view of the table space.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	inv := s.program.TableInventory()
	acct := s.program.TableAccounting()
	resp := TablesResponse{
		Tables:        make([]TableEntry, 0, len(inv)),
		Producing:     acct.Producing,
		Complete:      acct.Complete,
		Truncated:     acct.Truncated,
		Dirty:         acct.Dirty,
		RetainedBytes: acct.RetainedBytes,
		Answers:       acct.Answers,
	}
	for _, ti := range inv {
		e := TableEntry{
			Pred:    ti.Pred,
			Call:    ti.Call,
			State:   ti.State,
			Answers: ti.Answers,
			Bytes:   ti.Bytes,
			Min:     ti.Min,
			Hits:    ti.Hits,
			Rounds:  ti.Rounds,

			Revalidations: ti.Revalidations,
			Deps:          ti.Deps,
		}
		if !ti.CreatedAt.IsZero() {
			e.AgeMs = float64(now.Sub(ti.CreatedAt)) / float64(time.Millisecond)
		}
		if !ti.LastHit.IsZero() {
			e.IdleMs = float64(now.Sub(ti.LastHit)) / float64(time.Millisecond)
		}
		resp.Tables = append(resp.Tables, e)
	}
	writeJSON(w, http.StatusOK, resp)
}

// eventsFollowPoll is the journal poll cadence of GET /events?follow=1.
const eventsFollowPoll = 250 * time.Millisecond

// handleEvents serves GET /events: the structured engine-event journal.
// The default is a drain — retained events after the ?after= cursor, as
// one JSON body with the cursor to pass back. ?follow=1 switches to an
// NDJSON stream that polls the journal and writes events as they arrive
// until the client disconnects. ?kind=a,b filters either mode to the
// named event kinds.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad after cursor: "+err.Error())
			return
		}
		after = parsed
	}
	var kinds map[string]bool
	if v := q.Get("kind"); v != "" {
		kinds = make(map[string]bool)
		for _, k := range strings.Split(v, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kinds[k] = true
			}
		}
	}
	keep := func(evs []blog.Event) []blog.Event {
		if kinds == nil {
			return evs
		}
		out := evs[:0]
		for _, ev := range evs {
			if kinds[ev.Kind] {
				out = append(out, ev)
			}
		}
		return out
	}
	if q.Get("follow") == "" {
		events := keep(s.journal.Events(after))
		if events == nil {
			events = []blog.Event{}
		}
		writeJSON(w, http.StatusOK, EventsResponse{
			Events:      events,
			LastSeq:     s.journal.LastSeq(),
			Overwritten: s.journal.Overwritten(),
		})
		return
	}
	// Follow mode: NDJSON, one event per line, with the same write-deadline
	// discipline as the query stream so a stalled reader cannot pin the
	// connection goroutine forever.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	cursor := after
	ticker := time.NewTicker(eventsFollowPoll)
	defer ticker.Stop()
	for {
		events := s.journal.Events(cursor)
		if last := s.journal.LastSeq(); last > cursor {
			cursor = last
		}
		for _, ev := range keep(events) {
			_ = rc.SetWriteDeadline(time.Now().Add(streamWriteGrace))
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// handleStats serves GET /stats: the loaded program's shape.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	clauses, facts, rules, preds, arcs := s.program.Stats()
	tableInfos := s.program.Tables()
	answers := uint64(0)
	for _, ti := range tableInfos {
		answers += uint64(ti.Answers)
	}
	tables := len(tableInfos)
	writeJSON(w, http.StatusOK, ProgramStats{
		Clauses:      clauses,
		Facts:        facts,
		Rules:        rules,
		Preds:        preds,
		Arcs:         arcs,
		LearnedArcs:  s.program.LearnedArcs(),
		Sessions:     s.sessions.len(),
		TabledPreds:  s.program.TabledPreds(),
		Tables:       tables,
		TableAnswers: answers,
	})
}
