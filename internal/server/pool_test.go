package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPoolAdmitsUpToWorkers(t *testing.T) {
	p := NewPool(2, 0)
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Queue length 0: the third caller must fail fast, not block.
	if err := p.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	p.Release()
	if err := p.Acquire(ctx); err != nil {
		t.Fatalf("slot was released but Acquire failed: %v", err)
	}
	p.Release()
	p.Release()
}

func TestPoolQueueBoundsWaiters(t *testing.T) {
	p := NewPool(1, 1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	waiterErr := make(chan error, 1)
	go func() { waiterErr <- p.Acquire(context.Background()) }()
	waitFor(t, func() bool { return p.Queued() == 1 })
	// The queue is now full: the next caller is rejected immediately.
	if err := p.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	p.Release()
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter should get the freed slot: %v", err)
	}
	p.Release()
}

func TestPoolWaiterLeavesOnCancel(t *testing.T) {
	p := NewPool(1, 4)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() { waiterErr <- p.Acquire(ctx) }()
	waitFor(t, func() bool { return p.Queued() == 1 })
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return p.Queued() == 0 })
	p.Release()
}

func TestPoolConcurrentChurn(t *testing.T) {
	p := NewPool(4, 8)
	var wg sync.WaitGroup
	var admitted, rejected sync.Map
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := p.Acquire(context.Background())
			if errors.Is(err, ErrSaturated) {
				rejected.Store(i, true)
				return
			}
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			admitted.Store(i, true)
			time.Sleep(time.Millisecond)
			p.Release()
		}(i)
	}
	wg.Wait()
	if p.InFlight() != 0 || p.Queued() != 0 {
		t.Errorf("pool not drained: in-flight %d, queued %d", p.InFlight(), p.Queued())
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
