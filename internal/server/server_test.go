package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"blog"
	"blog/internal/workload"
)

func mustProgram(t testing.TB, src string) *blog.Program {
	t.Helper()
	p, err := blog.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestServer(t testing.TB, src string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Program = mustProgram(t, src)
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t testing.TB, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func queryResp(t testing.TB, client *http.Client, url string, req QueryRequest) QueryResponse {
	t.Helper()
	resp, data := postJSON(t, client, url, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	var out QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad response body %q: %v", data, err)
	}
	return out
}

func solutionTexts(sols []Solution) []string {
	out := make([]string, 0, len(sols))
	for _, s := range sols {
		out = append(out, s.Text)
	}
	sort.Strings(out)
	return out
}

const loopSrc = "loop :- loop.\n"

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, workload.FamilyTree(3, 2), Config{})
	got := queryResp(t, ts.Client(), ts.URL+"/query", QueryRequest{Goal: "gf(p0,G)", Strategy: "dfs"})
	if len(got.Solutions) == 0 || !got.Exhausted {
		t.Fatalf("response = %+v", got)
	}
	if got.Strategy != "dfs" {
		t.Errorf("strategy echoed as %q", got.Strategy)
	}
	// Bindings carried per solution.
	if got.Solutions[0].Bindings["G"] == "" {
		t.Errorf("solution lacks G binding: %+v", got.Solutions[0])
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, workload.FamilyTree(2, 2), Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty goal", `{}`, http.StatusBadRequest},
		{"parse error", `{"goal":"gf(p0,"}`, http.StatusBadRequest},
		{"bad strategy", `{"goal":"gf(p0,G)","strategy":"dijkstra"}`, http.StatusBadRequest},
		{"unknown field", `{"goal":"gf(p0,G)","bogus":1}`, http.StatusBadRequest},
		{"not json", `gf(p0,G)`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := ts.Client().Post(ts.URL+"/query", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// AndParallel composed with Parallel is a solver-level rejection.
	resp, data := postJSON(t, ts.Client(), ts.URL+"/query",
		QueryRequest{Goal: "gf(p0,G)", Strategy: "parallel", AndParallel: true})
	if resp.StatusCode != http.StatusInternalServerError && resp.StatusCode != http.StatusBadRequest {
		t.Errorf("parallel+and_parallel: status %d (%s)", resp.StatusCode, data)
	}
}

func TestQueryTimeout(t *testing.T) {
	s, ts := newTestServer(t, loopSrc, Config{})
	resp, data := postJSON(t, ts.Client(), ts.URL+"/query", QueryRequest{
		Goal: "loop", Strategy: "dfs", TimeoutMs: 30,
		MaxDepth: 1 << 30, MaxExpansions: 1 << 50,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, data)
	}
	if s.metrics.timeouts.Load() == 0 {
		t.Error("timeout counter not bumped")
	}
	// The worker slot must be free again.
	waitFor(t, func() bool { return s.pool.InFlight() == 0 })
}

func TestStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, workload.FamilyTree(3, 2), Config{})
	raw, _ := json.Marshal(QueryRequest{Goal: "anc(p0,X)", Strategy: "bfs"})
	resp, err := ts.Client().Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var solutions int
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case ev.Solution != nil:
			if sawDone {
				t.Fatal("solution after terminal line")
			}
			solutions++
		case ev.Done:
			sawDone = true
			if !ev.Exhausted || ev.Error != "" {
				t.Errorf("terminal line = %+v", ev)
			}
			if ev.Solutions != solutions {
				t.Errorf("terminal count %d, streamed %d", ev.Solutions, solutions)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone || solutions == 0 {
		t.Fatalf("stream ended with %d solutions, done=%v", solutions, sawDone)
	}

	// Direct comparison with the one-shot endpoint.
	oneShot := queryResp(t, ts.Client(), ts.URL+"/query", QueryRequest{Goal: "anc(p0,X)", Strategy: "bfs"})
	if len(oneShot.Solutions) != solutions {
		t.Errorf("stream served %d solutions, one-shot %d", solutions, len(oneShot.Solutions))
	}

	// Parallel strategy cannot stream: clear 400, not a silent drop.
	raw, _ = json.Marshal(QueryRequest{Goal: "anc(p0,X)", Strategy: "parallel"})
	resp2, err := ts.Client().Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("parallel stream: status %d, want 400", resp2.StatusCode)
	}
}

// TestSaturationReturns429 drives the admission controller to its limit
// and verifies overload fails fast, then that cancelling the hogs
// releases their slots for new work.
func TestSaturationReturns429(t *testing.T) {
	s, ts := newTestServer(t, loopSrc+workload.FamilyTree(2, 2),
		Config{MaxConcurrent: 1, QueueLen: 1, DefaultTimeout: time.Minute})
	client := ts.Client()

	slow := QueryRequest{Goal: "loop", Strategy: "dfs", MaxDepth: 1 << 30, MaxExpansions: 1 << 50}
	raw, _ := json.Marshal(slow)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // one occupies the worker, one fills the queue
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(raw))
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	waitFor(t, func() bool { return s.pool.InFlight() == 1 && s.pool.Queued() == 1 })

	// Pool and queue are full: this request must be rejected immediately.
	start := time.Now()
	resp, data := postJSON(t, client, ts.URL+"/query", QueryRequest{Goal: "gf(p0,G)", Strategy: "dfs"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, data)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("saturated request took %v, want fast fail", elapsed)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 should carry Retry-After")
	}
	if s.metrics.rejected.Load() == 0 {
		t.Error("rejection counter not bumped")
	}

	// Abandoning the hogs must free the worker for real queries.
	cancel()
	wg.Wait()
	waitFor(t, func() bool { return s.pool.InFlight() == 0 && s.pool.Queued() == 0 })
	got := queryResp(t, client, ts.URL+"/query", QueryRequest{Goal: "gf(p0,G)", Strategy: "dfs"})
	if len(got.Solutions) == 0 {
		t.Error("post-saturation query found no solutions")
	}
}

// TestServerConcurrentLoad is the -race load test: many concurrent
// clients, mixed strategies, some with deadlines that cancel mid-search,
// against one shared Program — results must match direct blog.Query and
// no goroutine may leak.
func TestServerConcurrentLoad(t *testing.T) {
	src := workload.FamilyTree(4, 3) + loopSrc
	// Direct reference answers on an identical, separately loaded program.
	ref := mustProgram(t, src)
	want := map[string][]string{}
	for _, q := range []string{"anc(p0,X)", "gf(p0,G)"} {
		res, err := ref.Query(q, blog.DFS)
		if err != nil {
			t.Fatal(err)
		}
		var texts []string
		for _, s := range res.Solutions {
			texts = append(texts, s.String())
		}
		sort.Strings(texts)
		want[q] = texts
	}

	before := runtime.NumGoroutine()
	prog := mustProgram(t, src)
	s := New(Config{Program: prog, MaxConcurrent: 4, QueueLen: 64, DefaultTimeout: 30 * time.Second})
	ts := httptest.NewServer(s)
	client := ts.Client()

	type job struct {
		req  QueryRequest
		kind string // "exact", "timeout"
	}
	var jobs []job
	strategies := []string{"dfs", "bfs", "best", "parallel"}
	for i := 0; i < 40; i++ {
		strat := strategies[i%len(strategies)]
		goal := "anc(p0,X)"
		if i%2 == 1 {
			goal = "gf(p0,G)"
		}
		q := QueryRequest{Goal: goal, Strategy: strat}
		if strat == "parallel" {
			q.Workers = 2
		}
		if i%5 == 0 {
			q.AndParallel = strat != "parallel"
		}
		jobs = append(jobs, job{req: q, kind: "exact"})
	}
	for i := 0; i < 8; i++ { // deadline queries that cancel mid-search
		jobs = append(jobs, job{req: QueryRequest{
			Goal: "loop", Strategy: strategies[i%len(strategies)],
			TimeoutMs: 25, MaxDepth: 1 << 30, MaxExpansions: 1 << 50, Workers: 2,
		}, kind: "timeout"})
	}

	var wg sync.WaitGroup
	errCh := make(chan error, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			resp, data := postJSON(t, client, ts.URL+"/query", j.req)
			switch j.kind {
			case "exact":
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("%v: status %d (%s)", j.req, resp.StatusCode, data)
					return
				}
				var out QueryResponse
				if err := json.Unmarshal(data, &out); err != nil {
					errCh <- err
					return
				}
				got := solutionTexts(out.Solutions)
				if strings.Join(got, ";") != strings.Join(want[j.req.Goal], ";") {
					errCh <- fmt.Errorf("%v: solutions %v, want %v", j.req, got, want[j.req.Goal])
				}
			case "timeout":
				if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusTooManyRequests {
					errCh <- fmt.Errorf("loop query: status %d (%s), want 504 or 429", resp.StatusCode, data)
				}
			}
		}(j)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Every slot released, nothing queued.
	waitFor(t, func() bool { return s.pool.InFlight() == 0 && s.pool.Queued() == 0 })

	// Shut the server down and verify no goroutine outlives its query.
	ts.Close()
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionLearningAcrossQueries verifies the section-5 behavior as a
// server object: weight learning within one HTTP session is visible to
// that session's later queries, and ending the session merges into the
// global table.
func TestSessionLearningAcrossQueries(t *testing.T) {
	s, ts := newTestServer(t, workload.DeepFailure(6, 4), Config{})
	client := ts.Client()

	resp, data := postJSON(t, client, ts.URL+"/sessions", map[string]any{"alpha": 1.0})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d (%s)", resp.StatusCode, data)
	}
	var info SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Alpha != 1.0 {
		t.Fatalf("session info = %+v", info)
	}

	q := QueryRequest{Goal: "top(W)", Strategy: "best", Learn: true, MaxDepth: 64, MaxSolutions: 1}
	url := ts.URL + "/sessions/" + info.ID + "/query"
	first := queryResp(t, client, url, q)
	second := queryResp(t, client, url, q)
	if first.Session != info.ID || second.Session != info.ID {
		t.Errorf("session ids echoed as %q, %q", first.Session, second.Session)
	}
	if second.Expanded >= first.Expanded {
		t.Errorf("learning not observable: first expanded %d, second %d",
			first.Expanded, second.Expanded)
	}

	// Learning stayed session-local: the global table is untouched...
	if n := s.program.LearnedArcs(); n != 0 {
		t.Fatalf("global table gained %d arcs before session end", n)
	}
	// ...and a session-less query does not see the speedup.
	global := queryResp(t, client, ts.URL+"/query", q)
	if global.Expanded < first.Expanded {
		t.Errorf("global query expanded %d < first session query %d — leaked learning",
			global.Expanded, first.Expanded)
	}

	// GET /sessions reflects the query counters.
	resp, data = postJSON(t, client, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second session: status %d", resp.StatusCode)
	}
	listResp, err := client.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []SessionInfo
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(list) != 2 {
		t.Fatalf("sessions listed: %d, want 2", len(list))
	}
	if list[0].ID != info.ID || list[0].Queries != 2 || list[0].Successes != 2 {
		t.Errorf("session listing = %+v", list[0])
	}

	// End the session: conservative merge into the global table.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+info.ID, nil)
	delResp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(delResp.Body)
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("end session: status %d (%s)", delResp.StatusCode, data)
	}
	var end SessionEndResponse
	if err := json.Unmarshal(data, &end); err != nil {
		t.Fatal(err)
	}
	if end.Adopted+end.Averaged+end.InfinitiesKept == 0 {
		t.Errorf("merge wrote nothing: %+v", end)
	}
	if end.Queries != 2 || end.Successes != 2 {
		t.Errorf("end counters = %+v", end)
	}
	if s.program.LearnedArcs() == 0 {
		t.Error("global table empty after merge")
	}
	// The session is gone.
	resp, _ = postJSON(t, client, url, q)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("query on ended session: status %d, want 404", resp.StatusCode)
	}
}

func TestSessionLimit(t *testing.T) {
	_, ts := newTestServer(t, workload.FamilyTree(2, 2), Config{MaxSessions: 2})
	client := ts.Client()
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, client, ts.URL+"/sessions", map[string]any{})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("session %d: status %d (%s)", i, resp.StatusCode, data)
		}
	}
	resp, _ := postJSON(t, client, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-limit session: status %d, want 429", resp.StatusCode)
	}
}

func TestHealthzMetricsStats(t *testing.T) {
	s, ts := newTestServer(t, workload.FamilyTree(3, 2), Config{})
	client := ts.Client()
	queryResp(t, client, ts.URL+"/query", QueryRequest{Goal: "gf(p0,G)"})

	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Errorf("healthz = %+v", h)
	}

	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"blogd_queries_total 1",
		"blogd_rejected_total 0",
		"blogd_latency_ms{quantile=\"0.5\"}",
		"blogd_latency_ms{quantile=\"0.95\"}",
		"blogd_pool_workers",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	if s.metrics.solutions.Load() == 0 {
		t.Error("solution counter not bumped")
	}

	resp, err = client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ProgramStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Clauses == 0 || st.Preds == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestOccursCheckOverHTTP: the soundness switch works on every strategy
// through the wire, including parallel (the PR's solve-level fix).
func TestOccursCheckOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, "p :- eq(Y, f(Y)).\neq(X, X).\n", Config{})
	for _, strat := range []string{"dfs", "bfs", "best", "parallel"} {
		got := queryResp(t, ts.Client(), ts.URL+"/query",
			QueryRequest{Goal: "p", Strategy: strat, OccursCheck: true})
		if len(got.Solutions) != 0 {
			t.Errorf("%s: occurs check admitted %d solutions over HTTP", strat, len(got.Solutions))
		}
	}
	got := queryResp(t, ts.Client(), ts.URL+"/query", QueryRequest{Goal: "p", Strategy: "dfs"})
	if len(got.Solutions) != 1 {
		t.Errorf("unsound run: %d solutions, want 1", len(got.Solutions))
	}
}

// TestWorkersClamped: a hostile workers count cannot make one admitted
// request spawn unbounded goroutines.
func TestWorkersClamped(t *testing.T) {
	s, _ := newTestServer(t, workload.FamilyTree(2, 2), Config{MaxWorkers: 4})
	r := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"goal":"gf(p0,G)","strategy":"parallel","workers":1000000}`))
	q, _, _, _, ok := s.decodeQuery(httptest.NewRecorder(), r)
	if !ok {
		t.Fatal("decode failed")
	}
	if q.Workers != 4 {
		t.Errorf("workers = %d, want clamped to 4", q.Workers)
	}
	// Negative worker counts fall back to the engine default.
	r = httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"goal":"gf(p0,G)","strategy":"parallel","workers":-3}`))
	q, _, _, _, ok = s.decodeQuery(httptest.NewRecorder(), r)
	if !ok || q.Workers != 0 {
		t.Errorf("negative workers decoded to %d, want 0", q.Workers)
	}
}

// TestSessionIdleEviction: sessions abandoned without DELETE are evicted
// after SessionTTL — merging their weights — so the registry limit cannot
// be pinned forever.
func TestSessionIdleEviction(t *testing.T) {
	s, ts := newTestServer(t, workload.DeepFailure(4, 3),
		Config{MaxSessions: 1, SessionTTL: 50 * time.Millisecond})
	client := ts.Client()

	resp, data := postJSON(t, client, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d (%s)", resp.StatusCode, data)
	}
	var first SessionInfo
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	// Learn something so the eviction has a merge to perform.
	queryResp(t, client, ts.URL+"/sessions/"+first.ID+"/query",
		QueryRequest{Goal: "top(W)", Strategy: "best", Learn: true, MaxSolutions: 1, MaxDepth: 64})

	// At the limit and still fresh: creation is refused.
	resp, _ = postJSON(t, client, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fresh session evicted too early: status %d", resp.StatusCode)
	}

	time.Sleep(80 * time.Millisecond) // idle past the TTL
	resp, data = postJSON(t, client, ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after TTL: status %d (%s)", resp.StatusCode, data)
	}
	// The idle session is gone and its learning was merged.
	resp, _ = postJSON(t, client, ts.URL+"/sessions/"+first.ID+"/query",
		QueryRequest{Goal: "top(W)"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted session still answers: status %d", resp.StatusCode)
	}
	if s.program.LearnedArcs() == 0 {
		t.Error("eviction dropped the session's learning instead of merging")
	}
	if s.metrics.sessionsEnded.Load() != 1 {
		t.Errorf("sessionsEnded = %d, want 1", s.metrics.sessionsEnded.Load())
	}
}

// TestTimeoutMsOverflowClamps: a huge timeout_ms must clamp to
// MaxTimeout, not overflow time.Duration into an already-expired context.
func TestTimeoutMsOverflowClamps(t *testing.T) {
	_, ts := newTestServer(t, workload.FamilyTree(2, 2), Config{})
	got := queryResp(t, ts.Client(), ts.URL+"/query",
		QueryRequest{Goal: "gf(p0,G)", Strategy: "dfs", TimeoutMs: 1 << 62})
	if len(got.Solutions) == 0 || !got.Exhausted {
		t.Errorf("overflowing timeout_ms broke the query: %+v", got)
	}
}

// TestSessionEndWaitsForInFlightQuery: a DELETE racing an active query
// merges only after that query released the session, so its learning is
// not dropped.
func TestSessionEndWaitsForInFlightQuery(t *testing.T) {
	s, _ := newTestServer(t, workload.FamilyTree(2, 2), Config{})
	e, _, err := s.sessions.create(s.program, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.sessions.acquire(e.id); err != nil {
		t.Fatal(err)
	}
	removed, err := s.sessions.remove(e.id)
	if err != nil {
		t.Fatal(err)
	}
	idle := make(chan struct{})
	go func() {
		s.sessions.waitIdle(removed)
		close(idle)
	}()
	select {
	case <-idle:
		t.Fatal("waitIdle returned while a query still held the session")
	case <-time.After(50 * time.Millisecond):
	}
	s.sessions.release(removed)
	select {
	case <-idle:
	case <-time.After(2 * time.Second):
		t.Fatal("waitIdle did not return after release")
	}
}

// TestEndAllSessionsMergesOnShutdown: live sessions drain and merge, the
// path blogd takes before -weights-out.
func TestEndAllSessionsMergesOnShutdown(t *testing.T) {
	s, ts := newTestServer(t, workload.DeepFailure(4, 3), Config{})
	resp, data := postJSON(t, ts.Client(), ts.URL+"/sessions", map[string]any{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	var info SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	queryResp(t, ts.Client(), ts.URL+"/sessions/"+info.ID+"/query",
		QueryRequest{Goal: "top(W)", Strategy: "best", Learn: true, MaxSolutions: 1, MaxDepth: 64})
	if n := s.EndAllSessions(); n != 1 {
		t.Fatalf("EndAllSessions merged %d, want 1", n)
	}
	if s.program.LearnedArcs() == 0 {
		t.Error("shutdown drain dropped session learning")
	}
	if s.sessions.len() != 0 {
		t.Error("registry not drained")
	}
}

const tabledSrc = `
:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(a, b). edge(b, c). edge(c, a). edge(c, d).
`

// TestTabledQueries drives the tabled request flag end to end: a
// left-recursive program only the tabled engine can finish, per-response
// counters, the /metrics exposition and the /stats table inventory.
func TestTabledQueries(t *testing.T) {
	_, ts := newTestServer(t, tabledSrc, Config{})
	client := ts.Client()

	for _, strategy := range []string{"dfs", "bfs", "best", "parallel"} {
		got := queryResp(t, client, ts.URL+"/query", QueryRequest{Goal: "path(a,R)", Strategy: strategy, Tabled: true})
		if len(got.Solutions) != 4 || !got.Exhausted {
			t.Fatalf("%s: %d solutions (exhausted=%v), want complete 4", strategy, len(got.Solutions), got.Exhausted)
		}
	}
	// The first run created the table; later ones hit it.
	got := queryResp(t, client, ts.URL+"/query", QueryRequest{Goal: "path(a,R)", Tabled: true})
	if got.TableHits != 1 || got.RederivationsAvoided != 4 {
		t.Fatalf("counters = %+v, want one hit replaying 4 answers", got)
	}

	resp, data := postJSON(t, client, ts.URL+"/query", QueryRequest{Goal: "path(a,R)", Strategy: "dfs", Tabled: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	_ = data

	// The streaming path serves tabled queries too, reports the table
	// counters on its terminal line, and counts toward the metrics.
	sresp0, sdata := postJSON(t, client, ts.URL+"/query/stream", QueryRequest{Goal: "path(a,R)", Strategy: "dfs", Tabled: true})
	if sresp0.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp0.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(string(sdata)), "\n")
	var terminal StreamEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &terminal); err != nil {
		t.Fatalf("bad terminal line %q: %v", lines[len(lines)-1], err)
	}
	if !terminal.Done || !terminal.Exhausted || terminal.Solutions != 4 {
		t.Fatalf("terminal = %+v, want done, exhausted, 4 solutions", terminal)
	}
	if terminal.TableHits != 1 || terminal.RederivationsAvoided != 4 {
		t.Fatalf("terminal table counters = %+v, want one hit replaying 4 answers", terminal)
	}

	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"blogd_tabled_queries_total 7",
		"blogd_tables_created_total 1",
		"blogd_table_answers_total 4",
		"blogd_tables_active 1",
	} {
		if !strings.Contains(string(mbody), want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, mbody)
		}
	}

	sresp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats ProgramStats
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if len(stats.TabledPreds) != 1 || stats.TabledPreds[0] != "path/2" {
		t.Errorf("tabled_preds = %v", stats.TabledPreds)
	}
	if stats.Tables != 1 || stats.TableAnswers != 4 {
		t.Errorf("tables = %d answers = %d, want 1 and 4", stats.Tables, stats.TableAnswers)
	}

	// Without the flag the same goal is the depth-capped, incomplete run:
	// at depth 4 only the 1- and 2-edge paths have proofs.
	untabled := queryResp(t, client, ts.URL+"/query", QueryRequest{Goal: "path(a,R)", Strategy: "dfs", MaxDepth: 4})
	if len(untabled.Solutions) >= 4 {
		t.Errorf("untabled depth-capped run found %d solutions, want an incomplete set", len(untabled.Solutions))
	}
}

const minTabledSrc = `
:- table shortest/3 min(3).
shortest(X,Z,C) :- shortest(X,Y,A), edge(Y,Z,B), C is A + B.
shortest(X,Y,C) :- edge(X,Y,C).
edge(a,b,4).
edge(a,c,1).
edge(c,b,1).
edge(b,a,1).
`

// TestSubsumedTabledQueries drives the min(N) answer-subsumption mode end
// to end over HTTP: minimal costs per reachable pair under every
// strategy, the answers_subsumed / answers_improved response counters,
// the stream terminal line, the /metrics exposition and the annotated
// /stats directive listing.
func TestSubsumedTabledQueries(t *testing.T) {
	_, ts := newTestServer(t, minTabledSrc, Config{})
	client := ts.Client()

	want := []string{"Y = a, C = 3", "Y = b, C = 2", "Y = c, C = 1"}
	first := true
	for _, strategy := range []string{"dfs", "bfs", "best", "parallel"} {
		got := queryResp(t, client, ts.URL+"/query", QueryRequest{Goal: "shortest(a,Y,C)", Strategy: strategy, Tabled: true})
		if fmt.Sprint(solutionTexts(got.Solutions)) != fmt.Sprint(want) || !got.Exhausted {
			t.Fatalf("%s: solutions = %v (exhausted=%v), want the minima %v", strategy, solutionTexts(got.Solutions), got.Exhausted, want)
		}
		if first && (got.AnswersSubsumed == 0 || got.AnswersImproved == 0) {
			t.Fatalf("%s: producing response = %+v, want answers_subsumed and answers_improved > 0", strategy, got)
		}
		first = false
	}

	// The streaming terminal line carries the subsumption counters; a
	// fresh server so the stream is the producing run.
	_, ts2 := newTestServer(t, minTabledSrc, Config{})
	sresp, sdata := postJSON(t, ts2.Client(), ts2.URL+"/query/stream", QueryRequest{Goal: "shortest(a,Y,C)", Strategy: "dfs", Tabled: true})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(string(sdata)), "\n")
	var terminal StreamEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &terminal); err != nil {
		t.Fatalf("bad terminal line %q: %v", lines[len(lines)-1], err)
	}
	if !terminal.Done || terminal.Solutions != 3 {
		t.Fatalf("terminal = %+v, want done with 3 minima", terminal)
	}
	if terminal.AnswersSubsumed == 0 || terminal.AnswersImproved == 0 {
		t.Fatalf("terminal = %+v, want subsumption counters on the producing stream", terminal)
	}

	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, counter := range []string{"blogd_table_answers_subsumed_total", "blogd_table_answers_improved_total"} {
		found := false
		for _, line := range strings.Split(string(mbody), "\n") {
			var v int
			if n, _ := fmt.Sscanf(line, counter+" %d", &v); n == 1 && v > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("metrics missing a positive %s:\n%s", counter, mbody)
		}
	}

	statsResp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats ProgramStats
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if len(stats.TabledPreds) != 1 || stats.TabledPreds[0] != "shortest/3 min(3)" {
		t.Errorf("tabled_preds = %v, want the annotated min directive", stats.TabledPreds)
	}
}
