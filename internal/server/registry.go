package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sort"
	"sync"
	"time"

	"blog"
)

// ErrSessionLimit is returned when the registry is full.
var ErrSessionLimit = errors.New("server: session limit reached")

// ErrNoSession is returned for an unknown or already-ended session id.
var ErrNoSession = errors.New("server: no such session")

// sessionEntry is one live learning session owned by the server.
type sessionEntry struct {
	id      string
	alpha   float64
	created time.Time
	s       *blog.Session

	// lastUsed and refs are guarded by the registry mutex. refs counts
	// in-flight queries, so an End (explicit, eviction, or shutdown)
	// merges only after every query using the session has finished —
	// no learned chain is silently dropped by a concurrent DELETE.
	lastUsed time.Time
	refs     int
}

// registry owns the server's live sessions: the section-5 "succession of
// queries with no permanent updating" becomes a first-class server object
// that HTTP clients create, query within, and end. Sessions idle past ttl
// are evicted lazily (their weights still merge), so abandoned clients
// cannot pin the registry at its limit forever.
type registry struct {
	limit int
	ttl   time.Duration // <= 0 disables idle eviction

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when an entry's refs drops to 0
	sessions map[string]*sessionEntry
}

func newRegistry(limit int, ttl time.Duration) *registry {
	if limit <= 0 {
		limit = 1024
	}
	r := &registry{limit: limit, ttl: ttl, sessions: make(map[string]*sessionEntry)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// create opens a session on p, evicting idle sessions first. alpha <= 0
// takes the blog default (0.5). The caller merges the evicted sessions
// (waitIdle then Session.End).
func (r *registry) create(p *blog.Program, alpha float64) (*sessionEntry, []*sessionEntry, error) {
	if alpha <= 0 {
		alpha = 0.5
	}
	var raw [8]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, nil, err
	}
	now := time.Now()
	e := &sessionEntry{
		id:       "s-" + hex.EncodeToString(raw[:]),
		alpha:    alpha,
		created:  now,
		lastUsed: now,
		s:        p.NewSession(alpha),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	evicted := r.evictIdleLocked(now)
	if len(r.sessions) >= r.limit {
		return nil, evicted, ErrSessionLimit
	}
	r.sessions[e.id] = e
	return e, evicted, nil
}

// sweep evicts idle sessions outside of create (list handlers, gauges).
// The caller merges the returned entries.
func (r *registry) sweep() []*sessionEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictIdleLocked(time.Now())
}

// evictIdleLocked removes sessions idle past ttl; caller holds r.mu and
// must End the returned entries after waitIdle. Entries with queries in
// flight are in use by definition and stay.
func (r *registry) evictIdleLocked(now time.Time) []*sessionEntry {
	if r.ttl <= 0 {
		return nil
	}
	var evicted []*sessionEntry
	for id, e := range r.sessions {
		if e.refs == 0 && now.Sub(e.lastUsed) > r.ttl {
			delete(r.sessions, id)
			evicted = append(evicted, e)
		}
	}
	return evicted
}

// acquire returns the live session with the given id, refreshing its idle
// clock and holding a query reference. Every nil-error return must be
// paired with one release.
func (r *registry) acquire(id string) (*sessionEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.sessions[id]
	if !ok {
		return nil, ErrNoSession
	}
	e.lastUsed = time.Now()
	e.refs++
	return e, nil
}

// release drops a query reference taken by acquire.
func (r *registry) release(e *sessionEntry) {
	r.mu.Lock()
	e.lastUsed = time.Now()
	e.refs--
	if e.refs == 0 {
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// waitIdle blocks until no query holds a reference to e. Bounded in
// practice by the per-query timeout.
func (r *registry) waitIdle(e *sessionEntry) {
	r.mu.Lock()
	for e.refs > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// remove takes the session out of the registry; the caller then calls
// waitIdle and merges it with Session.End.
func (r *registry) remove(id string) (*sessionEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.sessions[id]
	if !ok {
		return nil, ErrNoSession
	}
	delete(r.sessions, id)
	return e, nil
}

// drain removes every session (shutdown); the caller waits and merges.
func (r *registry) drain() []*sessionEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*sessionEntry, 0, len(r.sessions))
	for id, e := range r.sessions {
		delete(r.sessions, id)
		out = append(out, e)
	}
	return out
}

// list snapshots the live sessions, oldest first.
func (r *registry) list() []*sessionEntry {
	r.mu.Lock()
	out := make([]*sessionEntry, 0, len(r.sessions))
	for _, e := range r.sessions {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].created.Equal(out[j].created) {
			return out[i].id < out[j].id
		}
		return out[i].created.Before(out[j].created)
	})
	return out
}

// len returns the number of live sessions.
func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// info renders the wire description of a session.
func (e *sessionEntry) info() SessionInfo {
	q, s, f := e.s.Counts()
	return SessionInfo{
		ID:           e.id,
		Alpha:        e.alpha,
		CreatedAt:    e.created.UTC().Format(time.RFC3339),
		Queries:      q,
		Successes:    s,
		Failures:     f,
		LocalLearned: e.s.LocalLearned(),
	}
}
