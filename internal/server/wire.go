// Package server exposes a loaded blog.Program as a concurrent query
// service: HTTP/JSON endpoints for one-shot and streaming (NDJSON)
// queries, first-class learning sessions, and operational endpoints
// (/healthz, /metrics). One shared Program serves every request; a
// bounded worker pool with a bounded admission queue keeps overload
// behavior flat (fast 429s) and per-request deadlines are wired to
// context cancellation, so an abandoned client releases its worker slot
// at the next expansion step.
package server

import (
	"time"

	"blog"
	"blog/internal/obs"
)

// QueryRequest is the JSON body of POST /query, POST /query/stream and
// POST /sessions/{id}/query. Zero fields take the server's defaults.
type QueryRequest struct {
	// Goal is the query text, e.g. "gf(sam, G)".
	Goal string `json:"goal"`
	// Strategy is dfs, bfs, best (or best-first) or parallel; empty means
	// the server default (best-first).
	Strategy string `json:"strategy,omitempty"`

	// MaxSolutions caps answers; 0 means the server's solution cap.
	MaxSolutions int `json:"max_solutions,omitempty"`
	// MaxExpansions bounds search work; 0 uses the engine default.
	MaxExpansions uint64 `json:"max_expansions,omitempty"`
	// MaxDepth bounds chain length in arcs; 0 uses the program's A.
	MaxDepth int `json:"max_depth,omitempty"`
	// TimeoutMs bounds wall time; 0 uses the server default and values
	// above the server maximum are clamped.
	TimeoutMs int `json:"timeout_ms,omitempty"`

	// Learn applies the section-5 weight rules (to the session store on
	// the session endpoints, else the global table).
	Learn bool `json:"learn,omitempty"`
	// Prune enables branch-and-bound pruning; PruneSlack widens it.
	Prune      bool    `json:"prune,omitempty"`
	PruneSlack float64 `json:"prune_slack,omitempty"`
	// OccursCheck enables sound unification (honored by every strategy).
	OccursCheck bool `json:"occurs_check,omitempty"`
	// AndParallel evaluates independent goal groups concurrently
	// (sequential strategies only).
	AndParallel bool `json:"and_parallel,omitempty"`
	// Workers sets the OR-parallel worker count (parallel strategy only).
	Workers int `json:"workers,omitempty"`
	// Tabled resolves predicates declared `:- table name/arity` in the
	// loaded program through the shared answer-table space (memoized,
	// complete answer sets; terminates left-recursive definitions).
	// Predicates declared with the `min(N)` mode additionally apply answer
	// subsumption: their tables keep only the least-cost answer per
	// binding of the non-cost arguments (weighted shortest-path queries
	// terminate with the true minimum). Programs without table
	// declarations run unchanged.
	Tabled bool `json:"tabled,omitempty"`
	// Compiled selects the resolution engine: absent or true runs the
	// compiled bytecode VM (unless the server forces the tree-walker);
	// false forces the tree-walking oracle engine for this query.
	Compiled *bool `json:"compiled,omitempty"`
	// Trace returns the query's span tree (parse, compile, search, table
	// fixpoints) in the response's trace field — one-shot responses and
	// the terminal line of streams.
	Trace bool `json:"trace,omitempty"`
}

// options translates the request into blog query options.
func (q *QueryRequest) options(maxSolutions int) []blog.Option {
	opts := []blog.Option{blog.MaxSolutions(maxSolutions)}
	if q.MaxExpansions > 0 {
		opts = append(opts, blog.MaxExpansions(q.MaxExpansions))
	}
	if q.MaxDepth > 0 {
		opts = append(opts, blog.MaxDepth(q.MaxDepth))
	}
	if q.Learn {
		opts = append(opts, blog.Learn())
	}
	if q.Prune {
		opts = append(opts, blog.Prune())
	}
	if q.PruneSlack > 0 {
		opts = append(opts, blog.PruneSlack(q.PruneSlack))
	}
	if q.OccursCheck {
		opts = append(opts, blog.OccursCheck())
	}
	if q.AndParallel {
		opts = append(opts, blog.AndParallel())
	}
	if q.Workers > 0 {
		opts = append(opts, blog.Workers(q.Workers))
	}
	if q.Tabled {
		opts = append(opts, blog.Tabled())
	}
	if q.Compiled != nil && !*q.Compiled {
		opts = append(opts, blog.Compiled(false))
	}
	return opts
}

// Solution is one answer on the wire.
type Solution struct {
	// Bindings maps query variable names to rendered terms.
	Bindings map[string]string `json:"bindings,omitempty"`
	// Text is the "X = v, Y = w" rendering ("true" for ground queries).
	Text  string  `json:"text"`
	Bound float64 `json:"bound"`
	Depth int     `json:"depth"`
}

func wireSolution(s blog.Solution) Solution {
	return Solution{Bindings: s.Bindings, Text: s.String(), Bound: s.Bound, Depth: s.Depth}
}

// QueryResponse is the JSON body of a successful one-shot query.
type QueryResponse struct {
	Solutions []Solution `json:"solutions"`
	// Exhausted reports the engine searched the whole tree.
	Exhausted bool    `json:"exhausted"`
	Expanded  uint64  `json:"expanded"`
	Generated uint64  `json:"generated"`
	Failures  uint64  `json:"failures"`
	Strategy  string  `json:"strategy"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// RequestID is the query's q-%06d inspector ID, the correlation key
	// across the slow-query log, /debug/queries and /events.
	RequestID string `json:"request_id,omitempty"`
	// VMDispatched counts goals this query resolved on the compiled
	// bytecode engine (absent when the tree-walking oracle ran).
	VMDispatched uint64 `json:"vm_dispatched,omitempty"`
	// Session echoes the session id on session-scoped queries.
	Session string `json:"session,omitempty"`
	// Tabled-resolution counters, present on tabled:true queries: tables
	// materialized, answers derived, calls served from complete tables,
	// answers replayed from them (re-derivations avoided), and — rare —
	// consumptions of depth-truncated tables, which carry the same
	// completeness caveat as untabled depth cutoffs. The subsumption pair
	// (min(N) tables only) counts derivations dominated by a cheaper
	// memoized answer and memoized answers replaced by a cheaper one.
	TablesCreated        uint64 `json:"tables_created,omitempty"`
	TableAnswers         uint64 `json:"table_answers,omitempty"`
	TableHits            uint64 `json:"table_hits,omitempty"`
	RederivationsAvoided uint64 `json:"rederivations_avoided,omitempty"`
	TablesTruncated      uint64 `json:"tables_truncated,omitempty"`
	AnswersSubsumed      uint64 `json:"answers_subsumed,omitempty"`
	AnswersImproved      uint64 `json:"answers_improved,omitempty"`
	// Trace is the query's span tree, present on "trace":true requests.
	Trace *obs.Span `json:"trace,omitempty"`
}

// StreamEvent is one NDJSON line of POST /query/stream: solution lines
// first, then exactly one terminal line with Done set (carrying the final
// counters, or Error when the stream aborted).
type StreamEvent struct {
	Solution  *Solution `json:"solution,omitempty"`
	Done      bool      `json:"done,omitempty"`
	Exhausted bool      `json:"exhausted,omitempty"`
	Solutions int       `json:"solutions,omitempty"`
	Expanded  uint64    `json:"expanded,omitempty"`
	// RequestID is the query's q-%06d inspector ID (terminal line).
	RequestID string `json:"request_id,omitempty"`
	// VMDispatched counts compiled-path goal resolutions (terminal line).
	VMDispatched uint64 `json:"vm_dispatched,omitempty"`
	Error        string `json:"error,omitempty"`
	// Tabled-resolution counters on the terminal line of tabled:true
	// streams; see QueryResponse.
	TablesCreated        uint64 `json:"tables_created,omitempty"`
	TableAnswers         uint64 `json:"table_answers,omitempty"`
	TableHits            uint64 `json:"table_hits,omitempty"`
	RederivationsAvoided uint64 `json:"rederivations_avoided,omitempty"`
	TablesTruncated      uint64 `json:"tables_truncated,omitempty"`
	AnswersSubsumed      uint64 `json:"answers_subsumed,omitempty"`
	AnswersImproved      uint64 `json:"answers_improved,omitempty"`
	// Trace is the stream's span tree on the terminal line of
	// "trace":true requests.
	Trace *obs.Span `json:"trace,omitempty"`
}

// LiveQuery is one in-flight query in the GET /debug/queries listing.
type LiveQuery struct {
	ID        string  `json:"id"`
	Goal      string  `json:"goal"`
	Strategy  string  `json:"strategy"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Expanded is the query's expansion counter, synced by the engine
	// every 1024 expansions (0 for a query still starting up).
	Expanded uint64 `json:"expanded"`
}

// KillResponse is the body of DELETE /debug/queries/{id}: the victim's
// own request answers with 410 Gone.
type KillResponse struct {
	ID     string `json:"id"`
	Killed bool   `json:"killed"`
}

// ProfileResponse is the GET /profile body: the process-wide per-predicate
// profile, hottest (most attributed wall time) first.
type ProfileResponse struct {
	// TotalNanos is the wall time attributed across all predicates.
	TotalNanos uint64 `json:"total_nanos"`
	// Preds is the top-N rows (the n query parameter, default 20).
	Preds []obs.PredProfile `json:"preds"`
}

// SessionInfo describes one live session (POST /sessions response and
// GET /sessions elements).
type SessionInfo struct {
	ID           string  `json:"id"`
	Alpha        float64 `json:"alpha"`
	CreatedAt    string  `json:"created_at"`
	Queries      int     `json:"queries"`
	Successes    int     `json:"successes"`
	Failures     int     `json:"failures"`
	LocalLearned int     `json:"local_learned"`
}

// SessionEndResponse reports the conservative merge performed by
// DELETE /sessions/{id} (section 5's end-of-session global update).
type SessionEndResponse struct {
	ID               string `json:"id"`
	Adopted          int    `json:"adopted"`
	Averaged         int    `json:"averaged"`
	InfinitiesKept   int    `json:"infinities_kept"`
	InfinitiesVetoed int    `json:"infinities_vetoed"`
	Queries          int    `json:"queries"`
	Successes        int    `json:"successes"`
	Failures         int    `json:"failures"`
}

// ErrorResponse is the JSON body of every non-2xx response. RequestID is
// set when the failing query had an inspector ID — in particular the 410
// a killed query answers with, so the victim can correlate its death with
// the DELETE /debug/queries/{id} that caused it.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// TableEntry is one live answer table in the GET /tables inventory.
type TableEntry struct {
	Pred string `json:"pred"`
	Call string `json:"call"`
	// State is producing, complete, truncated (complete but depth-capped)
	// or dirty (complete but a dependency was invalidated; re-derives on
	// next touch).
	State string `json:"state"`
	// Answers and Bytes size the memoized answer set (bytes approximate).
	Answers int   `json:"answers"`
	Bytes   int64 `json:"bytes"`
	// Min is the cost-argument position of a min(N) table, 0 otherwise.
	Min int `json:"min,omitempty"`
	// Hits counts calls served from the complete table.
	Hits uint64 `json:"hits"`
	// Rounds is the fixpoint round count of the table's productions.
	Rounds int `json:"rounds"`
	// Revalidations counts re-derivations of this call pattern after
	// dependency invalidations (asserts on predicates it was derived from).
	Revalidations int `json:"revalidations,omitempty"`
	// Deps lists the predicate indicators the table's fixpoint consumed —
	// the dependency edges incremental maintenance tracks.
	Deps []string `json:"deps,omitempty"`
	// AgeMs is the time since creation; IdleMs since the last hit (absent
	// when never hit).
	AgeMs  float64 `json:"age_ms"`
	IdleMs float64 `json:"idle_ms,omitempty"`
}

// TablesResponse is the GET /tables body: the live tables ranked by
// retained bytes (largest first) plus the space-wide gauges.
type TablesResponse struct {
	Tables        []TableEntry `json:"tables"`
	Producing     int          `json:"producing"`
	Complete      int          `json:"complete"`
	Truncated     int          `json:"truncated"`
	Dirty         int          `json:"dirty"`
	RetainedBytes int64        `json:"retained_bytes"`
	Answers       int64        `json:"answers"`
}

// EventsResponse is the GET /events drain body: the retained journal
// events after the requested cursor, oldest first.
type EventsResponse struct {
	Events []blog.Event `json:"events"`
	// LastSeq is the newest sequence number assigned; pass it back as
	// ?after= to poll incrementally.
	LastSeq uint64 `json:"last_seq"`
	// Overwritten counts events lost to ring lap-around since start.
	Overwritten uint64 `json:"overwritten,omitempty"`
}

// Healthz is the GET /healthz body.
type Healthz struct {
	Status   string  `json:"status"`
	UptimeS  float64 `json:"uptime_s"`
	InFlight int     `json:"in_flight"`
	Queued   int     `json:"queued"`
}

// ProgramStats is the GET /stats body.
type ProgramStats struct {
	Clauses     int `json:"clauses"`
	Facts       int `json:"facts"`
	Rules       int `json:"rules"`
	Preds       int `json:"preds"`
	Arcs        int `json:"arcs"`
	LearnedArcs int `json:"learned_arcs"`
	Sessions    int `json:"sessions"`
	// TabledPreds lists the predicates declared `:- table name/arity`,
	// with subsumption modes rendered inline (e.g. "shortest/3 min(3)");
	// Tables and TableAnswers describe the live answer-table space
	// (cumulative counters are on /metrics).
	TabledPreds  []string `json:"tabled_preds,omitempty"`
	Tables       int      `json:"tables"`
	TableAnswers uint64   `json:"table_answers"`
}

func elapsedMs(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}
