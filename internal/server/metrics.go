package server

import (
	"fmt"
	"strings"
	"sync"

	"blog/internal/metrics"
)

// serverMetrics aggregates the service's operational counters. Counters
// are atomic (internal/metrics.Counter); the latency distribution is a
// log-bucketed histogram (internal/metrics.Histogram) covering 100µs to
// 60s, from which /metrics derives p50/p95 by interpolation and exposes
// the full Prometheus bucket series.
type serverMetrics struct {
	queries       metrics.Counter // queries admitted to a worker slot
	solutions     metrics.Counter // solutions returned (one-shot bodies)
	streamed      metrics.Counter // solutions streamed over NDJSON
	rejected      metrics.Counter // 429s from the admission controller
	badRequests   metrics.Counter // 4xx validation failures
	timeouts      metrics.Counter // queries ended by their deadline
	cancelled     metrics.Counter // queries ended by client disconnect
	budgetStops   metrics.Counter // queries ended by their expansion budget
	errors        metrics.Counter // engine/internal failures (5xx)
	killed        metrics.Counter // queries cancelled via the live inspector
	slowQueries   metrics.Counter // queries over the slow-query threshold
	sessionsOpen  metrics.Counter // sessions created
	sessionsEnded metrics.Counter // sessions merged and closed

	// tabledQueries counts queries (one-shot and streaming) run with
	// tabled:true; the cumulative table counters themselves come from the
	// program's table space at exposition time, so the streaming path and
	// session queries are covered without duplicating counter state.
	tabledQueries metrics.Counter

	// vmDispatch sums goals resolved on the compiled bytecode engine
	// across all queries, so compiled-path coverage is visible in
	// production (zero means every query ran the tree-walking oracle).
	vmDispatch metrics.Counter

	// latency buckets every completed query's wall time. Observation is
	// lock-free; the summary (for the mean) keeps the mutex.
	latency *metrics.Histogram

	mu      sync.Mutex
	summary metrics.Summary
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{latency: metrics.NewLatencyHistogram()}
}

// observeLatency records one completed query's wall time in ms.
func (m *serverMetrics) observeLatency(ms float64) {
	m.latency.Observe(ms / 1e3)
	m.mu.Lock()
	m.summary.Observe(ms)
	m.mu.Unlock()
}

// latencySnapshot returns (mean, p50, p95, n); the quantiles are
// interpolated from the histogram over all observations since start (the
// old implementation kept only a 2048-sample ring).
func (m *serverMetrics) latencySnapshot() (mean, p50, p95 float64, n int) {
	m.mu.Lock()
	mean, n = m.summary.Mean(), m.summary.N()
	m.mu.Unlock()
	return mean, m.latency.Quantile(0.5) * 1e3, m.latency.Quantile(0.95) * 1e3, n
}

// tableTotals carries the program table space's cumulative counters and
// live resource gauges into the exposition.
type tableTotals struct {
	active                        int
	created, answers, hits, reuse uint64
	subsumed, improved            uint64

	// dirtied/revalidated are the incremental-maintenance counters:
	// dirty marks placed by dependency invalidation and dirty tables
	// re-derived to completion.
	dirtied, revalidated uint64

	// Live gauges (point-in-time; drop on invalidation): tables by
	// lifecycle state and the retained answer bytes.
	producing, complete, truncated, dirty int
	retainedBytes                         int64
	// Process pool high-water marks and journal counters.
	poolFrames, poolCompounds    int64
	journalEvents, journalUnseen uint64
}

// expose renders the Prometheus-style text exposition of GET /metrics.
func (m *serverMetrics) expose(inFlight, queued, workers, queueLen, sessions int, tt tableTotals) string {
	mean, p50, p95, n := m.latencySnapshot()
	var b strings.Builder
	line := func(name string, v any) { fmt.Fprintf(&b, "blogd_%s %v\n", name, v) }
	line("queries_total", m.queries.Load())
	line("solutions_total", m.solutions.Load())
	line("stream_solutions_total", m.streamed.Load())
	line("rejected_total", m.rejected.Load())
	line("bad_requests_total", m.badRequests.Load())
	line("timeouts_total", m.timeouts.Load())
	line("cancelled_total", m.cancelled.Load())
	line("budget_stops_total", m.budgetStops.Load())
	line("errors_total", m.errors.Load())
	line("killed_total", m.killed.Load())
	line("slow_queries_total", m.slowQueries.Load())
	line("sessions_created_total", m.sessionsOpen.Load())
	line("sessions_ended_total", m.sessionsEnded.Load())
	line("sessions_active", sessions)
	line("tabled_queries_total", m.tabledQueries.Load())
	line("vm_dispatch_total", m.vmDispatch.Load())
	line("tables_created_total", tt.created)
	line("table_answers_total", tt.answers)
	line("table_hits_total", tt.hits)
	line("rederivations_avoided_total", tt.reuse)
	line("table_answers_subsumed_total", tt.subsumed)
	line("table_answers_improved_total", tt.improved)
	line("tables_dirtied_total", tt.dirtied)
	line("tables_revalidated_total", tt.revalidated)
	line("tables_active", tt.active)
	line("table_retained_bytes", tt.retainedBytes)
	fmt.Fprintf(&b, "blogd_tables_by_state{state=\"producing\"} %d\n", tt.producing)
	fmt.Fprintf(&b, "blogd_tables_by_state{state=\"complete\"} %d\n", tt.complete)
	fmt.Fprintf(&b, "blogd_tables_by_state{state=\"truncated\"} %d\n", tt.truncated)
	fmt.Fprintf(&b, "blogd_tables_by_state{state=\"dirty\"} %d\n", tt.dirty)
	line("pool_frames_highwater", tt.poolFrames)
	line("pool_compounds_highwater", tt.poolCompounds)
	line("journal_events_total", tt.journalEvents)
	line("journal_events_overwritten_total", tt.journalUnseen)
	line("in_flight", inFlight)
	line("queue_depth", queued)
	line("pool_workers", workers)
	line("pool_queue_capacity", queueLen)
	// The full latency distribution, Prometheus histogram conventions:
	// cumulative buckets, le="+Inf" equal to _count, _sum in seconds.
	bounds, counts := m.latency.Buckets()
	for i, ub := range bounds {
		fmt.Fprintf(&b, "blogd_query_duration_seconds_bucket{le=\"%g\"} %d\n", ub, counts[i])
	}
	fmt.Fprintf(&b, "blogd_query_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.latency.Count())
	fmt.Fprintf(&b, "blogd_query_duration_seconds_sum %.6f\n", m.latency.Sum())
	fmt.Fprintf(&b, "blogd_query_duration_seconds_count %d\n", m.latency.Count())
	// The legacy ms summary lines, kept for existing dashboards.
	line("latency_ms_count", n)
	fmt.Fprintf(&b, "blogd_latency_ms_mean %.3f\n", mean)
	fmt.Fprintf(&b, "blogd_latency_ms{quantile=\"0.5\"} %.3f\n", p50)
	fmt.Fprintf(&b, "blogd_latency_ms{quantile=\"0.95\"} %.3f\n", p95)
	return b.String()
}
