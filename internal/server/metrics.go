package server

import (
	"fmt"
	"strings"
	"sync"

	"blog/internal/metrics"
)

// serverMetrics aggregates the service's operational counters. Counters
// are atomic (internal/metrics.Counter); the latency distribution keeps a
// bounded ring of recent query latencies plus a running Summary, from
// which /metrics derives mean and p50/p95.
type serverMetrics struct {
	queries       metrics.Counter // queries admitted to a worker slot
	solutions     metrics.Counter // solutions returned (one-shot bodies)
	streamed      metrics.Counter // solutions streamed over NDJSON
	rejected      metrics.Counter // 429s from the admission controller
	badRequests   metrics.Counter // 4xx validation failures
	timeouts      metrics.Counter // queries ended by their deadline
	cancelled     metrics.Counter // queries ended by client disconnect
	budgetStops   metrics.Counter // queries ended by their expansion budget
	errors        metrics.Counter // engine/internal failures (5xx)
	sessionsOpen  metrics.Counter // sessions created
	sessionsEnded metrics.Counter // sessions merged and closed

	// tabledQueries counts queries (one-shot and streaming) run with
	// tabled:true; the cumulative table counters themselves come from the
	// program's table space at exposition time, so the streaming path and
	// session queries are covered without duplicating counter state.
	tabledQueries metrics.Counter

	// vmDispatch sums goals resolved on the compiled bytecode engine
	// across all queries, so compiled-path coverage is visible in
	// production (zero means every query ran the tree-walking oracle).
	vmDispatch metrics.Counter

	mu      sync.Mutex
	summary metrics.Summary
	ring    []float64 // last ringCap latencies, ms
	next    int
	full    bool
}

const ringCap = 2048

func newServerMetrics() *serverMetrics {
	return &serverMetrics{ring: make([]float64, ringCap)}
}

// observeLatency records one completed query's wall time in ms.
func (m *serverMetrics) observeLatency(ms float64) {
	m.mu.Lock()
	m.summary.Observe(ms)
	m.ring[m.next] = ms
	m.next++
	if m.next == len(m.ring) {
		m.next, m.full = 0, true
	}
	m.mu.Unlock()
}

// latencySnapshot returns (mean, p50, p95, n) over the retained window.
func (m *serverMetrics) latencySnapshot() (mean, p50, p95 float64, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	window := m.ring[:m.next]
	if m.full {
		window = m.ring
	}
	xs := append([]float64(nil), window...)
	return m.summary.Mean(), metrics.Percentile(xs, 50), metrics.Percentile(xs, 95), m.summary.N()
}

// tableTotals carries the program table space's cumulative counters into
// the exposition.
type tableTotals struct {
	active                        int
	created, answers, hits, reuse uint64
	subsumed, improved            uint64
}

// expose renders the Prometheus-style text exposition of GET /metrics.
func (m *serverMetrics) expose(inFlight, queued, workers, queueLen, sessions int, tt tableTotals) string {
	mean, p50, p95, n := m.latencySnapshot()
	var b strings.Builder
	line := func(name string, v any) { fmt.Fprintf(&b, "blogd_%s %v\n", name, v) }
	line("queries_total", m.queries.Load())
	line("solutions_total", m.solutions.Load())
	line("stream_solutions_total", m.streamed.Load())
	line("rejected_total", m.rejected.Load())
	line("bad_requests_total", m.badRequests.Load())
	line("timeouts_total", m.timeouts.Load())
	line("cancelled_total", m.cancelled.Load())
	line("budget_stops_total", m.budgetStops.Load())
	line("errors_total", m.errors.Load())
	line("sessions_created_total", m.sessionsOpen.Load())
	line("sessions_ended_total", m.sessionsEnded.Load())
	line("sessions_active", sessions)
	line("tabled_queries_total", m.tabledQueries.Load())
	line("vm_dispatch_total", m.vmDispatch.Load())
	line("tables_created_total", tt.created)
	line("table_answers_total", tt.answers)
	line("table_hits_total", tt.hits)
	line("rederivations_avoided_total", tt.reuse)
	line("table_answers_subsumed_total", tt.subsumed)
	line("table_answers_improved_total", tt.improved)
	line("tables_active", tt.active)
	line("in_flight", inFlight)
	line("queue_depth", queued)
	line("pool_workers", workers)
	line("pool_queue_capacity", queueLen)
	line("latency_ms_count", n)
	fmt.Fprintf(&b, "blogd_latency_ms_mean %.3f\n", mean)
	fmt.Fprintf(&b, "blogd_latency_ms{quantile=\"0.5\"} %.3f\n", p50)
	fmt.Fprintf(&b, "blogd_latency_ms{quantile=\"0.95\"} %.3f\n", p95)
	return b.String()
}
