package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"blog"
	"blog/internal/workload"
)

func getJSON(t testing.TB, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("bad body %q: %v", data, err)
	}
}

// TestTablesAndEventsEndpoints drives the table-space observability end to
// end: a tabled query materializes a table that GET /tables ranks with
// state, size and hits; an identical weight reload leaves it standing (no
// wipe stampede); a clause assert dirty-marks it and the re-query
// re-derives; and GET /events replays the whole lifecycle — created,
// completed, invalidated with its cause, revalidated — stamped with the
// producing query's request ID.
func TestTablesAndEventsEndpoints(t *testing.T) {
	s, ts := newTestServer(t, tabledSrc, Config{})
	client := ts.Client()

	got := queryResp(t, client, ts.URL+"/query", QueryRequest{Goal: "path(a,X)", Strategy: "dfs", Tabled: true})
	if len(got.Solutions) == 0 {
		t.Fatalf("tabled query found no solutions: %+v", got)
	}
	if !strings.HasPrefix(got.RequestID, "q-") {
		t.Fatalf("response request_id = %q, want q-XXXXXX", got.RequestID)
	}
	// Second query hits the complete table, so /tables shows a hit.
	queryResp(t, client, ts.URL+"/query", QueryRequest{Goal: "path(a,X)", Strategy: "dfs", Tabled: true})

	var tables TablesResponse
	getJSON(t, client, ts.URL+"/tables", &tables)
	if tables.Complete != 1 || tables.Producing != 0 || len(tables.Tables) != 1 {
		t.Fatalf("tables = %+v, want one complete table", tables)
	}
	entry := tables.Tables[0]
	if entry.State != "complete" || entry.Pred != "path/2" {
		t.Errorf("entry = %+v, want complete path/2", entry)
	}
	if entry.Bytes <= 0 || tables.RetainedBytes != entry.Bytes {
		t.Errorf("retained bytes: entry %d total %d, want matching nonzero", entry.Bytes, tables.RetainedBytes)
	}
	if entry.Answers != 4 || entry.Hits == 0 || entry.AgeMs < 0 {
		t.Errorf("entry = %+v, want 4 answers and at least one hit", entry)
	}
	if len(entry.Deps) == 0 {
		t.Errorf("entry = %+v, want recorded dependency set", entry)
	}

	// Reloading an identical weight table (same N and A) must leave the
	// memoized table standing — the old whole-space wipe on every weight
	// load was the stampede this subsystem exists to prevent.
	var buf bytes.Buffer
	if err := s.program.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.program.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	getJSON(t, client, ts.URL+"/tables", &tables)
	if tables.Complete != 1 || len(tables.Tables) != 1 {
		t.Fatalf("tables after identical LoadWeights = %+v, want the table standing", tables)
	}

	// Asserting a clause for edge/2 — a dependency of the path/2 fixpoint
	// — dirty-marks the table; the next query re-derives it with the new
	// fact and journals the completion as a revalidation.
	if err := s.program.Assert("edge(d, e)."); err != nil {
		t.Fatal(err)
	}
	getJSON(t, client, ts.URL+"/tables", &tables)
	if tables.Dirty != 1 || len(tables.Tables) != 1 || tables.Tables[0].State != "dirty" {
		t.Fatalf("tables after assert = %+v, want one dirty table", tables)
	}
	requery := queryResp(t, client, ts.URL+"/query", QueryRequest{Goal: "path(a,X)", Strategy: "dfs", Tabled: true})
	if len(requery.Solutions) != len(got.Solutions)+1 {
		t.Fatalf("post-assert solutions = %d, want %d", len(requery.Solutions), len(got.Solutions)+1)
	}
	getJSON(t, client, ts.URL+"/tables", &tables)
	if tables.Complete != 1 || tables.Dirty != 0 || tables.Tables[0].Revalidations != 1 {
		t.Fatalf("tables after re-derivation = %+v, want one clean revalidated table", tables)
	}

	var events EventsResponse
	getJSON(t, client, ts.URL+"/events", &events)
	if events.LastSeq == 0 {
		t.Fatal("journal empty after table lifecycle")
	}
	byKind := map[string][]blog.Event{}
	for _, ev := range events.Events {
		byKind[ev.Kind] = append(byKind[ev.Kind], ev)
	}
	created := byKind["table_created"]
	completed := byKind["table_completed"]
	invalidated := byKind["table_invalidated"]
	revalidated := byKind["table_revalidated"]
	if len(created) != 1 || len(completed) != 1 || len(invalidated) != 1 || len(revalidated) != 1 {
		t.Fatalf("lifecycle events = created %d completed %d invalidated %d revalidated %d, want 1 each (events: %+v)",
			len(created), len(completed), len(invalidated), len(revalidated), events.Events)
	}
	if created[0].Pred != "path/2" || created[0].RequestID != got.RequestID {
		t.Errorf("created = %+v, want path/2 from %s", created[0], got.RequestID)
	}
	if completed[0].Count != 4 || completed[0].Bytes <= 0 || completed[0].Rounds == 0 {
		t.Errorf("completed = %+v, want 4 answers, bytes and rounds", completed[0])
	}
	if invalidated[0].Cause != "assert" || invalidated[0].Count != 1 || invalidated[0].Pred != "edge/2" {
		t.Errorf("invalidated = %+v, want cause assert dirty-marking 1 table downstream of edge/2", invalidated[0])
	}
	if revalidated[0].Count != 5 || revalidated[0].RequestID != requery.RequestID {
		t.Errorf("revalidated = %+v, want 5 answers from %s", revalidated[0], requery.RequestID)
	}
	if created[0].Seq >= completed[0].Seq || completed[0].Seq >= invalidated[0].Seq || invalidated[0].Seq >= revalidated[0].Seq {
		t.Errorf("event order %d %d %d %d not increasing",
			created[0].Seq, completed[0].Seq, invalidated[0].Seq, revalidated[0].Seq)
	}

	// Kind filter and cursor.
	var filtered EventsResponse
	getJSON(t, client, ts.URL+"/events?kind=table_invalidated", &filtered)
	if len(filtered.Events) != 1 || filtered.Events[0].Kind != "table_invalidated" {
		t.Errorf("kind filter returned %+v", filtered.Events)
	}
	var tail EventsResponse
	getJSON(t, client, ts.URL+"/events?after="+jsonUint(events.LastSeq), &tail)
	if len(tail.Events) != 0 {
		t.Errorf("cursor past end returned %+v", tail.Events)
	}
}

func jsonUint(v uint64) string {
	data, _ := json.Marshal(v)
	return string(data)
}

// TestKillCarriesRequestID pins the 410 contract: the victim of a
// DELETE /debug/queries/{id} kill answers with the q-%06d request ID in
// its error body, so the two sides of the kill correlate.
func TestKillCarriesRequestID(t *testing.T) {
	// A DFS for an absent node in a dense DAG runs until killed (same
	// victim shape as TestDebugQueriesAndKill).
	_, ts := newTestServer(t, workload.DAG(18, 8, 4, 1), Config{DefaultTimeout: time.Minute})
	client := ts.Client()

	done := make(chan ErrorResponse, 1)
	go func() {
		raw, _ := json.Marshal(QueryRequest{Goal: "path(n0_0, missing)", Strategy: "dfs", MaxExpansions: 1 << 40})
		resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(raw))
		if err != nil {
			done <- ErrorResponse{Error: err.Error()}
			return
		}
		defer resp.Body.Close()
		var body ErrorResponse
		data, _ := io.ReadAll(resp.Body)
		_ = json.Unmarshal(data, &body)
		if resp.StatusCode != http.StatusGone {
			body.Error = "status " + resp.Status + ": " + body.Error
		}
		done <- body
	}()

	// Wait for the query to appear in the inspector, then kill it.
	var id string
	for i := 0; i < 400; i++ {
		var live []LiveQuery
		getJSON(t, client, ts.URL+"/debug/queries", &live)
		if len(live) > 0 {
			id = live[0].ID
			break
		}
		select {
		case body := <-done:
			t.Fatalf("query finished before kill: %+v", body)
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	if id == "" {
		t.Fatal("query never appeared in inspector")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/debug/queries/"+id, nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	body := <-done
	if body.RequestID != id {
		t.Fatalf("410 body = %+v, want request_id %s", body, id)
	}
}
