// Package machine assembles the full parallel B-LOG machine of figure 5:
// N scoreboard-style processors, each multitasking M chain-development
// tasks over a local memory of paged-in clause blocks; one or more
// semantic paging disks holding the partitioned database; and the
// interconnection fabric (minimum-seeking tree plus banyan) that hands the
// globally cheapest open chain to a free task when it is at least D
// cheaper than the task's local minimum.
//
// Unlike package par (a live goroutine engine measuring real wall-clock
// speedup), this is a deterministic cycle-level simulation: it expands the
// real OR-tree of a real query, but charges every action — index search,
// environment copy, unification, SPD page-in, network transfer — the
// latency its hardware model defines. Experiments F5, E5 and E7 run here.
package machine

import (
	"errors"
	"fmt"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/network"
	"blog/internal/sim"
	"blog/internal/spd"
	"blog/internal/term"
	"blog/internal/weights"
)

// Config describes the machine build.
type Config struct {
	// Processors is N, the processor count (default 4).
	Processors int
	// TasksPerProcessor is M (default 2).
	TasksPerProcessor int
	// Disks is the number of SPDs the database is striped over (default 1).
	Disks int
	// DiskGeometry configures each SPD.
	DiskGeometry spd.Geometry
	// DiskMode selects SP ganging within each SPD.
	DiskMode spd.Mode
	// CacheTracksPerSP sets each SP's cache capacity.
	CacheTracksPerSP int
	// LocalBlocks is each processor's local-memory capacity in clause
	// blocks (default 64); misses page in from the SPDs.
	LocalBlocks int
	// PageDistance is the Hamming distance paged in around a missed block.
	PageDistance int
	// D is the section-6 migration threshold.
	D float64
	// AdaptiveD lets the machine retune D at run time from the measured
	// communication overhead, as section 6 proposes ("D can be modified
	// at run time, based on the measured communication overhead"): when
	// the banyan blocks too often D doubles, when it is idle D halves.
	AdaptiveD bool
	// LocalCap bounds a processor's local open list; excess chains are
	// offered to the network.
	LocalCap int

	// Latencies (cycles).
	SearchCycles    sim.Time
	UnifyCycles     sim.Time
	CopySetupCycles sim.Time
	CopyPerWord     sim.Time
	WeightCycles    sim.Time
	// MultiWrite enables the shift-register memory for child env copies.
	MultiWrite bool
	// NetNodeDelay is the min-tree comparator delay per level.
	NetNodeDelay sim.Time
	// NetSetup and NetPerWord parameterize banyan transfers.
	NetSetup   sim.Time
	NetPerWord sim.Time

	// MaxSolutions stops the run early (0 = all).
	MaxSolutions int
	// MaxExpansions bounds the simulated work (default 2_000_000).
	MaxExpansions uint64
	// MaxDepth bounds chain length (0 = the weight store's A).
	MaxDepth int
	// Learn applies section-5 weight updates during the run.
	Learn bool
}

// DefaultConfig returns a small figure-5 machine.
func DefaultConfig() Config {
	return Config{
		Processors:        4,
		TasksPerProcessor: 2,
		Disks:             2,
		DiskGeometry:      spd.DefaultGeometry(),
		DiskMode:          spd.MIMD,
		CacheTracksPerSP:  4,
		LocalBlocks:       64,
		PageDistance:      1,
		D:                 2,
		LocalCap:          32,
		SearchCycles:      4,
		UnifyCycles:       6,
		CopySetupCycles:   2,
		CopyPerWord:       1,
		WeightCycles:      1,
		MultiWrite:        true,
		NetNodeDelay:      1,
		NetSetup:          4,
		NetPerWord:        1,
		MaxExpansions:     2_000_000,
	}
}

// SolutionEvent is a solution with the cycle it was found at.
type SolutionEvent struct {
	Solution engine.Solution
	At       sim.Time
	Proc     int
}

// Report summarizes a machine run.
type Report struct {
	Cycles        sim.Time
	Solutions     []SolutionEvent
	FirstSolution sim.Time // 0 when none
	Expanded      uint64
	Failures      uint64
	Migrations    uint64
	Spills        uint64
	NetTransfers  uint64
	NetBlocked    uint64
	PageIns       uint64
	PageInCycles  sim.Time
	// DFinal is the migration threshold at the end of the run (equals
	// Config.D unless AdaptiveD retuned it); DAdjustments counts retunes.
	DFinal       float64
	DAdjustments uint64
	ProcBusy     []sim.Time
	ProcUtil     []float64
	DiskStats    []spd.Stats
	Exhausted    bool
	Err          error
}

// Machine is one configured instance. Build once, Run per query.
type Machine struct {
	cfg Config
	db  *kb.DB
	ws  weights.Store
	// carryD holds the adaptive controller's threshold across runs, so a
	// session of queries keeps its tuned D ("modified at run time, based
	// on the measured communication overhead") instead of restarting the
	// cold transient every query.
	carryD    float64
	hasCarryD bool
}

// New builds a machine over a database and weight store.
func New(cfg Config, db *kb.DB, ws weights.Store) (*Machine, error) {
	if cfg.Processors <= 0 {
		cfg.Processors = 4
	}
	if cfg.TasksPerProcessor <= 0 {
		cfg.TasksPerProcessor = 2
	}
	if cfg.Disks <= 0 {
		cfg.Disks = 1
	}
	if cfg.LocalBlocks <= 0 {
		cfg.LocalBlocks = 64
	}
	if cfg.LocalCap <= 0 {
		cfg.LocalCap = 32
	}
	if cfg.MaxExpansions == 0 {
		cfg.MaxExpansions = 2_000_000
	}
	if cfg.DiskGeometry.Cylinders == 0 {
		cfg.DiskGeometry = spd.DefaultGeometry()
	}
	// Capacity check: stripe the blocks over the disks.
	per := (db.Len() + cfg.Disks - 1) / cfg.Disks
	if per > cfg.DiskGeometry.Capacity() {
		return nil, fmt.Errorf("machine: %d clauses exceed %d disks x capacity %d",
			db.Len(), cfg.Disks, cfg.DiskGeometry.Capacity())
	}
	return &Machine{cfg: cfg, db: db, ws: ws}, nil
}

// Run simulates the machine answering the query. With AdaptiveD set, the
// tuned threshold carries over to the next Run on the same Machine.
func (m *Machine) Run(goals []term.Term) (*Report, error) {
	if len(goals) == 0 {
		return nil, errors.New("machine: empty query")
	}
	r := newRun(m, goals)
	if m.cfg.AdaptiveD && m.hasCarryD {
		r.curD = m.carryD
	}
	rep, err := r.run()
	if m.cfg.AdaptiveD {
		m.carryD = r.curD
		m.hasCarryD = true
	}
	return rep, err
}

// RunSession simulates a succession of queries on one machine, returning
// each query's report. Under AdaptiveD the controller's threshold warms
// up across queries, which is the regime the section-6 remark targets.
func (m *Machine) RunSession(queries [][]term.Term) ([]*Report, error) {
	reports := make([]*Report, 0, len(queries))
	for _, goals := range queries {
		rep, err := m.Run(goals)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// run holds one simulation's mutable state.
type run struct {
	m     *Machine
	cfg   Config
	s     sim.Sim
	exp   *engine.Expander
	qvars []*term.Var

	// network
	minTree *network.MinTree
	banyan  *network.Banyan
	netPool *boundHeap // chains offered to the network
	arbiter *network.PriorityArbiter

	// disks: blocks striped by clause ID round-robin; each disk is
	// fronted by a Resource serializing its requests.
	disks    []*spd.SPD
	diskRes  []*sim.Resource
	allBlock []spd.Block

	procs []*proc

	outstanding int
	stop        bool
	rep         *Report

	// curD is the live migration threshold; the adaptive controller
	// retunes it from the banyan's blocked-transfer ratio.
	curD          float64
	lastTransfers uint64
	lastBlocked   uint64
}

// proc is one processor's state.
type proc struct {
	id    int
	local *boundHeap
	// memory is the set of clause blocks in local memory, LRU-ordered.
	memory  map[kb.ClauseID]bool
	lru     []kb.ClauseID
	busy    sim.Time
	waiting bool // registered with the arbiter
	tasks   int  // active tasks
}

func newRun(m *Machine, goals []term.Term) *run {
	r := &run{m: m, cfg: m.cfg, rep: &Report{}}
	r.exp = engine.NewExpander(m.db, m.ws)
	// The cycle model charges per-binding copy costs calibrated against
	// the tree-walking engine; the bytecode VM elides bindings and would
	// skew the simulated transfer sizes, so the simulator stays on the
	// walker.
	r.exp.NoVM = true
	if m.cfg.MaxDepth > 0 {
		r.exp.MaxDepth = m.cfg.MaxDepth
	}
	for _, g := range goals {
		r.qvars = term.Vars(g, r.qvars)
	}
	r.minTree = network.NewMinTree(m.cfg.Processors, m.cfg.NetNodeDelay)
	r.banyan = network.NewBanyan(&r.s, m.cfg.Processors+m.cfg.Disks, m.cfg.NetSetup, m.cfg.NetPerWord)
	r.arbiter = network.NewPriorityArbiter(m.cfg.Processors, m.cfg.NetNodeDelay)
	r.netPool = newBoundHeap()

	// Build and load the disks: block i goes to disk i%Disks with a dense
	// per-disk ID; we keep the global blocks for data.
	r.allBlock = spd.BuildBlocks(m.db, m.ws)
	r.disks = make([]*spd.SPD, m.cfg.Disks)
	r.diskRes = make([]*sim.Resource, m.cfg.Disks)
	perDisk := make([][]spd.Block, m.cfg.Disks)
	for i, b := range r.allBlock {
		d := i % m.cfg.Disks
		nb := b
		nb.ID = spd.BlockID(len(perDisk[d]))
		perDisk[d] = append(perDisk[d], nb)
	}
	for d := range r.disks {
		r.disks[d] = spd.New(m.cfg.DiskGeometry, m.cfg.DiskMode, m.cfg.CacheTracksPerSP)
		if err := r.disks[d].Store(perDisk[d]); err != nil {
			// Capacity was validated in New; a failure here is a bug.
			panic(err)
		}
		r.diskRes[d] = sim.NewResource(&r.s, fmt.Sprintf("spd%d", d))
	}

	r.procs = make([]*proc, m.cfg.Processors)
	for p := range r.procs {
		r.procs[p] = &proc{
			id:     p,
			local:  newBoundHeap(),
			memory: make(map[kb.ClauseID]bool),
		}
	}
	root := r.exp.Root(goals)
	r.outstanding = 1
	r.netPool.push(root)
	r.curD = m.cfg.D
	return r
}

// adaptD implements the run-time D controller: every 32 network
// transfers, compare the window's blocked ratio against thresholds and
// double or halve D within [1/4, 1024].
func (r *run) adaptD() {
	if !r.cfg.AdaptiveD {
		return
	}
	const window = 32
	if r.banyan.Transfers-r.lastTransfers < window {
		return
	}
	blocked := r.banyan.Blocked - r.lastBlocked
	ratio := float64(blocked) / float64(r.banyan.Transfers-r.lastTransfers)
	r.lastTransfers = r.banyan.Transfers
	r.lastBlocked = r.banyan.Blocked
	switch {
	case ratio > 0.25 && r.curD < 1024:
		if r.curD == 0 {
			r.curD = 1
		} else {
			r.curD *= 2
		}
		r.rep.DAdjustments++
	case ratio < 0.05 && r.curD > 0.25:
		r.curD /= 2
		r.rep.DAdjustments++
	}
}

func (r *run) run() (*Report, error) {
	// Start every task idle: they race for the root through the network,
	// which is the paper's breadth-first fill.
	for _, p := range r.procs {
		for t := 0; t < r.cfg.TasksPerProcessor; t++ {
			p := p
			r.s.At(0, func() { r.taskLoop(p) })
		}
	}
	r.rep.Cycles = r.s.Run(0)
	r.rep.ProcBusy = make([]sim.Time, len(r.procs))
	r.rep.ProcUtil = make([]float64, len(r.procs))
	for i, p := range r.procs {
		r.rep.ProcBusy[i] = p.busy
		if r.rep.Cycles > 0 {
			u := float64(p.busy) / float64(r.rep.Cycles) / float64(r.cfg.TasksPerProcessor)
			if u > 1 {
				u = 1
			}
			r.rep.ProcUtil[i] = u
		}
	}
	for _, d := range r.disks {
		r.rep.DiskStats = append(r.rep.DiskStats, d.Stats())
	}
	r.rep.NetTransfers = r.banyan.Transfers
	r.rep.NetBlocked = r.banyan.Blocked
	r.rep.DFinal = r.curD
	r.rep.Exhausted = r.outstanding == 0 && !r.stop
	if len(r.rep.Solutions) > 0 {
		r.rep.FirstSolution = r.rep.Solutions[0].At
	}
	return r.rep, r.rep.Err
}

// taskLoop is one task's scheduler step: acquire a chain per the D rule,
// process it, repeat. All state is single-threaded inside the simulator.
func (r *run) taskLoop(p *proc) {
	if r.stop {
		return
	}
	var localMin *engine.Node
	if p.local.len() > 0 {
		localMin = p.local.peek()
	}
	netMin := r.netPool.peekOrNil()

	switch {
	case localMin != nil && (netMin == nil || netMin.Bound > localMin.Bound-r.curD):
		n := p.local.pop()
		r.process(p, n)
	case netMin != nil:
		// Acquire through the network: min-tree query + arbitration +
		// chain transfer proportional to its environment size.
		n := r.netPool.pop()
		if localMin != nil {
			r.rep.Migrations++
		}
		lat := r.minTree.QueryLatency() + r.arbiter.GrantLatency()
		words := 8 + 2*n.Env.Depth()
		p.busy += lat
		r.banyan.Transfer(r.cfg.Processors+int(n.Seq)%r.cfg.Disks, p.id, words, func() {
			r.process(p, n)
		})
		r.adaptD()
	default:
		if r.outstanding == 0 {
			return // exhausted; all tasks drain out
		}
		// Idle: poll the network after one min-tree latency. Event-count
		// bounded by MaxExpansions via the simulator's own run budget.
		r.s.After(r.minTree.QueryLatency()+1, func() { r.taskLoop(p) })
	}
}

// process expands or finalizes one chain, charging all costs, then loops.
func (r *run) process(p *proc, n *engine.Node) {
	if r.stop {
		return
	}
	if n.IsSolution() {
		sol := engine.Extract(n, r.qvars)
		if r.cfg.Learn {
			r.m.ws.RecordSuccess(sol.Chain)
		}
		r.rep.Solutions = append(r.rep.Solutions, SolutionEvent{Solution: sol, At: r.s.Now(), Proc: p.id})
		r.outstanding--
		if r.cfg.MaxSolutions > 0 && len(r.rep.Solutions) >= r.cfg.MaxSolutions {
			r.stop = true
			return
		}
		r.s.After(1, func() { r.taskLoop(p) })
		return
	}
	if r.rep.Expanded >= r.cfg.MaxExpansions {
		if r.rep.Err == nil {
			r.rep.Err = errors.New("machine: expansion budget exhausted")
		}
		r.stop = true
		return
	}
	r.rep.Expanded++

	children, err := r.exp.Expand(n)
	if err != nil && err != engine.ErrDepthLimit {
		r.rep.Err = err
		r.stop = true
		return
	}

	// Page in the clause blocks the expansion touched but local memory
	// lacks. The children tell us which clauses matched; the search also
	// scanned candidates, which we approximate by the matched set.
	var missing []kb.ClauseID
	for _, c := range children {
		arc := c.Chain.Slice()
		cid := arc[len(arc)-1].Callee
		if !p.memory[cid] {
			missing = append(missing, cid)
			r.noteLocal(p, cid)
		}
	}
	searchCost := r.cfg.SearchCycles
	p.busy += searchCost

	finish := func() {
		if len(children) == 0 {
			r.rep.Failures++
			if r.cfg.Learn {
				r.m.ws.RecordFailure(n.Chain.Slice())
			}
			r.outstanding--
			cost := r.cfg.WeightCycles
			p.busy += cost
			r.s.After(searchCost+cost, func() { r.taskLoop(p) })
			return
		}
		// Copy + unify + weight per child.
		words := 8 + 2*n.Env.Depth()
		passes := len(children)
		if r.cfg.MultiWrite {
			passes = 1
		}
		cost := r.cfg.CopySetupCycles + sim.Time(passes)*sim.Time(words)*r.cfg.CopyPerWord +
			sim.Time(len(children))*(r.cfg.UnifyCycles+r.cfg.WeightCycles)
		p.busy += cost
		r.outstanding += len(children) - 1
		for _, c := range children {
			p.local.push(c)
		}
		spilled := 0
		for p.local.len() > r.cfg.LocalCap {
			r.netPool.push(p.local.popMax())
			spilled++
		}
		// Keep starving peers fed: if the pool is empty and we hold more
		// than one chain, offer our worst one.
		if r.netPool.len() == 0 && p.local.len() > 1 {
			r.netPool.push(p.local.popMax())
			spilled++
		}
		r.rep.Spills += uint64(spilled)
		r.minTree.Set(p.id, bestBoundOf(p.local), p.local.len() > 0)
		r.s.After(searchCost+cost, func() { r.taskLoop(p) })
	}

	if len(missing) == 0 {
		finish()
		return
	}
	// Page the missing blocks in from their disks, serialized per disk.
	r.rep.PageIns += uint64(len(missing))
	remaining := len(missing)
	for _, cid := range missing {
		d := int(cid) % r.cfg.Disks
		localID := spd.BlockID(int(cid) / r.cfg.Disks)
		disk := r.disks[d]
		// Measure the SPD's own cost for this page-in.
		before := disk.Elapsed()
		_, _ = disk.PageSubgraph([]spd.BlockID{localID}, r.cfg.PageDistance)
		cost := disk.Elapsed() - before
		r.rep.PageInCycles += cost
		r.diskRes[d].Acquire(cost, func() {
			remaining--
			if remaining == 0 {
				finish()
			}
		})
	}
}

// noteLocal inserts a block into processor memory with LRU eviction.
func (r *run) noteLocal(p *proc, cid kb.ClauseID) {
	if p.memory[cid] {
		return
	}
	p.memory[cid] = true
	p.lru = append(p.lru, cid)
	if len(p.lru) > r.cfg.LocalBlocks {
		evict := p.lru[0]
		p.lru = p.lru[1:]
		delete(p.memory, evict)
	}
}

func bestBoundOf(h *boundHeap) float64 {
	if h.len() == 0 {
		return 0
	}
	return h.peek().Bound
}
