package machine

import (
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/term"
	"blog/internal/weights"
	"blog/internal/workload"
)

const fig1 = `
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).
`

func load(t testing.TB, src string) *kb.DB {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func q(t testing.TB, s string) []term.Term {
	t.Helper()
	gs, err := parse.Query(s)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func newMachine(t testing.TB, src string, cfg Config) *Machine {
	t.Helper()
	db := load(t, src)
	m, err := New(cfg, db, weights.NewUniform(weights.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineFindsAllFig1Solutions(t *testing.T) {
	m := newMachine(t, fig1, DefaultConfig())
	rep, err := m.Run(q(t, "gf(sam,G)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solutions) != 2 {
		t.Fatalf("solutions = %d, want 2", len(rep.Solutions))
	}
	got := map[string]bool{}
	for _, s := range rep.Solutions {
		got[s.Solution.Bindings["G"].String()] = true
	}
	if !got["den"] || !got["doug"] {
		t.Errorf("bindings = %v", got)
	}
	if !rep.Exhausted {
		t.Error("run should exhaust the tree")
	}
	if rep.Cycles <= 0 {
		t.Error("simulation must consume cycles")
	}
	if rep.FirstSolution <= 0 || rep.FirstSolution > rep.Cycles {
		t.Errorf("first solution at %d of %d", rep.FirstSolution, rep.Cycles)
	}
}

func TestMachineDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := newMachine(t, fig1, cfg).Run(q(t, "gf(sam,G)"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := newMachine(t, fig1, cfg).Run(q(t, "gf(sam,G)"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Expanded != b.Expanded || a.PageIns != b.PageIns {
		t.Errorf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.Expanded, b.Cycles, b.Expanded)
	}
}

func TestMachineMaxSolutions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSolutions = 1
	rep, err := newMachine(t, fig1, cfg).Run(q(t, "gf(sam,G)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solutions) != 1 {
		t.Errorf("solutions = %d", len(rep.Solutions))
	}
	if rep.Exhausted {
		t.Error("early stop is not exhaustion")
	}
}

func TestMachinePageInCosts(t *testing.T) {
	// The recursive anc/2 clauses are touched at every expansion, so a
	// 2-block local memory thrashes while a large one pages each clause
	// at most once.
	src := workload.FamilyTree(4, 3)
	query := "anc(p0, X)"
	cfg := DefaultConfig()
	cfg.LocalBlocks = 2
	cfg.MaxDepth = 32
	rep, err := newMachine(t, src, cfg).Run(q(t, query))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PageIns == 0 || rep.PageInCycles == 0 {
		t.Error("tiny memory should force page-ins")
	}
	big := DefaultConfig()
	big.LocalBlocks = 100000
	big.MaxDepth = 32
	rep2, err := newMachine(t, src, big).Run(q(t, query))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.PageIns >= rep.PageIns {
		t.Errorf("large memory paged %d blocks, tiny paged %d; want fewer", rep2.PageIns, rep.PageIns)
	}
	if len(rep.Solutions) != len(rep2.Solutions) {
		t.Error("memory size must not change the answer set")
	}
}

func TestMachineMoreProcessorsFaster(t *testing.T) {
	src := workload.FamilyTree(5, 3)
	goals := "anc(p0, X)"
	one := DefaultConfig()
	one.Processors = 1
	one.MaxDepth = 32
	r1, err := newMachine(t, src, one).Run(q(t, goals))
	if err != nil {
		t.Fatal(err)
	}
	eight := DefaultConfig()
	eight.Processors = 8
	eight.MaxDepth = 32
	r8, err := newMachine(t, src, eight).Run(q(t, goals))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Solutions) != len(r8.Solutions) {
		t.Fatalf("solution sets differ: %d vs %d", len(r1.Solutions), len(r8.Solutions))
	}
	if r8.Cycles >= r1.Cycles {
		t.Errorf("8 procs (%d cycles) should beat 1 proc (%d)", r8.Cycles, r1.Cycles)
	}
}

func TestMachineUtilizationBounds(t *testing.T) {
	rep, err := newMachine(t, workload.FamilyTree(4, 3), DefaultConfig()).Run(q(t, "gf(p0,G)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ProcUtil) != 4 {
		t.Fatalf("util slots = %d", len(rep.ProcUtil))
	}
	for i, u := range rep.ProcUtil {
		if u < 0 || u > 1 {
			t.Errorf("proc %d utilization %v", i, u)
		}
	}
	if len(rep.DiskStats) != DefaultConfig().Disks {
		t.Errorf("disk stats = %d", len(rep.DiskStats))
	}
}

func TestMachineEmptyQuery(t *testing.T) {
	m := newMachine(t, fig1, DefaultConfig())
	if _, err := m.Run(nil); err == nil {
		t.Error("empty query must error")
	}
}

func TestMachineCapacityValidation(t *testing.T) {
	db := load(t, workload.FamilyTree(6, 3))
	cfg := DefaultConfig()
	cfg.Disks = 1
	cfg.DiskGeometry.Cylinders = 1
	cfg.DiskGeometry.Surfaces = 1
	cfg.DiskGeometry.BlocksPerTrack = 4
	if _, err := New(cfg, db, weights.NewUniform(weights.DefaultConfig())); err == nil {
		t.Error("overflowing the disks must fail")
	}
}

func TestMachineFailingQuery(t *testing.T) {
	rep, err := newMachine(t, fig1, DefaultConfig()).Run(q(t, "gf(peg,G)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solutions) != 0 {
		t.Error("gf(peg,G) has no solutions")
	}
	if rep.FirstSolution != 0 {
		t.Error("no first-solution time for a failing query")
	}
	if !rep.Exhausted {
		t.Error("failing query should still exhaust")
	}
}

func TestMachineDepthLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDepth = 6
	rep, err := newMachine(t, "loop :- loop.", cfg).Run(q(t, "loop"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solutions) != 0 {
		t.Error("cyclic program has no solutions")
	}
}

func TestMachineLearning(t *testing.T) {
	db := load(t, fig1)
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	cfg := DefaultConfig()
	cfg.Learn = true
	m, err := New(cfg, db, tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(q(t, "gf(sam,G)")); err != nil {
		t.Fatal(err)
	}
	if tab.Len() == 0 {
		t.Error("learning machine run should record weights")
	}
	// A second machine run guided by the learned weights reaches its
	// first solution in fewer cycles.
	cfg2 := DefaultConfig()
	cfg2.MaxSolutions = 1
	m2, err := New(cfg2, db, tab)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Run(q(t, "gf(sam,G)"))
	if err != nil {
		t.Fatal(err)
	}
	cfg3 := DefaultConfig()
	cfg3.MaxSolutions = 1
	m3, err := New(cfg3, db, weights.NewTable(weights.Config{N: 16, A: 64}))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := m3.Run(q(t, "gf(sam,G)"))
	if err != nil {
		t.Fatal(err)
	}
	if r2.FirstSolution > r3.FirstSolution {
		t.Errorf("learned machine first solution at %d, fresh at %d", r2.FirstSolution, r3.FirstSolution)
	}
}

func TestMachineAdaptiveD(t *testing.T) {
	src := workload.FamilyTree(5, 3)
	cfg := DefaultConfig()
	cfg.D = 0
	cfg.AdaptiveD = true
	cfg.LocalCap = 4
	cfg.MaxDepth = 32
	rep, err := newMachine(t, src, cfg).Run(q(t, "anc(p0, X)"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DAdjustments == 0 {
		t.Error("adaptive controller never adjusted D")
	}
	if rep.DFinal == 0 {
		t.Error("D should have moved off 0 under heavy blocking")
	}
	// The answer set is unaffected by scheduling policy.
	fixed := DefaultConfig()
	fixed.D = 0
	fixed.LocalCap = 4
	fixed.MaxDepth = 32
	rep2, err := newMachine(t, src, fixed).Run(q(t, "anc(p0, X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solutions) != len(rep2.Solutions) {
		t.Errorf("adaptive found %d solutions, fixed %d", len(rep.Solutions), len(rep2.Solutions))
	}
	// Heavy blocking must drive D up, suppressing migrations relative to
	// the pathological fixed D=0 (makespan is path-dependent and not
	// asserted; E5 records it).
	if rep.Migrations >= rep2.Migrations {
		t.Errorf("adaptive migrations %d should be below fixed D=0's %d", rep.Migrations, rep2.Migrations)
	}
}

func TestMachineSessionCarriesAdaptiveD(t *testing.T) {
	src := workload.FamilyTree(5, 3)
	db := load(t, src)
	cfg := DefaultConfig()
	cfg.D = 0
	cfg.AdaptiveD = true
	cfg.LocalCap = 4
	cfg.MaxDepth = 32
	m, err := New(cfg, db, weights.NewUniform(weights.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]term.Term{
		q(t, "anc(p0, X)"), q(t, "anc(p0, X)"), q(t, "anc(p0, X)"),
	}
	reps, err := m.RunSession(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("reports = %d", len(reps))
	}
	// The first query starts at D=0 and tunes upward; later queries
	// inherit the tuned threshold, so they thrash less from cycle one.
	if reps[0].DFinal <= 0 {
		t.Error("first query should tune D above 0")
	}
	if reps[1].Migrations >= reps[0].Migrations {
		t.Errorf("warm query migrations %d should be below cold query's %d",
			reps[1].Migrations, reps[0].Migrations)
	}
	if reps[1].Cycles >= reps[0].Cycles {
		t.Errorf("warm query (%d cycles) should beat the cold query (%d)",
			reps[1].Cycles, reps[0].Cycles)
	}
	// Answers identical across the session.
	if len(reps[0].Solutions) != len(reps[2].Solutions) {
		t.Error("session queries must agree on answers")
	}
}

func BenchmarkMachineFig1(b *testing.B) {
	db := load(b, fig1)
	goals, _ := parse.Query("gf(sam,G)")
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cfg, db, weights.NewUniform(weights.DefaultConfig()))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(goals); err != nil {
			b.Fatal(err)
		}
	}
}
