package weights

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"blog/internal/kb"
)

func TestPersistRoundTrip(t *testing.T) {
	src := NewTable(Config{N: 16, A: 64})
	src.Set(arc(0, 0, 1), 3.25)
	src.Set(arc(1, 2, 5), 0)
	src.SetInfinite(arc(-1, 0, 3))
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config() != src.Config() {
		t.Errorf("config = %+v", got.Config())
	}
	if got.Len() != src.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), src.Len())
	}
	for a, e := range src.Snapshot() {
		k, w := got.State(a)
		if k != e.Kind {
			t.Errorf("arc %v kind = %v, want %v", a, k, e.Kind)
		}
		if k == Known && w != e.W {
			t.Errorf("arc %v weight = %v, want %v", a, w, e.W)
		}
	}
}

func TestPersistDeterministicOutput(t *testing.T) {
	tab := NewTable(DefaultConfig())
	for i := 0; i < 20; i++ {
		tab.Set(arc(i%5, i%3, i), float64(i))
	}
	var a, b bytes.Buffer
	if _, err := tab.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("output must be deterministic")
	}
}

func TestPersistEmptyTable(t *testing.T) {
	tab := NewTable(Config{N: 8, A: 32})
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Config().N != 8 || got.Config().A != 32 {
		t.Errorf("got %d entries, cfg %+v", got.Len(), got.Config())
	}
}

func TestReadTableErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"# blog-weights v1 N=x\n",
		"# blog-weights v1 Q=3\n",
		"# blog-weights v1\n1 2\n",
		"# blog-weights v1\n1 2 3 9 4.5\n", // invalid kind
		"# blog-weights v1\n1 2 3 0 4.5\n", // Unknown kind is never stored
		"# blog-weights v1\na 2 3 1 4.5\n",
	}
	for _, src := range cases {
		if _, err := ReadTable(strings.NewReader(src)); err == nil {
			t.Errorf("ReadTable(%q) should fail", src)
		}
	}
}

func TestReadTableSkipsCommentsAndBlanks(t *testing.T) {
	src := "# blog-weights v1 N=16 A=64\n\n# a comment\n1 0 2 1 5\n"
	tab, err := ReadTable(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if k, w := tab.State(arc(1, 0, 2)); k != Known || w != 5 {
		t.Errorf("state = %v %v", k, w)
	}
}

func TestPropertyPersistRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(Config{N: float64(1 + rng.Intn(32)), A: 1 + rng.Intn(100)})
		for i := 0; i < rng.Intn(30); i++ {
			a := kb.Arc{
				Caller: kb.ClauseID(rng.Intn(20) - 1),
				Pos:    rng.Intn(4),
				Callee: kb.ClauseID(rng.Intn(20)),
			}
			if rng.Intn(4) == 0 {
				tab.SetInfinite(a)
			} else {
				tab.Set(a, float64(rng.Intn(64))/4)
			}
		}
		var buf bytes.Buffer
		if _, err := tab.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTable(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tab.Len() {
			return false
		}
		for a, e := range tab.Snapshot() {
			k, w := got.State(a)
			if k != e.Kind || (k == Known && w != e.W) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
