package weights

import (
	"sync"

	"blog/internal/kb"
)

// RootContext is the pseudo-arc used as the context of a chain's first
// decision (nothing has been decided yet).
var RootContext = kb.Arc{Caller: -2, Pos: -1, Callee: -2}

// ContextualStore extends Store with context-conditioned weights: the
// bound increment of taking arc a may depend on the previous decision of
// the chain. This is the extension the paper sketches at the end of
// section 5: "conditional probabilities (conditional information) might
// be added to the model, since a decision should depend on what has been
// previously decided, but maintaining the database in this model is
// clearly more difficult than our approach."
type ContextualStore interface {
	Store
	// WeightIn returns the weight of a given that prev was the chain's
	// previous arc (RootContext for the first decision).
	WeightIn(prev, a kb.Arc) float64
}

// pairKey identifies one conditioned pointer.
type pairKey struct {
	prev kb.Arc
	a    kb.Arc
}

// Conditional is a context-sensitive weight table. Each (previous arc,
// arc) pair carries its own learned state; pairs never touched fall back
// to a marginal Table so cold chains behave exactly like the plain
// section-5 scheme. The section-5 update rules apply verbatim with pairs
// in place of arcs: the unknown pair nearest the leaf of a failed chain
// becomes infinite, and the open pairs of a successful chain share out
// N minus the known sum.
//
// The cost the paper warns about is visible in Len(): the state space is
// pairs of pointers, squaring the database's weight storage in the worst
// case. Experiment E9 quantifies what that buys.
type Conditional struct {
	cfg      Config
	marginal *Table

	mu sync.RWMutex
	m  map[pairKey]entry
}

// NewConditional returns an empty conditional table.
func NewConditional(cfg Config) *Conditional {
	return &Conditional{cfg: cfg, marginal: NewTable(cfg), m: make(map[pairKey]entry)}
}

// Config implements Store.
func (c *Conditional) Config() Config { return c.cfg }

// Marginal exposes the fallback table (shared with cold contexts).
func (c *Conditional) Marginal() *Table { return c.marginal }

// Len returns the number of learned pairs.
func (c *Conditional) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// WeightIn implements ContextualStore.
func (c *Conditional) WeightIn(prev, a kb.Arc) float64 {
	c.mu.RLock()
	e, ok := c.m[pairKey{prev, a}]
	c.mu.RUnlock()
	if !ok {
		return c.marginal.Weight(a)
	}
	if e.kind == Infinite {
		return c.cfg.InfiniteWeight()
	}
	return e.w
}

// Weight implements Store with the marginal fallback (used by callers
// that have no context, such as diagnostics).
func (c *Conditional) Weight(a kb.Arc) float64 { return c.marginal.Weight(a) }

// State implements Store (marginal view).
func (c *Conditional) State(a kb.Arc) (Kind, float64) { return c.marginal.State(a) }

// StateIn returns the learned state of a conditioned pair.
func (c *Conditional) StateIn(prev, a kb.Arc) (Kind, float64) {
	c.mu.RLock()
	e, ok := c.m[pairKey{prev, a}]
	c.mu.RUnlock()
	if !ok {
		return Unknown, c.cfg.UnknownWeight()
	}
	return e.kind, e.w
}

// pairs converts a chain into its conditioned pair sequence.
func pairs(chain []kb.Arc) []pairKey {
	out := make([]pairKey, len(chain))
	prev := RootContext
	for i, a := range chain {
		out[i] = pairKey{prev, a}
		prev = a
	}
	return out
}

// RecordFailure implements Store: the section-5 failure rule over pairs.
// The marginal table also learns, keeping cold-context fallbacks useful.
func (c *Conditional) RecordFailure(chain []kb.Arc) {
	if len(chain) == 0 {
		return
	}
	ps := pairs(chain)
	c.mu.Lock()
	explained := false
	for _, p := range ps {
		if e, ok := c.m[p]; ok && e.kind == Infinite {
			explained = true
			break
		}
	}
	if !explained {
		for i := len(ps) - 1; i >= 0; i-- {
			if e, ok := c.m[ps[i]]; !ok || e.kind == Unknown {
				c.m[ps[i]] = entry{w: c.cfg.InfiniteWeight(), kind: Infinite}
				break
			}
		}
	}
	c.mu.Unlock()
	c.marginal.RecordFailure(chain)
}

// RecordSuccess implements Store: the section-5 success rule over pairs.
func (c *Conditional) RecordSuccess(chain []kb.Arc) {
	if len(chain) == 0 {
		return
	}
	ps := pairs(chain)
	c.mu.Lock()
	var m float64
	var open []pairKey
	seen := make(map[pairKey]bool, len(ps))
	for _, p := range ps {
		if e, ok := c.m[p]; ok && e.kind == Known {
			m += e.w
			continue
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		open = append(open, p)
	}
	if len(open) > 0 {
		w := 0.0
		if m < c.cfg.N {
			w = (c.cfg.N - m) / float64(len(open))
		}
		for _, p := range open {
			c.m[p] = entry{w: w, kind: Known}
		}
	}
	c.mu.Unlock()
	c.marginal.RecordSuccess(chain)
}

var _ ContextualStore = (*Conditional)(nil)
