package weights

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"blog/internal/kb"
)

func arc(caller, pos, callee int) kb.Arc {
	return kb.Arc{Caller: kb.ClauseID(caller), Pos: pos, Callee: kb.ClauseID(callee)}
}

func TestConfigCoding(t *testing.T) {
	cfg := Config{N: 16, A: 64}
	if cfg.UnknownWeight() != 17 {
		t.Errorf("unknown = %v, want N+1 = 17", cfg.UnknownWeight())
	}
	if cfg.InfiniteWeight() != 1024 {
		t.Errorf("infinity = %v, want A*N = 1024", cfg.InfiniteWeight())
	}
}

func TestTableDefaults(t *testing.T) {
	tab := NewTable(DefaultConfig())
	a := arc(0, 0, 1)
	if w := tab.Weight(a); w != tab.Config().UnknownWeight() {
		t.Errorf("fresh arc weight = %v, want unknown coding", w)
	}
	if k, _ := tab.State(a); k != Unknown {
		t.Errorf("fresh arc state = %v", k)
	}
	if tab.Len() != 0 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestSetAndForget(t *testing.T) {
	tab := NewTable(DefaultConfig())
	a := arc(0, 0, 1)
	tab.Set(a, 3.5)
	if k, w := tab.State(a); k != Known || w != 3.5 {
		t.Errorf("state = %v %v", k, w)
	}
	if tab.Weight(a) != 3.5 {
		t.Errorf("weight = %v", tab.Weight(a))
	}
	tab.SetInfinite(a)
	if k, _ := tab.State(a); k != Infinite {
		t.Errorf("state after SetInfinite = %v", k)
	}
	if tab.Weight(a) != tab.Config().InfiniteWeight() {
		t.Errorf("infinite weight = %v", tab.Weight(a))
	}
	tab.Forget(a)
	if k, _ := tab.State(a); k != Unknown {
		t.Errorf("state after Forget = %v", k)
	}
}

func TestRecordFailureNearestLeaf(t *testing.T) {
	tab := NewTable(DefaultConfig())
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2), arc(2, 0, 3)}
	tab.RecordFailure(chain)
	// The arc nearest the leaf (last) must become infinite; others untouched.
	if k, _ := tab.State(chain[2]); k != Infinite {
		t.Error("leaf-most unknown should be infinite")
	}
	if k, _ := tab.State(chain[0]); k != Unknown {
		t.Error("root-most arc should stay unknown")
	}
	if k, _ := tab.State(chain[1]); k != Unknown {
		t.Error("middle arc should stay unknown")
	}
}

func TestRecordFailureSkipsKnown(t *testing.T) {
	tab := NewTable(DefaultConfig())
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2), arc(2, 0, 3)}
	tab.Set(chain[2], 2) // leaf-most is known
	tab.RecordFailure(chain)
	if k, _ := tab.State(chain[1]); k != Infinite {
		t.Error("nearest *unknown* to the leaf should become infinite")
	}
	if k, w := tab.State(chain[2]); k != Known || w != 2 {
		t.Error("known arc must not be overwritten by failure")
	}
}

func TestRecordFailureAlreadyExplained(t *testing.T) {
	tab := NewTable(DefaultConfig())
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2)}
	tab.SetInfinite(chain[0])
	tab.RecordFailure(chain)
	if k, _ := tab.State(chain[1]); k != Unknown {
		t.Error("chain already has an infinite arc; no new infinity should be set")
	}
}

func TestRecordFailureAllKnownNoop(t *testing.T) {
	tab := NewTable(DefaultConfig())
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2)}
	tab.Set(chain[0], 1)
	tab.Set(chain[1], 2)
	tab.RecordFailure(chain)
	for _, a := range chain {
		if k, _ := tab.State(a); k != Known {
			t.Error("all-known failed chain should leave weights for session averaging")
		}
	}
}

func TestRecordFailureEmptyChain(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.RecordFailure(nil) // must not panic
	if tab.Len() != 0 {
		t.Error("no state should appear")
	}
}

func TestRecordSuccessDistributesToN(t *testing.T) {
	cfg := Config{N: 16, A: 64}
	tab := NewTable(cfg)
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2), arc(2, 0, 3), arc(3, 0, 4)}
	tab.Set(chain[0], 4) // known M = 4, three unknowns get (16-4)/3 = 4
	tab.RecordSuccess(chain)
	for _, a := range chain[1:] {
		k, w := tab.State(a)
		if k != Known || w != 4 {
			t.Errorf("arc %v = %v %v, want known 4", a, k, w)
		}
	}
	if got := ChainBound(tab, chain); got != cfg.N {
		t.Errorf("chain bound = %v, want N = %v", got, cfg.N)
	}
}

func TestRecordSuccessOverflowSetsZero(t *testing.T) {
	cfg := Config{N: 16, A: 64}
	tab := NewTable(cfg)
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2)}
	tab.Set(chain[0], 20) // M = 20 > N
	tab.RecordSuccess(chain)
	if k, w := tab.State(chain[1]); k != Known || w != 0 {
		t.Errorf("unknown arc should become 0 when M > N, got %v %v", k, w)
	}
}

func TestRecordSuccessResetsInfinite(t *testing.T) {
	// The paper: "we will reset all unknown or infinite weights".
	cfg := Config{N: 16, A: 64}
	tab := NewTable(cfg)
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2)}
	tab.SetInfinite(chain[0])
	tab.RecordSuccess(chain)
	k, w := tab.State(chain[0])
	if k != Known || w != 8 {
		t.Errorf("infinite arc on successful chain should reset to (N-0)/2 = 8, got %v %v", k, w)
	}
}

func TestRecordSuccessAllKnownNoop(t *testing.T) {
	cfg := Config{N: 16, A: 64}
	tab := NewTable(cfg)
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2)}
	tab.Set(chain[0], 7)
	tab.Set(chain[1], 9)
	tab.RecordSuccess(chain)
	if _, w := tab.State(chain[0]); w != 7 {
		t.Error("known weights must not change on success")
	}
}

func TestRecordSuccessDuplicateArcInChain(t *testing.T) {
	// A recursive clause can put the same arc in a chain twice; it must
	// receive a single consistent weight.
	cfg := Config{N: 16, A: 64}
	tab := NewTable(cfg)
	a, b := arc(0, 0, 1), arc(1, 0, 1)
	chain := []kb.Arc{a, b, b, b}
	tab.RecordSuccess(chain)
	ka, wa := tab.State(a)
	kbd, wb := tab.State(b)
	if ka != Known || kbd != Known {
		t.Fatal("both arcs should be known")
	}
	if wa != wb || wa != 8 {
		t.Errorf("weights = %v, %v; want equal shares of N over 2 distinct arcs", wa, wb)
	}
}

func TestUniformStore(t *testing.T) {
	u := NewUniform(DefaultConfig())
	a := arc(0, 0, 1)
	if u.Weight(a) != 1 {
		t.Error("uniform weight must be 1")
	}
	u.RecordSuccess([]kb.Arc{a})
	u.RecordFailure([]kb.Arc{a})
	if u.Weight(a) != 1 {
		t.Error("uniform store must not learn")
	}
}

func TestChainBound(t *testing.T) {
	tab := NewTable(DefaultConfig())
	a, b := arc(0, 0, 1), arc(1, 0, 2)
	tab.Set(a, 2)
	tab.Set(b, 5)
	if got := ChainBound(tab, []kb.Arc{a, b}); got != 7 {
		t.Errorf("bound = %v, want 7", got)
	}
	if got := ChainBound(tab, nil); got != 0 {
		t.Errorf("empty bound = %v", got)
	}
}

func TestBoundMonotonic(t *testing.T) {
	// Growing a chain can only increase its bound (weights are >= 0).
	tab := NewTable(DefaultConfig())
	chain := []kb.Arc{}
	prev := 0.0
	for i := 0; i < 10; i++ {
		chain = append(chain, arc(i, 0, i+1))
		b := ChainBound(tab, chain)
		if b < prev {
			t.Fatalf("bound decreased from %v to %v at length %d", prev, b, i+1)
		}
		prev = b
	}
}

func TestConcurrentTableAccess(t *testing.T) {
	tab := NewTable(DefaultConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a := arc(g, 0, i%17)
				switch i % 4 {
				case 0:
					tab.RecordSuccess([]kb.Arc{a, arc(g, 1, i%13)})
				case 1:
					tab.RecordFailure([]kb.Arc{a})
				case 2:
					tab.Weight(a)
				case 3:
					tab.State(a)
				}
			}
		}(g)
	}
	wg.Wait() // run with -race to validate locking
}

func TestKindString(t *testing.T) {
	if Unknown.String() != "unknown" || Known.String() != "known" || Infinite.String() != "infinite" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string")
	}
}

// Property: after RecordSuccess on a chain of previously-unknown arcs, the
// chain bound is exactly N (within float tolerance).
func TestPropertySuccessBoundIsN(t *testing.T) {
	cfg := Config{N: 16, A: 64}
	f := func(lens uint8) bool {
		n := int(lens%12) + 1
		tab := NewTable(cfg)
		chain := make([]kb.Arc, n)
		for i := range chain {
			chain[i] = arc(i, 0, i+1)
		}
		tab.RecordSuccess(chain)
		return math.Abs(ChainBound(tab, chain)-cfg.N) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: RecordFailure sets at most one infinity per call.
func TestPropertyFailureSetsOneInfinity(t *testing.T) {
	cfg := Config{N: 16, A: 64}
	f := func(lens uint8, knownMask uint8) bool {
		n := int(lens%8) + 1
		tab := NewTable(cfg)
		chain := make([]kb.Arc, n)
		for i := range chain {
			chain[i] = arc(i, 0, i+1)
			if knownMask&(1<<uint(i)) != 0 {
				tab.Set(chain[i], 1)
			}
		}
		before := countInf(tab, chain)
		tab.RecordFailure(chain)
		after := countInf(tab, chain)
		return after-before <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func countInf(tab *Table, chain []kb.Arc) int {
	n := 0
	for _, a := range chain {
		if k, _ := tab.State(a); k == Infinite {
			n++
		}
	}
	return n
}

func BenchmarkWeightLookup(b *testing.B) {
	tab := NewTable(DefaultConfig())
	arcs := make([]kb.Arc, 64)
	for i := range arcs {
		arcs[i] = arc(i, 0, i+1)
		if i%2 == 0 {
			tab.Set(arcs[i], float64(i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Weight(arcs[i%64])
	}
}

func BenchmarkRecordSuccess(b *testing.B) {
	cfg := DefaultConfig()
	chain := make([]kb.Arc, 8)
	for i := range chain {
		chain[i] = arc(i, 0, i+1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := NewTable(cfg)
		tab.RecordSuccess(chain)
	}
}
