package weights

import (
	"math"
	"testing"

	"blog/internal/kb"
)

// fig3Outcomes encodes the fully-expanded search tree of figure 3 of the
// paper for ?- gf(sam,G): two successful chains through rule 1 and one
// failed chain through rule 2.
//
// Arc naming (static database pointers):
//
//	aR1 = query -> rule gf:-f,f        aR2 = query -> rule gf:-f,m
//	aF1 = rule1 body pos0 -> f(sam,larry)
//	aD  = rule1 body pos1 -> f(larry,den)
//	aG  = rule1 body pos1 -> f(larry,doug)
//	aF2 = rule2 body pos0 -> f(sam,larry)
var (
	aR1 = arc(-1, 0, 0)
	aR2 = arc(-1, 0, 1)
	aF1 = arc(0, 0, 3)
	aD  = arc(0, 1, 5)
	aG  = arc(0, 1, 7)
	aF2 = arc(1, 0, 3)
)

func fig3Outcomes() []Outcome {
	return []Outcome{
		{Chain: []kb.Arc{aR1, aF1, aD}, Success: true},
		{Chain: []kb.Arc{aR1, aF1, aG}, Success: true},
		{Chain: []kb.Arc{aR2, aF2}, Success: false},
	}
}

func TestSolveFig3(t *testing.T) {
	sol, err := Solve(fig3Outcomes())
	if err != nil {
		t.Fatal(err)
	}
	// Two solutions => target bound log2(2) = 1, the paper's worked values.
	if sol.Target != 1 {
		t.Errorf("target = %v, want 1", sol.Target)
	}
	if err := sol.Check(fig3Outcomes(), 1e-6); err != nil {
		t.Fatalf("solution fails its own requirements: %v", err)
	}
	// Both success chains sum to 1 and differ only in the last arc, so the
	// last arcs must carry equal weight.
	if math.Abs(sol.W[aD]-sol.W[aG]) > 1e-9 {
		t.Errorf("aD=%v aG=%v should be equal (symmetric solutions)", sol.W[aD], sol.W[aG])
	}
	// The failed chain must be explained by an infinity on one of its arcs.
	if !sol.Infinite[aR2] && !sol.Infinite[aF2] {
		t.Error("failed chain has no infinite arc")
	}
	// No infinite arc may be used by a success chain.
	for _, a := range []kb.Arc{aR1, aF1, aD, aG} {
		if sol.Infinite[a] {
			t.Errorf("success arc %v marked infinite", a)
		}
	}
}

func TestPaperFig3AssignmentIsValid(t *testing.T) {
	// The paper's own stated assignment: p=1 (w=0) for the rule-1 arc and
	// both f(sam,larry) arcs, p=1/2 (w=1) for den/doug, p=0 (w=inf) for
	// the rule-2 arc. Check it satisfies the section-4 requirements.
	sol := &Solution{
		W:        map[kb.Arc]float64{aR1: 0, aF1: 0, aD: 1, aG: 1, aF2: 0},
		Infinite: map[kb.Arc]bool{aR2: true},
		Target:   1,
	}
	if err := sol.Check(fig3Outcomes(), 1e-9); err != nil {
		t.Errorf("paper's assignment rejected: %v", err)
	}
}

func TestSolveNoSuccesses(t *testing.T) {
	out := []Outcome{{Chain: []kb.Arc{arc(0, 0, 1)}, Success: false}}
	sol, err := Solve(out)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Infinite[arc(0, 0, 1)] {
		t.Error("lone failed chain arc should be infinite")
	}
	if sol.Target != 0 {
		t.Errorf("target = %v", sol.Target)
	}
}

func TestSolvePathologicalCase(t *testing.T) {
	// Section 4: "if an unsuccessful query has only arc A... but A is an
	// arc in a successful solution... there are no weights."
	a := arc(0, 0, 1)
	out := []Outcome{
		{Chain: []kb.Arc{a}, Success: true},
		{Chain: []kb.Arc{a}, Success: false},
	}
	if _, err := Solve(out); err != ErrNoWeights {
		t.Errorf("got %v, want ErrNoWeights", err)
	}
}

func TestSolveSingleSolution(t *testing.T) {
	// One solution => probability 1 on its chain => all weights 0.
	out := []Outcome{{Chain: []kb.Arc{arc(0, 0, 1), arc(1, 0, 2)}, Success: true}}
	sol, err := Solve(out)
	if err != nil {
		t.Fatal(err)
	}
	for a, w := range sol.W {
		if math.Abs(w) > 1e-9 {
			t.Errorf("arc %v weight %v, want 0", a, w)
		}
	}
}

func TestSolveSharedPrefix(t *testing.T) {
	// Four solutions sharing a prefix arc: prefix weight + leaf weight = 2.
	p := arc(0, 0, 1)
	leaves := []kb.Arc{arc(1, 0, 2), arc(1, 0, 3), arc(1, 0, 4), arc(1, 0, 5)}
	var out []Outcome
	for _, l := range leaves {
		out = append(out, Outcome{Chain: []kb.Arc{p, l}, Success: true})
	}
	sol, err := Solve(out)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Target != 2 {
		t.Fatalf("target = %v, want 2", sol.Target)
	}
	if err := sol.Check(out, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Leaves are symmetric, so they must carry equal weight.
	for _, l := range leaves[1:] {
		if math.Abs(sol.W[l]-sol.W[leaves[0]]) > 1e-6 {
			t.Errorf("asymmetric leaf weights: %v vs %v", sol.W[l], sol.W[leaves[0]])
		}
	}
}

func TestSolveNonNegative(t *testing.T) {
	// Imbalanced system: a 1-arc chain and a 3-arc chain. All weights must
	// stay >= 0 (probabilities at most 1).
	out := []Outcome{
		{Chain: []kb.Arc{arc(0, 0, 1)}, Success: true},
		{Chain: []kb.Arc{arc(0, 0, 2), arc(2, 0, 3), arc(3, 0, 4)}, Success: true},
	}
	sol, err := Solve(out)
	if err != nil {
		t.Fatal(err)
	}
	for a, w := range sol.W {
		if w < 0 {
			t.Errorf("arc %v has negative weight %v", a, w)
		}
	}
	if err := sol.Check(out, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestSolveInfinityPrefersLeaf(t *testing.T) {
	// Failed chain with two free arcs: the leaf-most must take infinity.
	rootArc, leafArc := arc(0, 0, 1), arc(1, 0, 2)
	out := []Outcome{{Chain: []kb.Arc{rootArc, leafArc}, Success: false}}
	sol, err := Solve(out)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Infinite[leafArc] || sol.Infinite[rootArc] {
		t.Errorf("infinity placement = %v", sol.Infinite)
	}
}

func TestSolveSharedFailureArcAvoided(t *testing.T) {
	// The leaf arc is shared with a success; infinity must go to the arc
	// below the root instead.
	shared := arc(1, 0, 2)
	other := arc(0, 0, 9)
	out := []Outcome{
		{Chain: []kb.Arc{arc(0, 0, 1), shared}, Success: false},
		{Chain: []kb.Arc{other, shared}, Success: true},
	}
	sol, err := Solve(out)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Infinite[shared] {
		t.Error("shared arc must not be infinite")
	}
	if !sol.Infinite[arc(0, 0, 1)] {
		t.Error("free arc of failed chain should be infinite")
	}
}

func TestApplyAndDistance(t *testing.T) {
	sol, err := Solve(fig3Outcomes())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 16, A: 64}
	tab := NewTable(cfg)
	sol.Apply(tab)
	// Success chains should now be bound-equal at N.
	b1 := ChainBound(tab, []kb.Arc{aR1, aF1, aD})
	b2 := ChainBound(tab, []kb.Arc{aR1, aF1, aG})
	if math.Abs(b1-cfg.N) > 1e-6 || math.Abs(b2-cfg.N) > 1e-6 {
		t.Errorf("applied bounds = %v, %v; want %v", b1, b2, cfg.N)
	}
	// A table holding the solution itself has distance ~0 and agrees on
	// all infinities.
	rms, inf := sol.Distance(tab)
	if rms > 1e-6 {
		t.Errorf("rms distance to itself = %v", rms)
	}
	if inf != 1 {
		t.Errorf("infinity agreement = %v, want 1", inf)
	}
}

func TestDistanceDisagreement(t *testing.T) {
	sol, err := Solve(fig3Outcomes())
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(DefaultConfig())
	// Table knows nothing: infinity agreement 0 (solver found >= 1 inf).
	if len(sol.Infinite) == 0 {
		t.Skip("solver found no infinities")
	}
	_, inf := sol.Distance(tab)
	if inf != 0 {
		t.Errorf("agreement = %v, want 0 for empty table", inf)
	}
}

func BenchmarkSolveFig3(b *testing.B) {
	out := fig3Outcomes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWide(b *testing.B) {
	// 64 solutions sharing structure: a moderately sized linear system.
	var out []Outcome
	for i := 0; i < 64; i++ {
		out = append(out, Outcome{
			Chain:   []kb.Arc{arc(0, 0, 1+i%4), arc(1, 0, 10+i%8), arc(2, 0, 20+i)},
			Success: true,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(out); err != nil {
			b.Fatal(err)
		}
	}
}
