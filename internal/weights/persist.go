package weights

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"blog/internal/kb"
)

// The persistence format is line-oriented text, one learned arc per line:
//
//	# blog-weights v1 N=<float> A=<int>
//	<caller> <pos> <callee> <kind> <weight>
//
// Only learned (non-Unknown) state is stored; unknown arcs are implicit.
// The format survives program edits gracefully: arcs whose coordinates no
// longer resolve simply go unused.

const persistHeader = "# blog-weights v1"

// WriteTo serializes the table. Arcs are sorted for reproducible output.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	snap := t.Snapshot()
	arcs := make([]kb.Arc, 0, len(snap))
	for a := range snap {
		arcs = append(arcs, a)
	}
	sort.Slice(arcs, func(i, j int) bool { return arcLess(arcs[i], arcs[j]) })
	var n int64
	c, err := fmt.Fprintf(w, "%s N=%g A=%d\n", persistHeader, t.cfg.N, t.cfg.A)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, a := range arcs {
		e := snap[a]
		c, err := fmt.Fprintf(w, "%d %d %d %d %g\n", a.Caller, a.Pos, a.Callee, e.Kind, e.W)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadTable parses a table previously written by WriteTo.
func ReadTable(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("weights: empty input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, persistHeader) {
		return nil, fmt.Errorf("weights: bad header %q", header)
	}
	cfg := DefaultConfig()
	for _, f := range strings.Fields(header[len(persistHeader):]) {
		switch {
		case strings.HasPrefix(f, "N="):
			v, err := strconv.ParseFloat(f[2:], 64)
			if err != nil {
				return nil, fmt.Errorf("weights: bad N in header: %w", err)
			}
			cfg.N = v
		case strings.HasPrefix(f, "A="):
			v, err := strconv.Atoi(f[2:])
			if err != nil {
				return nil, fmt.Errorf("weights: bad A in header: %w", err)
			}
			cfg.A = v
		default:
			return nil, fmt.Errorf("weights: unknown header field %q", f)
		}
	}
	t := NewTable(cfg)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 5 {
			return nil, fmt.Errorf("weights: line %d: want 5 fields, got %d", line, len(fields))
		}
		caller, err1 := strconv.Atoi(fields[0])
		pos, err2 := strconv.Atoi(fields[1])
		callee, err3 := strconv.Atoi(fields[2])
		kind, err4 := strconv.Atoi(fields[3])
		w, err5 := strconv.ParseFloat(fields[4], 64)
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return nil, fmt.Errorf("weights: line %d: %w", line, err)
			}
		}
		a := kb.Arc{Caller: kb.ClauseID(caller), Pos: pos, Callee: kb.ClauseID(callee)}
		switch Kind(kind) {
		case Known:
			t.Set(a, w)
		case Infinite:
			t.SetInfinite(a)
		default:
			return nil, fmt.Errorf("weights: line %d: invalid kind %d", line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
