// Package weights implements the B-LOG weighting scheme: the
// information-theoretic bound of section 4 of the paper and the practical
// weight-maintenance heuristic of section 5.
//
// Every arc k of the search space carries an (unnormalized) probability
// p(k) of taking part in a successful solution; its weight is
// W(k) = -log2 p(k) and the bound of a chain is the sum of its arc
// weights. All successful chains share one bound, failed chains have
// infinite bound, and the bound grows monotonically from root to leaf —
// the three requirements of a branch-and-bound formulation.
//
// The practical scheme fixes a constant N (the bound every successful
// chain is steered towards) and codes the two special states by value,
// exactly as the paper prescribes:
//
//	unknown  = N+1      (worse than any freshly known solution)
//	infinity = A*N      (A = longest chain the machine accepts)
//
// On a failed chain, the unknown weight nearest the leaf becomes infinite.
// On a successful chain with known-weight sum M and k unknown-or-infinite
// arcs: if M > N the k arcs get 0, otherwise each gets (N-M)/k, making the
// chain's bound exactly N.
package weights

import (
	"fmt"
	"sync"

	"blog/internal/kb"
)

// Kind classifies an arc weight.
type Kind uint8

const (
	// Unknown: never updated by a search; valued N+1.
	Unknown Kind = iota
	// Known: set by a successful search.
	Known
	// Infinite: set by a failed search; valued A*N.
	Infinite
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Unknown:
		return "unknown"
	case Known:
		return "known"
	case Infinite:
		return "infinite"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Config fixes the constants of the section-5 coding.
type Config struct {
	// N is the bound successful chains are steered to. The paper sets it
	// arbitrarily; 16 keeps (N-M)/k divisions well away from rounding.
	N float64
	// A bounds the longest chain, so A*N codes infinity.
	A int
}

// DefaultConfig matches the defaults used throughout the experiments.
func DefaultConfig() Config { return Config{N: 16, A: 64} }

// Unknown returns the coded value of an unknown weight (N+1).
func (c Config) UnknownWeight() float64 { return c.N + 1 }

// InfiniteWeight returns the coded value of infinity (A*N).
func (c Config) InfiniteWeight() float64 { return float64(c.A) * c.N }

// Store is the read interface the search engine uses to compute bounds,
// plus the two update entry points of section 5. Implementations must be
// safe for concurrent use: parallel workers read weights while completed
// chains record results.
type Store interface {
	// Weight returns the bound increment for arc a under the coding above.
	Weight(a kb.Arc) float64
	// State returns the arc's kind and, for Known arcs, the learned value.
	State(a kb.Arc) (Kind, float64)
	// RecordSuccess applies the success rule to a root-to-leaf chain.
	RecordSuccess(chain []kb.Arc)
	// RecordFailure applies the failure rule to a root-to-leaf chain.
	RecordFailure(chain []kb.Arc)
	// Config returns the coding constants.
	Config() Config
}

// Table is the global weight database of figure 4: a mutable map from arc
// to learned weight. The zero value is not usable; call NewTable.
type Table struct {
	cfg Config
	mu  sync.RWMutex
	m   map[kb.Arc]entry
}

type entry struct {
	w    float64
	kind Kind
}

// NewTable returns an empty weight table with the given coding constants.
func NewTable(cfg Config) *Table {
	return &Table{cfg: cfg, m: make(map[kb.Arc]entry)}
}

// Config implements Store.
func (t *Table) Config() Config { return t.cfg }

// Weight implements Store.
func (t *Table) Weight(a kb.Arc) float64 {
	t.mu.RLock()
	e, ok := t.m[a]
	t.mu.RUnlock()
	if !ok {
		return t.cfg.UnknownWeight()
	}
	switch e.kind {
	case Infinite:
		return t.cfg.InfiniteWeight()
	default:
		return e.w
	}
}

// State implements Store.
func (t *Table) State(a kb.Arc) (Kind, float64) {
	t.mu.RLock()
	e, ok := t.m[a]
	t.mu.RUnlock()
	if !ok {
		return Unknown, t.cfg.UnknownWeight()
	}
	return e.kind, e.w
}

// Set forces an arc to a known weight. It is used to seed experiments and
// by the session merge; searches themselves go through Record*.
func (t *Table) Set(a kb.Arc, w float64) {
	t.mu.Lock()
	t.m[a] = entry{w: w, kind: Known}
	t.mu.Unlock()
}

// SetInfinite forces an arc to the infinite state.
func (t *Table) SetInfinite(a kb.Arc) {
	t.mu.Lock()
	t.m[a] = entry{w: t.cfg.InfiniteWeight(), kind: Infinite}
	t.mu.Unlock()
}

// Forget removes any learned state for the arc, returning it to Unknown.
func (t *Table) Forget(a kb.Arc) {
	t.mu.Lock()
	delete(t.m, a)
	t.mu.Unlock()
}

// Len returns the number of arcs with learned (non-Unknown) state.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// Snapshot copies the learned entries for inspection and merging.
func (t *Table) Snapshot() map[kb.Arc]Learned {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[kb.Arc]Learned, len(t.m))
	for a, e := range t.m {
		out[a] = Learned{W: e.w, Kind: e.kind}
	}
	return out
}

// Learned is an exported (arc weight, kind) pair for snapshots and merges.
type Learned struct {
	W    float64
	Kind Kind
}

// RecordFailure implements the section-5 failure rule: if no arc of the
// chain is already infinite, the unknown arc nearest the leaf becomes
// infinite. When the chain has no unknown arc either (all known), the
// paper leaves the database alone — correcting known weights is deferred
// to session averaging.
func (t *Table) RecordFailure(chain []kb.Arc) {
	if len(chain) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, a := range chain {
		if e, ok := t.m[a]; ok && e.kind == Infinite {
			return // already explains the failure
		}
	}
	// Nearest the leaf = scan from the end.
	for i := len(chain) - 1; i >= 0; i-- {
		a := chain[i]
		if e, ok := t.m[a]; !ok || e.kind == Unknown {
			t.m[a] = entry{w: t.cfg.InfiniteWeight(), kind: Infinite}
			return
		}
	}
}

// RecordSuccess implements the section-5 success rule. Unknown and
// infinite arcs of the chain are (re)set so the chain's bound becomes N:
// to 0 if the known weights already sum above N, else to (N-M)/k each.
func (t *Table) RecordSuccess(chain []kb.Arc) {
	if len(chain) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var m float64
	var open []kb.Arc
	seen := make(map[kb.Arc]bool, len(chain))
	for _, a := range chain {
		e, ok := t.m[a]
		if ok && e.kind == Known {
			m += e.w
			continue
		}
		if seen[a] {
			continue // an arc reused within one chain gets one share
		}
		seen[a] = true
		open = append(open, a)
	}
	if len(open) == 0 {
		return
	}
	w := 0.0
	if m < t.cfg.N {
		w = (t.cfg.N - m) / float64(len(open))
	}
	for _, a := range open {
		t.m[a] = entry{w: w, kind: Known}
	}
}

// Uniform is a Store with every weight equal to 1 and no learning. With a
// uniform store, best-first search degenerates to searching by chain
// length — the uninformed baseline of experiment E1.
type Uniform struct{ cfg Config }

// NewUniform returns a uniform store using cfg only for its coding values.
func NewUniform(cfg Config) *Uniform { return &Uniform{cfg: cfg} }

// Weight implements Store.
func (u *Uniform) Weight(kb.Arc) float64 { return 1 }

// State implements Store.
func (u *Uniform) State(kb.Arc) (Kind, float64) { return Known, 1 }

// RecordSuccess implements Store as a no-op.
func (u *Uniform) RecordSuccess([]kb.Arc) {}

// RecordFailure implements Store as a no-op.
func (u *Uniform) RecordFailure([]kb.Arc) {}

// Config implements Store.
func (u *Uniform) Config() Config { return u.cfg }

// ChainBound sums the store's weights along a chain — the bound B(n) of
// section 4.
func ChainBound(s Store, chain []kb.Arc) float64 {
	var b float64
	for _, a := range chain {
		b += s.Weight(a)
	}
	return b
}
