package weights

import (
	"sync"
	"testing"

	"blog/internal/kb"
)

func TestConditionalFallsBackToMarginal(t *testing.T) {
	c := NewConditional(Config{N: 16, A: 64})
	a := arc(0, 0, 1)
	prev := arc(9, 0, 9)
	if w := c.WeightIn(prev, a); w != c.Config().UnknownWeight() {
		t.Errorf("cold pair weight = %v", w)
	}
	c.Marginal().Set(a, 5)
	if w := c.WeightIn(prev, a); w != 5 {
		t.Errorf("fallback weight = %v, want marginal 5", w)
	}
	if w := c.Weight(a); w != 5 {
		t.Errorf("marginal view = %v", w)
	}
}

func TestConditionalSuccessLearnsPairs(t *testing.T) {
	c := NewConditional(Config{N: 16, A: 64})
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2)}
	c.RecordSuccess(chain)
	// Pairs: (root, a1) and (a1, a2) each get N/2 = 8.
	if k, w := c.StateIn(RootContext, chain[0]); k != Known || w != 8 {
		t.Errorf("root pair = %v %v", k, w)
	}
	if k, w := c.StateIn(chain[0], chain[1]); k != Known || w != 8 {
		t.Errorf("chain pair = %v %v", k, w)
	}
	// Same arc in a different context stays cold.
	if k, _ := c.StateIn(arc(7, 0, 7), chain[1]); k != Unknown {
		t.Error("other-context pair must stay unknown")
	}
	if c.Len() != 2 {
		t.Errorf("pairs learned = %d", c.Len())
	}
}

func TestConditionalFailureIsContextLocal(t *testing.T) {
	// The defining property: a shared arc can be infinite in one context
	// and known-good in another, which the marginal table cannot express.
	c := NewConditional(Config{N: 16, A: 64})
	shared := arc(5, 0, 6)
	badCtx := arc(0, 0, 1)
	goodCtx := arc(0, 0, 2)
	c.RecordFailure([]kb.Arc{badCtx, shared})
	c.RecordSuccess([]kb.Arc{goodCtx, shared})
	if k, _ := c.StateIn(badCtx, shared); k != Infinite {
		t.Error("bad-context pair should be infinite")
	}
	if k, _ := c.StateIn(goodCtx, shared); k != Known {
		t.Error("good-context pair should be known")
	}
	if c.WeightIn(badCtx, shared) <= c.WeightIn(goodCtx, shared) {
		t.Error("bad context must weigh more than good context")
	}
}

func TestConditionalFailureNearestLeaf(t *testing.T) {
	c := NewConditional(Config{N: 16, A: 64})
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2), arc(2, 0, 3)}
	c.RecordFailure(chain)
	if k, _ := c.StateIn(chain[1], chain[2]); k != Infinite {
		t.Error("leaf-most pair should be infinite")
	}
	if k, _ := c.StateIn(RootContext, chain[0]); k != Unknown {
		t.Error("root pair should stay unknown")
	}
	// A second identical failure is already explained.
	c.RecordFailure(chain)
	if k, _ := c.StateIn(chain[0], chain[1]); k != Unknown {
		t.Error("explained failure must not add infinities")
	}
}

func TestConditionalSuccessBoundIsN(t *testing.T) {
	c := NewConditional(Config{N: 16, A: 64})
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2), arc(2, 0, 3), arc(3, 0, 4)}
	c.RecordSuccess(chain)
	var sum float64
	prev := RootContext
	for _, a := range chain {
		sum += c.WeightIn(prev, a)
		prev = a
	}
	if sum != 16 {
		t.Errorf("conditioned chain bound = %v, want N", sum)
	}
}

func TestConditionalEmptyChains(t *testing.T) {
	c := NewConditional(DefaultConfig())
	c.RecordSuccess(nil)
	c.RecordFailure(nil)
	if c.Len() != 0 {
		t.Error("no pairs expected")
	}
}

func TestConditionalConcurrent(t *testing.T) {
	c := NewConditional(DefaultConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				ch := []kb.Arc{arc(g, 0, i%7), arc(i%7, 0, i%5)}
				if i%2 == 0 {
					c.RecordSuccess(ch)
				} else {
					c.RecordFailure(ch)
				}
				c.WeightIn(ch[0], ch[1])
			}
		}(g)
	}
	wg.Wait()
}
