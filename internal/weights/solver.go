package weights

import (
	"errors"
	"math"
	"sort"

	"blog/internal/kb"
)

// Outcome is one complete root-to-leaf chain of the fully-expanded search
// tree, together with whether it ended in a solution. The section-4 theory
// is formulated over the set of all such chains.
type Outcome struct {
	Chain   []kb.Arc
	Success bool
}

// Solution is a theoretical weight assignment produced by Solve.
type Solution struct {
	// W holds finite weights for every arc not in Infinite.
	W map[kb.Arc]float64
	// Infinite holds the arcs assigned probability 0.
	Infinite map[kb.Arc]bool
	// Target is the common bound of successful chains, log2(#solutions).
	Target float64
	// Residual is the maximum absolute deviation of a successful chain's
	// bound from Target after solving.
	Residual float64
	// Iterations is the number of sweeps the solver used.
	Iterations int
}

// ErrNoWeights is returned when the pathological case of section 4 occurs:
// some failed chain consists solely of arcs that successful chains also
// use, so no arc of it may be infinite.
var ErrNoWeights = errors.New("weights: no valid assignment exists (failed chain shares every arc with successful chains)")

// Solve computes a theoretical weight assignment per section 4 of the
// paper: each successful chain's probability is 1/S (S = number of
// successes), so in log space its weights sum to log2(S); failed chains
// must contain an arc of probability 0 (infinite weight).
//
// The system has N equations in M >> N unknowns and generally many
// solutions; Solve finds one by Kaczmarz projection with a non-negativity
// constraint (weights are -log2 of probabilities at most 1). Arcs that
// appear only in failed chains are assigned infinity, preferring the arc
// nearest the leaf of each failed chain, mirroring the section-5 heuristic.
func Solve(outcomes []Outcome) (*Solution, error) {
	var succ, fail [][]kb.Arc
	for _, o := range outcomes {
		if o.Success {
			succ = append(succ, o.Chain)
		} else {
			fail = append(fail, o.Chain)
		}
	}
	usedBySuccess := make(map[kb.Arc]bool)
	for _, ch := range succ {
		for _, a := range ch {
			usedBySuccess[a] = true
		}
	}
	// Assign infinities: every failed chain needs one arc that no
	// successful chain uses; prefer the one nearest the leaf.
	infinite := make(map[kb.Arc]bool)
	for _, ch := range fail {
		already := false
		for _, a := range ch {
			if infinite[a] {
				already = true
				break
			}
		}
		if already {
			continue
		}
		placed := false
		for i := len(ch) - 1; i >= 0; i-- {
			if !usedBySuccess[ch[i]] {
				infinite[ch[i]] = true
				placed = true
				break
			}
		}
		if !placed {
			return nil, ErrNoWeights
		}
	}

	target := 0.0
	if len(succ) > 0 {
		target = math.Log2(float64(len(succ)))
	}
	sol := &Solution{
		W:        make(map[kb.Arc]float64),
		Infinite: infinite,
		Target:   target,
	}
	if len(succ) == 0 {
		return sol, nil
	}

	// Deduplicate arcs per chain occurrence: the equation is over arc
	// occurrence counts (an arc used twice in a chain contributes twice).
	type row struct {
		arcs   []kb.Arc // distinct arcs
		counts []float64
		norm2  float64
	}
	rows := make([]row, 0, len(succ))
	for _, ch := range succ {
		cnt := make(map[kb.Arc]float64)
		for _, a := range ch {
			cnt[a]++
		}
		r := row{}
		for a, c := range cnt {
			r.arcs = append(r.arcs, a)
			r.counts = append(r.counts, c)
			r.norm2 += c * c
		}
		// Deterministic order for reproducible iteration.
		idx := make([]int, len(r.arcs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return arcLess(r.arcs[idx[i]], r.arcs[idx[j]]) })
		arcs := make([]kb.Arc, len(idx))
		counts := make([]float64, len(idx))
		for i, k := range idx {
			arcs[i], counts[i] = r.arcs[k], r.counts[k]
		}
		r.arcs, r.counts = arcs, counts
		rows = append(rows, r)
	}

	// Start from an even split along each chain so short chains do not
	// dominate, then Kaczmarz-project with clamping to >= 0.
	w := sol.W
	for _, r := range rows {
		var tot float64
		for _, c := range r.counts {
			tot += c
		}
		for i, a := range r.arcs {
			if _, ok := w[a]; !ok {
				w[a] = target / tot * 0 // start at 0; projection fills in
			}
			_ = i
		}
	}
	const maxSweeps = 10000
	const tol = 1e-10
	var sweep int
	for sweep = 0; sweep < maxSweeps; sweep++ {
		maxErr := 0.0
		for _, r := range rows {
			var sum float64
			for i, a := range r.arcs {
				sum += r.counts[i] * w[a]
			}
			err := target - sum
			if math.Abs(err) > maxErr {
				maxErr = math.Abs(err)
			}
			if r.norm2 == 0 {
				continue
			}
			step := err / r.norm2
			for i, a := range r.arcs {
				nw := w[a] + step*r.counts[i]
				if nw < 0 {
					nw = 0
				}
				w[a] = nw
			}
		}
		if maxErr < tol {
			break
		}
	}
	sol.Iterations = sweep + 1

	// Residual: worst deviation over success equations.
	for _, r := range rows {
		var sum float64
		for i, a := range r.arcs {
			sum += r.counts[i] * w[a]
		}
		if d := math.Abs(sum - target); d > sol.Residual {
			sol.Residual = d
		}
	}
	return sol, nil
}

func arcLess(a, b kb.Arc) bool {
	if a.Caller != b.Caller {
		return a.Caller < b.Caller
	}
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	return a.Callee < b.Callee
}

// Check verifies that an assignment satisfies the section-4 requirements
// over the outcomes within tolerance: successful chains share bound Target
// and every failed chain contains an infinite arc. It returns the first
// violation found, or nil.
func (s *Solution) Check(outcomes []Outcome, tol float64) error {
	for _, o := range outcomes {
		if o.Success {
			var sum float64
			for _, a := range o.Chain {
				if s.Infinite[a] {
					return errors.New("weights: successful chain contains an infinite arc")
				}
				sum += s.W[a]
			}
			if math.Abs(sum-s.Target) > tol {
				return errors.New("weights: successful chain bound deviates from target")
			}
		} else {
			found := false
			for _, a := range o.Chain {
				if s.Infinite[a] {
					found = true
					break
				}
			}
			if !found {
				return errors.New("weights: failed chain has no infinite arc")
			}
		}
	}
	return nil
}

// Apply copies the theoretical solution into a Table (scaled so that the
// common success bound becomes the table's N), letting experiments compare
// searches guided by learned versus theoretical weights.
func (s *Solution) Apply(t *Table) {
	scale := 1.0
	if s.Target > 0 {
		scale = t.cfg.N / s.Target
	}
	for a, w := range s.W {
		t.Set(a, w*scale)
	}
	for a := range s.Infinite {
		t.SetInfinite(a)
	}
}

// Distance measures how far the table's learned weights are from the
// theoretical solution: the root-mean-square difference over the solution's
// finite arcs after normalizing both sides to mean 1 (the paper only
// claims convergence "proportional to" the theoretical weights), plus the
// fraction of infinite arcs the table agrees on.
func (s *Solution) Distance(t *Table) (rms float64, infAgreement float64) {
	var sw, tw float64
	var n int
	for a, w := range s.W {
		k, v := t.State(a)
		if k != Known {
			continue
		}
		sw += w
		tw += v
		n++
	}
	if n > 0 && sw > 0 && tw > 0 {
		var acc float64
		for a, w := range s.W {
			k, v := t.State(a)
			if k != Known {
				continue
			}
			d := w/(sw/float64(n)) - v/(tw/float64(n))
			acc += d * d
		}
		rms = math.Sqrt(acc / float64(n))
	}
	if len(s.Infinite) > 0 {
		agree := 0
		for a := range s.Infinite {
			if k, _ := t.State(a); k == Infinite {
				agree++
			}
		}
		infAgreement = float64(agree) / float64(len(s.Infinite))
	} else {
		infAgreement = 1
	}
	return rms, infAgreement
}
