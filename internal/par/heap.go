package par

import "blog/internal/engine"

// boundHeap is a binary min-heap of nodes ordered by (Bound, Seq). It is
// not self-locking; callers hold the state mutex. popMax is linear, which
// is fine: it is only used on local lists capped at LocalCap.
type boundHeap struct {
	items []*engine.Node
}

func newBoundHeap() *boundHeap { return &boundHeap{} }

func (h *boundHeap) len() int { return len(h.items) }

func (h *boundHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.Bound != b.Bound {
		return a.Bound < b.Bound
	}
	return a.Seq < b.Seq
}

func (h *boundHeap) swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *boundHeap) push(n *engine.Node) {
	h.items = append(h.items, n)
	h.siftUp(len(h.items) - 1)
}

func (h *boundHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *boundHeap) peek() *engine.Node { return h.items[0] }

func (h *boundHeap) peekOrNil() *engine.Node {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *boundHeap) pop() *engine.Node {
	n := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	h.siftDown(0)
	return n
}

func (h *boundHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// popMax removes and returns the worst-bound node (linear scan over the
// heap array; the max lives among the leaves).
func (h *boundHeap) popMax() *engine.Node {
	worst := 0
	for i := 1; i < len(h.items); i++ {
		if h.less(worst, i) {
			worst = i
		}
	}
	n := h.items[worst]
	last := len(h.items) - 1
	h.items[worst] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	if worst < len(h.items) {
		// The filler may violate either direction relative to its new
		// neighborhood; restore both ways.
		h.siftUp(worst)
		h.siftDown(worst)
	}
	return n
}

func (h *boundHeap) clear() { h.items = h.items[:0] }
