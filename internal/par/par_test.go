package par

import (
	"context"
	"sort"
	"testing"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/term"
	"blog/internal/weights"
	"blog/internal/workload"
)

const fig1 = `
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).
`

func load(t testing.TB, src string) *kb.DB {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func q(t testing.TB, s string) []term.Term {
	t.Helper()
	gs, err := parse.Query(s)
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func uniform() weights.Store { return weights.NewUniform(weights.DefaultConfig()) }

func sortedBindings(res *Result, v string) []string {
	var out []string
	for _, s := range res.Solutions {
		out = append(out, s.Bindings[v].String())
	}
	sort.Strings(out)
	return out
}

func TestSharedHeapFindsAllSolutions(t *testing.T) {
	db := load(t, fig1)
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{Workers: workers, Mode: SharedHeap})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := sortedBindings(res, "G")
		if len(got) != 2 || got[0] != "den" || got[1] != "doug" {
			t.Errorf("workers=%d solutions = %v", workers, got)
		}
		if !res.Exhausted {
			t.Errorf("workers=%d should exhaust", workers)
		}
	}
}

func TestTwoLevelFindsAllSolutions(t *testing.T) {
	db := load(t, fig1)
	for _, d := range []float64{0, 1, 5, 100} {
		res, err := Run(context.Background(), db, uniform(), q(t, "gf(sam,G)"), Options{
			Workers: 4, Mode: TwoLevel, D: d, LocalCap: 4,
		})
		if err != nil {
			t.Fatalf("D=%v: %v", d, err)
		}
		if got := sortedBindings(res, "G"); len(got) != 2 {
			t.Errorf("D=%v solutions = %v", d, got)
		}
	}
}

func TestParallelMatchesSequentialOnLargerTree(t *testing.T) {
	db := load(t, workload.FamilyTree(4, 3))
	goals := q(t, "gf(p0, G)")
	seq, err := search.Run(context.Background(), db, uniform(), goals, search.Options{Strategy: search.BestFirst})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{SharedHeap, TwoLevel} {
		res, err := Run(context.Background(), db, uniform(), q(t, "gf(p0, G)"), Options{Workers: 8, Mode: mode, D: 2})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.Solutions) != len(seq.Solutions) {
			t.Errorf("%v: %d solutions, sequential found %d", mode, len(res.Solutions), len(seq.Solutions))
		}
		// Same solution multiset.
		want := map[string]int{}
		for _, s := range seq.Solutions {
			want[s.Bindings["G"].String()]++
		}
		got := map[string]int{}
		for _, s := range res.Solutions {
			got[s.Bindings["G"].String()]++
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%v: binding %s count %d, want %d", mode, k, got[k], v)
			}
		}
	}
}

func TestParallelNQueens(t *testing.T) {
	db := load(t, workload.NQueens)
	res, err := Run(context.Background(), db, uniform(), q(t, "queens(5, Qs)"), Options{
		Workers: 8, Mode: SharedHeap, MaxDepth: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 10 {
		t.Errorf("5-queens solutions = %d, want 10", len(res.Solutions))
	}
}

func TestMaxSolutionsStopsEarly(t *testing.T) {
	db := load(t, workload.FamilyTree(4, 3))
	res, err := Run(context.Background(), db, uniform(), q(t, "gf(p0, G)"), Options{
		Workers: 4, MaxSolutions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 {
		t.Errorf("got %d solutions, want exactly 1 after truncation", len(res.Solutions))
	}
	if res.Exhausted {
		t.Error("early stop should not report exhaustion")
	}
}

func TestBudgetStops(t *testing.T) {
	db := load(t, "loop :- loop.")
	_, err := Run(context.Background(), db, uniform(), q(t, "loop"), Options{
		Workers: 4, MaxExpansions: 50, MaxDepth: 1 << 20,
	})
	if err != search.ErrBudget {
		t.Errorf("got %v, want ErrBudget", err)
	}
}

func TestDepthLimitTerminates(t *testing.T) {
	db := load(t, "loop :- loop.")
	res, err := Run(context.Background(), db, uniform(), q(t, "loop"), Options{Workers: 4, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 || res.Stats.DepthCutoffs == 0 {
		t.Errorf("solutions=%d cutoffs=%d", len(res.Solutions), res.Stats.DepthCutoffs)
	}
}

func TestErrorPropagates(t *testing.T) {
	db := load(t, "bad(X) :- Y is X + Z, Y > 0.")
	_, err := Run(context.Background(), db, uniform(), q(t, "bad(1)"), Options{Workers: 4})
	if err == nil {
		t.Error("arithmetic error must propagate")
	}
}

func TestEmptyQueryErrors(t *testing.T) {
	db := load(t, fig1)
	if _, err := Run(context.Background(), db, uniform(), nil, Options{}); err == nil {
		t.Error("empty query must error")
	}
}

func TestTwoLevelMigrationAccounting(t *testing.T) {
	db := load(t, workload.Unbalanced(16, 12))
	res, err := Run(context.Background(), db, uniform(), q(t, "job(X)"), Options{
		Workers: 4, Mode: TwoLevel, D: 0, LocalCap: 2, MaxDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 17 {
		t.Fatalf("solutions = %d, want 17", len(res.Solutions))
	}
	if res.Stats.NetworkAcquires == 0 {
		t.Error("two-level run should touch the network at least for the root")
	}
	if res.Stats.LocalPops == 0 {
		t.Error("two-level run should also work locally")
	}
}

func TestHigherDReducesMigrations(t *testing.T) {
	// With a huge D, workers almost never take network chains while they
	// have local work; migrations (excluding idle acquisitions) drop
	// relative to D=0. Run a few times to smooth scheduling noise.
	db := load(t, workload.FamilyTree(5, 3))
	var lowD, highD uint64
	for i := 0; i < 3; i++ {
		r0, err := Run(context.Background(), db, uniform(), q(t, "anc(p0, X)"), Options{
			Workers: 4, Mode: TwoLevel, D: 0, LocalCap: 8, MaxDepth: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		r1, err := Run(context.Background(), db, uniform(), q(t, "anc(p0, X)"), Options{
			Workers: 4, Mode: TwoLevel, D: 1e6, LocalCap: 8, MaxDepth: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(r0.Solutions) != len(r1.Solutions) {
			t.Fatalf("solution count differs: %d vs %d", len(r0.Solutions), len(r1.Solutions))
		}
		lowD += r0.Stats.Migrations
		highD += r1.Stats.Migrations
	}
	if highD > lowD {
		t.Errorf("migrations with D=inf (%d) exceed D=0 (%d)", highD, lowD)
	}
}

func TestPerWorkerStatsSum(t *testing.T) {
	db := load(t, workload.FamilyTree(4, 3))
	res, err := Run(context.Background(), db, uniform(), q(t, "anc(p0, X)"), Options{
		Workers: 4, Mode: SharedHeap, MaxDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, e := range res.Stats.PerWorkerExpanded {
		sum += e
	}
	if sum != res.Stats.Expanded {
		t.Errorf("per-worker sum %d != total %d", sum, res.Stats.Expanded)
	}
	if len(res.Stats.PerWorkerExpanded) != 4 {
		t.Errorf("per-worker slots = %d", len(res.Stats.PerWorkerExpanded))
	}
}

func TestParallelLearningIsRaceFree(t *testing.T) {
	// Learning from many workers concurrently; run under -race.
	db := load(t, workload.DeepFailure(8, 5))
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	res, err := Run(context.Background(), db, tab, q(t, "top(W)"), Options{Workers: 8, Learn: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d", len(res.Solutions))
	}
	if tab.Len() == 0 {
		t.Error("learning should populate the table")
	}
}

func TestDifferentialParallelVsSequentialRandomPrograms(t *testing.T) {
	// The parallel engines must find exactly the sequential solution
	// multiset on stratified random programs.
	for seed := int64(1); seed <= 8; seed++ {
		src := workload.RandomProgram(3, 3, 4, 4, seed)
		db := load(t, src)
		seqRes, err := search.Run(context.Background(), db, uniform(), q(t, "l2p0(Q,R)"),
			search.Options{Strategy: search.DFS, MaxDepth: 24})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := map[string]int{}
		for _, s := range seqRes.Solutions {
			want[s.Format(seqRes.QueryVars)]++
		}
		for _, mode := range []Mode{SharedHeap, TwoLevel} {
			res, err := Run(context.Background(), db, uniform(), q(t, "l2p0(Q,R)"), Options{
				Workers: 6, Mode: mode, D: 2, LocalCap: 4, MaxDepth: 24,
			})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, mode, err)
			}
			got := map[string]int{}
			for _, s := range res.Solutions {
				got[s.Format(res.QueryVars)]++
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d %v: %d distinct solutions, want %d", seed, mode, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("seed %d %v: %q count %d, want %d", seed, mode, k, got[k], v)
				}
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if SharedHeap.String() != "shared-heap" || TwoLevel.String() != "two-level" {
		t.Error("mode names")
	}
}

func TestBoundHeapOrdering(t *testing.T) {
	h := newBoundHeap()
	bounds := []float64{5, 1, 4, 1, 9, 2, 6}
	for i, b := range bounds {
		h.push(&engine.Node{Bound: b, Seq: uint64(i)})
	}
	var got []float64
	for h.len() > 0 {
		got = append(got, h.pop().Bound)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("heap pops out of order: %v", got)
		}
	}
}

func TestBoundHeapPopMax(t *testing.T) {
	h := newBoundHeap()
	for i, b := range []float64{1, 8, 2, 9, 9, 3} {
		h.push(&engine.Node{Bound: b, Seq: uint64(i)})
	}
	if got := h.popMax().Bound; got != 9 {
		t.Fatalf("popMax = %v, want 9", got)
	}
	// Remaining pops must still be ordered (heap property preserved).
	var got []float64
	for h.len() > 0 {
		got = append(got, h.pop().Bound)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("heap broken after popMax: %v", got)
		}
	}
}

func TestBoundHeapSeqTiebreak(t *testing.T) {
	h := newBoundHeap()
	h.push(&engine.Node{Bound: 1, Seq: 2})
	h.push(&engine.Node{Bound: 1, Seq: 1})
	if h.pop().Seq != 1 {
		t.Error("equal bounds must pop in Seq order")
	}
}

func BenchmarkParallelNQueens6(b *testing.B) {
	db := load(b, workload.NQueens)
	goals, _ := parse.Query("queens(6, Qs)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), db, uniform(), goals, Options{Workers: 8, MaxDepth: 512})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Solutions) != 4 {
			b.Fatalf("6-queens solutions = %d", len(res.Solutions))
		}
	}
}
