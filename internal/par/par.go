// Package par implements the parallel B-LOG machine of sections 3 and 6 as
// a live goroutine engine: n workers (the paper's processors) expand
// OR-tree chains concurrently, coordinated by a minimum-seeking network.
//
// Two scheduling modes are provided:
//
//   - SharedHeap: one global open list ordered by bound. This is the
//     idealized zero-cost network — every free processor always receives
//     the global minimum chain. It is the D=0 limit of the paper's design
//     and the ablation baseline.
//
//   - TwoLevel: each worker keeps a local open list and the global list
//     plays the role of the minimum-seeking network. Exactly as described
//     at the end of section 6: when a task frees up, it acquires a chain
//     through the network only if the network minimum is at least D lower
//     than its local minimum, else it works on its own minimum chain. D
//     reflects the communication cost of moving a chain. Workers spill
//     their worst chains to the network when their local list grows past
//     LocalCap — and whenever peers are starving — which also implements
//     the initial breadth-first fill: the first worker's early children
//     overflow to the network where idle processors pick them up.
//
// The network minimum is published in an atomic register (the minimum-
// seeking circuit's output), so a worker holding local work applies the D
// rule without locking; the global list's mutex is only taken to migrate,
// spill, or wait.
package par

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"blog/internal/engine"
	"blog/internal/kb"
	"blog/internal/obs"
	"blog/internal/search"
	"blog/internal/term"
	"blog/internal/weights"
)

// Mode selects the scheduling discipline.
type Mode int

const (
	// SharedHeap uses a single global bound-ordered open list.
	SharedHeap Mode = iota
	// TwoLevel uses per-worker open lists plus the D-threshold network.
	TwoLevel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == TwoLevel {
		return "two-level"
	}
	return "shared-heap"
}

// Options configures a parallel run.
type Options struct {
	// Workers is the number of simulated processors (default 4).
	Workers int
	Mode    Mode
	// D is the migration threshold of section 6: a freed worker takes the
	// network chain only if networkMin <= localMin - D. Ignored by
	// SharedHeap.
	D float64
	// LocalCap bounds a worker's local open list in TwoLevel mode; excess
	// chains spill to the network (default 64).
	LocalCap int
	// MaxSolutions stops the run after this many solutions; 0 finds all.
	MaxSolutions int
	// MaxExpansions bounds total work; 0 means search.DefaultMaxExpansions.
	MaxExpansions uint64
	// Learn applies the section-5 weight rules as chains complete.
	Learn bool
	// MaxDepth bounds chain length; 0 uses the store's A constant.
	MaxDepth int
	// OccursCheck enables sound unification in every worker's expander.
	OccursCheck bool
	// Tabler, when non-nil, resolves declared tabled predicates against
	// memoized answer tables shared by all workers; the implementation
	// (internal/table) serializes production and lets workers consume
	// completed tables lock-free.
	Tabler engine.Tabler
	// NoVM forces the tree-walking resolution path in every worker.
	NoVM bool
	// Prof, when non-nil, accumulates per-predicate profile counters from
	// every worker; its counters are atomic, so the workers share it
	// directly.
	Prof *obs.Profiler
	// Live, when non-nil, is the run's in-flight inspector entry; the
	// shared expansion counter is synced into it periodically.
	Live *obs.Live
}

// Stats aggregates counters across workers.
type Stats struct {
	Expanded     uint64
	Generated    uint64
	Failures     uint64
	DepthCutoffs uint64
	Solutions    uint64
	// Migrations counts chains acquired through the network by a worker
	// that still had local work (true steals triggered by the D rule).
	Migrations uint64
	// NetworkAcquires counts every pop from the global list.
	NetworkAcquires uint64
	// LocalPops counts chains taken from a worker's own list.
	LocalPops uint64
	// Spills counts chains pushed to the network by overflowing workers.
	Spills uint64
	// PerWorkerExpanded records each worker's expansion count, the
	// utilization-balance signal for experiment E5.
	PerWorkerExpanded []uint64
	// VMDispatched counts goals resolved on the compiled bytecode path
	// across all workers.
	VMDispatched uint64
}

// Result is the outcome of a parallel run.
type Result struct {
	Solutions []engine.Solution
	Stats     Stats
	QueryVars []*term.Var
	// Exhausted means the whole tree was searched.
	Exhausted bool
}

// Run searches goals over db with opt.Workers parallel workers. When ctx
// is cancelled, every worker stops promptly — including workers blocked on
// the network condvar, which a watcher goroutine wakes — and Run returns
// the context's error alongside the partial result.
func Run(ctx context.Context, db *kb.DB, ws weights.Store, goals []term.Term, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(goals) == 0 {
		return nil, errors.New("par: empty query")
	}
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.LocalCap <= 0 {
		opt.LocalCap = 64
	}
	maxExp := opt.MaxExpansions
	if maxExp == 0 {
		maxExp = search.DefaultMaxExpansions
	}

	var queryVars []*term.Var
	for _, g := range goals {
		queryVars = term.Vars(g, queryVars)
	}

	st := &state{opt: opt, maxExp: maxExp, global: newBoundHeap(), ws: ws, queryVars: queryVars}
	st.cond = sync.NewCond(&st.mu)
	st.globalMin.Store(math.Float64bits(math.Inf(1)))

	exps := make([]*engine.Expander, opt.Workers)
	for i := range exps {
		e := engine.NewExpander(db, ws)
		e.Ctx = ctx
		e.OccursCheck = opt.OccursCheck
		e.Tabler = opt.Tabler
		e.NoVM = opt.NoVM
		e.Prof = opt.Prof
		if opt.MaxDepth > 0 {
			e.MaxDepth = opt.MaxDepth
		}
		exps[i] = e
	}

	root := exps[0].Root(goals)
	st.outstanding.Store(1)
	st.global.push(root)
	st.publishMin()

	var wg sync.WaitGroup
	workers := make([]*workerState, opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		workers[w] = &workerState{id: w, exp: exps[w]}
		if opt.Mode == TwoLevel {
			workers[w].local = newBoundHeap()
		}
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			st.worker(w)
		}(workers[w])
	}
	// The cancellation watcher: a worker blocked in cond.Wait cannot select
	// on ctx.Done(), so this goroutine converts cancellation into the
	// engine's own stop-and-broadcast protocol. Run joins it before reading
	// shared state so it never writes st.err after the return.
	watcherQuit := make(chan struct{})
	watcherExited := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			defer close(watcherExited)
			select {
			case <-ctx.Done():
				st.fail(ctx.Err())
			case <-watcherQuit:
			}
		}()
	} else {
		close(watcherExited)
	}
	wg.Wait()
	close(watcherQuit)
	<-watcherExited

	res := &Result{QueryVars: queryVars, Solutions: st.solutions}
	res.Stats.PerWorkerExpanded = make([]uint64, opt.Workers)
	for i, w := range workers {
		// Charge each worker's trailing profile interval before reading
		// its counters; the workers have all exited by now.
		w.exp.ProfFlush()
		res.Stats.PerWorkerExpanded[i] = w.expanded
		res.Stats.Expanded += w.expanded
		res.Stats.Generated += w.generated
		res.Stats.Failures += w.failures
		res.Stats.DepthCutoffs += w.depthCutoffs
		res.Stats.Migrations += w.migrations
		res.Stats.NetworkAcquires += w.netAcquires
		res.Stats.LocalPops += w.localPops
		res.Stats.Spills += w.spills
		res.Stats.VMDispatched += w.exp.VMDispatched
	}
	res.Stats.Solutions = uint64(len(res.Solutions))
	res.Exhausted = st.exhausted.Load()
	if opt.MaxSolutions > 0 && len(res.Solutions) > opt.MaxSolutions {
		res.Solutions = res.Solutions[:opt.MaxSolutions]
	}
	return res, st.err
}

// state is the shared coordination state of one run.
type state struct {
	opt       Options
	maxExp    uint64
	ws        weights.Store
	queryVars []*term.Var

	mu     sync.Mutex
	cond   *sync.Cond
	global *boundHeap // guarded by mu
	// waiting counts workers blocked on the network; atomic so the spill
	// heuristic can read it without the lock.
	waiting atomic.Int32
	err     error // guarded by mu
	// solutions guarded by mu.
	solutions []engine.Solution

	// globalMin publishes the network's minimum bound (float64 bits,
	// +Inf when the global list is empty): the min-seeking circuit.
	globalMin atomic.Uint64
	// outstanding counts chains alive anywhere; 0 means exhaustion.
	outstanding atomic.Int64
	// expandedTotal enforces the budget across workers.
	expandedTotal atomic.Uint64
	stop          atomic.Bool
	exhausted     atomic.Bool
}

// workerState is one worker's private accounting.
type workerState struct {
	id    int
	exp   *engine.Expander
	local *boundHeap // nil in SharedHeap mode

	expanded     uint64
	generated    uint64
	failures     uint64
	depthCutoffs uint64
	migrations   uint64
	netAcquires  uint64
	localPops    uint64
	spills       uint64
}

// publishMin refreshes the atomic network-minimum register. Caller holds mu.
func (s *state) publishMin() {
	if n := s.global.peekOrNil(); n != nil {
		s.globalMin.Store(math.Float64bits(n.Bound))
	} else {
		s.globalMin.Store(math.Float64bits(math.Inf(1)))
	}
}

func (s *state) netMin() float64 {
	return math.Float64frombits(s.globalMin.Load())
}

// setStop halts the run and wakes sleepers.
func (s *state) setStop() {
	s.stop.Store(true)
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fail records err (first writer wins) and halts the run.
func (s *state) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.setStop()
}

// worker is the processor main loop.
func (s *state) worker(w *workerState) {
	for {
		if s.stop.Load() {
			s.abandonLocal(w)
			return
		}
		// Fast path (TwoLevel): local work, and the network min does not
		// beat it by D. No locks.
		if w.local != nil && w.local.len() > 0 {
			lm := w.local.peek().Bound
			if !(s.netMin() <= lm-s.opt.D) {
				n := w.local.pop()
				w.localPops++
				s.process(w, n)
				continue
			}
		}
		// Slow path: migrate, drain, wait, or finish.
		n, ok := s.acquireSlow(w)
		if !ok {
			s.abandonLocal(w)
			return
		}
		s.process(w, n)
	}
}

// abandonLocal returns a stopping worker's local chains to the ledger.
func (s *state) abandonLocal(w *workerState) {
	if w.local == nil || w.local.len() == 0 {
		return
	}
	n := int64(w.local.len())
	w.local.clear()
	if s.outstanding.Add(-n) == 0 {
		s.declareExhausted()
	}
}

// declareExhausted ends the run because no chains remain.
func (s *state) declareExhausted() {
	if !s.stop.Load() {
		s.exhausted.Store(true)
	}
	s.setStop()
}

// acquireSlow takes the global lock to migrate a chain, fall back to local
// work, or wait for someone to spill. ok=false ends the worker.
func (s *state) acquireSlow(w *workerState) (*engine.Node, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stop.Load() {
			return nil, false
		}
		var localMin *engine.Node
		if w.local != nil && w.local.len() > 0 {
			localMin = w.local.peek()
		}
		globalMin := s.global.peekOrNil()
		switch {
		case globalMin != nil && (localMin == nil || globalMin.Bound <= localMin.Bound-s.opt.D):
			n := s.global.pop()
			s.publishMin()
			w.netAcquires++
			if localMin != nil {
				w.migrations++
			}
			return n, true
		case localMin != nil:
			w.localPops++
			return w.local.pop(), true
		}
		if s.outstanding.Load() == 0 {
			s.exhausted.Store(true)
			s.stop.Store(true)
			s.cond.Broadcast()
			return nil, false
		}
		s.waiting.Add(1)
		s.cond.Wait()
		s.waiting.Add(-1)
	}
}

// process expands or finalizes one chain and distributes its children.
func (s *state) process(w *workerState, n *engine.Node) {
	if n.IsSolution() {
		sol := engine.Extract(n, s.queryVars)
		if s.opt.Learn {
			s.ws.RecordSuccess(sol.Chain)
		}
		s.mu.Lock()
		s.solutions = append(s.solutions, sol)
		hitCap := s.opt.MaxSolutions > 0 && len(s.solutions) >= s.opt.MaxSolutions
		s.mu.Unlock()
		if hitCap {
			s.setStop()
			return
		}
		if s.outstanding.Add(-1) == 0 {
			s.declareExhausted()
		}
		return
	}

	total := s.expandedTotal.Add(1)
	if total > s.maxExp {
		s.fail(search.ErrBudget)
		return
	}
	if l := s.opt.Live; l != nil && total&1023 == 0 {
		l.Expanded.Store(total)
	}
	w.expanded++

	children, err := s.exp(w, n)
	if err != nil && err != engine.ErrDepthLimit {
		s.fail(err)
		return
	}
	if err == engine.ErrDepthLimit {
		w.depthCutoffs++
	}

	if len(children) == 0 {
		w.failures++
		if s.opt.Learn {
			s.ws.RecordFailure(n.Chain.Slice())
		}
		if s.outstanding.Add(-1) == 0 {
			s.declareExhausted()
		}
		return
	}
	w.generated += uint64(len(children))
	s.outstanding.Add(int64(len(children) - 1))

	if w.local == nil {
		// SharedHeap: everything goes to the global list.
		s.mu.Lock()
		for _, c := range children {
			s.global.push(c)
		}
		s.publishMin()
		if s.waiting.Load() > 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		return
	}
	// TwoLevel: keep children locally; spill overflow and feed starving
	// peers. A stale starvation read only delays one spill by a step.
	for _, c := range children {
		w.local.push(c)
	}
	needSpill := w.local.len() > s.opt.LocalCap
	starving := s.waiting.Load() > 0 && w.local.len() > 1
	if !needSpill && !starving {
		return
	}
	s.mu.Lock()
	for w.local.len() > s.opt.LocalCap {
		s.global.push(w.local.popMax())
		w.spills++
	}
	// Feed one chain per starving worker so idle peers wake with work.
	for i := s.waiting.Load(); i > 0 && w.local.len() > 1; i-- {
		s.global.push(w.local.popMax())
		w.spills++
	}
	s.publishMin()
	if s.waiting.Load() > 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// exp runs the expander; split out so workerState owns its expander.
func (s *state) exp(w *workerState, n *engine.Node) ([]*engine.Node, error) {
	return w.exp.Expand(n)
}
