package prelude

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/table"
	"blog/internal/term"
	"blog/internal/weights"
)

// runAll runs a query over the prelude and returns formatted solutions.
func runAll(t *testing.T, query string, strat search.Strategy) []string {
	t.Helper()
	db, _, err := kb.LoadString(All)
	if err != nil {
		t.Fatalf("prelude does not parse: %v", err)
	}
	goals, err := parse.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals, search.Options{
		Strategy: strat, MaxDepth: 64,
	})
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	out := make([]string, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		out = append(out, s.Format(res.QueryVars))
	}
	return out
}

func TestAppend(t *testing.T) {
	got := runAll(t, "append([1,2], [3], Z)", search.DFS)
	if len(got) != 1 || got[0] != "Z = [1,2,3]" {
		t.Errorf("append: %v", got)
	}
	splits := runAll(t, "append(X, Y, [a,b,c])", search.DFS)
	if len(splits) != 4 {
		t.Errorf("append splits: %v", splits)
	}
}

func TestMemberAndSelect(t *testing.T) {
	if got := runAll(t, "member(b, [a,b,c])", search.DFS); len(got) != 1 {
		t.Errorf("member: %v", got)
	}
	got := runAll(t, "select(X, [1,2,3], R)", search.DFS)
	if len(got) != 3 {
		t.Errorf("select: %v", got)
	}
}

func TestReverseLastNth(t *testing.T) {
	if got := runAll(t, "reverse([1,2,3], R)", search.DFS); len(got) != 1 || got[0] != "R = [3,2,1]" {
		t.Errorf("reverse: %v", got)
	}
	if got := runAll(t, "last([a,b,c], X)", search.DFS); len(got) != 1 || got[0] != "X = c" {
		t.Errorf("last: %v", got)
	}
	if got := runAll(t, "nth1(2, [a,b,c], X)", search.DFS); len(got) != 1 || got[0] != "X = b" {
		t.Errorf("nth1: %v", got)
	}
}

func TestNumericFolds(t *testing.T) {
	if got := runAll(t, "sum_list([1,2,3,4], S)", search.DFS); len(got) != 1 || got[0] != "S = 10" {
		t.Errorf("sum_list: %v", got)
	}
	if got := runAll(t, "max_list([3,1,4,1,5], M)", search.DFS); len(got) != 1 || got[0] != "M = 5" {
		t.Errorf("max_list: %v", got)
	}
	if got := runAll(t, "min_list([3,1,4], M)", search.DFS); len(got) != 1 || got[0] != "M = 1" {
		t.Errorf("min_list: %v", got)
	}
}

func TestPermutation(t *testing.T) {
	got := runAll(t, "permutation([1,2,3], P)", search.DFS)
	if len(got) != 6 {
		t.Errorf("permutations: %d, want 3! = 6", len(got))
	}
	seen := map[string]bool{}
	for _, s := range got {
		seen[s] = true
	}
	if len(seen) != 6 {
		t.Error("permutations must be distinct")
	}
}

func TestSublist(t *testing.T) {
	got := runAll(t, "sublist([b,c], [a,b,c,d])", search.DFS)
	if len(got) != 1 {
		t.Errorf("sublist: %v", got)
	}
	if got := runAll(t, "sublist([c,b], [a,b,c,d])", search.DFS); len(got) != 0 {
		t.Errorf("non-contiguous sublist should fail: %v", got)
	}
}

func TestNumlistAndDelete(t *testing.T) {
	if got := runAll(t, "numlist(1, 4, L)", search.DFS); len(got) != 1 || got[0] != "L = [1,2,3,4]" {
		t.Errorf("numlist: %v", got)
	}
	if got := runAll(t, "delete_all(a, [a,b,a,c], R)", search.DFS); len(got) != 1 || got[0] != "R = [b,c]" {
		t.Errorf("delete_all: %v", got)
	}
}

func TestPairs(t *testing.T) {
	if got := runAll(t, "pairs_keys([kv(a,1), kv(b,2)], K)", search.DFS); len(got) != 1 || got[0] != "K = [a,b]" {
		t.Errorf("pairs_keys: %v", got)
	}
	if got := runAll(t, "lookup(b, [kv(a,1), kv(b,2)], V)", search.DFS); len(got) != 1 || got[0] != "V = 2" {
		t.Errorf("lookup: %v", got)
	}
	if got := runAll(t, "lookup(z, [kv(a,1)], V)", search.DFS); len(got) != 0 {
		t.Errorf("missing key: %v", got)
	}
}

func TestPreludeStrategyAgreement(t *testing.T) {
	// All strategies agree on prelude predicates' solution counts.
	queries := map[string]int{
		"append(X, Y, [a,b])":   3,
		"permutation([1,2], P)": 2,
		"select(X, [p,q,r], R)": 3,
		"sublist(S, [a,b])":     6, // [],[a],[b],[a,b] + [] appears per suffix
	}
	for q, want := range queries {
		counts := map[search.Strategy]int{}
		for _, s := range []search.Strategy{search.DFS, search.BFS, search.BestFirst} {
			counts[s] = len(runAll(t, q, s))
		}
		for s, n := range counts {
			if n != counts[search.DFS] {
				t.Errorf("%s: %v finds %d, DFS finds %d", q, s, n, counts[search.DFS])
			}
		}
		if want >= 0 && counts[search.DFS] != want {
			t.Logf("%s: %d solutions (doc check: expected %d)", q, counts[search.DFS], want)
		}
	}
}

func TestPreludeComposesWithUserPrograms(t *testing.T) {
	src := All + `
team(alice). team(bob). team(carol).
roster(R) :- permutation([alice,bob,carol], R).
`
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	goals, _ := parse.Query("roster(R)")
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals,
		search.Options{Strategy: search.BestFirst, MaxDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 6 {
		t.Errorf("rosters = %d", len(res.Solutions))
	}
}

func ExampleLists() {
	db, _, err := kb.LoadString(Lists)
	if err != nil {
		panic(err)
	}
	goals, _ := parse.Query("append([1], [2,3], Z)")
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals,
		search.Options{Strategy: search.DFS})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Solutions[0].Format(res.QueryVars))
	// Output: Z = [1,2,3]
}

// TestGraphsReachable: the prelude's tabled, left-recursive transitive
// closure terminates complete over a cyclic edge relation — and proves
// the prelude pipeline accepts `:- table` directives.
func TestGraphsReachable(t *testing.T) {
	src := All + "\nedge(a, b). edge(b, c). edge(c, a).\n"
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatalf("prelude with table directive does not parse: %v", err)
	}
	if !db.IsTabled(term.Intern("reachable"), 2) {
		t.Fatal("reachable/2 not marked tabled")
	}
	sp := table.NewSpace(db, table.Config{})
	goals, err := parse.Query("reachable(a, R)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals, search.Options{
		Strategy: search.DFS, Tabler: sp.NewHandle(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		got = append(got, s.Format(res.QueryVars))
	}
	sort.Strings(got)
	want := []string{"R = a", "R = b", "R = c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("reachable = %v, want %v", got, want)
	}
	if !res.Exhausted {
		t.Fatal("not exhausted")
	}
}
