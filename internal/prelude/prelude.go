// Package prelude provides a small standard library of list and utility
// predicates written in the object language itself, ready to prepend to
// user programs. Everything here runs under any B-LOG search strategy —
// there is no cut, so all definitions are pure Horn clauses whose
// complete solution sets the strategies agree on.
package prelude

// Lists is the list-processing library.
const Lists = `
% append(Xs, Ys, Zs): Zs is Xs ++ Ys.
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

% member(X, Xs): X occurs in Xs.
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

% memberchk-like ground test without cut: use member/2 with MaxSolutions.

% select(X, Xs, Rest): removing one occurrence of X from Xs leaves Rest.
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

% reverse(Xs, Ys) via an accumulator.
reverse(L, R) :- reverse_(L, [], R).
reverse_([], Acc, Acc).
reverse_([H|T], Acc, R) :- reverse_(T, [H|Acc], R).

% last(Xs, X): X is the final element.
last([X], X).
last([_|T], X) :- last(T, X).

% nth1(N, Xs, X): X is the N-th element, 1-based.
nth1(1, [X|_], X).
nth1(N, [_|T], X) :- N > 1, M is N - 1, nth1(M, T, X).

% sum_list / max_list / min_list over integer lists.
sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.
max_list([X], X).
max_list([H|T], M) :- max_list(T, M1), M is max(H, M1).
min_list([X], X).
min_list([H|T], M) :- min_list(T, M1), M is min(H, M1).

% permutation(Xs, Ys): Ys is a permutation of Xs.
permutation([], []).
permutation(L, [H|T]) :- select(H, L, R), permutation(R, T).

% prefix/suffix/sublist relations.
prefix([], _).
prefix([H|T], [H|R]) :- prefix(T, R).
suffix(S, S).
suffix(S, [_|T]) :- suffix(S, T).
sublist(S, L) :- suffix(Suf, L), prefix(S, Suf).

% delete_all(X, Xs, Ys): Ys is Xs with every X removed (ground X).
delete_all(_, [], []).
delete_all(X, [X|T], R) :- delete_all(X, T, R).
delete_all(X, [H|T], [H|R]) :- X \= H, delete_all(X, T, R).

% numlist(L, H, Xs): Xs = [L, L+1, ..., H].
numlist(L, H, [L|T]) :- L < H, L1 is L + 1, numlist(L1, H, T).
numlist(H, H, [H]).
`

// Pairs is a small association-pair library over k-v terms.
const Pairs = `
% pair access over kv(K, V) terms.
pair_key(kv(K, _), K).
pair_value(kv(_, V), V).
pairs_keys([], []).
pairs_keys([kv(K,_)|T], [K|KT]) :- pairs_keys(T, KT).
pairs_values([], []).
pairs_values([kv(_,V)|T], [V|VT]) :- pairs_values(T, VT).
lookup(K, [kv(K,V)|_], V).
lookup(K, [kv(K2,_)|T], V) :- K \= K2, lookup(K, T, V).
`

// Graphs is a small graph library over a user-supplied edge/2 relation.
// reachable/2 is deliberately written left-recursive — the natural
// transitive-closure formulation — and declared tabled, so it terminates
// with the complete answer set when queried under tabled evaluation
// (blog.Tabled(), the server's tabled flag, or the CLI, which honors the
// directive); the declaration is inert for untabled queries and for
// programs that never call it.
const Graphs = `
% reachable(X, Y): Y is reachable from X over edge/2 (transitive closure).
:- table reachable/2.
reachable(X, Z) :- reachable(X, Y), edge(Y, Z).
reachable(X, Y) :- edge(X, Y).
`

// All is every prelude module concatenated.
const All = Lists + Pairs + Graphs
