package network

import (
	"math/bits"

	"blog/internal/sim"
)

// Batcher models the bitonic sorting network of Batcher's 1968 paper,
// which section 3 of B-LOG first proposes for assigning the n lowest
// bounds to the n processors ("A sorting network like Batcher's could be
// used to sort the bounds") before section 6 replaces it with the cheaper
// minimum-seeking tree plus priority circuit ("A sorting network is
// costly ... instead, a circuit that determines the minimum ... would be
// adequate").
//
// The model sorts for real (so its outputs can drive assignment in
// simulations) and accounts the hardware costs that motivated the paper's
// retreat: a width-w bitonic sorter has log2(w)*(log2(w)+1)/2 stages of
// w/2 compare-exchange elements, so latency grows with log² and area
// with w·log² while the min tree needs only log stages and w-1
// comparators.
type Batcher struct {
	width int // power of two
	// StageDelay is the latency of one compare-exchange stage.
	StageDelay sim.Time
	// Sorts counts completed sort operations.
	Sorts uint64
	// CompareExchanges counts comparator activations across all sorts.
	CompareExchanges uint64
}

// NewBatcher builds a sorter over width inputs (rounded up to a power of
// two; missing inputs sort as +infinity-like sentinels supplied by Sort).
func NewBatcher(width int, stageDelay sim.Time) *Batcher {
	w := 1
	for w < width {
		w *= 2
	}
	return &Batcher{width: w, StageDelay: stageDelay}
}

// Width returns the (rounded) input width.
func (b *Batcher) Width() int { return b.width }

// Stages returns the number of compare-exchange stages.
func (b *Batcher) Stages() int {
	if b.width <= 1 {
		return 0
	}
	k := bits.Len(uint(b.width - 1)) // log2(width)
	return k * (k + 1) / 2
}

// Latency returns the pipeline latency of one sort.
func (b *Batcher) Latency() sim.Time { return sim.Time(b.Stages()) * b.StageDelay }

// Comparators returns the hardware comparator count, the "costly" figure
// of the paper's argument.
func (b *Batcher) Comparators() int { return b.Stages() * b.width / 2 }

// Item is one (bound, payload) input to the sorter; the payload travels
// with its bound, as chains travel with their bounds in the machine.
type Item struct {
	Bound float64
	ID    int
	Valid bool
}

// Sort returns the items in ascending bound order (invalid items sort
// last), using the bitonic compare-exchange schedule so that the counted
// work is exactly what the hardware would do.
func (b *Batcher) Sort(items []Item) []Item {
	buf := make([]Item, b.width)
	for i := range buf {
		if i < len(items) {
			buf[i] = items[i]
		} else {
			buf[i] = Item{Valid: false}
		}
	}
	// Bitonic sort: k = size of sorted runs being merged, j = comparator
	// distance within a merge step.
	for k := 2; k <= b.width; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			for i := 0; i < b.width; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				b.CompareExchanges++
				ascending := i&k == 0
				if less(buf[l], buf[i]) == ascending {
					buf[i], buf[l] = buf[l], buf[i]
				}
			}
		}
	}
	b.Sorts++
	return buf
}

// less orders valid items by bound (ties by ID for determinism); invalid
// items are greater than everything.
func less(a, c Item) bool {
	switch {
	case !a.Valid:
		return false
	case !c.Valid:
		return true
	case a.Bound != c.Bound:
		return a.Bound < c.Bound
	default:
		return a.ID < c.ID
	}
}

// AssignLowest sorts the offered bounds and returns the IDs of the n
// cheapest valid items — the section-3 scheme: "assigning the n lowest
// bounds to the n processors".
func (b *Batcher) AssignLowest(items []Item, n int) []int {
	sorted := b.Sort(items)
	out := make([]int, 0, n)
	for _, it := range sorted {
		if !it.Valid || len(out) == n {
			break
		}
		out = append(out, it.ID)
	}
	return out
}
