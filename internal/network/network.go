// Package network models the interconnection hardware of section 6 of the
// paper: the minimum-seeking circuit ("a tree where each node selects the
// minimum of its descendants and passes that to its parent"), the priority
// circuit that arbitrates among waiting processors ("a tree-shaped
// carry-lookahead circuit"), and a banyan that uses packet switching to
// find paths and circuit switching to move data, as in CEDAR.
//
// All three are cycle-accounted combinational/queueing models: the machine
// simulator charges their latencies; correctness of the values they
// compute is what the live engine in package par relies on implicitly.
package network

import (
	"math"
	"math/bits"

	"blog/internal/sim"
)

// MinTree is the minimum-seeking network: each processor posts the bound
// of its cheapest unexpanded chain (or clears its port when it has none),
// and Min reports the globally cheapest port. The hardware is a balanced
// tree of comparators, so a query costs Levels()*NodeDelay cycles.
type MinTree struct {
	// NodeDelay is the comparator latency per tree level in cycles.
	NodeDelay sim.Time

	bounds []float64
	valid  []bool
	// tree[i] caches subtree minima for O(log n) updates; leaves start at
	// offset size-1 in the usual implicit layout.
	tree []int // index of winning leaf, -1 when empty
	size int
}

// NewMinTree builds a minimum tree over `ports` processor ports.
func NewMinTree(ports int, nodeDelay sim.Time) *MinTree {
	size := 1
	for size < ports {
		size *= 2
	}
	t := &MinTree{
		NodeDelay: nodeDelay,
		bounds:    make([]float64, size),
		valid:     make([]bool, size),
		tree:      make([]int, 2*size-1),
		size:      size,
	}
	for i := range t.tree {
		t.tree[i] = -1
	}
	return t
}

// Ports returns the port count (rounded up to a power of two internally).
func (t *MinTree) Ports() int { return t.size }

// Levels returns the comparator depth.
func (t *MinTree) Levels() int {
	if t.size <= 1 {
		return 1
	}
	return bits.Len(uint(t.size - 1))
}

// QueryLatency is the time one Min query takes.
func (t *MinTree) QueryLatency() sim.Time { return sim.Time(t.Levels()) * t.NodeDelay }

// Set posts a bound on a port; valid=false clears the port.
func (t *MinTree) Set(port int, bound float64, valid bool) {
	t.bounds[port] = bound
	t.valid[port] = valid
	// Walk up from the leaf recomputing winners.
	i := t.size - 1 + port
	if valid {
		t.tree[i] = port
	} else {
		t.tree[i] = -1
	}
	for i > 0 {
		i = (i - 1) / 2
		l, r := t.tree[2*i+1], t.tree[2*i+2]
		t.tree[i] = t.better(l, r)
	}
}

func (t *MinTree) better(a, b int) int {
	switch {
	case a < 0:
		return b
	case b < 0:
		return a
	case t.bounds[a] <= t.bounds[b]:
		return a
	default:
		return b
	}
}

// Min returns the port holding the global minimum bound. ok is false when
// every port is clear.
func (t *MinTree) Min() (port int, bound float64, ok bool) {
	w := t.tree[0]
	if w < 0 {
		return 0, math.Inf(1), false
	}
	return w, t.bounds[w], true
}

// PriorityArbiter grants one of the requesting ports per cycle, lowest
// port number first — the carry-lookahead priority circuit.
type PriorityArbiter struct {
	// NodeDelay is the lookahead latency per level.
	NodeDelay sim.Time
	requests  []bool
	size      int
}

// NewPriorityArbiter builds an arbiter over `ports` ports.
func NewPriorityArbiter(ports int, nodeDelay sim.Time) *PriorityArbiter {
	return &PriorityArbiter{NodeDelay: nodeDelay, requests: make([]bool, ports), size: ports}
}

// Request raises or lowers a port's request line.
func (a *PriorityArbiter) Request(port int, want bool) { a.requests[port] = want }

// Grant returns the winning port and drops its request; ok is false when
// no port is requesting.
func (a *PriorityArbiter) Grant() (port int, ok bool) {
	for i, r := range a.requests {
		if r {
			a.requests[i] = false
			return i, true
		}
	}
	return 0, false
}

// Pending counts raised request lines.
func (a *PriorityArbiter) Pending() int {
	n := 0
	for _, r := range a.requests {
		if r {
			n++
		}
	}
	return n
}

// GrantLatency is the arbitration time.
func (a *PriorityArbiter) GrantLatency() sim.Time {
	levels := 1
	for s := 1; s < a.size; s *= 2 {
		levels++
	}
	return sim.Time(levels) * a.NodeDelay
}

// Banyan models the data-movement network: path setup by packet switching
// (SetupCycles, retried while any link on the route is held), then circuit
// switched transfer at CyclesPerWord. Routes follow the butterfly: at
// stage s the message moves to the position whose s-th bit matches the
// destination.
type Banyan struct {
	sim           *sim.Sim
	ports         int
	stages        int
	SetupCycles   sim.Time
	CyclesPerWord sim.Time

	linkFreeAt map[linkKey]sim.Time
	// Transfers counts completed transfers; Blocked counts transfers that
	// had to wait for a link.
	Transfers uint64
	Blocked   uint64
	// BusyCycles accumulates transfer durations (not counting waits).
	BusyCycles sim.Time
}

type linkKey struct {
	stage int
	pos   int
}

// NewBanyan builds a banyan over a power-of-two number of ports.
func NewBanyan(s *sim.Sim, ports int, setup, perWord sim.Time) *Banyan {
	p := 1
	stages := 0
	for p < ports {
		p *= 2
		stages++
	}
	if stages == 0 {
		stages = 1
	}
	return &Banyan{
		sim:           s,
		ports:         p,
		stages:        stages,
		SetupCycles:   setup,
		CyclesPerWord: perWord,
		linkFreeAt:    make(map[linkKey]sim.Time),
	}
}

// Ports returns the (rounded) port count.
func (b *Banyan) Ports() int { return b.ports }

// Route returns the link sequence from src to dst.
func (b *Banyan) Route(src, dst int) []linkKey {
	links := make([]linkKey, 0, b.stages)
	cur := src
	for s := b.stages - 1; s >= 0; s-- {
		bit := (dst >> s) & 1
		cur = (cur &^ (1 << s)) | (bit << s)
		links = append(links, linkKey{stage: s, pos: cur})
	}
	return links
}

// Transfer moves `words` words from src to dst, calling done at completion
// time. It returns the scheduled completion time. The circuit holds every
// link on the route for the duration, so conflicting routes serialize.
func (b *Banyan) Transfer(src, dst, words int, done func()) sim.Time {
	route := b.Route(src%b.ports, dst%b.ports)
	start := b.sim.Now() + b.SetupCycles
	blocked := false
	for _, l := range route {
		if t, held := b.linkFreeAt[l]; held && t > start {
			start = t
			blocked = true
		}
	}
	if blocked {
		b.Blocked++
	}
	dur := sim.Time(words) * b.CyclesPerWord
	end := start + dur
	for _, l := range route {
		b.linkFreeAt[l] = end
	}
	b.Transfers++
	b.BusyCycles += dur
	if done != nil {
		b.sim.At(end, done)
	}
	return end
}
