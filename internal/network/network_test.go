package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blog/internal/sim"
)

func TestMinTreeBasic(t *testing.T) {
	mt := NewMinTree(4, 1)
	if _, _, ok := mt.Min(); ok {
		t.Error("empty tree should have no minimum")
	}
	mt.Set(0, 5, true)
	mt.Set(1, 3, true)
	mt.Set(2, 9, true)
	port, bound, ok := mt.Min()
	if !ok || port != 1 || bound != 3 {
		t.Errorf("min = %d %v %v", port, bound, ok)
	}
	mt.Set(1, 3, false) // port 1 goes idle
	port, bound, ok = mt.Min()
	if !ok || port != 0 || bound != 5 {
		t.Errorf("min after clear = %d %v %v", port, bound, ok)
	}
}

func TestMinTreeTieLowestPort(t *testing.T) {
	mt := NewMinTree(4, 1)
	mt.Set(2, 7, true)
	mt.Set(1, 7, true)
	port, _, _ := mt.Min()
	if port != 1 {
		t.Errorf("tie should go to the lowest port, got %d", port)
	}
}

func TestMinTreeNonPowerOfTwo(t *testing.T) {
	mt := NewMinTree(5, 1)
	if mt.Ports() != 8 {
		t.Errorf("ports = %d, want rounded to 8", mt.Ports())
	}
	mt.Set(4, 2, true)
	port, _, ok := mt.Min()
	if !ok || port != 4 {
		t.Errorf("min = %d", port)
	}
}

func TestMinTreeLatency(t *testing.T) {
	mt := NewMinTree(8, 2)
	if mt.Levels() != 3 {
		t.Errorf("levels = %d, want 3", mt.Levels())
	}
	if mt.QueryLatency() != 6 {
		t.Errorf("latency = %d", mt.QueryLatency())
	}
	one := NewMinTree(1, 2)
	if one.QueryLatency() <= 0 {
		t.Error("single-port tree still has latency")
	}
}

func TestPropertyMinTreeMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mt := NewMinTree(16, 1)
		bounds := make([]float64, 16)
		valid := make([]bool, 16)
		for op := 0; op < 100; op++ {
			p := rng.Intn(16)
			if rng.Intn(4) == 0 {
				valid[p] = false
				mt.Set(p, 0, false)
			} else {
				bounds[p] = float64(rng.Intn(50))
				valid[p] = true
				mt.Set(p, bounds[p], true)
			}
			// Scan for expected minimum.
			bestPort, bestBound, any := -1, 0.0, false
			for i := 0; i < 16; i++ {
				if valid[i] && (!any || bounds[i] < bestBound) {
					bestPort, bestBound, any = i, bounds[i], true
				}
			}
			port, bound, ok := mt.Min()
			if ok != any {
				return false
			}
			if any && (bound != bestBound || bounds[port] != bestBound) {
				_ = bestPort
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPriorityArbiter(t *testing.T) {
	a := NewPriorityArbiter(4, 1)
	if _, ok := a.Grant(); ok {
		t.Error("no requests should mean no grant")
	}
	a.Request(2, true)
	a.Request(0, true)
	a.Request(3, true)
	if a.Pending() != 3 {
		t.Errorf("pending = %d", a.Pending())
	}
	p, ok := a.Grant()
	if !ok || p != 0 {
		t.Errorf("first grant = %d", p)
	}
	p, _ = a.Grant()
	if p != 2 {
		t.Errorf("second grant = %d", p)
	}
	p, _ = a.Grant()
	if p != 3 {
		t.Errorf("third grant = %d", p)
	}
	if _, ok := a.Grant(); ok {
		t.Error("requests should be consumed")
	}
	if a.GrantLatency() <= 0 {
		t.Error("latency must be positive")
	}
}

func TestBanyanRouteWellFormed(t *testing.T) {
	var s sim.Sim
	b := NewBanyan(&s, 8, 2, 1)
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			route := b.Route(src, dst)
			if len(route) != 3 {
				t.Fatalf("route %d->%d has %d links", src, dst, len(route))
			}
			// Final position must be the destination.
			if route[len(route)-1].pos != dst {
				t.Errorf("route %d->%d ends at %d", src, dst, route[len(route)-1].pos)
			}
		}
	}
}

func TestBanyanDisjointTransfersOverlap(t *testing.T) {
	var s sim.Sim
	b := NewBanyan(&s, 8, 0, 1)
	// 0->0 and 7->7 share no links (identity routes on distinct rows).
	end1 := b.Transfer(0, 0, 10, nil)
	end2 := b.Transfer(7, 7, 10, nil)
	if end1 != 10 || end2 != 10 {
		t.Errorf("disjoint transfers should overlap: %d, %d", end1, end2)
	}
	if b.Blocked != 0 {
		t.Errorf("blocked = %d", b.Blocked)
	}
}

func TestBanyanConflictingTransfersSerialize(t *testing.T) {
	var s sim.Sim
	b := NewBanyan(&s, 8, 0, 1)
	end1 := b.Transfer(0, 5, 10, nil)
	end2 := b.Transfer(0, 5, 10, nil) // same route: must wait
	if end2 <= end1 {
		t.Errorf("conflicting transfers overlap: %d then %d", end1, end2)
	}
	if b.Blocked != 1 {
		t.Errorf("blocked = %d", b.Blocked)
	}
	if b.Transfers != 2 {
		t.Errorf("transfers = %d", b.Transfers)
	}
}

func TestBanyanSetupCost(t *testing.T) {
	var s sim.Sim
	b := NewBanyan(&s, 4, 7, 2)
	end := b.Transfer(1, 2, 5, nil)
	if end != 7+10 {
		t.Errorf("end = %d, want setup 7 + 5 words x 2", end)
	}
}

func TestBanyanDoneCallback(t *testing.T) {
	var s sim.Sim
	b := NewBanyan(&s, 4, 1, 1)
	fired := sim.Time(-1)
	b.Transfer(0, 3, 4, func() { fired = s.Now() })
	s.Run(0)
	if fired != 5 {
		t.Errorf("done fired at %d, want 5", fired)
	}
}

func TestBanyanPortRounding(t *testing.T) {
	var s sim.Sim
	b := NewBanyan(&s, 5, 1, 1)
	if b.Ports() != 8 {
		t.Errorf("ports = %d", b.Ports())
	}
	// Out-of-range ports wrap safely.
	b.Transfer(13, 9, 1, nil)
}

func BenchmarkMinTreeSet(b *testing.B) {
	mt := NewMinTree(64, 1)
	for i := 0; i < b.N; i++ {
		mt.Set(i%64, float64(i%97), true)
	}
}

func BenchmarkBanyanTransfer(b *testing.B) {
	var s sim.Sim
	net := NewBanyan(&s, 16, 2, 1)
	for i := 0; i < b.N; i++ {
		net.Transfer(i%16, (i*7)%16, 8, nil)
	}
}
