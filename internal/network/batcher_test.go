package network

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBatcherSortsAscending(t *testing.T) {
	b := NewBatcher(8, 1)
	items := []Item{
		{Bound: 5, ID: 0, Valid: true},
		{Bound: 1, ID: 1, Valid: true},
		{Bound: 9, ID: 2, Valid: true},
		{Bound: 3, ID: 3, Valid: true},
	}
	out := b.Sort(items)
	var bounds []float64
	for _, it := range out {
		if it.Valid {
			bounds = append(bounds, it.Bound)
		}
	}
	if len(bounds) != 4 {
		t.Fatalf("valid items = %d", len(bounds))
	}
	if !sort.Float64sAreSorted(bounds) {
		t.Errorf("not sorted: %v", bounds)
	}
	// Invalid padding sorts last.
	for _, it := range out[4:] {
		if it.Valid {
			t.Error("invalid items must sort last")
		}
	}
}

func TestBatcherHardwareCosts(t *testing.T) {
	b := NewBatcher(8, 2)
	// log2(8)=3 -> 3*4/2 = 6 stages, 6*4 = 24 comparators.
	if b.Stages() != 6 {
		t.Errorf("stages = %d, want 6", b.Stages())
	}
	if b.Comparators() != 24 {
		t.Errorf("comparators = %d, want 24", b.Comparators())
	}
	if b.Latency() != 12 {
		t.Errorf("latency = %d, want 12", b.Latency())
	}
	// The paper's cost argument: the min tree over the same width needs
	// only log2(8)=3 levels and 7 comparators.
	mt := NewMinTree(8, 2)
	if mt.QueryLatency() >= b.Latency() {
		t.Errorf("min tree latency %d should beat sorter latency %d",
			mt.QueryLatency(), b.Latency())
	}
}

func TestBatcherWidthRounding(t *testing.T) {
	b := NewBatcher(5, 1)
	if b.Width() != 8 {
		t.Errorf("width = %d", b.Width())
	}
	one := NewBatcher(1, 1)
	if one.Stages() != 0 || one.Latency() != 0 {
		t.Error("single-input sorter is free")
	}
}

func TestAssignLowest(t *testing.T) {
	b := NewBatcher(8, 1)
	items := []Item{
		{Bound: 7, ID: 10, Valid: true},
		{Bound: 2, ID: 11, Valid: true},
		{Bound: 5, ID: 12, Valid: true},
		{Bound: 2, ID: 13, Valid: true},
	}
	got := b.AssignLowest(items, 3)
	// Two bound-2 items tie; ID order breaks the tie: 11, 13, then 12.
	want := []int{11, 13, 12}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("assignment = %v, want %v", got, want)
		}
	}
	// Requesting more than available returns what exists.
	if got := b.AssignLowest(items[:2], 5); len(got) != 2 {
		t.Errorf("overask = %v", got)
	}
}

func TestPropertyBatcherMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		items := make([]Item, n)
		ref := make([]float64, n)
		for i := range items {
			v := float64(rng.Intn(100))
			items[i] = Item{Bound: v, ID: i, Valid: true}
			ref[i] = v
		}
		b := NewBatcher(n, 1)
		out := b.Sort(items)
		sort.Float64s(ref)
		j := 0
		for _, it := range out {
			if !it.Valid {
				continue
			}
			if it.Bound != ref[j] {
				return false
			}
			j++
		}
		return j == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBatcherCountsWork(t *testing.T) {
	b := NewBatcher(8, 1)
	b.Sort(make([]Item, 8))
	if b.Sorts != 1 {
		t.Error("sort not counted")
	}
	if b.CompareExchanges != uint64(b.Comparators()) {
		t.Errorf("compare-exchanges = %d, want %d (one per comparator)",
			b.CompareExchanges, b.Comparators())
	}
}

func BenchmarkBatcherSort64(b *testing.B) {
	bt := NewBatcher(64, 1)
	items := make([]Item, 64)
	for i := range items {
		items[i] = Item{Bound: float64(i * 7 % 64), ID: i, Valid: true}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Sort(items)
	}
}
