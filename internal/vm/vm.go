// Package vm is the register-based bytecode engine for the sequential
// resolution core: the compiled counterpart of the skeleton walker in
// internal/kb and internal/engine, finishing the compilation journey the
// paper's section 6 motivates (clause activation as a constant-time
// machine operation rather than a structure walk).
//
// At load time every clause is compiled once into a flat instruction
// sequence over the interned-Sym term core, and every predicate's clause
// set into a switch-on-term first-argument dispatch table. At run time
// the engine's sequential expansion path (internal/engine.Expand, reused
// per-goroutine by the parallel workers) executes head unification and
// body instantiation on the Machine instead of walking skeleton trees.
//
// # Instruction set
//
// A clause head compiles to one instruction per argument position, in
// depth-first preorder; unification of nested compounds reuses the same
// opcodes at unify level, consuming arguments from a cursor stack:
//
//	opcode    operands          meaning
//	--------  ----------------  ------------------------------------------
//	opConst   pool index        goal argument must unify with the shared
//	                            ground constant (atom, integer, or ground
//	                            compound); an unbound argument is bound
//	opVarF    slot              first occurrence of a clause variable:
//	                            capture the goal argument into regs[slot]
//	                            (no fresh variable, no binding)
//	opVarR    slot              repeat occurrence: full unify of the goal
//	                            argument against regs[slot]
//	opStruct  functor, arity,   goal argument must be a compound with this
//	          skeleton, skip    principal functor (read mode: descend into
//	                            its arguments) or an unbound variable
//	                            (write mode: instantiate the whole
//	                            sub-skeleton at once, bind the variable,
//	                            and skip the subtree's instructions)
//
// Preorder flattening makes every compound subtree a contiguous
// instruction range, which is what lets write mode skip it with a single
// pc increment. Ground subterms never become instructions: they live in
// a per-clause constant pool shared by every activation.
//
// The register capture of opVarF is the main win over the tree-walking
// engine: a chain rule like p(X) :- q(X) activates with zero allocations
// and zero environment extensions — the caller's argument flows through
// the register file straight into the body goal. Fresh variables are
// minted lazily, one frame per activation, only when a clause variable
// is never captured from the goal.
//
// # Dispatch
//
// Each predicate compiles to a PredCode: the full clause list in source
// order plus, when any clause head has a constant first argument, a
// switch-on-term table mapping each first-argument constant to its
// premerged candidate bucket (the keyed clauses for that constant merged
// with the variable-first clauses, in clause-ID order). A goal with a
// bound first argument jumps straight to its bucket — replacing the
// tree-walker's per-goal index probe and merge allocation — while a goal
// with an unbound first argument takes the full list.
//
// # Fallback rules
//
// The tree-walking engine stays intact as the differential oracle, and
// resolution falls back to it for everything the VM does not model:
// builtins, negation-as-failure, tabled predicate calls (their
// generators run compiled underneath), tree-recorded runs (figure
// rendering wants the walker's labeling), Expander.NoVM (the
// blog.Compiled(false) option and the -compiled=off flags), and the
// BLOG_COMPILED=off environment variable, which disables the VM
// process-wide so CI can prove the oracle path green.
//
// Programs are cached on the kb.DB under a generation counter:
// asserting a clause bumps the generation and the next dispatch
// recompiles, so learned or merged clauses become visible to the
// compiled path immediately.
package vm

import (
	"os"

	"blog/internal/kb"
	"blog/internal/obs"
	"blog/internal/term"
)

// Enabled gates the VM process-wide; BLOG_COMPILED=off forces every
// query onto the tree-walking oracle engine.
var Enabled = os.Getenv("BLOG_COMPILED") != "off"

type op uint8

const (
	opConst op = iota
	opVarF
	opVarR
	opStruct
)

// instr is one head-unification instruction. Fields are overloaded by
// opcode: idx is the constant-pool index (opConst), the variable slot
// (opVarF/opVarR), or the write-mode skeleton index (opStruct).
type instr struct {
	op   op
	idx  int32
	fn   term.Sym // opStruct: principal functor
	n    int32    // opStruct: arity
	skip int32    // opStruct: subtree instruction count (write-mode skip)
}

// snode is the compiled skeleton used for write-mode instantiation and
// body-goal construction: like term.Skeleton, but slots resolve through
// the machine's register file before minting fresh variables.
type snode struct {
	kind   uint8
	slot   int32
	fn     term.Sym
	ground term.Term
	args   []snode
}

const (
	sGround uint8 = iota
	sSlot
	sStruct
)

// CClause is one compiled clause: flat head code, constant pool,
// write-mode skeletons, and body-goal skeletons over one slot numbering.
type CClause struct {
	c      *kb.Clause
	code   []instr
	pool   []term.Term
	skels  []snode
	body   []snode
	names  []string // slot print names, for lazy frame minting
	nslots int
}

// Clause returns the underlying database clause.
func (cc *CClause) Clause() *kb.Clause { return cc.c }

// argKey is the switch-on-term dispatch key: the shape of a bound first
// argument (mirrors the kb first-argument index, over interned symbols).
type argKey struct {
	kind byte // 'a' atom, 'i' integer, 'c' compound
	sym  term.Sym
	num  int64
}

func keyOf(arg term.Term) (argKey, bool) {
	switch a := arg.(type) {
	case term.Atom:
		return argKey{kind: 'a', sym: a.Sym()}, true
	case term.Int:
		return argKey{kind: 'i', num: int64(a)}, true
	case *term.Compound:
		return argKey{kind: 'c', sym: a.Functor, num: int64(len(a.Args))}, true
	default:
		return argKey{}, false
	}
}

// PredCode is one predicate's compiled clause set plus its
// switch-on-term dispatch table.
type PredCode struct {
	// all holds every compiled clause in source (clause-ID) order.
	all []*CClause
	// buckets maps each first-argument constant seen in a clause head to
	// its premerged candidate list (keyed clauses for that constant plus
	// the variable-first clauses, in clause-ID order). nil when no
	// clause head has a constant first argument.
	buckets map[argKey][]*CClause
	// varOnly is the bucket a bound first argument with no matching
	// constant key falls through to: only variable-first heads can match.
	varOnly []*CClause
}

// Select returns the candidate clauses for a goal, in clause-ID order:
// the premerged bucket for a bound first argument, or the full list.
func (pc *PredCode) Select(env *term.Env, goal term.Term) []*CClause {
	if pc.buckets == nil {
		return pc.all
	}
	gc, ok := goal.(*term.Compound)
	if !ok {
		return pc.all
	}
	k, keyed := keyOf(env.Resolve(gc.Args[0]))
	if !keyed {
		return pc.all
	}
	if cs, ok := pc.buckets[k]; ok {
		return cs
	}
	return pc.varOnly
}

// predKey packs functor and arity into one word, so the per-goal Pred
// probe takes the runtime's integer-key fast path instead of hashing a
// struct.
type predKey uint64

func makePredKey(fn term.Sym, arity int) predKey {
	return predKey(uint64(uint32(fn))<<32 | uint64(uint32(arity)))
}

// Program is a compiled database: one PredCode per predicate, pinned to
// the kb generation it was compiled from.
type Program struct {
	gen   uint64
	preds map[predKey]*PredCode
}

// Gen returns the database generation this program was compiled from.
func (p *Program) Gen() uint64 { return p.gen }

// Pred returns the compiled code for a predicate, or nil when the
// database has no clauses for it.
func (p *Program) Pred(fn term.Sym, arity int) *PredCode {
	return p.preds[makePredKey(fn, arity)]
}

// For returns the compiled program for db, compiling (and caching on the
// database) when none exists or the database generation moved — which is
// how asserted clauses become visible to the compiled path. Safe for
// concurrent readers; compilation itself follows the kb contract that
// clause loading is single-threaded.
func For(db *kb.DB) *Program {
	if p, ok := db.CompiledCache().(*Program); ok && p.gen == db.Generation() {
		return p
	}
	p := Compile(db)
	db.SetCompiledCache(p)
	if j, ok := db.EventJournal().(*obs.Journal); ok {
		j.Emit(obs.Event{
			Kind:       obs.KindVMRecompile,
			Generation: p.gen,
			Count:      int64(len(p.preds)),
		})
	}
	return p
}

// Compile compiles every clause of db and builds the per-predicate
// dispatch tables.
func Compile(db *kb.DB) *Program {
	p := &Program{gen: db.Generation(), preds: make(map[predKey]*PredCode)}
	for _, c := range db.Clauses() {
		fn, arity, ok := term.PredOf(c.Head)
		if !ok {
			continue
		}
		key := makePredKey(fn, arity)
		pc := p.preds[key]
		if pc == nil {
			pc = &PredCode{}
			p.preds[key] = pc
		}
		pc.all = append(pc.all, compileClause(c))
	}
	for _, pc := range p.preds {
		buildDispatch(pc)
	}
	return p
}

// buildDispatch fills the switch-on-term table: one premerged bucket per
// distinct first-argument constant, in clause-ID order.
func buildDispatch(pc *PredCode) {
	keys := make([]argKey, 0, 4)
	seen := make(map[argKey]bool, 4)
	anyKeyed := false
	for _, cc := range pc.all {
		hc, ok := cc.c.Head.(*term.Compound)
		if !ok || len(hc.Args) == 0 {
			return // arity 0: nothing to switch on
		}
		if k, keyed := keyOf(hc.Args[0]); keyed {
			anyKeyed = true
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		} else {
			pc.varOnly = append(pc.varOnly, cc)
		}
	}
	if !anyKeyed {
		pc.varOnly = nil // every clause is variable-first: full list only
		return
	}
	pc.buckets = make(map[argKey][]*CClause, len(keys))
	for _, k := range keys {
		bucket := make([]*CClause, 0, len(pc.varOnly)+1)
		for _, cc := range pc.all {
			hk, keyed := keyOf(cc.c.Head.(*term.Compound).Args[0])
			if !keyed || hk == k {
				bucket = append(bucket, cc)
			}
		}
		pc.buckets[k] = bucket
	}
}

// compiler carries the per-clause state of one compilation: slot
// numbering shared by head and body, the growing code, pool, and
// skeleton list.
type compiler struct {
	vars  []*term.Var
	names []string
	cc    *CClause
}

func (cp *compiler) slotOf(v *term.Var) int32 {
	for i, w := range cp.vars {
		if w == v {
			return int32(i)
		}
	}
	cp.vars = append(cp.vars, v)
	cp.names = append(cp.names, v.Name)
	return int32(len(cp.vars) - 1)
}

func isGround(t term.Term) bool {
	switch t := t.(type) {
	case *term.Var:
		return false
	case *term.Compound:
		for _, a := range t.Args {
			if !isGround(a) {
				return false
			}
		}
	}
	return true
}

// emit appends the instruction(s) matching one head argument, in
// depth-first preorder.
func (cp *compiler) emit(t term.Term, seen []bool) []bool {
	cc := cp.cc
	switch t := t.(type) {
	case *term.Var:
		slot := cp.slotOf(t)
		for int(slot) >= len(seen) {
			seen = append(seen, false)
		}
		if seen[slot] {
			cc.code = append(cc.code, instr{op: opVarR, idx: slot})
		} else {
			seen[slot] = true
			cc.code = append(cc.code, instr{op: opVarF, idx: slot})
		}
	case *term.Compound:
		if isGround(t) {
			cc.pool = append(cc.pool, t)
			cc.code = append(cc.code, instr{op: opConst, idx: int32(len(cc.pool) - 1)})
			return seen
		}
		skelIdx := int32(len(cc.skels))
		cc.skels = append(cc.skels, snode{}) // reserve; filled below
		at := len(cc.code)
		cc.code = append(cc.code, instr{op: opStruct, idx: skelIdx, fn: t.Functor, n: int32(len(t.Args))})
		for _, a := range t.Args {
			seen = cp.emit(a, seen)
		}
		cc.code[at].skip = int32(len(cc.code) - at - 1)
		cc.skels[skelIdx] = cp.skel(t)
	default: // atom or integer
		cc.pool = append(cc.pool, t)
		cc.code = append(cc.code, instr{op: opConst, idx: int32(len(cc.pool) - 1)})
	}
	return seen
}

// skel compiles a term into the write-mode/body skeleton form, under the
// clause's shared slot numbering.
func (cp *compiler) skel(t term.Term) snode {
	switch t := t.(type) {
	case *term.Var:
		return snode{kind: sSlot, slot: cp.slotOf(t)}
	case *term.Compound:
		if isGround(t) {
			return snode{kind: sGround, ground: t}
		}
		args := make([]snode, len(t.Args))
		for i, a := range t.Args {
			args[i] = cp.skel(a)
		}
		return snode{kind: sStruct, fn: t.Functor, args: args}
	default:
		return snode{kind: sGround, ground: t}
	}
}

// compileClause compiles one clause: head code in argument order, then
// body-goal skeletons under the same slot numbering.
func compileClause(c *kb.Clause) *CClause {
	cc := &CClause{c: c}
	cp := &compiler{cc: cc}
	var seen []bool
	if hc, ok := c.Head.(*term.Compound); ok {
		for _, a := range hc.Args {
			seen = cp.emit(a, seen)
		}
	}
	cc.body = make([]snode, len(c.Body))
	for i, g := range c.Body {
		cc.body[i] = cp.skel(g)
	}
	cc.names = cp.names
	cc.nslots = len(cp.names)
	return cc
}
