package vm

import (
	"blog/internal/term"
	"blog/internal/unify"
)

// cursor walks one compound's argument list during head matching.
type cursor struct {
	args []term.Term
	i    int
}

// Machine is the per-engine emulator scratch: a register file over the
// current clause's variable slots plus the argument cursor stack. It is
// owned by exactly one Expander (parallel workers each own one), so a
// Machine is never shared between goroutines.
type Machine struct {
	regs  []term.Term
	frame *term.Frame
	cc    *CClause
	stack []cursor
	// Pool, when set, supplies activation frames (reclaimed by the owner
	// at backtrack via TakeFrame). Trail-store runs set it; persistent-Env
	// runs leave it nil and let frames be garbage collected.
	Pool *term.FramePool
	// CPool, when set, supplies the compounds of body-goal and write-mode
	// instantiation (reclaimed by the owner at backtrack via the pool's
	// mark/release protocol). Trail-store runs set it.
	CPool *term.CompoundPool
}

// Resolve runs the clause's head code against a resolved goal under env.
// On success it returns the extended environment; the register file then
// holds the activation (captured goal subterms and any fresh variables)
// for BodyGoal to build body goals from. Each Resolve call resets the
// machine, so candidates must have their body goals built before the
// next candidate is tried.
func (m *Machine) Resolve(env *term.Env, goal term.Term, cc *CClause, oc bool) (*term.Env, bool) {
	m.cc = cc
	m.frame = nil
	if cap(m.regs) < cc.nslots {
		m.regs = make([]term.Term, cc.nslots)
	} else {
		m.regs = m.regs[:cc.nslots]
		for i := range m.regs {
			m.regs[i] = nil
		}
	}
	m.stack = m.stack[:0]
	if gc, ok := goal.(*term.Compound); ok {
		m.stack = append(m.stack, cursor{args: gc.Args})
	}
	code := cc.code
	for pc := 0; pc < len(code); pc++ {
		ins := &code[pc]
		arg := m.next(env)
		switch ins.op {
		case opConst:
			c := cc.pool[ins.idx]
			switch a := arg.(type) {
			case *term.Var:
				// The constant is ground, so the bind passes any
				// occurs check trivially.
				env = env.Bind(a, c)
			case term.Atom:
				if ca, ok := c.(term.Atom); !ok || ca != a {
					return env, false
				}
			case term.Int:
				if ci, ok := c.(term.Int); !ok || ci != a {
					return env, false
				}
			default:
				// Ground compound constant vs a (possibly partially
				// bound) compound argument: full unify decides. The
				// constant side is ground, so no occurs check applies.
				var ok bool
				if env, ok = unify.Unify(env, arg, c); !ok {
					return env, false
				}
			}
		case opVarF:
			m.regs[ins.idx] = arg
		case opVarR:
			var ok bool
			if oc {
				env, ok = unify.UnifyOC(env, arg, m.regs[ins.idx])
			} else {
				env, ok = unify.Unify(env, arg, m.regs[ins.idx])
			}
			if !ok {
				return env, false
			}
		case opStruct:
			switch a := arg.(type) {
			case *term.Compound:
				if a.Functor != ins.fn || len(a.Args) != int(ins.n) {
					return env, false
				}
				m.stack = append(m.stack, cursor{args: a.Args})
			case *term.Var:
				// Write mode: instantiate the whole sub-skeleton (which
				// fills first-occurrence registers with fresh variables),
				// bind the goal variable to it, and skip the subtree's
				// instructions.
				inst := m.inst(&cc.skels[ins.idx])
				if oc {
					// A captured register inside inst may embed the
					// goal variable itself; route through the checked
					// unifier.
					var ok bool
					if env, ok = unify.UnifyOC(env, a, inst); !ok {
						return env, false
					}
				} else {
					env = env.Bind(a, inst)
				}
				pc += int(ins.skip)
			default:
				return env, false
			}
		}
	}
	return env, true
}

// next consumes the next argument position in cursor order, resolved
// under env. The compiler guarantees one consuming instruction per
// argument position, so the stack never underflows.
func (m *Machine) next(env *term.Env) term.Term {
	top := &m.stack[len(m.stack)-1]
	for top.i >= len(top.args) {
		m.stack = m.stack[:len(m.stack)-1]
		top = &m.stack[len(m.stack)-1]
	}
	a := top.args[top.i]
	top.i++
	return env.Resolve(a)
}

// reg returns the term held by a slot, minting the activation's fresh
// variable for a slot never captured from the goal. The frame is minted
// lazily, at most once per activation, and covers every slot so print
// names and slot indexes line up with the tree-walking activation.
func (m *Machine) reg(slot int32) term.Term {
	if t := m.regs[slot]; t != nil {
		return t
	}
	if m.frame == nil {
		if m.Pool != nil {
			m.frame = m.Pool.Get(m.cc.names)
		} else {
			m.frame = term.NewFrame(m.cc.names)
		}
	}
	v := m.frame.Var(int(slot))
	m.regs[slot] = v
	return v
}

// inst builds a term from a compiled skeleton over the register file:
// ground nodes are shared verbatim, slots resolve through reg.
func (m *Machine) inst(s *snode) term.Term {
	switch s.kind {
	case sGround:
		return s.ground
	case sSlot:
		return m.reg(s.slot)
	default:
		var c *term.Compound
		if m.CPool != nil {
			c = m.CPool.Get(s.fn, len(s.args))
		} else {
			c = term.MakeCompound(s.fn, len(s.args))
		}
		for i := range s.args {
			c.Args[i] = m.inst(&s.args[i])
		}
		return c
	}
}

// TakeFrame detaches and returns the frame minted by the last Resolve
// (nil for a ground activation), transferring ownership to the caller —
// who returns it to the pool once the activation's bindings are undone
// and its body goals are dead.
func (m *Machine) TakeFrame() *term.Frame {
	f := m.frame
	m.frame = nil
	return f
}

// BodyGoal builds the i-th body goal of the clause most recently resolved
// by this machine, over its register file.
func (m *Machine) BodyGoal(i int) term.Term {
	return m.inst(&m.cc.body[i])
}
