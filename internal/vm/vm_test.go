package vm

import (
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/term"
)

// emptyEnv is the nil empty environment.
var emptyEnv *term.Env

func load(t *testing.T, src string) *kb.DB {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func goal(t *testing.T, src string) term.Term {
	t.Helper()
	gs, err := parse.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	return gs[0]
}

func TestDispatchBuckets(t *testing.T) {
	db := load(t, `
		f(a, 1). f(b, 2). f(X, 0). f(b, 3).
	`)
	p := Compile(db)
	pc := p.Pred(term.Intern("f"), 2)
	if pc == nil {
		t.Fatal("no code for f/2")
	}
	if len(pc.all) != 4 {
		t.Fatalf("all = %d clauses, want 4", len(pc.all))
	}
	env := emptyEnv

	// Bound first argument with a key: premerged bucket in clause order.
	sel := pc.Select(env, goal(t, "f(b, N)"))
	if len(sel) != 3 { // f(b,2), f(X,0), f(b,3)
		t.Fatalf("Select(f(b,N)) = %d clauses, want 3", len(sel))
	}
	for i := 1; i < len(sel); i++ {
		if sel[i].c.ID < sel[i-1].c.ID {
			t.Fatal("bucket not in clause-ID order")
		}
	}

	// Bound argument with no matching key: only the variable-first clause.
	sel = pc.Select(env, goal(t, "f(zzz, N)"))
	if len(sel) != 1 {
		t.Fatalf("Select(f(zzz,N)) = %d clauses, want 1", len(sel))
	}

	// Unbound first argument: the full list.
	sel = pc.Select(env, goal(t, "f(X, N)"))
	if len(sel) != 4 {
		t.Fatalf("Select(f(X,N)) = %d clauses, want 4", len(sel))
	}
}

func TestDispatchAllVariableHeads(t *testing.T) {
	db := load(t, `eq(X, X).`)
	pc := Compile(db).Pred(term.Intern("eq"), 2)
	if pc.buckets != nil {
		t.Error("all-variable heads must not build a dispatch table")
	}
	if got := pc.Select(emptyEnv, goal(t, "eq(a, B)")); len(got) != 1 {
		t.Fatalf("Select = %d clauses, want 1", len(got))
	}
}

// TestChainRuleCapturesRegister: p(X) :- q(X) activates by capturing the
// goal argument into a register — the environment is untouched and the
// body goal carries the caller's argument directly.
func TestChainRuleCapturesRegister(t *testing.T) {
	db := load(t, `p(X) :- q(X).`)
	pc := Compile(db).Pred(term.Intern("p"), 1)
	env := emptyEnv
	var m Machine
	env2, ok := m.Resolve(env, goal(t, "p(sam)"), pc.all[0], false)
	if !ok {
		t.Fatal("head must match")
	}
	if env2 != env {
		t.Error("register capture must not extend the environment")
	}
	if got := m.BodyGoal(0).String(); got != "q(sam)" {
		t.Errorf("body goal = %s, want q(sam)", got)
	}
}

// TestWriteModeInstantiates: head f(g(X), X) against goal f(V, a) takes
// write mode on the first argument (V unbound), minting g(_) and binding
// V; the second argument then grounds the fresh variable to a.
func TestWriteModeInstantiates(t *testing.T) {
	db := load(t, `f(g(X), X).`)
	pc := Compile(db).Pred(term.Intern("f"), 2)
	g := goal(t, "f(V, a)").(*term.Compound)
	v := g.Args[0].(*term.Var)
	var m Machine
	env, ok := m.Resolve(emptyEnv, g, pc.all[0], false)
	if !ok {
		t.Fatal("head must match")
	}
	if got := env.ResolveDeep(v).String(); got != "g(a)" {
		t.Errorf("V = %s, want g(a)", got)
	}
}

// TestWriteModeOccursCheck: head p(X, f(X)) against goal p(V, V) embeds
// the goal variable in its own write-mode image; the checked unifier must
// reject it while the rational-tree default accepts.
func TestWriteModeOccursCheck(t *testing.T) {
	db := load(t, `p(X, f(X)).`)
	pc := Compile(db).Pred(term.Intern("p"), 2)
	var m Machine
	if _, ok := m.Resolve(emptyEnv, goal(t, "p(V, V)"), pc.all[0], true); ok {
		t.Error("occurs check must reject V = f(V)")
	}
	if _, ok := m.Resolve(emptyEnv, goal(t, "p(V, V)"), pc.all[0], false); !ok {
		t.Error("rational-tree unification must accept V = f(V)")
	}
}

// TestGroundCompoundPool: a ground compound argument compiles to one
// pooled constant, binds an unbound goal variable directly, and unifies
// against partially bound compounds.
func TestGroundCompoundPool(t *testing.T) {
	db := load(t, `wants(point(1, 2)).`)
	pc := Compile(db).Pred(term.Intern("wants"), 1)
	if cc := pc.all[0]; len(cc.code) != 1 || cc.code[0].op != opConst {
		t.Fatalf("ground compound must compile to a single opConst, got %d instrs", len(cc.code))
	}
	g := goal(t, "wants(P)").(*term.Compound)
	var m Machine
	env, ok := m.Resolve(emptyEnv, g, pc.all[0], false)
	if !ok {
		t.Fatal("head must match")
	}
	if got := env.ResolveDeep(g.Args[0]).String(); got != "point(1,2)" {
		t.Errorf("P = %s, want point(1,2)", got)
	}
	if _, ok := m.Resolve(emptyEnv, goal(t, "wants(point(1, 3))"), pc.all[0], false); ok {
		t.Error("mismatched ground compound must fail")
	}
}

// TestRepeatVarUnifies: head same(X, X) must unify its two goal
// arguments with each other.
func TestRepeatVarUnifies(t *testing.T) {
	db := load(t, `same(X, X).`)
	pc := Compile(db).Pred(term.Intern("same"), 2)
	g := goal(t, "same(a, B)").(*term.Compound)
	var m Machine
	env, ok := m.Resolve(emptyEnv, g, pc.all[0], false)
	if !ok {
		t.Fatal("head must match")
	}
	if got := env.ResolveDeep(g.Args[1]).String(); got != "a" {
		t.Errorf("B = %s, want a", got)
	}
	if _, ok := m.Resolve(emptyEnv, goal(t, "same(a, b)"), pc.all[0], false); ok {
		t.Error("same(a, b) must fail")
	}
}

// TestForRecompilesOnAssert: the cached program is pinned to the database
// generation; asserting a clause must make the next For call recompile
// with the new clause visible (the dispatch-invalidation contract).
func TestForRecompilesOnAssert(t *testing.T) {
	db := load(t, `f(a, 1).`)
	p1 := For(db)
	if p2 := For(db); p2 != p1 {
		t.Fatal("unchanged database must reuse the cached program")
	}
	db.Assert(goal(t, "f(b, 2)"), nil)
	p3 := For(db)
	if p3 == p1 {
		t.Fatal("assert must invalidate the compiled program")
	}
	pc := p3.Pred(term.Intern("f"), 2)
	if len(pc.all) != 2 {
		t.Fatalf("recompiled f/2 has %d clauses, want 2", len(pc.all))
	}
	if got := pc.Select(emptyEnv, goal(t, "f(b, N)")); len(got) != 1 {
		t.Fatalf("Select(f(b,N)) = %d clauses after assert, want 1", len(got))
	}
}
