// Package workload generates the synthetic logic programs and query
// streams used by the experiment suite. The paper reports no benchmark
// programs of its own (its evaluation is illustrative), so these workloads
// are designed to exercise each claim: deep-failure programs for the
// best-first advantage, query sessions for the adaptivity claim, wide
// OR-trees for parallel speedup, and shared-variable conjunctions for the
// AND-parallel extension. All generators are deterministic in their seed.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// FamilyTree generates a father/mother fact base shaped like the figure-1
// example scaled up: a complete tree of persons with the given depth and
// branching factor, plus the two gf rules and ancestor rules.
//
// Persons are named p0, p1, ... in breadth-first order; p0 is the root
// patriarch. Even children get a father link, odd children a mother link,
// so both gf rules find work.
func FamilyTree(depth, branch int) string {
	var b strings.Builder
	b.WriteString("gf(X,Z) :- f(X,Y), f(Y,Z).\n")
	b.WriteString("gf(X,Z) :- f(X,Y), m(Y,Z).\n")
	b.WriteString("anc(X,Y) :- f(X,Y).\n")
	b.WriteString("anc(X,Z) :- f(X,Y), anc(Y,Z).\n")
	id := 0
	frontier := []int{0}
	for d := 0; d < depth; d++ {
		var next []int
		for _, p := range frontier {
			for c := 0; c < branch; c++ {
				id++
				if c%2 == 0 {
					fmt.Fprintf(&b, "f(p%d,p%d).\n", p, id)
				} else {
					fmt.Fprintf(&b, "m(p%d,p%d).\n", p, id)
					// Mothers need fathers too so f-chains continue.
					fmt.Fprintf(&b, "f(p%d,p%d).\n", p, id)
				}
				next = append(next, id)
			}
		}
		frontier = next
	}
	return b.String()
}

// DeepFailure builds the adversarial program for experiment E1: a top
// predicate with `width` OR-branches; branch i is a chain of `depth` steps
// that fails at the end for every branch except the last (source-ordered),
// which succeeds. Depth-first Prolog walks every failing chain to its
// floor before reaching the winner; a learned best-first search goes
// straight to it.
func DeepFailure(width, depth int) string {
	var b strings.Builder
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "top(X) :- br%d_0(X).\n", i)
	}
	for i := 0; i < width; i++ {
		for d := 0; d < depth; d++ {
			if d+1 < depth {
				fmt.Fprintf(&b, "br%d_%d(X) :- br%d_%d(X).\n", i, d, i, d+1)
			} else if i == width-1 {
				fmt.Fprintf(&b, "br%d_%d(win).\n", i, d)
			} else {
				// Final step calls a predicate with no clauses at all, so
				// the chain dies at full depth regardless of bindings.
				fmt.Fprintf(&b, "br%d_%d(X) :- absent%d(X).\n", i, d, i)
			}
		}
	}
	return b.String()
}

// DAG generates a layered random DAG with edge/2 facts and bounded path
// rules. Layers have `width` nodes; edges go only forward one layer, so
// path/2 terminates without cycle checks. Node names are nL_I.
func DAG(layers, width, outDeg int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("path(X,Y) :- edge(X,Y).\n")
	b.WriteString("path(X,Z) :- edge(X,Y), path(Y,Z).\n")
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			seen := map[int]bool{}
			for k := 0; k < outDeg; k++ {
				j := rng.Intn(width)
				if seen[j] {
					continue
				}
				seen[j] = true
				fmt.Fprintf(&b, "edge(n%d_%d,n%d_%d).\n", l, i, l+1, j)
			}
		}
	}
	return b.String()
}

// Cyclic generates a strongly cyclic directed graph — a ring over all
// nodes plus `chords` random shortcut edges — together with the
// left-recursive transitive-closure program, declared tabled:
//
//	:- table path/2.
//	path(X,Z) :- path(X,Y), edge(Y,Z).
//	path(X,Y) :- edge(X,Y).
//
// The left recursion over a cyclic edge relation is the canonical
// workload the plain OR-tree search cannot finish (every cycle re-derives
// forever until the depth cutoff) and tabled resolution computes as a
// linear fixpoint with the complete answer set. Node names are v0..vN-1.
func Cyclic(nodes, chords int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString(":- table path/2.\n")
	b.WriteString("path(X,Z) :- path(X,Y), edge(Y,Z).\n")
	b.WriteString("path(X,Y) :- edge(X,Y).\n")
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, "edge(v%d,v%d).\n", i, (i+1)%nodes)
	}
	seen := map[[2]int]bool{}
	for k := 0; k < chords; k++ {
		i, j := rng.Intn(nodes), rng.Intn(nodes)
		if i == j || j == (i+1)%nodes || seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		fmt.Fprintf(&b, "edge(v%d,v%d).\n", i, j)
	}
	return b.String()
}

// WEdge is one arc of a generated weighted directed graph. Costs are
// non-negative (the answer-subsumption workloads are negative-free).
type WEdge struct {
	From, To string
	Cost     int64
}

// ShortestProgram renders a weighted edge list as the left-recursive
// weighted-reachability program over edge/3 facts:
//
//	:- table shortest/3 min(3).
//	shortest(X,Z,C) :- shortest(X,Y,A), edge(Y,Z,B), C is A + B.
//	shortest(X,Y,C) :- edge(X,Y,C).
//
// With min true the cost argument is declared a subsumption slot, so each
// table keeps only the least-cost answer per node pair and the program
// terminates even over cyclic graphs. With min false the predicate is
// plain-tabled: over an acyclic graph it enumerates one answer per
// distinct path cost (the O(paths) table the subsumption mode collapses
// to O(node pairs)); over a cyclic graph it diverges.
func ShortestProgram(edges []WEdge, min bool) string {
	var b strings.Builder
	if min {
		b.WriteString(":- table shortest/3 min(3).\n")
	} else {
		b.WriteString(":- table shortest/3.\n")
	}
	b.WriteString("shortest(X,Z,C) :- shortest(X,Y,A), edge(Y,Z,B), C is A + B.\n")
	b.WriteString("shortest(X,Y,C) :- edge(X,Y,C).\n")
	for _, e := range edges {
		fmt.Fprintf(&b, "edge(%s,%s,%d).\n", e.From, e.To, e.Cost)
	}
	return b.String()
}

// WeightedFamilyTreeEdges reuses the FamilyTree shape (a complete tree of
// persons, breadth-first names p0, p1, ...) as a weighted parent graph:
// father links cost 1, mother links cost 2, so two derivations of the
// same descendant pair can carry different costs and subsumption has
// dominated tuples to drop.
func WeightedFamilyTreeEdges(depth, branch int) []WEdge {
	var out []WEdge
	id := 0
	frontier := []int{0}
	for d := 0; d < depth; d++ {
		var next []int
		for _, p := range frontier {
			for c := 0; c < branch; c++ {
				id++
				from, to := fmt.Sprintf("p%d", p), fmt.Sprintf("p%d", id)
				if c%2 == 0 {
					out = append(out, WEdge{from, to, 1})
				} else {
					// Like FamilyTree's mother-and-father pairs: two
					// parallel arcs with different costs.
					out = append(out, WEdge{from, to, 2}, WEdge{from, to, 1})
				}
				next = append(next, id)
			}
		}
		frontier = next
	}
	return out
}

// WeightedDAGEdges generates the layered random DAG of DAG with a
// deterministic random cost in 1..9 per edge. Node names are nL_I.
func WeightedDAGEdges(layers, width, outDeg int, seed int64) []WEdge {
	rng := rand.New(rand.NewSource(seed))
	var out []WEdge
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			seen := map[int]bool{}
			for k := 0; k < outDeg; k++ {
				j := rng.Intn(width)
				if seen[j] {
					continue
				}
				seen[j] = true
				out = append(out, WEdge{
					From: fmt.Sprintf("n%d_%d", l, i),
					To:   fmt.Sprintf("n%d_%d", l+1, j),
					Cost: int64(1 + rng.Intn(9)),
				})
			}
		}
	}
	return out
}

// WeightedCyclicEdges generates the strongly cyclic graph of Cyclic — a
// ring over all nodes plus random chord shortcuts — with costs in 1..9.
// Left-recursive weighted reachability over it is the workload class the
// untabled engine diverges on and plain tabling floods with unboundedly
// many dominated cost tuples; only the min(3) subsumption mode terminates
// with the true minima. Node names are v0..vN-1.
func WeightedCyclicEdges(nodes, chords int, seed int64) []WEdge {
	rng := rand.New(rand.NewSource(seed))
	var out []WEdge
	for i := 0; i < nodes; i++ {
		out = append(out, WEdge{
			From: fmt.Sprintf("v%d", i),
			To:   fmt.Sprintf("v%d", (i+1)%nodes),
			Cost: int64(1 + rng.Intn(9)),
		})
	}
	seen := map[[2]int]bool{}
	for k := 0; k < chords; k++ {
		i, j := rng.Intn(nodes), rng.Intn(nodes)
		if i == j || j == (i+1)%nodes || seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		out = append(out, WEdge{
			From: fmt.Sprintf("v%d", i),
			To:   fmt.Sprintf("v%d", j),
			Cost: int64(1 + rng.Intn(9)),
		})
	}
	return out
}

// WeightedRandomEdges generates a uniformly random (generally cyclic)
// directed graph: n nodes named r0..rN-1, m random edges with costs in
// 1..maxCost, self-loops included (a self-loop is a cycle subsumption
// must cope with). Parallel edges may repeat with different costs.
func WeightedRandomEdges(nodes, m int, maxCost int64, seed int64) []WEdge {
	rng := rand.New(rand.NewSource(seed))
	out := make([]WEdge, 0, m)
	for k := 0; k < m; k++ {
		out = append(out, WEdge{
			From: fmt.Sprintf("r%d", rng.Intn(nodes)),
			To:   fmt.Sprintf("r%d", rng.Intn(nodes)),
			Cost: 1 + rng.Int63n(maxCost),
		})
	}
	return out
}

// WeightedCyclic is ShortestProgram(WeightedCyclicEdges(...), true): the
// full min-tabled weighted-reachability program over a cyclic graph, for
// benchmarks and smoke tests that only need the source text.
func WeightedCyclic(nodes, chords int, seed int64) string {
	return ShortestProgram(WeightedCyclicEdges(nodes, chords, seed), true)
}

// NQueens is the classic pure-logic N-queens program: queens(N, Qs) holds
// when Qs is a safe permutation of 1..N. It exercises arithmetic builtins
// and produces a deep OR-tree with heavy failure — the non-deterministic
// workload the paper's OR-parallelism targets.
const NQueens = `
queens(N, Qs) :- range(1, N, Ns), perm(Ns, Qs), safe(Qs).

range(L, H, [L|T]) :- L < H, M is L + 1, range(M, H, T).
range(H, H, [H]).

perm([], []).
perm(L, [H|T]) :- select(H, L, R), perm(R, T).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

safe([]).
safe([Q|Qs]) :- noattack(Q, Qs, 1), safe(Qs).

noattack(_, [], _).
noattack(Q, [Q2|Qs], D) :-
    Q =\= Q2,
    Q2 - Q =\= D,
    Q - Q2 =\= D,
    D2 is D + 1,
    noattack(Q, Qs, D2).
`

// MapColoring generates a planar-ish adjacency map of `regions` regions in
// a grid-like band and a coloring program over `colors` colors using the
// \= constraint. Conjunctions share variables heavily, making it the
// AND-parallel semi-join testbed.
func MapColoring(regions, colors int) string {
	var b strings.Builder
	for c := 0; c < colors; c++ {
		fmt.Fprintf(&b, "color(c%d).\n", c)
	}
	// Region ri is adjacent to r(i+1) and r(i+2): a band graph that needs
	// 3 colors.
	var head, body []string
	for i := 0; i < regions; i++ {
		head = append(head, fmt.Sprintf("R%d", i))
		body = append(body, fmt.Sprintf("color(R%d)", i))
	}
	for i := 0; i+1 < regions; i++ {
		body = append(body, fmt.Sprintf("R%d \\= R%d", i, i+1))
	}
	for i := 0; i+2 < regions; i++ {
		body = append(body, fmt.Sprintf("R%d \\= R%d", i, i+2))
	}
	fmt.Fprintf(&b, "coloring(%s) :- %s.\n", strings.Join(head, ","), strings.Join(body, ", "))
	return b.String()
}

// SessionQueries returns a session of `n` similar queries against a
// FamilyTree(depth, branch) database: gf queries whose first argument
// walks a small neighborhood of persons, modelling the paper's "second and
// third query that is similar to the first one with some minor changes".
func SessionQueries(n int, persons int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	base := rng.Intn(persons / 2)
	for i := range out {
		p := base + rng.Intn(4) // stay in a small neighborhood
		if p >= persons {
			p = persons - 1
		}
		out[i] = fmt.Sprintf("gf(p%d, G)", p)
	}
	return out
}

// Unbalanced builds a program whose OR-tree has one very deep successful
// subtree and many shallow ones, so naive static work splitting starves:
// the migration-threshold experiment E5 uses it.
func Unbalanced(shallow, deepDepth int) string {
	var b strings.Builder
	for i := 0; i < shallow; i++ {
		fmt.Fprintf(&b, "job(X) :- s%d(X).\n", i)
		fmt.Fprintf(&b, "s%d(t%d).\n", i, i)
	}
	fmt.Fprintf(&b, "job(X) :- d0(X).\n")
	for d := 0; d+1 < deepDepth; d++ {
		fmt.Fprintf(&b, "d%d(X) :- d%d(X).\n", d, d+1)
	}
	fmt.Fprintf(&b, "d%d(deep).\n", deepDepth-1)
	return b.String()
}

// RandomProgram generates a random stratified logic program for
// differential testing: `layers` strata of predicates where layer-k rules
// call only layer-(k-1) predicates, so every query terminates. Facts
// populate layer 0. All search strategies must agree on the solution
// multiset of any query against it.
func RandomProgram(layers, predsPerLayer, clausesPerPred, consts int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	// Layer 0: facts.
	for p := 0; p < predsPerLayer; p++ {
		for c := 0; c < clausesPerPred; c++ {
			fmt.Fprintf(&b, "l0p%d(c%d,c%d).\n", p, rng.Intn(consts), rng.Intn(consts))
		}
	}
	for l := 1; l < layers; l++ {
		for p := 0; p < predsPerLayer; p++ {
			for c := 0; c < clausesPerPred; c++ {
				// Range-restricted: the first goal always carries both
				// head variables, so every derived fact is ground and
				// the bottom-up reference semantics applies.
				body := []string{fmt.Sprintf("l%dp%d(X,Y)", l-1, rng.Intn(predsPerLayer))}
				for g := rng.Intn(2); g > 0; g-- {
					callee := rng.Intn(predsPerLayer)
					if rng.Intn(2) == 0 {
						body = append(body, fmt.Sprintf("l%dp%d(Y,Z)", l-1, callee))
					} else {
						body = append(body, fmt.Sprintf("l%dp%d(X,c%d)", l-1, callee, rng.Intn(consts)))
					}
				}
				fmt.Fprintf(&b, "l%dp%d(X,Y) :- %s.\n", l, p, strings.Join(body, ", "))
			}
		}
	}
	return b.String()
}

// ContextSensitive builds the workload for the conditional-weights
// extension (section 5's "conditional probabilities" remark): n modes and
// n legs where mode m_i is only compatible with leg p_i. The leg arcs are
// *shared pointers* — the same database arc succeeds under one mode and
// fails under every other — so the marginal section-5 scheme cannot
// assign blame (an infinity set by one context is reset by another),
// while a context-conditioned table separates (mode arc, leg arc) pairs.
func ContextSensitive(n int) string {
	var b strings.Builder
	b.WriteString("plan(M,P) :- mode(M), leg(P), ok(M,P).\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "mode(m%d).\n", i)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "leg(p%d).\n", i)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "ok(m%d,p%d).\n", i, i)
	}
	return b.String()
}

// Join builds two relations r/2 and s/2 of the given sizes with a
// controlled join selectivity: matchFrac of r tuples have partners in s.
// The conjunction query `r(X,Y), s(Y,Z)` drives the semi-join experiment.
func Join(rSize, sSize int, matchFrac float64, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	matches := int(float64(rSize) * matchFrac)
	for i := 0; i < rSize; i++ {
		key := fmt.Sprintf("k%d", i)
		if i >= matches {
			key = fmt.Sprintf("miss%d", i)
		}
		fmt.Fprintf(&b, "r(a%d,%s).\n", i, key)
	}
	for j := 0; j < sSize; j++ {
		fmt.Fprintf(&b, "s(k%d,v%d).\n", rng.Intn(rSize), j)
	}
	return b.String()
}
