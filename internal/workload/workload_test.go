package workload

import (
	"context"
	"strings"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/weights"
)

func loadAndRun(t *testing.T, src, query string, opt search.Options) *search.Result {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v", err)
	}
	goals, err := parse.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals, opt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestFamilyTreeParsesAndAnswers(t *testing.T) {
	src := FamilyTree(3, 2)
	res := loadAndRun(t, src, "gf(p0, G)", search.Options{Strategy: search.DFS})
	if len(res.Solutions) == 0 {
		t.Error("family tree should have grandchildren of the root")
	}
	// Ancestor of root reaches all f-linked descendants.
	res2 := loadAndRun(t, src, "anc(p0, X)", search.Options{Strategy: search.DFS, MaxDepth: 32})
	if len(res2.Solutions) < 6 {
		t.Errorf("anc solutions = %d, want several", len(res2.Solutions))
	}
}

func TestFamilyTreeDeterministic(t *testing.T) {
	if FamilyTree(3, 2) != FamilyTree(3, 2) {
		t.Error("generator must be deterministic")
	}
}

func TestDeepFailureShape(t *testing.T) {
	src := DeepFailure(4, 3)
	// Exactly one solution, found last by DFS.
	res := loadAndRun(t, src, "top(W)", search.Options{Strategy: search.DFS})
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d, want 1", len(res.Solutions))
	}
	if got := res.Solutions[0].Bindings["W"].String(); got != "win" {
		t.Errorf("W = %s", got)
	}
	// DFS must have walked the failing branches: at least width-1 failures.
	if res.Stats.Failures < 3 {
		t.Errorf("failures = %d, want >= 3", res.Stats.Failures)
	}
}

func TestDeepFailureLearnedSearchSkipsFailures(t *testing.T) {
	src := DeepFailure(6, 4)
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	tab := weights.NewTable(weights.Config{N: 16, A: 64})
	goals, _ := parse.Query("top(W)")
	first, err := search.Run(context.Background(), db, tab, goals, search.Options{Strategy: search.BestFirst, Learn: true})
	if err != nil {
		t.Fatal(err)
	}
	goals2, _ := parse.Query("top(W)")
	second, err := search.Run(context.Background(), db, tab, goals2, search.Options{
		Strategy: search.BestFirst, Learn: true, MaxSolutions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Expanded*3 > first.Stats.Expanded {
		t.Errorf("learned re-query expanded %d vs first %d; want big reduction",
			second.Stats.Expanded, first.Stats.Expanded)
	}
}

func TestDAGPathQueries(t *testing.T) {
	src := DAG(4, 3, 2, 42)
	res := loadAndRun(t, src, "path(n0_0, Z)", search.Options{Strategy: search.DFS, MaxDepth: 32})
	if len(res.Solutions) == 0 {
		t.Error("DAG should have paths from layer 0")
	}
	if !res.Exhausted {
		t.Error("layered DAG search must terminate")
	}
	// Determinism.
	if DAG(4, 3, 2, 42) != DAG(4, 3, 2, 42) {
		t.Error("DAG not deterministic in seed")
	}
	if DAG(4, 3, 2, 42) == DAG(4, 3, 2, 43) {
		t.Error("different seeds should differ")
	}
}

func TestNQueens4(t *testing.T) {
	db, _, err := kb.LoadString(NQueens)
	if err != nil {
		t.Fatal(err)
	}
	goals, _ := parse.Query("queens(4, Qs)")
	res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals,
		search.Options{Strategy: search.DFS, MaxDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("4-queens has 2 solutions, got %d", len(res.Solutions))
	}
	got := map[string]bool{}
	for _, s := range res.Solutions {
		got[s.Bindings["Qs"].String()] = true
	}
	if !got["[2,4,1,3]"] || !got["[3,1,4,2]"] {
		t.Errorf("solutions = %v", got)
	}
}

func TestMapColoringCounts(t *testing.T) {
	src := MapColoring(4, 3)
	res := loadAndRun(t, src, "coloring(A,B,C,D)", search.Options{Strategy: search.DFS, MaxDepth: 64})
	// A band graph r0-r1-r2-r3 with both +1 and +2 adjacency over 3
	// colors: r0,r1,r2 all distinct (3! orders), r3 differs from r1,r2 =>
	// 1 choice. 6 solutions.
	if len(res.Solutions) != 6 {
		t.Errorf("colorings = %d, want 6", len(res.Solutions))
	}
}

func TestSessionQueriesShape(t *testing.T) {
	qs := SessionQueries(10, 20, 7)
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if !strings.HasPrefix(q, "gf(p") || !strings.HasSuffix(q, ", G)") {
			t.Errorf("malformed query %q", q)
		}
		if _, err := parse.Query(q); err != nil {
			t.Errorf("query %q does not parse: %v", q, err)
		}
	}
	// Deterministic.
	qs2 := SessionQueries(10, 20, 7)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Error("session queries not deterministic")
		}
	}
}

func TestUnbalancedShape(t *testing.T) {
	src := Unbalanced(5, 10)
	res := loadAndRun(t, src, "job(X)", search.Options{Strategy: search.DFS, MaxDepth: 64})
	// 5 shallow solutions + 1 deep one.
	if len(res.Solutions) != 6 {
		t.Errorf("solutions = %d, want 6", len(res.Solutions))
	}
	deep := false
	for _, s := range res.Solutions {
		if s.Bindings["X"].String() == "deep" {
			deep = true
			if s.Depth < 10 {
				t.Errorf("deep solution depth = %d, want >= 10", s.Depth)
			}
		}
	}
	if !deep {
		t.Error("deep solution missing")
	}
}

func TestJoinSelectivity(t *testing.T) {
	src := Join(10, 20, 0.5, 3)
	res := loadAndRun(t, src, "r(X,K), s(K,V)", search.Options{Strategy: search.DFS, MaxDepth: 64})
	if len(res.Solutions) == 0 {
		t.Error("join should produce matches at 50% selectivity")
	}
	// Zero selectivity: no matches.
	src0 := Join(10, 20, 0, 3)
	res0 := loadAndRun(t, src0, "r(X,K), s(K,V)", search.Options{Strategy: search.DFS, MaxDepth: 64})
	if len(res0.Solutions) != 0 {
		t.Errorf("0%% selectivity gave %d matches", len(res0.Solutions))
	}
}

func TestAllGeneratorsParse(t *testing.T) {
	srcs := map[string]string{
		"FamilyTree":  FamilyTree(4, 3),
		"DeepFailure": DeepFailure(8, 6),
		"DAG":         DAG(5, 4, 3, 1),
		"NQueens":     NQueens,
		"MapColoring": MapColoring(6, 3),
		"Unbalanced":  Unbalanced(10, 20),
		"Join":        Join(50, 50, 0.3, 2),
	}
	for name, src := range srcs {
		if _, _, err := kb.LoadString(src); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
}
