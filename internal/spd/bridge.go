package spd

import (
	"blog/internal/kb"
	"blog/internal/term"
	"blog/internal/weights"
)

// BuildBlocks serializes a knowledge base into the figure-4 block layout:
// one block per clause whose pointers are the clause's resolving arcs,
// named by the goal's predicate indicator and weighted from the store.
// Block IDs equal clause IDs, so the engine's static coordinates address
// the disk directly.
func BuildBlocks(db *kb.DB, ws weights.Store) []Block {
	blocks := make([]Block, db.Len())
	for _, c := range db.Clauses() {
		b := Block{ID: BlockID(c.ID), Data: c.String(), Key: c.Head}
		for pos, g := range c.Body {
			name, _ := term.Indicator(g)
			for _, callee := range db.Candidates(nil, g) {
				arc := kb.Arc{Caller: c.ID, Pos: pos, Callee: callee.ID}
				b.Pointers = append(b.Pointers, Pointer{
					Name:   name,
					Target: BlockID(callee.ID),
					Weight: ws.Weight(arc),
				})
			}
		}
		blocks[c.ID] = b
	}
	return blocks
}

// SeedsForGoals returns the block IDs of the clauses that can resolve the
// given query goals: the seed set a processor hands the SPD when a query
// arrives.
func SeedsForGoals(db *kb.DB, goals []term.Term) []BlockID {
	var out []BlockID
	seen := make(map[kb.ClauseID]bool)
	for _, g := range goals {
		for _, c := range db.Candidates(nil, g) {
			if !seen[c.ID] {
				seen[c.ID] = true
				out = append(out, BlockID(c.ID))
			}
		}
	}
	return out
}
