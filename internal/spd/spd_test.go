package spd

import (
	"strings"
	"testing"

	"blog/internal/kb"
	"blog/internal/parse"
	"blog/internal/weights"
)

// tinyGeo keeps every number small so placement is easy to reason about:
// 4 cylinders x 2 surfaces x 4 blocks = 32 blocks.
func tinyGeo() Geometry {
	return Geometry{
		Cylinders:        4,
		Surfaces:         2,
		BlocksPerTrack:   4,
		SeekPerCylinder:  10,
		RotationPerBlock: 5,
		CacheOp:          1,
	}
}

// chainBlocks builds n blocks where block i points to block i+1.
func chainBlocks(n int) []Block {
	out := make([]Block, n)
	for i := range out {
		out[i] = Block{ID: BlockID(i), Data: "b"}
		if i+1 < n {
			out[i].Pointers = []Pointer{{Name: "next", Target: BlockID(i + 1)}}
		}
	}
	return out
}

func TestStorePlacement(t *testing.T) {
	d := New(tinyGeo(), MIMD, 2)
	if err := d.Store(chainBlocks(10)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 {
		t.Errorf("len = %d", d.Len())
	}
	// Block 0 at cyl0/surf0/slot0; block 4 at cyl0/surf1/slot0;
	// block 8 at cyl1/surf0/slot0.
	if a := d.addr[4]; a.cylinder != 0 || a.surface != 1 || a.slot != 0 {
		t.Errorf("addr[4] = %+v", a)
	}
	if a := d.addr[8]; a.cylinder != 1 || a.surface != 0 {
		t.Errorf("addr[8] = %+v", a)
	}
}

func TestStoreErrors(t *testing.T) {
	d := New(tinyGeo(), MIMD, 1)
	if err := d.Store(chainBlocks(33)); err == nil {
		t.Error("over capacity should fail")
	}
	bad := chainBlocks(2)
	bad[1].ID = 7
	if err := d.Store(bad); err == nil {
		t.Error("non-dense IDs should fail")
	}
}

func TestMarkBlocksAndRead(t *testing.T) {
	d := New(tinyGeo(), MIMD, 2)
	if err := d.Store(chainBlocks(10)); err != nil {
		t.Fatal(err)
	}
	d.MarkBlocks([]BlockID{2, 5, 999, -1}) // out-of-range ignored
	marked := d.Marked()
	if len(marked) != 2 || marked[0] != 2 || marked[1] != 5 {
		t.Errorf("marked = %v", marked)
	}
	if !d.IsMarked(5) || d.IsMarked(3) {
		t.Error("IsMarked wrong")
	}
	blocks := d.ReadMarked()
	if len(blocks) != 2 || blocks[0].ID != 2 {
		t.Errorf("read = %v", blocks)
	}
	if d.Stats().BlocksRead != 2 {
		t.Errorf("BlocksRead = %d", d.Stats().BlocksRead)
	}
}

func TestFollowMarkedHammingDistance(t *testing.T) {
	d := New(tinyGeo(), MIMD, 4)
	if err := d.Store(chainBlocks(10)); err != nil {
		t.Fatal(err)
	}
	d.MarkBlocks([]BlockID{0})
	d.FollowMarked("", 3)
	marked := d.Marked()
	// Distance 3 from block 0 along the chain: blocks 0,1,2,3.
	if len(marked) != 4 {
		t.Fatalf("marked = %v, want 0..3", marked)
	}
	for i, id := range marked {
		if id != BlockID(i) {
			t.Errorf("marked = %v", marked)
		}
	}
}

func TestFollowMarkedByName(t *testing.T) {
	blocks := []Block{
		{ID: 0, Pointers: []Pointer{{Name: "f", Target: 1}, {Name: "m", Target: 2}}},
		{ID: 1}, {ID: 2},
	}
	d := New(tinyGeo(), MIMD, 2)
	if err := d.Store(blocks); err != nil {
		t.Fatal(err)
	}
	d.MarkBlocks([]BlockID{0})
	d.FollowMarked("f", 1)
	marked := d.Marked()
	if len(marked) != 2 || marked[1] != 1 {
		t.Errorf("named follow marked %v, want [0 1]", marked)
	}
}

func TestMarkWhereSweepsWholeDisk(t *testing.T) {
	d := New(tinyGeo(), MIMD, 1)
	blocks := chainBlocks(20)
	blocks[7].Data = "special"
	blocks[13].Data = "special"
	if err := d.Store(blocks); err != nil {
		t.Fatal(err)
	}
	d.MarkWhere(func(b *Block) bool { return b.Data == "special" })
	marked := d.Marked()
	if len(marked) != 2 || marked[0] != 7 || marked[1] != 13 {
		t.Errorf("marked = %v", marked)
	}
	// A full sweep loads every populated track exactly once per surface.
	st := d.Stats()
	if st.TrackLoads == 0 || st.CacheOps < 20 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheHitAccounting(t *testing.T) {
	d := New(tinyGeo(), MIMD, 2)
	if err := d.Store(chainBlocks(10)); err != nil {
		t.Fatal(err)
	}
	d.MarkBlocks([]BlockID{0})
	first := d.Stats().TrackLoads
	d.MarkBlocks([]BlockID{1}) // same track: hit
	if d.Stats().TrackLoads != first {
		t.Error("second mark on same track should not reload")
	}
	if d.Stats().CacheHits == 0 {
		t.Error("cache hit not counted")
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	// Cache of 1 track: alternating cylinders always miss.
	d := New(tinyGeo(), MIMD, 1)
	if err := d.Store(chainBlocks(32)); err != nil {
		t.Fatal(err)
	}
	// Blocks 0 (cyl0 surf0) and 8 (cyl1 surf0) fight over SP0's cache.
	d.MarkBlocks([]BlockID{0})
	d.MarkBlocks([]BlockID{8})
	d.MarkBlocks([]BlockID{0})
	st := d.Stats()
	if st.TrackLoads != 3 {
		t.Errorf("track loads = %d, want 3 (thrash)", st.TrackLoads)
	}
	// With a 2-track cache the third access hits.
	d2 := New(tinyGeo(), MIMD, 2)
	if err := d2.Store(chainBlocks(32)); err != nil {
		t.Fatal(err)
	}
	d2.MarkBlocks([]BlockID{0})
	d2.MarkBlocks([]BlockID{8})
	d2.MarkBlocks([]BlockID{0})
	if d2.Stats().TrackLoads != 2 {
		t.Errorf("track loads = %d, want 2 with bigger cache", d2.Stats().TrackLoads)
	}
}

func TestElapsedGrowsWithSeeks(t *testing.T) {
	d := New(tinyGeo(), MIMD, 1)
	if err := d.Store(chainBlocks(32)); err != nil {
		t.Fatal(err)
	}
	d.MarkBlocks([]BlockID{0})
	e1 := d.Elapsed()
	if e1 == 0 {
		t.Error("track load should cost time")
	}
	d.MarkBlocks([]BlockID{24}) // cylinder 3: long seek
	if d.Elapsed()-e1 <= e1 {
		t.Errorf("long seek should cost more: %d then %d", e1, d.Elapsed()-e1)
	}
}

func TestSIMDDefersCrossCylinderPointers(t *testing.T) {
	// A pointer from cylinder 0 to cylinder 1 must be deferred in SIMD.
	blocks := chainBlocks(10) // block 7 (cyl0) -> block 8 (cyl1)
	d := New(tinyGeo(), SIMD, 2)
	if err := d.Store(blocks); err != nil {
		t.Fatal(err)
	}
	d.MarkBlocks([]BlockID{7})
	d.FollowMarked("", 1)
	if !d.IsMarked(8) {
		t.Error("deferred pointer never applied")
	}
	if d.Stats().Deferred == 0 {
		t.Error("cross-cylinder transfer not counted as deferred")
	}
}

func TestSIMDAndMIMDMarkSameSet(t *testing.T) {
	for _, dist := range []int{1, 2, 4, 8} {
		a := New(tinyGeo(), MIMD, 2)
		b := New(tinyGeo(), SIMD, 2)
		if err := a.Store(chainBlocks(20)); err != nil {
			t.Fatal(err)
		}
		if err := b.Store(chainBlocks(20)); err != nil {
			t.Fatal(err)
		}
		a.MarkBlocks([]BlockID{0})
		a.FollowMarked("", dist)
		b.MarkBlocks([]BlockID{0})
		b.FollowMarked("", dist)
		am, bm := a.Marked(), b.Marked()
		if len(am) != len(bm) {
			t.Fatalf("dist %d: MIMD marked %v, SIMD marked %v", dist, am, bm)
		}
		for i := range am {
			if am[i] != bm[i] {
				t.Fatalf("dist %d: MIMD %v != SIMD %v", dist, am, bm)
			}
		}
	}
}

func TestPageSubgraph(t *testing.T) {
	d := New(tinyGeo(), MIMD, 4)
	if err := d.Store(chainBlocks(12)); err != nil {
		t.Fatal(err)
	}
	blocks, cost := d.PageSubgraph([]BlockID{3}, 2)
	if len(blocks) != 3 { // 3,4,5
		t.Errorf("paged %d blocks, want 3", len(blocks))
	}
	if cost <= 0 {
		t.Error("paging must cost cycles")
	}
}

func TestUpdateWeight(t *testing.T) {
	d := New(tinyGeo(), MIMD, 2)
	if err := d.Store(chainBlocks(4)); err != nil {
		t.Fatal(err)
	}
	if d.UpdateWeight(0, 0, 9) {
		t.Error("update must require a mark")
	}
	d.MarkBlocks([]BlockID{0})
	if !d.UpdateWeight(0, 0, 9) {
		t.Error("marked update should succeed")
	}
	if d.Block(0).Pointers[0].Weight != 9 {
		t.Error("weight not written")
	}
	if d.UpdateWeight(0, 5, 1) {
		t.Error("pointer index out of range")
	}
}

func TestBuildBlocksFromKB(t *testing.T) {
	db, _, err := kb.LoadString(`
gf(X,Z) :- f(X,Y), f(Y,Z).
f(sam,larry).
f(larry,den).
`)
	if err != nil {
		t.Fatal(err)
	}
	ws := weights.NewTable(weights.Config{N: 16, A: 64})
	blocks := BuildBlocks(db, ws)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	rule := blocks[0]
	if !strings.Contains(rule.Data, "gf(X,Z)") {
		t.Errorf("data = %q", rule.Data)
	}
	// Rule body: f(X,Y) resolves with both facts, f(Y,Z) too: 4 pointers.
	if len(rule.Pointers) != 4 {
		t.Fatalf("pointers = %v", rule.Pointers)
	}
	for _, p := range rule.Pointers {
		if p.Name != "f/2" {
			t.Errorf("pointer name = %s", p.Name)
		}
		if p.Weight != ws.Config().UnknownWeight() {
			t.Errorf("weight = %v, want unknown coding", p.Weight)
		}
	}
	// Facts have no pointers.
	if len(blocks[1].Pointers) != 0 {
		t.Error("fact block should have no pointers")
	}
}

func TestMarkComparand(t *testing.T) {
	db, _, err := kb.LoadString(`
gf(X,Z) :- f(X,Y), f(Y,Z).
f(sam,larry).
f(larry,den).
m(peg,den).
`)
	if err != nil {
		t.Fatal(err)
	}
	blocks := BuildBlocks(db, weights.NewTable(weights.DefaultConfig()))
	d := New(tinyGeo(), MIMD, 4)
	if err := d.Store(blocks); err != nil {
		t.Fatal(err)
	}
	// Comparand f(larry, Anything): marks only f(larry,den).
	pat, err := parse.OneTerm("f(larry, X)")
	if err != nil {
		t.Fatal(err)
	}
	d.MarkComparand(pat)
	marked := d.Marked()
	if len(marked) != 1 || marked[0] != 2 {
		t.Errorf("marked = %v, want [2]", marked)
	}
	// Open comparand f(A, B): both f facts. Block variables must not be
	// instantiated by constants: comparand f(sam, sam) matches nothing.
	d.ClearMarks()
	pat2, _ := parse.OneTerm("f(A, B)")
	d.MarkComparand(pat2)
	if got := d.Marked(); len(got) != 2 {
		t.Errorf("open comparand marked %v", got)
	}
	d.ClearMarks()
	pat3, _ := parse.OneTerm("f(sam, sam)")
	d.MarkComparand(pat3)
	if got := d.Marked(); len(got) != 0 {
		t.Errorf("mismatching comparand marked %v", got)
	}
	// The rule head gf(X,Z) has variables: a ground comparand must not
	// bind them (one-way match), so gf(sam,den) does not mark the rule.
	d.ClearMarks()
	pat4, _ := parse.OneTerm("gf(sam, den)")
	d.MarkComparand(pat4)
	if got := d.Marked(); len(got) != 0 {
		t.Errorf("comparand bound database variables: %v", got)
	}
	// But a variable-shaped comparand does match the rule head.
	d.ClearMarks()
	pat5, _ := parse.OneTerm("gf(A, B)")
	d.MarkComparand(pat5)
	if got := d.Marked(); len(got) != 1 || got[0] != 0 {
		t.Errorf("rule comparand marked %v", got)
	}
}

func TestMarkComparandCostsSweep(t *testing.T) {
	db, _, err := kb.LoadString("f(a,b). f(b,c). f(c,d).")
	if err != nil {
		t.Fatal(err)
	}
	blocks := BuildBlocks(db, weights.NewTable(weights.DefaultConfig()))
	d := New(tinyGeo(), MIMD, 2)
	if err := d.Store(blocks); err != nil {
		t.Fatal(err)
	}
	pat, _ := parse.OneTerm("f(b, X)")
	d.MarkComparand(pat)
	if d.Elapsed() == 0 || d.Stats().CacheOps == 0 {
		t.Error("associative sweep must cost time and cache operations")
	}
}

func TestSeedsForGoals(t *testing.T) {
	db, _, err := kb.LoadString(`
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
f(sam,larry).
m(peg,den).
`)
	if err != nil {
		t.Fatal(err)
	}
	goals, _ := parse.Query("gf(sam,G)")
	seeds := SeedsForGoals(db, goals)
	if len(seeds) != 2 || seeds[0] != 0 || seeds[1] != 1 {
		t.Errorf("seeds = %v", seeds)
	}
}

func TestModeString(t *testing.T) {
	if MIMD.String() != "mimd" || SIMD.String() != "simd" {
		t.Error("mode names")
	}
}

func BenchmarkPageSubgraph(b *testing.B) {
	geo := DefaultGeometry()
	d := New(geo, MIMD, 4)
	if err := d.Store(chainBlocks(512)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PageSubgraph([]BlockID{BlockID(i % 500)}, 4)
	}
}
