// Package spd simulates the Semantic Paging Disk of section 6 of the
// B-LOG paper (Lipovski's CASSM lineage): one or more search processors
// (SPs), each owning one disk surface, with a per-SP RAM cache able to
// hold track images and logic that can
//
//  1. search the data in cached blocks associatively and mark them,
//  2. follow all pointers (or only pointers with specified names) from
//     marked blocks to other blocks and mark those, and
//  3. output, replace, insert and delete words in marked blocks.
//
// Applying (2) N times from a seed set yields every block within Hamming
// distance N — the "semantic page" the processors page into their local
// memories.
//
// The simulator is deterministic and cost-accounted: track loads pay seek
// plus rotational latency on the owning SP, cache operations pay a small
// per-block logic cost, and the two SP ganging modes of the paper are both
// modelled. In SIMD mode all SPs work the same cylinder in lockstep
// (pointers to other cylinders are saved until that cylinder is loaded);
// in MIMD mode each SP serves its own surface independently and the
// elapsed time of a sweep is the maximum busy time across SPs.
package spd

import (
	"fmt"
	"sort"

	"blog/internal/sim"
	"blog/internal/term"
	"blog/internal/unify"
)

// BlockID is a global block number, the paper's pointer representation.
type BlockID int

// Pointer is a named, weighted pointer as stored in figure 4's blocks.
type Pointer struct {
	Name   string
	Target BlockID
	Weight float64
}

// Block is one variable-length record: a Horn clause plus its pointers.
type Block struct {
	ID       BlockID
	Data     string
	Pointers []Pointer
	// Key is the term the associative comparand search matches against
	// (the clause head for database blocks); nil blocks never match a
	// comparand.
	Key term.Term
}

// Mode selects how multiple SPs cooperate.
type Mode int

const (
	// MIMD: SPs serve their own surfaces independently.
	MIMD Mode = iota
	// SIMD: all SPs work one cylinder at a time in lockstep.
	SIMD
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == SIMD {
		return "simd"
	}
	return "mimd"
}

// Geometry fixes the disk shape and latency constants (in cycles).
type Geometry struct {
	Cylinders      int
	Surfaces       int // one SP per surface
	BlocksPerTrack int
	// SeekPerCylinder is the head-move cost per cylinder of distance.
	SeekPerCylinder sim.Time
	// RotationPerBlock is the transfer time of one block slot; loading a
	// track costs BlocksPerTrack of these (full revolution).
	RotationPerBlock sim.Time
	// CacheOp is the cost of one associative operation over one cached
	// block (mark test or pointer follow).
	CacheOp sim.Time
}

// DefaultGeometry models a small 1985-era drive: slow mechanics, fast
// associative cache logic.
func DefaultGeometry() Geometry {
	return Geometry{
		Cylinders:        64,
		Surfaces:         4,
		BlocksPerTrack:   16,
		SeekPerCylinder:  20,
		RotationPerBlock: 50,
		CacheOp:          1,
	}
}

// TrackCapacity returns blocks per cylinder across all surfaces.
func (g Geometry) cylinderCapacity() int { return g.Surfaces * g.BlocksPerTrack }

// Capacity returns the total block capacity.
func (g Geometry) Capacity() int { return g.Cylinders * g.cylinderCapacity() }

// address locates a block on the disk.
type address struct {
	cylinder int
	surface  int
	slot     int
}

// Stats counts simulator activity.
type Stats struct {
	TrackLoads   uint64
	CacheHits    uint64
	SeekCycles   sim.Time
	RotateCycles sim.Time
	CacheOps     uint64
	MarksSet     uint64
	BlocksRead   uint64
	Deferred     uint64 // cross-cylinder pointer transfers saved for later
}

// SPD is one semantic paging disk instance. It is not safe for concurrent
// use; the machine model serializes access per disk, as the hardware does.
type SPD struct {
	geo  Geometry
	mode Mode
	// cacheTracks is how many track images each SP's cache holds.
	cacheTracks int

	blocks []Block
	addr   []address
	// cached[s] holds the cylinders SP s currently caches, LRU first.
	cached [][]int

	marked map[BlockID]bool
	// spBusy accumulates each SP's busy time within the current sweep.
	spBusy []sim.Time
	// elapsed is the completed simulated time across sweeps.
	elapsed sim.Time
	stats   Stats
}

// New creates an SPD with the given geometry, ganging mode, and per-SP
// cache capacity in tracks (minimum 1).
func New(geo Geometry, mode Mode, cacheTracks int) *SPD {
	if cacheTracks < 1 {
		cacheTracks = 1
	}
	d := &SPD{
		geo:         geo,
		mode:        mode,
		cacheTracks: cacheTracks,
		cached:      make([][]int, geo.Surfaces),
		marked:      make(map[BlockID]bool),
		spBusy:      make([]sim.Time, geo.Surfaces),
	}
	return d
}

// Store places blocks on the disk in ID order: consecutive blocks fill a
// track, then the next surface, then the next cylinder, matching the
// paper's "number of blocks above it in the track" numbering. It replaces
// any previous contents.
func (d *SPD) Store(blocks []Block) error {
	if len(blocks) > d.geo.Capacity() {
		return fmt.Errorf("spd: %d blocks exceed capacity %d", len(blocks), d.geo.Capacity())
	}
	d.blocks = make([]Block, len(blocks))
	d.addr = make([]address, len(blocks))
	for i, b := range blocks {
		if int(b.ID) != i {
			return fmt.Errorf("spd: block %d has ID %d; IDs must be dense and ordered", i, b.ID)
		}
		d.blocks[i] = b
		slot := i % d.geo.BlocksPerTrack
		surface := (i / d.geo.BlocksPerTrack) % d.geo.Surfaces
		cyl := i / d.geo.cylinderCapacity()
		d.addr[i] = address{cylinder: cyl, surface: surface, slot: slot}
	}
	for s := range d.cached {
		d.cached[s] = nil
	}
	d.ClearMarks()
	return nil
}

// Len returns the number of stored blocks.
func (d *SPD) Len() int { return len(d.blocks) }

// Block returns a stored block by ID (zero Block if out of range).
func (d *SPD) Block(id BlockID) Block {
	if id < 0 || int(id) >= len(d.blocks) {
		return Block{}
	}
	return d.blocks[id]
}

// ClearMarks unmarks every block (free: marks are tag bits in the caches).
func (d *SPD) ClearMarks() { d.marked = make(map[BlockID]bool) }

// Marked returns the marked block IDs in ascending order.
func (d *SPD) Marked() []BlockID {
	out := make([]BlockID, 0, len(d.marked))
	for id := range d.marked {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMarked reports whether a block is marked.
func (d *SPD) IsMarked(id BlockID) bool { return d.marked[id] }

// Stats returns a copy of the counters.
func (d *SPD) Stats() Stats { return d.stats }

// Elapsed returns total simulated cycles consumed so far.
func (d *SPD) Elapsed() sim.Time { return d.elapsed }

// loadTrack ensures SP s caches cylinder cyl, paying seek+rotation on a
// miss. Returns whether it was a hit.
func (d *SPD) loadTrack(s, cyl int) bool {
	cache := d.cached[s]
	for i, c := range cache {
		if c == cyl {
			// LRU refresh.
			copy(cache[i:], cache[i+1:])
			cache[len(cache)-1] = cyl
			d.stats.CacheHits++
			return true
		}
	}
	// Miss: seek from the SP's most recent cylinder, then one revolution.
	from := 0
	if len(cache) > 0 {
		from = cache[len(cache)-1]
	}
	dist := cyl - from
	if dist < 0 {
		dist = -dist
	}
	seek := sim.Time(dist) * d.geo.SeekPerCylinder
	rotate := sim.Time(d.geo.BlocksPerTrack) * d.geo.RotationPerBlock
	d.spBusy[s] += seek + rotate
	d.stats.SeekCycles += seek
	d.stats.RotateCycles += rotate
	d.stats.TrackLoads++
	if len(cache) >= d.cacheTracks {
		cache = cache[1:]
	}
	d.cached[s] = append(cache, cyl)
	return false
}

// finishSweep folds per-SP busy time into elapsed per the ganging mode and
// resets the per-sweep accumulators.
func (d *SPD) finishSweep() {
	var t sim.Time
	for s := range d.spBusy {
		if d.spBusy[s] > t {
			t = d.spBusy[s]
		}
		d.spBusy[s] = 0
	}
	d.elapsed += t
}

// chargeCacheOp charges one associative operation to SP s.
func (d *SPD) chargeCacheOp(s int) {
	d.spBusy[s] += d.geo.CacheOp
	d.stats.CacheOps++
}

// MarkBlocks marks the given blocks, loading their tracks. This is
// operation (1) for the common case where the comparand identifies blocks
// directly (the engine knows clause IDs).
func (d *SPD) MarkBlocks(ids []BlockID) {
	for _, id := range ids {
		if id < 0 || int(id) >= len(d.blocks) {
			continue
		}
		a := d.addr[id]
		d.loadTrack(a.surface, a.cylinder)
		d.chargeCacheOp(a.surface)
		if !d.marked[id] {
			d.marked[id] = true
			d.stats.MarksSet++
		}
	}
	d.finishSweep()
}

// MarkWhere performs a full associative sweep: every track is loaded once
// (in cylinder order) and pred is evaluated on every block; matches are
// marked. This is operation (1) with a content comparand.
func (d *SPD) MarkWhere(pred func(*Block) bool) {
	if len(d.blocks) == 0 {
		return
	}
	maxCyl := d.addr[len(d.blocks)-1].cylinder
	for cyl := 0; cyl <= maxCyl; cyl++ {
		for s := 0; s < d.geo.Surfaces; s++ {
			d.loadTrack(s, cyl)
		}
		if d.mode == SIMD {
			d.lockstep()
		}
	}
	for i := range d.blocks {
		b := &d.blocks[i]
		d.chargeCacheOp(d.addr[i].surface)
		if pred(b) && !d.marked[b.ID] {
			d.marked[b.ID] = true
			d.stats.MarksSet++
		}
	}
	d.finishSweep()
}

// MarkComparand performs the associative search of operation (1) with a
// term comparand: every block whose Key the pattern matches one-way
// (pattern variables may bind, block variables may not — the hardware
// compares against stored data) is marked. Like MarkWhere it sweeps the
// whole disk once; the comparand is broadcast to every SP's cache logic.
func (d *SPD) MarkComparand(pattern term.Term) {
	// Compile the comparand once; each block match instantiates a fresh
	// activation frame so bindings from one block do not constrain the
	// next (a ground pattern is shared with zero per-block allocation).
	sk, names := term.Compile(pattern)
	d.MarkWhere(func(b *Block) bool {
		if b.Key == nil {
			return false
		}
		p := sk.Instantiate(term.NewFrame(names))
		_, ok := unify.Match(nil, p, b.Key)
		return ok
	})
}

// lockstep equalizes SP busy time (SIMD gangs advance together).
func (d *SPD) lockstep() {
	var t sim.Time
	for _, b := range d.spBusy {
		if b > t {
			t = b
		}
	}
	for s := range d.spBusy {
		d.spBusy[s] = t
	}
}

// FollowMarked implements operation (2) applied `times` times: follow
// pointers (all, or only those named `name` when name != "") from marked
// blocks and mark the targets. Pointers into cylinders not currently
// cached are deferred and processed when their cylinder loads, exactly as
// the paper describes for SIMD cylinder mode; in MIMD mode each target's
// owning SP loads the track on demand.
func (d *SPD) FollowMarked(name string, times int) {
	frontier := d.Marked()
	for step := 0; step < times && len(frontier) > 0; step++ {
		var next []BlockID
		if d.mode == SIMD {
			next = d.followSIMD(frontier, name)
		} else {
			next = d.followMIMD(frontier, name)
		}
		frontier = next
	}
	d.finishSweep()
}

// followMIMD follows one pointer hop with independent SPs.
func (d *SPD) followMIMD(frontier []BlockID, name string) []BlockID {
	var next []BlockID
	for _, id := range frontier {
		src := d.addr[id]
		d.loadTrack(src.surface, src.cylinder)
		for _, p := range d.blocks[id].Pointers {
			if name != "" && p.Name != name {
				continue
			}
			d.chargeCacheOp(src.surface)
			tgt := p.Target
			if tgt < 0 || int(tgt) >= len(d.blocks) {
				continue
			}
			ta := d.addr[tgt]
			d.loadTrack(ta.surface, ta.cylinder)
			d.chargeCacheOp(ta.surface)
			if !d.marked[tgt] {
				d.marked[tgt] = true
				d.stats.MarksSet++
				next = append(next, tgt)
			}
		}
	}
	return next
}

// followSIMD follows one pointer hop in cylinder-lockstep mode: the gang
// visits each cylinder that holds frontier blocks once; pointer targets in
// other cylinders are queued ("the pointer is saved until the other
// cylinder is loaded into the cache").
func (d *SPD) followSIMD(frontier []BlockID, name string) []BlockID {
	// pending[c] holds pointers waiting for cylinder c.
	pending := make(map[int][]BlockID)
	for _, id := range frontier {
		pending[d.addr[id].cylinder] = append(pending[d.addr[id].cylinder], id)
	}
	var next []BlockID
	// sources marked true are frontier blocks whose pointers still need
	// following; targets are marks to apply.
	targets := make(map[int][]BlockID)
	processed := make(map[BlockID]bool)
	for len(pending) > 0 || len(targets) > 0 {
		cyl := pickCylinder(pending, targets)
		// Gang seek: every SP loads its track of this cylinder.
		for s := 0; s < d.geo.Surfaces; s++ {
			d.loadTrack(s, cyl)
		}
		d.lockstep()
		// Apply deferred target marks on this cylinder.
		for _, tgt := range targets[cyl] {
			d.chargeCacheOp(d.addr[tgt].surface)
			if !d.marked[tgt] {
				d.marked[tgt] = true
				d.stats.MarksSet++
				next = append(next, tgt)
			}
		}
		delete(targets, cyl)
		// Follow pointers of frontier blocks on this cylinder.
		for _, id := range pending[cyl] {
			if processed[id] {
				continue
			}
			processed[id] = true
			for _, p := range d.blocks[id].Pointers {
				if name != "" && p.Name != name {
					continue
				}
				d.chargeCacheOp(d.addr[id].surface)
				tgt := p.Target
				if tgt < 0 || int(tgt) >= len(d.blocks) {
					continue
				}
				tc := d.addr[tgt].cylinder
				if tc == cyl {
					d.chargeCacheOp(d.addr[tgt].surface)
					if !d.marked[tgt] {
						d.marked[tgt] = true
						d.stats.MarksSet++
						next = append(next, tgt)
					}
				} else {
					targets[tc] = append(targets[tc], tgt)
					d.stats.Deferred++
				}
			}
		}
		delete(pending, cyl)
		d.lockstep()
	}
	return next
}

// pickCylinder chooses the lowest cylinder with pending work, a simple
// elevator order that keeps the simulation deterministic.
func pickCylinder(a, b map[int][]BlockID) int {
	best := -1
	for c := range a {
		if best == -1 || c < best {
			best = c
		}
	}
	for c := range b {
		if best == -1 || c < best {
			best = c
		}
	}
	return best
}

// ReadMarked implements operation (3)'s output action: it returns the
// marked blocks, charging transfer cost per block.
func (d *SPD) ReadMarked() []Block {
	ids := d.Marked()
	out := make([]Block, 0, len(ids))
	for _, id := range ids {
		a := d.addr[id]
		d.loadTrack(a.surface, a.cylinder)
		d.spBusy[a.surface] += d.geo.RotationPerBlock // transfer out
		d.stats.BlocksRead++
		out = append(out, d.blocks[id])
	}
	d.finishSweep()
	return out
}

// UpdateWeight rewrites the weight word of one pointer in a marked block,
// operation (3)'s replace action. It fails silently when the block is not
// marked (hardware requires a mark to address the block).
func (d *SPD) UpdateWeight(id BlockID, ptrIndex int, w float64) bool {
	if !d.marked[id] || int(id) >= len(d.blocks) {
		return false
	}
	b := &d.blocks[id]
	if ptrIndex < 0 || ptrIndex >= len(b.Pointers) {
		return false
	}
	a := d.addr[id]
	d.loadTrack(a.surface, a.cylinder)
	d.chargeCacheOp(a.surface)
	b.Pointers[ptrIndex].Weight = w
	d.finishSweep()
	return true
}

// PageSubgraph is the semantic paging operation the processors use: mark
// the seed blocks, follow all pointers within the given Hamming distance,
// and read the subgraph out. It returns the blocks and the cycles the
// whole operation took.
func (d *SPD) PageSubgraph(seeds []BlockID, distance int) ([]Block, sim.Time) {
	before := d.elapsed
	d.ClearMarks()
	d.MarkBlocks(seeds)
	d.FollowMarked("", distance)
	blocks := d.ReadMarked()
	return blocks, d.elapsed - before
}
