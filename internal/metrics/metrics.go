// Package metrics provides the counters, summaries and fixed-width table
// rendering shared by the benchmark harness and command-line tools.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is an atomic event counter safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Summary accumulates a stream of float64 observations.
type Summary struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Observe records one value.
func (s *Summary) Observe(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Std returns the population standard deviation (0 when empty).
func (s *Summary) Std() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// String renders "mean=… min=… max=… n=…".
func (s *Summary) String() string {
	return fmt.Sprintf("mean=%.4g min=%.4g max=%.4g n=%d", s.Mean(), s.min, s.max, s.n)
}

// Table renders aligned fixed-width text tables, the output format of
// every experiment in EXPERIMENTS.md.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are stringified with %v, floats compactly.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, c := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], c)
		}
		b.WriteString(strings.TrimRight(line.String(), " ") + "\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0..100) of xs, interpolating
// between ranks. It sorts a copy; xs is unchanged.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
