package metrics

import (
	"math"
	"sync/atomic"
)

// latencyBounds are the upper bucket bounds, in seconds, of the query
// latency histogram: a 1-2.5-5 log ladder from 100µs to 60s. The implicit
// final bucket is +Inf.
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60,
}

// Histogram is a fixed-boundary log-bucketed histogram with atomic
// counters: Observe is lock-free and allocation-free, and quantiles are
// interpolated from the bucket counts — replacing the bounded sample ring
// the server previously kept, which forgot all but the last N
// observations. Bucket semantics match Prometheus: counts[i] observations
// fell at or below bounds[i], with one overflow bucket (+Inf) at the end.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// NewLatencyHistogram returns a histogram bucketed for query latencies in
// seconds (100µs–60s log ladder).
func NewLatencyHistogram() *Histogram { return NewHistogram(latencyBounds) }

// Observe records one value. Out-of-range observations clamp instead of
// vanishing: anything at or below the lowest bound counts in the first
// bucket, anything above the highest bound counts in the overflow (+Inf)
// bucket and Quantile clamps it to the top bound. NaN and negative values
// are recorded as 0 — NaN especially must never reach the CAS-accumulated
// Sum, where one observation would poison every later read.
func (h *Histogram) Observe(v float64) {
	if v != v || v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and the cumulative count at or below
// each bound, Prometheus-style (the caller appends the +Inf bucket via
// Count). The two slices are freshly allocated.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.bounds))
	var c uint64
	for i := range h.bounds {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return bounds, cumulative
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated by linear
// interpolation within the bucket containing it, the same estimate
// Prometheus's histogram_quantile computes. Returns 0 with no
// observations; values in the overflow bucket clamp to the top bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum)+float64(n) >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}
