package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Errorf("sum = %g, want 106", got)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 3 {
		t.Fatalf("buckets = %v %v", bounds, cum)
	}
	// Cumulative, le-semantics: {≤1: 0.5 and 1}, {≤2: +1.5}, {≤4: +3};
	// the 100 lands only in the implicit +Inf bucket (Count).
	want := []uint64{2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in (1,2]
	}
	for _, q := range []float64{0.1, 0.5, 0.95} {
		got := h.Quantile(q)
		if got < 1 || got > 2 {
			t.Errorf("Quantile(%g) = %g, want within (1,2]", q, got)
		}
	}
	// Out-of-range q clamps instead of panicking.
	if got := h.Quantile(-1); got < 1 || got > 2 {
		t.Errorf("Quantile(-1) = %g", got)
	}
	if got := h.Quantile(2); got < 1 || got > 2 {
		t.Errorf("Quantile(2) = %g", got)
	}
}

// TestHistogramBoundary pins the clamp semantics at both ends of the
// bucket ladder: observations below the lowest bound count in the first
// bucket, observations above the highest bound are fully accounted (count,
// sum, the +Inf bucket) and quantiles over them clamp to the top bound —
// nothing is ever silently dropped.
func TestHistogramBoundary(t *testing.T) {
	h := NewLatencyHistogram()

	// Below the 100µs first bound: lands in the first bucket.
	h.Observe(0.00001)
	_, cum := h.Buckets()
	if cum[0] != 1 {
		t.Errorf("sub-minimum observation not in first bucket: cum[0] = %d", cum[0])
	}
	// Exactly on a bound: le-semantics, same bucket.
	h.Observe(0.0001)
	if _, cum = h.Buckets(); cum[0] != 2 {
		t.Errorf("on-bound observation not in first bucket: cum[0] = %d", cum[0])
	}

	// Above the 60s top bound: counted (count, sum, +Inf bucket), not
	// dropped — the finite cumulative series just ends below it.
	h.Observe(120)
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if got := h.Sum(); math.Abs(got-120.00011) > 1e-9 {
		t.Errorf("sum = %g, want 120.00011", got)
	}
	bounds, cum := h.Buckets()
	if top := cum[len(cum)-1]; top != 2 {
		t.Errorf("finite buckets hold %d, want 2 (overflow is +Inf only)", top)
	}
	if inf := h.Count() - cum[len(cum)-1]; inf != 1 {
		t.Errorf("+Inf bucket holds %d, want 1", inf)
	}
	// A quantile that falls in the overflow clamps to the top bound.
	if got, topBound := h.Quantile(1), bounds[len(bounds)-1]; got != topBound {
		t.Errorf("Quantile(1) = %g, want top bound %g", got, topBound)
	}

	// NaN and negative observations are recorded as 0 — in particular NaN
	// must not poison the CAS-accumulated sum for every later reader.
	h.Observe(math.NaN())
	h.Observe(-5)
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.IsNaN(got) || math.Abs(got-120.00011) > 1e-9 {
		t.Errorf("sum after NaN/negative = %g, want unchanged 120.00011", got)
	}
	if _, cum = h.Buckets(); cum[0] != 4 {
		t.Errorf("NaN/negative not clamped into first bucket: cum[0] = %d", cum[0])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); math.Abs(got-24) > 1e-6 {
		t.Errorf("sum = %g, want 24", got)
	}
	bounds, cum := h.Buckets()
	// 3ms falls in the first bucket with bound >= 0.003.
	for i, ub := range bounds {
		want := uint64(0)
		if ub >= 0.003 {
			want = 8000
		}
		if cum[i] != want {
			t.Errorf("cum[le=%g] = %d, want %d", ub, cum[i], want)
		}
	}
}
