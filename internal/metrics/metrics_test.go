package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Error("reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Load())
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4} {
		s.Observe(x)
	}
	if s.N() != 4 || s.Mean() != 2.5 || s.Min() != 1 || s.Max() != 4 {
		t.Errorf("summary = %s", s.String())
	}
	if math.Abs(s.Std()-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("std = %v", s.Std())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Error("empty summary should be zeros")
	}
}

func TestSummaryNegative(t *testing.T) {
	var s Summary
	s.Observe(-5)
	s.Observe(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Errorf("summary = %s", s.String())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1: demo", "name", "count", "ratio")
	tb.AddRow("alpha", 10, 0.51234)
	tb.AddRow("b", 2000, 2.0)
	out := tb.String()
	if !strings.Contains(out, "T1: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2000") {
		t.Errorf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "0.512") {
		t.Errorf("float formatting:\n%s", out)
	}
	if !strings.Contains(out, "2  ") && !strings.Contains(out, " 2\n") && !strings.Contains(out, "2\n") {
		// integral float renders without decimals
		t.Errorf("integral float formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("xxxxxx", 1)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Columns align: the second column starts at the same offset everywhere.
	col2 := strings.Index(lines[0], "bbbb")
	if strings.Index(lines[1], "----")+2 != col2 && strings.Index(lines[1], "-  -")+3 != col2 {
		t.Errorf("separator misaligned:\n%s", out)
	}
	if strings.Index(lines[2], "1") != col2 {
		t.Errorf("data column misaligned:\n%s", out)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile mutated input")
	}
}

func TestPropertySummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true // avoid float overflow in sum-of-squares
			}
			s.Observe(x)
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(clean, p1) <= Percentile(clean, p2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
