package ref

import (
	"errors"
	"fmt"
)

// WeightedEdge is one arc of a weighted directed graph, the input of the
// MinCosts oracle. Parallel edges (same endpoints, different costs) are
// allowed; relaxation keeps the cheapest.
type WeightedEdge struct {
	From, To string
	Cost     int64
}

// MinCosts is the answer-subsumption oracle: a Bellman–Ford-style
// relaxation fixpoint that computes, for every ordered pair of nodes
// connected by a path of at least one edge, the least total path cost.
// It shares no code with the resolution engine or the table subsystem —
// dist starts as the pointwise-minimal direct-edge costs and is relaxed
// through every edge until nothing improves — so the tabled `min(N)`
// evaluation of the left-recursive shortest/3 program can be tested
// differentially against it.
//
// Edges must be negative-free (the precondition of cost-minimal tabling
// over cyclic graphs); a negative cost is rejected.
func MinCosts(edges []WeightedEdge) (map[[2]string]int64, error) {
	dist := make(map[[2]string]int64)
	for _, e := range edges {
		if e.Cost < 0 {
			return nil, fmt.Errorf("ref: negative edge cost %d on %s->%s", e.Cost, e.From, e.To)
		}
		k := [2]string{e.From, e.To}
		if d, ok := dist[k]; !ok || e.Cost < d {
			dist[k] = e.Cost
		}
	}
	// Relax to fixpoint. Negative-free costs converge within one round
	// per node; the cap is a safety net, like Eval's round bound.
	for rounds := 0; ; rounds++ {
		if rounds > 10_000 {
			return nil, errors.New("ref: min-cost fixpoint did not converge in 10000 rounds")
		}
		changed := false
		for pair, d := range dist {
			for _, e := range edges {
				if e.From != pair[1] {
					continue
				}
				k := [2]string{pair[0], e.To}
				if cur, ok := dist[k]; !ok || d+e.Cost < cur {
					dist[k] = d + e.Cost
					changed = true
				}
			}
		}
		if !changed {
			return dist, nil
		}
	}
}
