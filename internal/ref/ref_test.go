package ref

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"blog/internal/kb"
	"blog/internal/par"
	"blog/internal/parse"
	"blog/internal/search"
	"blog/internal/weights"
	"blog/internal/workload"
)

func load(t testing.TB, src string) *kb.DB {
	t.Helper()
	db, _, err := kb.LoadString(src)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEvalTransitiveClosure(t *testing.T) {
	db := load(t, `
edge(a,b). edge(b,c). edge(c,d).
path(X,Y) :- edge(X,Y).
path(X,Z) :- edge(X,Y), path(Y,Z).
`)
	m, err := Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// 3 edges + 6 path facts.
	if m.Size() != 9 {
		t.Errorf("model size = %d, want 9", m.Size())
	}
	if m.Derived != 6 {
		t.Errorf("derived = %d, want 6", m.Derived)
	}
	goals, _ := parse.Query("path(a, X)")
	got := m.Answers(goals)
	sort.Strings(got)
	want := []string{"X = b", "X = c", "X = d"}
	if len(got) != 3 {
		t.Fatalf("answers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("answers = %v", got)
		}
	}
}

func TestEvalHolds(t *testing.T) {
	db := load(t, "p(a). q(X) :- p(X).")
	m, err := Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	qa, _ := parse.OneTerm("q(a)")
	if !m.Holds(qa) {
		t.Error("q(a) should hold")
	}
	qb, _ := parse.OneTerm("q(b)")
	if m.Holds(qb) {
		t.Error("q(b) should not hold")
	}
}

func TestEvalGroundQueryAnswers(t *testing.T) {
	db := load(t, "p(a).")
	m, err := Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	goals, _ := parse.Query("p(a)")
	got := m.Answers(goals)
	if len(got) != 1 || got[0] != "true" {
		t.Errorf("ground answers = %v", got)
	}
	goals2, _ := parse.Query("p(b)")
	if got := m.Answers(goals2); len(got) != 0 {
		t.Errorf("p(b) answers = %v", got)
	}
}

func TestEvalRejectsNonDatalog(t *testing.T) {
	cases := []string{
		"p(f(a)).",                  // compound argument
		"p([a]).",                   // list argument
		"p(X) :- X is 1 + 1.",       // builtin body
		"p(X) :- q(Y).\nq(a).",      // not range-restricted
		"p(X).",                     // non-ground fact
		"p(X) :- \\+(q(X)).\nq(a).", // negation
	}
	for _, src := range cases {
		db := load(t, src)
		if _, err := Eval(db); !errors.Is(err, ErrNotDatalog) && err == nil {
			t.Errorf("Eval(%q) should reject, got %v", src, err)
		}
	}
}

func TestEvalMutualRecursion(t *testing.T) {
	db := load(t, `
even(z).
odd(X) :- succof(X, Y), even(Y).
even(X) :- succof(X, Y), odd(Y).
succof(one, z). succof(two, one). succof(three, two).
`)
	m, err := Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	for atom, want := range map[string]bool{
		"even(z)": true, "odd(one)": true, "even(two)": true,
		"odd(three)": true, "even(one)": false, "odd(two)": false,
	} {
		tm, _ := parse.OneTerm(atom)
		if m.Holds(tm) != want {
			t.Errorf("%s = %v, want %v", atom, m.Holds(tm), want)
		}
	}
}

// TestDifferentialTopDownVsBottomUp is the oracle test: on random
// stratified Datalog programs, every top-down strategy (sequential and
// parallel) must produce exactly the fixpoint's answer set.
func TestDifferentialTopDownVsBottomUp(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := workload.RandomProgram(3, 3, 4, 4, seed)
			db := load(t, src)
			m, err := Eval(db)
			if err != nil {
				t.Fatalf("not datalog: %v\n%s", err, src)
			}
			goals, _ := parse.Query("l2p0(Q,R)")
			want := m.Answers(goals)
			sort.Strings(want)

			// Sequential strategies.
			for _, strat := range []search.Strategy{search.DFS, search.BFS, search.BestFirst} {
				goals, _ := parse.Query("l2p0(Q,R)")
				res, err := search.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals,
					search.Options{Strategy: strat, MaxDepth: 24})
				if err != nil {
					t.Fatal(err)
				}
				got := distinct(res)
				if !equalStrings(got, want) {
					t.Fatalf("%v answers %v != fixpoint %v", strat, got, want)
				}
			}
			// Parallel engine.
			goals2, _ := parse.Query("l2p0(Q,R)")
			pres, err := par.Run(context.Background(), db, weights.NewUniform(weights.DefaultConfig()), goals2,
				par.Options{Workers: 6, Mode: par.TwoLevel, D: 2, LocalCap: 8, MaxDepth: 24})
			if err != nil {
				t.Fatal(err)
			}
			pgot := make(map[string]bool)
			for _, s := range pres.Solutions {
				pgot[s.Format(pres.QueryVars)] = true
			}
			var plist []string
			for k := range pgot {
				plist = append(plist, k)
			}
			sort.Strings(plist)
			if !equalStrings(plist, want) {
				t.Fatalf("parallel answers %v != fixpoint %v", plist, want)
			}
		})
	}
}

func distinct(res *search.Result) []string {
	set := make(map[string]bool)
	for _, s := range res.Solutions {
		set[s.Format(res.QueryVars)] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkFixpointClosure(b *testing.B) {
	db := load(b, workload.DAG(6, 6, 3, 9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}
