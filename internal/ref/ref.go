// Package ref is an independent reference semantics for the Datalog
// fragment: a naive bottom-up (fixpoint) evaluator that shares no code
// with the resolution engine. Because it computes the minimal Herbrand
// model directly, it provides an oracle the top-down engines are
// differentially tested against: every strategy, sequential or parallel,
// must return exactly the answer set the fixpoint licenses.
package ref

import (
	"errors"
	"fmt"

	"blog/internal/kb"
	"blog/internal/term"
	"blog/internal/unify"
)

// ErrNotDatalog reports a program outside the supported fragment:
// compound arguments, builtins in bodies, or non-callable goals.
var ErrNotDatalog = errors.New("ref: program is not in the Datalog fragment")

// Model is the computed minimal Herbrand model: ground facts grouped by
// predicate indicator.
type Model struct {
	// facts maps pred indicator -> rendered-atom -> ground term.
	facts map[string]map[string]term.Term
	// Iterations is the number of fixpoint rounds used.
	Iterations int
	// Derived counts facts added beyond the base facts.
	Derived int
}

// datalogCheck validates one atom of the fragment.
func datalogCheck(t term.Term) error {
	switch t := t.(type) {
	case term.Atom:
		return nil
	case *term.Compound:
		if t.Functor == term.SymDot && len(t.Args) == 2 {
			return fmt.Errorf("%w: list argument %s", ErrNotDatalog, t)
		}
		for _, a := range t.Args {
			switch a.(type) {
			case term.Atom, term.Int, *term.Var:
			default:
				return fmt.Errorf("%w: compound argument %s", ErrNotDatalog, a)
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: goal %s", ErrNotDatalog, t)
	}
}

// Eval computes the fixpoint of db's clauses. The program must be in the
// Datalog fragment: flat predicates over atoms/integers/variables, no
// builtins, and range-restricted rules (every head variable occurs in
// the body) — violations return an error.
func Eval(db *kb.DB) (*Model, error) {
	m := &Model{facts: make(map[string]map[string]term.Term)}
	var rules []*kb.Clause
	for _, c := range db.Clauses() {
		if err := datalogCheck(c.Head); err != nil {
			return nil, err
		}
		if c.IsFact() {
			if !term.Ground(nil, c.Head) {
				return nil, fmt.Errorf("%w: non-ground fact %s", ErrNotDatalog, c.Head)
			}
			m.add(c.Head)
			continue
		}
		headVars := term.Vars(c.Head, nil)
		var bodyVars []*term.Var
		for _, g := range c.Body {
			if err := datalogCheck(g); err != nil {
				return nil, err
			}
			if name, arity, ok := term.Functor(g); ok {
				if isBuiltinName(name, arity) {
					return nil, fmt.Errorf("%w: builtin %s/%d in body", ErrNotDatalog, name, arity)
				}
			}
			bodyVars = term.Vars(g, bodyVars)
		}
		for _, hv := range headVars {
			found := false
			for _, bv := range bodyVars {
				if hv == bv {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("%w: head variable %s not range-restricted in %s", ErrNotDatalog, hv, c)
			}
		}
		rules = append(rules, c)
	}

	// Naive fixpoint: re-derive until no new facts appear. Fine for the
	// differential-test sizes this package exists for.
	for changed := true; changed; {
		changed = false
		m.Iterations++
		for _, r := range rules {
			head, body := r.Activate()
			for _, env := range m.joinAll(nil, body) {
				ground := env.ResolveDeep(head)
				if !term.Ground(nil, ground) {
					return nil, fmt.Errorf("ref: derived non-ground fact %s", ground)
				}
				if m.add(ground) {
					m.Derived++
					changed = true
				}
			}
		}
		if m.Iterations > 10_000 {
			return nil, errors.New("ref: fixpoint did not converge in 10000 rounds")
		}
	}
	return m, nil
}

// isBuiltinName lists body predicates the fragment rejects. It mirrors
// the engine's builtin table by name only, deliberately not importing the
// engine (the oracle must stay independent).
func isBuiltinName(name string, arity int) bool {
	switch name {
	case "true", "fail", "false", "!", "=", "\\=", "==", "\\==", "is",
		"=:=", "=\\=", "<", ">", "=<", ">=", "@<", "@>", "@=<", "@>=",
		"between", "integer", "atom", "atomic", "compound", "var",
		"nonvar", "ground", "functor", "arg", "=..", "length",
		"copy_term", "succ", "\\+":
		return true
	}
	_ = arity
	return false
}

// add inserts a ground atom; reports whether it was new.
func (m *Model) add(t term.Term) bool {
	pred, ok := term.Indicator(t)
	if !ok {
		return false
	}
	set := m.facts[pred]
	if set == nil {
		set = make(map[string]term.Term)
		m.facts[pred] = set
	}
	key := t.String()
	if _, dup := set[key]; dup {
		return false
	}
	set[key] = t
	return true
}

// Size returns the model's fact count.
func (m *Model) Size() int {
	n := 0
	for _, set := range m.facts {
		n += len(set)
	}
	return n
}

// Holds reports whether a ground atom is in the model.
func (m *Model) Holds(t term.Term) bool {
	pred, ok := term.Indicator(t)
	if !ok {
		return false
	}
	_, yes := m.facts[pred][t.String()]
	return yes
}

// joinAll extends env through every body goal in order, returning all
// satisfying environments.
func (m *Model) joinAll(env *term.Env, goals []term.Term) []*term.Env {
	if len(goals) == 0 {
		return []*term.Env{env}
	}
	goal := goals[0]
	pred, ok := term.Indicator(env.Resolve(goal))
	if !ok {
		return nil
	}
	var out []*term.Env
	for _, fact := range m.facts[pred] {
		if e, ok := unify.Unify(env, goal, fact); ok {
			out = append(out, m.joinAll(e, goals[1:])...)
		}
	}
	return out
}

// Answers evaluates a conjunctive query against the model, returning the
// distinct bindings of the query variables rendered as strings (the
// format the differential tests compare on).
func (m *Model) Answers(goals []term.Term) []string {
	var qvars []*term.Var
	for _, g := range goals {
		qvars = term.Vars(g, qvars)
	}
	seen := make(map[string]bool)
	var out []string
	for _, env := range m.joinAll(nil, goals) {
		s := ""
		for i, v := range qvars {
			if i > 0 {
				s += ", "
			}
			s += v.String() + " = " + env.Format(v)
		}
		if s == "" {
			s = "true"
		}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
