package ref

import "testing"

func TestMinCostsRelaxesThroughCycles(t *testing.T) {
	dist, err := MinCosts([]WeightedEdge{
		{"a", "b", 4},
		{"a", "c", 1},
		{"c", "b", 1},
		{"b", "a", 1},
		{"a", "b", 7}, // dominated parallel edge
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]string]int64{
		{"a", "a"}: 3, {"a", "b"}: 2, {"a", "c"}: 1,
		{"b", "a"}: 1, {"b", "b"}: 3, {"b", "c"}: 2,
		{"c", "a"}: 2, {"c", "b"}: 1, {"c", "c"}: 3,
	}
	if len(dist) != len(want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
	for k, d := range want {
		if dist[k] != d {
			t.Errorf("dist[%v] = %d, want %d", k, dist[k], d)
		}
	}
}

func TestMinCostsRejectsNegativeEdges(t *testing.T) {
	if _, err := MinCosts([]WeightedEdge{{"a", "b", -1}}); err == nil {
		t.Fatal("negative edge accepted; the fixpoint would not terminate on negative cycles")
	}
}
