package parse

import (
	"strings"
	"testing"

	"blog/internal/term"
)

// FuzzSource checks the parser never panics and that whatever it accepts
// round-trips: every parsed clause renders to text that reparses to the
// same rendered form.
func FuzzSource(f *testing.F) {
	seeds := []string{
		"p(a).",
		"gf(X,Z) :- f(X,Y), f(Y,Z).",
		"?- gf(sam,G).",
		"p([a,b|T], 42, 'quoted atom').",
		"x :- a, b, c.",
		"n(-7).",
		"q(X) :- X is 1 + 2 * 3, X =\\= 0.",
		"% comment\np(a). /* block */",
		"l([]). l([H|T]) :- l(T).",
		"u(T) :- T =.. [f, 1].",
		"w :- \\+(p(a)).",
		"p(a",
		":-:-",
		"'unterminated",
		"p(a)) .",
		"\x00\xff",
		strings.Repeat("(", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Source(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, c := range prog.Clauses {
			rendered := renderClause(c)
			prog2, err := Source(rendered)
			if err != nil {
				t.Fatalf("accepted clause %q does not reparse: %v", rendered, err)
			}
			if len(prog2.Clauses) != 1 {
				t.Fatalf("clause %q reparsed to %d clauses", rendered, len(prog2.Clauses))
			}
			if got := renderClause(prog2.Clauses[0]); got != rendered {
				t.Fatalf("round trip drift: %q -> %q", rendered, got)
			}
		}
	})
}

func renderClause(c Clause) string {
	var text string
	if len(c.Body) == 0 {
		text = c.Head.String()
	} else {
		parts := make([]string, len(c.Body))
		for i, g := range c.Body {
			parts[i] = g.String()
		}
		text = c.Head.String() + " :- " + strings.Join(parts, ", ")
	}
	if term.EndsSymbolic(text) {
		return text + " ."
	}
	return text + "."
}

// FuzzQuery checks query parsing never panics and accepted queries
// reparse.
func FuzzQuery(f *testing.F) {
	for _, s := range []string{"p(X)", "?- a, b.", "X = f(Y), Y \\= 3", "[H|T] = [1,2]"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		goals, err := Query(src)
		if err != nil {
			return
		}
		for _, g := range goals {
			if _, err := OneTerm(g.String()); err != nil {
				// Variables with generated names (_G42) still parse; any
				// failure here is a printer/parser mismatch.
				t.Fatalf("accepted goal %q does not reparse: %v", g.String(), err)
			}
		}
		_ = goals
	})
}

// FuzzOneTermPrinterTotal checks the printer itself is total over parsed
// terms (no panics formatting unusual atoms).
func FuzzOneTermPrinterTotal(f *testing.F) {
	f.Add("f('a b', 'don''t', [x|Y])")
	f.Fuzz(func(t *testing.T, src string) {
		tm, err := OneTerm(src)
		if err != nil {
			return
		}
		_ = tm.String()
		_ = term.Vars(tm, nil)
	})
}
